(* Benchmark harness.

   Two halves:

   1. Reproduction benches — one per table/figure of the paper
      (Registry.all): regenerates every series the evaluation section
      reports, in the quick profile by default (pass --full on the
      command line, or run bin/experiments.exe directly, for paper-grade
      §5.2 stopping criteria).

   2. Bechamel micro-benchmarks of the core operations, so performance
      regressions in the hot paths (criterion evaluation, estimator
      updates, event queue, source stepping, the eqn (37) integral) are
      visible. *)

let profile_name = function
  | Mbac_experiments.Common.Quick -> "quick"
  | Mbac_experiments.Common.Full -> "full"

let run_reproduction ~profile fmt =
  Format.fprintf fmt
    "==========================================================@.";
  Format.fprintf fmt
    " Reproduction benches (Grossglauser-Tse MBAC) -- %s profile@."
    (profile_name profile);
  Format.fprintf fmt
    "==========================================================@.";
  Mbac_experiments.Registry.run_all ~profile fmt

(* ---------- Bechamel micro-benchmarks ---------- *)

let params =
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0 ~p_q:1e-3

let micro_tests () =
  let open Bechamel in
  let alpha = Mbac.Params.alpha_q params in
  let t_gaussian =
    Test.make ~name:"gaussian.q_inv(1e-3)"
      (Staged.stage (fun () -> ignore (Mbac_stats.Gaussian.q_inv 1e-3)))
  in
  let t_criterion =
    Test.make ~name:"criterion.admissible"
      (Staged.stage (fun () ->
           ignore
             (Mbac.Criterion.admissible ~capacity:100.0 ~mu:1.01 ~sigma:0.29
                ~alpha)))
  in
  let t_estimator =
    let est = Mbac.Estimator.ewma ~t_m:100.0 in
    let now = ref 0.0 in
    Test.make ~name:"estimator.ewma observe"
      (Staged.stage (fun () ->
           now := !now +. 0.01;
           Mbac.Estimator.observe est
             (Mbac.Observation.make ~now:!now ~n:100 ~sum_rate:100.0
                ~sum_sq:109.0)))
  in
  let t_heap =
    let heap = Mbac_sim.Event_heap.create () in
    for j = 0 to 1023 do
      Mbac_sim.Event_heap.push heap ~time:(float_of_int j) j
    done;
    let i = ref 0 in
    Test.make ~name:"event_heap push+pop (1k live)"
      (Staged.stage (fun () ->
           incr i;
           Mbac_sim.Event_heap.push heap ~time:(float_of_int (!i land 1023)) !i;
           ignore (Mbac_sim.Event_heap.pop heap)))
  in
  let t_source =
    let rng = Mbac_stats.Rng.create ~seed:3 in
    let src =
      Mbac_traffic.Rcbr.create rng
        (Mbac_traffic.Rcbr.default_params ~mu:1.0)
        ~start:0.0
    in
    Test.make ~name:"rcbr source fire"
      (Staged.stage (fun () ->
           Mbac_traffic.Source.fire src
             ~now:(Mbac_traffic.Source.next_change src)))
  in
  let t_formula37 =
    Test.make ~name:"memory_formula.overflow (eqn 37 integral)"
      (Staged.stage (fun () ->
           ignore
             (Mbac.Memory_formula.overflow ~p:params ~t_m:10.0
                ~alpha_ce:alpha)))
  in
  let t_inversion =
    Test.make ~name:"inversion.adjusted_alpha_ce (eqn 38 inverse)"
      (Staged.stage (fun () ->
           ignore (Mbac.Inversion.adjusted_alpha_ce ~t_m:10.0 params)))
  in
  let t_fgn =
    let rng = Mbac_stats.Rng.create ~seed:4 in
    Test.make ~name:"fgn.generate n=4096"
      (Staged.stage (fun () ->
           ignore (Mbac_numerics.Fgn.generate rng ~hurst:0.85 ~n:4096)))
  in
  let t_sim =
    Test.make ~name:"continuous-load sim (50k events)"
      (Staged.stage (fun () ->
           let cfg =
             { (Mbac_sim.Continuous_load.default_config ~capacity:100.0
                  ~holding_time_mean:1000.0 ~target_p_q:1e-3)
               with
               Mbac_sim.Continuous_load.max_events = 50_000;
               warmup = 10.0;
               batch_length = 100.0 }
           in
           let controller =
             Mbac.Controller.with_memory ~capacity:100.0 ~p_ce:1e-3 ~t_m:100.0
           in
           let rng = Mbac_stats.Rng.create ~seed:11 in
           ignore
             (Mbac_sim.Continuous_load.run rng cfg ~controller
                ~make_source:(fun rng ~start ->
                  Mbac_traffic.Rcbr.create rng
                    (Mbac_traffic.Rcbr.default_params ~mu:1.0)
                    ~start))))
  in
  [ t_gaussian; t_criterion; t_estimator; t_heap; t_source; t_formula37;
    t_inversion; t_fgn; t_sim ]

(* Returns (name, ns/run estimate) rows for BENCH.json alongside the
   text report. *)
let run_micro fmt =
  let open Bechamel in
  Format.fprintf fmt "@.=== Bechamel micro-benchmarks ===@.";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              rows := (name, est) :: !rows;
              if est >= 1e6 then
                Format.fprintf fmt "  %-46s %12.3f ms/run@." name (est /. 1e6)
              else if est >= 1e3 then
                Format.fprintf fmt "  %-46s %12.3f us/run@." name (est /. 1e3)
              else Format.fprintf fmt "  %-46s %12.1f ns/run@." name est
          | Some _ | None ->
              Format.fprintf fmt "  %-46s (no estimate)@." name)
        ols)
    (micro_tests ());
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(* ---------- Hot-path gate (--hotpath) ---------- *)

(* Pre-refactor numbers for the zero-allocation event-loop work, measured
   on this container at the commit preceding the hot-path PR (boxed heap
   entries, Hashtbl flow table, string-keyed metrics, adaptive-only eqn
   (37)), built with --profile release like the gate itself.  dune's dev
   profile passes -opaque, which discards cross-module inlining and
   distorts both throughput and allocation counts, so release is the only
   profile where the before/after comparison is meaningful.  The
   --hotpath run reports current numbers next to these so the speedup is
   visible in BENCH.json without digging through git. *)
let baseline_events_per_sec = 1.74e6
let baseline_minor_words_per_event = 170.65
let baseline_eqn37_adaptive_per_sec = 41_000.0

let hotpath_sim ~max_events =
  let cfg =
    { (Mbac_sim.Continuous_load.default_config ~capacity:100.0
         ~holding_time_mean:1000.0 ~target_p_q:1e-3)
      with
      Mbac_sim.Continuous_load.max_events;
      warmup = 10.0;
      batch_length = 100.0;
      (* never trigger the stopping rule: this run must process exactly
         max_events so events/sec and words/event are comparable *)
      check_every_events = max_int }
  in
  let controller =
    Mbac.Controller.with_memory ~capacity:100.0 ~p_ce:1e-3 ~t_m:100.0
  in
  let rng = Mbac_stats.Rng.create ~seed:11 in
  Mbac_sim.Continuous_load.run rng cfg ~controller
    ~make_source:(fun rng ~start ->
      Mbac_traffic.Rcbr.create rng
        (Mbac_traffic.Rcbr.default_params ~mu:1.0)
        ~start)

type hotpath_numbers = {
  hp_events : int;
  hp_events_per_sec : float;
  hp_minor_words_per_event : float;
  hp_eqn37_adaptive_per_sec : float;
  hp_eqn37_memoized_per_sec : float; (* nan when unavailable *)
}

let run_hotpath fmt =
  Format.fprintf fmt "@.=== Hot-path gate ===@.";
  let now_ns () = Int64.to_float (Monotonic_clock.now ()) in
  ignore (hotpath_sim ~max_events:200_000) (* warm up code + allocator *);
  let n_events = 1_000_000 in
  let t0 = now_ns () in
  let minor0 = Gc.minor_words () in
  let r = hotpath_sim ~max_events:n_events in
  let minor1 = Gc.minor_words () in
  let t1 = now_ns () in
  let events = r.Mbac_sim.Continuous_load.events in
  let events_per_sec = float_of_int events /. ((t1 -. t0) /. 1e9) in
  let words_per_event = (minor1 -. minor0) /. float_of_int events in
  Format.fprintf fmt "  continuous-load loop:   %10.0f events/sec  (%d events)@."
    events_per_sec events;
  if baseline_events_per_sec > 0.0 then
    Format.fprintf fmt "    vs pre-refactor baseline %.0f ev/s: speedup x%.2f@."
      baseline_events_per_sec
      (events_per_sec /. baseline_events_per_sec);
  Format.fprintf fmt "  minor allocation:       %10.2f words/event@."
    words_per_event;
  (* eqn (37): many-alpha workload, the shape robustness profiles and
     inversion sweeps present.  Same alphas for both evaluators. *)
  let alphas = Array.init 2_000 (fun i -> 1.0 +. (float_of_int i *. 0.002)) in
  let time_evals f =
    let t0 = now_ns () in
    let acc = ref 0.0 in
    Array.iter (fun a -> acc := !acc +. f a) alphas;
    let t1 = now_ns () in
    ignore !acc;
    float_of_int (Array.length alphas) /. ((t1 -. t0) /. 1e9)
  in
  let adaptive_per_sec =
    time_evals (fun a -> Mbac.Memory_formula.overflow ~p:params ~t_m:10.0 ~alpha_ce:a)
  in
  Format.fprintf fmt "  eqn (37) adaptive:      %10.0f evals/sec@."
    adaptive_per_sec;
  let tab = Mbac.Memory_formula.Tabulated.create ~p:params ~t_m:10.0 () in
  ignore (time_evals (fun a -> Mbac.Memory_formula.Tabulated.overflow tab ~alpha_ce:a));
  let memoized_per_sec =
    time_evals (fun a -> Mbac.Memory_formula.Tabulated.overflow tab ~alpha_ce:a)
  in
  Format.fprintf fmt
    "  eqn (37) tabulated:     %10.0f evals/sec  (x%.0f; build = ~128 integrals, repaid after ~128 lookups)@."
    memoized_per_sec
    (memoized_per_sec /. adaptive_per_sec);
  { hp_events = events;
    hp_events_per_sec = events_per_sec;
    hp_minor_words_per_event = words_per_event;
    hp_eqn37_adaptive_per_sec = adaptive_per_sec;
    hp_eqn37_memoized_per_sec = memoized_per_sec }

(* ---------- Parallel replication engine scaling ---------- *)

(* A 16-cell sweep of short continuous-load sims — the workload shape of
   every figure reproduction — fanned out at pool widths 1/2/4.  The
   determinism contract says the results are identical; this measures
   whether the wall clock shrinks. *)
let sweep ~jobs =
  ignore
    (Mbac_sim.Parallel.run_tasks ~jobs
       (List.init 16 (fun i () ->
            let cfg =
              { (Mbac_sim.Continuous_load.default_config ~capacity:100.0
                   ~holding_time_mean:1000.0 ~target_p_q:1e-3)
                with
                Mbac_sim.Continuous_load.max_events = 25_000;
                warmup = 10.0;
                batch_length = 100.0 }
            in
            let controller =
              Mbac.Controller.with_memory ~capacity:100.0 ~p_ce:1e-3
                ~t_m:100.0
            in
            let rng =
              Mbac_stats.Rng.derive ~seed:11
                ~tag:(Printf.sprintf "bench-scaling-%d" i)
            in
            Mbac_sim.Continuous_load.run rng cfg ~controller
              ~make_source:(fun rng ~start ->
                Mbac_traffic.Rcbr.create rng
                  (Mbac_traffic.Rcbr.default_params ~mu:1.0)
                  ~start))))

(* Returns (jobs, ns/run estimate, speedup vs jobs=1) rows. *)
let run_scaling fmt =
  let open Bechamel in
  Format.fprintf fmt
    "@.=== Parallel scaling (16-sim sweep, jobs in {1, 2, 4}; %d core(s) \
     available) ===@."
    (Mbac_sim.Parallel.default_jobs ());
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let estimate jobs =
    let test =
      Test.make
        ~name:(Printf.sprintf "sweep jobs=%d" jobs)
        (Staged.stage (fun () -> sweep ~jobs))
    in
    let results = Benchmark.all cfg instances test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock results
    in
    Hashtbl.fold
      (fun _ ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | Some _ | None -> acc)
      ols nan
  in
  sweep ~jobs:2 (* warm up the domain machinery once *);
  let base = estimate 1 in
  Format.fprintf fmt "  %-24s %12.3f ms/run@." "sweep jobs=1" (base /. 1e6);
  let rest =
    List.map
      (fun jobs ->
        let est = estimate jobs in
        Format.fprintf fmt "  %-24s %12.3f ms/run   speedup x%.2f@."
          (Printf.sprintf "sweep jobs=%d" jobs)
          (est /. 1e6) (base /. est);
        (jobs, est, base /. est))
      [ 2; 4 ]
  in
  (1, base, 1.0) :: rest

(* ---------- BENCH.json ---------- *)

let write_bench_json ~path ~profile ~repro_ns ~micro ~scaling ~hotpath =
  let open Mbac_telemetry.Json in
  let fnan v = if Float.is_nan v then "null" else float v in
  let hotpath_json =
    match hotpath with
    | None -> "null"
    | Some h ->
        obj
          [ ("events", int h.hp_events);
            ("events_per_sec", fnan h.hp_events_per_sec);
            ("minor_words_per_event", fnan h.hp_minor_words_per_event);
            ("eqn37_adaptive_per_sec", fnan h.hp_eqn37_adaptive_per_sec);
            ("eqn37_memoized_per_sec", fnan h.hp_eqn37_memoized_per_sec);
            ("baseline",
             obj
               [ ("events_per_sec", fnan baseline_events_per_sec);
                 ("minor_words_per_event", fnan baseline_minor_words_per_event);
                 ("eqn37_adaptive_per_sec", fnan baseline_eqn37_adaptive_per_sec)
               ]);
            ("speedup_vs_baseline",
             if baseline_events_per_sec > 0.0 then
               fnan (h.hp_events_per_sec /. baseline_events_per_sec)
             else "null") ]
  in
  let micro_json =
    arr
      (List.map
         (fun (name, ns) -> obj [ ("name", string name); ("ns_per_run", float ns) ])
         micro)
  in
  let scaling_json =
    arr
      (List.map
         (fun (jobs, ns, speedup) ->
           obj
             [ ("jobs", int jobs); ("ns_per_run", float ns);
               ("speedup", float speedup) ])
         scaling)
  in
  let doc =
    obj
      [ ("schema", string "mbac-bench/1");
        ("profile", string (profile_name profile));
        ("reproduction_ns",
         match repro_ns with Some ns -> float ns | None -> "null");
        ("micro", micro_json);
        ("scaling", scaling_json);
        ("hotpath", hotpath_json) ]
  in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc

let () =
  let argv = Sys.argv in
  let full = Array.exists (fun a -> a = "--full") argv in
  let skip_micro = Array.exists (fun a -> a = "--no-micro") argv in
  let scaling_only = Array.exists (fun a -> a = "--scaling") argv in
  let hotpath_only = Array.exists (fun a -> a = "--hotpath") argv in
  let arg_value name =
    let v = ref None in
    Array.iteri
      (fun i a -> if a = name && i + 1 < Array.length argv then v := Some argv.(i + 1))
      argv;
    !v
  in
  let json_path =
    match arg_value "--json" with Some p -> p | None -> "BENCH.json"
  in
  let metrics_out = arg_value "--metrics-out" in
  let trace_out = arg_value "--trace-out" in
  if Array.exists (fun a -> a = "--profile") argv then
    Mbac_telemetry.Profile.set_enabled true;
  if trace_out <> None then Mbac_telemetry.Trace.set_enabled true;
  (* Same verbosity convention as the cmdliner binaries: warnings by
     default, -v for info, -v -v for debug, --quiet for nothing. *)
  let verbosity =
    if Array.exists (fun a -> a = "--quiet" || a = "-q") argv then None
    else
      match
        Array.fold_left (fun n a -> if a = "-v" then n + 1 else n) 0 argv
      with
      | 0 -> Some Logs.Warning
      | 1 -> Some Logs.Info
      | _ -> Some Logs.Debug
  in
  Mbac_telemetry.Logging.setup verbosity;
  let profile =
    if full then Mbac_experiments.Common.Full else Mbac_experiments.Common.Quick
  in
  let fmt = Format.std_formatter in
  let now () = Int64.to_float (Monotonic_clock.now ()) in
  let repro_ns = ref None in
  let micro = ref [] in
  let hotpath = ref None in
  if hotpath_only then hotpath := Some (run_hotpath fmt)
  else if not scaling_only then begin
    let t0 = now () in
    run_reproduction ~profile fmt;
    repro_ns := Some (now () -. t0);
    if not skip_micro then micro := run_micro fmt
  end;
  let scaling = if hotpath_only then [] else run_scaling fmt in
  write_bench_json ~path:json_path ~profile ~repro_ns:!repro_ns ~micro:!micro
    ~scaling ~hotpath:!hotpath;
  Format.fprintf fmt "@.bench: wrote %s@." json_path;
  (match metrics_out with
  | Some path ->
      Mbac_telemetry.Snapshot.write_files ~path (Mbac_telemetry.Snapshot.current ());
      Format.fprintf fmt "bench: wrote %s (+ %s.prom)@." path path
  | None -> ());
  (match trace_out with
  | Some path ->
      let oc = open_out path in
      Mbac_telemetry.Trace.dump oc;
      close_out oc;
      Format.fprintf fmt "bench: wrote %s@." path
  | None -> ());
  if Mbac_telemetry.Profile.enabled () then
    Mbac_telemetry.Profile.report Format.err_formatter;
  Format.fprintf fmt "bench: done.@."
