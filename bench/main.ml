(* Benchmark harness.

   Two halves:

   1. Reproduction benches — one per table/figure of the paper
      (Registry.all): regenerates every series the evaluation section
      reports, in the quick profile by default (pass --full on the
      command line, or run bin/experiments.exe directly, for paper-grade
      §5.2 stopping criteria).

   2. Bechamel micro-benchmarks of the core operations, so performance
      regressions in the hot paths (criterion evaluation, estimator
      updates, event queue, source stepping, the eqn (37) integral) are
      visible. *)

let profile_name = function
  | Mbac_experiments.Common.Quick -> "quick"
  | Mbac_experiments.Common.Full -> "full"

let run_reproduction ~profile fmt =
  Format.fprintf fmt
    "==========================================================@.";
  Format.fprintf fmt
    " Reproduction benches (Grossglauser-Tse MBAC) -- %s profile@."
    (profile_name profile);
  Format.fprintf fmt
    "==========================================================@.";
  Mbac_experiments.Registry.run_all ~profile fmt

(* ---------- Bechamel micro-benchmarks ---------- *)

let params =
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0 ~p_q:1e-3

let micro_tests () =
  let open Bechamel in
  let alpha = Mbac.Params.alpha_q params in
  let t_gaussian =
    Test.make ~name:"gaussian.q_inv(1e-3)"
      (Staged.stage (fun () -> ignore (Mbac_stats.Gaussian.q_inv 1e-3)))
  in
  let t_criterion =
    Test.make ~name:"criterion.admissible"
      (Staged.stage (fun () ->
           ignore
             (Mbac.Criterion.admissible ~capacity:100.0 ~mu:1.01 ~sigma:0.29
                ~alpha)))
  in
  let t_estimator =
    let est = Mbac.Estimator.ewma ~t_m:100.0 in
    let now = ref 0.0 in
    Test.make ~name:"estimator.ewma observe"
      (Staged.stage (fun () ->
           now := !now +. 0.01;
           Mbac.Estimator.observe est
             (Mbac.Observation.make ~now:!now ~n:100 ~sum_rate:100.0
                ~sum_sq:109.0)))
  in
  let t_heap =
    let heap = Mbac_sim.Event_heap.create () in
    for j = 0 to 1023 do
      Mbac_sim.Event_heap.push heap ~time:(float_of_int j) j
    done;
    let i = ref 0 in
    Test.make ~name:"event_heap push+pop (1k live)"
      (Staged.stage (fun () ->
           incr i;
           Mbac_sim.Event_heap.push heap ~time:(float_of_int (!i land 1023)) !i;
           ignore (Mbac_sim.Event_heap.pop heap)))
  in
  let t_source =
    let rng = Mbac_stats.Rng.create ~seed:3 in
    let src =
      Mbac_traffic.Rcbr.create rng
        (Mbac_traffic.Rcbr.default_params ~mu:1.0)
        ~start:0.0
    in
    Test.make ~name:"rcbr source fire"
      (Staged.stage (fun () ->
           Mbac_traffic.Source.fire src
             ~now:(Mbac_traffic.Source.next_change src)))
  in
  let t_formula37 =
    Test.make ~name:"memory_formula.overflow (eqn 37 integral)"
      (Staged.stage (fun () ->
           ignore
             (Mbac.Memory_formula.overflow ~p:params ~t_m:10.0
                ~alpha_ce:alpha)))
  in
  let t_inversion =
    Test.make ~name:"inversion.adjusted_alpha_ce (eqn 38 inverse)"
      (Staged.stage (fun () ->
           ignore (Mbac.Inversion.adjusted_alpha_ce ~t_m:10.0 params)))
  in
  let t_fgn =
    let rng = Mbac_stats.Rng.create ~seed:4 in
    Test.make ~name:"fgn.generate n=4096"
      (Staged.stage (fun () ->
           ignore (Mbac_numerics.Fgn.generate rng ~hurst:0.85 ~n:4096)))
  in
  let t_sim =
    Test.make ~name:"continuous-load sim (50k events)"
      (Staged.stage (fun () ->
           let cfg =
             { (Mbac_sim.Continuous_load.default_config ~capacity:100.0
                  ~holding_time_mean:1000.0 ~target_p_q:1e-3)
               with
               Mbac_sim.Continuous_load.max_events = 50_000;
               warmup = 10.0;
               batch_length = 100.0 }
           in
           let controller =
             Mbac.Controller.with_memory ~capacity:100.0 ~p_ce:1e-3 ~t_m:100.0
           in
           let rng = Mbac_stats.Rng.create ~seed:11 in
           ignore
             (Mbac_sim.Continuous_load.run rng cfg ~controller
                ~make_source:(fun rng ~start ->
                  Mbac_traffic.Rcbr.create rng
                    (Mbac_traffic.Rcbr.default_params ~mu:1.0)
                    ~start))))
  in
  [ t_gaussian; t_criterion; t_estimator; t_heap; t_source; t_formula37;
    t_inversion; t_fgn; t_sim ]

(* Returns (name, ns/run estimate) rows for BENCH.json alongside the
   text report. *)
let run_micro fmt =
  let open Bechamel in
  Format.fprintf fmt "@.=== Bechamel micro-benchmarks ===@.";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:true
             ~predictors:[| Measure.run |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              rows := (name, est) :: !rows;
              if est >= 1e6 then
                Format.fprintf fmt "  %-46s %12.3f ms/run@." name (est /. 1e6)
              else if est >= 1e3 then
                Format.fprintf fmt "  %-46s %12.3f us/run@." name (est /. 1e3)
              else Format.fprintf fmt "  %-46s %12.1f ns/run@." name est
          | Some _ | None ->
              Format.fprintf fmt "  %-46s (no estimate)@." name)
        ols)
    (micro_tests ());
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

(* ---------- BENCH.json raw-value scanning ---------- *)

(* BENCH.json is self-written single-line JSON, so a string-literal-aware
   bracket scan is enough to lift (or splice) a key's raw value from the
   previous run — no JSON parser in the tree, and none needed.
   [find_raw] locates the value of ["key":] at nesting depth 1 of [text]
   (so it works both on the whole document and on an extracted object)
   and returns its byte extent. *)
let find_raw ~key text =
  let needle = Printf.sprintf "\"%s\":" key in
  let n = String.length text in
  let len = String.length needle in
  let pos = ref (-1) in
  let depth = ref 0 and in_str = ref false and esc = ref false in
  let i = ref 0 in
  while !pos < 0 && !i < n do
    let c = text.[!i] in
    if !in_str then begin
      if !esc then esc := false
      else if c = '\\' then esc := true
      else if c = '"' then in_str := false
    end
    else begin
      match c with
      | '{' | '[' -> incr depth
      | '}' | ']' -> decr depth
      | '"' ->
          if !depth = 1 && !i + len <= n && String.sub text !i len = needle
          then pos := !i + len
          else in_str := true
      | _ -> ()
    end;
    incr i
  done;
  if !pos < 0 then None
  else begin
    let start = !pos in
    let j = ref start and d = ref 0 in
    let in_str = ref false and esc = ref false in
    let stop = ref (-1) in
    while !stop < 0 && !j < n do
      let c = text.[!j] in
      if !in_str then begin
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
      end
      else begin
        match c with
        | '{' | '[' -> incr d
        | '}' | ']' -> if !d = 0 then stop := !j else decr d
        | ',' -> if !d = 0 then stop := !j
        | '"' -> in_str := true
        | _ -> ()
      end;
      if !stop < 0 then incr j
    done;
    let stop = if !stop < 0 then n else !stop in
    Some (start, stop)
  end

let extract_raw ~key text =
  match find_raw ~key text with
  | None -> None
  | Some (start, stop) ->
      Some (String.trim (String.sub text start (stop - start)))

(* Replace the raw value of [key] in an object string; identity when the
   key is absent. *)
let set_raw ~key ~value text =
  match find_raw ~key text with
  | None -> text
  | Some (start, stop) ->
      String.concat ""
        [ String.sub text 0 start; value;
          String.sub text stop (String.length text - stop) ]

(* split a raw array body at top-level commas *)
let split_top text =
  let n = String.length text in
  let items = ref [] in
  let start = ref 0 in
  let d = ref 0 and in_str = ref false and esc = ref false in
  for i = 0 to n - 1 do
    let c = text.[i] in
    if !in_str then begin
      if !esc then esc := false
      else if c = '\\' then esc := true
      else if c = '"' then in_str := false
    end
    else
      match c with
      | '{' | '[' -> incr d
      | '}' | ']' -> decr d
      | '"' -> in_str := true
      | ',' when !d = 0 ->
          items := String.sub text !start (i - !start) :: !items;
          start := i + 1
      | _ -> ()
  done;
  if !start < n then items := String.sub text !start (n - !start) :: !items;
  (* [!items] is consed in reverse scan order; [rev_map] restores it.
     (A former extra [List.rev] here returned the items reversed, which
     silently flipped the BENCH.json history on every run — the order
     of pre-existing entries in the file reflects that.) *)
  List.rev_map String.trim !items |> List.filter (fun s -> s <> "")

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all)
  with Sys_error _ -> None

(* ---------- Hot-path gate (--hotpath) ---------- *)

type hotpath_baseline = {
  b_events_per_sec : float;
  b_minor_words_per_event : float;
  b_eqn37_adaptive_per_sec : float;
}

(* Pre-refactor numbers for the zero-allocation event-loop work, measured
   on this container at the commit preceding the hot-path PR (boxed heap
   entries, Hashtbl flow table, string-keyed metrics, adaptive-only eqn
   (37)), built with --profile release like the gate itself.  dune's dev
   profile passes -opaque, which discards cross-module inlining and
   distorts both throughput and allocation counts, so release is the only
   profile where the before/after comparison is meaningful.  These
   constants only seed the first run: once a BENCH.json with a hotpath
   section is committed, its [baseline] object is the source of truth
   ([load_baseline]), so the speedup column keeps measuring from the same
   fixed origin without a hardcoded copy drifting out of date here. *)
let seed_baseline =
  { b_events_per_sec = 1.74e6;
    b_minor_words_per_event = 170.65;
    b_eqn37_adaptive_per_sec = 41_000.0 }

let load_baseline ~json_path =
  let field obj_text key dflt =
    match extract_raw ~key obj_text with
    | Some v -> (
        match float_of_string_opt v with Some x -> x | None -> dflt)
    | None -> dflt
  in
  match read_file json_path with
  | None -> seed_baseline
  | Some text -> (
      match extract_raw ~key:"hotpath" text with
      | None | Some "null" -> seed_baseline
      | Some hp -> (
          match extract_raw ~key:"baseline" hp with
          | None | Some "null" -> seed_baseline
          | Some b ->
              { b_events_per_sec =
                  field b "events_per_sec" seed_baseline.b_events_per_sec;
                b_minor_words_per_event =
                  field b "minor_words_per_event"
                    seed_baseline.b_minor_words_per_event;
                b_eqn37_adaptive_per_sec =
                  field b "eqn37_adaptive_per_sec"
                    seed_baseline.b_eqn37_adaptive_per_sec }))

let now_ns () = Int64.to_float (Monotonic_clock.now ())

(* ---------- Event-queue hold benchmark ---------- *)

(* Classic calendar-queue "hold" model (Brown, CACM 1988): pre-fill the
   queue with [pending] events at unit mean spacing, then repeatedly pop
   the minimum and push a replacement at [t_min + Exp(mean = pending)],
   which keeps the population and the event-time window stationary.  One
   "event" is one pop+push pair.  Increments are pre-drawn into a table
   so the timed loop measures the queue, not the RNG, and both
   implementations consume the identical increment sequence, so the
   speedup column is apples to apples.  The loop bodies are written
   twice against the concrete modules rather than once through a functor
   or first-class module: without flambda an abstract module boundary
   boxes every float crossing it, which is exactly the cost the sim loop
   avoids by calling [Calendar_queue] directly. *)

let hold_mask = (1 lsl 16) - 1

let hold_incs =
  lazy
    (let rng = Mbac_stats.Rng.create ~seed:17 in
     let a = Float.Array.create (hold_mask + 1) in
     for i = 0 to hold_mask do
       Float.Array.set a i (Mbac_stats.Sample.exponential rng ~mean:1.0)
     done;
     a)

let hold_reps = 3

let median3 a =
  let x = Float.Array.get a 0
  and y = Float.Array.get a 1
  and z = Float.Array.get a 2 in
  Float.max (Float.min x y) (Float.min (Float.max x y) z)

type queue_row = {
  qr_pending : int;
  qr_heap_events_per_sec : float;
  qr_cal_events_per_sec : float;
  qr_speedup : float;
  qr_cal_minor_words_per_event : float;
}

let hold_heap ~pending ~ops =
  let incs = Lazy.force hold_incs in
  let q = Mbac_sim.Event_heap.create () in
  let fp = float_of_int pending in
  let t = ref 0.0 in
  for i = 0 to pending - 1 do
    t := !t +. Float.Array.unsafe_get incs (i land hold_mask);
    Mbac_sim.Event_heap.push q ~time:!t i
  done;
  (* untimed churn drains the whole cumulative-gap fill population so
     the timed window sees the stationary hold regime: until the fill
     is gone the local event density is fill + re-pushes superposed,
     and the inter-pop gap genuinely drifts by ~x2 as it drains.  Two
     fill-spans of churn also cover the calendar queue's amortization
     floor (one width rebuild per [size] pops), so its post-transient
     recalibration lands before the clock starts *)
  for i = 0 to (2 * pending) + (ops / 4) - 1 do
    let tm = Mbac_sim.Event_heap.min_time q in
    let p = Mbac_sim.Event_heap.min_payload q in
    Mbac_sim.Event_heap.drop_min q;
    Mbac_sim.Event_heap.push q
      ~time:(tm +. (Float.Array.unsafe_get incs (i land hold_mask) *. fp))
      p
  done;
  (* median of three timed windows: single windows of a DRAM-bound
     loop wander +-10% with machine jitter, too much for a relative
     gate; the same smoothing is applied to both implementations *)
  let eps = Float.Array.create hold_reps and words = Float.Array.create hold_reps in
  for rep = 0 to hold_reps - 1 do
    let t0 = now_ns () in
    let minor0 = Gc.minor_words () in
    for i = 0 to ops - 1 do
      let tm = Mbac_sim.Event_heap.min_time q in
      let p = Mbac_sim.Event_heap.min_payload q in
      Mbac_sim.Event_heap.drop_min q;
      Mbac_sim.Event_heap.push q
        ~time:(tm +. (Float.Array.unsafe_get incs (i land hold_mask) *. fp))
        p
    done;
    let minor1 = Gc.minor_words () in
    let t1 = now_ns () in
    Float.Array.set eps rep (float_of_int ops /. ((t1 -. t0) /. 1e9));
    Float.Array.set words rep ((minor1 -. minor0) /. float_of_int ops)
  done;
  (median3 eps, median3 words)

let hold_calendar ~pending ~ops =
  let incs = Lazy.force hold_incs in
  let q = Mbac_sim.Calendar_queue.create () in
  let fp = float_of_int pending in
  let t = ref 0.0 in
  for i = 0 to pending - 1 do
    t := !t +. Float.Array.unsafe_get incs (i land hold_mask);
    Mbac_sim.Calendar_queue.push q ~time:!t i
  done;
  (* same churn protocol as [hold_heap]: drain the fill transient and
     let the width recalibration converge before timing *)
  for i = 0 to (2 * pending) + (ops / 4) - 1 do
    let tm = Mbac_sim.Calendar_queue.min_time q in
    let p = Mbac_sim.Calendar_queue.min_payload q in
    Mbac_sim.Calendar_queue.drop_min q;
    Mbac_sim.Calendar_queue.push q
      ~time:(tm +. (Float.Array.unsafe_get incs (i land hold_mask) *. fp))
      p
  done;
  let eps = Float.Array.create hold_reps and words = Float.Array.create hold_reps in
  for rep = 0 to hold_reps - 1 do
    let t0 = now_ns () in
    let minor0 = Gc.minor_words () in
    for i = 0 to ops - 1 do
      let tm = Mbac_sim.Calendar_queue.min_time q in
      let p = Mbac_sim.Calendar_queue.min_payload q in
      Mbac_sim.Calendar_queue.drop_min q;
      Mbac_sim.Calendar_queue.push q
        ~time:(tm +. (Float.Array.unsafe_get incs (i land hold_mask) *. fp))
        p
    done;
    let minor1 = Gc.minor_words () in
    let t1 = now_ns () in
    Float.Array.set eps rep (float_of_int ops /. ((t1 -. t0) /. 1e9));
    Float.Array.set words rep ((minor1 -. minor0) /. float_of_int ops)
  done;
  (median3 eps, median3 words)

(* Queue gate.  Two regimes matter, and the sweep measures both:

   - queue-algorithm regime (pending small enough that the structure is
     cache-resident): per-op cost is the algorithm, and the calendar
     queue must clear the absolute 10M events/sec floor;
   - million-flow regime (pending = 1e6): the ~40MB working set makes
     ANY queue DRAM-latency-bound on the 1-core reference container —
     the hold cycle costs ~2 dependent cache misses however the
     structure is organized, a ~4M events/sec ceiling that compresses
     algorithmic speedups.  Here the bar is relative to the binary heap
     measured in the same run on the same increment stream.

   The gate passes on the million row outright (absolute floor or the
   x2.5 queue-dominated bar, for hardware where memory keeps up), or on
   the combination: floor met in the algorithm regime AND the heap
   beaten by the DRAM-regime bar on the million row.  Bars sit below
   the measured steady state so noise cannot flake the gate, same as
   the allocation gate (9 words vs 7.49 measured): the reference
   container measures x2.60 / x2.05 / x1.44 (median of three timed
   windows) at pending = 1e3/1e5/1e6. *)
let queue_gate_floor = 1e7
let queue_gate_speedup = 2.5
let queue_gate_speedup_dram = 1.3
let queue_hold_ops = 2_000_000

let run_queue_sweep fmt ~pending_list =
  Format.fprintf fmt "  queue hold model (%d pop+push pairs per row):@."
    queue_hold_ops;
  let rows =
    List.map
      (fun pending ->
        let heap_eps, _ = hold_heap ~pending ~ops:queue_hold_ops in
        let cal_eps, cal_words =
          hold_calendar ~pending ~ops:queue_hold_ops
        in
        let speedup = cal_eps /. heap_eps in
        Format.fprintf fmt
          "    pending %8d:  heap %10.0f ev/s   calendar %10.0f ev/s   \
           x%.2f  (%.2f words/event)@."
          pending heap_eps cal_eps speedup cal_words;
        { qr_pending = pending;
          qr_heap_events_per_sec = heap_eps;
          qr_cal_events_per_sec = cal_eps;
          qr_speedup = speedup;
          qr_cal_minor_words_per_event = cal_words })
      pending_list
  in
  let last = List.nth rows (List.length rows - 1) in
  let best_cal =
    List.fold_left (fun acc r -> Float.max acc r.qr_cal_events_per_sec) 0. rows
  in
  let floor_pass = best_cal >= queue_gate_floor in
  let pass =
    last.qr_cal_events_per_sec >= queue_gate_floor
    || last.qr_speedup >= queue_gate_speedup
    || (floor_pass && last.qr_speedup >= queue_gate_speedup_dram)
  in
  Format.fprintf fmt
    "  queue gate: %.2g ev/s floor in the cache-resident regime (best \
     %.3g): %s@."
    queue_gate_floor best_cal
    (if floor_pass then "met" else "MISSED");
  Format.fprintf fmt
    "              pending=%d row: x%.2f vs heap (pass at x%.1f, or \
     x%.1f with the floor met, or %.2g ev/s outright): %s@."
    last.qr_pending last.qr_speedup queue_gate_speedup
    queue_gate_speedup_dram queue_gate_floor
    (if pass then "PASS" else "FAIL");
  (rows, pass)

let hotpath_sim ~max_events =
  let cfg =
    { (Mbac_sim.Continuous_load.default_config ~capacity:100.0
         ~holding_time_mean:1000.0 ~target_p_q:1e-3)
      with
      Mbac_sim.Continuous_load.max_events;
      warmup = 10.0;
      batch_length = 100.0;
      (* never trigger the stopping rule: this run must process exactly
         max_events so events/sec and words/event are comparable *)
      check_every_events = max_int }
  in
  let controller =
    Mbac.Controller.with_memory ~capacity:100.0 ~p_ce:1e-3 ~t_m:100.0
  in
  let rng = Mbac_stats.Rng.create ~seed:11 in
  Mbac_sim.Continuous_load.run rng cfg ~controller
    ~make_source:(fun rng ~start ->
      Mbac_traffic.Rcbr.create rng
        (Mbac_traffic.Rcbr.default_params ~mu:1.0)
        ~start)

(* Steady-state allocation ceiling for the sim loop, words per event.
   The calendar queue itself is allocation-free in steady state; the
   budget is spent on measurement batches and controller updates. *)
let alloc_gate_words = 9.0

type hotpath_numbers = {
  hp_events : int;
  hp_events_per_sec : float;
  hp_minor_words_per_event : float;
  hp_eqn37_adaptive_per_sec : float;
  hp_eqn37_memoized_per_sec : float; (* nan when unavailable *)
  hp_baseline : hotpath_baseline; (* comparison origin actually used *)
  hp_queue_rows : queue_row list;
  hp_queue_gate_pass : bool;
  hp_alloc_pass : bool;
}

let run_hotpath fmt ~baseline ~pending_list =
  Format.fprintf fmt "@.=== Hot-path gate ===@.";
  ignore (hotpath_sim ~max_events:200_000) (* warm up code + allocator *);
  let n_events = 1_000_000 in
  let t0 = now_ns () in
  let minor0 = Gc.minor_words () in
  let r = hotpath_sim ~max_events:n_events in
  let minor1 = Gc.minor_words () in
  let t1 = now_ns () in
  let events = r.Mbac_sim.Continuous_load.events in
  let events_per_sec = float_of_int events /. ((t1 -. t0) /. 1e9) in
  let words_per_event = (minor1 -. minor0) /. float_of_int events in
  Format.fprintf fmt "  continuous-load loop:   %10.0f events/sec  (%d events)@."
    events_per_sec events;
  if baseline.b_events_per_sec > 0.0 then
    Format.fprintf fmt "    vs pre-refactor baseline %.0f ev/s: speedup x%.2f@."
      baseline.b_events_per_sec
      (events_per_sec /. baseline.b_events_per_sec);
  Format.fprintf fmt "  minor allocation:       %10.2f words/event@."
    words_per_event;
  let alloc_pass = words_per_event <= alloc_gate_words in
  Format.fprintf fmt "  alloc gate (<= %.1f words/event): %s@."
    alloc_gate_words
    (if alloc_pass then "PASS" else "FAIL");
  let queue_rows, queue_pass = run_queue_sweep fmt ~pending_list in
  (* eqn (37): many-alpha workload, the shape robustness profiles and
     inversion sweeps present.  Same alphas for both evaluators. *)
  let alphas = Array.init 2_000 (fun i -> 1.0 +. (float_of_int i *. 0.002)) in
  let time_evals f =
    let t0 = now_ns () in
    let acc = ref 0.0 in
    Array.iter (fun a -> acc := !acc +. f a) alphas;
    let t1 = now_ns () in
    ignore !acc;
    float_of_int (Array.length alphas) /. ((t1 -. t0) /. 1e9)
  in
  let adaptive_per_sec =
    time_evals (fun a -> Mbac.Memory_formula.overflow ~p:params ~t_m:10.0 ~alpha_ce:a)
  in
  Format.fprintf fmt "  eqn (37) adaptive:      %10.0f evals/sec@."
    adaptive_per_sec;
  let tab = Mbac.Memory_formula.Tabulated.create ~p:params ~t_m:10.0 () in
  ignore (time_evals (fun a -> Mbac.Memory_formula.Tabulated.overflow tab ~alpha_ce:a));
  let memoized_per_sec =
    time_evals (fun a -> Mbac.Memory_formula.Tabulated.overflow tab ~alpha_ce:a)
  in
  Format.fprintf fmt
    "  eqn (37) tabulated:     %10.0f evals/sec  (x%.0f; build = ~128 integrals, repaid after ~128 lookups)@."
    memoized_per_sec
    (memoized_per_sec /. adaptive_per_sec);
  { hp_events = events;
    hp_events_per_sec = events_per_sec;
    hp_minor_words_per_event = words_per_event;
    hp_eqn37_adaptive_per_sec = adaptive_per_sec;
    hp_eqn37_memoized_per_sec = memoized_per_sec;
    hp_baseline = baseline;
    hp_queue_rows = queue_rows;
    hp_queue_gate_pass = queue_pass;
    hp_alloc_pass = alloc_pass }

(* ---------- Parallel replication engine scaling ---------- *)

let scaling_cells = 16

(* A 16-cell sweep of short continuous-load sims — the workload shape of
   every figure reproduction — fanned out at pool widths 1/2/4.  The
   determinism contract says the results are identical; this measures
   whether the wall clock shrinks. *)
let sweep ~jobs =
  ignore
    (Mbac_sim.Parallel.run_tasks ~jobs
       (List.init scaling_cells (fun i () ->
            let cfg =
              { (Mbac_sim.Continuous_load.default_config ~capacity:100.0
                   ~holding_time_mean:1000.0 ~target_p_q:1e-3)
                with
                Mbac_sim.Continuous_load.max_events = 25_000;
                warmup = 10.0;
                batch_length = 100.0 }
            in
            let controller =
              Mbac.Controller.with_memory ~capacity:100.0 ~p_ce:1e-3
                ~t_m:100.0
            in
            let rng =
              Mbac_stats.Rng.derive ~seed:11
                ~tag:(Printf.sprintf "bench-scaling-%d" i)
            in
            Mbac_sim.Continuous_load.run rng cfg ~controller
              ~make_source:(fun rng ~start ->
                Mbac_traffic.Rcbr.create rng
                  (Mbac_traffic.Rcbr.default_params ~mu:1.0)
                  ~start))))

type scaling_row = {
  s_jobs : int;
  s_effective : int; (* pool width actually used *)
  s_ns : float;
  s_speedup : float;
  s_required : float; (* gate threshold for this row; nan for jobs=1 *)
  s_pass : bool;
}

(* The multicore targets (>= 1.6x at 2 jobs, >= 3x at 4 jobs) gate the
   release profile whenever the hardware can actually run the pool in
   parallel.  On machines with fewer cores than the requested width a
   wall-clock speedup is physically unattainable — domains time-share
   one core — so the gate degrades to an overhead bound: replication
   fan-out must not be a net loss (>= 0.8x guards against the
   pre-refactor regression, which bottomed at 0.90x on one core while
   real multicore losses from GC stalls can run far deeper). *)
let scaling_required ~cores ~jobs ~effective =
  let hw = min effective cores in
  if jobs >= 4 && hw >= 4 then 3.0
  else if jobs >= 2 && hw >= 2 then 1.6
  else 0.8

let run_scaling fmt =
  let open Bechamel in
  let cores = Domain.recommended_domain_count () in
  Format.fprintf fmt
    "@.=== Parallel scaling (%d-sim sweep, jobs in {1, 2, 4}; %d core(s) \
     available, domain cap %d) ===@."
    scaling_cells cores
    (Mbac_sim.Parallel.domain_cap ());
  (* A sweep run is ~100-200 ms, so a 1 s quota yields single-digit
     sample counts and ±25% run-to-run scatter — enough to trip the
     overhead gate on noise alone.  4 s per row buys ~30 OLS samples. *)
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 4.0) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let estimate jobs =
    let test =
      Test.make
        ~name:(Printf.sprintf "sweep jobs=%d" jobs)
        (Staged.stage (fun () -> sweep ~jobs))
    in
    let results = Benchmark.all cfg instances test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
        Toolkit.Instance.monotonic_clock results
    in
    Hashtbl.fold
      (fun _ ols_result acc ->
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> est
        | Some _ | None -> acc)
      ols nan
  in
  sweep ~jobs:2 (* warm up the domain machinery once *);
  let base = estimate 1 in
  Format.fprintf fmt "  %-24s %12.3f ms/run@." "sweep jobs=1" (base /. 1e6);
  let base_row =
    { s_jobs = 1;
      s_effective = Mbac_sim.Parallel.effective_jobs ~jobs:1 scaling_cells;
      s_ns = base;
      s_speedup = 1.0;
      s_required = nan;
      s_pass = true }
  in
  let rest =
    List.map
      (fun jobs ->
        let effective =
          Mbac_sim.Parallel.effective_jobs ~jobs scaling_cells
        in
        let est = estimate jobs in
        let speedup = base /. est in
        let required = scaling_required ~cores ~jobs ~effective in
        let pass = speedup >= required in
        Format.fprintf fmt
          "  %-24s %12.3f ms/run   speedup x%.2f  (width %d, required >= \
           %.1f: %s)@."
          (Printf.sprintf "sweep jobs=%d" jobs)
          (est /. 1e6) speedup effective required
          (if pass then "PASS" else "FAIL");
        { s_jobs = jobs;
          s_effective = effective;
          s_ns = est;
          s_speedup = speedup;
          s_required = required;
          s_pass = pass })
      [ 2; 4 ]
  in
  let rows = base_row :: rest in
  if cores < 4 then
    Format.fprintf fmt
      "  note: %d core(s) < 4 — the >= 3x multicore target cannot apply; \
       gating the overhead bound instead.@."
      cores;
  Format.fprintf fmt "  scaling gate: %s@."
    (if List.for_all (fun r -> r.s_pass) rows then "PASS" else "FAIL");
  rows

(* ---------- Rare-event gate (--rare) ---------- *)

(* How many events must a naive time-fraction estimate simulate per digit
   of confidence at a deep tail, versus the splitting engine?  The gate
   system is the deep-tail Fig 5 cell (n = 100, p_q = 1e-5, T_m = 10)
   whose true p_f sits near 1e-5.  Naive MC cannot reach a 10% CI there
   in any reasonable budget, so it runs to a fixed budget and its cost at
   the target CI is extrapolated by (achieved/target)^2 — CI half-width
   shrinks with the square root of the effort.  Splitting doubles its
   per-level trials until the measured CI is at or under target.
   [--toy] substitutes a seconds-scale system (shallower tail, small
   budgets) for smoke coverage; its ratio is not the gate. *)

type rare_numbers = {
  r_toy : bool;
  r_target_ci : float;
  r_p_f : float;
  r_ci_rel : float;
  r_events : int;
  r_trials : int;
  r_naive_p_f : float;
  r_naive_ci_rel : float;
  r_naive_events : int;
  r_naive_events_extrapolated : float;
  r_events_ratio : float;
  r_theory : float;
}

let run_rare fmt ~toy =
  Format.fprintf fmt "@.=== Rare-event gate (multilevel splitting vs naive \
                      MC)%s ===@."
    (if toy then " [toy]" else "");
  let p =
    if toy then
      Mbac.Params.make ~n:30.0 ~mu:1.0 ~sigma:0.3 ~t_h:50.0 ~t_c:1.0
        ~p_q:1e-3
    else
      Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0
        ~p_q:1e-5
  in
  let t_m = if toy then Mbac.Params.t_h_tilde p else 10.0 in
  let alpha = Mbac.Params.alpha_q p in
  let capacity = Mbac.Params.capacity p in
  let target_ci = if toy then 0.5 else 0.1 in
  let naive_budget = if toy then 400_000 else 24_000_000 in
  let base_cfg =
    Mbac_experiments.Common.sim_config ~profile:Mbac_experiments.Common.Quick
      ~p ~t_m
  in
  (* naive: fixed event budget, no early stop, direct batch-means CI *)
  let naive_cfg =
    { base_cfg with
      Mbac_sim.Continuous_load.max_events = naive_budget;
      check_every_events = max_int;
      max_time = infinity }
  in
  let controller () =
    Mbac_experiments.Common.ce_controller ~capacity ~t_m ~alpha_ce:alpha
  in
  let make_source = Mbac_experiments.Common.rcbr_factory ~p in
  let naive =
    Mbac_sim.Continuous_load.run
      (Mbac_stats.Rng.derive ~seed:11 ~tag:"bench-rare-naive")
      naive_cfg ~controller:(controller ()) ~make_source
  in
  let naive_events = naive.Mbac_sim.Continuous_load.events in
  let naive_ci = naive.Mbac_sim.Continuous_load.ci_rel in
  Format.fprintf fmt
    "  naive MC:      p_f = %-10.4g ci_rel = %-8.3g (%d events)@."
    naive.Mbac_sim.Continuous_load.p_f naive_ci naive_events;
  let naive_extrapolated =
    if Float.is_nan naive_ci || naive_ci <= 0.0 then nan
    else if naive_ci <= target_ci then float_of_int naive_events
    else
      float_of_int naive_events *. (naive_ci /. target_ci)
      *. (naive_ci /. target_ci)
  in
  if naive_ci > target_ci then
    Format.fprintf fmt
    "    -> %.3g events extrapolated to reach ci_rel = %g@."
      naive_extrapolated target_ci;
  (* splitting: double the per-level effort until the CI target holds *)
  let pilot_time =
    if toy then 400.0
    else 100.0 *. base_cfg.Mbac_sim.Continuous_load.batch_length
  in
  let trials0 = if toy then 256 else 1024 in
  let max_trials = if toy then 512 else 16_384 in
  let split_cfg trials =
    { (Mbac_sim.Splitting.default_config ~pilot_time) with
      Mbac_sim.Splitting.trials_per_level = trials;
      levels = (if toy then 4 else 6);
      seed_tag = "bench-rare" }
  in
  let rec ladder trials =
    let r =
      Mbac_sim.Splitting.run ~seed:11 (split_cfg trials) base_cfg
        ~controller:(controller ()) ~make_source
    in
    Format.fprintf fmt
      "  splitting:     p_f = %-10.4g ci_rel = %-8.3g (%d events, %d \
       trials/level)@."
      r.Mbac_sim.Splitting.p_f r.Mbac_sim.Splitting.ci_rel
      r.Mbac_sim.Splitting.total_events trials;
    if r.Mbac_sim.Splitting.ci_rel <= target_ci || trials >= max_trials
    then (r, trials)
    else ladder (2 * trials)
  in
  let split, trials = ladder trials0 in
  let ratio =
    naive_extrapolated /. float_of_int split.Mbac_sim.Splitting.total_events
  in
  let theory =
    Mbac.Memory_formula.overflow_cached ~p ~t_m ~alpha_ce:alpha
  in
  Format.fprintf fmt
    "  theory (eqn 37): %.4g;  events ratio (naive at ci_rel = %g / \
     splitting): x%.1f@."
    theory target_ci ratio;
  if not toy then
    Format.fprintf fmt "  gate (ci_rel <= %g and ratio >= 20): %s@."
      target_ci
      (if split.Mbac_sim.Splitting.ci_rel <= target_ci && ratio >= 20.0
       then "PASS"
       else "FAIL");
  { r_toy = toy;
    r_target_ci = target_ci;
    r_p_f = split.Mbac_sim.Splitting.p_f;
    r_ci_rel = split.Mbac_sim.Splitting.ci_rel;
    r_events = split.Mbac_sim.Splitting.total_events;
    r_trials = trials;
    r_naive_p_f = naive.Mbac_sim.Continuous_load.p_f;
    r_naive_ci_rel = naive_ci;
    r_naive_events = naive_events;
    r_naive_events_extrapolated = naive_extrapolated;
    r_events_ratio = ratio;
    r_theory = theory }

(* ---------- Serving-engine gate (--serve) ---------- *)

(* Single-core decision throughput through the full in-process stack:
   every request is encoded to wire bytes, decoded by the server session
   layer, dispatched, and the response decoded back — the same path a
   socket peer exercises minus the kernel.  The engine is first warmed
   with a mixed loadgen workload (arrivals, departures, measurement
   passes) so decisions run against a published estimate, then a pure
   Decide loop is timed.  The gate (release profile, non-toy) requires
   >= 1e6 decisions/sec; latency quantiles come from the
   [serve_decision_latency_seconds] quantile histogram. *)

let serve_gate_floor = 1e6

type serve_numbers = {
  sv_toy : bool;
  sv_decides : int;
  sv_decisions_per_sec : float;
  sv_p50 : float;
  sv_p99 : float;
  sv_p999 : float;
  sv_admit_rate : float;
  sv_updates : int;
  sv_pass : bool;
}

let run_serve fmt ~toy =
  Format.fprintf fmt "@.=== Serving-engine gate (in-process decision \
                      throughput)%s ===@."
    (if toy then " [toy]" else "");
  let engine =
    Mbac_serve.Engine.create
      { capacity = 100.0;
        criteria =
          [ Mbac_serve.Engine.Gaussian { cname = "ce:0.01"; p_ce = 0.01 };
            Mbac_serve.Engine.Hoeffding
              { cname = "hoeffding:0.01:2.0"; p_ce = 0.01; peak = 2.0 } ];
        estimator = Mbac.Estimator.ewma ~t_m:100.0;
        measure_every = 16 }
  in
  let client = Mbac_serve.Client.inproc engine in
  let warm_requests = if toy then 5_000 else 50_000 in
  let warm =
    Mbac_serve.Loadgen.run client
      { Mbac_serve.Loadgen.seed = 7; requests = warm_requests;
        arrival_mean = 1.0; hold_mean = 100.0; load_mean = 1.0;
        load_std = 0.3; n_criteria = 2 }
  in
  Format.fprintf fmt "  warmup: %d requests, %d admitted, %d departed@."
    warm.Mbac_serve.Loadgen.sent warm.Mbac_serve.Loadgen.admitted
    warm.Mbac_serve.Loadgen.departures;
  (* pre-draw the offered loads so the timed loop is pure client+engine *)
  let loads =
    let rng = Mbac_stats.Rng.derive ~seed:7 ~tag:"bench-serve-loads" in
    Array.init 1024 (fun _ ->
        Mbac_stats.Sample.lognormal_of_moments rng ~mean:1.0 ~std:0.3)
  in
  let decides = if toy then 200_000 else 2_000_000 in
  let admits = ref 0 in
  let now () = Int64.to_float (Monotonic_clock.now ()) in
  let t0 = now () in
  for i = 0 to decides - 1 do
    match
      Mbac_serve.Client.rpc client
        (Mbac_serve.Protocol.Decide
           { criterion = i land 1; load = loads.(i land 1023);
             now = float_of_int i })
    with
    | Mbac_serve.Protocol.Decision { admit; _ } ->
        if admit then incr admits
    | _ -> failwith "bench: unexpected Decide reply"
  done;
  let elapsed_s = (now () -. t0) /. 1e9 in
  Mbac_serve.Client.close client;
  let dps = float_of_int decides /. elapsed_s in
  let stats = Mbac_serve.Engine.stats engine in
  let q =
    match
      Mbac_telemetry.Snapshot.find
        (Mbac_telemetry.Snapshot.current ())
        "serve_decision_latency_seconds"
    with
    | Some (Mbac_telemetry.Snapshot.Qhistogram h) ->
        fun p ->
          Mbac_telemetry.Quantile_histogram.quantile_of ~lo:h.q_lo
            ~buckets_per_decade:h.q_buckets_per_decade ~decades:h.q_decades
            ~underflow:h.q_underflow ~overflow:h.q_overflow
            ~counts:h.q_counts p
    | _ -> fun _ -> nan
  in
  let p50 = q 0.5 and p99 = q 0.99 and p999 = q 0.999 in
  let admit_rate = float_of_int !admits /. float_of_int decides in
  Format.fprintf fmt
    "  decide loop:   %d requests in %.3f s = %.3g decisions/sec@." decides
    elapsed_s dps;
  Format.fprintf fmt
    "  latency:       p50 %.3g s  p99 %.3g s  p999 %.3g s@." p50 p99 p999;
  Format.fprintf fmt
    "  admit rate %.3f, measurement updates %d@." admit_rate
    stats.Mbac_serve.Engine.updates;
  let pass = toy || dps >= serve_gate_floor in
  if not toy then
    Format.fprintf fmt "  gate (>= %.2g decisions/sec, release): %s@."
      serve_gate_floor
      (if pass then "PASS" else "FAIL");
  { sv_toy = toy;
    sv_decides = decides;
    sv_decisions_per_sec = dps;
    sv_p50 = p50;
    sv_p99 = p99;
    sv_p999 = p999;
    sv_admit_rate = admit_rate;
    sv_updates = stats.Mbac_serve.Engine.updates;
    sv_pass = pass }

(* ---------- Network gate (--network) ---------- *)

(* The sharded multi-link simulator against two bars:

   - overhead: a 1-shard 1-link network is the Continuous_load Poisson
     loop plus the wheel-payload/window machinery, processing the
     identical draw sequence (the equivalence suite proves the runs
     match draw-for-draw and bitwise).  The machinery may not cost more
     than 10%: events/sec >= 0.9x the plain loop's.
   - scaling: an 8-leaf star resharded across {1, 2, 4} wheels with
     jobs = shards.  Hardware-aware bars like the replication sweep:
     >= 2.5x at 4 shards on >= 4 cores, >= 1.4x at 2 on >= 2, else a
     0.7x overhead bound (domains time-sharing one core make a
     wall-clock speedup physically unattainable; the bound guards
     against window bookkeeping becoming a deep net loss — the 1-core
     reference container measures 0.76-0.86x at 4 shards, so the bar
     sits under the noise floor like the other gates').

   The rendered summary of every scaling run must also be
   byte-identical across shard counts — the determinism contract is
   re-checked inside the perf gate so a "fix" that buys throughput by
   breaking it cannot pass. *)

let network_overhead_min = 0.9

let network_required ~cores ~effective =
  let hw = min effective cores in
  if effective >= 4 && hw >= 4 then 2.5
  else if effective >= 2 && hw >= 2 then 1.4
  else 0.7

type network_row = {
  n_shards : int;
  n_jobs : int;
  n_events : int;
  n_events_per_sec : float;
  n_speedup : float; (* nan for the shards=1 base row *)
  n_required : float; (* nan for the shards=1 base row *)
  n_pass : bool;
}

type network_numbers = {
  nw_toy : bool;
  nw_loop_events_per_sec : float;
  nw_single_events_per_sec : float;
  nw_overhead_ratio : float;
  nw_overhead_pass : bool;
  nw_rows : network_row list;
  nw_deterministic : bool;
  nw_pass : bool;
}

let network_capacity = 100.0
let network_rate = 0.09 (* offered load 0.9 per link at t_h = 1000 *)

let network_make_source rng ~start =
  Mbac_traffic.Rcbr.create rng
    (Mbac_traffic.Rcbr.default_params ~mu:1.0)
    ~start

let network_controller ~link:_ ~capacity =
  Mbac.Controller.with_memory ~capacity ~p_ce:1e-3 ~t_m:100.0

let network_cfg ~topology ~shards ~max_events =
  { (Mbac_net.Network.default_config ~topology ~holding_time_mean:1000.0
       ~target_p_q:1e-3)
    with
    Mbac_net.Network.shards;
    warmup = 10.0;
    batch_length = 100.0;
    max_events }

let network_run ~topology ~shards ~jobs ~max_events =
  Mbac_net.Network.run ~jobs ~seed:11
    (network_cfg ~topology ~shards ~max_events)
    ~make_controller:network_controller ~make_source:network_make_source

(* median of three timed runs, same smoothing as the queue hold model
   (the first rep also absorbs domain spawn for the barrier driver) *)
let time_network ~topology ~shards ~jobs ~max_events =
  let eps = Float.Array.create hold_reps in
  let result = ref None in
  for rep = 0 to hold_reps - 1 do
    let t0 = now_ns () in
    let r = network_run ~topology ~shards ~jobs ~max_events in
    let t1 = now_ns () in
    result := Some r;
    Float.Array.set eps rep
      (float_of_int r.Mbac_net.Network.events /. ((t1 -. t0) /. 1e9))
  done;
  (Option.get !result, median3 eps)

let run_network fmt ~toy =
  Format.fprintf fmt
    "@.=== Network gate (sharded multi-link simulator)%s ===@."
    (if toy then " [toy]" else "");
  let single_events = if toy then 100_000 else 500_000 in
  let single_topo =
    Mbac_net.Topology.line ~links:1 ~capacity:network_capacity
      ~rate:network_rate
  in
  ignore
    (network_run ~topology:single_topo ~shards:1 ~jobs:1
       ~max_events:(single_events / 5)) (* warm up code + allocator *);
  let net1, net1_eps =
    time_network ~topology:single_topo ~shards:1 ~jobs:1
      ~max_events:single_events
  in
  (* the reference loop consumes the identical stream and event count,
     so the ratio compares machinery, not workload *)
  let loop_cfg =
    { (Mbac_sim.Continuous_load.default_config ~capacity:network_capacity
         ~holding_time_mean:1000.0 ~target_p_q:1e-3)
      with
      Mbac_sim.Continuous_load.arrival = `Poisson network_rate;
      warmup = 10.0;
      batch_length = 100.0;
      check_every_events = max_int;
      max_events = net1.Mbac_net.Network.events }
  in
  let run_loop () =
    Mbac_sim.Continuous_load.run
      (Mbac_stats.Rng.derive ~seed:11
         ~tag:(Mbac_net.Network.route_stream_tag 0))
      loop_cfg
      ~controller:(network_controller ~link:0 ~capacity:network_capacity)
      ~make_source:network_make_source
  in
  ignore (run_loop ());
  let loop_eps =
    let eps = Float.Array.create hold_reps in
    for rep = 0 to hold_reps - 1 do
      let t0 = now_ns () in
      let r = run_loop () in
      let t1 = now_ns () in
      Float.Array.set eps rep
        (float_of_int r.Mbac_sim.Continuous_load.events /. ((t1 -. t0) /. 1e9))
    done;
    median3 eps
  in
  let ratio = net1_eps /. loop_eps in
  let overhead_pass = ratio >= network_overhead_min in
  Format.fprintf fmt "  continuous-load loop:    %10.0f events/sec  (%d events)@."
    loop_eps net1.Mbac_net.Network.events;
  Format.fprintf fmt
    "  1-shard 1-link network:  %10.0f events/sec   ratio x%.2f (>= %.2f: %s)@."
    net1_eps ratio network_overhead_min
    (if overhead_pass then "PASS" else "FAIL");
  let star_topo =
    Mbac_net.Topology.star ~leaves:8 ~capacity:network_capacity
      ~rate:network_rate
  in
  let scale_events = if toy then 150_000 else 600_000 in
  let cores = Domain.recommended_domain_count () in
  Format.fprintf fmt
    "  8-leaf star, shards = jobs in {1, 2, 4} (%d core(s) available, \
     domain cap %d):@."
    cores
    (Mbac_sim.Parallel.domain_cap ());
  let base_eps = ref nan in
  let renders = ref [] in
  let rows =
    List.map
      (fun shards ->
        let jobs = shards in
        let r, eps =
          time_network ~topology:star_topo ~shards ~jobs
            ~max_events:scale_events
        in
        renders :=
          Format.asprintf "%a" Mbac_net.Network.pp_result r :: !renders;
        if shards = 1 then base_eps := eps;
        let speedup = if shards = 1 then nan else eps /. !base_eps in
        let effective = Mbac_sim.Parallel.effective_jobs ~jobs shards in
        let required =
          if shards = 1 then nan else network_required ~cores ~effective
        in
        let pass = shards = 1 || speedup >= required in
        Format.fprintf fmt "    shards %d: %10.0f events/sec%s@." shards eps
          (if shards = 1 then "   (base)"
           else
             Printf.sprintf "   speedup x%.2f  (width %d, required >= %.2f: %s)"
               speedup effective required
               (if pass then "PASS" else "FAIL"));
        { n_shards = shards;
          n_jobs = jobs;
          n_events = r.Mbac_net.Network.events;
          n_events_per_sec = eps;
          n_speedup = speedup;
          n_required = required;
          n_pass = pass })
      [ 1; 2; 4 ]
  in
  if cores < 4 then
    Format.fprintf fmt
      "  note: %d core(s) < 4 — multicore targets cannot apply; gating the \
       overhead bound instead.@."
      cores;
  let deterministic =
    match !renders with
    | [] -> false
    | r0 :: rest -> List.for_all (String.equal r0) rest
  in
  Format.fprintf fmt "  resharded summaries byte-identical: %s@."
    (if deterministic then "yes" else "NO — determinism contract broken");
  let rows_pass = List.for_all (fun r -> r.n_pass) rows in
  let pass = deterministic && (toy || (overhead_pass && rows_pass)) in
  if not toy then
    Format.fprintf fmt "  network gate: %s@."
      (if pass then "PASS" else "FAIL");
  { nw_toy = toy;
    nw_loop_events_per_sec = loop_eps;
    nw_single_events_per_sec = net1_eps;
    nw_overhead_ratio = ratio;
    nw_overhead_pass = overhead_pass;
    nw_rows = rows;
    nw_deterministic = deterministic;
    nw_pass = pass }

(* ---------- BENCH.json ---------- *)

(* Sections a given invocation does not re-measure (e.g. micro when only
   --rare ran) are carried forward from the previous file via the raw
   scanners above, and every run appends a summary line to the "history"
   array, keyed by git describe + profile, so the performance trajectory
   accumulates across commits. *)

let git_describe () =
  try
    let ic =
      Unix.open_process_in "git describe --always --dirty 2>/dev/null"
    in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let history_cap = 50

(* The history entry keys, in output order.  Re-runs at the same commit
   and profile (e.g. --hotpath then --network while iterating) merge
   into one row keyed by describe + profile instead of appending
   near-duplicates: the newly measured fields win, the old row fills
   the rest. *)
let history_keys =
  [ "describe"; "profile"; "reproduction_ns"; "hotpath_events_per_sec";
    "queue_calendar_events_per_sec"; "queue_pending"; "rare_events_ratio";
    "serve_decisions_per_sec"; "scaling_speedup_at_4";
    "network_events_per_sec" ]

let merge_history_entries ~prev ~entry =
  Mbac_telemetry.Json.obj
    (List.filter_map
       (fun key ->
         match (extract_raw ~key entry, extract_raw ~key prev) with
         | Some v, _ when v <> "null" -> Some (key, v)
         | _, Some v -> Some (key, v)
         | Some v, None -> Some (key, v)
         | None, None -> None)
       history_keys)

let write_bench_json ~path ~profile ~repro_ns ~micro ~scaling ~hotpath ~rare
    ~serve ~network =
  let open Mbac_telemetry.Json in
  let fnan v = if Float.is_nan v then "null" else float v in
  let previous = read_file path in
  let carry key rendered =
    match rendered with
    | Some j -> j
    | None -> (
        match previous with
        | None -> "null"
        | Some text -> (
            match extract_raw ~key text with Some v -> v | None -> "null"))
  in
  let hotpath_json =
    match hotpath with
    | None -> None
    | Some h ->
        Some
          (obj
          [ ("events", int h.hp_events);
            ("events_per_sec", fnan h.hp_events_per_sec);
            ("minor_words_per_event", fnan h.hp_minor_words_per_event);
            ("alloc_gate_words_per_event", float alloc_gate_words);
            ("alloc_gate_pass", bool h.hp_alloc_pass);
            ("eqn37_adaptive_per_sec", fnan h.hp_eqn37_adaptive_per_sec);
            ("eqn37_memoized_per_sec", fnan h.hp_eqn37_memoized_per_sec);
            ("baseline",
             obj
               [ ("events_per_sec", fnan h.hp_baseline.b_events_per_sec);
                 ("minor_words_per_event",
                  fnan h.hp_baseline.b_minor_words_per_event);
                 ("eqn37_adaptive_per_sec",
                  fnan h.hp_baseline.b_eqn37_adaptive_per_sec)
               ]);
            ("speedup_vs_baseline",
             if h.hp_baseline.b_events_per_sec > 0.0 then
               fnan (h.hp_events_per_sec /. h.hp_baseline.b_events_per_sec)
             else "null");
            ("queue",
             obj
               [ ("hold_ops", int queue_hold_ops);
                 ("gate_floor_events_per_sec", float queue_gate_floor);
                 ("gate_speedup_vs_heap", float queue_gate_speedup);
                 ("gate_speedup_dram_vs_heap", float queue_gate_speedup_dram);
                 ("gate_pass", bool h.hp_queue_gate_pass);
                 ("rows",
                  arr
                    (List.map
                       (fun r ->
                         obj
                           [ ("pending", int r.qr_pending);
                             ("heap_events_per_sec",
                              fnan r.qr_heap_events_per_sec);
                             ("calendar_events_per_sec",
                              fnan r.qr_cal_events_per_sec);
                             ("speedup_vs_heap", fnan r.qr_speedup);
                             ("calendar_minor_words_per_event",
                              fnan r.qr_cal_minor_words_per_event) ])
                       h.hp_queue_rows)) ]) ])
  in
  let micro_json =
    Option.map
      (fun rows ->
        arr
          (List.map
             (fun (name, ns) ->
               obj [ ("name", string name); ("ns_per_run", float ns) ])
             rows))
      micro
  in
  let scaling_json =
    Option.map
      (fun rows ->
        obj
          [ ("available_cores", int (Domain.recommended_domain_count ()));
            ("domain_cap", int (Mbac_sim.Parallel.domain_cap ()));
            ("gate_pass", bool (List.for_all (fun r -> r.s_pass) rows));
            ("rows",
             arr
               (List.map
                  (fun r ->
                    obj
                      [ ("jobs", int r.s_jobs);
                        ("effective_jobs", int r.s_effective);
                        ("ns_per_run", float r.s_ns);
                        ("speedup", float r.s_speedup);
                        ("required", fnan r.s_required);
                        ("pass", bool r.s_pass) ])
                  rows)) ])
      scaling
  in
  let rare_json =
    Option.map
      (fun r ->
        obj
          [ ("toy", bool r.r_toy);
            ("target_ci_rel", float r.r_target_ci);
            ("splitting",
             obj
               [ ("p_f", fnan r.r_p_f);
                 ("ci_rel", fnan r.r_ci_rel);
                 ("events", int r.r_events);
                 ("trials_per_level", int r.r_trials) ]);
            ("naive",
             obj
               [ ("p_f", fnan r.r_naive_p_f);
                 ("ci_rel", fnan r.r_naive_ci_rel);
                 ("events", int r.r_naive_events);
                 ("events_extrapolated_at_target",
                  fnan r.r_naive_events_extrapolated) ]);
            ("events_ratio", fnan r.r_events_ratio);
            ("theory_eqn37", fnan r.r_theory) ])
      rare
  in
  let serve_json =
    Option.map
      (fun s ->
        obj
          [ ("toy", bool s.sv_toy);
            ("decide_requests", int s.sv_decides);
            ("decisions_per_sec", fnan s.sv_decisions_per_sec);
            ("latency_seconds",
             obj
               [ ("p50", fnan s.sv_p50);
                 ("p99", fnan s.sv_p99);
                 ("p999", fnan s.sv_p999) ]);
            ("admit_rate", fnan s.sv_admit_rate);
            ("measurement_updates", int s.sv_updates);
            ("gate_floor_per_sec", float serve_gate_floor);
            ("gate_pass", bool s.sv_pass) ])
      serve
  in
  let network_json =
    Option.map
      (fun nw ->
        obj
          [ ("toy", bool nw.nw_toy);
            ("continuous_load_events_per_sec", fnan nw.nw_loop_events_per_sec);
            ("single_link_events_per_sec", fnan nw.nw_single_events_per_sec);
            ("overhead_ratio", fnan nw.nw_overhead_ratio);
            ("overhead_gate_min", float network_overhead_min);
            ("overhead_pass", bool nw.nw_overhead_pass);
            ("deterministic_across_shards", bool nw.nw_deterministic);
            ("gate_pass", bool nw.nw_pass);
            ("rows",
             arr
               (List.map
                  (fun r ->
                    obj
                      [ ("shards", int r.n_shards);
                        ("jobs", int r.n_jobs);
                        ("events", int r.n_events);
                        ("events_per_sec", fnan r.n_events_per_sec);
                        ("speedup", fnan r.n_speedup);
                        ("required", fnan r.n_required);
                        ("pass", bool r.n_pass) ])
                  nw.nw_rows)) ])
      network
  in
  let history_json =
    let prev_items =
      match previous with
      | None -> []
      | Some text -> (
          match extract_raw ~key:"history" text with
          | Some raw
            when String.length raw >= 2
                 && raw.[0] = '['
                 && raw.[String.length raw - 1] = ']' ->
              split_top (String.sub raw 1 (String.length raw - 2))
          | Some _ | None -> [])
    in
    (* Carry hotpath_events_per_sec through entries that did not
       re-measure it, like micro/scaling carry at the section level:
       walk oldest-to-newest splicing the last measured value into null
       slots, seeded with the throughput at the hot-path PR itself so
       the pre-existing null entries are backfilled too.  Without this
       the history column reads as a gap, not a plateau. *)
    let seed_hotpath_events_per_sec = 3.84e6 in
    let last_hp = ref seed_hotpath_events_per_sec in
    let prev_items =
      List.rev
        (List.fold_left
           (fun acc item ->
             let item =
               match extract_raw ~key:"hotpath_events_per_sec" item with
               | Some "null" ->
                   set_raw ~key:"hotpath_events_per_sec"
                     ~value:(float !last_hp) item
               | Some v ->
                   (match float_of_string_opt v with
                   | Some x -> last_hp := x
                   | None -> ());
                   item
               | None -> item
             in
             item :: acc)
           [] prev_items)
    in
    let entry =
      obj
        [ ("describe", string (git_describe ()));
          ("profile", string (profile_name profile));
          ("reproduction_ns",
           match repro_ns with Some ns -> float ns | None -> "null");
          ("hotpath_events_per_sec",
           match hotpath with
           | Some h -> fnan h.hp_events_per_sec
           | None -> float !last_hp);
          ("queue_calendar_events_per_sec",
           match hotpath with
           | Some h -> (
               match List.rev h.hp_queue_rows with
               | last :: _ -> fnan last.qr_cal_events_per_sec
               | [] -> "null")
           | None -> "null");
          (* which pending population the recorded queue throughput was
             measured at (the sweep's last row): a --pending override
             must not masquerade as a regression in the trajectory *)
          ("queue_pending",
           match hotpath with
           | Some h -> (
               match List.rev h.hp_queue_rows with
               | last :: _ -> int last.qr_pending
               | [] -> "null")
           | None -> "null");
          ("rare_events_ratio",
           match rare with Some r -> fnan r.r_events_ratio | None -> "null");
          ("serve_decisions_per_sec",
           match serve with
           | Some s -> fnan s.sv_decisions_per_sec
           | None -> "null");
          ("scaling_speedup_at_4",
           match scaling with
           | Some rows -> (
               match List.find_opt (fun r -> r.s_jobs = 4) rows with
               | Some r -> fnan r.s_speedup
               | None -> "null")
           | None -> "null");
          ("network_events_per_sec",
           match network with
           | Some nw -> (
               match List.rev nw.nw_rows with
               | last :: _ -> fnan last.n_events_per_sec
               | [] -> "null")
           | None -> "null")
        ]
    in
    let same key a b = extract_raw ~key a = extract_raw ~key b in
    let items =
      match List.rev prev_items with
      | prev :: older
        when same "describe" prev entry && same "profile" prev entry ->
          List.rev (merge_history_entries ~prev ~entry :: older)
      | _ -> prev_items @ [ entry ]
    in
    let n = List.length items in
    arr (if n > history_cap then List.filteri (fun i _ -> i >= n - history_cap) items
         else items)
  in
  let doc =
    obj
      [ ("schema", string "mbac-bench/1");
        ("profile", string (profile_name profile));
        ("reproduction_ns",
         match repro_ns with Some ns -> float ns | None -> "null");
        ("micro", carry "micro" micro_json);
        ("scaling", carry "scaling" scaling_json);
        ("hotpath", carry "hotpath" hotpath_json);
        ("rare", carry "rare" rare_json);
        ("serve", carry "serve" serve_json);
        ("network", carry "network" network_json);
        ("history", history_json) ]
  in
  let oc = open_out path in
  output_string oc doc;
  output_char oc '\n';
  close_out oc

let () =
  let argv = Sys.argv in
  let full = Array.exists (fun a -> a = "--full") argv in
  let skip_micro = Array.exists (fun a -> a = "--no-micro") argv in
  let scaling_only = Array.exists (fun a -> a = "--scaling") argv in
  let gate = Array.exists (fun a -> a = "--gate") argv in
  let hotpath_only = Array.exists (fun a -> a = "--hotpath") argv in
  let rare_only = Array.exists (fun a -> a = "--rare") argv in
  let serve_only = Array.exists (fun a -> a = "--serve") argv in
  let network_only = Array.exists (fun a -> a = "--network") argv in
  let toy = Array.exists (fun a -> a = "--toy") argv in
  let arg_value name =
    let v = ref None in
    Array.iteri
      (fun i a -> if a = name && i + 1 < Array.length argv then v := Some argv.(i + 1))
      argv;
    !v
  in
  let json_path =
    match arg_value "--json" with Some p -> p | None -> "BENCH.json"
  in
  let metrics_out = arg_value "--metrics-out" in
  let trace_out = arg_value "--trace-out" in
  let profile_out = arg_value "--profile-out" in
  if Array.exists (fun a -> a = "--profile") argv || profile_out <> None then
    Mbac_telemetry.Profile.set_enabled true;
  if trace_out <> None then Mbac_telemetry.Trace.set_enabled true;
  (* Same verbosity convention as the cmdliner binaries: warnings by
     default, -v for info, -v -v for debug, --quiet for nothing. *)
  let verbosity =
    if Array.exists (fun a -> a = "--quiet" || a = "-q") argv then None
    else
      match
        Array.fold_left (fun n a -> if a = "-v" then n + 1 else n) 0 argv
      with
      | 0 -> Some Logs.Warning
      | 1 -> Some Logs.Info
      | _ -> Some Logs.Debug
  in
  Mbac_telemetry.Logging.setup verbosity;
  let profile =
    if full then Mbac_experiments.Common.Full else Mbac_experiments.Common.Quick
  in
  let fmt = Format.std_formatter in
  let now () = Int64.to_float (Monotonic_clock.now ()) in
  let repro_ns = ref None in
  let micro = ref None in
  let hotpath = ref None in
  let rare = ref None in
  let serve = ref None in
  let network = ref None in
  (* --pending N restricts the queue hold-model sweep to one population;
     the default sweep shows scaling across three decades. *)
  let pending_list =
    match arg_value "--pending" with
    | Some s -> [ int_of_string s ]
    | None -> [ 1_000; 100_000; 1_000_000 ]
  in
  if hotpath_only then
    hotpath :=
      Some
        (run_hotpath fmt ~baseline:(load_baseline ~json_path) ~pending_list)
  else if rare_only then rare := Some (run_rare fmt ~toy)
  else if serve_only then serve := Some (run_serve fmt ~toy)
  else if network_only then network := Some (run_network fmt ~toy)
  else if not scaling_only then begin
    let t0 = now () in
    run_reproduction ~profile fmt;
    repro_ns := Some (now () -. t0);
    if not skip_micro then micro := Some (run_micro fmt)
  end;
  let scaling =
    if hotpath_only || rare_only || serve_only || network_only then None
    else Some (run_scaling fmt)
  in
  write_bench_json ~path:json_path ~profile ~repro_ns:!repro_ns ~micro:!micro
    ~scaling ~hotpath:!hotpath ~rare:!rare ~serve:!serve ~network:!network;
  Format.fprintf fmt "@.bench: wrote %s@." json_path;
  (match metrics_out with
  | Some path ->
      Mbac_telemetry.Snapshot.write_files ~path (Mbac_telemetry.Snapshot.current ());
      Format.fprintf fmt "bench: wrote %s (+ %s.prom)@." path path
  | None -> ());
  (match trace_out with
  | Some path ->
      let oc = open_out path in
      Mbac_telemetry.Trace.dump oc;
      close_out oc;
      Format.fprintf fmt "bench: wrote %s@." path
  | None -> ());
  (match profile_out with
  | Some path ->
      let oc = open_out path in
      output_string oc (Mbac_telemetry.Profile.to_json ());
      close_out oc;
      Format.fprintf fmt "bench: wrote %s@." path
  | None -> ());
  if Array.exists (fun a -> a = "--profile") argv then
    Mbac_telemetry.Profile.report Format.err_formatter;
  Format.fprintf fmt "bench: done.@.";
  (* --gate turns a failed gate into a non-zero exit (CI runs it on the
     release build; dev-profile numbers are not meaningful, see
     PERFORMANCE.md). *)
  (match !hotpath with
  | Some h when gate && not (h.hp_queue_gate_pass && h.hp_alloc_pass) ->
      exit 1
  | Some _ | None -> ());
  (match !serve with
  | Some s when gate && not s.sv_pass -> exit 1
  | Some _ | None -> ());
  (match !network with
  | Some nw when gate && not nw.nw_pass -> exit 1
  | Some _ | None -> ());
  match scaling with
  | Some rows when gate && not (List.for_all (fun r -> r.s_pass) rows) ->
      exit 1
  | Some _ | None -> ()
