(* Per-component minor-allocation probe for the simulator hot path.

   Prints minor words per operation for each building block of the event
   loop, so a regression in any one of them is attributable without
   re-profiling the whole simulator.  Loop bodies accumulate results in
   a [Float.Array] slot (unboxed store) rather than a [float ref] (whose
   store would box 2 words per iteration and be charged to the component
   under test). *)

let facc = Float.Array.make 4 0.0

let[@inline] keep_float i v =
  Float.Array.unsafe_set facc i (Float.Array.unsafe_get facc i +. v)

let words_per_op ~ops f =
  (* warm up: fill caches, trigger table growth *)
  f (ops / 10);
  let minor0, promoted0, major0 = Gc.counters () in
  f ops;
  let minor1, promoted1, major1 = Gc.counters () in
  let per x0 x1 = (x1 -. x0) /. float_of_int ops in
  (per minor0 minor1, per promoted0 promoted1, per major0 major1)

(* Promoted words survive a minor collection (long-lived allocation:
   growing tables, retained closures); major words are allocated directly
   on the major heap (big arrays).  Both cost far more than minor words,
   so a hot-path regression there matters even at small counts. *)
let report name (minor, promoted, major) =
  Printf.printf "  %-34s %8.2f minor %9.4f promoted %9.4f major\n%!" name
    minor promoted major

let () =
  let ops = 1_000_000 in
  Printf.printf "words per operation (%d ops each):\n%!" ops;

  (* RNG core *)
  let rng = Mbac_stats.Rng.create ~seed:1 in
  report "Rng.float"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           keep_float 0 (Mbac_stats.Rng.float rng)
         done));

  report "Sample.exponential"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           keep_float 0 (Mbac_stats.Sample.exponential rng ~mean:1.0)
         done));

  report "Sample.gaussian_truncated_nonneg"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           keep_float 0
             (Mbac_stats.Sample.gaussian_truncated_nonneg rng ~mu:1.0
                ~sigma:0.3)
         done));

  (* traffic source renegotiation *)
  let src =
    Mbac_traffic.Rcbr.create rng
      (Mbac_traffic.Rcbr.default_params ~mu:1.0)
      ~start:0.0
  in
  report "Source.fire (rcbr)"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           let t = Mbac_traffic.Source.next_change src in
           Mbac_traffic.Source.fire src ~now:t;
           keep_float 1 t
         done));

  (* event heap push/pop cycle at steady size *)
  let heap = Mbac_sim.Event_heap.create () in
  for i = 1 to 200 do
    Mbac_sim.Event_heap.push heap ~time:(float_of_int i) i
  done;
  report "Event_heap push+drop cycle"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           let tm = Mbac_sim.Event_heap.min_time heap in
           Mbac_sim.Event_heap.drop_min heap;
           Mbac_sim.Event_heap.push heap ~time:(tm +. 200.0) 7
         done));

  (* calendar queue, same hold-style cycle: steady state must be
     allocation-free at both a sim-sized and a large pending population
     (resize/recalibration allocates only a new heads array, and only
     when the population or spacing actually moves). *)
  let cal = Mbac_sim.Calendar_queue.create () in
  for i = 1 to 200 do
    Mbac_sim.Calendar_queue.push cal ~time:(float_of_int i) i
  done;
  report "Calendar_queue push+drop cycle"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           let tm = Mbac_sim.Calendar_queue.min_time cal in
           Mbac_sim.Calendar_queue.drop_min cal;
           Mbac_sim.Calendar_queue.push cal ~time:(tm +. 200.0) 7
         done));
  let cal_big = Mbac_sim.Calendar_queue.create () in
  for i = 1 to 100_000 do
    Mbac_sim.Calendar_queue.push cal_big ~time:(float_of_int i) i
  done;
  report "Calendar_queue push+drop (100k pending)"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           let tm = Mbac_sim.Calendar_queue.min_time cal_big in
           Mbac_sim.Calendar_queue.drop_min cal_big;
           Mbac_sim.Calendar_queue.push cal_big ~time:(tm +. 100_000.0) 7
         done));

  (* cross-shard exchange: a steady window cycle of sends followed by a
     merge-sorted deliver on each destination.  Outboxes, inboxes and
     the merge scratch all grow once and are then reused, so the steady
     state must be allocation-free per exchanged message. *)
  let ex = Mbac_net.Exchange.create ~shards:4 in
  let ex_batch = 64 in
  report "Exchange send+deliver (per message)"
    (words_per_op ~ops:1_000_000 (fun n ->
         for w = 1 to n / ex_batch do
           let time = float_of_int w in
           for m = 0 to ex_batch - 1 do
             Mbac_net.Exchange.send ex ~src:(m land 3) ~dst:(m lsr 4)
               ~time ~kind:0 ~link:m ~hop:1 ~route:m ~seq:m ~islot:m
               ~igen:0 ~rate:1.0 ~t_end:(time +. 10.0)
           done;
           for dst = 0 to 3 do
             let count = Mbac_net.Exchange.deliver ex ~dst in
             for i = 0 to count - 1 do
               keep_float 3 (Mbac_net.Exchange.in_time ex i)
             done
           done
         done));

  (* observation construction (the pointer store into [keep] does not
     allocate; the record itself is the 5 words under test) *)
  let obs100 =
    Mbac.Observation.make ~now:0.0 ~n:100 ~sum_rate:100.0 ~sum_sq:110.0
  in
  let keep = Array.make 1 obs100 in
  report "Observation.make"
    (words_per_op ~ops (fun n ->
         for i = 1 to n do
           keep.(0) <-
             Mbac.Observation.make ~now:(float_of_int i) ~n:100
               ~sum_rate:100.0 ~sum_sq:110.0
         done));

  (* estimator observe / current *)
  let est = Mbac.Estimator.ewma ~t_m:100.0 in
  report "Estimator.observe (ewma, incl. obs)"
    (words_per_op ~ops (fun n ->
         for i = 1 to n do
           let o =
             Mbac.Observation.make ~now:(float_of_int i) ~n:100 ~sum_rate:100.0
               ~sum_sq:110.0
           in
           Mbac.Estimator.observe est o
         done));
  let macc = ref 0 in
  report "Estimator.current (ewma)"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           match Mbac.Estimator.current est with
           | Some e -> macc := !macc + int_of_float e.Mbac.Estimator.mu_hat
           | None -> ()
         done));

  (* controller decision *)
  let ctrl =
    Mbac.Controller.with_memory ~capacity:100.0 ~p_ce:0.05 ~t_m:100.0
  in
  Mbac.Controller.observe ctrl obs100;
  report "Controller.admissible"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           macc := !macc + Mbac.Controller.admissible ctrl obs100
         done));

  (* measurement recording *)
  let meas =
    Mbac_sim.Measurement.create ~sample_spacing:20.0 ~capacity:100.0
      ~warmup:0.0 ~batch_length:20.0 ()
  in
  report "Measurement.record"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           let t0 = Float.Array.unsafe_get facc 2 in
           Mbac_sim.Measurement.record meas ~t0 ~t1:(t0 +. 0.01) ~load:99.0;
           Float.Array.unsafe_set facc 2 (t0 +. 0.01)
         done));

  (* welford + batch means directly *)
  let w = Mbac_stats.Welford.Weighted.create () in
  report "Welford.Weighted.add"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           Mbac_stats.Welford.Weighted.add w ~weight:0.01 99.0
         done));
  let bm = Mbac_stats.Batch_means.create ~batch_length:20.0 in
  report "Batch_means.add"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           Mbac_stats.Batch_means.add bm ~weight:0.01 1.0
         done));

  (* telemetry handle update *)
  let h = Mbac_telemetry.Metrics.Handle.counter "probe_counter_total" in
  report "Metrics.Handle.inc"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           Mbac_telemetry.Metrics.Handle.inc h
         done));
  report "Metrics.inc (string lookup)"
    (words_per_op ~ops (fun n ->
         for _ = 1 to n do
           Mbac_telemetry.Metrics.inc "probe_string_total"
         done));

  (* parallel-pool bookkeeping per task: shard create + claim + cell +
     submission-order merge, measured on the serial path so the counters
     (which are per-domain) see every allocation.  The task list is
     prebuilt: this probes the pool machinery, not closure construction.
     Promoted words matter here — each task's shard and cell survive to
     the join. *)
  let pool_batch = 1_000 in
  let pool_tasks = List.init pool_batch (fun _ () -> ()) in
  report "Parallel.run_tasks (per task)"
    (words_per_op ~ops:100_000 (fun n ->
         for _ = 1 to n / pool_batch do
           ignore (Mbac_sim.Parallel.run_tasks ~jobs:1 pool_tasks)
         done));

  (* whole event loop: words per simulated event, end to end *)
  let sim_events = 200_000 in
  let run_sim n =
    let cfg =
      { (Mbac_sim.Continuous_load.default_config ~capacity:100.0
           ~holding_time_mean:1000.0 ~target_p_q:1e-3)
        with
        Mbac_sim.Continuous_load.max_events = n;
        warmup = 10.0;
        batch_length = 100.0;
        check_every_events = max_int }
    in
    let controller =
      Mbac.Controller.with_memory ~capacity:100.0 ~p_ce:1e-3 ~t_m:100.0
    in
    let rng = Mbac_stats.Rng.create ~seed:11 in
    ignore
      (Mbac_sim.Continuous_load.run rng cfg ~controller
         ~make_source:(fun rng ~start ->
           Mbac_traffic.Rcbr.create rng
             (Mbac_traffic.Rcbr.default_params ~mu:1.0)
             ~start))
  in
  Printf.printf "words per simulated event (%d events):\n%!" sim_events;
  report "continuous-load event loop"
    (words_per_op ~ops:sim_events (fun n -> run_sim n));

  ignore !macc;
  Printf.printf "done (acc=%g)\n" (Float.Array.get facc 0)
