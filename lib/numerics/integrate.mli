(** Numerical quadrature for the paper's overflow-probability integrals
    (eqns (30), (32), (37)). *)

val adaptive_simpson :
  ?rel_tol:float -> ?abs_tol:float -> ?max_depth:int ->
  (float -> float) -> lo:float -> hi:float -> float
(** Adaptive Simpson quadrature of [f] on [lo, hi].  Defaults:
    [rel_tol = 1e-10], [abs_tol = 1e-14], [max_depth = 40].
    @raise Invalid_argument if [hi < lo]. *)

val gauss_legendre : n:int -> (float -> float) -> lo:float -> hi:float -> float
(** Composite-free n-point Gauss–Legendre on [lo, hi] with nodes computed
    by Newton iteration on Legendre polynomials ([n >= 1]). *)

val semi_infinite :
  ?rel_tol:float -> ?abs_tol:float -> ?segment:float -> ?max_segments:int ->
  (float -> float) -> lo:float -> float
(** Integral of [f] on [lo, infinity) by summing adaptive-Simpson panels of
    growing width until a panel contributes less than [rel_tol] of the
    running total (default [rel_tol = 1e-10], first [segment] width 1.0,
    [max_segments = 200]).  Intended for integrands with Gaussian-type
    decay, as in the hitting-probability formulas.

    [abs_tol] (default [1e-14]) is the per-panel absolute floor of the
    inner Simpson refinement.  For integrals whose value is far below it
    — the eqn (37) overflow probabilities reach 1e-150 — the default
    floor halts refinement immediately and the result carries O(1)
    relative error; pass [~abs_tol:0.] to keep the tolerance purely
    relative at any magnitude. *)
