type t = { lo : float; hi : float; coeffs : float array }

let fit ~lo ~hi ~nodes f =
  if not (Float.is_finite lo && Float.is_finite hi && lo < hi) then
    invalid_arg "Cheb.fit: requires finite lo < hi";
  if nodes < 2 then invalid_arg "Cheb.fit: requires nodes >= 2";
  let n = nodes in
  let pi = 4.0 *. atan 1.0 in
  let mid = 0.5 *. (hi +. lo) and half = 0.5 *. (hi -. lo) in
  (* Chebyshev–Gauss points of the first kind, mapped onto [lo, hi]. *)
  let fx =
    Array.init n (fun k ->
        let theta = pi *. (float_of_int k +. 0.5) /. float_of_int n in
        let y = f (mid +. (half *. cos theta)) in
        if Float.is_nan y then invalid_arg "Cheb.fit: function returned NaN";
        y)
  in
  (* Discrete cosine transform; O(n^2) is fine at the table sizes used
     here (n <= a few hundred). *)
  let coeffs =
    Array.init n (fun j ->
        let s = ref 0.0 in
        for k = 0 to n - 1 do
          s :=
            !s
            +. fx.(k)
               *. cos
                    (pi *. float_of_int j
                    *. (float_of_int k +. 0.5)
                    /. float_of_int n)
        done;
        2.0 *. !s /. float_of_int n)
  in
  { lo; hi; coeffs }

let lo t = t.lo
let hi t = t.hi
let nodes t = Array.length t.coeffs

let eval t x =
  (* Clenshaw recurrence.  Well-defined for any finite x, but the
     approximation is only accurate on [lo, hi]; callers wanting a hard
     domain guarantee should check against [lo]/[hi] themselves. *)
  let c = t.coeffs in
  let n = Array.length c in
  let u = (2.0 *. (x -. t.lo) /. (t.hi -. t.lo)) -. 1.0 in
  let u2 = 2.0 *. u in
  let b1 = ref 0.0 and b2 = ref 0.0 in
  for j = n - 1 downto 1 do
    let b = (u2 *. !b1) -. !b2 +. Array.unsafe_get c j in
    b2 := !b1;
    b1 := b
  done;
  (u *. !b1) -. !b2 +. (0.5 *. c.(0))
