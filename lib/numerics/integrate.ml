let adaptive_simpson ?(rel_tol = 1e-10) ?(abs_tol = 1e-14) ?(max_depth = 40) f
    ~lo ~hi =
  if hi < lo then invalid_arg "Integrate.adaptive_simpson: requires lo <= hi";
  if hi = lo then 0.0
  else begin
    let simpson a fa b fb =
      let m = 0.5 *. (a +. b) in
      let fm = f m in
      (m, fm, (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb))
    in
    (* Classic recursive refinement with the Richardson error estimate. *)
    let rec go a fa b fb whole fm m depth =
      let lm, flm, left = simpson a fa m fm in
      let rm, frm, right = simpson m fm b fb in
      let delta = left +. right -. whole in
      let tol = Float.max abs_tol (rel_tol *. abs_float (left +. right)) in
      if depth >= max_depth || abs_float delta <= 15.0 *. tol then
        left +. right +. (delta /. 15.0)
      else
        go a fa m fm left flm lm (depth + 1)
        +. go m fm b fb right frm rm (depth + 1)
    in
    let fa = f lo and fb = f hi in
    let m, fm, whole = simpson lo fa hi fb in
    go lo fa hi fb whole fm m 0
  end

(* Gauss-Legendre nodes/weights on [-1,1] by Newton iteration on P_n. *)
let legendre_nodes n =
  if n < 1 then invalid_arg "Integrate.gauss_legendre: requires n >= 1";
  let pi = 4.0 *. atan 1.0 in
  let nodes = Array.make n 0.0 and weights = Array.make n 0.0 in
  let m = (n + 1) / 2 in
  for i = 0 to m - 1 do
    (* Initial guess: Chebyshev-like approximation of the i-th root. *)
    let x = ref (cos (pi *. (float_of_int i +. 0.75) /. (float_of_int n +. 0.5))) in
    let pp = ref 0.0 in
    let continue = ref true in
    let iter = ref 0 in
    while !continue && !iter < 100 do
      (* Evaluate P_n(x) and P_{n-1}(x) by the three-term recurrence. *)
      let p0 = ref 1.0 and p1 = ref 0.0 in
      for j = 0 to n - 1 do
        let p2 = !p1 in
        p1 := !p0;
        p0 :=
          (((2.0 *. float_of_int j) +. 1.0) *. !x *. !p1
          -. (float_of_int j *. p2))
          /. float_of_int (j + 1)
      done;
      (* Derivative via P'_n = n (x P_n - P_{n-1}) / (x^2 - 1). *)
      pp := float_of_int n *. ((!x *. !p0) -. !p1) /. ((!x *. !x) -. 1.0);
      let dx = !p0 /. !pp in
      x := !x -. dx;
      if abs_float dx < 1e-15 then continue := false;
      incr iter
    done;
    nodes.(i) <- -. !x;
    nodes.(n - 1 - i) <- !x;
    let w = 2.0 /. ((1.0 -. (!x *. !x)) *. !pp *. !pp) in
    weights.(i) <- w;
    weights.(n - 1 - i) <- w
  done;
  (nodes, weights)

let gauss_legendre ~n f ~lo ~hi =
  let nodes, weights = legendre_nodes n in
  let half = 0.5 *. (hi -. lo) and mid = 0.5 *. (hi +. lo) in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) *. f (mid +. (half *. nodes.(i))))
  done;
  half *. !acc

let semi_infinite ?(rel_tol = 1e-10) ?(abs_tol = 1e-14) ?(segment = 1.0)
    ?(max_segments = 200) f ~lo =
  let rec sum a width total k =
    if k >= max_segments then total
    else begin
      let b = a +. width in
      let panel = adaptive_simpson ~rel_tol ~abs_tol f ~lo:a ~hi:b in
      let total' = total +. panel in
      (* Stop once a panel is negligible relative to the accumulated value
         (guard against an identically-zero head with the k > 4 check). *)
      if k > 4 && abs_float panel <= rel_tol *. (abs_float total' +. 1e-300)
      then total'
      else sum b (width *. 1.6) total' (k + 1)
    end
  in
  sum lo segment 0.0 0
