let fgn_autocovariance ~hurst k =
  let h2 = 2.0 *. hurst in
  let kf = float_of_int (abs k) in
  0.5 *. (((kf +. 1.0) ** h2) -. (2.0 *. (kf ** h2)) +. (abs_float (kf -. 1.0) ** h2))

(* A plan caches everything about a (hurst, n) pair that does not depend
   on the RNG: the circulant eigenvalue spectrum (one covariance row +
   one FFT, the dominant setup cost) and the two scratch vectors the
   synthesis FFT runs in.  [m = 0] is the white-noise (hurst = 1/2)
   sentinel — no embedding needed. *)
type plan = {
  hurst : float;
  n : int;
  m : int;
  size : int;
  lambda : float array;
  wr : float array;
  wi : float array;
}

let plan ~hurst ~n =
  if not (hurst > 0.0 && hurst < 1.0) then
    invalid_arg "Fgn.plan: requires 0 < hurst < 1";
  if n <= 0 then invalid_arg "Fgn.plan: requires n > 0";
  if hurst = 0.5 then
    { hurst; n; m = 0; size = 0; lambda = [||]; wr = [||]; wi = [||] }
  else begin
    (* Circulant embedding of the (n x n) Toeplitz covariance into a
       (2m)-circulant, m >= n a power of two so the FFT applies. *)
    let m = Fft.next_power_of_two n in
    let size = 2 * m in
    (* First row of the circulant: c_0..c_m, then mirrored. *)
    let row =
      Array.init size (fun i ->
          let k = if i <= m then i else size - i in
          fgn_autocovariance ~hurst k)
    in
    let re = Array.copy row and im = Array.make size 0.0 in
    Fft.fft ~re ~im;
    (* Eigenvalues of the circulant = DFT of the first row; real and (for
       fGn) non-negative.  Clip roundoff negatives. *)
    let lambda = Array.map (fun x -> if x < 0.0 then 0.0 else x) re in
    { hurst; n; m; size; lambda;
      wr = Array.make size 0.0; wi = Array.make size 0.0 }
  end

let generate_with plan rng =
  if plan.m = 0 then
    Array.init plan.n (fun _ -> Mbac_stats.Sample.gaussian rng ~mu:0.0 ~sigma:1.0)
  else begin
    let { m; size; lambda; wr; wi; _ } = plan in
    (* Build the complex Gaussian vector with the right covariance.  The
       loop writes every entry of the scratch vectors, so reuse needs no
       clearing. *)
    let g () = Mbac_stats.Sample.gaussian rng ~mu:0.0 ~sigma:1.0 in
    let scale = 1.0 /. sqrt (float_of_int size) in
    wr.(0) <- sqrt lambda.(0) *. g () *. scale;
    wi.(0) <- 0.0;
    wr.(m) <- sqrt lambda.(m) *. g () *. scale;
    wi.(m) <- 0.0;
    for k = 1 to m - 1 do
      let s = sqrt (lambda.(k) /. 2.0) *. scale in
      let a = g () and b = g () in
      wr.(k) <- s *. a;
      wi.(k) <- s *. b;
      wr.(size - k) <- s *. a;
      wi.(size - k) <- -.s *. b
    done;
    Fft.fft ~re:wr ~im:wi;
    Array.sub wr 0 plan.n
  end

let generate rng ~hurst ~n =
  if not (hurst > 0.0 && hurst < 1.0) then
    invalid_arg "Fgn.generate: requires 0 < hurst < 1";
  if n <= 0 then invalid_arg "Fgn.generate: requires n > 0";
  generate_with (plan ~hurst ~n) rng

(* Per-domain plan memo: plans own mutable scratch, so they must not be
   shared across domains — each domain gets its own small cache. *)
let plan_cache : (float * int, plan) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let cached_plan ~hurst ~n =
  let tbl = Domain.DLS.get plan_cache in
  match Hashtbl.find_opt tbl (hurst, n) with
  | Some p -> p
  | None ->
      let p = plan ~hurst ~n in
      (* bound the cache: sweeps use a handful of (hurst, n) pairs *)
      if Hashtbl.length tbl >= 32 then Hashtbl.reset tbl;
      Hashtbl.add tbl (hurst, n) p;
      p

let fbm_of_fgn increments =
  let n = Array.length increments in
  let path = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. increments.(i);
    path.(i) <- !acc
  done;
  path
