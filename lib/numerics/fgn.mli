(** Exact fractional Gaussian noise by circulant embedding (Davies–Harte).

    Used to synthesise the long-range-dependent "Starwars-like" video
    traffic of the paper's Figures 11–12 (the original MPEG-1 trace is not
    redistributable; see DESIGN.md §3). *)

val fgn_autocovariance : hurst:float -> int -> float
(** [fgn_autocovariance ~hurst k] is the lag-[k] autocovariance of
    unit-variance fGn: (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}) / 2. *)

type plan
(** Precomputed synthesis state for one [(hurst, n)] pair: the circulant
    eigenvalue spectrum (one covariance row + one FFT — the dominant
    setup cost) plus the scratch vectors the synthesis FFT runs in.
    Plans own mutable scratch: do not share one across domains, and do
    not call {!generate_with} on the same plan concurrently. *)

val plan : hurst:float -> n:int -> plan
(** @raise Invalid_argument if [hurst] is outside (0,1) or [n <= 0]. *)

val cached_plan : hurst:float -> n:int -> plan
(** Like {!plan}, but memoized per domain (so repeated synthesis of the
    same shape — e.g. a sweep generating many traces — pays the spectrum
    FFT once).  The returned plan is safe within the calling domain
    only. *)

val generate_with : plan -> Mbac_stats.Rng.t -> float array
(** Draw [n] samples using the plan's cached spectrum and scratch.
    Bit-identical to {!generate} for the same RNG state. *)

val generate : Mbac_stats.Rng.t -> hurst:float -> n:int -> float array
(** [generate rng ~hurst ~n] draws [n] samples of zero-mean, unit-variance
    fractional Gaussian noise with Hurst parameter [hurst] in (0, 1).
    Exact in distribution (up to the non-negativity of the circulant
    eigenvalues, which holds for fGn; tiny negative eigenvalues from
    roundoff are clipped to 0).  Equivalent to
    [generate_with (plan ~hurst ~n) rng].
    @raise Invalid_argument if [hurst] is outside (0,1) or [n <= 0]. *)

val fbm_of_fgn : float array -> float array
(** Cumulative sum: fractional Brownian motion increments -> path
    (result has the same length; element i is the sum of the first i+1
    increments). *)
