(** Chebyshev polynomial interpolation on an interval — the memoization
    backend for expensive smooth curves (notably the eqn (37) overflow
    integral tabulated in alpha).

    For a function analytic on [lo, hi] the approximation error decays
    geometrically in the node count, so a few dozen samples of an
    expensive integral buy near-machine-precision evaluation at
    polynomial cost. *)

type t

val fit : lo:float -> hi:float -> nodes:int -> (float -> float) -> t
(** Sample [f] at the [nodes] Chebyshev–Gauss points of [lo, hi] and
    compute the interpolant's coefficients.
    @raise Invalid_argument if [lo >= hi], [nodes < 2], or [f] returns
    NaN at a node. *)

val eval : t -> float -> float
(** Evaluate via the Clenshaw recurrence.  Accurate on [[lo, hi]];
    outside the fitted interval the polynomial diverges quickly, so
    callers needing a domain guarantee must check the bounds
    themselves. *)

val lo : t -> float

val hi : t -> float

val nodes : t -> int
