(** Deterministic open-loop load generator.

    Drives a {!Client.t} with a Poisson flow-arrival process: each
    arrival draws a load (lognormal, given mean/std), picks a criterion
    round-robin-free (uniform from a derived stream), asks [Decide],
    records the verdict with [Log_decision], and on admit [Add]s the
    flow and schedules its departure ([Subtract]) after an exponential
    holding time.  All randomness comes from streams derived from
    [seed], and time is {e virtual} — the same seed and request count
    produce the same request bytes on any transport, which is what the
    determinism cram locks down. *)

type workload = {
  seed : int;
  requests : int;        (** number of [Decide] requests to issue *)
  arrival_mean : float;  (** mean virtual inter-arrival time *)
  hold_mean : float;     (** mean virtual flow holding time *)
  load_mean : float;     (** per-flow offered load, lognormal mean *)
  load_std : float;      (** per-flow offered load, lognormal std *)
  n_criteria : int;      (** criteria to spread Decide requests over *)
}

type summary = {
  sent : int;            (** total requests sent, all types *)
  decides : int;
  admitted : int;
  rejected : int;
  departures : int;
  final_stats : Protocol.response;  (** the closing [Stats] reply *)
}

val run : Client.t -> workload -> summary
(** @raise Invalid_argument on non-positive workload parameters.
    @raise Failure if the server answers a request with an error. *)

val print_summary : out_channel -> summary -> unit
(** Deterministic textual summary (no wall-clock numbers). *)
