(** The online admission-decision engine.

    One engine serves one link.  The execution model is wall-clock
    concurrency (unlike the Domain-pool replication everywhere else in
    the tree):

    - the {e decision fast path} ({!decide}) is wait-free — it reads the
      admitted-flow/admitted-load counters ([Atomic] integers, load in
      fixed point) and the current {!published} estimate record
      ([Atomic.get] of an immutable value) and never takes a lock,
      blocks, or allocates anything but its small result;
    - the {e accounting path} ({!add}/{!subtract}) is lock-free —
      fetch-and-add on the counters;
    - the {e measurement path} ({!run_measurement}) is the only place
      the estimator state is touched.  It reads the counters as one
      cross-section, feeds the estimator, recomputes every criterion's
      admissible count, and publishes a fresh immutable {!published}
      record with a single [Atomic.set].  Deciders can never observe a
      torn estimate: they either see the whole old record or the whole
      new one.  Measurement runs inline every [measure_every]-th
      accounting call (deterministic, single-threaded replay) or on a
      background domain ({!start_background}, wall-clock daemons).

    Loads cross the counter boundary in fixed point at {!fp_scale}
    units per load unit, so per-flow loads are quantized to
    [1/fp_scale] (documented in SERVING.md); the same quantization is
    applied on every path, which is what makes replay byte-exact. *)

type criterion_spec =
  | Gaussian of { cname : string; p_ce : float }
      (** The paper's certainty-equivalent Gaussian criterion (eqn (6))
          at target [p_ce], driven by the measured mean and variance. *)
  | Hoeffding of { cname : string; p_ce : float; peak : float }
      (** Distribution-free Hoeffding bound at target [p_ce] for flows
          of declared peak rate [peak], driven by the measured mean
          only. *)

type config = {
  capacity : float;              (** initial link capacity (> 0, finite) *)
  criteria : criterion_spec list;  (** nonempty; [Decide] indexes into it *)
  estimator : Mbac.Estimator.t;
      (** owned by the engine's measurement path from here on; do not
          observe or read it elsewhere *)
  measure_every : int;
      (** [k >= 1]: run a measurement pass synchronously after every
          [k]-th {!add}/{!subtract} (deterministic).  [0]: no inline
          measurement — drive {!run_measurement} externally or with
          {!start_background}. *)
}

type t

type decision = { admit : bool; admissible : int; flows : int }

type stats = {
  flows : int;
  admitted_load : float;
  capacity : float;
  requests : int;
  decisions : int;
  admits : int;
  updates : int;
}

val fp_scale : int
(** Fixed-point units per load unit (2{^20}). *)

val create : ?decision_log:Buffer.t -> config -> t
(** @raise Invalid_argument on empty criteria, [p_ce] outside (0, 0.5],
    non-positive [peak], non-finite or non-positive [capacity], negative
    [measure_every], or more than 65535 criteria. *)

val criterion_names : t -> string array

val initialize : t -> capacity:float -> unit
(** Zero the counters, reset the estimator, publish a bootstrap record
    against the new capacity.
    @raise Invalid_argument on non-finite or non-positive capacity. *)

val decide : t -> criterion:int -> load:float -> decision
(** Wait-free.  Admit iff [flows < M(criterion)] under the published
    estimates {e and} the admitted load plus [load] fits the capacity.
    While no estimate is published yet (bootstrap), [M = flows + 1] —
    one flow at a time, like the controllers' cautious bootstrap.
    Counts into the [serve_decisions/admit/reject] metrics.  The caller
    is responsible for [criterion] being in range and [load] being
    finite and non-negative ({!handle} validates wire input). *)

val add : t -> load:float -> now:float -> unit
(** Lock-free accounting of an admitted flow; [now] is the virtual (or
    wall) time stamped on the cross-section if this call triggers an
    inline measurement pass. *)

val subtract : t -> load:float -> now:float -> unit

val log_decision : t -> criterion:int -> admit:bool -> unit
(** Append one JSONL line (server-assigned [seq]) to the decision log;
    no-op (but still sequence-advancing) without one. *)

val run_measurement : t -> now:float -> unit
(** One measurement pass (serialized by an internal mutex): counters →
    cross-section → estimator → per-criterion admissible counts →
    publish. *)

val stats : t -> stats

val handle : t -> Protocol.request -> Protocol.response
(** Full request dispatch with wire-input validation: out-of-range
    criterion indices and non-finite/negative loads or capacities come
    back as [Error_reply] (codes 1 capacity, 2 criterion, 3 load), not
    exceptions.  [Shutdown] answers [Ok_reply]; acting on it is the
    transport's job. *)

val start_background : t -> interval:float -> unit
(** Spawn a measurement domain running {!run_measurement} every
    [interval] wall-clock seconds (cross-sections stamped with wall
    time).  @raise Invalid_argument if one is already running or
    [interval <= 0]. *)

val stop_background : t -> unit
(** Stop and join the measurement domain, folding its telemetry shard
    into the calling domain's. *)
