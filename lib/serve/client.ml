type transport = Inproc of Engine.t | Socket of Unix.file_descr

type t = {
  transport : transport;
  peer : string;
  reqbuf : Buffer.t;     (* encoded request frame *)
  respbuf : Buffer.t;    (* in-process: server-rendered response frame *)
  mutable wire : Bytes.t;  (* scratch for frames crossing the boundary *)
  mutable fill : int;      (* socket: bytes of response accumulated *)
  mutable requests : int;
  mutable closed : bool;
}

let make transport peer =
  Server.conn_opened ();
  { transport; peer; reqbuf = Buffer.create 256; respbuf = Buffer.create 256;
    wire = Bytes.create 4096; fill = 0; requests = 0; closed = false }

let inproc engine = make (Inproc engine) "inproc"

let connect_unix ?(retries = 50) ~path () =
  let rec attempt k =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when k > 0 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Unix.sleepf 0.1;
        attempt (k - 1)
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  in
  match attempt retries with
  | fd -> make (Socket fd) path
  | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) ->
      failwith (Printf.sprintf "Client: cannot reach daemon at %s" path)

let ensure_wire t n = if Bytes.length t.wire < n then t.wire <- Bytes.create n

let write_all fd bytes len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let protocol_failure e =
  failwith ("Client: protocol error: " ^ Protocol.error_to_string e)

let rpc t req =
  if t.closed then failwith "Client: connection is closed";
  t.requests <- t.requests + 1;
  Buffer.clear t.reqbuf;
  Protocol.encode_request t.reqbuf req;
  let len = Buffer.length t.reqbuf in
  match t.transport with
  | Inproc engine -> begin
      ensure_wire t len;
      Buffer.blit t.reqbuf 0 t.wire 0 len;
      Buffer.clear t.respbuf;
      match Server.handle_frame engine t.wire ~pos:0 ~avail:len t.respbuf with
      | Error e -> protocol_failure e
      | Ok (_, _) -> begin
          let rlen = Buffer.length t.respbuf in
          ensure_wire t rlen;
          Buffer.blit t.respbuf 0 t.wire 0 rlen;
          match Protocol.decode_response t.wire ~pos:0 ~avail:rlen with
          | Ok (resp, _) -> resp
          | Error e -> protocol_failure e
        end
    end
  | Socket fd ->
      ensure_wire t (max len (4 + Protocol.max_frame_payload));
      Buffer.blit t.reqbuf 0 t.wire 0 len;
      write_all fd t.wire len;
      t.fill <- 0;
      let rec read_response () =
        match Protocol.decode_response t.wire ~pos:0 ~avail:t.fill with
        | Ok (resp, consumed) ->
            (* pipelining is not used on this client: one request, one
               response — anything trailing is a protocol violation *)
            if consumed <> t.fill then
              failwith "Client: trailing bytes after response frame";
            resp
        | Error (Protocol.Truncated _) ->
            let n = Unix.read fd t.wire t.fill (Bytes.length t.wire - t.fill) in
            if n = 0 then failwith "Client: peer closed mid-response";
            t.fill <- t.fill + n;
            read_response ()
        | Error e -> protocol_failure e
      in
      read_response ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    (match t.transport with
    | Inproc _ -> ()
    | Socket fd -> ( try Unix.close fd with Unix.Unix_error _ -> ()));
    Server.conn_closed ~peer:t.peer ~requests:t.requests
  end
