(** Command-line spec strings shared by [mbac_serve], [mbac_loadgen],
    and [bench --serve], so the daemon and the in-process toy paths are
    configured with identical syntax. *)

val criteria_of_string : string -> Engine.criterion_spec list
(** Comma-separated criterion specs.  Each entry is either
    [ce:<p_ce>] (Gaussian certainty-equivalent) or
    [hoeffding:<p_ce>:<peak>]; the full entry text is the criterion's
    name in decision logs and reports.
    @raise Invalid_argument on syntax or range errors. *)

val estimator_of_string : string -> Mbac.Estimator.t
(** One of [memoryless], [ewma:<t_m>], [window:<t_w>],
    [aggregate:<t_m>].
    @raise Invalid_argument on syntax or range errors. *)
