(** Client connections to a serving engine, over either transport.

    Both transports speak the same {!Protocol} frames: the in-process
    transport routes every request through the codec and the shared
    {!Server.handle_frame} session layer, so it exercises exactly the
    bytes a socket peer would see — it just skips the kernel.  All
    buffers are reused across calls; a connection is single-owner (not
    thread-safe). *)

type t

val inproc : Engine.t -> t
(** Attach to an engine in this process (counts as a connection). *)

val connect_unix : ?retries:int -> path:string -> unit -> t
(** Connect to a daemon's Unix socket, retrying ([retries] × 100 ms,
    default 50) while the path does not exist or refuses — covers the
    daemon still starting up.
    @raise Failure when retries are exhausted. *)

val rpc : t -> Protocol.request -> Protocol.response
(** One request/response round trip.
    @raise Failure on a protocol violation or closed peer. *)

val close : t -> unit
(** Close the connection (emits the per-connection trace event). *)
