type criterion_spec =
  | Gaussian of { cname : string; p_ce : float }
  | Hoeffding of { cname : string; p_ce : float; peak : float }

type config = {
  capacity : float;
  criteria : criterion_spec list;
  estimator : Mbac.Estimator.t;
  measure_every : int;
}

type decision = { admit : bool; admissible : int; flows : int }

type stats = {
  flows : int;
  admitted_load : float;
  capacity : float;
  requests : int;
  decisions : int;
  admits : int;
  updates : int;
}

(* ---------- fixed-point load encoding ---------- *)

(* 2^20 units per load unit, like sledge's ADMISSIONS_CONTROL_GRANULARITY
   but binary so the quantization is exact in both directions for loads
   that are multiples of 2^-20.  Per-flow loads are rounded once, at the
   boundary; sums of rounded values stay exact integers, so an engine
   whose every admitted flow departs again returns to exactly zero. *)
let fp_scale = 1 lsl 20
let fp_scale_f = float_of_int fp_scale
let fp_of_load x = int_of_float (Float.round (x *. fp_scale_f))
let fp_to_float i = float_of_int i /. fp_scale_f

(* The squared-load accumulator stores round(l^2 * fp_scale) for the
   *rounded* load l, so the measurement cross-section's sum of squares is
   consistent with its sum to within the same quantization. *)
let fp_sq fp =
  let l = fp_to_float fp in
  int_of_float (Float.round (l *. l *. fp_scale_f))

(* ---------- compiled criteria ---------- *)

(* [sigma_override = nan] means "use the measured sigma"; Hoeffding's
   distribution-free bound replaces sigma*alpha by
   peak * sqrt(ln(1/p)/2) with alpha = 1 (same quadratic). *)
type crit = { cr_name : string; cr_alpha : float; cr_sigma_override : float }

let compile_criterion = function
  | Gaussian { cname; p_ce } ->
      if not (p_ce > 0.0 && p_ce <= 0.5) then
        invalid_arg "Engine: criterion requires 0 < p_ce <= 0.5";
      { cr_name = cname; cr_alpha = Mbac_stats.Gaussian.q_inv p_ce;
        cr_sigma_override = nan }
  | Hoeffding { cname; p_ce; peak } ->
      if not (p_ce > 0.0 && p_ce <= 0.5) then
        invalid_arg "Engine: criterion requires 0 < p_ce <= 0.5";
      if not (peak > 0.0) then invalid_arg "Engine: criterion requires peak > 0";
      { cr_name = cname; cr_alpha = 1.0;
        cr_sigma_override = peak *. sqrt (log (1.0 /. p_ce) /. 2.0) }

(* ---------- the published estimate record ---------- *)

(* Immutable: swapped whole through one Atomic.  [p_m] empty = bootstrap
   (no usable estimate yet).  Capacity lives here too, so [initialize]
   retargets the fast path with the same single publication step. *)
type published = {
  p_capacity : float;
  p_capacity_fp : int;
  p_mu : float;     (* nan during bootstrap *)
  p_sigma : float;
  p_m : int array;
  p_updates : int;
}

type background = {
  bg_stop : bool Atomic.t;
  bg_domain : Mbac_telemetry.Shard.t Domain.t;
}

type t = {
  crits : crit array;
  estimator : Mbac.Estimator.t;
  measure_every : int;
  (* fast-path state *)
  flows : int Atomic.t;
  load_fp : int Atomic.t;
  sumsq_fp : int Atomic.t;
  published : published Atomic.t;
  (* counters surfaced through Stats *)
  requests : int Atomic.t;
  decisions : int Atomic.t;
  admits : int Atomic.t;
  accounting : int Atomic.t;  (* add/subtract calls, drives measure_every *)
  log_seq : int Atomic.t;
  (* measurement-path state (everything below the mutex) *)
  meas_mutex : Mutex.t;
  log_mutex : Mutex.t;
  decision_log : Buffer.t option;
  mutable bg : background option;
}

(* ---------- telemetry ---------- *)

module H = Mbac_telemetry.Metrics.Handle

let m_requests = H.counter "serve_requests_total"
let m_decisions = H.counter "serve_decisions_total"
let m_admit = H.counter "serve_admit_total"
let m_reject = H.counter "serve_reject_total"
let m_updates = H.counter "serve_measurement_updates_total"
let m_flows = H.gauge "serve_flows"
let m_load = H.gauge "serve_admitted_load"

(* ---------- construction ---------- *)

let check_capacity capacity =
  if not (Float.is_finite capacity && capacity > 0.0) then
    invalid_arg "Engine: capacity must be finite and positive"

let bootstrap ~capacity ~updates =
  { p_capacity = capacity; p_capacity_fp = fp_of_load capacity; p_mu = nan;
    p_sigma = nan; p_m = [||]; p_updates = updates }

let create ?decision_log (config : config) =
  check_capacity config.capacity;
  if config.criteria = [] then invalid_arg "Engine: criteria must be nonempty";
  if List.length config.criteria > 0xFFFF then
    invalid_arg "Engine: at most 65535 criteria (u16 on the wire)";
  if config.measure_every < 0 then
    invalid_arg "Engine: measure_every must be >= 0";
  { crits = Array.of_list (List.map compile_criterion config.criteria);
    estimator = config.estimator;
    measure_every = config.measure_every;
    flows = Atomic.make 0;
    load_fp = Atomic.make 0;
    sumsq_fp = Atomic.make 0;
    published = Atomic.make (bootstrap ~capacity:config.capacity ~updates:0);
    requests = Atomic.make 0;
    decisions = Atomic.make 0;
    admits = Atomic.make 0;
    accounting = Atomic.make 0;
    log_seq = Atomic.make 0;
    meas_mutex = Mutex.create ();
    log_mutex = Mutex.create ();
    decision_log;
    bg = None }

let criterion_names t = Array.map (fun c -> c.cr_name) t.crits

(* ---------- measurement path ---------- *)

let run_measurement t ~now =
  Mutex.protect t.meas_mutex (fun () ->
      (* The three counters are read independently, so a concurrent
         accounting call can skew one cross-section by one flow.  That is
         measurement noise of the same order the estimators already
         smooth; correctness (counters, decisions) is unaffected. *)
      let n = Atomic.get t.flows in
      let sum_fp = Atomic.get t.load_fp in
      let sumsq_fp = Atomic.get t.sumsq_fp in
      if n > 0 && sum_fp >= 0 && sumsq_fp >= 0 then
        Mbac.Estimator.observe t.estimator
          (Mbac.Observation.make ~now ~n ~sum_rate:(fp_to_float sum_fp)
             ~sum_sq:(fp_to_float sumsq_fp));
      let prev = Atomic.get t.published in
      let next =
        match Mbac.Estimator.snapshot_estimate t.estimator with
        | Some { Mbac.Estimator.mu; var } when mu > 0.0 ->
            let sigma = sqrt (Float.max 0.0 var) in
            let m =
              Array.map
                (fun c ->
                  let s =
                    if Float.is_nan c.cr_sigma_override then sigma
                    else c.cr_sigma_override
                  in
                  Mbac.Criterion.admissible ~capacity:prev.p_capacity ~mu
                    ~sigma:s ~alpha:c.cr_alpha)
                t.crits
            in
            { prev with p_mu = mu; p_sigma = sigma; p_m = m;
              p_updates = prev.p_updates + 1 }
        | Some _ | None ->
            { prev with p_mu = nan; p_sigma = nan; p_m = [||];
              p_updates = prev.p_updates + 1 }
      in
      Atomic.set t.published next;
      H.inc m_updates;
      H.set_gauge m_flows (float_of_int n);
      H.set_gauge m_load (fp_to_float sum_fp))

let initialize t ~capacity =
  check_capacity capacity;
  Mutex.protect t.meas_mutex (fun () ->
      Atomic.set t.flows 0;
      Atomic.set t.load_fp 0;
      Atomic.set t.sumsq_fp 0;
      Mbac.Estimator.reset t.estimator;
      let prev = Atomic.get t.published in
      Atomic.set t.published
        (bootstrap ~capacity ~updates:(prev.p_updates + 1));
      H.inc m_updates;
      H.set_gauge m_flows 0.0;
      H.set_gauge m_load 0.0)

(* ---------- fast path ---------- *)

let decide t ~criterion ~load =
  let pub = Atomic.get t.published in
  let n = Atomic.get t.flows in
  let m =
    if Array.length pub.p_m = 0 then n + 1
    else Array.unsafe_get pub.p_m criterion
  in
  let headroom =
    Atomic.get t.load_fp + fp_of_load load <= pub.p_capacity_fp
  in
  let admit = n < m && headroom in
  Atomic.incr t.decisions;
  if admit then Atomic.incr t.admits;
  H.inc m_decisions;
  H.inc (if admit then m_admit else m_reject);
  { admit; admissible = m; flows = n }

let maybe_measure t ~now =
  if t.measure_every > 0 then begin
    let k = Atomic.fetch_and_add t.accounting 1 in
    if (k + 1) mod t.measure_every = 0 then run_measurement t ~now
  end

let add t ~load ~now =
  let fp = fp_of_load load in
  ignore (Atomic.fetch_and_add t.flows 1);
  ignore (Atomic.fetch_and_add t.load_fp fp);
  ignore (Atomic.fetch_and_add t.sumsq_fp (fp_sq fp));
  maybe_measure t ~now

let subtract t ~load ~now =
  let fp = fp_of_load load in
  ignore (Atomic.fetch_and_add t.flows (-1));
  ignore (Atomic.fetch_and_add t.load_fp (-fp));
  ignore (Atomic.fetch_and_add t.sumsq_fp (-fp_sq fp));
  maybe_measure t ~now

(* ---------- decision log ---------- *)

let log_decision t ~criterion ~admit =
  let seq = Atomic.fetch_and_add t.log_seq 1 in
  match t.decision_log with
  | None -> ()
  | Some buf ->
      let line =
        Mbac_telemetry.Json.(
          obj
            [ ("seq", int seq);
              ("criterion", string t.crits.(criterion).cr_name);
              ("admit", bool admit);
              ("flows", int (Atomic.get t.flows)) ])
      in
      Mutex.protect t.log_mutex (fun () ->
          Buffer.add_string buf line;
          Buffer.add_char buf '\n')

(* ---------- stats / dispatch ---------- *)

let stats t =
  let pub = Atomic.get t.published in
  { flows = Atomic.get t.flows;
    admitted_load = fp_to_float (Atomic.get t.load_fp);
    capacity = pub.p_capacity;
    requests = Atomic.get t.requests;
    decisions = Atomic.get t.decisions;
    admits = Atomic.get t.admits;
    updates = pub.p_updates }

(* The upper bound keeps the fixed-point square (load² · fp_scale) well
   inside the 63-bit integer range even after many flows accumulate. *)
let valid_load load = Float.is_finite load && load >= 0.0 && load <= 1e6

let handle t (req : Protocol.request) : Protocol.response =
  Atomic.incr t.requests;
  H.inc m_requests;
  match req with
  | Protocol.Initialize { capacity } ->
      if not (Float.is_finite capacity && capacity > 0.0) then
        Protocol.Error_reply
          { code = 1; message = "capacity must be finite and positive" }
      else begin
        initialize t ~capacity;
        Protocol.Ok_reply
      end
  | Protocol.Decide { criterion; load; now = _ } ->
      if criterion >= Array.length t.crits then
        Protocol.Error_reply { code = 2; message = "criterion out of range" }
      else if not (valid_load load) then
        Protocol.Error_reply { code = 3; message = "load out of range" }
      else begin
        let d = decide t ~criterion ~load in
        Protocol.Decision
          { admit = d.admit; admissible = d.admissible; flows = d.flows }
      end
  | Protocol.Add { load; now } ->
      if not (valid_load load) then
        Protocol.Error_reply { code = 3; message = "load out of range" }
      else begin
        add t ~load ~now;
        Protocol.Ok_reply
      end
  | Protocol.Subtract { load; now } ->
      if not (valid_load load) then
        Protocol.Error_reply { code = 3; message = "load out of range" }
      else begin
        subtract t ~load ~now;
        Protocol.Ok_reply
      end
  | Protocol.Log_decision { criterion; admit } ->
      if criterion >= Array.length t.crits then
        Protocol.Error_reply { code = 2; message = "criterion out of range" }
      else begin
        log_decision t ~criterion ~admit;
        Protocol.Ok_reply
      end
  | Protocol.Stats ->
      let s = stats t in
      Protocol.Stats_reply
        { flows = s.flows; admitted_load = s.admitted_load;
          capacity = s.capacity; requests = s.requests;
          decisions = s.decisions; admits = s.admits; updates = s.updates }
  | Protocol.Shutdown -> Protocol.Ok_reply

(* ---------- background measurement ---------- *)

let wall_now () = Unix.gettimeofday ()

let start_background t ~interval =
  if t.bg <> None then invalid_arg "Engine: measurement domain already running";
  if not (interval > 0.0) then invalid_arg "Engine: interval must be > 0";
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        (* Record into this domain's own shard and hand it back at join;
           stop_background folds it into the caller's shard, so the
           update counter survives into the final snapshot. *)
        let shard = Mbac_telemetry.Shard.current () in
        while not (Atomic.get stop) do
          Unix.sleepf interval;
          if not (Atomic.get stop) then run_measurement t ~now:(wall_now ())
        done;
        shard)
  in
  t.bg <- Some { bg_stop = stop; bg_domain = d }

let stop_background t =
  match t.bg with
  | None -> ()
  | Some { bg_stop; bg_domain } ->
      Atomic.set bg_stop true;
      let shard = Domain.join bg_domain in
      t.bg <- None;
      Mbac_telemetry.Shard.merge_into_current shard
