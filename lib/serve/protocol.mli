(** The serving engine's wire protocol: compact length-prefixed binary
    frames.

    A frame is a 4-byte little-endian unsigned payload length followed
    by the payload; the payload is a 1-byte message tag followed by the
    tag's fixed-layout body (see SERVING.md for the full frame
    catalogue).  Scalars are little-endian throughout: [u8]/[u16]/[u32]
    unsigned integers, [i64] two's-complement, [f64] IEEE-754 binary64.
    Strings are a [u16] byte length followed by the bytes (no
    terminator).

    Decoding never raises on wire data: every malformed input is a typed
    {!error}.  Encoding appends to a caller-supplied [Buffer.t], so a
    session can reuse one scratch buffer per connection and the encode
    path allocates nothing else. *)

(** {1 Messages} *)

type request =
  | Initialize of { capacity : float }
      (** Reset counters and estimator state against a new link
          capacity (must be finite and positive — rejected at the
          engine, not the codec). *)
  | Decide of { criterion : int; load : float; now : float }
      (** Admission decision for one flow of declared [load] against
          criterion index [criterion], at client virtual time [now].
          Read-only: the caller follows up with {!Add} iff it admits. *)
  | Add of { load : float; now : float }
      (** Account an admitted flow's load into the admitted-load
          counters. *)
  | Subtract of { load : float; now : float }
      (** Remove a departed flow's load from the admitted-load
          counters. *)
  | Log_decision of { criterion : int; admit : bool }
      (** Append one line to the server's decision log (sequence number
          assigned server-side). *)
  | Stats  (** Query the engine counters. *)
  | Shutdown
      (** Ask the server to stop accepting work and exit cleanly. *)

type response =
  | Ok_reply
  | Decision of { admit : bool; admissible : int; flows : int }
      (** [admissible] is the published criterion count M; [flows] the
          admitted-flow count n read on the fast path ([admit] implies
          [flows < admissible] plus load headroom). *)
  | Stats_reply of {
      flows : int;
      admitted_load : float;
      capacity : float;
      requests : int;
      decisions : int;
      admits : int;
      updates : int;  (** measurement passes published so far *)
    }
  | Error_reply of { code : int; message : string }

(** {1 Typed decode errors} *)

type error =
  | Truncated of { expected : int; got : int }
      (** The frame (or its length prefix) needs [expected] bytes but
          only [got] are available — for a stream transport this means
          "read more and retry". *)
  | Bad_tag of int  (** Unknown message tag byte. *)
  | Bad_frame of string
      (** Structurally invalid: oversized or undersized payload for the
          tag, string length overrunning the payload, ... *)

val error_to_string : error -> string

val max_frame_payload : int
(** Upper bound on the payload length a well-formed peer may send
    (guards the server against absurd allocations); currently 65535. *)

(** {1 Encoding}

    Each [encode_*] appends one complete frame (length prefix included)
    to [buf]. *)

val encode_request : Buffer.t -> request -> unit
val encode_response : Buffer.t -> response -> unit

(** {1 Decoding}

    Frame-level decoders consume one complete frame from [bytes] at
    [pos] given [avail] readable bytes from [pos], returning the message
    and the total bytes consumed (prefix + payload).  {!Truncated} means
    the input may simply not have arrived yet; every other error is
    fatal for the stream. *)

val decode_request : Bytes.t -> pos:int -> avail:int -> (request * int, error) result
val decode_response : Bytes.t -> pos:int -> avail:int -> (response * int, error) result

val request_tag : request -> int
val response_tag : response -> int
