type request =
  | Initialize of { capacity : float }
  | Decide of { criterion : int; load : float; now : float }
  | Add of { load : float; now : float }
  | Subtract of { load : float; now : float }
  | Log_decision of { criterion : int; admit : bool }
  | Stats
  | Shutdown

type response =
  | Ok_reply
  | Decision of { admit : bool; admissible : int; flows : int }
  | Stats_reply of {
      flows : int;
      admitted_load : float;
      capacity : float;
      requests : int;
      decisions : int;
      admits : int;
      updates : int;
    }
  | Error_reply of { code : int; message : string }

type error =
  | Truncated of { expected : int; got : int }
  | Bad_tag of int
  | Bad_frame of string

let error_to_string = function
  | Truncated { expected; got } ->
      Printf.sprintf "truncated frame: need %d bytes, have %d" expected got
  | Bad_tag tag -> Printf.sprintf "unknown message tag 0x%02x" tag
  | Bad_frame msg -> Printf.sprintf "malformed frame: %s" msg

let max_frame_payload = 0xFFFF

(* ---------- tags ---------- *)

let tag_initialize = 0x01
let tag_decide = 0x02
let tag_add = 0x03
let tag_subtract = 0x04
let tag_log_decision = 0x05
let tag_stats = 0x06
let tag_shutdown = 0x07
let tag_ok = 0x81
let tag_decision = 0x82
let tag_stats_reply = 0x83
let tag_error = 0x84

let request_tag = function
  | Initialize _ -> tag_initialize
  | Decide _ -> tag_decide
  | Add _ -> tag_add
  | Subtract _ -> tag_subtract
  | Log_decision _ -> tag_log_decision
  | Stats -> tag_stats
  | Shutdown -> tag_shutdown

let response_tag = function
  | Ok_reply -> tag_ok
  | Decision _ -> tag_decision
  | Stats_reply _ -> tag_stats_reply
  | Error_reply _ -> tag_error

(* ---------- little-endian scalar writers ---------- *)

let put_u8 buf v = Buffer.add_uint8 buf (v land 0xFF)
let put_u16 buf v = Buffer.add_uint16_le buf (v land 0xFFFF)
let put_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let put_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let put_f64 buf v = Buffer.add_int64_le buf (Int64.bits_of_float v)

let put_string buf s =
  let n = min (String.length s) 0xFFFF in
  put_u16 buf n;
  Buffer.add_substring buf s 0 n

(* Payload sizes are fixed per tag (plus the string tail of Error_reply),
   so the length prefix is computed up front and each encoder emits one
   contiguous frame — no patching, no second pass. *)

let frame buf ~payload_len fill =
  put_u32 buf payload_len;
  fill buf

let encode_request buf r =
  match r with
  | Initialize { capacity } ->
      frame buf ~payload_len:9 (fun b ->
          put_u8 b tag_initialize;
          put_f64 b capacity)
  | Decide { criterion; load; now } ->
      frame buf ~payload_len:19 (fun b ->
          put_u8 b tag_decide;
          put_u16 b criterion;
          put_f64 b load;
          put_f64 b now)
  | Add { load; now } ->
      frame buf ~payload_len:17 (fun b ->
          put_u8 b tag_add;
          put_f64 b load;
          put_f64 b now)
  | Subtract { load; now } ->
      frame buf ~payload_len:17 (fun b ->
          put_u8 b tag_subtract;
          put_f64 b load;
          put_f64 b now)
  | Log_decision { criterion; admit } ->
      frame buf ~payload_len:4 (fun b ->
          put_u8 b tag_log_decision;
          put_u16 b criterion;
          put_u8 b (if admit then 1 else 0))
  | Stats -> frame buf ~payload_len:1 (fun b -> put_u8 b tag_stats)
  | Shutdown -> frame buf ~payload_len:1 (fun b -> put_u8 b tag_shutdown)

let encode_response buf r =
  match r with
  | Ok_reply -> frame buf ~payload_len:1 (fun b -> put_u8 b tag_ok)
  | Decision { admit; admissible; flows } ->
      frame buf ~payload_len:10 (fun b ->
          put_u8 b tag_decision;
          put_u8 b (if admit then 1 else 0);
          put_u32 b admissible;
          put_u32 b flows)
  | Stats_reply { flows; admitted_load; capacity; requests; decisions;
                  admits; updates } ->
      frame buf ~payload_len:53 (fun b ->
          put_u8 b tag_stats_reply;
          put_u32 b flows;
          put_f64 b admitted_load;
          put_f64 b capacity;
          put_i64 b requests;
          put_i64 b decisions;
          put_i64 b admits;
          put_i64 b updates)
  | Error_reply { code; message } ->
      let msg_len = min (String.length message) 0xFFFF in
      frame buf ~payload_len:(4 + msg_len) (fun b ->
          put_u8 b tag_error;
          put_u8 b code;
          put_string b message)

(* ---------- little-endian scalar readers ---------- *)

(* The readers below are only reached once the whole payload is known to
   be available (the frame-level decoder checks the prefix first), so
   in-payload bounds are enforced by construction: each tag's body has a
   fixed size that [check_len] matched against the payload length. *)

let get_u8 b ~pos = Char.code (Bytes.unsafe_get b pos)
let get_u16 b ~pos = get_u8 b ~pos lor (get_u8 b ~pos:(pos + 1) lsl 8)

let get_u32 b ~pos =
  (* frame fields never legitimately exceed 2^31; decode as unsigned *)
  Int32.to_int (Bytes.get_int32_le b pos) land 0xFFFFFFFF

let get_i64 b ~pos = Int64.to_int (Bytes.get_int64_le b pos)
let get_f64 b ~pos = Int64.float_of_bits (Bytes.get_int64_le b pos)

(* ---------- frame-level decoding ---------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let frame_header bytes ~pos ~avail =
  if avail < 4 then Error (Truncated { expected = 4; got = avail })
  else begin
    let payload_len = get_u32 bytes ~pos in
    if payload_len > max_frame_payload then
      Error (Bad_frame (Printf.sprintf "payload length %d exceeds %d"
                          payload_len max_frame_payload))
    else if payload_len = 0 then Error (Bad_frame "empty payload")
    else if avail < 4 + payload_len then
      Error (Truncated { expected = 4 + payload_len; got = avail })
    else Ok payload_len
  end

let check_len ~tag ~expect ~got =
  if got = expect then Ok ()
  else
    Error
      (Bad_frame
         (Printf.sprintf "tag 0x%02x payload is %d bytes, expected %d" tag got
            expect))

let decode_request bytes ~pos ~avail =
  let* len = frame_header bytes ~pos ~avail in
  let p = pos + 4 in
  let tag = get_u8 bytes ~pos:p in
  let* msg =
    if tag = tag_initialize then
      let* () = check_len ~tag ~expect:9 ~got:len in
      Ok (Initialize { capacity = get_f64 bytes ~pos:(p + 1) })
    else if tag = tag_decide then
      let* () = check_len ~tag ~expect:19 ~got:len in
      Ok
        (Decide
           { criterion = get_u16 bytes ~pos:(p + 1);
             load = get_f64 bytes ~pos:(p + 3);
             now = get_f64 bytes ~pos:(p + 11) })
    else if tag = tag_add then
      let* () = check_len ~tag ~expect:17 ~got:len in
      Ok (Add { load = get_f64 bytes ~pos:(p + 1);
                now = get_f64 bytes ~pos:(p + 9) })
    else if tag = tag_subtract then
      let* () = check_len ~tag ~expect:17 ~got:len in
      Ok (Subtract { load = get_f64 bytes ~pos:(p + 1);
                     now = get_f64 bytes ~pos:(p + 9) })
    else if tag = tag_log_decision then
      let* () = check_len ~tag ~expect:4 ~got:len in
      Ok
        (Log_decision
           { criterion = get_u16 bytes ~pos:(p + 1);
             admit = get_u8 bytes ~pos:(p + 3) <> 0 })
    else if tag = tag_stats then
      let* () = check_len ~tag ~expect:1 ~got:len in
      Ok Stats
    else if tag = tag_shutdown then
      let* () = check_len ~tag ~expect:1 ~got:len in
      Ok Shutdown
    else Error (Bad_tag tag)
  in
  Ok (msg, 4 + len)

let decode_response bytes ~pos ~avail =
  let* len = frame_header bytes ~pos ~avail in
  let p = pos + 4 in
  let tag = get_u8 bytes ~pos:p in
  let* msg =
    if tag = tag_ok then
      let* () = check_len ~tag ~expect:1 ~got:len in
      Ok Ok_reply
    else if tag = tag_decision then
      let* () = check_len ~tag ~expect:10 ~got:len in
      Ok
        (Decision
           { admit = get_u8 bytes ~pos:(p + 1) <> 0;
             admissible = get_u32 bytes ~pos:(p + 2);
             flows = get_u32 bytes ~pos:(p + 6) })
    else if tag = tag_stats_reply then
      let* () = check_len ~tag ~expect:53 ~got:len in
      Ok
        (Stats_reply
           { flows = get_u32 bytes ~pos:(p + 1);
             admitted_load = get_f64 bytes ~pos:(p + 5);
             capacity = get_f64 bytes ~pos:(p + 13);
             requests = get_i64 bytes ~pos:(p + 21);
             decisions = get_i64 bytes ~pos:(p + 29);
             admits = get_i64 bytes ~pos:(p + 37);
             updates = get_i64 bytes ~pos:(p + 45) })
    else if tag = tag_error then begin
      if len < 4 then
        Error
          (Bad_frame
             (Printf.sprintf "tag 0x%02x payload is %d bytes, expected >= 4"
                tag len))
      else
        let code = get_u8 bytes ~pos:(p + 1) in
        let msg_len = get_u16 bytes ~pos:(p + 2) in
        if 4 + msg_len <> len then
          Error
            (Bad_frame
               (Printf.sprintf
                  "error message length %d disagrees with payload length %d"
                  msg_len len))
        else
          Ok
            (Error_reply
               { code; message = Bytes.sub_string bytes (p + 4) msg_len })
    end
    else Error (Bad_tag tag)
  in
  Ok (msg, 4 + len)
