let invalid fmt = Printf.ksprintf invalid_arg fmt

let float_field ~what s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v -> v
  | _ -> invalid "Spec: %s is not a finite number: %S" what s

let criterion_of_string entry =
  match String.split_on_char ':' entry with
  | [ "ce"; p ] ->
      Engine.Gaussian { cname = entry; p_ce = float_field ~what:"p_ce" p }
  | [ "hoeffding"; p; peak ] ->
      Engine.Hoeffding
        { cname = entry;
          p_ce = float_field ~what:"p_ce" p;
          peak = float_field ~what:"peak" peak }
  | _ ->
      invalid
        "Spec: bad criterion %S (want ce:<p_ce> or hoeffding:<p_ce>:<peak>)"
        entry

let criteria_of_string s =
  match String.split_on_char ',' s with
  | [] | [ "" ] -> invalid "Spec: empty criteria list"
  | entries -> List.map criterion_of_string (List.map String.trim entries)

let estimator_of_string s =
  match String.split_on_char ':' s with
  | [ "memoryless" ] -> Mbac.Estimator.memoryless ()
  | [ "ewma"; t ] -> Mbac.Estimator.ewma ~t_m:(float_field ~what:"t_m" t)
  | [ "window"; t ] ->
      Mbac.Estimator.sliding_window ~t_w:(float_field ~what:"t_w" t)
  | [ "aggregate"; t ] ->
      Mbac.Estimator.aggregate_only ~t_m:(float_field ~what:"t_m" t)
  | _ ->
      invalid
        "Spec: bad estimator %S (want memoryless, ewma:<t_m>, window:<t_w>, \
         or aggregate:<t_m>)"
        s
