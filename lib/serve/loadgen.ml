module Rng = Mbac_stats.Rng
module Sample = Mbac_stats.Sample

type workload = {
  seed : int;
  requests : int;
  arrival_mean : float;
  hold_mean : float;
  load_mean : float;
  load_std : float;
  n_criteria : int;
}

type summary = {
  sent : int;
  decides : int;
  admitted : int;
  rejected : int;
  departures : int;
  final_stats : Protocol.response;
}

(* Binary min-heap of scheduled departures, keyed on virtual time.  The
   workload holds at most [requests] flows, so arrays are preallocated. *)
module Heap = struct
  type t = { times : float array; loads : float array; mutable size : int }

  let create n = { times = Array.make (max 1 n) 0.0; loads = Array.make (max 1 n) 0.0; size = 0 }

  let swap h i j =
    let ti = h.times.(i) and li = h.loads.(i) in
    h.times.(i) <- h.times.(j); h.loads.(i) <- h.loads.(j);
    h.times.(j) <- ti; h.loads.(j) <- li

  let push h ~time ~load =
    let i = ref h.size in
    h.times.(!i) <- time;
    h.loads.(!i) <- load;
    h.size <- h.size + 1;
    while !i > 0 && h.times.((!i - 1) / 2) > h.times.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let min_time h = if h.size = 0 then None else Some h.times.(0)

  let pop h =
    let time = h.times.(0) and load = h.loads.(0) in
    h.size <- h.size - 1;
    h.times.(0) <- h.times.(h.size);
    h.loads.(0) <- h.loads.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && h.times.(l) < h.times.(!smallest) then smallest := l;
      if r < h.size && h.times.(r) < h.times.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    (time, load)
end

let check name v = if not (Float.is_finite v && v > 0.0) then
  invalid_arg (Printf.sprintf "Loadgen: %s must be finite and positive" name)

let fail_reply what = function
  | Protocol.Error_reply { code; message } ->
      failwith (Printf.sprintf "Loadgen: %s failed: server error %d (%s)" what code message)
  | _ -> failwith (Printf.sprintf "Loadgen: unexpected reply to %s" what)

let run client w =
  check "arrival_mean" w.arrival_mean;
  check "hold_mean" w.hold_mean;
  check "load_mean" w.load_mean;
  check "load_std" w.load_std;
  if w.requests < 0 then invalid_arg "Loadgen: requests must be >= 0";
  if w.n_criteria < 1 then invalid_arg "Loadgen: n_criteria must be >= 1";
  let arrivals = Rng.derive ~seed:w.seed ~tag:"loadgen/arrivals" in
  let holds = Rng.derive ~seed:w.seed ~tag:"loadgen/holds" in
  let loads = Rng.derive ~seed:w.seed ~tag:"loadgen/loads" in
  let picks = Rng.derive ~seed:w.seed ~tag:"loadgen/criteria" in
  let heap = Heap.create w.requests in
  let sent = ref 0 in
  let admitted = ref 0 in
  let rejected = ref 0 in
  let departures = ref 0 in
  let send req =
    incr sent;
    Client.rpc client req
  in
  let t = ref 0.0 in
  for _ = 1 to w.requests do
    t := !t +. Sample.exponential arrivals ~mean:w.arrival_mean;
    (* retire every flow whose holding time expired before this arrival *)
    let rec drain () =
      match Heap.min_time heap with
      | Some due when due <= !t ->
          let due, load = Heap.pop heap in
          (match send (Protocol.Subtract { load; now = due }) with
          | Protocol.Ok_reply -> incr departures
          | r -> fail_reply "Subtract" r);
          drain ()
      | _ -> ()
    in
    drain ();
    let load = Sample.lognormal_of_moments loads ~mean:w.load_mean ~std:w.load_std in
    let criterion = Rng.int picks w.n_criteria in
    let admit =
      match send (Protocol.Decide { criterion; load; now = !t }) with
      | Protocol.Decision { admit; _ } -> admit
      | r -> fail_reply "Decide" r
    in
    (match send (Protocol.Log_decision { criterion; admit }) with
    | Protocol.Ok_reply -> ()
    | r -> fail_reply "Log_decision" r);
    if admit then begin
      incr admitted;
      (match send (Protocol.Add { load; now = !t }) with
      | Protocol.Ok_reply -> ()
      | r -> fail_reply "Add" r);
      let hold = Sample.exponential holds ~mean:w.hold_mean in
      Heap.push heap ~time:(!t +. hold) ~load
    end
    else incr rejected
  done;
  let final_stats =
    match send Protocol.Stats with
    | Protocol.Stats_reply _ as r -> r
    | r -> fail_reply "Stats" r
  in
  { sent = !sent; decides = w.requests; admitted = !admitted;
    rejected = !rejected; departures = !departures; final_stats }

let print_summary oc s =
  Printf.fprintf oc "requests sent      %d\n" s.sent;
  Printf.fprintf oc "decide requests    %d\n" s.decides;
  Printf.fprintf oc "admitted           %d\n" s.admitted;
  Printf.fprintf oc "rejected           %d\n" s.rejected;
  Printf.fprintf oc "departures         %d\n" s.departures;
  match s.final_stats with
  | Protocol.Stats_reply { flows; admitted_load; capacity; _ } ->
      Printf.fprintf oc "flows in system    %d\n" flows;
      Printf.fprintf oc "admitted load      %.6f\n" admitted_load;
      Printf.fprintf oc "capacity           %.6f\n" capacity
  | _ -> ()
