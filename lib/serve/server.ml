module H = Mbac_telemetry.Metrics.Handle

let m_latency = H.qhist "serve_decision_latency_seconds"
let m_connections = H.counter "serve_connections_total"

let now_ns () = Int64.to_float (Monotonic_clock.now ())

let handle_frame engine bytes ~pos ~avail out =
  let t0 = now_ns () in
  match Protocol.decode_request bytes ~pos ~avail with
  | Error _ as e -> e
  | Ok (req, consumed) ->
      let resp = Engine.handle engine req in
      Protocol.encode_response out resp;
      (match req with
      | Protocol.Decide _ ->
          H.observe_q m_latency ((now_ns () -. t0) /. 1e9)
      | _ -> ());
      Ok (consumed, match req with Protocol.Shutdown -> `Shutdown | _ -> `Continue)

let conn_opened () = H.inc m_connections

let conn_closed ~peer ~requests =
  if Mbac_telemetry.Trace.enabled () then
    Mbac_telemetry.Trace.emit ~t:0.0 ~kind:"serve_conn"
      [ ("peer", Mbac_telemetry.Trace.Str peer);
        ("requests", Mbac_telemetry.Trace.Int requests) ]

(* ---------- socket transport ---------- *)

let write_all fd bytes len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd bytes !off (len - !off)
  done

let serve_connection engine fd ~peer =
  (* One frame-assembly buffer per connection, sized for the largest
     legal frame; a frame split across reads is compacted to the front. *)
  let inbuf = Bytes.create (2 * (4 + Protocol.max_frame_payload)) in
  let fill = ref 0 in
  let out = Buffer.create 512 in
  let outbytes = ref (Bytes.create 512) in
  let requests = ref 0 in
  let result = ref `Closed in
  let continue = ref true in
  (try
     while !continue do
       (* drain every complete frame currently buffered *)
       Buffer.clear out;
       let pos = ref 0 in
       let progress = ref true in
       while !progress do
         match handle_frame engine inbuf ~pos:!pos ~avail:(!fill - !pos) out with
         | Ok (consumed, what) ->
             incr requests;
             pos := !pos + consumed;
             if what = `Shutdown then begin
               result := `Shutdown;
               continue := false;
               progress := false
             end
         | Error (Protocol.Truncated _) -> progress := false
         | Error e ->
             Protocol.encode_response out
               (Protocol.Error_reply
                  { code = 255; message = Protocol.error_to_string e });
             continue := false;
             progress := false
       done;
       if !pos > 0 then begin
         Bytes.blit inbuf !pos inbuf 0 (!fill - !pos);
         fill := !fill - !pos
       end;
       let n_out = Buffer.length out in
       if n_out > 0 then begin
         if Bytes.length !outbytes < n_out then
           outbytes := Bytes.create n_out;
         Buffer.blit out 0 !outbytes 0 n_out;
         write_all fd !outbytes n_out
       end;
       if !continue then begin
         let n = Unix.read fd inbuf !fill (Bytes.length inbuf - !fill) in
         if n = 0 then continue := false else fill := !fill + n
       end
     done
   with Unix.Unix_error _ | End_of_file -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  conn_closed ~peer ~requests:!requests;
  !result

(* Wake a blocked [accept] after shutdown was requested from a service
   thread: connect-and-close a throwaway client.  (Closing the listening
   descriptor from another thread does not reliably interrupt accept.) *)
let wake path =
  try
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with Unix.Unix_error _ -> ());
    Unix.close fd
  with Unix.Unix_error _ -> ()

let run_unix engine ~path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stop = Atomic.make false in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      let threads = ref [] in
      let conn_id = ref 0 in
      (try
         while not (Atomic.get stop) do
           let fd, _ = Unix.accept sock in
           if Atomic.get stop then Unix.close fd
           else begin
             conn_opened ();
             incr conn_id;
             let peer = Printf.sprintf "unix-%d" !conn_id in
             let th =
               Thread.create
                 (fun () ->
                   match serve_connection engine fd ~peer with
                   | `Shutdown ->
                       Atomic.set stop true;
                       wake path
                   | `Closed -> ())
                 ()
             in
             threads := th :: !threads
           end
         done
       with Unix.Unix_error _ -> ());
      List.iter Thread.join !threads)
