(** Frame-level request service: the shared session layer (used by both
    the Unix-socket daemon and the in-process transport) plus the
    socket accept loop.

    Decision latency (wall-clock, decode → engine → encoded response)
    is recorded per [Decide] request into the
    [serve_decision_latency_seconds] quantile histogram; connection
    opens count into [serve_connections_total], and when tracing is
    enabled each closed connection emits one ["serve_conn"] trace
    event. *)

val handle_frame :
  Engine.t ->
  Bytes.t ->
  pos:int ->
  avail:int ->
  Buffer.t ->
  (int * [ `Continue | `Shutdown ], Protocol.error) result
(** Decode one request frame at [pos], dispatch it, append the response
    frame to the output buffer.  Returns bytes consumed and whether the
    request asked for shutdown.  [Truncated] means "feed me more
    bytes"; other errors are fatal for the stream. *)

val conn_opened : unit -> unit
(** Count a connection (socket accept or in-process attach). *)

val conn_closed : peer:string -> requests:int -> unit
(** Emit the per-connection trace event (no-op unless tracing is on). *)

val serve_connection : Engine.t -> Unix.file_descr -> peer:string -> [ `Closed | `Shutdown ]
(** Serve one connected stream until EOF, a fatal protocol error (the
    peer gets a final [Error_reply], code 255), or a [Shutdown]
    request.  Closes the descriptor. *)

val run_unix : Engine.t -> path:string -> unit
(** Bind [path] (replacing any stale socket file), accept connections
    (one service thread each), and block until some connection sends
    [Shutdown]; then join the service threads and remove the socket
    file. *)
