type t = {
  lo : float;
  buckets_per_decade : int;
  decades : int;
  hi : float;               (* lo * 10^decades, cached *)
  log_lo : float;           (* log10 lo, cached *)
  counts : int array;       (* length decades * buckets_per_decade *)
  mutable underflow : int;
  mutable overflow : int;
  mutable sum : float;
  mutable count : int;
}

let create ?(lo = 1e-9) ?(decades = 24) ?(buckets_per_decade = 20) () =
  if not (lo > 0.0 && Float.is_finite lo) then
    invalid_arg "Quantile_histogram.create: lo must be finite and > 0";
  if decades <= 0 then invalid_arg "Quantile_histogram.create: decades <= 0";
  if buckets_per_decade <= 0 then
    invalid_arg "Quantile_histogram.create: buckets_per_decade <= 0";
  if decades * buckets_per_decade > 1 lsl 20 then
    invalid_arg "Quantile_histogram.create: too many buckets";
  { lo; buckets_per_decade; decades;
    hi = lo *. (10.0 ** float_of_int decades);
    log_lo = Float.log10 lo;
    counts = Array.make (decades * buckets_per_decade) 0;
    underflow = 0; overflow = 0; sum = 0.0; count = 0 }

let lo t = t.lo
let hi t = t.hi
let buckets_per_decade t = t.buckets_per_decade
let decades t = t.decades
let buckets t = Array.length t.counts
let underflow t = t.underflow
let overflow t = t.overflow
let sum t = t.sum
let count t = t.count
let counts t = Array.copy t.counts

let bucket_index t x =
  if x < t.lo then -1
  else if x >= t.hi then Array.length t.counts
  else
    (* Roundoff in log10 can land an edge value one bucket off the exact
       [log10 (x/lo) * bpd] quotient; any in-range bucket keeps the
       relative-error bound, but clamp so in-range values never leak
       into the out-of-range buckets. *)
    let i =
      int_of_float
        ((Float.log10 x -. t.log_lo) *. float_of_int t.buckets_per_decade)
    in
    max 0 (min (Array.length t.counts - 1) i)

let observe t x =
  t.count <- t.count + 1;
  if Float.is_finite x then begin
    t.sum <- t.sum +. x;
    let i = bucket_index t x in
    if i < 0 then t.underflow <- t.underflow + 1
    else if i >= Array.length t.counts then t.overflow <- t.overflow + 1
    else t.counts.(i) <- t.counts.(i) + 1
  end

let bucket_lower t i =
  10.0 ** (t.log_lo +. (float_of_int i /. float_of_int t.buckets_per_decade))

let bucket_mid t i =
  10.0
  ** (t.log_lo +. ((float_of_int i +. 0.5) /. float_of_int t.buckets_per_decade))

let max_rel_error_of ~buckets_per_decade =
  (10.0 ** (0.5 /. float_of_int buckets_per_decade)) -. 1.0

let max_rel_error t = max_rel_error_of ~buckets_per_decade:t.buckets_per_decade

let quantile_of ~lo ~buckets_per_decade ~decades ~underflow ~overflow ~counts q
    =
  if not (Float.is_finite q && q >= 0.0 && q <= 1.0) then
    invalid_arg "Quantile_histogram.quantile: q outside [0, 1]";
  let in_range = Array.fold_left ( + ) 0 counts in
  let n = underflow + in_range + overflow in
  if n = 0 then nan
  else begin
    (* Rank of the empirical q-quantile: the smallest observation with at
       least [ceil (q * n)] observations at or below it (rank 1 for
       q = 0), walked through the cumulative counts.  Integer ranks over
       integer counts: deterministic on every platform. *)
    let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
    if rank <= underflow then lo
    else begin
      let log_lo = Float.log10 lo in
      let cum = ref underflow in
      let result = ref nan in
      let i = ref 0 in
      let nbuckets = Array.length counts in
      while Float.is_nan !result && !i < nbuckets do
        cum := !cum + counts.(!i);
        if rank <= !cum then
          result :=
            10.0
            ** (log_lo
               +. ((float_of_int !i +. 0.5) /. float_of_int buckets_per_decade));
        incr i
      done;
      if Float.is_nan !result then lo *. (10.0 ** float_of_int decades)
      else !result
    end
  end

let quantile t q =
  quantile_of ~lo:t.lo ~buckets_per_decade:t.buckets_per_decade
    ~decades:t.decades ~underflow:t.underflow ~overflow:t.overflow
    ~counts:t.counts q

let copy t = { t with counts = Array.copy t.counts }

let same_shape a b =
  a.lo = b.lo
  && a.buckets_per_decade = b.buckets_per_decade
  && a.decades = b.decades

let merge_into ~into src =
  if not (same_shape into src) then
    invalid_arg "Quantile_histogram.merge_into: shape mismatch";
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.underflow <- into.underflow + src.underflow;
  into.overflow <- into.overflow + src.overflow;
  into.sum <- into.sum +. src.sum;
  into.count <- into.count + src.count

let equal a b =
  same_shape a b && a.counts = b.counts && a.underflow = b.underflow
  && a.overflow = b.overflow && a.sum = b.sum && a.count = b.count
