(** Flight-recorder time series: periodic windowed metric snapshots
    keyed to {e virtual} time, rendered as JSON Lines.

    End-of-run metric snapshots hide everything the paper's Figs 5–10
    are about — estimator drift, overflow clustering, utilization
    transients.  A time series fixes that without weakening the
    determinism contract: drivers emit one {e window} line per interval
    of virtual time (simulation time in the continuous-load simulator,
    burst index in the impulsive driver), each line carrying the
    {e deltas} of counters, sums, and histogram buckets since the
    previous boundary plus the current gauge values.  Because window
    boundaries live on the virtual-time grid and lines accumulate in
    the per-task shard ({!Shard.series}) — merged at the pool join in
    submission order exactly like trace buffers — the output is
    byte-identical for every [--jobs] value.

    Enabled by [--series-out FILE]; [--series-interval T] sets the
    window length (virtual-time units; bursts for the impulsive
    driver).  When disabled, {!emit_window} and {!start_run} cost one
    atomic read.

    {2 Line schema}

    {v
{"t":<window end>,"kind":"window","label":"<run label>","run":R,
 "window":W,"counters":{name:delta,...},"sums":{name:delta,...},
 "gauges":{name:current,...},"histograms":{name:{...delta...},...}}
    v}

    [run] counts runs started in the shard (0-based), [window] counts
    windows within the run.  Zero-delta counters/sums and unchanged
    histograms are omitted; gauges always render their current value.
    Histogram deltas carry [count]/[sum]/[underflow]/[overflow]
    increments and the non-zero bucket increments as [[index, delta]]
    pairs, with a [kind] discriminator matching the metric kind.
    Rendering is hand-rolled ({!Json}): deterministic byte-for-byte. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_interval : float -> unit
(** Window length in virtual-time units.  Drivers read it at run start.
    @raise Invalid_argument unless finite and positive. *)

val interval : unit -> float

val set_label : string -> unit
(** Sticky label override for the calling domain's shard: when
    non-empty, it replaces the label of every subsequent
    {!start_run} — the experiment layer uses it to tag windows with the
    sweep-cell name instead of the bare controller name. *)

val start_run : label:string -> unit
(** Begin a new run in the calling domain's shard: bump the run index,
    reset the window index, and rebase the deltas so the first window
    covers exactly this run's activity.  No-op when disabled. *)

val emit_window : t:float -> unit
(** Render one window line ending at virtual time [t] into the shard's
    series buffer and rebase the deltas.  Always renders — an empty
    window documents that nothing happened.  If no run was started, an
    implicit run 0 begins (labelled by {!set_label}'s override, if
    any).  No-op when disabled. *)

val contents : unit -> string
(** The calling domain's accumulated series lines (tests). *)

val dump : out_channel -> unit
(** Write the calling domain's series buffer ([--series-out]). *)
