(** Name-based metric recording against the calling domain's current
    {!Shard}.

    Recording is always on: the cost is a hash lookup and an in-place
    update per call, and nothing is written anywhere unless a binary
    asks for a snapshot ([--metrics-out]).  The metric catalogue lives
    in [OBSERVABILITY.md].

    A name is bound to the kind of its first use; re-using it at a
    different kind raises [Invalid_argument] (it is a programming
    error, not data). *)

val inc : ?by:int -> string -> unit
(** Increment a counter (default [by:1]). *)

val add : string -> float -> unit
(** Accumulate into a float sum. *)

val set_gauge : string -> float -> unit
(** Record the latest value of a gauge. *)

val observe : string -> lo:float -> hi:float -> bins:int -> float -> unit
(** Observe a value into a fixed-bucket histogram.  The shape arguments
    are used only when the histogram is first created in the current
    shard; call sites for one name must agree on them, since shards with
    differently-shaped histograms of the same name refuse to merge. *)
