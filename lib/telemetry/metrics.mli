(** Name-based metric recording against the calling domain's current
    {!Shard}.

    Recording is always on: the cost is a hash lookup and an in-place
    update per call, and nothing is written anywhere unless a binary
    asks for a snapshot ([--metrics-out]).  The metric catalogue lives
    in [OBSERVABILITY.md].

    A name is bound to the kind of its first use; re-using it at a
    different kind raises [Invalid_argument] (it is a programming
    error, not data). *)

val inc : ?by:int -> string -> unit
(** Increment a counter (default [by:1]). *)

val add : string -> float -> unit
(** Accumulate into a float sum. *)

val set_gauge : string -> float -> unit
(** Record the latest value of a gauge. *)

val observe : string -> lo:float -> hi:float -> bins:int -> float -> unit
(** Observe a value into a fixed-bucket histogram.  The shape arguments
    are used only when the histogram is first created in the current
    shard; call sites for one name must agree on them, since shards with
    differently-shaped histograms of the same name refuse to merge. *)

val observe_q : string -> float -> unit
(** Observe a value into a log-bucketed {!Quantile_histogram}.  Always
    uses the default geometry ([1e-9 .. 1e15], 20 buckets per decade),
    so every call site of every name shares one shape and shards always
    merge — use it where the natural scale varies. *)

(** Pre-resolved metric handles for hot paths.

    A handle names a metric once, at registration; updating through it
    skips the per-call string hash and table lookup (the resolved cell
    is cached per shard, so the first touch in each shard — e.g. in each
    parallel task — still goes through the string table).  Handles and
    the name-based API above address the same cells: snapshots, merges
    and the determinism contract are identical whichever API records.

    Kinds are checked on every update: using a handle whose name is
    already bound to a different kind raises [Invalid_argument], like
    the name-based API. *)
module Handle : sig
  type t

  val counter : string -> t
  val sum : string -> t
  val gauge : string -> t

  val histogram : string -> lo:float -> hi:float -> bins:int -> t
  (** Shape arguments apply only if this handle is the first to create
      the histogram in a shard, mirroring {!observe}. *)

  val qhist : string -> t
  (** Log-bucketed quantile histogram at the default geometry,
      mirroring {!observe_q}. *)

  val name : t -> string

  val inc : ?by:int -> t -> unit
  val add : t -> float -> unit
  val set_gauge : t -> float -> unit
  val observe : t -> float -> unit
  val observe_q : t -> float -> unit
end
