module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    width : float;
    counts : int array;        (* length bins *)
    mutable underflow : int;
    mutable overflow : int;
    mutable sum : float;
    mutable count : int;
  }

  let create ~lo ~hi ~bins =
    if not (hi > lo) then invalid_arg "Metric.Histogram.create: hi <= lo";
    if bins <= 0 then invalid_arg "Metric.Histogram.create: bins <= 0";
    { lo; hi; width = (hi -. lo) /. float_of_int bins;
      counts = Array.make bins 0; underflow = 0; overflow = 0;
      sum = 0.0; count = 0 }

  let bins h = Array.length h.counts
  let lo h = h.lo
  let hi h = h.hi

  let bucket_index h x =
    if x < h.lo then -1
    else if x >= h.hi then bins h
    else
      (* Roundoff can push the quotient to [bins] for x just under hi;
         clamp into range so in-range values never leak into overflow. *)
      min (bins h - 1) (int_of_float ((x -. h.lo) /. h.width))

  let observe h x =
    h.count <- h.count + 1;
    if Float.is_finite x then begin
      h.sum <- h.sum +. x;
      let i = bucket_index h x in
      if i < 0 then h.underflow <- h.underflow + 1
      else if i >= bins h then h.overflow <- h.overflow + 1
      else h.counts.(i) <- h.counts.(i) + 1
    end

  let counts h = Array.copy h.counts
  let underflow h = h.underflow
  let overflow h = h.overflow
  let sum h = h.sum
  let count h = h.count

  let copy h =
    { h with counts = Array.copy h.counts }

  let same_shape a b =
    a.lo = b.lo && a.hi = b.hi && bins a = bins b

  let merge_into ~into src =
    if not (same_shape into src) then
      invalid_arg "Metric.Histogram.merge_into: shape mismatch";
    Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
    into.underflow <- into.underflow + src.underflow;
    into.overflow <- into.overflow + src.overflow;
    into.sum <- into.sum +. src.sum;
    into.count <- into.count + src.count
end

type t =
  | Counter of int ref
  | Sum of float ref
  | Gauge of float ref
  | Hist of Histogram.t
  | Qhist of Quantile_histogram.t

let kind_name = function
  | Counter _ -> "counter"
  | Sum _ -> "sum"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"
  | Qhist _ -> "quantile_histogram"

let copy = function
  | Counter r -> Counter (ref !r)
  | Sum r -> Sum (ref !r)
  | Gauge r -> Gauge (ref !r)
  | Hist h -> Hist (Histogram.copy h)
  | Qhist h -> Qhist (Quantile_histogram.copy h)

let merge_into ~into src =
  match (into, src) with
  | Counter a, Counter b -> a := !a + !b
  | Sum a, Sum b -> a := !a +. !b
  | Gauge a, Gauge b -> a := !b
  | Hist a, Hist b -> Histogram.merge_into ~into:a b
  | Qhist a, Qhist b -> Quantile_histogram.merge_into ~into:a b
  | (Counter _ | Sum _ | Gauge _ | Hist _ | Qhist _), _ ->
      invalid_arg
        (Printf.sprintf "Metric.merge_into: kind mismatch (%s vs %s)"
           (kind_name into) (kind_name src))
