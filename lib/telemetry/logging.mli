(** Shared [Logs] setup for the binaries.

    One reporter for the whole process: stderr, an elapsed-wall-time
    stamp, the level, and the source name.  Result output (tables,
    simulation summaries) stays on stdout; diagnostics go through [Logs]
    so [--quiet]/[-v]/[--verbosity] (the [Logs_cli.level] flags wired
    into every binary) actually control them.  The reporter is
    mutex-guarded so worker domains may log without interleaving. *)

val setup : Logs.level option -> unit
(** Install the reporter and set the global level ([None] silences
    everything, which is what [--quiet] maps to). *)
