let kind_error name cell want =
  invalid_arg
    (Printf.sprintf "Mbac_telemetry.Metrics: %S is a %s, not a %s" name
       (Metric.kind_name cell) want)

let inc ?(by = 1) name =
  let shard = Shard.current () in
  match Shard.get_or_create shard name (fun () -> Metric.Counter (ref 0)) with
  | Metric.Counter r -> r := !r + by
  | cell -> kind_error name cell "counter"

let add name x =
  let shard = Shard.current () in
  match Shard.get_or_create shard name (fun () -> Metric.Sum (ref 0.0)) with
  | Metric.Sum r -> r := !r +. x
  | cell -> kind_error name cell "sum"

let set_gauge name x =
  let shard = Shard.current () in
  match Shard.get_or_create shard name (fun () -> Metric.Gauge (ref x)) with
  | Metric.Gauge r -> r := x
  | cell -> kind_error name cell "gauge"

let observe name ~lo ~hi ~bins x =
  let shard = Shard.current () in
  match
    Shard.get_or_create shard name (fun () ->
        Metric.Hist (Metric.Histogram.create ~lo ~hi ~bins))
  with
  | Metric.Hist h -> Metric.Histogram.observe h x
  | cell -> kind_error name cell "histogram"
