let kind_error name cell want =
  invalid_arg
    (Printf.sprintf "Mbac_telemetry.Metrics: %S is a %s, not a %s" name
       (Metric.kind_name cell) want)

let inc ?(by = 1) name =
  let shard = Shard.current () in
  match Shard.get_or_create shard name (fun () -> Metric.Counter (ref 0)) with
  | Metric.Counter r -> r := !r + by
  | cell -> kind_error name cell "counter"

let add name x =
  let shard = Shard.current () in
  match Shard.get_or_create shard name (fun () -> Metric.Sum (ref 0.0)) with
  | Metric.Sum r -> r := !r +. x
  | cell -> kind_error name cell "sum"

let set_gauge name x =
  let shard = Shard.current () in
  match Shard.get_or_create shard name (fun () -> Metric.Gauge (ref x)) with
  | Metric.Gauge r -> r := x
  | cell -> kind_error name cell "gauge"

let observe name ~lo ~hi ~bins x =
  let shard = Shard.current () in
  match
    Shard.get_or_create shard name (fun () ->
        Metric.Hist (Metric.Histogram.create ~lo ~hi ~bins))
  with
  | Metric.Hist h -> Metric.Histogram.observe h x
  | cell -> kind_error name cell "histogram"

(* Quantile histograms always use the default (wide) geometry, so every
   call site of every name shares one shape and shards always merge. *)
let observe_q name x =
  let shard = Shard.current () in
  match
    Shard.get_or_create shard name (fun () ->
        Metric.Qhist (Quantile_histogram.create ()))
  with
  | Metric.Qhist h -> Quantile_histogram.observe h x
  | cell -> kind_error name cell "quantile_histogram"

(* Pre-resolved handles: the name -> cell binding is established once
   per (handle, shard) pair instead of once per call, so hot-path
   updates skip the string hash and table probe.  A handle records only
   how to (re)build its metric; the resolved cell is cached in the
   domain-local shard, keyed by the handle's global id, which keeps the
   fast path race-free and keeps fresh per-task shards (the parallel
   engine installs one per task) resolving into their own tables — the
   merge-in-submission-order determinism contract is untouched. *)
module Handle = struct
  type spec =
    | Counter
    | Sum
    | Gauge
    | Hist of { lo : float; hi : float; bins : int }
    | Qhist

  type t = { id : int; name : string; spec : spec }

  let ids = Atomic.make 0
  let make name spec = { id = Atomic.fetch_and_add ids 1; name; spec }
  let counter name = make name Counter
  let sum name = make name Sum
  let gauge name = make name Gauge
  let histogram name ~lo ~hi ~bins = make name (Hist { lo; hi; bins })
  let qhist name = make name Qhist
  let name h = h.name

  let build = function
    | Counter -> Metric.Counter (ref 0)
    | Sum -> Metric.Sum (ref 0.0)
    | Gauge -> Metric.Gauge (ref 0.0)
    | Hist { lo; hi; bins } ->
        Metric.Hist (Metric.Histogram.create ~lo ~hi ~bins)
    | Qhist -> Metric.Qhist (Quantile_histogram.create ())

  (* First touch of this handle in the current shard: bind through the
     string table (existing cell wins, exactly like the name-based API)
     and cache the resolved cell under the handle id. *)
  let resolve_slow h shard =
    let m = Shard.get_or_create shard h.name (fun () -> build h.spec) in
    Shard.set_cell shard ~id:h.id m;
    m

  let[@inline] resolve h =
    let shard = Shard.current () in
    match Shard.cell shard ~id:h.id with
    | Some m -> m
    | None -> resolve_slow h shard

  let[@inline] inc ?(by = 1) h =
    match resolve h with
    | Metric.Counter r -> r := !r + by
    | cell -> kind_error h.name cell "counter"

  let[@inline] add h x =
    match resolve h with
    | Metric.Sum r -> r := !r +. x
    | cell -> kind_error h.name cell "sum"

  let[@inline] set_gauge h x =
    match resolve h with
    | Metric.Gauge r -> r := x
    | cell -> kind_error h.name cell "gauge"

  let[@inline] observe h x =
    match resolve h with
    | Metric.Hist hist -> Metric.Histogram.observe hist x
    | cell -> kind_error h.name cell "histogram"

  let[@inline] observe_q h x =
    match resolve h with
    | Metric.Qhist hist -> Quantile_histogram.observe hist x
    | cell -> kind_error h.name cell "quantile_histogram"
end
