(** Immutable, name-sorted snapshots of a metric table, with JSON and
    Prometheus-style renderings.

    A snapshot is a pure value: taking one never perturbs the shard it
    came from, and merging is a total function used both by tests and by
    tools that aggregate snapshots across processes. *)

type histogram = {
  lo : float;
  hi : float;
  counts : int array;   (** in-range buckets, length [bins] *)
  underflow : int;
  overflow : int;
  sum : float;
  count : int;          (** includes out-of-range and non-finite *)
}

type qhistogram = {
  q_lo : float;
  q_buckets_per_decade : int;
  q_decades : int;
  q_counts : int array;  (** dense in-range buckets (see {!Quantile_histogram}) *)
  q_underflow : int;
  q_overflow : int;
  q_sum : float;
  q_count : int;
}

type value =
  | Counter of int
  | Sum of float
  | Gauge of float
  | Histogram of histogram
  | Qhistogram of qhistogram

type t

val empty : t

val of_list : (string * value) list -> t
(** Build a snapshot from explicit bindings (later bindings of a
    duplicated name are merged into earlier ones per {!merge}). *)

val current : unit -> t
(** Snapshot the calling domain's current shard. *)

val names : t -> string list
val find : t -> string -> value option
val bindings : t -> (string * value) list

val merge : t -> t -> t
(** Union by name; counters/sums/histograms add (associative and
    commutative), gauges take the right operand's value (associative;
    order-sensitive by design — submission order defines the winner).
    @raise Invalid_argument on kind or histogram-shape conflicts. *)

val equal : t -> t -> bool

val to_json : t -> string
(** One JSON object keyed by metric name, names sorted; each value
    carries a ["kind"] discriminator.  Quantile histograms render their
    non-zero buckets sparsely plus deterministic [p50]/[p90]/[p99]/
    [p999] readouts.  Deterministic byte-for-byte. *)

val to_prometheus : t -> string
(** Prometheus text exposition: counters/sums as [counter], gauges as
    [gauge], histograms as cumulative [le]-bucketed [histogram] series
    (the underflow bucket folds into every cumulative count, per the
    Prometheus convention that buckets count everything [<= le]), and
    quantile histograms as [summary] series with pre-computed quantile
    labels.  Both histogram kinds also emit explicit
    [<name>_underflow_total] / [<name>_overflow_total] counters, since
    out-of-range observations are invisible in the cumulative
    buckets. *)

val write_files : t -> path:string -> unit
(** Write [to_json] to [path] and [to_prometheus] to [path ^ ".prom"]. *)
