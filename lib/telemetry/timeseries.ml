let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let[@inline] enabled () = Atomic.get enabled_flag

let interval_v = Atomic.make 100.0

let set_interval t =
  if not (Float.is_finite t && t > 0.0) then
    invalid_arg "Timeseries.set_interval: interval must be finite and > 0";
  Atomic.set interval_v t

let interval () = Atomic.get interval_v

let set_label label =
  (Shard.series (Shard.current ())).Shard.label_override <- label

let rebase (s : Shard.series) shard =
  Hashtbl.reset s.Shard.base;
  List.iter
    (fun (name, cell) -> Hashtbl.replace s.Shard.base name (Metric.copy cell))
    (Shard.metrics shard)

let start_run ~label =
  if enabled () then begin
    let shard = Shard.current () in
    let s = Shard.series shard in
    let label =
      if s.Shard.label_override <> "" then s.Shard.label_override else label
    in
    s.Shard.run_label <- label;
    s.Shard.runs <- s.Shard.runs + 1;
    s.Shard.windows <- 0;
    s.Shard.active <- true;
    rebase s shard
  end

(* Delta rendering.  Metrics registered since the last boundary have no
   baseline entry and diff against a zero/empty cell of their kind. *)

let add_sep b first =
  if !first then first := false else Buffer.add_char b ','

let add_key b name =
  Buffer.add_char b '"';
  Json.escape_into b name;
  Buffer.add_string b "\":"

let render_hist_delta b ~kind ~count ~sum ~underflow ~overflow ~buckets =
  Buffer.add_string b "{\"kind\":\"";
  Buffer.add_string b kind;
  Buffer.add_string b "\",\"count\":";
  Buffer.add_string b (Json.int count);
  Buffer.add_string b ",\"sum\":";
  Buffer.add_string b (Json.float sum);
  Buffer.add_string b ",\"underflow\":";
  Buffer.add_string b (Json.int underflow);
  Buffer.add_string b ",\"overflow\":";
  Buffer.add_string b (Json.int overflow);
  Buffer.add_string b ",\"buckets\":[";
  let first = ref true in
  List.iter
    (fun (i, d) ->
      add_sep b first;
      Buffer.add_char b '[';
      Buffer.add_string b (Json.int i);
      Buffer.add_char b ',';
      Buffer.add_string b (Json.int d);
      Buffer.add_char b ']')
    buckets;
  Buffer.add_string b "]}"

let bucket_deltas cur base =
  let pairs = ref [] in
  for i = Array.length cur - 1 downto 0 do
    let d = cur.(i) - (if i < Array.length base then base.(i) else 0) in
    if d <> 0 then pairs := (i, d) :: !pairs
  done;
  !pairs

let emit_window ~t =
  if enabled () then begin
    let shard = Shard.current () in
    let s = Shard.series shard in
    if not s.Shard.active then begin
      (* windows without an explicit run: label by override (or blank) *)
      s.Shard.run_label <- s.Shard.label_override;
      s.Shard.runs <- s.Shard.runs + 1;
      s.Shard.windows <- 0;
      s.Shard.active <- true
      (* no rebase: everything recorded so far belongs to this window *)
    end;
    let metrics = Shard.metrics shard in
    let base name = Hashtbl.find_opt s.Shard.base name in
    let b = s.Shard.buf in
    Buffer.add_string b "{\"t\":";
    Buffer.add_string b (Json.float t);
    Buffer.add_string b ",\"kind\":\"window\",\"label\":\"";
    Json.escape_into b s.Shard.run_label;
    Buffer.add_string b "\",\"run\":";
    Buffer.add_string b (Json.int (s.Shard.runs - 1));
    Buffer.add_string b ",\"window\":";
    Buffer.add_string b (Json.int s.Shard.windows);
    (* counters: non-zero deltas *)
    Buffer.add_string b ",\"counters\":{";
    let first = ref true in
    List.iter
      (fun (name, cell) ->
        match cell with
        | Metric.Counter r ->
            let b0 =
              match base name with Some (Metric.Counter p) -> !p | _ -> 0
            in
            if !r - b0 <> 0 then begin
              add_sep b first;
              add_key b name;
              Buffer.add_string b (Json.int (!r - b0))
            end
        | _ -> ())
      metrics;
    (* sums: non-zero deltas *)
    Buffer.add_string b "},\"sums\":{";
    let first = ref true in
    List.iter
      (fun (name, cell) ->
        match cell with
        | Metric.Sum r ->
            let b0 =
              match base name with Some (Metric.Sum p) -> !p | _ -> 0.0
            in
            if !r -. b0 <> 0.0 then begin
              add_sep b first;
              add_key b name;
              Buffer.add_string b (Json.float (!r -. b0))
            end
        | _ -> ())
      metrics;
    (* gauges: current values, always *)
    Buffer.add_string b "},\"gauges\":{";
    let first = ref true in
    List.iter
      (fun (name, cell) ->
        match cell with
        | Metric.Gauge r ->
            add_sep b first;
            add_key b name;
            Buffer.add_string b (Json.float !r)
        | _ -> ())
      metrics;
    (* histograms (both kinds): per-window increments, when any *)
    Buffer.add_string b "},\"histograms\":{";
    let first = ref true in
    List.iter
      (fun (name, cell) ->
        match cell with
        | Metric.Hist h ->
            let bc, bu, bo, bs, bn =
              match base name with
              | Some (Metric.Hist p) ->
                  ( Metric.Histogram.counts p,
                    Metric.Histogram.underflow p,
                    Metric.Histogram.overflow p,
                    Metric.Histogram.sum p,
                    Metric.Histogram.count p )
              | _ -> ([||], 0, 0, 0.0, 0)
            in
            let dcount = Metric.Histogram.count h - bn in
            if dcount <> 0 then begin
              add_sep b first;
              add_key b name;
              render_hist_delta b ~kind:"histogram" ~count:dcount
                ~sum:(Metric.Histogram.sum h -. bs)
                ~underflow:(Metric.Histogram.underflow h - bu)
                ~overflow:(Metric.Histogram.overflow h - bo)
                ~buckets:(bucket_deltas (Metric.Histogram.counts h) bc)
            end
        | Metric.Qhist h ->
            let bc, bu, bo, bs, bn =
              match base name with
              | Some (Metric.Qhist p) ->
                  ( Quantile_histogram.counts p,
                    Quantile_histogram.underflow p,
                    Quantile_histogram.overflow p,
                    Quantile_histogram.sum p,
                    Quantile_histogram.count p )
              | _ -> ([||], 0, 0, 0.0, 0)
            in
            let dcount = Quantile_histogram.count h - bn in
            if dcount <> 0 then begin
              add_sep b first;
              add_key b name;
              render_hist_delta b ~kind:"quantile_histogram" ~count:dcount
                ~sum:(Quantile_histogram.sum h -. bs)
                ~underflow:(Quantile_histogram.underflow h - bu)
                ~overflow:(Quantile_histogram.overflow h - bo)
                ~buckets:(bucket_deltas (Quantile_histogram.counts h) bc)
            end
        | _ -> ())
      metrics;
    Buffer.add_string b "}}\n";
    s.Shard.windows <- s.Shard.windows + 1;
    rebase s shard
  end

let contents () = Buffer.contents (Shard.series (Shard.current ())).Shard.buf

let dump oc =
  Buffer.output_buffer oc (Shard.series (Shard.current ())).Shard.buf
