(** Telemetry metric cells: counters, float sums, gauges, and
    fixed-bucket histograms.

    A cell is a single-domain mutable value.  Cross-domain aggregation
    never shares a cell: each task mutates its own shard's cells and
    whole shards are merged afterwards ({!Shard}), in submission order,
    so the aggregate is independent of the worker-pool schedule. *)

module Histogram : sig
  type t
  (** Fixed-width buckets over [\[lo, hi)] plus dedicated underflow
      ([x < lo]) and overflow ([x >= hi]) buckets. *)

  val create : lo:float -> hi:float -> bins:int -> t
  (** @raise Invalid_argument if [hi <= lo] or [bins <= 0]. *)

  val observe : t -> float -> unit
  (** Buckets are half-open: a value on an interior edge counts in the
      bucket above it, [x = lo] lands in bucket 0, [x = hi] in the
      overflow bucket.  Non-finite values count only toward {!count}. *)

  val lo : t -> float
  val hi : t -> float
  val bins : t -> int

  val bucket_index : t -> float -> int
  (** [-1] for underflow, [bins] for overflow, else the bucket. *)

  val counts : t -> int array
  (** Copy of the in-range bucket counts (length [bins]). *)

  val underflow : t -> int
  val overflow : t -> int

  val sum : t -> float
  (** Sum of every finite observed value, in- or out-of-range. *)

  val count : t -> int
  (** Total observations, including out-of-range and non-finite. *)

  val copy : t -> t

  val merge_into : into:t -> t -> unit
  (** Bucket-wise addition.
      @raise Invalid_argument if the shapes (lo, hi, bins) differ. *)
end

type t =
  | Counter of int ref      (** monotone event count *)
  | Sum of float ref        (** accumulated float quantity *)
  | Gauge of float ref      (** last observed value *)
  | Hist of Histogram.t
  | Qhist of Quantile_histogram.t
      (** log-bucketed, quantile-readable ({!Quantile_histogram}) *)

val kind_name : t -> string
(** ["counter"] | ["sum"] | ["gauge"] | ["histogram"] |
    ["quantile_histogram"]. *)

val copy : t -> t

val merge_into : into:t -> t -> unit
(** Counters and sums add, histograms add bucket-wise, and a gauge takes
    the merged-in (right) value — merging shards in submission order
    therefore gives last-writer-wins in that order.
    @raise Invalid_argument on kind or histogram-shape mismatch. *)
