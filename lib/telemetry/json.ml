let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  escape_into b s;
  Buffer.add_char b '"';
  Buffer.contents b

let float x =
  if Float.is_finite x then Printf.sprintf "%.12g" x else "null"

let int = string_of_int
let bool b = if b then "true" else "false"
let arr elts = "[" ^ String.concat "," elts ^ "]"

let obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> string k ^ ":" ^ v) fields)
  ^ "}"
