(** Structured event tracing to JSON Lines, keyed to {e simulation}
    virtual time.

    Tracing is globally off by default ([emit] is then one atomic read);
    binaries enable it when [--trace-out] is given.  Events are rendered
    immediately into the calling domain's shard buffer, so the file
    written at the end is the submission-order concatenation of the task
    buffers — byte-identical for every [--jobs] value.

    The event schema (one JSON object per line, [t] and [kind] first) is
    documented in [OBSERVABILITY.md]. *)

type value =
  | Bool of bool
  | Int of int
  | Float of float  (** non-finite values render as [null] *)
  | Str of string

val set_enabled : bool -> unit
val enabled : unit -> bool

val set_sample_every : int -> unit
(** Keep only every k-th event of each {e sampled} kind (per shard, per
    kind, deterministically).  Default 1 = keep everything.
    @raise Invalid_argument if [k < 1]. *)

val sample_every : unit -> int

val emit : ?sampled:bool -> t:float -> kind:string -> (string * value) list -> unit
(** Append one event to the current shard's trace.  No-op while tracing
    is disabled.  [~sampled:true] marks a high-volume kind (per-decision
    events) subject to {!set_sample_every}; unsampled kinds (overflow
    episodes, run boundaries) are always kept. *)

val dump : out_channel -> unit
(** Write the current shard's accumulated trace. *)
