type histogram = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
  sum : float;
  count : int;
}

type value =
  | Counter of int
  | Sum of float
  | Gauge of float
  | Histogram of histogram

module M = Map.Make (String)

type t = value M.t

let empty = M.empty

let kind_name = function
  | Counter _ -> "counter"
  | Sum _ -> "sum"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let merge_values name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Sum x, Sum y -> Sum (x +. y)
  | Gauge _, Gauge y -> Gauge y
  | Histogram x, Histogram y ->
      if x.lo <> y.lo || x.hi <> y.hi
         || Array.length x.counts <> Array.length y.counts
      then
        invalid_arg
          (Printf.sprintf "Snapshot.merge: histogram %S shape mismatch" name);
      Histogram
        { x with
          counts = Array.map2 ( + ) x.counts y.counts;
          underflow = x.underflow + y.underflow;
          overflow = x.overflow + y.overflow;
          sum = x.sum +. y.sum;
          count = x.count + y.count }
  | (Counter _ | Sum _ | Gauge _ | Histogram _), _ ->
      invalid_arg
        (Printf.sprintf "Snapshot.merge: %S kind mismatch (%s vs %s)" name
           (kind_name a) (kind_name b))

let add_binding acc (name, v) =
  M.update name
    (function None -> Some v | Some prev -> Some (merge_values name prev v))
    acc

let of_list l = List.fold_left add_binding empty l

let value_of_cell = function
  | Metric.Counter r -> Counter !r
  | Metric.Sum r -> Sum !r
  | Metric.Gauge r -> Gauge !r
  | Metric.Hist h ->
      Histogram
        { lo = Metric.Histogram.lo h;
          hi = Metric.Histogram.hi h;
          counts = Metric.Histogram.counts h;
          underflow = Metric.Histogram.underflow h;
          overflow = Metric.Histogram.overflow h;
          sum = Metric.Histogram.sum h;
          count = Metric.Histogram.count h }

let current () =
  of_list
    (List.map
       (fun (name, cell) -> (name, value_of_cell cell))
       (Shard.metrics (Shard.current ())))

let names t = List.map fst (M.bindings t)
let find t name = M.find_opt name t
let bindings t = M.bindings t

let merge a b = M.fold (fun name v acc -> add_binding acc (name, v)) b a

let equal_value a b =
  match (a, b) with
  | Counter x, Counter y -> x = y
  | Sum x, Sum y -> x = y
  | Gauge x, Gauge y -> x = y
  | Histogram x, Histogram y ->
      x.lo = y.lo && x.hi = y.hi && x.counts = y.counts
      && x.underflow = y.underflow && x.overflow = y.overflow
      && x.sum = y.sum && x.count = y.count
  | (Counter _ | Sum _ | Gauge _ | Histogram _), _ -> false

let equal a b = M.equal equal_value a b

let json_of_value = function
  | Counter c -> Json.obj [ ("kind", Json.string "counter"); ("value", Json.int c) ]
  | Sum s -> Json.obj [ ("kind", Json.string "sum"); ("value", Json.float s) ]
  | Gauge g -> Json.obj [ ("kind", Json.string "gauge"); ("value", Json.float g) ]
  | Histogram h ->
      Json.obj
        [ ("kind", Json.string "histogram");
          ("lo", Json.float h.lo);
          ("hi", Json.float h.hi);
          ("bins", Json.int (Array.length h.counts));
          ("underflow", Json.int h.underflow);
          ("overflow", Json.int h.overflow);
          ("counts", Json.arr (List.map Json.int (Array.to_list h.counts)));
          ("sum", Json.float h.sum);
          ("count", Json.int h.count) ]

let to_json t =
  Json.obj (List.map (fun (name, v) -> (name, json_of_value v)) (M.bindings t))
  ^ "\n"

(* Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; ours are
   already snake_case, but sanitize defensively. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" x

let to_prometheus t =
  let b = Buffer.create 1024 in
  M.iter
    (fun name v ->
      let name = prom_name name in
      match v with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string b (Printf.sprintf "%s %d\n" name c)
      | Sum s ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string b (Printf.sprintf "%s %s\n" name (prom_float s))
      | Gauge g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
          Buffer.add_string b (Printf.sprintf "%s %s\n" name (prom_float g))
      | Histogram h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
          let bins = Array.length h.counts in
          let width = (h.hi -. h.lo) /. float_of_int bins in
          let cumulative = ref h.underflow in
          for i = 0 to bins - 1 do
            cumulative := !cumulative + h.counts.(i);
            let le = h.lo +. (float_of_int (i + 1) *. width) in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (prom_float le)
                 !cumulative)
          done;
          cumulative := !cumulative + h.overflow;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name !cumulative);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" name (prom_float h.sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.count))
    t;
  Buffer.contents b

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc s)

let write_files t ~path =
  write_string path (to_json t);
  write_string (path ^ ".prom") (to_prometheus t)
