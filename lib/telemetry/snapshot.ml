type histogram = {
  lo : float;
  hi : float;
  counts : int array;
  underflow : int;
  overflow : int;
  sum : float;
  count : int;
}

type qhistogram = {
  q_lo : float;
  q_buckets_per_decade : int;
  q_decades : int;
  q_counts : int array;
  q_underflow : int;
  q_overflow : int;
  q_sum : float;
  q_count : int;
}

type value =
  | Counter of int
  | Sum of float
  | Gauge of float
  | Histogram of histogram
  | Qhistogram of qhistogram

module M = Map.Make (String)

type t = value M.t

let empty = M.empty

let kind_name = function
  | Counter _ -> "counter"
  | Sum _ -> "sum"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Qhistogram _ -> "quantile_histogram"

let merge_values name a b =
  match (a, b) with
  | Counter x, Counter y -> Counter (x + y)
  | Sum x, Sum y -> Sum (x +. y)
  | Gauge _, Gauge y -> Gauge y
  | Histogram x, Histogram y ->
      if x.lo <> y.lo || x.hi <> y.hi
         || Array.length x.counts <> Array.length y.counts
      then
        invalid_arg
          (Printf.sprintf "Snapshot.merge: histogram %S shape mismatch" name);
      Histogram
        { x with
          counts = Array.map2 ( + ) x.counts y.counts;
          underflow = x.underflow + y.underflow;
          overflow = x.overflow + y.overflow;
          sum = x.sum +. y.sum;
          count = x.count + y.count }
  | Qhistogram x, Qhistogram y ->
      if
        x.q_lo <> y.q_lo
        || x.q_buckets_per_decade <> y.q_buckets_per_decade
        || x.q_decades <> y.q_decades
      then
        invalid_arg
          (Printf.sprintf "Snapshot.merge: quantile histogram %S shape mismatch"
             name);
      Qhistogram
        { x with
          q_counts = Array.map2 ( + ) x.q_counts y.q_counts;
          q_underflow = x.q_underflow + y.q_underflow;
          q_overflow = x.q_overflow + y.q_overflow;
          q_sum = x.q_sum +. y.q_sum;
          q_count = x.q_count + y.q_count }
  | (Counter _ | Sum _ | Gauge _ | Histogram _ | Qhistogram _), _ ->
      invalid_arg
        (Printf.sprintf "Snapshot.merge: %S kind mismatch (%s vs %s)" name
           (kind_name a) (kind_name b))

let add_binding acc (name, v) =
  M.update name
    (function None -> Some v | Some prev -> Some (merge_values name prev v))
    acc

let of_list l = List.fold_left add_binding empty l

let value_of_cell = function
  | Metric.Counter r -> Counter !r
  | Metric.Sum r -> Sum !r
  | Metric.Gauge r -> Gauge !r
  | Metric.Hist h ->
      Histogram
        { lo = Metric.Histogram.lo h;
          hi = Metric.Histogram.hi h;
          counts = Metric.Histogram.counts h;
          underflow = Metric.Histogram.underflow h;
          overflow = Metric.Histogram.overflow h;
          sum = Metric.Histogram.sum h;
          count = Metric.Histogram.count h }
  | Metric.Qhist h ->
      Qhistogram
        { q_lo = Quantile_histogram.lo h;
          q_buckets_per_decade = Quantile_histogram.buckets_per_decade h;
          q_decades = Quantile_histogram.decades h;
          q_counts = Quantile_histogram.counts h;
          q_underflow = Quantile_histogram.underflow h;
          q_overflow = Quantile_histogram.overflow h;
          q_sum = Quantile_histogram.sum h;
          q_count = Quantile_histogram.count h }

let current () =
  of_list
    (List.map
       (fun (name, cell) -> (name, value_of_cell cell))
       (Shard.metrics (Shard.current ())))

let names t = List.map fst (M.bindings t)
let find t name = M.find_opt name t
let bindings t = M.bindings t

let merge a b = M.fold (fun name v acc -> add_binding acc (name, v)) b a

let equal_value a b =
  match (a, b) with
  | Counter x, Counter y -> x = y
  | Sum x, Sum y -> x = y
  | Gauge x, Gauge y -> x = y
  | Histogram x, Histogram y ->
      x.lo = y.lo && x.hi = y.hi && x.counts = y.counts
      && x.underflow = y.underflow && x.overflow = y.overflow
      && x.sum = y.sum && x.count = y.count
  | Qhistogram x, Qhistogram y ->
      x.q_lo = y.q_lo
      && x.q_buckets_per_decade = y.q_buckets_per_decade
      && x.q_decades = y.q_decades && x.q_counts = y.q_counts
      && x.q_underflow = y.q_underflow && x.q_overflow = y.q_overflow
      && x.q_sum = y.q_sum && x.q_count = y.q_count
  | (Counter _ | Sum _ | Gauge _ | Histogram _ | Qhistogram _), _ -> false

let equal a b = M.equal equal_value a b

let qhist_quantile h q =
  Quantile_histogram.quantile_of ~lo:h.q_lo
    ~buckets_per_decade:h.q_buckets_per_decade ~decades:h.q_decades
    ~underflow:h.q_underflow ~overflow:h.q_overflow ~counts:h.q_counts q

(* Sparse rendering for the 480-bucket default geometry: only the
   non-zero buckets, as [index, count] pairs. *)
let sparse_buckets counts =
  let pairs = ref [] in
  for i = Array.length counts - 1 downto 0 do
    if counts.(i) <> 0 then
      pairs := Json.arr [ Json.int i; Json.int counts.(i) ] :: !pairs
  done;
  Json.arr !pairs

let json_of_value = function
  | Counter c -> Json.obj [ ("kind", Json.string "counter"); ("value", Json.int c) ]
  | Sum s -> Json.obj [ ("kind", Json.string "sum"); ("value", Json.float s) ]
  | Gauge g -> Json.obj [ ("kind", Json.string "gauge"); ("value", Json.float g) ]
  | Histogram h ->
      Json.obj
        [ ("kind", Json.string "histogram");
          ("lo", Json.float h.lo);
          ("hi", Json.float h.hi);
          ("bins", Json.int (Array.length h.counts));
          ("underflow", Json.int h.underflow);
          ("overflow", Json.int h.overflow);
          ("counts", Json.arr (List.map Json.int (Array.to_list h.counts)));
          ("sum", Json.float h.sum);
          ("count", Json.int h.count) ]
  | Qhistogram h ->
      Json.obj
        [ ("kind", Json.string "quantile_histogram");
          ("lo", Json.float h.q_lo);
          ("buckets_per_decade", Json.int h.q_buckets_per_decade);
          ("decades", Json.int h.q_decades);
          ("underflow", Json.int h.q_underflow);
          ("overflow", Json.int h.q_overflow);
          ("p50", Json.float (qhist_quantile h 0.5));
          ("p90", Json.float (qhist_quantile h 0.9));
          ("p99", Json.float (qhist_quantile h 0.99));
          ("p999", Json.float (qhist_quantile h 0.999));
          ("buckets", sparse_buckets h.q_counts);
          ("sum", Json.float h.q_sum);
          ("count", Json.int h.q_count) ]

let to_json t =
  Json.obj (List.map (fun (name, v) -> (name, json_of_value v)) (M.bindings t))
  ^ "\n"

(* Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; ours are
   already snake_case, but sanitize defensively. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" x

let to_prometheus t =
  let b = Buffer.create 1024 in
  M.iter
    (fun name v ->
      let name = prom_name name in
      match v with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string b (Printf.sprintf "%s %d\n" name c)
      | Sum s ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" name);
          Buffer.add_string b (Printf.sprintf "%s %s\n" name (prom_float s))
      | Gauge g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" name);
          Buffer.add_string b (Printf.sprintf "%s %s\n" name (prom_float g))
      | Histogram h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" name);
          let bins = Array.length h.counts in
          let width = (h.hi -. h.lo) /. float_of_int bins in
          let cumulative = ref h.underflow in
          for i = 0 to bins - 1 do
            cumulative := !cumulative + h.counts.(i);
            let le = h.lo +. (float_of_int (i + 1) *. width) in
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (prom_float le)
                 !cumulative)
          done;
          cumulative := !cumulative + h.overflow;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name !cumulative);
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" name (prom_float h.sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.count);
          (* The cumulative buckets fold underflow in and cap overflow at
             +Inf, so out-of-range observations are invisible there;
             expose them as explicit companion counters. *)
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s_underflow_total counter\n" name);
          Buffer.add_string b
            (Printf.sprintf "%s_underflow_total %d\n" name h.underflow);
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s_overflow_total counter\n" name);
          Buffer.add_string b
            (Printf.sprintf "%s_overflow_total %d\n" name h.overflow)
      | Qhistogram h ->
          (* Rendered as a Prometheus summary: pre-computed quantiles
             rather than 480 mostly-empty le-buckets. *)
          Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" name);
          List.iter
            (fun (label, q) ->
              Buffer.add_string b
                (Printf.sprintf "%s{quantile=\"%s\"} %s\n" name label
                   (prom_float (qhist_quantile h q))))
            [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99); ("0.999", 0.999) ];
          Buffer.add_string b
            (Printf.sprintf "%s_sum %s\n" name (prom_float h.q_sum));
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" name h.q_count);
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s_underflow_total counter\n" name);
          Buffer.add_string b
            (Printf.sprintf "%s_underflow_total %d\n" name h.q_underflow);
          Buffer.add_string b
            (Printf.sprintf "# TYPE %s_overflow_total counter\n" name);
          Buffer.add_string b
            (Printf.sprintf "%s_overflow_total %d\n" name h.q_overflow))
    t;
  Buffer.contents b

let write_string path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc s)

let write_files t ~path =
  write_string path (to_json t);
  write_string (path ^ ".prom") (to_prometheus t)
