(** Log-bucketed (HDR-style) histograms with deterministic quantile
    readout.

    Fixed-bucket {!Metric.Histogram}s need a known scale: one [(lo, hi,
    bins)] for every call site of a name.  When the natural scale of a
    quantity varies across sweep cells — episode durations, decision
    latencies — a log-bucketed histogram covers many orders of magnitude
    with a {e bounded relative} quantization error instead.

    Bucket [i] covers [\[lo * g^i, lo * g^(i+1))] with
    [g = 10^(1/buckets_per_decade)]; the default geometry
    ([lo = 1e-9], [24] decades, [20] buckets per decade — 480 buckets)
    spans [1e-9 .. 1e15], wide enough for nanosecond wall-clock spans
    and virtual-time durations alike, so every call site of one name
    can share the default shape.

    Quantile readout returns the geometric midpoint [lo * g^(i+1/2)] of
    the bucket holding the empirical rank-[ceil (q*n)] observation, so
    the relative error against the exact empirical quantile is bounded
    by [sqrt g - 1] ({!max_rel_error}; about 5.9% at 20 buckets per
    decade).  The readout is pure integer-rank arithmetic over integer
    bucket counts: deterministic byte-for-byte, merge-order-invariant.

    Out-of-range and non-positive observations are never dropped
    silently: finite [x < lo] (including zero and negatives) counts as
    {!underflow}, finite [x >= hi] as {!overflow}, and both clamp the
    quantile readout to [lo] / [hi].  Non-finite values count only
    toward {!count}, like {!Metric.Histogram}. *)

type t

val create : ?lo:float -> ?decades:int -> ?buckets_per_decade:int -> unit -> t
(** Defaults: [lo = 1e-9], [decades = 24], [buckets_per_decade = 20].
    @raise Invalid_argument if [lo <= 0], a count is non-positive, or
    the bucket array would exceed [2^20] entries. *)

val observe : t -> float -> unit

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]]: the bucket-midpoint estimate
    of the empirical [q]-quantile over all finite observations, with
    out-of-range ranks clamped to [lo] / [hi]; [nan] when empty.
    @raise Invalid_argument if [q] is outside [\[0, 1\]]. *)

val quantile_of :
  lo:float ->
  buckets_per_decade:int ->
  decades:int ->
  underflow:int ->
  overflow:int ->
  counts:int array ->
  float ->
  float
(** {!quantile} over raw parts — the same readout for consumers holding
    a snapshot of the bucket counts rather than a live histogram. *)

val max_rel_error : t -> float
(** Worst-case relative error of {!quantile} against the exact
    empirical quantile, for in-range observations:
    [10^(1/(2*buckets_per_decade)) - 1]. *)

val max_rel_error_of : buckets_per_decade:int -> float

val lo : t -> float
val hi : t -> float
(** [lo * 10^decades]. *)

val buckets_per_decade : t -> int
val decades : t -> int

val buckets : t -> int
(** Total in-range bucket count, [decades * buckets_per_decade]. *)

val bucket_index : t -> float -> int
(** [-1] for underflow, [buckets] for overflow, else the bucket. *)

val bucket_lower : t -> int -> float
val bucket_mid : t -> int -> float

val counts : t -> int array
(** Copy of the in-range bucket counts. *)

val underflow : t -> int
val overflow : t -> int

val sum : t -> float
(** Sum of every finite observed value, in- or out-of-range. *)

val count : t -> int
(** Total observations, including out-of-range and non-finite. *)

val copy : t -> t

val merge_into : into:t -> t -> unit
(** Bucket-wise addition.
    @raise Invalid_argument if the shapes
    [(lo, decades, buckets_per_decade)] differ. *)

val equal : t -> t -> bool
