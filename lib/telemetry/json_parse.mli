(** Minimal JSON parser for the telemetry tooling ([bin/mbac_report]
    reads back the traces and series that {!Json} renders).

    Self-contained on purpose: the repository ships no JSON library
    dependency, and the subset here (RFC 8259 values, numbers as
    [float], [\u] escapes decoded to UTF-8) is exactly what the
    deterministic renderer produces plus enough slack to read
    hand-edited files. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one complete JSON value; trailing non-whitespace is an error.
    Errors carry a byte offset and a description. *)

(** Accessors return [None] on a kind mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
(** [Null] maps to [nan]: the renderer writes non-finite floats as
    [null], so reading them back as [nan] round-trips. *)

val to_int : t -> int option
(** Only for numbers with integral values. *)

val to_string : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
