type value =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let sample = Atomic.make 1

let set_sample_every k =
  if k < 1 then invalid_arg "Trace.set_sample_every: k < 1";
  Atomic.set sample k

let sample_every () = Atomic.get sample

let add_value b = function
  | Bool v -> Buffer.add_string b (Json.bool v)
  | Int v -> Buffer.add_string b (Json.int v)
  | Float v -> Buffer.add_string b (Json.float v)
  | Str v ->
      Buffer.add_char b '"';
      Json.escape_into b v;
      Buffer.add_char b '"'

let emit ?(sampled = false) ~t ~kind fields =
  if enabled () then begin
    let shard = Shard.current () in
    let keep =
      (not sampled)
      ||
      let every = sample_every () in
      every = 1 || Shard.bump_emit_count shard kind mod every = 0
    in
    if keep then begin
      let b = Shard.trace_buffer shard in
      Buffer.add_string b "{\"t\":";
      Buffer.add_string b (Json.float t);
      Buffer.add_string b ",\"kind\":\"";
      Json.escape_into b kind;
      Buffer.add_char b '"';
      List.iter
        (fun (k, v) ->
          Buffer.add_string b ",\"";
          Json.escape_into b k;
          Buffer.add_string b "\":";
          add_value b v)
        fields;
      Buffer.add_string b "}\n"
    end
  end

let dump oc = Buffer.output_buffer oc (Shard.trace_buffer (Shard.current ()))
