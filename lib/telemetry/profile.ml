type stat = {
  count : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let table : (string, stat) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let record name ns =
  Mutex.lock lock;
  (match Hashtbl.find_opt table name with
  | None ->
      Hashtbl.replace table name
        { count = 1; total_ns = ns; min_ns = ns; max_ns = ns }
  | Some s ->
      Hashtbl.replace table name
        { count = s.count + 1;
          total_ns = Int64.add s.total_ns ns;
          min_ns = (if ns < s.min_ns then ns else s.min_ns);
          max_ns = (if ns > s.max_ns then ns else s.max_ns) });
  Mutex.unlock lock

let span name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Monotonic_clock.now () in
    let finally () = record name (Int64.sub (Monotonic_clock.now ()) t0) in
    Fun.protect ~finally f
  end

let stats () =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun name s acc -> (name, s) :: acc) table [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock

let ms ns = Int64.to_float ns /. 1e6

let report fmt =
  match stats () with
  | [] -> Format.fprintf fmt "profile: no spans recorded@."
  | l ->
      Format.fprintf fmt "profile: %-40s %10s %12s %12s %12s %12s@." "span"
        "count" "total ms" "mean ms" "min ms" "max ms";
      List.iter
        (fun (name, s) ->
          Format.fprintf fmt "profile: %-40s %10d %12.3f %12.3f %12.3f %12.3f@."
            name s.count (ms s.total_ns)
            (ms s.total_ns /. float_of_int s.count)
            (ms s.min_ns) (ms s.max_ns))
        l
