type stat = {
  count : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

(* Internal accumulator: the headline stat plus a log-bucketed histogram
   of span durations (in nanoseconds), so the report and the JSON
   archive can show p50/p90/p99 and not just the mean. *)
type acc = {
  mutable a_count : int;
  mutable a_total : int64;
  mutable a_min : int64;
  mutable a_max : int64;
  hist : Quantile_histogram.t;
}

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let table : (string, acc) Hashtbl.t = Hashtbl.create 32
let lock = Mutex.create ()

let record name ns =
  Mutex.lock lock;
  (match Hashtbl.find_opt table name with
  | None ->
      let a =
        { a_count = 1; a_total = ns; a_min = ns; a_max = ns;
          hist = Quantile_histogram.create () }
      in
      Quantile_histogram.observe a.hist (Int64.to_float ns);
      Hashtbl.replace table name a
  | Some a ->
      a.a_count <- a.a_count + 1;
      a.a_total <- Int64.add a.a_total ns;
      if ns < a.a_min then a.a_min <- ns;
      if ns > a.a_max then a.a_max <- ns;
      Quantile_histogram.observe a.hist (Int64.to_float ns));
  Mutex.unlock lock

let span name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Monotonic_clock.now () in
    let finally () = record name (Int64.sub (Monotonic_clock.now ()) t0) in
    Fun.protect ~finally f
  end

let stat_of_acc a =
  { count = a.a_count; total_ns = a.a_total; min_ns = a.a_min;
    max_ns = a.a_max }

let fold f =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun name a acc -> f name a :: acc) table [] in
  Mutex.unlock lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let stats () = fold (fun name a -> (name, stat_of_acc a))

let quantiles_ms () =
  fold (fun name a ->
      ( name,
        ( Quantile_histogram.quantile a.hist 0.5 /. 1e6,
          Quantile_histogram.quantile a.hist 0.9 /. 1e6,
          Quantile_histogram.quantile a.hist 0.99 /. 1e6 ) ))

let reset () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Mutex.unlock lock

let ms ns = Int64.to_float ns /. 1e6

let report fmt =
  match fold (fun name a -> (name, a)) with
  | [] -> Format.fprintf fmt "profile: no spans recorded@."
  | l ->
      Format.fprintf fmt
        "profile: %-40s %10s %12s %12s %12s %12s %12s %12s@." "span" "count"
        "total ms" "mean ms" "p50 ms" "p99 ms" "min ms" "max ms";
      List.iter
        (fun (name, a) ->
          Format.fprintf fmt
            "profile: %-40s %10d %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f@."
            name a.a_count (ms a.a_total)
            (ms a.a_total /. float_of_int a.a_count)
            (Quantile_histogram.quantile a.hist 0.5 /. 1e6)
            (Quantile_histogram.quantile a.hist 0.99 /. 1e6)
            (ms a.a_min) (ms a.a_max))
        l

let to_json () =
  let spans =
    fold (fun name a ->
        ( name,
          Json.obj
            [ ("count", Json.int a.a_count);
              ("total_ms", Json.float (ms a.a_total));
              ("mean_ms", Json.float (ms a.a_total /. float_of_int a.a_count));
              ("p50_ms", Json.float (Quantile_histogram.quantile a.hist 0.5 /. 1e6));
              ("p90_ms", Json.float (Quantile_histogram.quantile a.hist 0.9 /. 1e6));
              ("p99_ms", Json.float (Quantile_histogram.quantile a.hist 0.99 /. 1e6));
              ("min_ms", Json.float (ms a.a_min));
              ("max_ms", Json.float (ms a.a_max)) ] ))
  in
  Json.obj spans ^ "\n"
