let reporter () =
  let t0 = Monotonic_clock.now () in
  let lock = Mutex.create () in
  let report src level ~over k msgf =
    msgf (fun ?header:_ ?tags:_ fmt ->
        let elapsed =
          Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
        in
        Mutex.lock lock;
        Format.kfprintf
          (fun ppf ->
            Format.pp_print_flush ppf ();
            Mutex.unlock lock;
            over ();
            k ())
          Format.err_formatter
          ("[%8.3fs] %a [%s] " ^^ fmt ^^ "@.")
          elapsed Logs.pp_level level (Logs.Src.name src))
  in
  { Logs.report }

let setup level =
  Logs.set_reporter (reporter ());
  Logs.set_level level
