(** Minimal deterministic JSON rendering helpers.

    The telemetry outputs (metric snapshots, JSONL traces, BENCH.json)
    are rendered by hand so that the byte stream depends only on the
    values — no pretty-printer state, no hash order.  Callers build
    objects with {!obj}/{!arr} or append to a [Buffer] directly. *)

val escape_into : Buffer.t -> string -> unit
(** Append the JSON-escaped body of a string (no surrounding quotes). *)

val string : string -> string
(** Quoted, escaped JSON string literal. *)

val float : float -> string
(** Shortest stable rendering ([%.12g]); non-finite values (nan, ±inf)
    render as [null], which is what they mean in a JSON document. *)

val int : int -> string

val bool : bool -> string

val arr : string list -> string
(** [arr renders] a JSON array from already-rendered element strings. *)

val obj : (string * string) list -> string
(** [obj fields] renders a JSON object from (key, already-rendered
    value) pairs, in the given order. *)
