(** Opt-in wall-clock profiling spans over a monotonic clock.

    Disabled by default: {!span} then costs one atomic read and calls
    the thunk directly, so the default output of every binary stays
    byte-identical whether or not the code is instrumented.  When
    enabled ([--profile]), span durations are accumulated into a global
    table (safe across domains) that {!report} prints — to stderr in the
    binaries, so stdout, metric snapshots, and traces are never
    perturbed.

    Timings come from [Monotonic_clock] (CLOCK_MONOTONIC via the
    bechamel stubs), so they are wall-clock, immune to system clock
    steps, and meaningful across domains. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk; when profiling is enabled, record its wall-clock
    duration under the given span name (exceptions still propagate, and
    the partial span is recorded). *)

type stat = {
  count : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

val stats : unit -> (string * stat) list
(** Accumulated spans, sorted by name. *)

val quantiles_ms : unit -> (string * (float * float * float)) list
(** Per-span [(p50, p90, p99)] duration quantiles in milliseconds, from
    a log-bucketed {!Quantile_histogram} per span (bounded relative
    quantization error, see {!Quantile_histogram.max_rel_error}). *)

val report : Format.formatter -> unit
(** Human-readable table of {!stats} (count, total, mean, p50, p99,
    min, max); prints a placeholder line when no spans were recorded. *)

val to_json : unit -> string
(** The span table as one JSON object keyed by span name —
    [--profile-out]'s payload, archivable next to BENCH.json.  Values
    are wall-clock measurements, so bytes vary run to run. *)

val reset : unit -> unit
