(** Opt-in wall-clock profiling spans over a monotonic clock.

    Disabled by default: {!span} then costs one atomic read and calls
    the thunk directly, so the default output of every binary stays
    byte-identical whether or not the code is instrumented.  When
    enabled ([--profile]), span durations are accumulated into a global
    table (safe across domains) that {!report} prints — to stderr in the
    binaries, so stdout, metric snapshots, and traces are never
    perturbed.

    Timings come from [Monotonic_clock] (CLOCK_MONOTONIC via the
    bechamel stubs), so they are wall-clock, immune to system clock
    steps, and meaningful across domains. *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val span : string -> (unit -> 'a) -> 'a
(** Run the thunk; when profiling is enabled, record its wall-clock
    duration under the given span name (exceptions still propagate, and
    the partial span is recorded). *)

type stat = {
  count : int;
  total_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

val stats : unit -> (string * stat) list
(** Accumulated spans, sorted by name. *)

val report : Format.formatter -> unit
(** Human-readable table of {!stats}; prints a placeholder line when no
    spans were recorded. *)

val reset : unit -> unit
