(** The per-domain telemetry cell: a metric table plus a buffered event
    trace.

    Every domain carries an ambient {e current} shard (created lazily in
    domain-local storage).  Instrumented code — controllers, simulators,
    the parallel engine itself — always records into the current shard
    and never touches another domain's.

    {2 Determinism contract}

    [Mbac_sim.Parallel.run_tasks] installs a {e fresh} shard for every
    task (whatever the pool width, including the serial [--jobs 1] path)
    and merges the task shards into the submitting domain's shard {e in
    submission order} after the join.  Counters, sums and histograms
    merge commutatively; gauges are last-writer-wins in submission
    order; trace buffers are concatenated in submission order.  The
    aggregate telemetry is therefore byte-identical for every [--jobs]
    value. *)

type t

(** Windowed time-series state ({!Timeseries} owns the semantics; it
    lives here so it shards, merges, and resets with the rest of the
    telemetry).  Only [buf] takes part in merging — the bookkeeping
    fields are private to the shard that runs the simulation. *)
type series = {
  buf : Buffer.t;           (** rendered JSONL window lines *)
  mutable label_override : string;
  mutable run_label : string;
  mutable runs : int;
  mutable windows : int;
  mutable active : bool;
  base : (string, Metric.t) Hashtbl.t;
      (** per-metric baseline copies as of the last window boundary *)
}

val create : unit -> t

val current : unit -> t
(** The calling domain's ambient shard. *)

val with_current : t -> (unit -> 'a) -> 'a
(** Run a thunk with the given shard installed as the calling domain's
    current shard; the previous shard is restored afterwards (also on
    exceptions). *)

val reset_current : unit -> unit
(** Replace the calling domain's ambient shard with a fresh one —
    used by tests and by binaries that emit several independent
    snapshots. *)

val is_empty : t -> bool
(** No metrics registered, an empty trace buffer, and an empty series
    buffer — i.e. merging this shard anywhere is a no-op. *)

val merge_into_current : t -> unit
(** Merge a (quiescent) shard's metrics into the current shard per
    {!Metric.merge_into} and append its trace and series buffers
    ({!is_empty} shards are skipped without touching the destination).
    The source shard must no longer be mutated concurrently. *)

(** {2 Metric table} *)

val find_metric : t -> string -> Metric.t option

val get_or_create : t -> string -> (unit -> Metric.t) -> Metric.t
(** Existing cell if present ({e its} kind wins), else the cell built by
    the thunk, registered under the name. *)

val cell : t -> id:int -> Metric.t option
(** Handle cache: the metric resolved for handle [id] in this shard, if
    any ({!Metrics.Handle} fills it on first touch).  Never allocates. *)

val set_cell : t -> id:int -> Metric.t -> unit
(** Cache the metric resolved for handle [id].  The metric must also
    live in the string table — the cache is an accelerator, not a second
    registry. *)

val metrics : t -> (string * Metric.t) list
(** Current contents, sorted by name. *)

(** {2 Trace buffer} *)

val trace_buffer : t -> Buffer.t

val series : t -> series
(** This shard's time-series state; use through {!Timeseries}. *)

val bump_emit_count : t -> string -> int
(** Post-increment the per-event-kind emission counter (used for
    deterministic trace sampling); returns the pre-increment count. *)
