(* Windowed time-series state, owned by [Timeseries].  [base] holds
   deep copies of this shard's metric cells as of the last window
   boundary (or run start), so a window line can render the deltas. *)
type series = {
  buf : Buffer.t;
  mutable label_override : string;  (* "" = none; survives runs *)
  mutable run_label : string;
  mutable runs : int;               (* runs started in this shard *)
  mutable windows : int;            (* windows emitted in the current run *)
  mutable active : bool;            (* a run has started *)
  base : (string, Metric.t) Hashtbl.t;
}

type t = {
  table : (string, Metric.t) Hashtbl.t;
  trace : Buffer.t;
  emit_counts : (string, int ref) Hashtbl.t;
  series : series;
  (* Per-shard cache of handle-resolved metrics, indexed by the global
     handle id (see [Metrics.Handle]).  Purely an accelerator: the
     string [table] stays the source of truth for snapshots and merges,
     so cached and name-based access always hit the same cell.  The
     cache lives in the shard — which is domain-local — so handle reads
     never race across domains. *)
  mutable cells : Metric.t option array;
}

let create () =
  { table = Hashtbl.create 64;
    trace = Buffer.create 256;
    emit_counts = Hashtbl.create 8;
    series =
      { buf = Buffer.create 0;
        label_override = "";
        run_label = "";
        runs = 0;
        windows = 0;
        active = false;
        base = Hashtbl.create 8 };
    cells = [||] }

let[@inline] cell t ~id =
  let cells = t.cells in
  if id < Array.length cells then Array.unsafe_get cells id else None

let set_cell t ~id m =
  let len = Array.length t.cells in
  if id >= len then begin
    let ncap = max 16 (max (id + 1) (2 * len)) in
    let cells = Array.make ncap None in
    Array.blit t.cells 0 cells 0 len;
    t.cells <- cells
  end;
  t.cells.(id) <- Some m

let key = Domain.DLS.new_key create

let current () = Domain.DLS.get key

let with_current shard f =
  let previous = Domain.DLS.get key in
  Domain.DLS.set key shard;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key previous) f

let reset_current () = Domain.DLS.set key (create ())

let find_metric t name = Hashtbl.find_opt t.table name

let get_or_create t name build =
  match Hashtbl.find_opt t.table name with
  | Some cell -> cell
  | None ->
      let cell = build () in
      Hashtbl.replace t.table name cell;
      cell

let metrics t =
  Hashtbl.fold (fun name cell acc -> (name, cell) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let is_empty t =
  Hashtbl.length t.table = 0 && Buffer.length t.trace = 0
  && Buffer.length t.series.buf = 0

let merge_into_current src =
  (* The pool's join merges one shard per task, serially, in the
     submitting domain — skip the sort-and-probe entirely for tasks
     that recorded nothing. *)
  if not (is_empty src) then begin
    let dst = current () in
    List.iter
      (fun (name, cell) ->
        match Hashtbl.find_opt dst.table name with
        | Some into -> Metric.merge_into ~into cell
        | None -> Hashtbl.replace dst.table name (Metric.copy cell))
      (metrics src);
    Buffer.add_buffer dst.trace src.trace;
    Buffer.add_buffer dst.series.buf src.series.buf
  end

let trace_buffer t = t.trace
let series t = t.series

let bump_emit_count t kind =
  match Hashtbl.find_opt t.emit_counts kind with
  | Some r ->
      let v = !r in
      incr r;
      v
  | None ->
      Hashtbl.replace t.emit_counts kind (ref 1);
      0
