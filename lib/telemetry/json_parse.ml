type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Error of { pos : int; msg : string }

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Error { pos = c.pos; msg })

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let n = String.length c.s in
  while
    c.pos < n
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some d when d = ch -> advance c
  | Some d -> fail c (Printf.sprintf "expected %C, found %C" ch d)
  | None -> fail c (Printf.sprintf "expected %C, found end of input" ch)

let expect_lit c lit v =
  let n = String.length lit in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = lit then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c (Printf.sprintf "invalid literal (expected %s)" lit)

let hex_digit c ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail c "invalid \\u escape"

let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
        advance c;
        (match peek c with
        | None -> fail c "unterminated escape"
        | Some ch ->
            advance c;
            (match ch with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.s then fail c "truncated \\u";
                let cp = ref 0 in
                for _ = 1 to 4 do
                  cp := (!cp * 16) + hex_digit c c.s.[c.pos];
                  advance c
                done;
                add_utf8 b !cp
            | _ -> fail c "invalid escape"));
        loop ()
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        loop ()
  in
  loop ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let n = String.length c.s in
  if c.pos < n && c.s.[c.pos] = '-' then advance c;
  while
    c.pos < n
    &&
    match c.s.[c.pos] with
    | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
    | _ -> false
  do
    advance c
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match float_of_string_opt tok with
  | Some f -> Num f
  | None -> fail c (Printf.sprintf "invalid number %S" tok)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          fields := (key, v) :: !fields;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ()
          | Some '}' -> advance c
          | _ -> fail c "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let elts = ref [] in
        let rec elements () =
          let v = parse_value c in
          elts := v :: !elts;
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements ()
          | Some ']' -> advance c
          | _ -> fail c "expected ',' or ']'"
        in
        elements ();
        List (List.rev !elts)
      end
  | Some 't' -> expect_lit c "true" (Bool true)
  | Some 'f' -> expect_lit c "false" (Bool false)
  | Some 'n' -> expect_lit c "null" Null
  | Some _ -> parse_number c

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Result.Error
          (Printf.sprintf "offset %d: trailing characters after value" c.pos)
      else Ok v
  | exception Error { pos; msg } ->
      Result.Error (Printf.sprintf "offset %d: %s" pos msg)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function
  | Num f -> Some f
  | Null -> Some nan (* Json.float renders non-finite values as null *)
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj l -> Some l | _ -> None
