(* The mutable rate/next-change pair lives in its own all-float [State]
   record so firing a change epoch writes unboxed doubles in place: the
   previous formulation ([step] returning a [(rate, next)] tuple stored
   into a mixed record) cost a tuple plus two float boxes per rate
   change, and rate changes dominate the simulator's event mix. *)

module State = struct
  type t = {
    mutable rate : float;
    mutable next_change : float;
    mutable peak_hint : float;
  }

  let[@inline] set st ~rate ~next_change =
    st.rate <- rate;
    st.next_change <- next_change
end

type t = {
  mean : float;
  variance : float;
  state : State.t;
  step : State.t -> now:float -> unit;
  copy : Mbac_stats.Rng.t -> t;
}

let create ?copy ~mean ~variance ~rate0 ~next_change0 ~step () =
  if variance < 0.0 then invalid_arg "Source.create: negative variance";
  let copy =
    match copy with
    | Some f -> f
    | None ->
        fun _ -> invalid_arg "Source.copy: source was built without ~copy"
  in
  { mean; variance;
    state =
      { State.rate = rate0;
        next_change = next_change0;
        peak_hint = mean +. (3.0 *. sqrt variance) };
    step; copy }

(* The model's [copy] rebuilds the step closure around its duplicated
   hidden state and the clone's RNG, but cannot see this module's
   [State]; the visible rate/next-change/peak-hint are carried over
   here.  The clone must not draw from either RNG during construction. *)
let copy t rng =
  let t' = t.copy rng in
  t'.state.State.rate <- t.state.State.rate;
  t'.state.State.next_change <- t.state.State.next_change;
  t'.state.State.peak_hint <- t.state.State.peak_hint;
  t'

let[@inline] rate t = t.state.State.rate
let[@inline] next_change t = t.state.State.next_change

let fire t ~now =
  assert (now >= t.state.State.next_change -. 1e-9);
  t.step t.state ~now;
  assert (t.state.State.next_change > now)

(* Batched advance: identical draw sequence to firing one change at a
   time at its own epoch (each step sees [now] = the epoch it fires),
   but the step closure and state are fetched once for the whole
   sweep. *)
let fire_until t ~upto =
  let st = t.state in
  let step = t.step in
  while st.State.next_change <= upto do
    let now = st.State.next_change in
    step st ~now;
    assert (st.State.next_change > now)
  done

let mean t = t.mean
let variance t = t.variance
let peak_hint t = t.state.State.peak_hint
let set_peak_hint t p = t.state.State.peak_hint <- p
