type params = {
  mean_rate : float;
  cv : float;
  hurst : float;
  frame_dt : float;
  scene_mean_frames : float;
  scene_cv : float;
  scene_weight : float;
}

let default_params ~mean_rate =
  { mean_rate; cv = 0.55; hurst = 0.85; frame_dt = 1.0 /. 24.0;
    scene_mean_frames = 240.0; scene_cv = 0.35; scene_weight = 0.4 }

let validate p =
  if p.mean_rate <= 0.0 then invalid_arg "Mpeg_synth: requires mean_rate > 0";
  if p.cv <= 0.0 then invalid_arg "Mpeg_synth: requires cv > 0";
  if not (p.hurst > 0.0 && p.hurst < 1.0) then
    invalid_arg "Mpeg_synth: requires 0 < hurst < 1";
  if p.frame_dt <= 0.0 then invalid_arg "Mpeg_synth: requires frame_dt > 0";
  if p.scene_mean_frames < 1.0 then
    invalid_arg "Mpeg_synth: requires scene_mean_frames >= 1";
  if not (p.scene_weight >= 0.0 && p.scene_weight <= 1.0) then
    invalid_arg "Mpeg_synth: requires scene_weight in [0,1]"

let generate rng p ~frames =
  validate p;
  if frames <= 0 then invalid_arg "Mpeg_synth.generate: requires frames > 0";
  (* 1. LRD base: lognormal transform of fGn -> skewed, long-memory.
     The plan (spectrum + scratch) is memoized per (hurst, frames) per
     domain, so generating many traces of one shape pays the setup FFT
     once. *)
  let fgn =
    Mbac_numerics.Fgn.generate_with
      (Mbac_numerics.Fgn.cached_plan ~hurst:p.hurst ~n:frames)
      rng
  in
  let base = Array.map (fun z -> exp (0.5 *. z)) fgn in
  (* 2. Scene levels: piecewise-constant lognormal multipliers. *)
  let scene = Array.make frames 1.0 in
  let i = ref 0 in
  while !i < frames do
    let level =
      Mbac_stats.Sample.lognormal_of_moments rng ~mean:1.0 ~std:p.scene_cv
    in
    let len =
      1 + int_of_float (Mbac_stats.Sample.exponential rng ~mean:p.scene_mean_frames)
    in
    let stop = min frames (!i + len) in
    for j = !i to stop - 1 do
      scene.(j) <- level
    done;
    i := stop
  done;
  (* 3. Blend: convex combination in the rate domain, weighted by
     scene_weight, then match mean and cv by affine rescale. *)
  let raw =
    Array.init frames (fun j ->
        let s = scene.(j) and b = base.(j) in
        ((1.0 -. p.scene_weight) *. b) +. (p.scene_weight *. s *. b))
  in
  let m = Mbac_stats.Descriptive.mean raw in
  let sd =
    let acc = ref 0.0 in
    Array.iter (fun r -> acc := !acc +. ((r -. m) *. (r -. m))) raw;
    sqrt (!acc /. float_of_int frames)
  in
  let target_sd = p.cv *. p.mean_rate in
  let rates =
    if sd <= 0.0 then Array.map (fun _ -> p.mean_rate) raw
    else
      Array.map
        (fun r -> Float.max 0.0 (p.mean_rate +. ((r -. m) *. target_sd /. sd)))
        raw
  in
  Trace.create ~dt:p.frame_dt rates
