type params = { generator : float array array; rates : float array }

let validate { generator; rates } =
  let k = Array.length generator in
  if k = 0 then invalid_arg "Markov_fluid: empty generator";
  if Array.length rates <> k then
    invalid_arg "Markov_fluid: rates/generator size mismatch";
  Array.iteri
    (fun i row ->
      if Array.length row <> k then
        invalid_arg "Markov_fluid: non-square generator";
      let sum = ref 0.0 in
      Array.iteri
        (fun j v ->
          if i <> j && v < 0.0 then
            invalid_arg "Markov_fluid: negative off-diagonal rate";
          sum := !sum +. v)
        row;
      if abs_float !sum > 1e-9 then
        invalid_arg "Markov_fluid: generator rows must sum to 0")
    generator

let stationary p =
  validate p;
  Mbac_numerics.Linalg.stationary_distribution p.generator

let mean p =
  let pi = stationary p in
  let acc = ref 0.0 in
  Array.iteri (fun i w -> acc := !acc +. (w *. p.rates.(i))) pi;
  !acc

let variance p =
  let pi = stationary p in
  let m = mean p in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w -> acc := !acc +. (w *. (p.rates.(i) -. m) *. (p.rates.(i) -. m)))
    pi;
  !acc

let create rng p ~start =
  validate p;
  let k = Array.length p.generator in
  let pi = stationary p in
  let hold_rate i = -.p.generator.(i).(i) in
  let schedule rng now i =
    let r = hold_rate i in
    if r <= 0.0 then now +. 1e30 (* absorbing state: effectively never *)
    else now +. Mbac_stats.Sample.exponential rng ~mean:(1.0 /. r)
  in
  let rec build rng state ~rate0 ~next_change0 =
    let jump_from i =
      (* choose the next state proportionally to the off-diagonal rates *)
      let weights =
        Array.init k (fun j -> if j = i then 0.0 else p.generator.(i).(j))
      in
      Mbac_stats.Sample.categorical rng ~weights
    in
    let step st ~now =
      state := jump_from !state;
      let next_change = schedule rng now !state in
      Source.State.set st ~rate:p.rates.(!state) ~next_change
    in
    Source.create ~mean:(mean p) ~variance:(variance p) ~rate0 ~next_change0
      ~step
      ~copy:(fun rng' -> build rng' (ref !state) ~rate0 ~next_change0)
      ()
  in
  let state = ref (Mbac_stats.Sample.categorical rng ~weights:pi) in
  let next_change0 = schedule rng start !state in
  build rng state ~rate0:p.rates.(!state) ~next_change0
