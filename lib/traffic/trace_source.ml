let make trace ~offset ~start =
  let n = Trace.length trace in
  let dt = trace.Trace.dt in
  (* Index of the sample playing at the source-local clock [offset]. *)
  let idx = ref (int_of_float (floor (offset /. dt)) mod n) in
  let rates = trace.Trace.rates in
  (* Run-length playback: schedule the next change at the next sample
     whose rate differs, so piecewise-CBR traces cost one event per
     renegotiation rather than one per sample.  [run_len] caps at [n] to
     terminate on constant traces. *)
  let run_length_from i =
    let r = rates.(i) in
    let k = ref 1 in
    while !k < n && rates.((i + !k) mod n) = r do
      incr k
    done;
    !k
  in
  (* First boundary: remainder of the current sample period plus the rest
     of the current run. *)
  let remaining = dt -. Float.rem offset dt in
  let remaining = if remaining <= 0.0 then dt else remaining in
  let first_boundary =
    remaining +. (float_of_int (run_length_from !idx - 1) *. dt)
  in
  (* The trace itself is immutable and shared between parent and copy;
     only the playback cursor is duplicated.  Playback draws no
     randomness, so the copy's RNG is unused. *)
  let rec build idx ~rate0 ~next_change0 =
    let step st ~now =
      idx := (!idx + run_length_from !idx) mod n;
      let run = run_length_from !idx in
      Source.State.set st ~rate:rates.(!idx)
        ~next_change:(now +. (float_of_int run *. dt))
    in
    Source.create ~mean:(Trace.mean trace) ~variance:(Trace.variance trace)
      ~rate0 ~next_change0 ~step
      ~copy:(fun _rng -> build (ref !idx) ~rate0 ~next_change0)
      ()
  in
  build idx ~rate0:rates.(!idx) ~next_change0:(start +. first_boundary)

let create rng trace ~start =
  let offset =
    Mbac_stats.Sample.uniform rng ~lo:0.0 ~hi:(Trace.duration trace)
  in
  make trace ~offset ~start

let create_at_offset trace ~offset ~start = make trace ~offset ~start
