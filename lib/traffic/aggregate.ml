let total_rate sources =
  List.fold_left (fun acc s -> acc +. Source.rate s) 0.0 sources

let mean sources = List.fold_left (fun acc s -> acc +. Source.mean s) 0.0 sources

let variance sources =
  List.fold_left (fun acc s -> acc +. Source.variance s) 0.0 sources

let sample_path rng make ~n_sources ~horizon ~dt =
  if n_sources <= 0 then invalid_arg "Aggregate.sample_path: n_sources <= 0";
  if dt <= 0.0 || horizon <= 0.0 then
    invalid_arg "Aggregate.sample_path: requires dt > 0 and horizon > 0";
  let sources =
    Array.init n_sources (fun _ -> make (Mbac_stats.Rng.split rng) ~start:0.0)
  in
  let n_samples = int_of_float (horizon /. dt) + 1 in
  let out = Array.make n_samples 0.0 in
  (* Advance all sources in lock-step over the sample grid; each source
     fires its own pending changes up to the sample time. *)
  for i = 0 to n_samples - 1 do
    let t = float_of_int i *. dt in
    Array.iter (fun s -> Source.fire_until s ~upto:t) sources;
    out.(i) <- Array.fold_left (fun acc s -> acc +. Source.rate s) 0.0 sources
  done;
  out
