type params = { mu : float; sigma : float; t_c : float; dt : float }

let default_params ~mu = { mu; sigma = 0.3 *. mu; t_c = 1.0; dt = 0.1 }

let create rng p ~start =
  if p.sigma < 0.0 then invalid_arg "Ou_source.create: requires sigma >= 0";
  if p.t_c <= 0.0 then invalid_arg "Ou_source.create: requires t_c > 0";
  if p.dt <= 0.0 then invalid_arg "Ou_source.create: requires dt > 0";
  (* Exact OU transition over one step: x' = mu + a (x - mu) + s Z with
     a = exp(-dt/t_c), s = sigma sqrt(1 - a^2). *)
  let a = exp (-.p.dt /. p.t_c) in
  let s = p.sigma *. sqrt (1.0 -. (a *. a)) in
  (* The OU state is kept un-clipped so the clipping does not distort the
     dynamics; only the emitted rate is clipped at 0. *)
  let rec build rng x ~rate0 ~next_change0 =
    let step st ~now =
      x :=
        p.mu +. (a *. (!x -. p.mu))
        +. Mbac_stats.Sample.gaussian rng ~mu:0.0 ~sigma:s;
      Source.State.set st ~rate:(Float.max 0.0 !x) ~next_change:(now +. p.dt)
    in
    Source.create ~mean:p.mu ~variance:(p.sigma *. p.sigma) ~rate0
      ~next_change0 ~step
      ~copy:(fun rng' -> build rng' (ref !x) ~rate0 ~next_change0)
      ()
  in
  let x = ref (Mbac_stats.Sample.gaussian rng ~mu:p.mu ~sigma:p.sigma) in
  build rng x ~rate0:(Float.max 0.0 !x) ~next_change0:(start +. p.dt)
