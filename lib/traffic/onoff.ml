type params = { peak : float; mean_on : float; mean_off : float }

let validate { peak; mean_on; mean_off } =
  if peak <= 0.0 || mean_on <= 0.0 || mean_off <= 0.0 then
    invalid_arg "Onoff: all parameters must be positive"

let p_on p = p.mean_on /. (p.mean_on +. p.mean_off)
let mean p = p.peak *. p_on p

let variance p =
  let q = p_on p in
  p.peak *. p.peak *. q *. (1.0 -. q)

let autocorrelation p t =
  exp (-.abs_float t *. ((1.0 /. p.mean_on) +. (1.0 /. p.mean_off)))

let create rng p ~start =
  validate p;
  let rec build rng on ~rate0 ~next_change0 =
    let sojourn () =
      Mbac_stats.Sample.exponential rng
        ~mean:(if !on then p.mean_on else p.mean_off)
    in
    (* Sojourn drawn before the rate is read, matching the right-to-left
       evaluation of the original tuple, so seeded streams replay
       identically. *)
    let step st ~now =
      on := not !on;
      let next_change = now +. sojourn () in
      let rate = if !on then p.peak else 0.0 in
      Source.State.set st ~rate ~next_change
    in
    Source.create ~mean:(mean p) ~variance:(variance p) ~rate0 ~next_change0
      ~step
      ~copy:(fun rng' -> build rng' (ref !on) ~rate0 ~next_change0)
      ()
  in
  let on = ref (Mbac_stats.Sample.bernoulli rng ~p:(p_on p)) in
  let sojourn0 =
    Mbac_stats.Sample.exponential rng
      ~mean:(if !on then p.mean_on else p.mean_off)
  in
  let next_change0 = start +. sojourn0 in
  let rate0 = if !on then p.peak else 0.0 in
  build rng on ~rate0 ~next_change0
