type params = {
  peak : float;
  mean_on : float;
  mean_off : float;
  shape : float;
}

let validate { peak; mean_on; mean_off; shape } =
  if peak <= 0.0 || mean_on <= 0.0 || mean_off <= 0.0 then
    invalid_arg "Pareto_onoff: durations and peak must be positive";
  if not (shape > 1.0 && shape <= 2.0) then
    invalid_arg "Pareto_onoff: requires 1 < shape <= 2"

let implied_hurst p = (3.0 -. p.shape) /. 2.0
let p_on p = p.mean_on /. (p.mean_on +. p.mean_off)
let mean p = p.peak *. p_on p

let variance p =
  let q = p_on p in
  p.peak *. p.peak *. q *. (1.0 -. q)

let create rng p ~start =
  validate p;
  (* Pareto with mean m and shape a has scale m (a-1)/a. *)
  let scale = p.mean_on *. (p.shape -. 1.0) /. p.shape in
  let rec build rng on ~rate0 ~next_change0 =
    let sojourn () =
      if !on then Mbac_stats.Sample.pareto rng ~shape:p.shape ~scale
      else Mbac_stats.Sample.exponential rng ~mean:p.mean_off
    in
    (* Sojourn drawn before the rate is read, matching the right-to-left
       evaluation of the original tuple, so seeded streams replay
       identically. *)
    let step st ~now =
      on := not !on;
      let next_change = now +. sojourn () in
      let rate = if !on then p.peak else 0.0 in
      Source.State.set st ~rate ~next_change
    in
    Source.create ~mean:(mean p) ~variance:(variance p) ~rate0 ~next_change0
      ~step
      ~copy:(fun rng' -> build rng' (ref !on) ~rate0 ~next_change0)
      ()
  in
  let on = ref (Mbac_stats.Sample.bernoulli rng ~p:(p_on p)) in
  let sojourn0 =
    if !on then Mbac_stats.Sample.pareto rng ~shape:p.shape ~scale
    else Mbac_stats.Sample.exponential rng ~mean:p.mean_off
  in
  let next_change0 = start +. sojourn0 in
  let rate0 = if !on then p.peak else 0.0 in
  build rng on ~rate0 ~next_change0
