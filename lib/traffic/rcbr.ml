type params = { mu : float; sigma : float; t_c : float }

let default_params ~mu = { mu; sigma = 0.3 *. mu; t_c = 1.0 }

let validate { mu; sigma; t_c } =
  if mu < 0.0 then invalid_arg "Rcbr.create: requires mu >= 0";
  if sigma < 0.0 then invalid_arg "Rcbr.create: requires sigma >= 0";
  if t_c <= 0.0 then invalid_arg "Rcbr.create: requires t_c > 0"

let create rng p ~start =
  validate p;
  (* Draw order below (interval, then rate) mirrors the right-to-left
     evaluation of the original [(draw_rate (), now +. draw_interval ())]
     tuple, so seeded streams replay identically.  The samplers are
     called directly (not through local closures) so they inline into
     [step] and the renegotiation path draws without boxing. *)
  let rec build rng ~rate0 ~next_change0 =
    let step st ~now =
      let next_change =
        now +. Mbac_stats.Sample.exponential rng ~mean:p.t_c
      in
      let rate =
        Mbac_stats.Sample.gaussian_truncated_nonneg rng ~mu:p.mu
          ~sigma:p.sigma
      in
      Source.State.set st ~rate ~next_change
    in
    Source.create ~mean:p.mu ~variance:(p.sigma *. p.sigma) ~rate0
      ~next_change0 ~step
      ~copy:(fun rng' -> build rng' ~rate0 ~next_change0)
      ()
  in
  let next_change0 = start +. Mbac_stats.Sample.exponential rng ~mean:p.t_c in
  let rate0 =
    Mbac_stats.Sample.gaussian_truncated_nonneg rng ~mu:p.mu ~sigma:p.sigma
  in
  build rng ~rate0 ~next_change0

let autocorrelation p t = exp (-.abs_float t /. p.t_c)
