type schedule = (float * float) array

let validate_schedule s =
  if Array.length s = 0 then invalid_arg "Modulated: empty schedule";
  Array.iteri
    (fun i (t, f) ->
      if f <= 0.0 then invalid_arg "Modulated: non-positive factor";
      if i > 0 && t <= fst s.(i - 1) then
        invalid_arg "Modulated: schedule times must be increasing")
    s

let factor_at s time =
  (* last entry with t_i <= time; before the first entry, use the first *)
  let n = Array.length s in
  if time < fst s.(0) then snd s.(0)
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 0 do
      let mid = (!lo + !hi + 1) / 2 in
      if fst s.(mid) <= time then lo := mid else hi := mid - 1
    done;
    snd s.(!lo)
  end

(* first switch time strictly after [time]; infinity when none (binary
   search: smallest index with t_i > time) *)
let next_switch_after s time =
  let n = Array.length s in
  if fst s.(n - 1) <= time then infinity
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 0 do
      let mid = (!lo + !hi) / 2 in
      if fst s.(mid) > time then hi := mid else lo := mid + 1
    done;
    fst s.(!lo)
  end

let create ~start schedule inner =
  validate_schedule schedule;
  let f0 = factor_at schedule start in
  (* The wrapper drives the inner source itself: on each change epoch it
     either fires the inner source or crosses a schedule switch time,
     whichever comes first. *)
  let rec build inner ~rate0 ~next_change0 =
    let step st ~now =
      let inner_next = Source.next_change inner in
      if inner_next <= now +. 1e-12 then Source.fire inner ~now;
      let factor = factor_at schedule now in
      let next =
        Float.min (Source.next_change inner) (next_switch_after schedule now)
      in
      Source.State.set st ~rate:(factor *. Source.rate inner)
        ~next_change:next
    in
    Source.create
      ~mean:(f0 *. Source.mean inner)
      ~variance:(f0 *. f0 *. Source.variance inner)
      ~rate0 ~next_change0 ~step
      ~copy:(fun rng -> build (Source.copy inner rng) ~rate0 ~next_change0)
      ()
  in
  let first_next =
    Float.min (Source.next_change inner) (next_switch_after schedule start)
  in
  build inner ~rate0:(f0 *. Source.rate inner) ~next_change0:first_next
