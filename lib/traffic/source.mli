(** Fluid traffic sources with piecewise-constant rates.

    All traffic in this reproduction is fluid: a source holds a constant
    bandwidth until its next {e rate-change epoch} (a renegotiation, a
    Markov-chain transition, a new trace segment, ...).  The simulator
    only needs three things from a source: its current rate, the absolute
    time of its next change, and a way to fire that change.  Concrete
    models ({!Rcbr}, {!Markov_fluid}, {!Onoff}, {!Ou_source},
    {!Trace_source}) build values of this one type. *)

type t

(** The mutable part of a source, updated in place on each change epoch.
    All-float so stores stay unboxed on the simulator's hot path. *)
module State : sig
  type t

  val set : t -> rate:float -> next_change:float -> unit
  (** Record the outcome of a change epoch: the new rate and the
      {e absolute} time of the following change. *)
end

val create :
  ?copy:(Mbac_stats.Rng.t -> t) ->
  mean:float ->
  variance:float ->
  rate0:float ->
  next_change0:float ->
  step:(State.t -> now:float -> unit) ->
  unit ->
  t
(** [create ~mean ~variance ~rate0 ~next_change0 ~step ()] builds a
    source whose nominal stationary statistics are [mean]/[variance],
    with initial rate [rate0] holding until [next_change0].
    [step st ~now] is called each time the change epoch is reached and
    must call {!State.set} with the new rate and the absolute time of
    the following change (which must exceed [now]).

    [copy rng] must rebuild the source around a deep copy of the model's
    hidden sampler state, drawing all future randomness from [rng]; the
    returned source's visible rate/next-change/peak-hint are overwritten
    by {!copy} afterwards, so the values passed to [create] inside the
    copy are dummies.  It must not draw from any RNG during
    construction.  Omitting it makes {!copy} raise. *)

val copy : t -> Mbac_stats.Rng.t -> t
(** Deep copy of the source's full state (visible rate/next-change and
    the model's hidden sampler state); the copy draws all future
    randomness from the given RNG, so parent and clone diverge on
    genealogy-tagged streams.  Used by the simulator's
    snapshot/restore (rare-event splitting).
    @raise Invalid_argument for a source built without [~copy]. *)

val rate : t -> float
(** Current bandwidth demand. *)

val next_change : t -> float
(** Absolute time of the next rate change. *)

val fire : t -> now:float -> unit
(** Execute the pending rate change.  [now] must be the source's
    [next_change] time (asserted). *)

val fire_until : t -> upto:float -> unit
(** Fire every change epoch at or before [upto], each at its own epoch
    time, in one pass.  Draw-for-draw identical to looping
    [fire t ~now:(next_change t)], so replacing such a loop never
    perturbs a seeded run; it only hoists the per-fire dispatch out of
    the loop. *)

val mean : t -> float
(** Nominal stationary mean rate of the model that built this source. *)

val variance : t -> float
(** Nominal stationary rate variance. *)

val peak_hint : t -> float
(** A declared "peak rate" for baseline schemes that need one
    (mean + 3 std by default; models may override via {!set_peak_hint}). *)

val set_peak_hint : t -> float -> unit
