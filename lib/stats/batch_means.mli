(** Batch-means confidence intervals for steady-state simulation output.

    The simulator produces correlated observations (the overflow indicator
    of successive intervals).  Grouping them into long batches makes the
    batch means approximately i.i.d.; a Student-t interval on the batch
    means is the paper's §5.2 stopping-rule machinery. *)

type t

val create : batch_length:float -> t
(** [batch_length] is the amount of weight (e.g. simulated time) per batch. *)

val add : t -> weight:float -> float -> unit
(** Add an observation with the given weight (time span).  Observations are
    folded into the current batch; full batches are closed automatically.
    A single observation heavier than the remaining batch capacity is split
    across consecutive batches. *)

val copy : t -> t
(** Independent deep copy (for simulator snapshot/restore). *)

val completed_batches : t -> int

val mean : t -> float
(** Weighted mean over all completed batches; [nan] if none. *)

val half_width : t -> confidence:float -> float
(** Student-t half-width of the confidence interval over completed batch
    means; [infinity] with fewer than 2 batches. *)

val relative_half_width : t -> confidence:float -> float
(** [half_width / |mean|]; [infinity] when the mean is 0 or batches < 2. *)

val batch_means : t -> float array
(** The completed batch means, oldest first. *)
