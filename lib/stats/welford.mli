(** Numerically stable online first/second-moment accumulators.

    [t] is the classical Welford accumulator; [Weighted] supports
    non-uniform (e.g. time-) weights, which is how the simulator computes
    time-weighted aggregate-bandwidth statistics. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** Mean of the observations so far; [0.] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than 2 observations. *)

val variance_population : t -> float
(** Population (biased, 1/n) variance; [0.] when empty. *)

val std : t -> float
val merge : t -> t -> t
(** [merge a b] is the accumulator of the union of both observation sets. *)

module Weighted : sig
  type t

  val create : unit -> t
  val add : t -> weight:float -> float -> unit
  (** @raise Invalid_argument on negative weight. *)

  val total_weight : t -> float
  val mean : t -> float
  val variance : t -> float
  (** Weighted population variance (weights treated as frequencies/time). *)

  val std : t -> float

  val copy : t -> t
  (** Independent deep copy (for simulator snapshot/restore). *)
end
