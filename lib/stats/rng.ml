type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* SplitMix64: used only to diffuse seeds into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let of_state64 init =
  let state = ref init in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let create ~seed = of_state64 (Int64.of_int seed)

(* FNV-1a over every byte of the string: unlike [Hashtbl.hash], which
   both folds to 30 bits and bounds the portion of the input it reads,
   this keeps the full 64-bit state and never truncates, so distinct
   tags give distinct stream seeds (up to 64-bit birthday collisions). *)
let fnv1a64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let derive ~seed ~tag =
  (* Mix the tag hash with the seed through one SplitMix64 round so that
     (seed, tag) pairs map to well-separated 64-bit init states. *)
  let state = ref (Int64.of_int seed) in
  let seed_mixed = splitmix64 state in
  of_state64 (Int64.logxor (fnv1a64 tag) seed_mixed)

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

(* xoshiro256++ step. *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

(* Top 53 bits -> uniform double in [0,1). *)
let float t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let rec float_pos t =
  let u = float t in
  if u > 0.0 then u else float_pos t

let int t n =
  if n <= 0 then invalid_arg "Rng.int: requires n > 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let limit = Int64.sub (Int64.div Int64.max_int n64) 1L in
  let bound = Int64.mul limit n64 in
  let rec draw () =
    let x = Int64.shift_right_logical (bits64 t) 1 in
    if x < bound || bound <= 0L then Int64.to_int (Int64.rem x n64) else draw ()
  in
  draw ()
