(* xoshiro256++, stored as 32-bit hi/lo halves in native ints.

   The obvious representation — four mutable [int64] fields — boxes on
   every store and on every [bits64] result (~15 minor words per draw
   without flambda), and the generator sits on the simulation's
   innermost loop.  Splitting each 64-bit word into two 32-bit halves
   kept in immediate [int]s makes the whole step allocation-free; the
   hot consumer [float] needs only the top 53 bits, which fit a native
   int exactly, so no [Int64] value is ever materialized on that path.
   [Int64] survives only in seeding and in the cold accessors
   ([bits64], [int], [split]), which reconstruct it on demand.  The
   output stream is bit-identical to the int64 formulation. *)

type t = {
  mutable s0h : int; mutable s0l : int;
  mutable s1h : int; mutable s1l : int;
  mutable s2h : int; mutable s2l : int;
  mutable s3h : int; mutable s3l : int;
  (* result halves of the latest step, written by [step] *)
  mutable rh : int; mutable rl : int;
}

let mask32 = 0xFFFFFFFF

(* SplitMix64: used only to diffuse seeds into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hi64 x = Int64.to_int (Int64.shift_right_logical x 32)
let lo64 x = Int64.to_int (Int64.logand x 0xFFFFFFFFL)

let of_state64 init =
  let state = ref init in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0h = hi64 s0; s0l = lo64 s0;
    s1h = hi64 s1; s1l = lo64 s1;
    s2h = hi64 s2; s2l = lo64 s2;
    s3h = hi64 s3; s3l = lo64 s3;
    rh = 0; rl = 0 }

let create ~seed = of_state64 (Int64.of_int seed)

(* FNV-1a over every byte of the string: unlike [Hashtbl.hash], which
   both folds to 30 bits and bounds the portion of the input it reads,
   this keeps the full 64-bit state and never truncates, so distinct
   tags give distinct stream seeds (up to 64-bit birthday collisions). *)
let fnv1a64 s =
  let open Int64 in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001B3L)
    s;
  !h

let derive ~seed ~tag =
  (* Mix the tag hash with the seed through one SplitMix64 round so that
     (seed, tag) pairs map to well-separated 64-bit init states. *)
  let state = ref (Int64.of_int seed) in
  let seed_mixed = splitmix64 state in
  of_state64 (Int64.logxor (fnv1a64 tag) seed_mixed)

let copy t =
  { s0h = t.s0h; s0l = t.s0l;
    s1h = t.s1h; s1l = t.s1l;
    s2h = t.s2h; s2l = t.s2l;
    s3h = t.s3h; s3l = t.s3l;
    rh = t.rh; rl = t.rl }

(* One xoshiro256++ step on the halves.  64-bit addition carries the low
   half's bit 32 into the high half; rotl k splits across the halves
   (k < 32 shifts within, k > 32 swaps and shifts by k - 32).  Every
   intermediate is re-masked to 32 bits so [lsl] never walks into the
   native int's sign bit. *)
let[@inline] step t =
  (* result = rotl(s0 + s3, 23) + s0 *)
  let sum_l = t.s0l + t.s3l in
  let sum_h = (t.s0h + t.s3h + (sum_l lsr 32)) land mask32 in
  let sum_l = sum_l land mask32 in
  let rot_h = ((sum_h lsl 23) lor (sum_l lsr 9)) land mask32 in
  let rot_l = ((sum_l lsl 23) lor (sum_h lsr 9)) land mask32 in
  let res_l = rot_l + t.s0l in
  let res_h = (rot_h + t.s0h + (res_l lsr 32)) land mask32 in
  let res_l = res_l land mask32 in
  (* state update: tmp = s1 << 17; xor chain; s3 = rotl(s3, 45) *)
  let tmp_h = ((t.s1h lsl 17) lor (t.s1l lsr 15)) land mask32 in
  let tmp_l = (t.s1l lsl 17) land mask32 in
  let s2h = t.s2h lxor t.s0h and s2l = t.s2l lxor t.s0l in
  let s3h = t.s3h lxor t.s1h and s3l = t.s3l lxor t.s1l in
  let s1h = t.s1h lxor s2h and s1l = t.s1l lxor s2l in
  let s0h = t.s0h lxor s3h and s0l = t.s0l lxor s3l in
  let s2h = s2h lxor tmp_h and s2l = s2l lxor tmp_l in
  let s3h' = ((s3l lsl 13) lor (s3h lsr 19)) land mask32 in
  let s3l' = ((s3h lsl 13) lor (s3l lsr 19)) land mask32 in
  t.s0h <- s0h; t.s0l <- s0l;
  t.s1h <- s1h; t.s1l <- s1l;
  t.s2h <- s2h; t.s2l <- s2l;
  t.s3h <- s3h'; t.s3l <- s3l';
  t.rh <- res_h;
  t.rl <- res_l

let bits64 t =
  step t;
  Int64.logor (Int64.shift_left (Int64.of_int t.rh) 32) (Int64.of_int t.rl)

let split t =
  let seed = Int64.to_int (bits64 t) in
  create ~seed

(* Top 53 bits -> uniform double in [0,1).  The 53-bit quantity fits a
   native int, so this is a plain [float_of_int] — same value the int64
   formulation's [Int64.to_float (x >> 11)] produced. *)
let[@inline] float t =
  step t;
  float_of_int ((t.rh lsl 21) lor (t.rl lsr 11)) *. 0x1.0p-53

(* Cold continuation so the common case of [float_pos] stays a
   non-recursive, inlinable straight line. *)
let rec float_pos_retry t =
  let u = float t in
  if u > 0.0 then u else float_pos_retry t

let[@inline] float_pos t =
  let u = float t in
  if u > 0.0 then u else float_pos_retry t

let int t n =
  if n <= 0 then invalid_arg "Rng.int: requires n > 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let limit = Int64.sub (Int64.div Int64.max_int n64) 1L in
  let bound = Int64.mul limit n64 in
  let rec draw () =
    let x = Int64.shift_right_logical (bits64 t) 1 in
    if x < bound || bound <= 0L then Int64.to_int (Int64.rem x n64) else draw ()
  in
  draw ()
