type t = { mutable n : int; mutable mean : float; mutable m2 : float }

let create () = { n = 0; mean = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean))

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let variance_population t = if t.n = 0 then 0.0 else t.m2 /. float_of_int t.n
let std t = sqrt (variance t)

let merge a b =
  if a.n = 0 then { n = b.n; mean = b.mean; m2 = b.m2 }
  else if b.n = 0 then { n = a.n; mean = a.mean; m2 = a.m2 }
  else
    let n = a.n + b.n in
    let na = float_of_int a.n and nb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. nb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. float_of_int n) in
    { n; mean; m2 }

module Weighted = struct
  type t = { mutable w : float; mutable mean : float; mutable s : float }

  let create () = { w = 0.0; mean = 0.0; s = 0.0 }

  (* Inlined into per-event callers so the float arguments stay unboxed
     (the record itself is all-float, hence flat). *)
  let[@inline] add t ~weight x =
    if weight < 0.0 then invalid_arg "Welford.Weighted.add: negative weight";
    if weight > 0.0 then begin
      let w' = t.w +. weight in
      let delta = x -. t.mean in
      let r = delta *. weight /. w' in
      t.mean <- t.mean +. r;
      t.s <- t.s +. (t.w *. delta *. r);
      t.w <- w'
    end

  let total_weight t = t.w
  let mean t = t.mean
  let variance t = if t.w <= 0.0 then 0.0 else t.s /. t.w
  let std t = sqrt (variance t)
  let copy t = { w = t.w; mean = t.mean; s = t.s }
end
