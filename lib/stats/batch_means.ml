(* The open batch's accumulator lives in its own all-float record so the
   per-event stores stay unboxed (mutable float fields of the mixed [t]
   record would box on every store). *)
type acc = { mutable weight : float; mutable sum : float }

type t = {
  batch_length : float;
  acc : acc; (* weighted sum within the open batch *)
  mutable batches : float list; (* completed batch means, newest first *)
  mutable n_batches : int;
}

let create ~batch_length =
  if batch_length <= 0.0 then
    invalid_arg "Batch_means.create: requires batch_length > 0";
  { batch_length; acc = { weight = 0.0; sum = 0.0 }; batches = [];
    n_batches = 0 }

let close_batch t =
  t.batches <- (t.acc.sum /. t.acc.weight) :: t.batches;
  t.n_batches <- t.n_batches + 1;
  t.acc.weight <- 0.0;
  t.acc.sum <- 0.0

(* Batch-boundary path, at most once per [batch_length] of weight: fill
   the batch exactly, close it, and spill the rest over (possibly across
   several batches). *)
let rec spill t ~weight x =
  let room = t.batch_length -. t.acc.weight in
  if weight < room then begin
    t.acc.weight <- t.acc.weight +. weight;
    t.acc.sum <- t.acc.sum +. (weight *. x)
  end
  else begin
    t.acc.weight <- t.batch_length;
    t.acc.sum <- t.acc.sum +. (room *. x);
    close_batch t;
    let rest = weight -. room in
    if rest > 0.0 then spill t ~weight:rest x
  end

(* Common case — the weight fits in the open batch — inlines into the
   caller so the float arguments stay unboxed. *)
let[@inline] add t ~weight x =
  if weight < 0.0 then invalid_arg "Batch_means.add: negative weight";
  if weight > 0.0 then begin
    if weight < t.batch_length -. t.acc.weight then begin
      t.acc.weight <- t.acc.weight +. weight;
      t.acc.sum <- t.acc.sum +. (weight *. x)
    end
    else spill t ~weight x
  end

(* [batches] is an immutable list, so sharing the spine is safe; only the
   open-batch accumulator needs duplicating. *)
let copy t =
  { batch_length = t.batch_length;
    acc = { weight = t.acc.weight; sum = t.acc.sum };
    batches = t.batches; n_batches = t.n_batches }

let completed_batches t = t.n_batches

let batch_means t = Array.of_list (List.rev t.batches)

let mean t =
  if t.n_batches = 0 then nan
  else List.fold_left ( +. ) 0.0 t.batches /. float_of_int t.n_batches

let half_width t ~confidence =
  if t.n_batches < 2 then infinity
  else begin
    let means = batch_means t in
    let s = Descriptive.std means in
    let df = float_of_int (t.n_batches - 1) in
    let tc =
      Distributions.Student_t.quantile ~df (1.0 -. ((1.0 -. confidence) /. 2.0))
    in
    tc *. s /. sqrt (float_of_int t.n_batches)
  end

let relative_half_width t ~confidence =
  let m = mean t in
  if Float.is_nan m || m = 0.0 then infinity
  else
    let hw = half_width t ~confidence in
    hw /. abs_float m
