let[@inline] uniform rng ~lo ~hi =
  if hi < lo then invalid_arg "Sample.uniform: requires lo <= hi";
  lo +. ((hi -. lo) *. Rng.float rng)

let bernoulli rng ~p = Rng.float rng < p

(* Inlined: drawn once or twice per simulation event, and a non-inlined
   call would box both the [mean] argument and the result. *)
let[@inline] exponential rng ~mean =
  if mean <= 0.0 then invalid_arg "Sample.exponential: requires mean > 0";
  -.mean *. log (Rng.float_pos rng)

(* Marsaglia polar method; generates pairs but we keep it stateless by
   discarding the second variate (cheap relative to the simulation cost,
   and avoids hidden state in the sampler).  The first attempt accepts
   with probability pi/4, so it is unrolled into an [@inline] wrapper:
   the common case then compiles to straight-line float code in the
   caller, and only a rejection pays the boxed return of the recursive
   retry path.  Both paths consume the RNG identically, so unrolling
   does not move any stream. *)
let rec standard_gaussian_retry rng =
  let u = (2.0 *. Rng.float rng) -. 1.0 in
  let v = (2.0 *. Rng.float rng) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then standard_gaussian_retry rng
  else u *. sqrt (-2.0 *. log s /. s)

let[@inline] standard_gaussian rng =
  let u = (2.0 *. Rng.float rng) -. 1.0 in
  let v = (2.0 *. Rng.float rng) -. 1.0 in
  let s = (u *. u) +. (v *. v) in
  if s >= 1.0 || s = 0.0 then standard_gaussian_retry rng
  else u *. sqrt (-2.0 *. log s /. s)

let[@inline] gaussian rng ~mu ~sigma =
  if sigma < 0.0 then invalid_arg "Sample.gaussian: requires sigma >= 0";
  mu +. (sigma *. standard_gaussian rng)

(* Cold continuation: re-draws after a negative first sample, keeping
   the common all-positive case of [gaussian_truncated_nonneg] a
   non-recursive, inlinable straight line. *)
let rec truncated_retry rng ~mu ~sigma n =
  if n > 10_000 then mu (* pathological sigma/mu; fall back to the mean *)
  else
    let x = gaussian rng ~mu ~sigma in
    if x >= 0.0 then x else truncated_retry rng ~mu ~sigma (n + 1)

let[@inline] gaussian_truncated_nonneg rng ~mu ~sigma =
  if mu < 0.0 then
    invalid_arg "Sample.gaussian_truncated_nonneg: requires mu >= 0";
  let x = gaussian rng ~mu ~sigma in
  if x >= 0.0 then x else truncated_retry rng ~mu ~sigma 1

let lognormal rng ~mu_log ~sigma_log = exp (gaussian rng ~mu:mu_log ~sigma:sigma_log)

let lognormal_of_moments rng ~mean ~std =
  if mean <= 0.0 then invalid_arg "Sample.lognormal_of_moments: mean <= 0";
  let cv2 = (std /. mean) ** 2.0 in
  let sigma_log = sqrt (log (1.0 +. cv2)) in
  let mu_log = log mean -. (0.5 *. sigma_log *. sigma_log) in
  lognormal rng ~mu_log ~sigma_log

let pareto rng ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Sample.pareto: requires shape > 0 and scale > 0";
  scale /. (Rng.float_pos rng ** (1.0 /. shape))

let categorical rng ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Sample.categorical: empty weights";
  let total = Array.fold_left (fun acc w ->
      if w < 0.0 then invalid_arg "Sample.categorical: negative weight"
      else acc +. w) 0.0 weights
  in
  if total <= 0.0 then invalid_arg "Sample.categorical: all-zero weights";
  let u = Rng.float rng *. total in
  let rec find i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else find (i + 1) acc
  in
  find 0 0.0
