(** Deterministic, splittable pseudo-random number generator.

    The generator is xoshiro256++ seeded through SplitMix64, giving
    high-quality 64-bit streams with a tiny state.  Every simulation in
    this repository threads an explicit [t] so that runs are exactly
    reproducible from a seed, and independent replications use [split]. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator deterministically from [seed]
    (any int, including 0, is fine: the seed is diffused by SplitMix64). *)

val derive : seed:int -> tag:string -> t
(** [derive ~seed ~tag] builds a generator from the root [seed] and a
    textual stream [tag] (experiment cell, replication index, …).  The
    tag is hashed with 64-bit FNV-1a over {e all} of its bytes and mixed
    with the seed through SplitMix64, so distinct tags — however long,
    and regardless of shared prefixes — yield distinct, statistically
    independent streams.  The derivation depends only on [(seed, tag)],
    never on call order, which is what makes parallel replication
    schedules deterministic (see {!Mbac_sim.Parallel}). *)

val copy : t -> t
(** [copy t] is an independent generator with identical current state. *)

val split : t -> t
(** [split t] draws from [t] to seed a fresh, statistically independent
    generator.  Advances [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [0, 1) with 53-bit resolution. *)

val float_pos : t -> float
(** [float_pos t] is uniform on (0, 1): never returns 0.0 (safe for [log]). *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1] (rejection sampling; unbiased).
    @raise Invalid_argument if [n <= 0]. *)
