open Cmdliner

type t = {
  metrics_out : string option;
  trace_out : string option;
  trace_sample : int;
  series_out : string option;
  series_interval : float;
  profile : bool;
  profile_out : string option;
  log_level : Logs.level option;
}

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the final metric snapshot to $(docv) (JSON) and \
                 $(docv).prom (Prometheus text).  Aggregation is \
                 deterministic: the snapshot is byte-identical for every \
                 --jobs value.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Enable event tracing and write the JSON-Lines trace \
                 (admission decisions, overflow episodes, estimator \
                 snapshots) to $(docv), keyed to simulation virtual time.  \
                 Byte-identical for every --jobs value.")

let trace_sample_arg =
  Arg.(value & opt int 1
       & info [ "trace-sample" ] ~docv:"K"
           ~doc:"Keep every $(docv)-th event of high-volume trace kinds \
                 (per-decision and per-burst events); episode and run \
                 boundary events are always kept.")

let series_out_arg =
  Arg.(value & opt (some string) None
       & info [ "series-out" ] ~docv:"FILE"
           ~doc:"Enable the windowed metric time series and write it as \
                 JSON Lines to $(docv): one window per --series-interval \
                 of virtual time with counter/sum/histogram deltas and \
                 current gauges.  Byte-identical for every --jobs value.")

let series_interval_arg =
  Arg.(value & opt float 100.0
       & info [ "series-interval" ] ~docv:"T"
           ~doc:"Time-series window length in virtual-time units \
                 (simulated time for the continuous-load simulator, \
                 bursts for the impulsive driver).")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Measure wall-clock profiling spans (pool task latency, \
                 experiment phases, hot numeric paths) and print the \
                 report to stderr on exit.  Never perturbs stdout, \
                 metrics, or trace output.")

let profile_out_arg =
  Arg.(value & opt (some string) None
       & info [ "profile-out" ] ~docv:"FILE"
           ~doc:"Measure wall-clock profiling spans and write the span \
                 table as JSON to $(docv) on exit (implies span \
                 recording; combine with --profile for the stderr \
                 table).")

let make metrics_out trace_out trace_sample series_out series_interval profile
    profile_out log_level =
  { metrics_out; trace_out; trace_sample; series_out; series_interval;
    profile; profile_out; log_level }

let term =
  Term.(
    const make $ metrics_out_arg $ trace_out_arg $ trace_sample_arg
    $ series_out_arg $ series_interval_arg $ profile_arg $ profile_out_arg
    $ Logs_cli.level ())

let install t =
  Mbac_telemetry.Logging.setup t.log_level;
  Mbac_telemetry.Trace.set_enabled (t.trace_out <> None);
  Mbac_telemetry.Trace.set_sample_every t.trace_sample;
  Mbac_telemetry.Timeseries.set_enabled (t.series_out <> None);
  if t.series_out <> None then
    Mbac_telemetry.Timeseries.set_interval t.series_interval;
  Mbac_telemetry.Profile.set_enabled (t.profile || t.profile_out <> None)

let write_with path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let finish t =
  (match t.metrics_out with
  | Some path ->
      Mbac_telemetry.Snapshot.write_files (Mbac_telemetry.Snapshot.current ())
        ~path
  | None -> ());
  (match t.trace_out with
  | Some path -> write_with path Mbac_telemetry.Trace.dump
  | None -> ());
  (match t.series_out with
  | Some path -> write_with path Mbac_telemetry.Timeseries.dump
  | None -> ());
  (match t.profile_out with
  | Some path ->
      write_with path (fun oc ->
          output_string oc (Mbac_telemetry.Profile.to_json ()))
  | None -> ());
  if t.profile then Mbac_telemetry.Profile.report Format.err_formatter
