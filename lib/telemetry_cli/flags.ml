open Cmdliner

type t = {
  metrics_out : string option;
  trace_out : string option;
  trace_sample : int;
  profile : bool;
  log_level : Logs.level option;
}

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write the final metric snapshot to $(docv) (JSON) and \
                 $(docv).prom (Prometheus text).  Aggregation is \
                 deterministic: the snapshot is byte-identical for every \
                 --jobs value.")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Enable event tracing and write the JSON-Lines trace \
                 (admission decisions, overflow episodes, estimator \
                 snapshots) to $(docv), keyed to simulation virtual time.  \
                 Byte-identical for every --jobs value.")

let trace_sample_arg =
  Arg.(value & opt int 1
       & info [ "trace-sample" ] ~docv:"K"
           ~doc:"Keep every $(docv)-th event of high-volume trace kinds \
                 (per-decision and per-burst events); episode and run \
                 boundary events are always kept.")

let profile_arg =
  Arg.(value & flag
       & info [ "profile" ]
           ~doc:"Measure wall-clock profiling spans (pool task latency, \
                 experiment phases, hot numeric paths) and print the \
                 report to stderr on exit.  Never perturbs stdout, \
                 metrics, or trace output.")

let make metrics_out trace_out trace_sample profile log_level =
  { metrics_out; trace_out; trace_sample; profile; log_level }

let term =
  Term.(
    const make $ metrics_out_arg $ trace_out_arg $ trace_sample_arg
    $ profile_arg $ Logs_cli.level ())

let install t =
  Mbac_telemetry.Logging.setup t.log_level;
  Mbac_telemetry.Trace.set_enabled (t.trace_out <> None);
  Mbac_telemetry.Trace.set_sample_every t.trace_sample;
  Mbac_telemetry.Profile.set_enabled t.profile

let finish t =
  (match t.metrics_out with
  | Some path ->
      Mbac_telemetry.Snapshot.write_files (Mbac_telemetry.Snapshot.current ())
        ~path
  | None -> ());
  (match t.trace_out with
  | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> Mbac_telemetry.Trace.dump oc)
  | None -> ());
  if t.profile then Mbac_telemetry.Profile.report Format.err_formatter
