(** Shared cmdliner flags for the telemetry subsystem.

    Every binary exposes the same surface:

    - [--metrics-out FILE]: write the final metric snapshot as JSON to
      [FILE] and as Prometheus text to [FILE.prom];
    - [--trace-out FILE]: enable event tracing and write the JSONL trace
      to [FILE];
    - [--trace-sample K]: keep every K-th event of high-volume sampled
      kinds (decisions, bursts);
    - [--profile]: record wall-clock spans and print the report to
      stderr on exit;
    - [-v]/[-q]/[--verbosity LEVEL] (from [Logs_cli]): progress/log
      verbosity, rendered by the shared timestamped stderr reporter.

    Usage: include {!term} in the binary's cmdliner term, call
    {!install} first thing in the main function, and {!finish} after the
    work is done. *)

type t = {
  metrics_out : string option;
  trace_out : string option;
  trace_sample : int;
  profile : bool;
  log_level : Logs.level option;
}

val term : t Cmdliner.Term.t

val install : t -> unit
(** Apply the flags: set up the [Logs] reporter/level, enable tracing
    and its sampling rate, enable profiling. *)

val finish : t -> unit
(** Write [--metrics-out] / [--trace-out] files from the calling
    domain's shard and print the [--profile] report to stderr. *)
