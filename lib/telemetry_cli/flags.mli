(** Shared cmdliner flags for the telemetry subsystem.

    Every binary exposes the same surface:

    - [--metrics-out FILE]: write the final metric snapshot as JSON to
      [FILE] and as Prometheus text to [FILE.prom];
    - [--trace-out FILE]: enable event tracing and write the JSONL trace
      to [FILE];
    - [--trace-sample K]: keep every K-th event of high-volume sampled
      kinds (decisions, bursts);
    - [--series-out FILE]: enable the windowed metric time series
      ({!Mbac_telemetry.Timeseries}) and write it as JSONL to [FILE];
    - [--series-interval T]: time-series window length in virtual-time
      units (default 100);
    - [--profile]: record wall-clock spans and print the report to
      stderr on exit;
    - [--profile-out FILE]: record wall-clock spans and write the span
      table as JSON to [FILE] on exit;
    - [-v]/[-q]/[--verbosity LEVEL] (from [Logs_cli]): progress/log
      verbosity, rendered by the shared timestamped stderr reporter.

    Usage: include {!term} in the binary's cmdliner term, call
    {!install} first thing in the main function, and {!finish} after the
    work is done.  Binaries should reject [trace_sample < 1] and
    [series_interval <= 0] before calling {!install}. *)

type t = {
  metrics_out : string option;
  trace_out : string option;
  trace_sample : int;
  series_out : string option;
  series_interval : float;
  profile : bool;
  profile_out : string option;
  log_level : Logs.level option;
}

val term : t Cmdliner.Term.t

val install : t -> unit
(** Apply the flags: set up the [Logs] reporter/level, enable tracing
    and its sampling rate, enable the time series and set its window
    length, enable profiling (when either [--profile] or
    [--profile-out] asks). *)

val finish : t -> unit
(** Write [--metrics-out] / [--trace-out] / [--series-out] /
    [--profile-out] files from the calling domain's shard and print the
    [--profile] report to stderr. *)
