(* The event-queue seam: one signature both priority-queue
   implementations satisfy, so tests and benchmarks can run the same
   suite (and the same differential workload) against each.

   [Continuous_load] deliberately does NOT go through this seam: on a
   non-flambda compiler a functor parameter is an opaque call boundary,
   which would box the [time] float on every push and re-box the
   minimum on every read — the very allocations the hot path was
   rebuilt to avoid.  The simulator names [Calendar_queue] directly;
   this module exists for differential testing, benchmarking both
   sides, and any cold-path caller that wants to stay
   implementation-agnostic. *)

module type S = sig
  type t

  val create : unit -> t
  val size : t -> int
  val is_empty : t -> bool

  val copy : t -> t
  (** Independent deep copy, including the tie-breaking sequence
      counter. *)

  val push : t -> time:float -> int -> unit
  (** @raise Invalid_argument on NaN time. *)

  val min_time : t -> float
  (** @raise Invalid_argument when empty. *)

  val min_payload : t -> int
  (** @raise Invalid_argument when empty. *)

  val drop_min : t -> unit
  (** @raise Invalid_argument when empty. *)

  val peek_time : t -> float option
  val pop : t -> (float * int) option

  val drain_min : t -> f:(int -> unit) -> unit
  (** Pop every event sharing the current minimum timestamp in FIFO
      order. *)

  val clear : t -> unit
end

module Heap : S = Event_heap
module Calendar : S = Calendar_queue
