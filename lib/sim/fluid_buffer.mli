(** Fluid buffer fed by a piecewise-constant aggregate: drains at the
    link rate, fills when the load exceeds it, loses fluid when full.

    Used to quantify the §2 claim that the bufferless overflow
    probability upper-bounds the loss of a buffered link. *)

type t

val create : capacity:float -> size:float -> t
(** [capacity] is the drain (link) rate; [size] the buffer size (fluid
    units).  @raise Invalid_argument on non-positive values. *)

val level : t -> float

val copy : t -> t
(** Independent deep copy (for simulator snapshot/restore). *)

val feed : t -> duration:float -> load:float -> unit
(** Advance time by [duration] with a constant input rate [load].
    Handles the fill-to-full and drain-to-empty transitions within the
    segment exactly. *)

val reset_statistics : t -> unit
(** Zero the time/loss/volume counters while keeping the current buffer
    level — used to discard the warm-up transient. *)

val total_time : t -> float
val loss_time : t -> float
(** Time spent losing fluid (buffer full while load > capacity). *)

val loss_episodes : t -> int
(** Number of distinct loss episodes (maximal runs of consecutive
    lossy segments).  Each episode start also counts into the
    [buffer_loss_episodes_total] telemetry counter. *)

val loss_time_fraction : t -> float
val lost_volume : t -> float
(** Total fluid lost. *)

val offered_volume : t -> float
val loss_ratio : t -> float
(** lost volume / offered volume; 0 when nothing was offered. *)
