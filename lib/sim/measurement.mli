(** Overflow measurement with the paper's §5.2 methodology.

    The aggregate load is piecewise constant, so the overflow probability
    is measured {e exactly} as the time-weighted fraction of (post-warmup)
    time during which the load exceeds capacity.  Confidence intervals
    come from batch means; the two stopping rules are the paper's:

    - {b Converged}: the 95% CI is within ±20% of the estimated mean;
    - {b Below-target}: the estimate plus its CI is at least two orders
      of magnitude below the target, in which case a Gaussian fit
      Q((c - mu_S)/sigma_S) of the measured aggregate is reported
      instead (direct counting would need astronomical run lengths). *)

type t

val create :
  ?sample_spacing:float ->
  capacity:float -> warmup:float -> batch_length:float -> unit -> t
(** [sample_spacing], if given, additionally runs the paper's
    point-sampling estimator: the overflow indicator is sampled on a
    fixed grid of that spacing (§5.2 samples every
    2 max(T~_h, T_m, T_c)); {!point_fraction} reports it.  The
    time-weighted estimator is always on.
    @raise Invalid_argument on non-positive capacity/batch_length/
    sample_spacing or negative warmup. *)

val copy : t -> t
(** Independent deep copy (for simulator snapshot/restore). *)

val record : t -> t0:float -> t1:float -> load:float -> unit
(** Account for a constant [load] on [t0, t1).  Portions before the
    warmup deadline are discarded (segments straddling it are split). *)

val measured_time : t -> float
val overflow_fraction : t -> float
(** Direct time-weighted estimate of p_f; [nan] before any batch closes. *)

val point_fraction : t -> float
(** Point-sampled estimate of p_f (paper's §5.2 sampling); [nan] when no
    [sample_spacing] was configured or no samples have been taken yet.
    For a piecewise-constant load both estimators converge to the same
    limit; point sampling merely discards information. *)

val point_samples : t -> int

val load_mean : t -> float
val load_std : t -> float

val gaussian_fit_overflow : t -> float
(** Q((c - load_mean)/load_std) — the paper's small-p_f fallback. *)

val relative_half_width : t -> confidence:float -> float
val batches : t -> int

type verdict =
  | Running
      (** not enough evidence yet *)
  | Converged of { p_f : float; ci_rel : float }
      (** direct estimate met the CI criterion *)
  | Below_target of { p_f_fit : float; upper_bound : float }
      (** estimate + CI at least two orders below target; Gaussian fit
          reported, with the direct upper bound for reference *)

val check_stop :
  ?confidence:float -> ?rel_ci:float -> ?min_batches:int -> t ->
  target:float -> verdict
(** Defaults: [confidence = 0.95], [rel_ci = 0.2], [min_batches = 10]. *)

val final_estimate : t -> target:float -> float * [ `Direct | `Gaussian_fit ]
(** Best available estimate when the run ends (converged or not):
    the direct fraction if it is positive and resolvable, otherwise the
    Gaussian fit. *)
