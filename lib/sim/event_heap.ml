type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry;
}

let create () =
  (* Placeholder for slots >= size, so vacated slots never pin popped
     payloads for the lifetime of the heap.  The payload is an immediate
     masquerading as 'a: it is GC-safe and no code path reads a slot
     beyond [size]. *)
  let dummy = { time = 0.0; seq = 0; payload = Obj.magic 0 } in
  { data = [||]; size = 0; next_seq = 0; dummy }

let size t = t.size
let is_empty t = t.size = 0

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let data = Array.make ncap t.dummy in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_heap.push: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t.data.(!i) t.data.(parent) then begin
      let tmp = t.data.(!i) in
      t.data.(!i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let peek_time t = if t.size = 0 then None else Some t.data.(0).time

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then t.data.(0) <- t.data.(t.size);
    (* Release the vacated slot so the popped entry (and, transitively,
       its payload) becomes collectable as soon as the caller drops it. *)
    t.data.(t.size) <- t.dummy;
    if t.size > 0 then begin
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (top.time, top.payload)
  end

let clear t =
  Array.fill t.data 0 t.size t.dummy;
  t.size <- 0
