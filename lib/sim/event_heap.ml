(* Structure-of-arrays binary min-heap with immediate-int payloads.

   The event queue sits on the innermost simulation loop, so its layout
   is chosen to make push/pop allocation-free: times live in a
   [Float.Array.t] (flat unboxed doubles), sequence numbers and payloads
   in [int array]s.  A payload is whatever the caller packs into a
   native int — the simulator encodes its event constructors and flow
   slots there (see [Continuous_load]).  Compared to the previous boxed
   [entry] record array this also removes the [Obj.magic] dummy slot:
   there is nothing in a vacated slot for the GC to see. *)

type t = {
  mutable times : Float.Array.t;
  mutable seqs : int array;
  mutable payloads : int array;
  mutable size : int;
  mutable next_seq : int;
}

let create () =
  { times = Float.Array.create 0;
    seqs = [||];
    payloads = [||];
    size = 0;
    next_seq = 0 }

let size t = t.size
let is_empty t = t.size = 0

(* Capacity is trimmed to [size]: a snapshot that is cloned many times
   should not carry the parent's amortized-doubling slack. *)
let copy t =
  let times = Float.Array.create t.size in
  Float.Array.blit t.times 0 times 0 t.size;
  { times;
    seqs = Array.sub t.seqs 0 t.size;
    payloads = Array.sub t.payloads 0 t.size;
    size = t.size;
    next_seq = t.next_seq }

(* Earlier time wins; equal times fall back to insertion order (FIFO),
   which keeps runs deterministic. *)
let[@inline] before t i j =
  let ti = Float.Array.unsafe_get t.times i
  and tj = Float.Array.unsafe_get t.times j in
  ti < tj || (ti = tj && Array.unsafe_get t.seqs i < Array.unsafe_get t.seqs j)

let[@inline] swap t i j =
  let tmp_t = Float.Array.unsafe_get t.times i in
  Float.Array.unsafe_set t.times i (Float.Array.unsafe_get t.times j);
  Float.Array.unsafe_set t.times j tmp_t;
  let tmp_s = Array.unsafe_get t.seqs i in
  Array.unsafe_set t.seqs i (Array.unsafe_get t.seqs j);
  Array.unsafe_set t.seqs j tmp_s;
  let tmp_p = Array.unsafe_get t.payloads i in
  Array.unsafe_set t.payloads i (Array.unsafe_get t.payloads j);
  Array.unsafe_set t.payloads j tmp_p

let grow t =
  let cap = Array.length t.seqs in
  begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let times = Float.Array.create ncap in
    Float.Array.blit t.times 0 times 0 t.size;
    let seqs = Array.make ncap 0 in
    Array.blit t.seqs 0 seqs 0 t.size;
    let payloads = Array.make ncap 0 in
    Array.blit t.payloads 0 payloads 0 t.size;
    t.times <- times;
    t.seqs <- seqs;
    t.payloads <- payloads
  end

let sift_up t i0 =
  let i = ref i0 in
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t !i parent then begin
      swap t !i parent;
      i := parent
    end
    else continue := false
  done

(* The sift-up loop lives in [sift_up] (taking only ints) so [push]
   itself inlines into callers — the [time] argument is then stored
   straight into the unboxed array instead of being boxed at a call
   boundary. *)
let[@inline] push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_heap.push: NaN time";
  if t.size = Array.length t.seqs then grow t;
  let i = t.size in
  Float.Array.unsafe_set t.times i time;
  Array.unsafe_set t.seqs i t.next_seq;
  Array.unsafe_set t.payloads i payload;
  t.next_seq <- t.next_seq + 1;
  t.size <- i + 1;
  sift_up t i

let sift_down t =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && before t l !smallest then smallest := l;
    if r < t.size && before t r !smallest then smallest := r;
    if !smallest <> !i then begin
      swap t !i !smallest;
      i := !smallest
    end
    else continue := false
  done

(* Zero-allocation accessors for the hot loop: callers check
   [is_empty], read the minimum in place, then [drop_min]. *)

let[@inline] min_time t =
  if t.size = 0 then invalid_arg "Event_heap.min_time: empty heap";
  Float.Array.unsafe_get t.times 0

let[@inline] min_payload t =
  if t.size = 0 then invalid_arg "Event_heap.min_payload: empty heap";
  Array.unsafe_get t.payloads 0

let[@inline] drop_min t =
  if t.size = 0 then invalid_arg "Event_heap.drop_min: empty heap";
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let last = t.size in
    Float.Array.unsafe_set t.times 0 (Float.Array.unsafe_get t.times last);
    Array.unsafe_set t.seqs 0 (Array.unsafe_get t.seqs last);
    Array.unsafe_set t.payloads 0 (Array.unsafe_get t.payloads last);
    sift_down t
  end

let peek_time t = if t.size = 0 then None else Some (Float.Array.get t.times 0)

let pop t =
  if t.size = 0 then None
  else begin
    let time = Float.Array.unsafe_get t.times 0 in
    let payload = Array.unsafe_get t.payloads 0 in
    drop_min t;
    Some (time, payload)
  end

(* No [ref] flag: the loop state lives in registers, so a singleton
   batch — the overwhelmingly common case under continuous clocks —
   costs zero allocation on top of the pop itself. *)
let drain_min t ~f =
  if t.size > 0 then begin
    let t0 = min_time t in
    f (min_payload t);
    drop_min t;
    while t.size > 0 && min_time t = t0 do
      f (min_payload t);
      drop_min t
    done
  end

let clear t = t.size <- 0
