(** Deterministic multicore replication engine.

    Monte-Carlo sweeps are embarrassingly parallel: every cell
    (replication, parameter point) is an independent simulation.  This
    module fans a list of such tasks out over a fixed-size pool of
    OCaml 5 domains and returns the results {e in submission order}.

    {2 Determinism contract}

    The pool adds no randomness of its own.  Provided each task derives
    its generator up front from the root seed and a task-unique tag
    ({!Mbac_stats.Rng.derive} / [Common.rng_for]) and touches no shared
    mutable state, the result list is bit-identical for every [jobs]
    value: [~jobs:1] runs the tasks serially in the calling domain and
    defines the reference output, and any [jobs > 1] schedule reproduces
    it exactly.  Output formatting must happen after the pool returns,
    in the calling domain.

    {2 Telemetry}

    Every task runs against a fresh {!Mbac_telemetry.Shard} (on the
    serial path too); at the join the task shards are merged into the
    submitting domain's shard {e in submission order}, so aggregated
    metrics and traces are byte-identical for every [jobs] value.  Each
    task also counts into [parallel_tasks_total] and, when profiling is
    enabled, records its wall-clock latency under the [parallel.task]
    span. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the widest pool worth
    spawning on this machine. *)

val run_tasks : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run_tasks ~jobs tasks] executes every task on a pool of
    [min jobs (length tasks)] domains (default {!default_jobs}) and
    returns the results in submission order.  If any task raises, the
    remaining claimed tasks still run to completion, then the first
    failure in submission order is re-raised with its backtrace.
    @raise Invalid_argument if [jobs < 1]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [run_tasks ~jobs (List.map (fun x () -> f x) xs)]:
    the parallel [List.map] for independent simulation cells. *)
