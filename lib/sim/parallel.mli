(** Deterministic multicore replication engine.

    Monte-Carlo sweeps are embarrassingly parallel: every cell
    (replication, parameter point) is an independent simulation.  This
    module fans a list of such tasks out over a fixed-size pool of
    OCaml 5 domains and returns the results {e in submission order}.

    {2 Determinism contract}

    The pool adds no randomness of its own.  Provided each task derives
    its generator up front from the root seed and a task-unique tag
    ({!Mbac_stats.Rng.derive} / [Common.rng_for]) and touches no shared
    mutable state, the result list is bit-identical for every [jobs]
    value: [~jobs:1] runs the tasks serially in the calling domain and
    defines the reference output, and any [jobs > 1] schedule reproduces
    it exactly.  The same holds for every [chunk] value: tasks are
    claimed in fixed-size index ranges, but results are merged by task
    index, never by completion order.  Output formatting must happen
    after the pool returns, in the calling domain.

    {2 Pool sizing}

    The pool never spawns more than {!domain_cap} domains, whatever
    [jobs] asks for: OCaml 5 minor collections synchronize {e every}
    running domain, so oversubscribing cores turns each minor GC into an
    OS-scheduler wait and makes the pool a net loss — [--jobs] beyond
    the cap still changes nothing about the results (that is the
    determinism contract), it just stops costing anything.  Worker
    domains start with an enlarged minor heap (see
    [MBAC_POOL_MINOR_HEAP]) to cut the frequency of those global
    pauses; the submitting domain's GC settings are never modified.

    Environment knobs (all optional):
    - [MBAC_DOMAIN_CAP] — ceiling on pool width (default:
      [min 8 (Domain.recommended_domain_count ())]; setting it above
      the core count deliberately oversubscribes, which the test suite
      uses to exercise real multi-domain schedules on narrow machines).
    - [MBAC_POOL_MINOR_HEAP] — per-worker minor-heap size in words
      (default [2_097_152]; [0] leaves the runtime default).
    - [MBAC_POOL_SPACE_OVERHEAD] — per-worker [Gc.space_overhead]
      (default [0] = leave the runtime default).

    {2 Telemetry}

    Every task runs against a fresh {!Mbac_telemetry.Shard} (on the
    serial path too); at the join the task shards are merged into the
    submitting domain's shard {e in submission order}, so aggregated
    metrics and traces are byte-identical for every [jobs] value.
    Executed tasks are counted into [parallel_tasks_total] (incremented
    once at the join, in the submitting shard; suppressed by
    [~count_tasks:false]) and, when profiling is
    enabled, each records its wall-clock latency under the
    [parallel.task] span.  Tasks skipped by first-failure cancellation
    contribute no telemetry and are counted in
    [parallel_tasks_skipped_total]. *)

val default_jobs : unit -> int
(** {!domain_cap} — the widest pool worth spawning on this machine. *)

val domain_cap : unit -> int
(** Ceiling on the pool width, applied to explicit [jobs] requests as
    well as to {!default_jobs}: [MBAC_DOMAIN_CAP] when set to a
    positive integer, else [min 8 (Domain.recommended_domain_count ())]. *)

val effective_jobs : ?jobs:int -> int -> int
(** [effective_jobs ?jobs n] is the pool width {!run_tasks} will
    actually use for [n] tasks: [min jobs n (domain_cap ())] (with
    [jobs] defaulting to {!default_jobs}), or [0] when [n = 0].
    @raise Invalid_argument if [jobs < 1]. *)

val run_tasks :
  ?jobs:int -> ?chunk:int -> ?init:(unit -> unit) ->
  ?count_tasks:bool -> (unit -> 'a) list -> 'a list
(** [run_tasks ~jobs tasks] executes every task on a pool of
    {!effective_jobs} domains and returns the results in submission
    order.

    [count_tasks] (default [true]) controls the
    [parallel_tasks_total] / [parallel_tasks_skipped_total] increments.
    Pass [false] when the {e number} of pool invocations depends on the
    execution width — as in the network engine, whose window drivers
    submit a width-dependent task count — so metric snapshots stay
    byte-identical for every [jobs] value there too.

    [chunk] is the number of consecutive tasks a worker claims per
    queue round-trip (default: auto, roughly [n / (8 * width)] capped
    at 32 — about eight claims per worker, so fine-grained sweeps don't
    serialize on the queue cursor while load stays balanced).  Results
    are independent of [chunk].

    [init], when given, runs once in every domain that executes tasks
    (each spawned worker, and the submitting domain) before any task
    starts.  Use it to pre-seed domain-local caches
    ({!Mbac_numerics.Fgn.cached_plan}, Chebyshev tables) so workers
    don't all pay the first-touch build inside their first task.  It
    must not affect task results.

    If any task raises, tasks that have not started by the time of the
    failure are skipped (contributing no telemetry), and once the pool
    drains the {e first failure in submission order} is re-raised with
    its backtrace.  Skipping never changes which exception is re-raised:
    a task is only skipped when an earlier-submitted task has already
    failed.  Telemetry from every executed task — including failed
    ones — is merged before the re-raise.
    @raise Invalid_argument if [jobs < 1] or [chunk < 1]. *)

val map :
  ?jobs:int -> ?chunk:int -> ?init:(unit -> unit) -> ('a -> 'b) -> 'a list ->
  'b list
(** [map ~jobs f xs] is [run_tasks ~jobs (List.map (fun x () -> f x) xs)]:
    the parallel [List.map] for independent simulation cells. *)
