(** The flow-level simulator.

    The default mode is the paper's continuous-load model (§4):
    effectively infinite flow arrival rate — whenever the controller's
    admissible count exceeds the current population, fresh flows are
    admitted immediately.  A finite Poisson arrival process is also
    supported ([`Poisson rate]); the continuous-load results upper-bound
    the finite-rate ones, and blocking probability becomes measurable.

    Admitted flows hold for an exponential time with mean
    [holding_time_mean] and fluctuate according to their source model.

    Link models:
    - [`Bufferless] (the paper's): QoS is the probability that the
      aggregate rate exceeds [capacity].
    - [`Renegotiation_blocking]: the RCBR service model of [10] — an
      {e upward} rate renegotiation counts as {e failed} when the
      post-change aggregate demand exceeds capacity ("renegotiations
      fail when the current aggregate bandwidth demand exceeds the link
      capacity", §2); the QoS metric of that service is the
      renegotiation failure probability.  The flow dynamics remain those
      of the demand (bufferless) model so the admission controller sees
      true demands.
    - [`Buffered size]: a fluid buffer of the given size absorbs
      excursions; the loss-time fraction is reported alongside the
      (bufferless-defined) overflow probability for comparison. *)

type arrival = [ `Infinite | `Poisson of float ]

type link = [ `Bufferless | `Renegotiation_blocking | `Buffered of float ]

type config = {
  capacity : float;
  holding_time_mean : float;
  arrival : arrival;           (** default [`Infinite] *)
  link : link;                 (** default [`Bufferless] *)
  utility : Mbac.Utility.t;    (** QoE scoring; default [Step] so
                                   mean utility = 1 - p_f *)
  warmup : float;              (** measurement warm-up time *)
  batch_length : float;        (** batch-means batch length; the paper
                                   samples every 2 max(T~_h, T_m, T_c) —
                                   use the same scale here *)
  target_p_q : float;          (** QoS target, for the stopping rule *)
  rel_ci : float;              (** CI convergence threshold (paper: 0.2) *)
  confidence : float;          (** CI level (paper: 0.95) *)
  min_batches : int;
  check_every_events : int;    (** stopping-rule test period *)
  max_time : float;            (** hard cap on simulated time *)
  max_events : int;            (** hard cap on processed events *)
  max_flows : int;             (** safety cap on concurrent flows *)
}

val default_config :
  capacity:float -> holding_time_mean:float -> target_p_q:float -> config
(** Sensible defaults: infinite arrivals, bufferless link, step utility,
    warmup and batch length derived from the holding time,
    [rel_ci = 0.2], [confidence = 0.95], [min_batches = 16], caps high
    enough for the paper's experiments. *)

type result = {
  p_f : float;                       (** overflow probability estimate *)
  estimate_kind : [ `Direct | `Gaussian_fit ];
  converged : bool;                  (** stopped by a §5.2 rule, not a cap *)
  ci_rel : float;                    (** relative CI half-width (direct) *)
  mean_flows : float;                (** time-average number of flows *)
  mean_load : float;
  std_load : float;
  utilization : float;               (** mean_load / capacity *)
  mean_utility : float;              (** time-average utility of the
                                         delivered-bandwidth fraction *)
  admitted : int;
  departed : int;
  blocked : int;                     (** arrivals rejected (Poisson mode) *)
  blocking_probability : float;      (** blocked/(blocked+admitted);
                                         [nan] under infinite load *)
  reneg_attempts : int;              (** rate renegotiations offered *)
  reneg_failures : int;              (** failed under
                                         [`Renegotiation_blocking] *)
  reneg_failure_probability : float; (** failures/attempts; [nan] if none *)
  buffer_loss_fraction : float;      (** loss-time fraction ([`Buffered]);
                                         [nan] otherwise *)
  p_f_point : float;                 (** the paper's §5.2 point-sampled
                                         overflow estimate (samples every
                                         [batch_length]); an ablation
                                         against the time-weighted [p_f] *)
  sim_time : float;
  events : int;
}

val run :
  Mbac_stats.Rng.t ->
  config ->
  controller:Mbac.Controller.t ->
  make_source:(Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t) ->
  result
(** Run to convergence or to a cap.  The controller is [reset] first.
    Deterministic given the RNG state. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Stepping and snapshot/restore}

    The same machinery as {!run}, exposed one event at a time, plus a
    deep-copy snapshot/restore used by the rare-event splitting engine
    ({!Splitting}).  A [sim] owns mutable state throughout: the event
    heap, the dense flow table, the per-source sampler closures, the
    controller's estimator memory, and the measurement accumulators.

    {b Aliasing contract}: {!snapshot} and {!restore} each take a full
    deep copy, so a snapshot is immutable-in-practice (nothing aliases
    the live sim) and every restore yields an independent sim — clones
    never share mutable state with each other or with the parent.  The
    only shared values are immutable ones: [config], the [make_source]
    factory, and read-only model parameters inside source closures
    (e.g. a trace's rate array).  A [make_source] that captures mutable
    state outside the [rng] it is given breaks this contract. *)

type sim

val start :
  Mbac_stats.Rng.t ->
  config ->
  controller:Mbac.Controller.t ->
  make_source:(Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t) ->
  sim
(** Validate, reset the controller, and perform the initial admissions
    (or schedule the first Poisson arrival) exactly as {!run} does.
    [run] is [start] plus a {!step} loop with the stopping rules. *)

val step : sim -> unit
(** Process the earliest pending event: account the constant-load
    segment up to its time, then fire it (rate change, departure, or
    arrival, including any consequent admissions).
    @raise Invalid_argument if no event is pending (see
    {!has_pending}; cannot happen while flows exist). *)

val now : sim -> float
val load : sim -> float
(** Current aggregate bandwidth demand (piecewise constant between
    events: the value returned held since the last {!step}). *)

val flows : sim -> int
val events_processed : sim -> int
val has_pending : sim -> bool
val measurement : sim -> Measurement.t
(** The live overflow measurement (shared, not a copy). *)

type snapshot

val snapshot : sim -> snapshot
(** Deep copy of the full simulator state.  The live sim can keep
    running; the snapshot is unaffected. *)

val restore : ?rng:Mbac_stats.Rng.t -> snapshot -> sim
(** A fresh, independent sim continuing from the snapshot.  Every
    restore deep-copies again, so restoring the same snapshot twice
    yields two non-interfering sims.  [rng] replaces the random stream
    for all future draws (sources are re-bound to it); by default the
    clone replays the parent's stream from the snapshot point. *)
