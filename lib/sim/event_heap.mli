(** Binary min-heap keyed by event time — the simulator's event queue.
    Ties are broken by insertion order (FIFO), which keeps runs
    deterministic.

    The heap is a structure-of-arrays over unboxed floats and immediate
    ints, so [push], [min_time]/[min_payload]/[drop_min], and [pop]
    never allocate (beyond amortized capacity doubling).  Payloads are
    native ints; callers needing richer events pack them into an int
    (tag in the low bits, identifier above — see [Continuous_load]). *)

type t

val create : unit -> t
val size : t -> int
val is_empty : t -> bool

val copy : t -> t
(** Independent deep copy of the pending events, including the sequence
    counter (so tie-breaking in the copy replays identically). *)

val push : t -> time:float -> int -> unit
(** @raise Invalid_argument on NaN time. *)

val min_time : t -> float
(** Time of the earliest event, read in place.
    @raise Invalid_argument on an empty heap. *)

val min_payload : t -> int
(** Payload of the earliest event, read in place.
    @raise Invalid_argument on an empty heap. *)

val drop_min : t -> unit
(** Remove the earliest event (the one [min_time]/[min_payload] read).
    @raise Invalid_argument on an empty heap. *)

val peek_time : t -> float option

val pop : t -> (float * int) option
(** Remove and return the earliest event.  Convenience wrapper over
    [min_time]/[min_payload]/[drop_min]; allocates the result pair. *)

val drain_min : t -> f:(int -> unit) -> unit
(** Pop every event sharing the current minimum timestamp, in FIFO
    order, calling [f payload] for each.  Events that [f] itself pushes
    at that exact timestamp are drained too (they carry later sequence
    numbers, so they come last).  No-op on an empty heap. *)

val clear : t -> unit
(** Drop every pending event. *)
