(** Binary min-heap keyed by event time — the simulator's event queue.
    Ties are broken by insertion order (FIFO), which keeps runs
    deterministic. *)

type 'a t

val create : unit -> 'a t
val size : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on NaN time. *)

val peek_time : 'a t -> float option
val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event.  The vacated slot is released
    immediately: the heap retains no reference to popped payloads. *)

val clear : 'a t -> unit
(** Drop every pending event (and any references to their payloads). *)
