(** Rare-event acceleration: fixed-effort multilevel importance
    splitting for the stationary overflow probability.

    The time fraction with load above capacity is decomposed along an
    excursion above a base level [B = m + z0 (c - m)] ([m] the
    calibrated mean load, [c] the capacity):

    {v p_f = nu_1 x prod_{l=1}^{K-1} p_l x E[T_over] v}

    - [nu_1]: rate of excursion starts — up-crossings of the first
      threshold [L_1] after the load last touched [B] — measured by a
      pilot run that also harvests entrance snapshots at [L_1];
    - [p_l]: probability an excursion entering level [l] reaches
      [L_{l+1}] before falling back to [B], estimated by a fixed number
      of clone trials restored ({!Continuous_load.restore}) from the
      previous stage's entrance pool;
    - [E[T_over]]: expected time above capacity per excursion reaching
      [L_K = c], from top-stage trials run until the excursion ends.

    Thresholds sit at equal steps of the normalized load
    [z = (load - m)/(c - m)]: [z_j = z0 + (1 - z0) j / K], so
    [L_K = c] exactly.

    Determinism: every trial draws from
    [Rng.derive ~seed ~tag:"<seed_tag>:level=<l>:trial=<i>"], entrances
    are assigned by trial index, and the work is fanned out in
    [jobs]-independent chunks through {!Parallel.run_tasks}, so results
    are bit-identical for every [jobs] value. *)

type config = {
  base_level : float;       (** excursion base [z0] in (0,1); default 0.25 *)
  levels : int;             (** [K >= 1] thresholds; [L_K = capacity] *)
  trials_per_level : int;   (** fixed effort per stage *)
  pilot_time : float;       (** simulated time of the pilot's collection
                                window (after warmup + calibration) *)
  calibration_time : float; (** window measuring the mean load [m]
                                before thresholds are fixed *)
  max_pool : int;           (** entrance snapshots kept per level *)
  max_trial_events : int;   (** safety cap per clone trial; hitting it
                                counts the trial as failed (conservative)
                                and increments [truncated_trials] *)
  batches : int;            (** batch count for per-stage variance *)
  seed_tag : string;        (** prefix of all derived RNG stream tags *)
}

val default_config : pilot_time:float -> config
(** [base_level = 0.25], [levels = 6], [trials_per_level = 2048],
    [calibration_time = pilot_time / 10], [max_pool = 64],
    [max_trial_events = 1_000_000], [batches = 16],
    [seed_tag = "splitting"]. *)

type level_stat = {
  threshold : float;
  trials : int;
  successes : int;
  p_hat : float;
  rel_var : float;     (** relative variance of [p_hat] (batch means) *)
  pool : int;          (** entrance-pool size the stage drew from *)
  level_events : int;
}

type result = {
  p_f : float;             (** splitting estimate; [0.] when a stage died *)
  ci_rel : float;          (** 95% relative CI half-width via the delta
                               method across independent stages (the
                               excursion-rate term uses the Poisson
                               approximation [1/excursions]);
                               [infinity] when degenerate *)
  mean_load : float;       (** calibrated [m] *)
  base_threshold : float;  (** [B] *)
  thresholds : float array;
  excursion_rate : float;  (** [nu_1], per unit simulated time *)
  excursions : int;        (** entrances observed by the pilot *)
  mean_overflow_time : float;
  top_trials : int;
  level_stats : level_stat array;
  pilot_events : int;
  pilot_p_f : float;       (** direct time-fraction estimate over the
                               pilot window (reference only) *)
  total_events : int;      (** pilot + all clone trials *)
  truncated_trials : int;
}

val run :
  ?jobs:int ->
  seed:int ->
  config ->
  Continuous_load.config ->
  controller:Mbac.Controller.t ->
  make_source:(Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t) ->
  result
(** Pilot, intermediate stages, top stage; see the module preamble.
    [sim_cfg.warmup] is honoured before calibration.  The controller
    must support {!Mbac.Controller.copy} (all built-ins do) and
    [make_source] must satisfy the {!Continuous_load} aliasing contract.
    @raise Invalid_argument on a malformed [config], or when the
    calibrated mean load is not below capacity. *)

val pp_result : Format.formatter -> result -> unit
