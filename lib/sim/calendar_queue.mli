(** Calendar queue (timing-wheel/calendar hybrid) keyed by event time —
    the simulator's O(1) event queue.  Ties are broken by insertion
    order (FIFO), exactly like {!Event_heap}: the two structures
    produce identical pop sequences for identical push sequences.

    Structure: entries live in a structure-of-arrays pool (unboxed
    float times, immediate-int seqs/payloads) linked into bucket chains
    of a power-of-two wheel.  Bucket width auto-resizes from the
    observed inter-pop spacing (EWMA); events beyond the wheel horizon
    go to an overflow chain and are migrated in bulk when the wheel
    catches up.  [push], [min_time]/[min_payload]/[drop_min] allocate
    nothing in steady state (pool growth and wheel resizes are
    amortized and absent once the pending population is stationary).

    Payloads are native ints; callers needing richer events pack them
    into an int (tag in the low bits, identifier above — see
    [Continuous_load]). *)

type t

val create : unit -> t
val size : t -> int
val is_empty : t -> bool

val copy : t -> t
(** Independent deep copy of the pending events, including the sequence
    counter (so tie-breaking in the copy replays identically).  The
    copy's pool is compacted to exactly [size] entries: a snapshot that
    is cloned many times does not carry the parent's amortized-doubling
    slack. *)

val push : t -> time:float -> int -> unit
(** @raise Invalid_argument on NaN time. *)

val min_time : t -> float
(** Time of the earliest event, read in place.
    @raise Invalid_argument on an empty queue. *)

val min_payload : t -> int
(** Payload of the earliest event, read in place.
    @raise Invalid_argument on an empty queue. *)

val drop_min : t -> unit
(** Remove the earliest event (the one [min_time]/[min_payload] read).
    @raise Invalid_argument on an empty queue. *)

val peek_time : t -> float option

val pop : t -> (float * int) option
(** Remove and return the earliest event.  Convenience wrapper over
    [min_time]/[min_payload]/[drop_min]; allocates the result pair. *)

val drain_min : t -> f:(int -> unit) -> unit
(** Pop every event sharing the current minimum timestamp, in FIFO
    order, calling [f payload] for each.  Events that [f] itself pushes
    at that exact timestamp are drained too (they carry later sequence
    numbers, so they come last).  No-op on an empty queue. *)

val clear : t -> unit
(** Drop every pending event.  The sequence counter is preserved, so
    tie-breaking against any surviving external ordering stays
    consistent with {!Event_heap.clear}. *)
