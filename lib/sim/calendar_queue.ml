(* Calendar queue: a timing wheel whose bucket width tracks the
   observed event spacing (Brown, CACM 1988), over the same unboxed
   int-payload/float-time encoding as [Event_heap].

   Entries live in a two-array pool — times in a [Float.Array.t], and
   (seq, payload, next-link) packed at a 4-word stride in one int array
   — and are linked into per-bucket chains of a power-of-two wheel.
   The packed layout is deliberate: at large pending counts the popped
   entry is cold, and one meta line plus one time line is half the
   cache misses of four parallel arrays.  An entry at time [tm] belongs
   to absolute bucket [floor (tm * inv_width)]; the wheel covers
   buckets [cur_b, cur_b + nb) and maps bucket [b] to slot
   [b land mask].  Anything at or beyond the horizon goes to a single
   overflow chain, migrated in bulk when the wheel catches up.

   Ordering is by (time, seq): chains are unordered (push links at the
   head), and the minimum is found by scanning the current slot's
   chain, so FIFO tie-breaking falls out of the seq comparison rather
   than list discipline.  Two invariants make the slot scan sufficient:

   - every wheel entry has clamped bucket in [cur_b, cur_b + nb), and
     slot [cur_b land mask] holds only bucket-[cur_b] entries (cur_b
     only advances past empty slots; pushes clamp to >= cur_b), so the
     earliest wheel entry is always in the current slot;
   - overflow entries have bucket >= cur_b + nb, hence time (strictly,
     (time, seq)) no earlier than any wheel entry — except transiently
     when cur_b advanced after the overflow push, which the minimum
     search detects by comparing against the overflow minimum and
     repairs by migrating.

   The found minimum is cached (entry, chain predecessor, slot) so the
   min_time / min_payload / drop_min triple costs one scan; pushes
   update or patch the cache in O(1).  Nothing on the push/pop path
   allocates: pool growth doubles amortized, and wheel resizes (sized
   by pending count, width from a block-averaged inter-pop spacing
   estimate) allocate only the new slot-head array and stop once the
   population is stationary. *)

type t = {
  (* entry pool: times.(e) plus meta.(4e..4e+2) = seq, payload, next;
     the next field doubles as the free list *)
  mutable times : Float.Array.t;
  mutable meta : int array;
  mutable used : int;
  mutable free_head : int;
  (* wheel *)
  mutable heads : int array;
  mutable nb : int;
  mutable mask : int;
  mutable cur_b : int;
  mutable wheel_size : int;
  (* far-future overflow chain *)
  mutable ovf_head : int;
  mutable ovf_size : int;
  mutable ovf_min_seq : int;
  (* cached minimum: entry index, its chain predecessor (-1 = chain
     head), and its slot; min_entry = -1 means no cache *)
  mutable min_entry : int;
  mutable min_prev : int;
  mutable min_slot : int;
  mutable size : int;
  mutable next_seq : int;
  mutable pops_since_adjust : int;
  (* pops since the last wheel rebuild; a width recalibration may only
     fire after [size] further pops, bounding relink work to O(1)
     amortized per pop no matter how the spacing estimate moves *)
  mutable pops_since_resize : int;
  (* unboxed mutable floats (a mixed record would box them on every
     store): width, 1/width, smoothed gap estimate, last pop time,
     overflow minimum time, gap-block checkpoint time *)
  fstate : Float.Array.t;
}

let f_width = 0
let f_inv = 1
let f_gap = 2
let f_last_pop = 3
let f_ovf_min = 4
let f_ckpt = 5
let n_fstate = 6

(* meta word offsets within an entry's 4-word group (the 4th word is
   padding so a group never spans more than one cache line) *)
let m_seq = 0
let m_pay = 1
let m_next = 2

let[@inline] seq_of t e = Array.unsafe_get t.meta ((e lsl 2) + m_seq)
let[@inline] pay_of t e = Array.unsafe_get t.meta ((e lsl 2) + m_pay)
let[@inline] next_of t e = Array.unsafe_get t.meta ((e lsl 2) + m_next)
let[@inline] set_seq t e v = Array.unsafe_set t.meta ((e lsl 2) + m_seq) v
let[@inline] set_pay t e v = Array.unsafe_set t.meta ((e lsl 2) + m_pay) v
let[@inline] set_next t e v = Array.unsafe_set t.meta ((e lsl 2) + m_next) v

let min_nb = 16
let recalibrate_every = 4096

let create () =
  let fstate = Float.Array.create n_fstate in
  Float.Array.set fstate f_width 1.0;
  Float.Array.set fstate f_inv 1.0;
  Float.Array.set fstate f_gap Float.nan;
  Float.Array.set fstate f_last_pop Float.nan;
  Float.Array.set fstate f_ovf_min Float.infinity;
  Float.Array.set fstate f_ckpt Float.nan;
  { times = Float.Array.create 0;
    meta = [||];
    used = 0;
    free_head = -1;
    heads = Array.make min_nb (-1);
    nb = min_nb;
    mask = min_nb - 1;
    cur_b = 0;
    wheel_size = 0;
    ovf_head = -1;
    ovf_size = 0;
    ovf_min_seq = max_int;
    min_entry = -1;
    min_prev = -1;
    min_slot = -1;
    size = 0;
    next_seq = 0;
    pops_since_adjust = 0;
    pops_since_resize = 0;
    fstate }

let size t = t.size
let is_empty t = t.size = 0

(* Absolute bucket of a timestamp.  Clamped so that pathological
   width/time ratios degrade to a fat bucket or the overflow chain
   instead of overflowing the int.  Consistency is all that matters:
   the same monotone map is used by push, migration, and resize. *)
let[@inline] bucket t tm =
  let q = Float.floor (tm *. Float.Array.unsafe_get t.fstate f_inv) in
  if q >= 1e15 then 1_000_000_000_000_000
  else if q <= -1e15 then -1_000_000_000_000_000
  else int_of_float q

let next_pow2 n =
  let r = ref min_nb in
  while !r < n do r := !r * 2 done;
  !r

let grow_pool t =
  let cap = Array.length t.meta lsr 2 in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let times = Float.Array.create ncap in
  Float.Array.blit t.times 0 times 0 t.used;
  let meta = Array.make (ncap lsl 2) (-1) in
  Array.blit t.meta 0 meta 0 (t.used lsl 2);
  t.times <- times;
  t.meta <- meta

(* Width target as a multiple of the observed inter-pop spacing.  The
   best multiplier is a function of where the working set lives:
   cache-resident populations want wide buckets (~2 events each —
   chain scanning is cheap, empty-slot advance is the overhead), while
   DRAM-resident populations want ~1 event per bucket (every extra
   chain entry is a cold cache miss on the pop path, worth more than
   the larger overflow fraction it avoids — overflow migration is rare
   and bulk).  The threshold is deterministic in [size], so identical
   op sequences still produce identical structures. *)
let[@inline] width_mult t = if t.size >= 1 lsl 18 then 1.0 else 2.0

(* Rebuild the wheel with [nb'] buckets and a freshly chosen width.
   Width preference: the spacing estimate scaled by [width_mult];
   before any pops have calibrated the spacing estimate, pending span
   / pending count; else keep the old width.  Only the slot-head array
   is allocated — entries are relinked in place.  Relinking never
   reorders pops: chains are unordered and the (time, seq) comparison
   is width-independent. *)
let resize t nb' =
  let fs = t.fstate in
  t.pops_since_resize <- 0;
  if t.size = 0 then begin
    t.heads <- Array.make nb' (-1);
    t.nb <- nb';
    t.mask <- nb' - 1;
    t.ovf_head <- -1;
    t.ovf_size <- 0;
    t.ovf_min_seq <- max_int;
    Float.Array.set fs f_ovf_min Float.infinity;
    t.min_entry <- -1
  end
  else begin
    (* pass 1: span of pending times (old structure intact).  The
       min/max accumulators live in a scratch [Float.Array] — float
       refs would box two words on every store, charging a
       million-entry scan hundreds of kilowords of minor allocation. *)
    let mnmx = Float.Array.create 2 in
    Float.Array.set mnmx 0 Float.infinity;
    Float.Array.set mnmx 1 Float.neg_infinity;
    let scan_chain head =
      let e = ref head in
      while !e >= 0 do
        let tm = Float.Array.unsafe_get t.times !e in
        if tm < Float.Array.unsafe_get mnmx 0 then Float.Array.unsafe_set mnmx 0 tm;
        if tm > Float.Array.unsafe_get mnmx 1 then Float.Array.unsafe_set mnmx 1 tm;
        e := next_of t !e
      done
    in
    for s = 0 to t.nb - 1 do scan_chain (Array.unsafe_get t.heads s) done;
    scan_chain t.ovf_head;
    let mn = Float.Array.get mnmx 0 and mx = Float.Array.get mnmx 1 in
    let g = Float.Array.get fs f_gap in
    let w =
      if Float.is_finite g && g > 0. then width_mult t *. g
      else if t.size > 1 && mx > mn then (mx -. mn) /. float_of_int t.size
      else Float.Array.get fs f_width
    in
    let w = if Float.is_finite w && w > 0. then w else Float.Array.get fs f_width in
    let w = if Float.is_finite w && w > 0. then w else 1.0 in
    Float.Array.set fs f_width w;
    Float.Array.set fs f_inv (1. /. w);
    let old_heads = t.heads and old_nb = t.nb in
    let old_ovf = t.ovf_head in
    let heads = Array.make nb' (-1) in
    t.heads <- heads;
    t.nb <- nb';
    t.mask <- nb' - 1;
    t.cur_b <- bucket t mn;
    t.wheel_size <- 0;
    t.ovf_head <- -1;
    t.ovf_size <- 0;
    t.ovf_min_seq <- max_int;
    Float.Array.set fs f_ovf_min Float.infinity;
    let horizon_b = t.cur_b + nb' in
    let relink_chain head =
      let e = ref head in
      while !e >= 0 do
        let nx = next_of t !e in
        let tm = Float.Array.unsafe_get t.times !e in
        let b = bucket t tm in
        if b < horizon_b then begin
          let b = if b < t.cur_b then t.cur_b else b in
          let s = b land t.mask in
          set_next t !e (Array.unsafe_get heads s);
          Array.unsafe_set heads s !e;
          t.wheel_size <- t.wheel_size + 1
        end
        else begin
          set_next t !e t.ovf_head;
          t.ovf_head <- !e;
          t.ovf_size <- t.ovf_size + 1;
          let sq = seq_of t !e in
          let omin = Float.Array.unsafe_get fs f_ovf_min in
          if tm < omin || (tm = omin && sq < t.ovf_min_seq) then begin
            Float.Array.unsafe_set fs f_ovf_min tm;
            t.ovf_min_seq <- sq
          end
        end;
        e := nx
      done
    in
    for s = 0 to old_nb - 1 do relink_chain (Array.unsafe_get old_heads s) done;
    relink_chain old_ovf;
    t.min_entry <- -1
  end

(* Move every overflow entry that now fits the wheel window into it.
   Callers only invoke this while the min cache is invalid. *)
let migrate_overflow t =
  let fs = t.fstate in
  let e = ref t.ovf_head in
  t.ovf_head <- -1;
  t.ovf_size <- 0;
  t.ovf_min_seq <- max_int;
  Float.Array.set fs f_ovf_min Float.infinity;
  let horizon_b = t.cur_b + t.nb in
  while !e >= 0 do
    let nx = next_of t !e in
    let tm = Float.Array.unsafe_get t.times !e in
    let b = bucket t tm in
    if b < horizon_b then begin
      let b = if b < t.cur_b then t.cur_b else b in
      let s = b land t.mask in
      set_next t !e (Array.unsafe_get t.heads s);
      Array.unsafe_set t.heads s !e;
      t.wheel_size <- t.wheel_size + 1
    end
    else begin
      set_next t !e t.ovf_head;
      t.ovf_head <- !e;
      t.ovf_size <- t.ovf_size + 1;
      let sq = seq_of t !e in
      let omin = Float.Array.unsafe_get fs f_ovf_min in
      if tm < omin || (tm = omin && sq < t.ovf_min_seq) then begin
        Float.Array.unsafe_set fs f_ovf_min tm;
        t.ovf_min_seq <- sq
      end
    end;
    e := nx
  done

(* Locate the (time, seq)-minimum and cache it.  Loop shape: jump to
   the overflow chain if the wheel is drained, advance the current
   bucket over empty slots (bounded by nb — every wheel entry sits in
   the live window), scan the current slot's chain, then accept the
   candidate unless a stale overflow entry precedes it, in which case
   migrate and rescan.  Progress: the comparison only fires when the
   overflow minimum's bucket is <= the candidate's (buckets are
   monotone in time), so each migration moves it into the wheel. *)
let ensure_min t =
  if t.min_entry < 0 then begin
    let continue = ref true in
    while !continue do
      if t.wheel_size = 0 then begin
        let ob = bucket t (Float.Array.get t.fstate f_ovf_min) in
        if ob > t.cur_b then t.cur_b <- ob;
        migrate_overflow t;
        assert (t.wheel_size > 0)
      end;
      while Array.unsafe_get t.heads (t.cur_b land t.mask) < 0 do
        t.cur_b <- t.cur_b + 1
      done;
      let s = t.cur_b land t.mask in
      let best = ref (Array.unsafe_get t.heads s) in
      let best_prev = ref (-1) in
      let prev = ref !best in
      let e = ref (next_of t !best) in
      while !e >= 0 do
        let te = Float.Array.unsafe_get t.times !e
        and tb = Float.Array.unsafe_get t.times !best in
        if te < tb || (te = tb && seq_of t !e < seq_of t !best) then begin
          best := !e;
          best_prev := !prev
        end;
        prev := !e;
        e := next_of t !e
      done;
      let accept =
        t.ovf_size = 0
        ||
        let om = Float.Array.unsafe_get t.fstate f_ovf_min
        and tb = Float.Array.unsafe_get t.times !best in
        not (om < tb || (om = tb && t.ovf_min_seq < seq_of t !best))
      in
      if accept then begin
        t.min_entry <- !best;
        t.min_prev <- !best_prev;
        t.min_slot <- s;
        continue := false
      end
      else migrate_overflow t
    done
  end

(* Like [Event_heap.push], the loops live in callees taking only ints
   so [push] itself inlines and the [time] float is stored unboxed. *)
let[@inline] push t ~time payload =
  if Float.is_nan time then invalid_arg "Calendar_queue.push: NaN time";
  let e =
    if t.free_head >= 0 then begin
      let e = t.free_head in
      t.free_head <- next_of t e;
      e
    end
    else begin
      if t.used lsl 2 = Array.length t.meta then grow_pool t;
      let e = t.used in
      t.used <- e + 1;
      e
    end
  in
  Float.Array.unsafe_set t.times e time;
  let sq = t.next_seq in
  set_seq t e sq;
  set_pay t e payload;
  t.next_seq <- sq + 1;
  t.size <- t.size + 1;
  let b = bucket t time in
  if b - t.cur_b >= t.nb then begin
    (* beyond the horizon: overflow chain *)
    set_next t e t.ovf_head;
    t.ovf_head <- e;
    t.ovf_size <- t.ovf_size + 1;
    let omin = Float.Array.unsafe_get t.fstate f_ovf_min in
    if time < omin || (time = omin && sq < t.ovf_min_seq) then begin
      Float.Array.unsafe_set t.fstate f_ovf_min time;
      t.ovf_min_seq <- sq
    end
    (* an overflow entry can never precede a cached wheel minimum:
       its bucket (hence time) is at or beyond the horizon *)
  end
  else begin
    let b = if b < t.cur_b then t.cur_b else b in
    let s = b land t.mask in
    set_next t e (Array.unsafe_get t.heads s);
    Array.unsafe_set t.heads s e;
    t.wheel_size <- t.wheel_size + 1;
    let m = t.min_entry in
    if m >= 0 then begin
      let tm = Float.Array.unsafe_get t.times m in
      if time < tm || (time = tm && sq < seq_of t m) then begin
        t.min_entry <- e;
        t.min_prev <- -1;
        t.min_slot <- s
      end
      else if s = t.min_slot && t.min_prev < 0 then
        (* the cached minimum was this chain's head; the new entry is
           now linked in front of it *)
        t.min_prev <- e
    end
  end;
  if t.size > 2 * t.nb then resize t (next_pow2 t.size)

let[@inline] min_time t =
  if t.size = 0 then invalid_arg "Calendar_queue.min_time: empty queue";
  ensure_min t;
  Float.Array.unsafe_get t.times t.min_entry

let[@inline] min_payload t =
  if t.size = 0 then invalid_arg "Calendar_queue.min_payload: empty queue";
  ensure_min t;
  pay_of t t.min_entry

(* Width recalibration, checkpointed every [recalibrate_every] pops.

   The spacing estimate is a block average: (front advance since the
   last checkpoint) / (pops per block), lightly smoothed.  A per-pop
   gap EWMA — even a slow one — is the wrong estimator here: pop gaps
   under a bursty schedule are strongly autocorrelated (runs of
   near-ties inside a slot, then a jump), so the EWMA's local mean
   wandered by x2.4 under the stationary hold workload and crossed any
   affordable trigger band, each crossing relinking the full
   million-entry population.  The block mean over 4096 pops measures
   exactly the quantity the width must track — the average per-pop
   front advance — with ~1.6% relative noise for i.i.d. gaps, so the
   50% band is far outside noise.

   Two further guards keep rebuilds cheap and deterministic: the check
   is purely op-sequence-driven (no wall clock), and a width-driven
   rebuild may fire only after [size] pops since the last rebuild of
   any kind, making relink work O(1) amortized per pop even under an
   adversarial spacing trajectory. *)
let maybe_adjust t =
  t.pops_since_adjust <- t.pops_since_adjust + 1;
  if t.nb > min_nb && t.size * 8 < t.nb then begin
    t.pops_since_adjust <- 0;
    resize t (next_pow2 (max 1 t.size))
  end
  else if t.pops_since_adjust >= recalibrate_every then begin
    t.pops_since_adjust <- 0;
    t.pops_since_resize <- t.pops_since_resize + recalibrate_every;
    let fs = t.fstate in
    let now = Float.Array.get fs f_last_pop in
    let ck = Float.Array.get fs f_ckpt in
    Float.Array.set fs f_ckpt now;
    if Float.is_finite ck && now > ck then begin
      let block = (now -. ck) /. float_of_int recalibrate_every in
      let g = Float.Array.get fs f_gap in
      let g' =
        if Float.is_finite g then (0.75 *. g) +. (0.25 *. block) else block
      in
      Float.Array.set fs f_gap g';
      let ideal = width_mult t *. g' in
      let w = Float.Array.get fs f_width in
      if
        (w > 1.5 *. ideal || 1.5 *. w < ideal)
        && t.pops_since_resize >= t.size
      then resize t t.nb
    end
  end

let[@inline] drop_min t =
  if t.size = 0 then invalid_arg "Calendar_queue.drop_min: empty queue";
  ensure_min t;
  let e = t.min_entry in
  let nx = next_of t e in
  if t.min_prev < 0 then Array.unsafe_set t.heads t.min_slot nx
  else set_next t t.min_prev nx;
  t.wheel_size <- t.wheel_size - 1;
  t.size <- t.size - 1;
  set_next t e t.free_head;
  t.free_head <- e;
  t.min_entry <- -1;
  (* the pop time feeds the block-average spacing estimate read at the
     next recalibration checkpoint *)
  Float.Array.unsafe_set t.fstate f_last_pop (Float.Array.unsafe_get t.times e);
  maybe_adjust t

let peek_time t =
  if t.size = 0 then None
  else begin
    ensure_min t;
    Some (Float.Array.unsafe_get t.times t.min_entry)
  end

let pop t =
  if t.size = 0 then None
  else begin
    ensure_min t;
    let time = Float.Array.unsafe_get t.times t.min_entry in
    let payload = pay_of t t.min_entry in
    drop_min t;
    Some (time, payload)
  end

(* No [ref] flag: the loop state lives in registers, so a singleton
   batch — the overwhelmingly common case under continuous clocks —
   costs zero allocation on top of the pop itself. *)
let drain_min t ~f =
  if t.size > 0 then begin
    let t0 = min_time t in
    f (min_payload t);
    drop_min t;
    while t.size > 0 && min_time t = t0 do
      f (min_payload t);
      drop_min t
    done
  end

(* Compacting deep copy: entries are renumbered 0..size-1 as the
   chains are walked, so the copy's pool has no free-list slack.
   Chain order is irrelevant (the min scan compares (time, seq)), and
   seqs are preserved verbatim, so the copy pops identically. *)
let copy t =
  let n = t.size in
  let times = Float.Array.create n in
  let meta = Array.make (n lsl 2) (-1) in
  let heads = Array.make t.nb (-1) in
  let idx = ref 0 in
  let copy_entry e link_head =
    let i = !idx in
    incr idx;
    Float.Array.unsafe_set times i (Float.Array.unsafe_get t.times e);
    Array.unsafe_set meta ((i lsl 2) + m_seq) (seq_of t e);
    Array.unsafe_set meta ((i lsl 2) + m_pay) (pay_of t e);
    Array.unsafe_set meta ((i lsl 2) + m_next) link_head;
    i
  in
  for s = 0 to t.nb - 1 do
    let e = ref (Array.unsafe_get t.heads s) in
    while !e >= 0 do
      Array.unsafe_set heads s (copy_entry !e (Array.unsafe_get heads s));
      e := next_of t !e
    done
  done;
  let ovf_head = ref (-1) in
  let e = ref t.ovf_head in
  while !e >= 0 do
    ovf_head := copy_entry !e !ovf_head;
    e := next_of t !e
  done;
  let fstate = Float.Array.create n_fstate in
  Float.Array.blit t.fstate 0 fstate 0 n_fstate;
  { times;
    meta;
    used = n;
    free_head = -1;
    heads;
    nb = t.nb;
    mask = t.mask;
    cur_b = t.cur_b;
    wheel_size = t.wheel_size;
    ovf_head = !ovf_head;
    ovf_size = t.ovf_size;
    ovf_min_seq = t.ovf_min_seq;
    min_entry = -1;
    min_prev = -1;
    min_slot = -1;
    size = n;
    next_seq = t.next_seq;
    pops_since_adjust = t.pops_since_adjust;
    pops_since_resize = t.pops_since_resize;
    fstate }

let clear t =
  t.size <- 0;
  t.wheel_size <- 0;
  t.used <- 0;
  t.free_head <- -1;
  Array.fill t.heads 0 t.nb (-1);
  t.ovf_head <- -1;
  t.ovf_size <- 0;
  t.ovf_min_seq <- max_int;
  t.min_entry <- -1;
  t.min_prev <- -1;
  t.min_slot <- -1;
  t.pops_since_adjust <- 0;
  t.pops_since_resize <- 0;
  Float.Array.set t.fstate f_ovf_min Float.infinity;
  Float.Array.set t.fstate f_last_pop Float.nan;
  Float.Array.set t.fstate f_gap Float.nan;
  Float.Array.set t.fstate f_ckpt Float.nan
