(* Fixed-effort multilevel importance splitting for the overflow
   probability of the admission-controlled load process.

   The stationary overflow probability (time fraction with load > c) is
   decomposed along an excursion of the load above a base level
   B = m + z0 (c - m):

     p_f  =  nu_1  x  prod_{l=1}^{K-1} p_l  x  E[T_over]

   where nu_1 is the rate of excursion starts (up-crossings of the first
   threshold L_1 after the load was at or below B), p_l is the
   conditional probability that an excursion entering level l reaches
   L_{l+1} before falling back to B, and E[T_over] is the expected time
   spent above capacity per excursion that reaches L_K = c.  Each factor
   is estimated by direct simulation from genealogy-derived RNG streams:
   a pilot run measures nu_1 and harvests entrance snapshots at L_1;
   each stage restores clones from the previous stage's entrance pool
   and runs them to the next threshold (or back to B); the top stage
   accumulates overflow time until the excursion ends.

   Determinism: every trial's randomness comes from
   [Rng.derive ~seed ~tag:"<seed_tag>:level=<l>:trial=<i>"], entrance
   states are assigned by trial index ([pool.(i mod n)]), and chunking
   is independent of [jobs], so results are bit-identical for every
   [jobs] value (the same contract as [Parallel]). *)

type config = {
  base_level : float;
  levels : int;
  trials_per_level : int;
  pilot_time : float;
  calibration_time : float;
  max_pool : int;
  max_trial_events : int;
  batches : int;
  seed_tag : string;
}

let default_config ~pilot_time =
  { base_level = 0.25;
    levels = 6;
    trials_per_level = 2048;
    pilot_time;
    calibration_time = pilot_time /. 10.0;
    max_pool = 64;
    max_trial_events = 1_000_000;
    batches = 16;
    seed_tag = "splitting" }

type level_stat = {
  threshold : float;
  trials : int;
  successes : int;
  p_hat : float;
  rel_var : float;
  pool : int;
  level_events : int;
}

type result = {
  p_f : float;
  ci_rel : float;
  mean_load : float;
  base_threshold : float;
  thresholds : float array;
  excursion_rate : float;
  excursions : int;
  mean_overflow_time : float;
  top_trials : int;
  level_stats : level_stat array;
  pilot_events : int;
  pilot_p_f : float;
  total_events : int;
  truncated_trials : int;
}

let m_entrances =
  Mbac_telemetry.Metrics.Handle.counter "splitting_pilot_entrances_total"

let m_trials = Mbac_telemetry.Metrics.Handle.counter "splitting_trials_total"

let m_crossings =
  Mbac_telemetry.Metrics.Handle.counter "splitting_level_crossings_total"

let m_truncated =
  Mbac_telemetry.Metrics.Handle.counter "splitting_truncated_trials_total"

let m_clone_population =
  Mbac_telemetry.Metrics.Handle.gauge "splitting_clone_population"

let validate cfg =
  if not (cfg.base_level > 0.0 && cfg.base_level < 1.0) then
    invalid_arg "Splitting: base_level outside (0,1)";
  if cfg.levels < 1 then invalid_arg "Splitting: levels < 1";
  if cfg.trials_per_level < 2 then
    invalid_arg "Splitting: trials_per_level < 2";
  if cfg.pilot_time <= 0.0 then invalid_arg "Splitting: pilot_time <= 0";
  if cfg.calibration_time <= 0.0 then
    invalid_arg "Splitting: calibration_time <= 0";
  if cfg.max_pool < 1 then invalid_arg "Splitting: max_pool < 1";
  if cfg.max_trial_events < 1 then
    invalid_arg "Splitting: max_trial_events < 1";
  if cfg.batches < 2 then invalid_arg "Splitting: batches < 2"

(* Mean and relative variance of the mean via consecutive batch means
   (the per-trial observations of one stage are i.i.d. given the
   entrance pool, but batching keeps the machinery uniform with the
   naive estimator and is robust to pool-induced correlation). *)
let batch_rel_var values n_batches =
  let n = Array.length values in
  let b = min n_batches n in
  let mean = Array.fold_left ( +. ) 0.0 values /. float_of_int n in
  if b < 2 || mean = 0.0 then (mean, infinity)
  else begin
    let means =
      Array.init b (fun k ->
          let lo = k * n / b and hi = (k + 1) * n / b in
          let acc = ref 0.0 in
          for i = lo to hi - 1 do
            acc := !acc +. values.(i)
          done;
          !acc /. float_of_int (hi - lo))
    in
    let bm = Array.fold_left ( +. ) 0.0 means /. float_of_int b in
    let sq = ref 0.0 in
    Array.iter
      (fun x -> sq := !sq +. ((x -. bm) *. (x -. bm)))
      means;
    (* sample variance of the batch means / number of batches *)
    let var_mean = !sq /. float_of_int (b - 1) /. float_of_int b in
    (mean, var_mean /. (mean *. mean))
  end

(* One clone trial of an intermediate stage: from an entrance at level l,
   run until the load exceeds [target] (success) or falls to/below
   [base] (failure).  The entrance state may already sit beyond [target]
   (a single rate jump can cross several thresholds), so the conditions
   are checked before the first step.

   Trials lean on the simulator's stepping API: [step] advances exactly
   one event (never a timestamp batch), so the load is inspected between
   every pair of events, and snapshot/restore deep-copies the event
   queue.  [Calendar_queue.copy] compacts the entry pool to the pending
   count — O(pending), same as the old heap copy — so entrance snapshots
   harvested per level stay cheap to hold and to restore from. *)
type trial = {
  success : bool;
  truncated : bool;
  trial_events : int;
  snap : Continuous_load.snapshot option;
}

let run_trial ~entrance ~rng ~base ~target ~max_events ~want_snapshot =
  let sim = Continuous_load.restore ~rng entrance in
  let start_events = Continuous_load.events_processed sim in
  let rec loop () =
    let l = Continuous_load.load sim in
    let ev = Continuous_load.events_processed sim - start_events in
    if l > target then
      { success = true; truncated = false; trial_events = ev;
        snap =
          (if want_snapshot then Some (Continuous_load.snapshot sim)
           else None) }
    else if l <= base then
      { success = false; truncated = false; trial_events = ev; snap = None }
    else if ev >= max_events then
      { success = false; truncated = true; trial_events = ev; snap = None }
    else if not (Continuous_load.has_pending sim) then
      { success = false; truncated = false; trial_events = ev; snap = None }
    else begin
      Continuous_load.step sim;
      loop ()
    end
  in
  let t = loop () in
  Mbac_telemetry.Metrics.Handle.inc m_trials;
  if t.success then Mbac_telemetry.Metrics.Handle.inc m_crossings;
  if t.truncated then Mbac_telemetry.Metrics.Handle.inc m_truncated;
  t

(* One top-stage trial: from an entrance above capacity, accumulate the
   time spent above capacity until the excursion ends (load back at or
   below [base]). *)
let run_top_trial ~entrance ~rng ~base ~capacity ~max_events =
  let sim = Continuous_load.restore ~rng entrance in
  let start_events = Continuous_load.events_processed sim in
  let t_over = ref 0.0 in
  let truncated = ref false in
  let continue = ref true in
  while !continue do
    let l = Continuous_load.load sim in
    let ev = Continuous_load.events_processed sim - start_events in
    if l <= base then continue := false
    else if ev >= max_events then begin
      truncated := true;
      continue := false
    end
    else if not (Continuous_load.has_pending sim) then continue := false
    else begin
      let t0 = Continuous_load.now sim in
      Continuous_load.step sim;
      if l > capacity then
        t_over := !t_over +. (Continuous_load.now sim -. t0)
    end
  done;
  Mbac_telemetry.Metrics.Handle.inc m_trials;
  if !truncated then Mbac_telemetry.Metrics.Handle.inc m_truncated;
  ( !t_over,
    Continuous_load.events_processed sim - start_events,
    !truncated )

(* Fan [n] trials out over the pool in fixed-size chunks.  The chunk
   size is independent of [jobs], and each trial's stream is derived
   from its global index, so the concatenated results are identical for
   every [jobs] value. *)
let chunked ?jobs n f =
  let chunk = 64 in
  let n_chunks = (n + chunk - 1) / chunk in
  let tasks =
    List.init n_chunks (fun c () ->
        let lo = c * chunk and hi = min n ((c + 1) * chunk) in
        List.init (hi - lo) (fun k -> f (lo + k)))
  in
  List.concat (Parallel.run_tasks ?jobs tasks)

let run ?jobs ~seed cfg sim_cfg ~controller ~make_source =
  validate cfg;
  let capacity = sim_cfg.Continuous_load.capacity in
  let derive tag = Mbac_stats.Rng.derive ~seed ~tag:(cfg.seed_tag ^ tag) in
  (* -------------------- pilot: calibrate, then collect ------------- *)
  let pilot =
    Mbac_telemetry.Profile.span "splitting.pilot" @@ fun () ->
    let sim =
      Continuous_load.start (derive ":pilot") sim_cfg ~controller
        ~make_source
    in
    let step_until t_end =
      while
        Continuous_load.now sim < t_end && Continuous_load.has_pending sim
      do
        Continuous_load.step sim
      done
    in
    step_until sim_cfg.Continuous_load.warmup;
    (* time-weighted mean load over the calibration window *)
    let cal_stats = Mbac_stats.Welford.Weighted.create () in
    let cal_end =
      Continuous_load.now sim +. cfg.calibration_time
    in
    while
      Continuous_load.now sim < cal_end && Continuous_load.has_pending sim
    do
      let t0 = Continuous_load.now sim in
      let l0 = Continuous_load.load sim in
      Continuous_load.step sim;
      Mbac_stats.Welford.Weighted.add cal_stats
        ~weight:(Continuous_load.now sim -. t0)
        l0
    done;
    let m = Mbac_stats.Welford.Weighted.mean cal_stats in
    if not (m < capacity) then
      invalid_arg
        (Printf.sprintf
           "Splitting: calibrated mean load %g is not below capacity %g \
            (nothing rare to estimate)"
           m capacity);
    let z j =
      cfg.base_level
      +. ((1.0 -. cfg.base_level) *. float_of_int j
          /. float_of_int cfg.levels)
    in
    let base = m +. (cfg.base_level *. (capacity -. m)) in
    let thresholds =
      Array.init cfg.levels (fun j ->
          if j = cfg.levels - 1 then capacity
          else m +. (z (j + 1) *. (capacity -. m)))
    in
    let l1 = thresholds.(0) in
    (* collect entrances: up-crossings of L_1 after touching base *)
    let collect_start = Continuous_load.now sim in
    let collect_end = collect_start +. cfg.pilot_time in
    let armed = ref (Continuous_load.load sim <= base) in
    let entrances = ref 0 in
    let pool = ref [] in
    let pool_n = ref 0 in
    let ovf_time = ref 0.0 in
    while
      Continuous_load.now sim < collect_end
      && Continuous_load.has_pending sim
    do
      let t0 = Continuous_load.now sim in
      let l0 = Continuous_load.load sim in
      Continuous_load.step sim;
      if l0 > capacity then
        ovf_time := !ovf_time +. (Continuous_load.now sim -. t0);
      let l = Continuous_load.load sim in
      if !armed && l > l1 then begin
        incr entrances;
        Mbac_telemetry.Metrics.Handle.inc m_entrances;
        if !pool_n < cfg.max_pool then begin
          pool := Continuous_load.snapshot sim :: !pool;
          incr pool_n
        end;
        armed := false
      end
      else if (not !armed) && l <= base then armed := true
    done;
    let elapsed = Continuous_load.now sim -. collect_start in
    ( m, base, thresholds, !entrances,
      Array.of_list (List.rev !pool),
      (if elapsed > 0.0 then float_of_int !entrances /. elapsed else 0.0),
      (if elapsed > 0.0 then !ovf_time /. elapsed else 0.0),
      Continuous_load.events_processed sim )
  in
  let ( mean_load, base, thresholds, excursions, pool0, nu1, pilot_p_f,
        pilot_events ) =
    pilot
  in
  let total_events = ref pilot_events in
  let truncated_trials = ref 0 in
  let degenerate ~level_stats =
    { p_f = 0.0; ci_rel = infinity; mean_load; base_threshold = base;
      thresholds; excursion_rate = nu1; excursions;
      mean_overflow_time = 0.0; top_trials = 0; level_stats; pilot_events;
      pilot_p_f; total_events = !total_events;
      truncated_trials = !truncated_trials }
  in
  if excursions = 0 || Array.length pool0 = 0 then degenerate ~level_stats:[||]
  else begin
    (* -------------------- intermediate stages ----------------------- *)
    (* Successful trials with index below this budget carry a snapshot
       out (bounding transient memory); the next pool keeps the first
       [max_pool] of them in trial order. *)
    let snapshot_budget =
      min cfg.trials_per_level (max (4 * cfg.max_pool) 256)
    in
    let n_stages = cfg.levels - 1 in
    let level_stats = ref [] in
    let pool = ref pool0 in
    let alive = ref true in
    let stage = ref 0 in
    while !alive && !stage < n_stages do
      let l = !stage + 1 in
      let target = thresholds.(l) in
      let entrance_pool = !pool in
      let pool_len = Array.length entrance_pool in
      Mbac_telemetry.Metrics.Handle.set_gauge m_clone_population
        (float_of_int pool_len);
      let trials =
        Mbac_telemetry.Profile.span "splitting.level" @@ fun () ->
        chunked ?jobs cfg.trials_per_level (fun i ->
            run_trial
              ~entrance:entrance_pool.(i mod pool_len)
              ~rng:(derive (Printf.sprintf ":level=%d:trial=%d" l i))
              ~base ~target ~max_events:cfg.max_trial_events
              ~want_snapshot:(i < snapshot_budget))
      in
      let successes = ref 0 in
      let next_pool = ref [] in
      let next_n = ref 0 in
      let level_events = ref 0 in
      List.iter
        (fun t ->
          level_events := !level_events + t.trial_events;
          if t.truncated then incr truncated_trials;
          if t.success then begin
            incr successes;
            match t.snap with
            | Some s when !next_n < cfg.max_pool ->
                next_pool := s :: !next_pool;
                incr next_n
            | Some _ | None -> ()
          end)
        trials;
      total_events := !total_events + !level_events;
      let indicators =
        Array.of_list
          (List.map (fun t -> if t.success then 1.0 else 0.0) trials)
      in
      let p_hat, rel_var = batch_rel_var indicators cfg.batches in
      level_stats :=
        { threshold = target; trials = cfg.trials_per_level;
          successes = !successes; p_hat; rel_var; pool = pool_len;
          level_events = !level_events }
        :: !level_stats;
      pool := Array.of_list (List.rev !next_pool);
      if !successes = 0 || Array.length !pool = 0 then alive := false;
      incr stage
    done;
    let level_stats = Array.of_list (List.rev !level_stats) in
    if not !alive then degenerate ~level_stats
    else begin
      (* -------------------- top stage: E[T_over] --------------------- *)
      let entrance_pool = !pool in
      let pool_len = Array.length entrance_pool in
      Mbac_telemetry.Metrics.Handle.set_gauge m_clone_population
        (float_of_int pool_len);
      let tops =
        Mbac_telemetry.Profile.span "splitting.level" @@ fun () ->
        chunked ?jobs cfg.trials_per_level (fun i ->
            run_top_trial
              ~entrance:entrance_pool.(i mod pool_len)
              ~rng:(derive (Printf.sprintf ":level=top:trial=%d" i))
              ~base ~capacity ~max_events:cfg.max_trial_events)
      in
      List.iter
        (fun (_, ev, trunc) ->
          total_events := !total_events + ev;
          if trunc then incr truncated_trials)
        tops;
      let times = Array.of_list (List.map (fun (t, _, _) -> t) tops) in
      let mean_t, rel_var_t = batch_rel_var times cfg.batches in
      let product =
        Array.fold_left (fun acc ls -> acc *. ls.p_hat) 1.0 level_stats
      in
      let p_f = nu1 *. product *. mean_t in
      (* Delta method across independent stages; the excursion-rate term
         uses the Poisson approximation Var(nu_1)/nu_1^2 ~ 1/entrances. *)
      let rel_var_total =
        Array.fold_left
          (fun acc ls -> acc +. ls.rel_var)
          ((1.0 /. float_of_int excursions) +. rel_var_t)
          level_stats
      in
      let ci_rel =
        if Float.is_nan p_f || p_f <= 0.0 then infinity
        else 1.96 *. sqrt rel_var_total
      in
      { p_f; ci_rel; mean_load; base_threshold = base; thresholds;
        excursion_rate = nu1; excursions; mean_overflow_time = mean_t;
        top_trials = cfg.trials_per_level; level_stats; pilot_events;
        pilot_p_f; total_events = !total_events;
        truncated_trials = !truncated_trials }
    end
  end

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>splitting: p_f = %.4g (95%% rel CI half-width %.2g)@,\
     mean load %.4g, base %.4g, levels %d, excursion rate %.4g (%d \
     excursions)@,\
     mean overflow time %.4g over %d top trials@,"
    r.p_f r.ci_rel r.mean_load r.base_threshold
    (Array.length r.thresholds) r.excursion_rate r.excursions
    r.mean_overflow_time r.top_trials;
  Array.iteri
    (fun i ls ->
      Format.fprintf fmt
        "level %d: threshold %.4g p = %.4g (%d/%d, pool %d, events %d)@,"
        (i + 1) ls.threshold ls.p_hat ls.successes ls.trials ls.pool
        ls.level_events)
    r.level_stats;
  Format.fprintf fmt
    "pilot: %d events, direct p_f %.4g@,total events %d, truncated trials \
     %d@]"
    r.pilot_events r.pilot_p_f r.total_events r.truncated_trials
