(* Per-event mutable floats live in their own all-float record so the
   stores stay unboxed. *)
type hot = {
  mutable time : float;
  mutable next_sample : float; (* absolute time of the next grid point *)
}

type t = {
  capacity : float;
  warmup : float;
  batch : Mbac_stats.Batch_means.t;
  load_stats : Mbac_stats.Welford.Weighted.t;
  hot : hot;
  sample_spacing : float; (* infinity = point sampling disabled *)
  mutable samples : int;
  mutable sample_hits : int;
}

let create ?sample_spacing ~capacity ~warmup ~batch_length () =
  if capacity <= 0.0 then invalid_arg "Measurement.create: capacity <= 0";
  if warmup < 0.0 then invalid_arg "Measurement.create: warmup < 0";
  if batch_length <= 0.0 then invalid_arg "Measurement.create: batch_length <= 0";
  (match sample_spacing with
  | Some s when s <= 0.0 ->
      invalid_arg "Measurement.create: sample_spacing <= 0"
  | Some _ | None -> ());
  { capacity; warmup;
    batch = Mbac_stats.Batch_means.create ~batch_length;
    load_stats = Mbac_stats.Welford.Weighted.create ();
    hot =
      { time = 0.0;
        next_sample =
          (match sample_spacing with Some s -> warmup +. s | None -> infinity) };
    sample_spacing =
      (match sample_spacing with Some s -> s | None -> infinity);
    samples = 0;
    sample_hits = 0 }

(* Point samples falling inside [t0, t1) see this constant load.  Kept
   out of line (Closure does not inline functions containing loops); it
   runs at most once per sample_spacing of simulated time. *)
let sample_loop t ~t0 ~t1 ~load =
  while t.hot.next_sample < t1 do
    if t.hot.next_sample >= t0 then begin
      t.samples <- t.samples + 1;
      if load > t.capacity then t.sample_hits <- t.sample_hits + 1
    end;
    t.hot.next_sample <- t.hot.next_sample +. t.sample_spacing
  done

let[@inline] record t ~t0 ~t1 ~load =
  if t1 > t0 then begin
    if t.hot.next_sample < t1 then sample_loop t ~t0 ~t1 ~load;
    let t0 = Float.max t0 t.warmup in
    if t1 > t0 then begin
      let w = t1 -. t0 in
      let indicator = if load > t.capacity then 1.0 else 0.0 in
      Mbac_stats.Batch_means.add t.batch ~weight:w indicator;
      Mbac_stats.Welford.Weighted.add t.load_stats ~weight:w load;
      t.hot.time <- t.hot.time +. w
    end
  end

let copy t =
  { capacity = t.capacity; warmup = t.warmup;
    batch = Mbac_stats.Batch_means.copy t.batch;
    load_stats = Mbac_stats.Welford.Weighted.copy t.load_stats;
    hot = { time = t.hot.time; next_sample = t.hot.next_sample };
    sample_spacing = t.sample_spacing;
    samples = t.samples;
    sample_hits = t.sample_hits }

let measured_time t = t.hot.time

let point_fraction t =
  if t.samples = 0 then nan
  else float_of_int t.sample_hits /. float_of_int t.samples

let point_samples t = t.samples
let overflow_fraction t = Mbac_stats.Batch_means.mean t.batch
let load_mean t = Mbac_stats.Welford.Weighted.mean t.load_stats
let load_std t = Mbac_stats.Welford.Weighted.std t.load_stats

let gaussian_fit_overflow t =
  let std = load_std t in
  if std <= 0.0 then if load_mean t > t.capacity then 1.0 else 0.0
  else
    Mbac_stats.Gaussian.overflow_probability ~capacity:t.capacity
      ~mean:(load_mean t) ~std

let relative_half_width t ~confidence =
  Mbac_stats.Batch_means.relative_half_width t.batch ~confidence

let batches t = Mbac_stats.Batch_means.completed_batches t.batch

type verdict =
  | Running
  | Converged of { p_f : float; ci_rel : float }
  | Below_target of { p_f_fit : float; upper_bound : float }

let check_stop ?(confidence = 0.95) ?(rel_ci = 0.2) ?(min_batches = 10) t
    ~target =
  if batches t < min_batches then Running
  else begin
    let mean = overflow_fraction t in
    let hw = Mbac_stats.Batch_means.half_width t.batch ~confidence in
    if mean > 0.0 && hw /. mean <= rel_ci then
      Converged { p_f = mean; ci_rel = hw /. mean }
    else if mean +. hw <= target /. 100.0 then
      Below_target
        { p_f_fit = gaussian_fit_overflow t; upper_bound = mean +. hw }
    else Running
  end

let final_estimate t ~target =
  let mean = overflow_fraction t in
  if Float.is_nan mean then (gaussian_fit_overflow t, `Gaussian_fit)
  else if mean > 0.0 && mean > target /. 100.0 then (mean, `Direct)
  else if mean > 0.0 then (mean, `Direct)
  else (gaussian_fit_overflow t, `Gaussian_fit)
