type task_outcome = Done | Failed of exn * Printexc.raw_backtrace

let m_tasks = Mbac_telemetry.Metrics.Handle.counter "parallel_tasks_total"

let m_skipped =
  Mbac_telemetry.Metrics.Handle.counter "parallel_tasks_skipped_total"

(* ---------- pool sizing ---------- *)

let env_int ~default name =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some v when v >= 0 -> v
      | Some _ | None -> default)

(* Minor collections are stop-the-world across every running domain, so
   a pool wider than the machine is a guaranteed loss: each minor GC
   must wake domains the OS has descheduled (measured on a 1-core
   container: 10-20% slower at --jobs 4 than serial, before this cap
   existed).  The cap therefore defaults to the core count (bounded at
   8 for saturated CI machines); MBAC_DOMAIN_CAP overrides it in either
   direction — the determinism suite raises it to exercise real
   multi-domain schedules even on narrow machines. *)
let domain_cap () =
  match env_int ~default:0 "MBAC_DOMAIN_CAP" with
  | 0 -> max 1 (min 8 (Domain.recommended_domain_count ()))
  | cap -> cap

let default_jobs () = domain_cap ()

let requested_jobs = function
  | Some j when j < 1 -> invalid_arg "Parallel.run_tasks: jobs < 1"
  | Some j -> j
  | None -> default_jobs ()

let effective_jobs ?jobs n =
  let requested = requested_jobs jobs in
  if n <= 0 then 0 else min (min requested n) (domain_cap ())

(* ---------- per-domain GC tuning ---------- *)

(* Minor collections are stop-the-world across every running domain in
   OCaml 5, so under a pool each one costs a full-pool synchronization
   (catastrophic when domains outnumber cores: the barrier waits on the
   OS scheduler).  Worker domains therefore start with a larger minor
   heap than the 256kw default, trading a few MB per worker for ~8x
   fewer global pauses on allocation-heavy replications.  The setting is
   per-domain ([Gc.set] only affects the calling domain), so the
   submitting domain's configuration is never touched. *)
let worker_minor_heap_words () =
  env_int ~default:(1 lsl 21) "MBAC_POOL_MINOR_HEAP"

let worker_space_overhead () = env_int ~default:0 "MBAC_POOL_SPACE_OVERHEAD"

let tune_worker_gc () =
  let g = Gc.get () in
  let minor = worker_minor_heap_words () in
  let overhead = worker_space_overhead () in
  let g =
    if minor > g.Gc.minor_heap_size then { g with Gc.minor_heap_size = minor }
    else g
  in
  let g =
    if overhead > 0 then { g with Gc.space_overhead = overhead } else g
  in
  Gc.set g

(* ---------- the pool ---------- *)

(* Everything a finished task hands back to the submitting domain.  The
   cells are accumulated in worker-local lists and scattered into the
   indexed array only after the join, so no two domains ever store into
   adjacent slots of a shared array while the pool runs (the previous
   design wrote boxed options into [results] from every worker — false
   sharing on the slot cache lines, and cross-domain pressure on the
   minor-GC write barrier). *)
type 'a cell = {
  index : int;
  shard : Mbac_telemetry.Shard.t;
  result : 'a option;
  outcome : task_outcome;
}

let default_chunk ~width n =
  if width <= 1 then 1 else max 1 (min 32 (n / (width * 8)))

let run_tasks ?jobs ?chunk ?init ?(count_tasks = true) tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let width = effective_jobs ?jobs n in
    let chunk =
      match chunk with
      | Some c when c < 1 -> invalid_arg "Parallel.run_tasks: chunk < 1"
      | Some c -> c
      | None -> default_chunk ~width n
    in
    (* Lowest index of any task that has raised so far (max_int while
       the sweep is healthy).  A task is skipped only when its index is
       beyond the earliest known failure, so the submission-order-first
       failing task always executes — a plain boolean flag would let a
       fast-failing later task cancel it and change which exception the
       caller sees depending on the schedule — while everything queued
       after the failure is dropped instead of burning the budget. *)
    let first_failed = Atomic.make max_int in
    let rec note_failure i =
      let cur = Atomic.get first_failed in
      if i < cur && not (Atomic.compare_and_set first_failed cur i) then
        note_failure i
    in
    let exec i =
      let shard = Mbac_telemetry.Shard.create () in
      let result, outcome =
        try
          let r =
            Mbac_telemetry.Shard.with_current shard (fun () ->
                Mbac_telemetry.Profile.span "parallel.task" (fun () ->
                    tasks.(i) ()))
          in
          (Some r, Done)
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          note_failure i;
          (None, Failed (e, bt))
      in
      { index = i; shard; result; outcome }
    in
    let results = Array.make n None in
    if width <= 1 then begin
      (* Serial path: same claiming order, no domains — this is what
         [--jobs 1] means and what the determinism contract is checked
         against.  Cancellation applies here too: tasks after the first
         failure never start. *)
      (match init with Some f -> f () | None -> ());
      for i = 0 to n - 1 do
        if i < Atomic.get first_failed then results.(i) <- Some (exec i)
      done
    end
    else begin
      let next = Atomic.make 0 in
      (* One cell-list slot per worker; each slot is written exactly
         once, by its own worker, at worker exit. *)
      let buffers = Array.make width [] in
      let work ~helper wid =
        if helper then tune_worker_gc ();
        (match init with Some f -> f () | None -> ());
        let acc = ref [] in
        let continue = ref true in
        while !continue do
          let lo = Atomic.fetch_and_add next chunk in
          (* [first_failed] only decreases and claims only increase, so
             once a whole chunk lies past the earliest failure every
             later chunk does too — stop claiming. *)
          if lo >= n || lo > Atomic.get first_failed then continue := false
          else begin
            let hi = min n (lo + chunk) in
            let i = ref lo in
            while !i < hi do
              if !i < Atomic.get first_failed then acc := exec !i :: !acc;
              incr i
            done
          end
        done;
        buffers.(wid) <- !acc
      in
      let helpers =
        Array.init (width - 1) (fun k ->
            Domain.spawn (fun () -> work ~helper:true (k + 1)))
      in
      work ~helper:false 0;
      Array.iter Domain.join helpers;
      Array.iter
        (List.iter (fun cell -> results.(cell.index) <- Some cell))
        buffers
    end;
    (* Merge telemetry in submission order (also for failed tasks, so
       their partial counts are not lost; tasks skipped by cancellation
       have no shard and contribute nothing), then re-raise the first
       failure in submission order; otherwise unwrap in submission
       order.  Claims happen in index order and only failures raise the
       flag, so the submission-order-first failing task is always
       executed and recorded: the re-raised exception is the same at
       every pool width. *)
    Array.iter
      (function
        | Some cell -> Mbac_telemetry.Shard.merge_into_current cell.shard
        | None -> ())
      results;
    let skipped = Array.fold_left
        (fun acc slot -> if slot = None then acc + 1 else acc) 0 results
    in
    (* Executed tasks (failed ones included) are counted once here, in
       the submitting shard, rather than once inside each task shard:
       the merged total is identical, but tasks skip a per-task handle
       resolution and tasks that record nothing keep an empty shard
       (which the merge then skips outright). *)
    if count_tasks then begin
      Mbac_telemetry.Metrics.Handle.inc m_tasks ~by:(n - skipped);
      if skipped > 0 then
        Mbac_telemetry.Metrics.Handle.inc m_skipped ~by:skipped
    end;
    Array.iter
      (function
        | Some { outcome = Failed (e, bt); _ } ->
            Printexc.raise_with_backtrace e bt
        | Some _ | None -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Some { result = Some r; outcome = Done; _ } -> r
           | Some _ | None ->
               (* unreachable: no task failed (we would have re-raised),
                  hence no task was skipped, so every slot holds Done *)
               assert false)
         results)
  end

let map ?jobs ?chunk ?init f xs =
  run_tasks ?jobs ?chunk ?init (List.map (fun x () -> f x) xs)
