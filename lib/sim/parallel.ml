type task_outcome = Done | Failed of exn * Printexc.raw_backtrace

let m_tasks = Mbac_telemetry.Metrics.Handle.counter "parallel_tasks_total"

let default_jobs () = Domain.recommended_domain_count ()

(* One shared work queue (an atomic cursor over the task array), one
   result slot per task.  Workers claim the next unclaimed index and
   write into their own slot, so the only contended word is the cursor;
   [Domain.join] publishes every slot back to the submitting domain. *)
let run_tasks ?jobs tasks =
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    let jobs =
      match jobs with
      | Some j when j < 1 -> invalid_arg "Parallel.run_tasks: jobs < 1"
      | Some j -> min j n
      | None -> min (default_jobs ()) n
    in
    let results = Array.make n None in
    (* Each task runs against a fresh telemetry shard (on the serial
       path too, so [--jobs 1] has identical semantics); the shards are
       merged into the submitting domain's shard in submission order
       after the join, which keeps aggregated telemetry byte-identical
       for every pool width. *)
    let exec i =
      let shard = Mbac_telemetry.Shard.create () in
      let outcome =
        try
          let r =
            Mbac_telemetry.Shard.with_current shard (fun () ->
                Mbac_telemetry.Profile.span "parallel.task" (fun () ->
                    Mbac_telemetry.Metrics.Handle.inc m_tasks;
                    tasks.(i) ()))
          in
          (Some r, Done)
        with e -> (None, Failed (e, Printexc.get_raw_backtrace ()))
      in
      results.(i) <- Some (shard, outcome)
    in
    if jobs = 1 then
      (* Serial path: same claiming order, no domains — this is what
         [--jobs 1] means and what the determinism contract is checked
         against. *)
      for i = 0 to n - 1 do exec i done
    else begin
      let next = Atomic.make 0 in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          exec i;
          worker ()
        end
      in
      let helpers = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join helpers
    end;
    (* Merge telemetry in submission order (also for failed tasks, so
       their partial counts are not lost), then re-raise the first
       failure in submission order; otherwise unwrap in submission
       order. *)
    Array.iter
      (function
        | Some (shard, _) -> Mbac_telemetry.Shard.merge_into_current shard
        | None -> ())
      results;
    Array.iter
      (function
        | Some (_, (_, Failed (e, bt))) -> Printexc.raise_with_backtrace e bt
        | Some (_, (_, Done)) | None -> ())
      results;
    Array.to_list
      (Array.map
         (function
           | Some (_, (Some r, Done)) -> r
           | Some _ | None ->
               (* unreachable: every slot is filled with Done above *)
               assert false)
         results)
  end

let map ?jobs f xs = run_tasks ?jobs (List.map (fun x () -> f x) xs)
