let m_loss_episodes =
  Mbac_telemetry.Metrics.Handle.counter "buffer_loss_episodes_total"

type t = {
  capacity : float;
  size : float;
  mutable level : float;
  mutable total_time : float;
  mutable loss_time : float;
  mutable lost : float;
  mutable offered : float;
  mutable losing : bool;
  mutable loss_episodes : int;
}

let create ~capacity ~size =
  if capacity <= 0.0 then invalid_arg "Fluid_buffer.create: capacity <= 0";
  if size <= 0.0 then invalid_arg "Fluid_buffer.create: size <= 0";
  { capacity; size; level = 0.0; total_time = 0.0; loss_time = 0.0;
    lost = 0.0; offered = 0.0; losing = false; loss_episodes = 0 }

let level t = t.level

let copy t =
  { capacity = t.capacity; size = t.size; level = t.level;
    total_time = t.total_time; loss_time = t.loss_time; lost = t.lost;
    offered = t.offered; losing = t.losing;
    loss_episodes = t.loss_episodes }

let feed t ~duration ~load =
  if duration < 0.0 then invalid_arg "Fluid_buffer.feed: negative duration";
  if duration > 0.0 then begin
    t.total_time <- t.total_time +. duration;
    t.offered <- t.offered +. (load *. duration);
    let drift = load -. t.capacity in
    if drift > 0.0 then begin
      (* filling: time until the buffer hits its ceiling *)
      let to_full = (t.size -. t.level) /. drift in
      if to_full >= duration then begin
        t.level <- t.level +. (drift *. duration);
        t.losing <- false
      end
      else begin
        t.level <- t.size;
        let overflow_span = duration -. to_full in
        t.loss_time <- t.loss_time +. overflow_span;
        t.lost <- t.lost +. (drift *. overflow_span);
        if not t.losing then begin
          t.losing <- true;
          t.loss_episodes <- t.loss_episodes + 1;
          Mbac_telemetry.Metrics.Handle.inc m_loss_episodes
        end
      end
    end
    else begin
      t.losing <- false;
      if drift < 0.0 then
        (* draining; clamp at empty *)
        t.level <- Float.max 0.0 (t.level +. (drift *. duration))
      (* drift = 0: level unchanged *)
    end
  end

let reset_statistics t =
  t.total_time <- 0.0;
  t.loss_time <- 0.0;
  t.lost <- 0.0;
  t.offered <- 0.0

let total_time t = t.total_time
let loss_time t = t.loss_time
let loss_episodes t = t.loss_episodes

let loss_time_fraction t =
  if t.total_time <= 0.0 then 0.0 else t.loss_time /. t.total_time

let lost_volume t = t.lost
let offered_volume t = t.offered
let loss_ratio t = if t.offered <= 0.0 then 0.0 else t.lost /. t.offered
