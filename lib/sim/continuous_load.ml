type arrival = [ `Infinite | `Poisson of float ]
type link = [ `Bufferless | `Renegotiation_blocking | `Buffered of float ]

type config = {
  capacity : float;
  holding_time_mean : float;
  arrival : arrival;
  link : link;
  utility : Mbac.Utility.t;
  warmup : float;
  batch_length : float;
  target_p_q : float;
  rel_ci : float;
  confidence : float;
  min_batches : int;
  check_every_events : int;
  max_time : float;
  max_events : int;
  max_flows : int;
}

let default_config ~capacity ~holding_time_mean ~target_p_q =
  { capacity; holding_time_mean;
    arrival = `Infinite;
    link = `Bufferless;
    utility = Mbac.Utility.Step;
    warmup = holding_time_mean;
    batch_length = holding_time_mean /. 5.0;
    target_p_q;
    rel_ci = 0.2;
    confidence = 0.95;
    min_batches = 16;
    check_every_events = 20_000;
    max_time = 1e12;
    max_events = 200_000_000;
    max_flows = 10_000_000 }

type result = {
  p_f : float;
  estimate_kind : [ `Direct | `Gaussian_fit ];
  converged : bool;
  ci_rel : float;
  mean_flows : float;
  mean_load : float;
  std_load : float;
  utilization : float;
  mean_utility : float;
  admitted : int;
  departed : int;
  blocked : int;
  blocking_probability : float;
  reneg_attempts : int;
  reneg_failures : int;
  reneg_failure_probability : float;
  buffer_loss_fraction : float;
  p_f_point : float;
  sim_time : float;
  events : int;
}

(* Events are packed into the queue's native-int payload so pushing and
   popping never allocates: a 2-bit tag, a 24-bit flow slot, and the
   slot's generation above.  The generation stamps queue entries against
   slot reuse: a [Change] left pending by a departed flow must not touch
   the slot's next occupant, so handlers compare the payload generation
   with the slot's current one and drop stale events — the job flow ids
   did under the old hashtable (ids were never reused). *)
let tag_arrive = 0
let tag_depart = 1
let tag_change = 2
let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let[@inline] encode ~tag ~slot ~gen = tag lor (slot lsl 2) lor (gen lsl (slot_bits + 2))
let[@inline] payload_tag p = p land 3
let[@inline] payload_slot p = (p lsr 2) land slot_mask
let[@inline] payload_gen p = p lsr (slot_bits + 2)

(* Per-event mutable floats live in their own all-float record so the
   simulator's stores stay unboxed (a mutable float field in the mixed
   [state] record below would box on every store). *)
type hot = {
  mutable now : float;
  mutable sum_rate : float;
  mutable sum_sq : float;
  (* telemetry: overflow-episode tracking and periodic trace snapshots *)
  mutable ovf_start : float;   (* nan when not in an overflow episode *)
  mutable ovf_excess : float;  (* ∫(load - capacity)dt over the episode *)
  mutable ovf_time : float;
  mutable next_snapshot : float;
  mutable next_window : float; (* next time-series boundary; inf when off *)
}

(* Time-series cursors: the flow/event totals live in plain [state]
   fields on the hot path and are folded into the telemetry shard once
   per run — or, when [--series-out] wants live windows, once per window
   boundary.  The cursor remembers how much of each total has been
   folded so far, so boundary syncs add exact deltas and the end-of-run
   remainder reproduces today's one-shot totals bit for bit. *)
type cursor = {
  mutable c_events : int;
  mutable c_admitted : int;
  mutable c_departed : int;
  mutable c_blocked : int;
  mutable c_reneg_attempts : int;
  mutable c_reneg_failures : int;
  mutable c_time : float;
}

(* Dense flow table: a structure of arrays indexed by slot, with a
   free-slot stack.  [granted] is the rate the link has actually
   allocated to the flow; it equals the source's desired rate except
   when an upward renegotiation was blocked under
   [`Renegotiation_blocking].  A slot is live iff [sources.(slot)] is
   [Some _]; its generation counts how many flows have occupied it. *)
type state = {
  cfg : config;
  arrival_mean : float; (* 1/rate for `Poisson, hoisted; nan for `Infinite *)
  rng : Mbac_stats.Rng.t;
  controller : Mbac.Controller.t;
  make_source : Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t;
  queue : Calendar_queue.t;
  mutable granted : Float.Array.t;
  mutable sources : Mbac_traffic.Source.t option array;
  mutable gens : int array;
  mutable free : int array;      (* stack of vacant slots *)
  mutable free_top : int;
  mutable slot_limit : int;      (* slots ever used (high-water mark) *)
  meas : Measurement.t;
  buffer : Fluid_buffer.t option;
  utility_stats : Mbac_stats.Welford.Weighted.t;
  flow_count_stats : Mbac_stats.Welford.Weighted.t;
  hot : hot;
  mutable n : int;
  mutable admitted : int;
  mutable departed : int;
  mutable blocked : int;
  mutable reneg_attempts : int;
  mutable reneg_failures : int;
  mutable events : int;
  mutable ovf_episodes : int;
  cursor : cursor;
}

(* Episode counters fire on every overflow-episode boundary; resolve
   their names once instead of hashing per update. *)
let m_ovf_episodes = Mbac_telemetry.Metrics.Handle.counter "sim_overflow_episodes_total"
let m_ovf_time = Mbac_telemetry.Metrics.Handle.sum "sim_overflow_time"
let m_ovf_excess = Mbac_telemetry.Metrics.Handle.sum "sim_overflow_excess_volume"

(* Normalized by batch_length so the histogram shape is identical across
   sweep cells with different batch lengths (shards with
   differently-shaped same-name histograms cannot merge). *)
let m_ovf_duration =
  Mbac_telemetry.Metrics.Handle.histogram "sim_overflow_episode_duration_batches"
    ~lo:0.0 ~hi:20.0 ~bins:40

(* Same duration, raw (seconds of virtual time) in a log-bucketed
   quantile histogram: scale-free, so episodes past 20 batch lengths —
   overflow of the fixed-bucket shape above — keep a readable p99. *)
let m_ovf_duration_s =
  Mbac_telemetry.Metrics.Handle.qhist "sim_overflow_episode_duration_seconds"

(* Run totals, folded in by [sync_counters] (per window boundary when
   the time series is on, once per run otherwise). *)
let m_events = Mbac_telemetry.Metrics.Handle.counter "sim_events_total"
let m_admitted = Mbac_telemetry.Metrics.Handle.counter "sim_flows_admitted_total"
let m_departed = Mbac_telemetry.Metrics.Handle.counter "sim_flows_departed_total"
let m_blocked = Mbac_telemetry.Metrics.Handle.counter "sim_flows_blocked_total"
let m_reneg_attempts =
  Mbac_telemetry.Metrics.Handle.counter "sim_reneg_attempts_total"
let m_reneg_failures =
  Mbac_telemetry.Metrics.Handle.counter "sim_reneg_failures_total"
let m_time = Mbac_telemetry.Metrics.Handle.sum "sim_time_simulated"

(* Sampled at each window close, for the series' gauge section. *)
let g_window_flows = Mbac_telemetry.Metrics.Handle.gauge "sim_window_flows"
let g_window_load = Mbac_telemetry.Metrics.Handle.gauge "sim_window_load"

let[@inline] observation s =
  Mbac.Observation.make ~now:s.hot.now ~n:s.n ~sum_rate:s.hot.sum_rate
    ~sum_sq:s.hot.sum_sq

(* Counter the slow drift of the incrementally-maintained sums by
   recomputing them from scratch periodically (linear slot scan). *)
let resync_sums s =
  let sum = ref 0.0 and sq = ref 0.0 in
  for slot = 0 to s.slot_limit - 1 do
    match Array.unsafe_get s.sources slot with
    | Some _ ->
        let g = Float.Array.unsafe_get s.granted slot in
        sum := !sum +. g;
        sq := !sq +. (g *. g)
    | None -> ()
  done;
  s.hot.sum_rate <- !sum;
  s.hot.sum_sq <- !sq

let grow_flow_table s =
  let cap = Array.length s.sources in
  let ncap = if cap = 0 then 1024 else 2 * cap in
  let granted = Float.Array.create ncap in
  Float.Array.blit s.granted 0 granted 0 cap;
  let sources = Array.make ncap None in
  Array.blit s.sources 0 sources 0 cap;
  let gens = Array.make ncap 0 in
  Array.blit s.gens 0 gens 0 cap;
  s.granted <- granted;
  s.sources <- sources;
  s.gens <- gens

let alloc_slot s =
  if s.free_top > 0 then begin
    s.free_top <- s.free_top - 1;
    s.free.(s.free_top)
  end
  else begin
    if s.slot_limit = Array.length s.sources then grow_flow_table s;
    if s.slot_limit > slot_mask then
      invalid_arg "Continuous_load: more concurrent flows than slot bits";
    let slot = s.slot_limit in
    s.slot_limit <- slot + 1;
    slot
  end

let free_slot s slot =
  s.sources.(slot) <- None;
  s.gens.(slot) <- s.gens.(slot) + 1;
  if s.free_top = Array.length s.free then begin
    let ncap = max 1024 (2 * Array.length s.free) in
    let free = Array.make ncap 0 in
    Array.blit s.free 0 free 0 s.free_top;
    s.free <- free
  end;
  s.free.(s.free_top) <- slot;
  s.free_top <- s.free_top + 1

(* Returns the granted rate so callers can advance their observation
   incrementally ({!Mbac.Observation.admit}) instead of re-reading the
   state they just updated. *)
let admit_one s =
  let source = s.make_source s.rng ~start:s.hot.now in
  let slot = alloc_slot s in
  let gen = s.gens.(slot) in
  let r = Mbac_traffic.Source.rate source in
  Float.Array.set s.granted slot r;
  s.sources.(slot) <- Some source;
  s.n <- s.n + 1;
  s.hot.sum_rate <- s.hot.sum_rate +. r;
  s.hot.sum_sq <- s.hot.sum_sq +. (r *. r);
  s.admitted <- s.admitted + 1;
  let holding =
    Mbac_stats.Sample.exponential s.rng ~mean:s.cfg.holding_time_mean
  in
  Calendar_queue.push s.queue ~time:(s.hot.now +. holding)
    (encode ~tag:tag_depart ~slot ~gen);
  Calendar_queue.push s.queue ~time:(Mbac_traffic.Source.next_change source)
    (encode ~tag:tag_change ~slot ~gen);
  r

(* Infinite offered load: admit while the controller allows more flows
   than are present.  Each admission is observed before the next
   decision, so the controller reacts to its own admissions.  [obs0]
   must describe the current state — callers have always just built it
   for their own controller notification, so the common no-admission
   case costs no fresh observation. *)
let try_admit s obs0 =
  let obs = ref obs0 in
  let continue = ref true in
  while !continue do
    let m = Mbac.Controller.admissible s.controller !obs in
    if s.n < m && s.n < s.cfg.max_flows then begin
      let r = admit_one s in
      let obs' = Mbac.Observation.admit !obs ~rate:r in
      Mbac.Controller.observe s.controller obs';
      Mbac.Controller.on_admit s.controller obs';
      obs := obs'
    end
    else continue := false
  done

(* One arriving flow under the Poisson process: a single yes/no decision. *)
let handle_arrival s =
  let obs = observation s in
  Mbac.Controller.observe s.controller obs;
  let m = Mbac.Controller.admissible s.controller obs in
  if s.n < m && s.n < s.cfg.max_flows then begin
    let r = admit_one s in
    let obs' = Mbac.Observation.admit obs ~rate:r in
    Mbac.Controller.observe s.controller obs';
    Mbac.Controller.on_admit s.controller obs'
  end
  else s.blocked <- s.blocked + 1;
  match s.cfg.arrival with
  | `Poisson _ ->
      Calendar_queue.push s.queue
        ~time:
          (s.hot.now
          +. Mbac_stats.Sample.exponential s.rng ~mean:s.arrival_mean)
        tag_arrive
  | `Infinite -> ()

(* Overflow-episode bookkeeping over one load-constant segment: an
   episode opens when the aggregate first exceeds capacity and closes on
   the first segment back at or under it.  Counters are always on; the
   start/end trace events only render when tracing is enabled (and their
   field lists are only built then). *)
let close_overflow_episode s ~t0 =
  let duration = t0 -. s.hot.ovf_start in
  s.hot.ovf_time <- s.hot.ovf_time +. duration;
  Mbac_telemetry.Metrics.Handle.inc m_ovf_episodes;
  Mbac_telemetry.Metrics.Handle.add m_ovf_time duration;
  Mbac_telemetry.Metrics.Handle.add m_ovf_excess s.hot.ovf_excess;
  Mbac_telemetry.Metrics.Handle.observe m_ovf_duration
    (duration /. s.cfg.batch_length);
  Mbac_telemetry.Metrics.Handle.observe_q m_ovf_duration_s duration;
  if Mbac_telemetry.Trace.enabled () then
    Mbac_telemetry.Trace.emit ~t:t0 ~kind:"overflow_end"
      [ ("start", Mbac_telemetry.Trace.Float s.hot.ovf_start);
        ("duration", Mbac_telemetry.Trace.Float duration);
        ("excess_volume", Mbac_telemetry.Trace.Float s.hot.ovf_excess) ];
  s.hot.ovf_start <- nan;
  s.hot.ovf_excess <- 0.0

let[@inline] track_overflow s ~t0 ~t1 =
  let over = s.hot.sum_rate > s.cfg.capacity in
  let in_episode = not (Float.is_nan s.hot.ovf_start) in
  if over && not in_episode then begin
    s.hot.ovf_start <- t0;
    s.hot.ovf_excess <- 0.0;
    s.ovf_episodes <- s.ovf_episodes + 1;
    if Mbac_telemetry.Trace.enabled () then
      Mbac_telemetry.Trace.emit ~t:t0 ~kind:"overflow_start"
        [ ("load", Mbac_telemetry.Trace.Float s.hot.sum_rate);
          ("capacity", Mbac_telemetry.Trace.Float s.cfg.capacity);
          ("n", Mbac_telemetry.Trace.Int s.n) ]
  end
  else if (not over) && in_episode then close_overflow_episode s ~t0;
  if over then
    s.hot.ovf_excess <-
      s.hot.ovf_excess +. ((s.hot.sum_rate -. s.cfg.capacity) *. (t1 -. t0))

(* Periodic estimator snapshots on a fixed virtual-time grid (one per
   batch), emitted only while tracing: the running cross-sectional
   estimate next to the measured overflow fraction so far. *)
let emit_snapshots s ~t1 =
  while s.hot.next_snapshot <= t1 do
    let t = s.hot.next_snapshot in
    s.hot.next_snapshot <- s.hot.next_snapshot +. s.cfg.batch_length;
    let obs = observation s in
    Mbac_telemetry.Trace.emit ~t ~kind:"estimator"
      [ ("n", Mbac_telemetry.Trace.Int s.n);
        ("load", Mbac_telemetry.Trace.Float s.hot.sum_rate);
        ("mu_hat", Mbac_telemetry.Trace.Float (Mbac.Observation.cross_mean obs));
        ("sigma_hat",
         Mbac_telemetry.Trace.Float (sqrt (Mbac.Observation.cross_variance obs)));
        ("p_f_running",
         Mbac_telemetry.Trace.Float (Measurement.overflow_fraction s.meas)) ]
  done

(* Fold the not-yet-folded part of each running total into the shard.
   Unconditional increments (even by 0) so every counter registers —
   the snapshot's name set must not depend on what a run happened to
   do.  [upto] caps the virtual-time delta at the window boundary being
   closed (or the final [now] at run end). *)
let sync_counters s ~upto =
  let c = s.cursor in
  Mbac_telemetry.Metrics.Handle.inc m_events ~by:(s.events - c.c_events);
  c.c_events <- s.events;
  Mbac_telemetry.Metrics.Handle.inc m_admitted ~by:(s.admitted - c.c_admitted);
  c.c_admitted <- s.admitted;
  Mbac_telemetry.Metrics.Handle.inc m_departed ~by:(s.departed - c.c_departed);
  c.c_departed <- s.departed;
  Mbac_telemetry.Metrics.Handle.inc m_blocked ~by:(s.blocked - c.c_blocked);
  c.c_blocked <- s.blocked;
  Mbac_telemetry.Metrics.Handle.inc m_reneg_attempts
    ~by:(s.reneg_attempts - c.c_reneg_attempts);
  c.c_reneg_attempts <- s.reneg_attempts;
  Mbac_telemetry.Metrics.Handle.inc m_reneg_failures
    ~by:(s.reneg_failures - c.c_reneg_failures);
  c.c_reneg_failures <- s.reneg_failures;
  Mbac_telemetry.Metrics.Handle.add m_time (upto -. c.c_time);
  c.c_time <- upto

(* Time-series boundaries crossed by the segment ending at [t1]: close
   each window on the virtual-time grid — fold counter deltas, sample
   the window gauges, render the line.  Out of line and gated on the
   enabled flag in [record_segment], so the hot path pays one atomic
   read when the series is off. *)
let emit_windows s ~t1 =
  while s.hot.next_window <= t1 do
    let b = s.hot.next_window in
    s.hot.next_window <- b +. Mbac_telemetry.Timeseries.interval ();
    sync_counters s ~upto:b;
    Mbac_telemetry.Metrics.Handle.set_gauge g_window_flows (float_of_int s.n);
    Mbac_telemetry.Metrics.Handle.set_gauge g_window_load s.hot.sum_rate;
    Mbac_telemetry.Timeseries.emit_window ~t:b
  done

let feed_buffer s b ~t0 ~t1 =
  (* feed through the warm-up (to build up a realistic level) but
     discard the counters at the warm-up boundary, like the overflow
     measurement does *)
  if t0 < s.cfg.warmup && t1 > s.cfg.warmup then begin
    Fluid_buffer.feed b ~duration:(s.cfg.warmup -. t0) ~load:s.hot.sum_rate;
    Fluid_buffer.reset_statistics b;
    Fluid_buffer.feed b ~duration:(t1 -. s.cfg.warmup) ~load:s.hot.sum_rate
  end
  else begin
    Fluid_buffer.feed b ~duration:(t1 -. t0) ~load:s.hot.sum_rate;
    if t1 <= s.cfg.warmup then Fluid_buffer.reset_statistics b
  end

(* No loops anywhere on the common path below (the snapshot loop is out
   of line and trace-gated), so this inlines into [process_event] and
   the segment endpoints never box. *)
let[@inline] record_segment s ~t1 =
  let t0 = s.hot.now in
  Measurement.record s.meas ~t0 ~t1 ~load:s.hot.sum_rate;
  if t1 > t0 then track_overflow s ~t0 ~t1;
  if Mbac_telemetry.Trace.enabled () then emit_snapshots s ~t1;
  if Mbac_telemetry.Timeseries.enabled () then emit_windows s ~t1;
  (match s.buffer with
  | Some b when t1 > t0 -> feed_buffer s b ~t0 ~t1
  | Some _ | None -> ());
  if t1 > s.cfg.warmup then begin
    let t0' = Float.max t0 s.cfg.warmup in
    let w = t1 -. t0' in
    Mbac_stats.Welford.Weighted.add s.flow_count_stats ~weight:w
      (float_of_int s.n);
    let f =
      Mbac.Utility.delivered_fraction ~capacity:s.cfg.capacity
        ~load:s.hot.sum_rate
    in
    Mbac_stats.Welford.Weighted.add s.utility_stats ~weight:w
      (Mbac.Utility.eval s.cfg.utility f)
  end

let handle_depart s slot gen =
  match s.sources.(slot) with
  | Some _ when s.gens.(slot) = gen ->
      let r = Float.Array.get s.granted slot in
      free_slot s slot;
      s.n <- s.n - 1;
      s.hot.sum_rate <- s.hot.sum_rate -. r;
      s.hot.sum_sq <- s.hot.sum_sq -. (r *. r);
      if s.n = 0 then begin
        (* clear float-cancellation residue *)
        s.hot.sum_rate <- 0.0;
        s.hot.sum_sq <- 0.0
      end;
      s.departed <- s.departed + 1;
      let obs = observation s in
      Mbac.Controller.observe s.controller obs;
      Mbac.Controller.on_depart s.controller obs;
      (match s.cfg.arrival with
      | `Infinite -> try_admit s obs
      | `Poisson _ -> ())
  | Some _ | None -> (
      (* cannot happen for departures; kept safe *)
      match s.cfg.arrival with
      | `Infinite -> try_admit s (observation s)
      | `Poisson _ -> ())

let handle_change s slot gen =
  match s.sources.(slot) with
  | Some source when s.gens.(slot) = gen ->
      let old_granted = Float.Array.get s.granted slot in
      Mbac_traffic.Source.fire source ~now:s.hot.now;
      let desired = Mbac_traffic.Source.rate source in
      s.reneg_attempts <- s.reneg_attempts + 1;
      (* The paper's RCBR service (§2): "bandwidth renegotiations fail
         when the current aggregate bandwidth demand exceeds the link
         capacity".  We count an upward renegotiation as failed when
         the post-change aggregate demand exceeds capacity.  The
         dynamics remain those of the bufferless demand model: the
         admission controller sees demands (a failed flow keeps
         requesting), so blocking does not silently deflate the
         measured load. *)
      (match s.cfg.link with
      | `Renegotiation_blocking
        when desired > old_granted
             && s.hot.sum_rate -. old_granted +. desired > s.cfg.capacity ->
          s.reneg_failures <- s.reneg_failures + 1
      | `Renegotiation_blocking | `Bufferless | `Buffered _ -> ());
      Float.Array.set s.granted slot desired;
      s.hot.sum_rate <- s.hot.sum_rate +. desired -. old_granted;
      s.hot.sum_sq <-
        s.hot.sum_sq +. (desired *. desired) -. (old_granted *. old_granted);
      Calendar_queue.push s.queue
        ~time:(Mbac_traffic.Source.next_change source)
        (encode ~tag:tag_change ~slot ~gen);
      let obs = observation s in
      Mbac.Controller.observe s.controller obs;
      (match s.cfg.arrival with
      | `Infinite -> try_admit s obs
      | `Poisson _ -> ())
  | Some _ | None -> (
      (* stale event of a departed flow (or of a reused slot) *)
      match s.cfg.arrival with
      | `Infinite -> try_admit s (observation s)
      | `Poisson _ -> ())

(* Pop and process the earliest event.  Reading the minimum in place
   (rather than through [pop]'s option/pair) keeps the loop
   allocation-free. *)
let process_event s =
  let te = Calendar_queue.min_time s.queue in
  let payload = Calendar_queue.min_payload s.queue in
  Calendar_queue.drop_min s.queue;
  record_segment s ~t1:te;
  s.hot.now <- te;
  let tag = payload_tag payload in
  if tag = tag_change then
    handle_change s (payload_slot payload) (payload_gen payload)
  else if tag = tag_depart then
    handle_depart s (payload_slot payload) (payload_gen payload)
  else handle_arrival s

(* ------------------------------------------------------------------ *)
(* Stepping API: the same machinery as [run], exposed one event at a
   time so the rare-event splitting engine can watch the load between
   events and snapshot/clone mid-run. *)

type sim = state

let start rng cfg ~controller ~make_source =
  if cfg.capacity <= 0.0 then invalid_arg "Continuous_load.run: capacity <= 0";
  if cfg.holding_time_mean <= 0.0 then
    invalid_arg "Continuous_load.run: holding_time_mean <= 0";
  (match cfg.arrival with
  | `Poisson rate when rate <= 0.0 ->
      invalid_arg "Continuous_load.run: Poisson rate <= 0"
  | `Poisson _ | `Infinite -> ());
  Mbac.Controller.reset controller;
  let s =
    { cfg;
      arrival_mean =
        (match cfg.arrival with
        | `Poisson rate -> 1.0 /. rate
        | `Infinite -> nan);
      rng; controller; make_source;
      queue = Calendar_queue.create ();
      granted = Float.Array.create 0;
      sources = [||];
      gens = [||];
      free = [||];
      free_top = 0;
      slot_limit = 0;
      meas =
        Measurement.create ~sample_spacing:cfg.batch_length
          ~capacity:cfg.capacity ~warmup:cfg.warmup
          ~batch_length:cfg.batch_length ();
      buffer =
        (match cfg.link with
        | `Buffered size -> Some (Fluid_buffer.create ~capacity:cfg.capacity ~size)
        | `Bufferless | `Renegotiation_blocking -> None);
      utility_stats = Mbac_stats.Welford.Weighted.create ();
      flow_count_stats = Mbac_stats.Welford.Weighted.create ();
      hot =
        { now = 0.0; sum_rate = 0.0; sum_sq = 0.0;
          ovf_start = nan; ovf_excess = 0.0; ovf_time = 0.0;
          next_snapshot = cfg.warmup;
          next_window =
            (if Mbac_telemetry.Timeseries.enabled () then
               Mbac_telemetry.Timeseries.interval ()
             else Float.infinity) };
      n = 0; admitted = 0; departed = 0; blocked = 0;
      reneg_attempts = 0; reneg_failures = 0; events = 0;
      ovf_episodes = 0;
      cursor =
        { c_events = 0; c_admitted = 0; c_departed = 0; c_blocked = 0;
          c_reneg_attempts = 0; c_reneg_failures = 0; c_time = 0.0 } }
  in
  Mbac_telemetry.Timeseries.start_run
    ~label:(Mbac.Controller.name controller);
  if Mbac_telemetry.Trace.enabled () then
    Mbac_telemetry.Trace.emit ~t:0.0 ~kind:"run_start"
      [ ("controller",
         Mbac_telemetry.Trace.Str (Mbac.Controller.name controller));
        ("capacity", Mbac_telemetry.Trace.Float cfg.capacity) ];
  (let obs0 = observation s in
   Mbac.Controller.observe controller obs0;
   match cfg.arrival with
   | `Infinite -> try_admit s obs0
   | `Poisson _ ->
       Calendar_queue.push s.queue
         ~time:(Mbac_stats.Sample.exponential s.rng ~mean:s.arrival_mean)
         tag_arrive);
  s

let[@inline] now s = s.hot.now
let[@inline] load s = s.hot.sum_rate
let[@inline] flows s = s.n
let[@inline] events_processed s = s.events
let[@inline] has_pending s = not (Calendar_queue.is_empty s.queue)
let measurement s = s.meas

let[@inline] step s =
  process_event s;
  s.events <- s.events + 1;
  if s.events mod 4_000_000 = 0 then resync_sums s

(* Deep copy.  Everything mutable is duplicated; [cfg] and [make_source]
   are immutable/stateless and shared.  Every source in the clone is
   re-bound to the clone's [rng] — the same single stream that
   [admit_one] hands to future sources — so a clone's randomness is
   fully determined by the [rng] passed here. *)
let clone s ~rng =
  { cfg = s.cfg; arrival_mean = s.arrival_mean; rng;
    controller = Mbac.Controller.copy s.controller;
    make_source = s.make_source;
    queue = Calendar_queue.copy s.queue;
    granted =
      (let len = Float.Array.length s.granted in
       let g = Float.Array.create len in
       Float.Array.blit s.granted 0 g 0 len;
       g);
    sources =
      Array.map
        (function
          | None -> None
          | Some src -> Some (Mbac_traffic.Source.copy src rng))
        s.sources;
    gens = Array.copy s.gens;
    free = Array.copy s.free;
    free_top = s.free_top;
    slot_limit = s.slot_limit;
    meas = Measurement.copy s.meas;
    buffer = Option.map Fluid_buffer.copy s.buffer;
    utility_stats = Mbac_stats.Welford.Weighted.copy s.utility_stats;
    flow_count_stats = Mbac_stats.Welford.Weighted.copy s.flow_count_stats;
    hot =
      { now = s.hot.now; sum_rate = s.hot.sum_rate; sum_sq = s.hot.sum_sq;
        ovf_start = s.hot.ovf_start; ovf_excess = s.hot.ovf_excess;
        ovf_time = s.hot.ovf_time; next_snapshot = s.hot.next_snapshot;
        next_window = s.hot.next_window };
    n = s.n; admitted = s.admitted; departed = s.departed;
    blocked = s.blocked; reneg_attempts = s.reneg_attempts;
    reneg_failures = s.reneg_failures; events = s.events;
    ovf_episodes = s.ovf_episodes;
    cursor =
      { c_events = s.cursor.c_events; c_admitted = s.cursor.c_admitted;
        c_departed = s.cursor.c_departed; c_blocked = s.cursor.c_blocked;
        c_reneg_attempts = s.cursor.c_reneg_attempts;
        c_reneg_failures = s.cursor.c_reneg_failures;
        c_time = s.cursor.c_time } }

type snapshot = state

let snapshot s = clone s ~rng:(Mbac_stats.Rng.copy s.rng)

let restore ?rng snap =
  let rng =
    match rng with
    | Some r -> r
    | None -> Mbac_stats.Rng.copy snap.rng
  in
  clone snap ~rng

let run rng cfg ~controller ~make_source =
  let s = start rng cfg ~controller ~make_source in
  let stopped = ref None in
  let running = ref true in
  (* Batched dispatch: one [drain_min] pass processes every event
     sharing the minimum timestamp without re-entering the queue's
     minimum search.  The callback is the body of [step] — [drain_min]
     invokes it while the event is still the queue minimum, so the
     event's own time is a cached in-place read.  Timestamp collisions
     are measure-zero under the exponential clocks, so batches are
     singletons in practice and the stop checks below fire with exactly
     the per-event cadence the stepping API gives; allocated once, not
     per event. *)
  let dispatch payload =
    let te = Calendar_queue.min_time s.queue in
    record_segment s ~t1:te;
    s.hot.now <- te;
    let tag = payload_tag payload in
    if tag = tag_change then
      handle_change s (payload_slot payload) (payload_gen payload)
    else if tag = tag_depart then
      handle_depart s (payload_slot payload) (payload_gen payload)
    else handle_arrival s;
    s.events <- s.events + 1;
    if s.events mod 4_000_000 = 0 then resync_sums s
  in
  (* Events processed since the last stop check.  A [mod] test on the
     running total would skip a check whenever a same-timestamp
     [drain_min] batch jumps the counter across the boundary without
     landing on it — the check then waits for the total to hit an exact
     multiple again, which it may never do. *)
  let since_check = ref 0 in
  while !running do
    if Calendar_queue.is_empty s.queue then
      running := false (* cannot happen while flows exist *)
    else begin
      let before = s.events in
      Calendar_queue.drain_min s.queue ~f:dispatch;
      since_check := !since_check + (s.events - before);
      if !since_check >= cfg.check_every_events then begin
        since_check := 0;
        match
          Measurement.check_stop ~confidence:cfg.confidence ~rel_ci:cfg.rel_ci
            ~min_batches:cfg.min_batches s.meas ~target:cfg.target_p_q
        with
        | Measurement.Running -> ()
        | v ->
            stopped := Some v;
            running := false
      end
    end;
    if s.hot.now >= cfg.max_time || s.events >= cfg.max_events then
      running := false
  done;
  (* Close an overflow episode left open at the end of the run, and fold
     the run's totals into the telemetry shard (exact totals, added once,
     instead of per-event increments on the hot path). *)
  if not (Float.is_nan s.hot.ovf_start) then begin
    let duration = s.hot.now -. s.hot.ovf_start in
    s.hot.ovf_time <- s.hot.ovf_time +. duration;
    Mbac_telemetry.Metrics.Handle.inc m_ovf_episodes;
    Mbac_telemetry.Metrics.Handle.add m_ovf_time duration;
    Mbac_telemetry.Metrics.Handle.add m_ovf_excess s.hot.ovf_excess;
    Mbac_telemetry.Metrics.Handle.observe m_ovf_duration
      (duration /. s.cfg.batch_length);
    Mbac_telemetry.Metrics.Handle.observe_q m_ovf_duration_s duration;
    Mbac_telemetry.Trace.emit ~t:s.hot.now ~kind:"overflow_end"
      [ ("start", Mbac_telemetry.Trace.Float s.hot.ovf_start);
        ("duration", Mbac_telemetry.Trace.Float duration);
        ("excess_volume", Mbac_telemetry.Trace.Float s.hot.ovf_excess);
        ("truncated", Mbac_telemetry.Trace.Bool true) ]
  end;
  sync_counters s ~upto:s.hot.now;
  Mbac_telemetry.Metrics.inc "sim_runs_total";
  (match s.buffer with
  | Some b ->
      Mbac_telemetry.Metrics.add "sim_buffer_lost_volume"
        (Fluid_buffer.lost_volume b);
      Mbac_telemetry.Metrics.add "sim_buffer_loss_time" (Fluid_buffer.loss_time b)
  | None -> ());
  let p_f, estimate_kind, converged, ci_rel =
    match !stopped with
    | Some (Measurement.Converged { p_f; ci_rel }) -> (p_f, `Direct, true, ci_rel)
    | Some (Measurement.Below_target { p_f_fit; _ }) ->
        (p_f_fit, `Gaussian_fit, true, nan)
    | Some Measurement.Running | None ->
        let est, kind = Measurement.final_estimate s.meas ~target:cfg.target_p_q in
        let ci =
          Measurement.relative_half_width s.meas ~confidence:cfg.confidence
        in
        (est, kind, false, ci)
  in
  let mean_load = Measurement.load_mean s.meas in
  let result =
  { p_f; estimate_kind; converged; ci_rel;
    mean_flows = Mbac_stats.Welford.Weighted.mean s.flow_count_stats;
    mean_load;
    std_load = Measurement.load_std s.meas;
    utilization = mean_load /. cfg.capacity;
    mean_utility = Mbac_stats.Welford.Weighted.mean s.utility_stats;
    admitted = s.admitted;
    departed = s.departed;
    blocked = s.blocked;
    blocking_probability =
      (match cfg.arrival with
      | `Infinite -> nan
      | `Poisson _ ->
          let offered = s.blocked + s.admitted in
          if offered = 0 then nan
          else float_of_int s.blocked /. float_of_int offered);
    reneg_attempts = s.reneg_attempts;
    reneg_failures = s.reneg_failures;
    reneg_failure_probability =
      (if s.reneg_attempts = 0 then nan
       else float_of_int s.reneg_failures /. float_of_int s.reneg_attempts);
    buffer_loss_fraction =
      (match s.buffer with
      | Some b -> Fluid_buffer.loss_time_fraction b
      | None -> nan);
    p_f_point = Measurement.point_fraction s.meas;
    sim_time = s.hot.now;
    events = s.events }
  in
  Mbac_telemetry.Metrics.set_gauge "sim_last_p_f" result.p_f;
  Mbac_telemetry.Metrics.set_gauge "sim_last_utilization" result.utilization;
  Mbac_telemetry.Trace.emit ~t:s.hot.now ~kind:"run_end"
    [ ("controller", Mbac_telemetry.Trace.Str (Mbac.Controller.name controller));
      ("p_f", Mbac_telemetry.Trace.Float result.p_f);
      ("utilization", Mbac_telemetry.Trace.Float result.utilization);
      ("overflow_episodes", Mbac_telemetry.Trace.Int s.ovf_episodes);
      ("overflow_time", Mbac_telemetry.Trace.Float s.hot.ovf_time);
      ("admitted", Mbac_telemetry.Trace.Int s.admitted);
      ("events", Mbac_telemetry.Trace.Int s.events) ];
  (* Close the partial window left open at run end (it carries the
     run-total counters folded above and the headline gauges). *)
  if
    Mbac_telemetry.Timeseries.enabled ()
    && s.hot.now > s.hot.next_window -. Mbac_telemetry.Timeseries.interval ()
  then begin
    Mbac_telemetry.Metrics.Handle.set_gauge g_window_flows (float_of_int s.n);
    Mbac_telemetry.Metrics.Handle.set_gauge g_window_load s.hot.sum_rate;
    Mbac_telemetry.Timeseries.emit_window ~t:s.hot.now
  end;
  result

let pp_result fmt r =
  Format.fprintf fmt
    "p_f=%.4g (%s%s, ci_rel=%.2g) util=%.3f mean_flows=%.1f load=%.2f±%.2f \
     adm=%d dep=%d t=%.3g ev=%d"
    r.p_f
    (match r.estimate_kind with `Direct -> "direct" | `Gaussian_fit -> "fit")
    (if r.converged then "" else ",capped")
    r.ci_rel r.utilization r.mean_flows r.mean_load r.std_load r.admitted
    r.departed r.sim_time r.events;
  if not (Float.is_nan r.blocking_probability) then
    Format.fprintf fmt " blocking=%.4g" r.blocking_probability;
  if not (Float.is_nan r.reneg_failure_probability) && r.reneg_failures > 0
  then Format.fprintf fmt " reneg_fail=%.4g" r.reneg_failure_probability;
  if not (Float.is_nan r.buffer_loss_fraction) then
    Format.fprintf fmt " buffer_loss=%.4g" r.buffer_loss_fraction
