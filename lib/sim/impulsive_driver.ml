type admission = { m_0 : int; mu_hat : float; sigma_hat : float }

(* Metric names resolved once at module initialisation; updates in the
   replication loops below are plain array stores. *)
let m_bursts = Mbac_telemetry.Metrics.Handle.counter "impulsive_bursts_total"

let m_admitted =
  Mbac_telemetry.Metrics.Handle.counter "impulsive_flows_admitted_total"

let m_rejected =
  Mbac_telemetry.Metrics.Handle.counter "impulsive_flows_rejected_total"

let m_m0_fraction =
  Mbac_telemetry.Metrics.Handle.histogram "impulsive_m0_fraction" ~lo:0.0
    ~hi:1.05 ~bins:21

let admit_burst rng ~n_offered ~capacity ~alpha_ce ~make_source =
  if n_offered < 2 then invalid_arg "Impulsive_driver: requires n_offered >= 2";
  let sources = Array.init n_offered (fun _ -> make_source rng ~start:0.0) in
  let rates = Array.map Mbac_traffic.Source.rate sources in
  (* eqn (7) over the first [m] offered flows *)
  let estimate m =
    let sum = ref 0.0 and sq = ref 0.0 in
    for i = 0 to m - 1 do
      sum := !sum +. rates.(i);
      sq := !sq +. (rates.(i) *. rates.(i))
    done;
    let mf = float_of_int m in
    let mu_hat = !sum /. mf in
    let var_hat =
      Float.max 0.0 ((!sq -. (mf *. mu_hat *. mu_hat)) /. (mf -. 1.0))
    in
    (mu_hat, sqrt var_hat)
  in
  (* The paper's model (§3.1, footnote 2) bases the estimate on the ~M_0
     flows being admitted, not on the whole offered burst.  Iterate the
     criterion to its fixed point: estimate over m flows, recompute the
     admissible count, repeat until stable. *)
  let rec fixpoint m k =
    let mu_hat, sigma_hat = estimate m in
    let m' =
      if mu_hat <= 0.0 then n_offered
      else
        min n_offered
          (max 2
             (Mbac.Criterion.admissible ~capacity ~mu:mu_hat ~sigma:sigma_hat
                ~alpha:alpha_ce))
    in
    if m' = m || k >= 20 then (m', mu_hat, sigma_hat) else fixpoint m' (k + 1)
  in
  let m_0, mu_hat, sigma_hat = fixpoint n_offered 0 in
  Mbac_telemetry.Metrics.Handle.inc m_bursts;
  Mbac_telemetry.Metrics.Handle.inc ~by:m_0 m_admitted;
  Mbac_telemetry.Metrics.Handle.inc ~by:(n_offered - m_0) m_rejected;
  (* Fixed shape across all burst sizes: the admitted fraction M_0/N. *)
  Mbac_telemetry.Metrics.Handle.observe m_m0_fraction
    (float_of_int m_0 /. float_of_int n_offered);
  if Mbac_telemetry.Trace.enabled () then
    Mbac_telemetry.Trace.emit ~sampled:true ~t:0.0 ~kind:"burst"
      [ ("n_offered", Mbac_telemetry.Trace.Int n_offered);
        ("m_0", Mbac_telemetry.Trace.Int m_0);
        ("mu_hat", Mbac_telemetry.Trace.Float mu_hat);
        ("sigma_hat", Mbac_telemetry.Trace.Float sigma_hat) ];
  ({ m_0; mu_hat; sigma_hat }, Array.sub sources 0 m_0)

(* The impulsive model has no clock; its virtual time for the windowed
   series ([--series-out]) is the burst index, so --series-interval T
   means "one window per T bursts". *)
let series_stride () =
  max 1 (int_of_float (Mbac_telemetry.Timeseries.interval ()))

let series_start ~variant ~n_offered =
  if Mbac_telemetry.Timeseries.enabled () then
    Mbac_telemetry.Timeseries.start_run
      ~label:(Printf.sprintf "impulsive-%s[n=%d]" variant n_offered)

let[@inline] series_tick ~stride rep =
  if rep mod stride = 0 then
    Mbac_telemetry.Timeseries.emit_window ~t:(float_of_int rep)

let series_finish ~stride ~replications =
  if Mbac_telemetry.Timeseries.enabled () && replications mod stride <> 0 then
    Mbac_telemetry.Timeseries.emit_window ~t:(float_of_int replications)

let m0_samples rng ~replications ~n_offered ~capacity ~alpha_ce ~make_source =
  series_start ~variant:"m0" ~n_offered;
  let stride = series_stride () in
  let samples =
    Array.init replications (fun i ->
        let adm, _ =
          admit_burst rng ~n_offered ~capacity ~alpha_ce ~make_source
        in
        series_tick ~stride (i + 1);
        float_of_int adm.m_0)
  in
  series_finish ~stride ~replications;
  samples

(* Advance every source to time [t] by firing pending changes, batched
   per source.  Sources share one RNG stream, so the array-index order
   (and, within a source, the epoch order [fire_until] preserves) is
   part of the deterministic-output contract. *)
let advance_to sources t =
  Array.iter (fun s -> Mbac_traffic.Source.fire_until s ~upto:t) sources

let total_rate sources =
  Array.fold_left (fun acc s -> acc +. Mbac_traffic.Source.rate s) 0.0 sources

let steady_state_overflow rng ~replications ~n_offered ~capacity ~alpha_ce
    ~decorrelate_time ~samples_per_replication ~sample_spacing ~make_source =
  let per_rep = Mbac_stats.Welford.create () in
  series_start ~variant:"steady" ~n_offered;
  let stride = series_stride () in
  for rep = 1 to replications do
    let _, admitted =
      admit_burst rng ~n_offered ~capacity ~alpha_ce ~make_source
    in
    let hits = ref 0 in
    for k = 0 to samples_per_replication - 1 do
      let t = decorrelate_time +. (float_of_int k *. sample_spacing) in
      advance_to admitted t;
      if total_rate admitted > capacity then incr hits
    done;
    Mbac_stats.Welford.add per_rep
      (float_of_int !hits /. float_of_int samples_per_replication);
    Mbac_telemetry.Metrics.inc ~by:samples_per_replication
      "impulsive_overflow_samples_total";
    Mbac_telemetry.Metrics.inc ~by:!hits "impulsive_overflow_hits_total";
    series_tick ~stride rep
  done;
  series_finish ~stride ~replications;
  let se =
    Mbac_stats.Welford.std per_rep /. sqrt (float_of_int replications)
  in
  (Mbac_stats.Welford.mean per_rep, se)

let overflow_vs_time rng ~replications ~n_offered ~capacity ~alpha_ce
    ~holding_time_mean ~times ~make_source =
  let times = Array.copy times in
  Array.sort compare times;
  let hits = Array.make (Array.length times) 0 in
  series_start ~variant:"transient" ~n_offered;
  let stride = series_stride () in
  for rep = 1 to replications do
    let _, admitted =
      admit_burst rng ~n_offered ~capacity ~alpha_ce ~make_source
    in
    (* independent exponential departure times *)
    let departures =
      Array.map
        (fun _ -> Mbac_stats.Sample.exponential rng ~mean:holding_time_mean)
        admitted
    in
    Array.iteri
      (fun ti t ->
        advance_to admitted t;
        let load = ref 0.0 in
        Array.iteri
          (fun i s ->
            if departures.(i) > t then
              load := !load +. Mbac_traffic.Source.rate s)
          admitted;
        if !load > capacity then hits.(ti) <- hits.(ti) + 1)
      times;
    series_tick ~stride rep
  done;
  series_finish ~stride ~replications;
  Array.map (fun h -> float_of_int h /. float_of_int replications) hits
