(** §5.4 heterogeneous flows (extension): when flows have different mean
    rates, the homogeneous variance estimator (eqn (7)) is biased upward
    (it attributes the between-class mean spread to per-flow variance),
    so the MBAC turns conservative: p_f below target, some utilization
    lost — but robust. *)

type row = {
  mix : string;
  p_f : float;
  kind : [ `Direct | `Gaussian_fit ];
  utilization : float;
  true_var : float;     (* within-class variance averaged over the mix *)
  estimator_var : float;(* what the homogeneous estimator converges to *)
}

let t_h = 1000.0
let t_c = 1.0
let p_ce = 1e-3
let capacity = 100.0

(* Two RCBR classes with equal arrival shares. *)
let mixed_factory ~mu1 ~mu2 rng ~start =
  let mu = if Mbac_stats.Sample.bernoulli rng ~p:0.5 then mu1 else mu2 in
  Mbac_traffic.Rcbr.create rng
    { Mbac_traffic.Rcbr.mu; sigma = 0.3 *. mu; t_c }
    ~start

let analysis ~mu1 ~mu2 =
  (* Average within-class variance and the homogeneous estimator's limit
     (law of total variance adds the between-class term). *)
  let v1 = (0.3 *. mu1) ** 2.0 and v2 = (0.3 *. mu2) ** 2.0 in
  let within = 0.5 *. (v1 +. v2) in
  let mean = 0.5 *. (mu1 +. mu2) in
  let between =
    (0.5 *. ((mu1 -. mean) ** 2.0)) +. (0.5 *. ((mu2 -. mean) ** 2.0))
  in
  (within, within +. between)

let compute ~profile =
  let mixes = [ (1.0, 1.0); (0.75, 1.25); (0.5, 1.5) ] in
  Common.par_map
    (fun (mu1, mu2) ->
      let mean_mu = 0.5 *. (mu1 +. mu2) in
      let p =
        Mbac.Params.make ~n:(capacity /. mean_mu) ~mu:mean_mu
          ~sigma:(0.3 *. mean_mu) ~t_h ~t_c ~p_q:p_ce
      in
      let t_m = Mbac.Window.recommended_t_m p in
      let controller = Mbac.Controller.with_memory ~capacity ~p_ce ~t_m in
      let cfg = Common.sim_config ~profile ~p ~t_m in
      let r =
        Mbac_sim.Continuous_load.run
          (Common.rng_for (Printf.sprintf "hetero-%g-%g" mu1 mu2))
          cfg ~controller
          ~make_source:(mixed_factory ~mu1 ~mu2)
      in
      let true_var, estimator_var = analysis ~mu1 ~mu2 in
      { mix = Printf.sprintf "mu = {%g, %g}" mu1 mu2;
        p_f = r.Mbac_sim.Continuous_load.p_f;
        kind = r.Mbac_sim.Continuous_load.estimate_kind;
        utilization = r.Mbac_sim.Continuous_load.utilization;
        true_var; estimator_var })
    mixes

let run ~profile fmt =
  Common.section fmt "hetero"
    "Heterogeneous flows: variance-estimator bias makes the MBAC conservative";
  let rows = compute ~profile in
  Common.table fmt
    ~header:
      [ "mix"; "p_f"; "est"; "utilization"; "within-class var";
        "estimator limit" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.mix; Common.fnum r.p_f;
             (match r.kind with `Direct -> "direct" | `Gaussian_fit -> "fit");
             Printf.sprintf "%.3f" r.utilization; Common.fnum3 r.true_var;
             Common.fnum3 r.estimator_var ])
         rows);
  Format.fprintf fmt
    "Paper (§5.4): the homogeneous variance estimator over-estimates \
     under heterogeneity (last two columns diverge with the spread), so \
     p_f drops below target and utilization falls — conservative but \
     robust.@."
