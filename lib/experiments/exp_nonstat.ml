(** Non-stationary traffic (extension of §2's stationarity caveat): the
    per-flow mean rate shifts by a step in the middle of the run.  A
    memory window ~T~_h adapts; an over-long window reacts too slowly and
    under-admits or over-admits for a long transient. *)

type row = {
  t_m : float;
  p_f : float;
  kind : [ `Direct | `Gaussian_fit ];
  utilization : float;
}

let params =
  (* shorter holding time so quick runs see many level shifts *)
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:400.0 ~t_c:1.0 ~p_q:1e-2

(* Periodic +-10% mean shifts: factor alternates 1.0 / 1.1 every
   [period] time units.  (Level shifts force transient overload on any
   non-preemptive AC while departures shed the excess; keeping the step
   modest keeps that unavoidable component small relative to the
   estimator-tracking differences under test.) *)
let schedule ~period ~horizon =
  let n = int_of_float (horizon /. period) + 2 in
  Array.init n (fun i ->
      (float_of_int i *. period, if i mod 2 = 0 then 1.0 else 1.1))

let compute ~profile =
  let p = params in
  let capacity = Mbac.Params.capacity p in
  let t_h_tilde = Mbac.Params.t_h_tilde p in
  let cfg t_m = Common.sim_config ~profile ~p ~t_m in
  let horizon = 1e7 in
  let sched = schedule ~period:(10.0 *. t_h_tilde) ~horizon in
  let make_source rng ~start =
    Mbac_traffic.Modulated.create ~start sched (Common.rcbr_factory ~p rng ~start)
  in
  Common.par_map
    (fun t_m ->
      let controller =
        Mbac.Controller.with_memory ~capacity ~p_ce:p.Mbac.Params.p_q ~t_m
      in
      let r =
        Mbac_sim.Continuous_load.run
          (Common.rng_for (Printf.sprintf "nonstat-%g" t_m))
          (cfg t_m) ~controller ~make_source
      in
      { t_m;
        p_f = r.Mbac_sim.Continuous_load.p_f;
        kind = r.Mbac_sim.Continuous_load.estimate_kind;
        utilization = r.Mbac_sim.Continuous_load.utilization })
    [ 0.0; t_h_tilde; 25.0 *. t_h_tilde ]

let run ~profile fmt =
  Common.section fmt "nonstat"
    "Non-stationary traffic: step mean shifts vs estimator memory";
  Format.fprintf fmt
    "%a; per-flow mean alternates 1.0/1.1 every 10 T~_h@." Mbac.Params.pp
    params;
  let rows = compute ~profile in
  Common.table fmt
    ~header:[ "T_m"; "p_f"; "est"; "util" ]
    ~rows:
      (List.map
         (fun r ->
           [ Common.fnum3 r.t_m; Common.fnum r.p_f;
             (match r.kind with `Direct -> "direct" | `Gaussian_fit -> "fit");
             Printf.sprintf "%.3f" r.utilization ])
         rows);
  Format.fprintf fmt
    "Expected ordering: T_m = T~_h tracks the shifts best (each level \
     shift still forces a small unavoidable transient while departures \
     shed the excess); T_m = 0 fails as always from estimation noise; a \
     window much longer than the shift period lags the level and \
     degrades — the §2/§5.3 point that memory must not exceed the \
     traffic's stationarity time-scale.@."
