(** Eqn (40): the utilization cost of a more conservative
    certainty-equivalent target is sigma sqrt(n) (Q^{-1}(p_ce) -
    Q^{-1}(p_ce')).  We verify by simulating the same system at two
    targets and comparing the measured carried bandwidth. *)

type row = {
  alpha_a : float;
  alpha_b : float;
  predicted_gap : float;
  measured_gap : float;
  util_a : float;
  util_b : float;
}

let params = Exp_fig5.params

let compute ~profile =
  let p = params in
  let t_m = Mbac.Window.recommended_t_m p in
  let alpha_q = Mbac.Params.alpha_q p in
  let pairs =
    [ (alpha_q, sqrt 2.0 *. alpha_q); (alpha_q, 2.0 *. alpha_q) ]
  in
  Common.par_map
    (fun (alpha_a, alpha_b) ->
      let run alpha tag =
        Common.run_mbac ~profile ~p ~t_m ~alpha_ce:alpha ~tag
      in
      let ra = run alpha_a (Printf.sprintf "util40-a-%g" alpha_a) in
      let rb = run alpha_b (Printf.sprintf "util40-b-%g" alpha_b) in
      { alpha_a; alpha_b;
        predicted_gap =
          Mbac.Utilization.difference p ~alpha_ce:alpha_b ~alpha_ce':alpha_a;
        measured_gap =
          ra.Mbac_sim.Continuous_load.mean_load
          -. rb.Mbac_sim.Continuous_load.mean_load;
        util_a = ra.Mbac_sim.Continuous_load.utilization;
        util_b = rb.Mbac_sim.Continuous_load.utilization })
    pairs

let run ~profile fmt =
  Common.section fmt "util40" "Utilization cost of conservatism (eqn 40)";
  Format.fprintf fmt "%a, T_m = T~_h@." Mbac.Params.pp params;
  let rows = compute ~profile in
  Common.table fmt
    ~header:
      [ "alpha_a"; "alpha_b"; "predicted bw gap"; "measured bw gap";
        "util@a"; "util@b" ]
    ~rows:
      (List.map
         (fun r ->
           [ Printf.sprintf "%.3f" r.alpha_a; Printf.sprintf "%.3f" r.alpha_b;
             Common.fnum3 r.predicted_gap; Common.fnum3 r.measured_gap;
             Printf.sprintf "%.3f" r.util_a; Printf.sprintf "%.3f" r.util_b ])
         rows);
  Format.fprintf fmt
    "Paper: the bandwidth gap between two targets is sigma sqrt(n) \
     (alpha_b - alpha_a), independent of the rest of the dynamics.@."
