(** Deep-tail variants of the Fig 5 and Fig 9/10 sweeps: the same
    certainty-equivalent MBAC systems, but at a target of p_q = 1e-5 —
    two orders below the paper's 1e-3 — where direct simulation would
    need ~1e8 events per cell for a usable CI.  Each cell is estimated
    with the multilevel-splitting engine ({!Mbac_sim.Splitting}) and
    reported against the eqn (37) theory line. *)

let p_q = 1e-5

(* -------- Fig 5 variant: p_f vs estimator memory, deep target -------- *)

let fig5_params =
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0 ~p_q

let fig5_t_ms ~profile =
  match profile with
  | Common.Quick -> [ 1.0; 10.0 ]
  | Common.Full -> [ 0.3; 1.0; 3.0; 10.0; 30.0; 100.0 ]

let fig5_rows ~profile =
  let p = fig5_params in
  let alpha = Mbac.Params.alpha_q p in
  (* Cells are sequential: each cell's engine already fans its clone
     trials out across the worker pool. *)
  List.map
    (fun t_m ->
      let r =
        Common.run_mbac_rare ~profile ~p ~t_m ~alpha_ce:alpha
          ~tag:(Printf.sprintf "deeptail-fig5-%g" t_m)
      in
      (t_m, Mbac.Memory_formula.overflow_cached ~p ~t_m ~alpha_ce:alpha, r))
    (fig5_t_ms ~profile)

(* -------- Fig 9/10 variant: T_m/T~_h x T_c grid, deep target --------- *)

let grid_spec ~profile =
  match profile with
  | Common.Quick -> ([ 0.1; 1.0 ], [ 0.3; 1.0 ])
  | Common.Full -> ([ 0.1; 1.0; 10.0; 100.0 ], [ 0.03; 0.1; 0.3; 1.0 ])

let grid_params t_c =
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c ~p_q

let grid_rows ~profile =
  let t_cs, ratios = grid_spec ~profile in
  ( t_cs, ratios,
    List.map
      (fun t_c ->
        let p = grid_params t_c in
        let alpha = Mbac.Params.alpha_q p in
        let t_h_tilde = Mbac.Params.t_h_tilde p in
        List.map
          (fun ratio ->
            let t_m = ratio *. t_h_tilde in
            let r =
              Common.run_mbac_rare ~profile ~p ~t_m ~alpha_ce:alpha
                ~tag:(Printf.sprintf "deeptail-grid-%g-%g" t_c ratio)
            in
            r.Mbac_sim.Splitting.p_f)
          ratios)
      t_cs )

let run ~profile fmt =
  Common.section fmt "deeptail"
    "Deep-tail splitting sweeps (p_q = 1e-5 variants of Figs 5 and 9)";
  Format.fprintf fmt "%a (T~_h = %g)@." Mbac.Params.pp fig5_params
    (Mbac.Params.t_h_tilde fig5_params);
  let rows = fig5_rows ~profile in
  Common.table fmt
    ~header:
      [ "T_m"; "theory (37)"; "splitting"; "ci_rel"; "pilot direct";
        "events" ]
    ~rows:
      (List.map
         (fun (t_m, theory, r) ->
           [ Common.fnum3 t_m; Common.fnum theory;
             Common.fnum r.Mbac_sim.Splitting.p_f;
             Common.fnum3 r.Mbac_sim.Splitting.ci_rel;
             Common.fnum r.Mbac_sim.Splitting.pilot_p_f;
             string_of_int r.Mbac_sim.Splitting.total_events ])
         rows);
  let t_cs, ratios, grid = grid_rows ~profile in
  Common.table fmt
    ~header:("T_c \\ T_m/T~_h" :: List.map Common.fnum3 ratios)
    ~rows:
      (List.map2
         (fun t_c row -> Common.fnum3 t_c :: List.map Common.fnum row)
         t_cs grid);
  Format.fprintf fmt
    "Splitting reaches these targets with orders of magnitude fewer \
     events than a direct run (compare the events column with the ~1e8 \
     a direct 10%%-CI estimate needs at p_f = 1e-5); the qualitative \
     Fig 5/9 shape — more memory helps until T_m ~ T~_h, short T_c \
     punishes short memory — persists two orders deeper into the \
     tail.@."
