(** §5.3: masking vs repair regime closed forms against the general
    integral (37), with the recommended window T_m = T~_h. *)

type row = {
  t_c : float;
  general : float;
  masking : float;
  repair : float;
  regime : string;
}

let compute () =
  let mk t_c =
    Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c ~p_q:1e-3
  in
  List.map
    (fun t_c ->
      let p = mk t_c in
      let t_m = Mbac.Window.recommended_t_m p in
      let general =
        Mbac.Memory_formula.overflow_cached ~p ~t_m
          ~alpha_ce:(Mbac.Params.alpha_q p)
      in
      { t_c;
        general;
        masking = Mbac.Regimes.masking_overflow p;
        repair = Mbac.Regimes.repair_overflow p;
        regime =
          (match Mbac.Regimes.regime p ~t_m with
          | `Masking -> "masking"
          | `Repair -> "repair"
          | `Transition -> "transition") })
    [ 0.01; 0.1; 1.0; 10.0; 100.0; 400.0; 1000.0; 10000.0 ]

let run ~profile fmt =
  ignore profile;
  Common.section fmt "regimes"
    "Masking and repair regime closed forms vs general formula (T_m = T~_h)";
  let rows = compute () in
  Common.table fmt
    ~header:[ "T_c"; "general (37)"; "masking (41)"; "repair"; "regime" ]
    ~rows:
      (List.map
         (fun r ->
           [ Common.fnum3 r.t_c; Common.fnum r.general; Common.fnum r.masking;
             Common.fnum r.repair; r.regime ])
         rows);
  Format.fprintf fmt
    "Paper: for T_c << T~_h (= %g) the masking form (41) ~ \
     (sigma alpha/mu + 1) p_q applies; for T_c >> T~_h overflow is \
     repaired by departures and p_f collapses far below target.@."
    (Mbac.Params.t_h_tilde
       (Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0
          ~p_q:1e-3))
