(** Prop 3.1: under the impulsive load, (M_0 - n)/sqrt n converges to
    -(sigma/mu)(Y_0 + alpha_q), i.e. a Gaussian with mean
    -(sigma/mu) alpha_q and standard deviation sigma/mu. *)

type row = {
  n : int;
  theory_mean : float;
  sim_mean : float;
  theory_std : float;
  sim_std : float;
}

let compute ~profile =
  let reps = match profile with Common.Quick -> 2_000 | Common.Full -> 20_000 in
  let mu = 1.0 and sigma = 0.3 and p_q = 1e-3 in
  let alpha = Mbac_stats.Gaussian.q_inv p_q in
  Common.par_map
    (fun n ->
      let nf = float_of_int n in
      let p =
        Mbac.Params.make ~n:nf ~mu ~sigma ~t_h:1000.0 ~t_c:1.0 ~p_q
      in
      let rng = Common.rng_for (Printf.sprintf "prop31-%d" n) in
      let samples =
        Mbac_sim.Impulsive_driver.m0_samples rng ~replications:reps
          ~n_offered:(2 * n) ~capacity:(Mbac.Params.capacity p)
          ~alpha_ce:alpha
          ~make_source:(Common.rcbr_factory ~p)
      in
      let standardized = Array.map (fun m0 -> (m0 -. nf) /. sqrt nf) samples in
      { n;
        theory_mean = -.(sigma /. mu) *. alpha;
        sim_mean = Mbac_stats.Descriptive.mean standardized;
        theory_std = sigma /. mu;
        sim_std = Mbac_stats.Descriptive.std standardized })
    (match profile with Common.Quick -> [ 100; 400 ] | Common.Full -> [ 100; 400; 1600 ])

let run ~profile fmt =
  Common.section fmt "prop31"
    "Fluctuation of the admitted count M_0 (impulsive load)";
  let rows = compute ~profile in
  Common.table fmt
    ~header:[ "n"; "E[(M0-n)/sqrt n] theory"; "sim"; "Std theory"; "sim" ]
    ~rows:
      (List.map
         (fun r ->
           [ string_of_int r.n; Common.fnum3 r.theory_mean;
             Common.fnum3 r.sim_mean; Common.fnum3 r.theory_std;
             Common.fnum3 r.sim_std ])
         rows);
  Format.fprintf fmt
    "Paper: M_0 ~ n - (sigma/mu)(Y_0 + alpha_q) sqrt n; the standardized \
     mean and std should match the theory columns.@."
