(** Prop 3.3: the memoryless certainty-equivalent MBAC under impulsive
    load delivers p_f -> Q(alpha_q / sqrt 2) instead of p_q — e.g. two
    orders of magnitude off at p_q = 1e-5.  We also run the
    perfect-knowledge AC on the same workload to show it does meet p_q,
    and the eqn (15)-adjusted CE target to show the repair. *)

type row = {
  n : int;
  p_q : float;
  theory : float;       (* Q(alpha_q / sqrt 2) *)
  sim_ce : float;       (* measured, certainty-equivalent *)
  sim_ce_se : float;
  sim_perfect : float;  (* measured, perfect knowledge *)
  sim_adjusted : float; (* measured, CE at p_ce = Q(sqrt 2 alpha_q) *)
}

let measure ~rng ~p ~alpha_ce ~reps ~samples =
  let t_c = p.Mbac.Params.t_c in
  Mbac_sim.Impulsive_driver.steady_state_overflow rng ~replications:reps
    ~n_offered:(2 * int_of_float p.Mbac.Params.n)
    ~capacity:(Mbac.Params.capacity p) ~alpha_ce
    ~decorrelate_time:(10.0 *. t_c)
    ~samples_per_replication:samples ~sample_spacing:(2.0 *. t_c)
    ~make_source:(Common.rcbr_factory ~p)

(* Perfect knowledge: admit exactly m* flows, measure their overflow. *)
let measure_perfect ~rng ~p ~reps ~samples =
  let m_star = Mbac.Criterion.m_star p in
  let capacity = Mbac.Params.capacity p in
  let t_c = p.Mbac.Params.t_c in
  let acc = Mbac_stats.Welford.create () in
  for _ = 1 to reps do
    let sources =
      Array.init m_star (fun _ ->
          Common.rcbr_factory ~p rng ~start:0.0)
    in
    let hits = ref 0 in
    for k = 0 to samples - 1 do
      let t = (10.0 *. t_c) +. (float_of_int k *. 2.0 *. t_c) in
      Array.iter
        (fun s -> Mbac_traffic.Source.fire_until s ~upto:t)
        sources;
      let load =
        Array.fold_left
          (fun a s -> a +. Mbac_traffic.Source.rate s)
          0.0 sources
      in
      if load > capacity then incr hits
    done;
    Mbac_stats.Welford.add acc (float_of_int !hits /. float_of_int samples)
  done;
  Mbac_stats.Welford.mean acc

let compute ~profile =
  let reps, samples =
    match profile with Common.Quick -> (300, 60) | Common.Full -> (2_000, 300)
  in
  let mu = 1.0 and sigma = 0.3 in
  let cases =
    match profile with
    | Common.Quick -> [ (100, 1e-2); (400, 1e-2); (100, 1e-3) ]
    | Common.Full -> [ (100, 1e-2); (400, 1e-2); (1600, 1e-2); (100, 1e-3); (400, 1e-3) ]
  in
  Common.par_map
    (fun (n, p_q) ->
      let p =
        Mbac.Params.make ~n:(float_of_int n) ~mu ~sigma ~t_h:1000.0 ~t_c:1.0
          ~p_q
      in
      let alpha_q = Mbac.Params.alpha_q p in
      let tag = Printf.sprintf "prop33-%d-%g" n p_q in
      let sim_ce, sim_ce_se =
        measure ~rng:(Common.rng_for tag) ~p ~alpha_ce:alpha_q ~reps ~samples
      in
      let sim_perfect =
        measure_perfect ~rng:(Common.rng_for (tag ^ "-perfect")) ~p ~reps
          ~samples
      in
      let sim_adjusted, _ =
        measure
          ~rng:(Common.rng_for (tag ^ "-adj"))
          ~p
          ~alpha_ce:(sqrt 2.0 *. alpha_q)
          ~reps ~samples
      in
      { n; p_q;
        theory = Mbac.Impulsive.overflow_probability p;
        sim_ce; sim_ce_se; sim_perfect; sim_adjusted })
    cases

let run ~profile fmt =
  Common.section fmt "prop33"
    "Certainty-equivalence penalty under impulsive load (Q(alpha/sqrt 2) law)";
  let rows = compute ~profile in
  Common.table fmt
    ~header:
      [ "n"; "p_q"; "theory Q(a/sqrt2)"; "sim CE"; "+-se"; "sim perfect";
        "sim adjusted(eqn15)" ]
    ~rows:
      (List.map
         (fun r ->
           [ string_of_int r.n; Common.fnum r.p_q; Common.fnum r.theory;
             Common.fnum r.sim_ce; Common.fnum r.sim_ce_se;
             Common.fnum r.sim_perfect; Common.fnum r.sim_adjusted ])
         rows);
  Format.fprintf fmt
    "Paper: CE misses p_q by orders of magnitude (e.g. p_q=1e-5 -> \
     p_f~1.3e-3), perfect knowledge meets it, and the eqn (15) adjustment \
     p_ce = Q(sqrt2 alpha_q) restores it.@."
