(** Utility-based QoS (§7 future work): score schemes by the time-average
    utility of the delivered-bandwidth fraction instead of the binary
    overflow indicator.  Adaptive applications (concave utility) are far
    more forgiving of the memoryless scheme's overload episodes than the
    step metric suggests — quantifying the paper's closing remark. *)

type row = {
  scheme : string;
  p_f : float;
  u_step : float;
  u_linear : float;
  u_power : float;    (* theta = 0.5 *)
  u_threshold : float (* 0.95 *)
}

let params = Exp_fig5.params

let compute ~profile =
  let p = params in
  let capacity = Mbac.Params.capacity p in
  let t_h_tilde = Mbac.Params.t_h_tilde p in
  let schemes =
    [ ("memoryless CE", 0.0);
      ("memory CE (T_m=T~_h)", t_h_tilde) ]
  in
  (* Fan out over (scheme x utility): 8 independent sims, re-grouped
     into one row per scheme below. *)
  let utilities =
    [ Mbac.Utility.Step; Mbac.Utility.Linear; Mbac.Utility.Power 0.5;
      Mbac.Utility.Threshold 0.95 ]
  in
  let cells =
    List.concat_map (fun s -> List.map (fun u -> (s, u)) utilities) schemes
  in
  let results =
    Common.par_map
      (fun ((name, t_m), utility) ->
        let cfg =
          { (Common.sim_config ~profile ~p ~t_m) with
            Mbac_sim.Continuous_load.utility }
        in
        let controller =
          Mbac.Controller.with_memory ~capacity ~p_ce:p.Mbac.Params.p_q ~t_m
        in
        Mbac_sim.Continuous_load.run
          (Common.rng_for
             (Printf.sprintf "utility-%s-%s" name (Mbac.Utility.name utility)))
          cfg ~controller ~make_source:(Common.rcbr_factory ~p))
      cells
  in
  let results = Array.of_list results in
  List.mapi
    (fun i (name, _t_m) ->
      let r_step = results.(4 * i)
      and r_lin = results.((4 * i) + 1)
      and r_pow = results.((4 * i) + 2)
      and r_thr = results.((4 * i) + 3) in
      { scheme = name;
        p_f = r_step.Mbac_sim.Continuous_load.p_f;
        u_step = r_step.Mbac_sim.Continuous_load.mean_utility;
        u_linear = r_lin.Mbac_sim.Continuous_load.mean_utility;
        u_power = r_pow.Mbac_sim.Continuous_load.mean_utility;
        u_threshold = r_thr.Mbac_sim.Continuous_load.mean_utility })
    schemes

let run ~profile fmt =
  Common.section fmt "utility" "Utility-based QoS metrics (§7 extension)";
  Format.fprintf fmt "%a@." Mbac.Params.pp params;
  let rows = compute ~profile in
  Common.table fmt
    ~header:
      [ "scheme"; "p_f"; "E[u] step"; "linear"; "power(.5)"; "threshold(.95)" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.scheme; Common.fnum r.p_f; Printf.sprintf "%.5f" r.u_step;
             Printf.sprintf "%.5f" r.u_linear; Printf.sprintf "%.5f" r.u_power;
             Printf.sprintf "%.5f" r.u_threshold ])
         rows);
  Format.fprintf fmt
    "E[u_step] = 1 - p_f by construction.  For elastic utilities the \
     memoryless scheme's penalty shrinks dramatically (overloads are \
     shallow), supporting the paper's closing point that the right QoS \
     metric depends on application adaptivity.@."
