(** Scheme comparison (extension; baselines from §6 related work): the
    paper's robust MBAC against memoryless CE, the perfect-knowledge AC,
    Jamin-style measured sum, the Hoeffding acceptance region, a
    GKK-style prior scheme, and peak-rate allocation — same RCBR
    workload, one row per scheme. *)

type row = {
  scheme : string;
  p_f : float;
  kind : [ `Direct | `Gaussian_fit ];
  utilization : float;
  mean_flows : float;
}

let params = Exp_fig5.params

let compute ~profile =
  let p = params in
  let capacity = Mbac.Params.capacity p in
  let p_ce = p.Mbac.Params.p_q in
  let peak = p.Mbac.Params.mu +. (3.0 *. p.Mbac.Params.sigma) in
  let t_h_tilde = Mbac.Params.t_h_tilde p in
  let schemes =
    [ ("perfect", Mbac.Controller.perfect p, 0.0);
      ("memoryless CE", Mbac.Controller.memoryless ~capacity ~p_ce, 0.0);
      ( "memory CE (T_m=T~_h)",
        Mbac.Controller.with_memory ~capacity ~p_ce ~t_m:t_h_tilde,
        t_h_tilde );
      ("robust (adjusted)", Mbac.Controller.robust p, t_h_tilde);
      ( "measured sum (u=0.9)",
        Mbac.Controller.measured_sum ~capacity ~utilization_target:0.9
          ~window:t_h_tilde ~peak,
        t_h_tilde );
      ( "hoeffding",
        Mbac.Controller.hoeffding ~capacity ~p_ce ~peak
          (Mbac.Estimator.ewma ~t_m:t_h_tilde),
        t_h_tilde );
      ( "chernoff (eff. bw.)",
        Mbac.Controller.chernoff ~capacity ~p_ce
          (Mbac.Estimator.ewma ~t_m:t_h_tilde),
        t_h_tilde );
      ( "gkk-style",
        Mbac.Controller.gkk ~capacity ~p_ce ~prior_mu:p.Mbac.Params.mu
          ~prior_var:(p.Mbac.Params.sigma ** 2.0)
          ~prior_weight:0.5,
        0.0 );
      ("peak rate", Mbac.Controller.peak_rate ~capacity ~peak, 0.0) ]
  in
  (* Each controller (and its mutable estimator) belongs to exactly one
     cell, so the cells are independent and safe to fan out. *)
  Common.par_map
    (fun (name, controller, t_m) ->
      let cfg = Common.sim_config ~profile ~p ~t_m in
      let r =
        Mbac_sim.Continuous_load.run
          (Common.rng_for ("baselines-" ^ name))
          cfg ~controller ~make_source:(Common.rcbr_factory ~p)
      in
      { scheme = name;
        p_f = r.Mbac_sim.Continuous_load.p_f;
        kind = r.Mbac_sim.Continuous_load.estimate_kind;
        utilization = r.Mbac_sim.Continuous_load.utilization;
        mean_flows = r.Mbac_sim.Continuous_load.mean_flows })
    schemes

let run ~profile fmt =
  Common.section fmt "baselines" "Scheme comparison on the Fig-5 workload";
  Format.fprintf fmt "%a, target p_q = %s@." Mbac.Params.pp params
    (Common.fnum params.Mbac.Params.p_q);
  let rows = compute ~profile in
  Common.table fmt
    ~header:[ "scheme"; "p_f"; "est"; "utilization"; "mean flows" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.scheme; Common.fnum r.p_f;
             (match r.kind with `Direct -> "direct" | `Gaussian_fit -> "fit");
             Printf.sprintf "%.3f" r.utilization;
             Printf.sprintf "%.1f" r.mean_flows ])
         rows);
  Format.fprintf fmt
    "Expected ordering: memoryless CE violates the target at high \
     utilization; the robust MBAC meets it near the perfect-knowledge \
     utilization; Hoeffding and peak-rate meet it by sacrificing \
     utilization; measured-sum depends on its ad-hoc utilization target.@."
