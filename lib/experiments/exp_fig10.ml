(** Figure 10: the same T_m/T~_h x T_c grid as Fig 9, but simulated with
    RCBR sources — corroborating the analysis. *)

type grid = {
  t_cs : float list;
  ratios : float list;
  p_f : float array array;
}

let spec ~profile =
  match profile with
  | Common.Quick -> ([ 0.1; 1.0; 100.0 ], [ 0.03; 0.3; 1.0 ])
  | Common.Full -> (Exp_fig9.t_cs, Exp_fig9.ratios)

let compute ~profile =
  let t_cs, ratios = spec ~profile in
  (* Flatten the grid into one task list so every (T_c, ratio) cell fans
     out across the pool at once, then reassemble by row. *)
  let cells =
    List.concat_map (fun t_c -> List.map (fun r -> (t_c, r)) ratios) t_cs
  in
  let flat =
    Common.par_map
      (fun (t_c, ratio) ->
        let p = Exp_fig9.base_params t_c in
        let t_h_tilde = Mbac.Params.t_h_tilde p in
        let alpha = Mbac.Params.alpha_q p in
        let t_m = ratio *. t_h_tilde in
        let r =
          Common.run_mbac ~profile ~p ~t_m ~alpha_ce:alpha
            ~tag:(Printf.sprintf "fig10-%g-%g" t_c ratio)
        in
        r.Mbac_sim.Continuous_load.p_f)
      cells
  in
  let n_ratios = List.length ratios in
  let flat = Array.of_list flat in
  let p_f =
    Array.init (List.length t_cs) (fun i ->
        Array.sub flat (i * n_ratios) n_ratios)
  in
  { t_cs; ratios; p_f }

let run ~profile fmt =
  Common.section fmt "fig10" "Simulated p_f over the same grid as Fig 9";
  let g = compute ~profile in
  let header = "T_c \\ T_m/T~_h" :: List.map Common.fnum3 g.ratios in
  let rows =
    List.mapi
      (fun i t_c ->
        Common.fnum3 t_c :: Array.to_list (Array.map Common.fnum g.p_f.(i)))
      g.t_cs
  in
  Common.table fmt ~header ~rows;
  Format.fprintf fmt
    "Paper: simulation confirms the Fig 9 pattern (theory conservative, \
     same shape): small memory fails for short T_c; T_m ~ T~_h is robust \
     across all T_c.@."
