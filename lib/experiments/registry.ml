type entry = {
  id : string;
  title : string;
  simulation : bool;
  run : profile:Common.profile -> Format.formatter -> unit;
}

let all =
  [ { id = "prop31"; title = "M_0 fluctuation under impulsive load";
      simulation = true; run = Exp_prop31.run };
    { id = "prop33"; title = "certainty-equivalence penalty Q(alpha/sqrt 2)";
      simulation = true; run = Exp_prop33.run };
    { id = "eqn21"; title = "transient overflow with finite holding times";
      simulation = true; run = Exp_eqn21.run };
    { id = "fig5"; title = "p_f vs memory window: theory and simulation";
      simulation = true; run = Exp_fig5.run };
    { id = "fig6"; title = "adjusted target p_ce by inversion of eqn (38)";
      simulation = false; run = Exp_fig6.run };
    { id = "fig7"; title = "simulated p_f at the adjusted target";
      simulation = true; run = Exp_fig7.run };
    { id = "fig9"; title = "p_f over T_m/T~_h x T_c (analysis grid)";
      simulation = false; run = Exp_fig9.run };
    { id = "fig10"; title = "simulated p_f over the Fig 9 grid";
      simulation = true; run = Exp_fig10.run };
    { id = "fig11"; title = "LRD video, memoryless estimation";
      simulation = true; run = Exp_starwars.run_fig11 };
    { id = "fig12"; title = "LRD video, T_m = T~_h";
      simulation = true; run = Exp_starwars.run_fig12 };
    { id = "regimes"; title = "masking/repair regime closed forms";
      simulation = false; run = Exp_regimes.run };
    { id = "util40"; title = "utilization cost of conservatism (eqn 40)";
      simulation = true; run = Exp_util40.run };
    { id = "baselines"; title = "scheme comparison (extension)";
      simulation = true; run = Exp_baselines.run };
    { id = "hetero"; title = "heterogeneous flows (§5.4 extension)";
      simulation = true; run = Exp_hetero.run };
    { id = "aggregate"; title = "aggregate-only measurement (§7 extension)";
      simulation = true; run = Exp_aggregate.run };
    { id = "arrival"; title = "finite Poisson arrivals vs continuous load";
      simulation = true; run = Exp_arrival.run };
    { id = "service"; title = "bufferless vs RCBR renegotiation vs buffered";
      simulation = true; run = Exp_service_models.run };
    { id = "nonstat"; title = "non-stationary traffic vs estimator memory";
      simulation = true; run = Exp_nonstat.run };
    { id = "deeptail"; title = "deep-tail splitting sweeps (p_q = 1e-5)";
      simulation = true; run = Exp_deeptail.run };
    { id = "utility"; title = "utility-based QoS metrics (§7 extension)";
      simulation = true; run = Exp_utility.run } ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_entry ~profile fmt e =
  Common.Log.info (fun m -> m "experiment %s: start" e.id);
  Mbac_telemetry.Profile.span ("experiment." ^ e.id) (fun () ->
      e.run ~profile fmt);
  Common.Log.info (fun m -> m "experiment %s: done" e.id)

let run_all ~profile fmt = List.iter (run_entry ~profile fmt) all

let run_analysis_only ~profile fmt =
  List.iter (fun e -> if not e.simulation then run_entry ~profile fmt e) all
