(** Finite arrival rates (extension; §4 argues the continuous-load model
    is the worst case): sweep the Poisson arrival rate from lightly
    loaded to effectively infinite and watch p_f approach the
    continuous-load value from below, while blocking appears. *)

type row = {
  label : string;
  p_f : float;
  kind : [ `Direct | `Gaussian_fit ];
  blocking : float;
  utilization : float;
}

let params = Exp_fig5.params

let compute ~profile =
  let p = params in
  let capacity = Mbac.Params.capacity p in
  let t_m = Mbac.Window.recommended_t_m p in
  (* offered load in Erlangs = lambda T_h; m* ~ 91, so lambda T_h around
     m* is critical *)
  let rates_of_interest =
    [ (0.5, "0.5x critical"); (1.0, "1x critical"); (2.0, "2x critical");
      (8.0, "8x critical") ]
  in
  let m_star = float_of_int (Mbac.Criterion.m_star p) in
  (* One task per finite rate plus the continuous-load reference, all
     through the same pool. *)
  let cells =
    List.map (fun rc -> `Rate rc) rates_of_interest @ [ `Continuous ]
  in
  Common.par_map
    (function
      | `Rate (mult, label) ->
          let lambda = mult *. m_star /. p.Mbac.Params.t_h in
          let cfg =
            { (Common.sim_config ~profile ~p ~t_m) with
              Mbac_sim.Continuous_load.arrival = `Poisson lambda }
          in
          let controller =
            Mbac.Controller.with_memory ~capacity ~p_ce:p.Mbac.Params.p_q ~t_m
          in
          let r =
            Mbac_sim.Continuous_load.run
              (Common.rng_for ("arrival-" ^ label))
              cfg ~controller ~make_source:(Common.rcbr_factory ~p)
          in
          { label = Printf.sprintf "poisson %s" label;
            p_f = r.Mbac_sim.Continuous_load.p_f;
            kind = r.Mbac_sim.Continuous_load.estimate_kind;
            blocking = r.Mbac_sim.Continuous_load.blocking_probability;
            utilization = r.Mbac_sim.Continuous_load.utilization }
      | `Continuous ->
          let r_inf =
            Common.run_mbac ~profile ~p ~t_m ~alpha_ce:(Mbac.Params.alpha_q p)
              ~tag:"arrival-inf"
          in
          { label = "infinite (continuous load)";
            p_f = r_inf.Mbac_sim.Continuous_load.p_f;
            kind = r_inf.Mbac_sim.Continuous_load.estimate_kind;
            blocking = nan;
            utilization = r_inf.Mbac_sim.Continuous_load.utilization })
    cells

let run ~profile fmt =
  Common.section fmt "arrival"
    "Finite Poisson arrivals vs the continuous-load worst case";
  Format.fprintf fmt "%a, T_m = T~_h; arrival rates relative to m*/T_h@."
    Mbac.Params.pp params;
  let rows = compute ~profile in
  Common.table fmt
    ~header:[ "arrival process"; "p_f"; "est"; "blocking"; "util" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.label; Common.fnum r.p_f;
             (match r.kind with `Direct -> "direct" | `Gaussian_fit -> "fit");
             (if Float.is_nan r.blocking then "-" else Common.fnum r.blocking);
             Printf.sprintf "%.3f" r.utilization ])
         rows);
  Format.fprintf fmt
    "Expected: p_f grows with the arrival rate toward the continuous-load \
     value (the paper's worst-case claim); blocking appears once demand \
     exceeds what the MBAC will carry.@."
