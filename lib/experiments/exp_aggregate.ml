(** §7 future work (extension): aggregate-only measurement.  Without
    per-flow rates the mean estimate is unaffected but the variance must
    be inferred from the temporal fluctuation of the aggregate — noisier,
    so performance degrades somewhat relative to per-flow estimation. *)

type row = {
  estimator : string;
  p_f : float;
  kind : [ `Direct | `Gaussian_fit ];
  utilization : float;
}

let params = Exp_fig5.params

let compute ~profile =
  let p = params in
  let capacity = Mbac.Params.capacity p in
  let p_ce = p.Mbac.Params.p_q in
  let t_m = Mbac.Window.recommended_t_m p in
  let estimators =
    [ ("per-flow ewma", Mbac.Estimator.ewma ~t_m);
      ("aggregate-only", Mbac.Estimator.aggregate_only ~t_m);
      ("sliding window", Mbac.Estimator.sliding_window ~t_w:t_m) ]
  in
  Common.par_map
    (fun (name, estimator) ->
      let controller =
        Mbac.Controller.certainty_equivalent ~capacity ~p_ce estimator
      in
      let cfg = Common.sim_config ~profile ~p ~t_m in
      let r =
        Mbac_sim.Continuous_load.run
          (Common.rng_for ("aggregate-" ^ name))
          cfg ~controller ~make_source:(Common.rcbr_factory ~p)
      in
      { estimator = name;
        p_f = r.Mbac_sim.Continuous_load.p_f;
        kind = r.Mbac_sim.Continuous_load.estimate_kind;
        utilization = r.Mbac_sim.Continuous_load.utilization })
    estimators

let run ~profile fmt =
  Common.section fmt "aggregate"
    "Aggregate-only vs per-flow measurement (§7 extension)";
  Format.fprintf fmt "%a, T_m = T~_h@." Mbac.Params.pp params;
  let rows = compute ~profile in
  Common.table fmt
    ~header:[ "estimator"; "p_f"; "est"; "utilization" ]
    ~rows:
      (List.map
         (fun r ->
           [ r.estimator; Common.fnum r.p_f;
             (match r.kind with `Direct -> "direct" | `Gaussian_fit -> "fit");
             Printf.sprintf "%.3f" r.utilization ])
         rows);
  Format.fprintf fmt
    "Paper (§7): aggregate-only measurement leaves the mean estimator \
     intact but hampers the variance estimate; expect comparable but \
     somewhat less accurate control.@."
