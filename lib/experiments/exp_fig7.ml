(** Figure 7: simulate the MBAC running at the {e adjusted} target from
    Fig 6 and verify the achieved overflow probability stays at (slightly
    below) p_q across the whole memory range. *)

type row = {
  t_m : float;
  alpha_ce : float;
  log10_p_ce : float;
  sim : float;
  sim_kind : [ `Direct | `Gaussian_fit ];
  utilization : float;
}

let params = Exp_fig5.params (* same system as Fig 5 *)

let t_ms ~profile =
  match profile with
  | Common.Quick -> [ 1.0; 10.0; 100.0; 1000.0 ]
  | Common.Full -> [ 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 ]

let compute ~profile =
  let p = params in
  Common.par_map
    (fun t_m ->
      let alpha_ce = Mbac.Inversion.adjusted_alpha_ce ~t_m p in
      (* never run looser than the target itself *)
      let alpha_ce = Float.max alpha_ce (Mbac.Params.alpha_q p) in
      let r =
        Common.run_mbac ~profile ~p ~t_m ~alpha_ce
          ~tag:(Printf.sprintf "fig7-%g" t_m)
      in
      { t_m; alpha_ce;
        log10_p_ce = Mbac_stats.Gaussian.log_q alpha_ce /. log 10.0;
        sim = r.Mbac_sim.Continuous_load.p_f;
        sim_kind = r.Mbac_sim.Continuous_load.estimate_kind;
        utilization = r.Mbac_sim.Continuous_load.utilization })
    (t_ms ~profile)

let run ~profile fmt =
  Common.section fmt "fig7"
    "Simulated p_f when running at the adjusted target (robust MBAC)";
  Format.fprintf fmt "%a, target p_q = %s@." Mbac.Params.pp params
    (Common.fnum params.Mbac.Params.p_q);
  let rows = compute ~profile in
  Common.table fmt
    ~header:[ "T_m"; "alpha_ce"; "log10 p_ce"; "sim p_f"; "est"; "util" ]
    ~rows:
      (List.map
         (fun r ->
           [ Common.fnum3 r.t_m; Printf.sprintf "%.3f" r.alpha_ce;
             Printf.sprintf "%.2f" r.log10_p_ce; Common.fnum r.sim;
             (match r.sim_kind with `Direct -> "direct" | `Gaussian_fit -> "fit");
             Printf.sprintf "%.3f" r.utilization ])
         rows);
  Format.fprintf fmt
    "Paper: with the adjusted target the actual overflow probability is \
     slightly below p_q over the whole parameter range (theory is mildly \
     conservative); utilization reflects the robustness cost at small \
     T_m.@."
