(** Figure 9: overflow probability by numerical integration of eqn (37)
    as a function of the normalized memory window T_m/T~_h and the
    correlation time-scale T_c.  Shows the robustness of the
    T_m = T~_h rule: once T_m is a significant fraction of T~_h, the QoS
    holds across several decades of (unknown) T_c. *)

let base_params t_c =
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c ~p_q:1e-3

let t_cs = [ 0.1; 1.0; 10.0; 100.0; 1000.0 ]
let ratios = [ 0.01; 0.03; 0.1; 0.3; 1.0; 3.0 ]

type grid = { t_cs : float list; ratios : float list; p_f : float array array }
(* p_f.(i).(j) for t_cs i, ratios j *)

let compute () =
  let p_f =
    Array.of_list
      (List.map
         (fun t_c ->
           let p = base_params t_c in
           let t_h_tilde = Mbac.Params.t_h_tilde p in
           let alpha = Mbac.Params.alpha_q p in
           Array.of_list
             (List.map
                (fun ratio ->
                  Mbac.Memory_formula.overflow_cached ~p
                    ~t_m:(ratio *. t_h_tilde) ~alpha_ce:alpha)
                ratios))
         t_cs)
  in
  { t_cs; ratios; p_f }

let run ~profile fmt =
  ignore profile;
  Common.section fmt "fig9"
    "p_f from eqn (37) over T_m/T~_h x T_c (analysis grid)";
  let g = compute () in
  let header =
    "T_c \\ T_m/T~_h" :: List.map Common.fnum3 g.ratios
  in
  let rows =
    List.mapi
      (fun i t_c ->
        Common.fnum3 t_c
        :: Array.to_list (Array.map Common.fnum g.p_f.(i)))
      g.t_cs
  in
  Common.table fmt ~header ~rows;
  Format.fprintf fmt
    "Paper: for small T_m/T~_h the QoS is violated for short T_c \
     (estimates fluctuate too fast); once T_m is a significant fraction \
     of T~_h = %g the target p_q = 1e-3 is met for every T_c (masking \
     regime on the left of the row, repair regime on the right).@."
    (Mbac.Params.t_h_tilde (base_params 1.0))
