(** Shared harness for the paper-reproduction experiments.

    Every experiment runs in one of two profiles: [Quick] (reduced sample
    budgets; minutes for the whole suite — the default for
    [bench/main.exe]) and [Full] (paper-grade §5.2 stopping criteria; can
    take hours for the simulation-heavy figures). *)

type profile = Quick | Full

val src : Logs.Src.t
(** The [Logs] source for sweep/section progress ("mbac.experiments").
    Progress is logged at [info] level to stderr, so result output on
    stdout stays byte-identical at every verbosity and [--quiet]
    silences sweeps. *)

module Log : Logs.LOG
(** Convenience log on {!src}. *)

val profile_of_string : string -> profile
(** "quick" | "full" (case-insensitive).  @raise Invalid_argument otherwise. *)

val seed : int ref
(** Global experiment seed (default 20260706); each experiment derives
    its streams deterministically from it. *)

val rng_for : string -> Mbac_stats.Rng.t
(** Deterministic RNG derived from [!seed] and an experiment tag via
    {!Mbac_stats.Rng.derive}.  Streams depend only on [(seed, tag)], so
    the same cell sees the same randomness no matter how the sweep is
    scheduled across domains. *)

val jobs : int ref
(** Worker-pool width for simulation sweeps (default
    {!Mbac_sim.Parallel.default_jobs}; set by [--jobs]).  Results are
    bit-identical for every value — [1] reproduces the serial path. *)

val par_map : ?init:(unit -> unit) -> ('a -> 'b) -> 'a list -> 'b list
(** [par_map f cells] evaluates the independent sweep cells [f cell]
    on the {!Mbac_sim.Parallel} pool of [!jobs] workers (clamped to the
    cell count and {!Mbac_sim.Parallel.domain_cap}; the log line reports
    the effective width), returning results in submission order.  Each
    cell must derive its randomness from {!rng_for} with a cell-unique
    tag and must not touch shared mutable state (formatters, [csv_dir]
    output, …) — formatting belongs in the caller, after the pool
    returns.  [init] is forwarded to the pool: it runs once per worker
    domain before any cell, for pre-seeding domain-local caches
    (fGn generation plans, Chebyshev tables); it must not affect cell
    results. *)

val sim_config :
  profile:profile -> p:Mbac.Params.t -> t_m:float ->
  Mbac_sim.Continuous_load.config
(** Continuous-load simulator configuration for a system: batch length
    2 max(T~_h, T_m, T_c) (the paper's sampling period), warmup 5 batches,
    and profile-dependent event caps. *)

val rcbr_factory :
  p:Mbac.Params.t ->
  Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t
(** RCBR source factory matching the Params (the paper's §5.2 sources). *)

val ce_controller :
  capacity:float -> t_m:float -> alpha_ce:float -> Mbac.Controller.t
(** The certainty-equivalent MBAC used by the sweeps: EWMA estimator
    with memory [t_m], Gaussian criterion at [alpha_ce].  Supports
    {!Mbac.Controller.copy} (so it works under {!Mbac_sim.Splitting}). *)

val run_mbac :
  profile:profile ->
  p:Mbac.Params.t ->
  t_m:float ->
  alpha_ce:float ->
  tag:string ->
  Mbac_sim.Continuous_load.result
(** Simulate the certainty-equivalent MBAC with memory [t_m] at target
    [alpha_ce] on RCBR traffic defined by [p]. *)

val run_mbac_rare :
  profile:profile ->
  p:Mbac.Params.t ->
  t_m:float ->
  alpha_ce:float ->
  tag:string ->
  Mbac_sim.Splitting.result
(** Deep-tail variant of {!run_mbac}: estimate the same system's
    overflow probability with the multilevel-splitting engine
    ({!Mbac_sim.Splitting}) instead of a direct run.  Call cells
    sequentially — the engine parallelizes its own clone trials over
    [!jobs] workers (bit-identical for every value). *)

(** {1 Report formatting} *)

val csv_dir : string option ref
(** When set (e.g. by [bin/experiments --csv-dir DIR]), every table is
    additionally written to [DIR/<section-id>[-k].csv] for plotting. *)

val section : Format.formatter -> string -> string -> unit
(** [section fmt id title] prints the experiment banner (and selects the
    CSV base name for subsequent tables). *)

val table :
  Format.formatter -> header:string list -> rows:string list list -> unit
(** Fixed-width table; column widths derived from content.  Also dumped
    as CSV when {!csv_dir} is set. *)

val fnum : float -> string
(** Compact scientific formatting for probabilities ("1.34e-03"). *)

val fnum3 : float -> string
(** 3-significant-digit general formatting. *)
