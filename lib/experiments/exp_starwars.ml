(** Figures 11–12: MBAC on long-range-dependent video traffic.

    The paper drives these experiments with a piecewise-CBR version of
    the MPEG-1 Starwars trace; we use the synthetic LRD substitute
    ({!Mbac_traffic.Mpeg_synth}, see DESIGN.md §3) passed through the
    same RCBR renegotiation.  Fig 11: memoryless estimation misses the
    target by 1–2 orders of magnitude as T~_h grows.  Fig 12: with
    T_m = T~_h the MBAC is robust despite the long-range dependence. *)

type row = {
  t_h : float;
  inv_t_h_tilde : float;
  t_m : float;
  sim : float;
  sim_kind : [ `Direct | `Gaussian_fit ];
  utilization : float;
}

let n = 100.0
let p_ce = 1e-3

(* One shared renegotiated trace per run (deterministic from the seed). *)
let make_trace () =
  let rng = Common.rng_for "starwars-trace" in
  let params = Mbac_traffic.Mpeg_synth.default_params ~mean_rate:1.0 in
  let raw = Mbac_traffic.Mpeg_synth.generate rng params ~frames:131072 in
  (* 24 frames per time unit -> renegotiate once per time unit at the
     95th percentile of the upcoming segment (edge buffer absorbs the rest). *)
  Mbac_traffic.Renegotiate.segments ~segment_len:24 ~percentile:0.95 raw

let t_hs ~profile =
  match profile with
  | Common.Quick -> [ 300.0; 1000.0; 3000.0 ]
  | Common.Full -> [ 100.0; 300.0; 1000.0; 3000.0; 10000.0 ]

let compute ~profile ~memoryless =
  let trace = make_trace () in
  let trace_mu = Mbac_traffic.Trace.mean trace in
  let trace_sigma = sqrt (Mbac_traffic.Trace.variance trace) in
  let make_source rng ~start = Mbac_traffic.Trace_source.create rng trace ~start in
  let alpha = Mbac_stats.Gaussian.q_inv p_ce in
  let capacity = n *. trace_mu in
  (* The renegotiated trace is immutable and shared read-only by every
     cell; each cell's playback offset comes from its own stream. *)
  Common.par_map
    (fun t_h ->
      (* pseudo-Params: used only for time-scales in the sim config *)
      let p =
        Mbac.Params.make ~n ~mu:trace_mu ~sigma:trace_sigma ~t_h ~t_c:1.0
          ~p_q:p_ce
      in
      let t_h_tilde = Mbac.Params.t_h_tilde p in
      let t_m = if memoryless then 0.0 else t_h_tilde in
      let estimator = Mbac.Estimator.ewma ~t_m in
      let controller =
        Mbac.Controller.make
          ~name:(Printf.sprintf "starwars[t_m=%g]" t_m)
          ~observe:(Mbac.Estimator.observe estimator)
          ~admissible:(fun obs ->
            match Mbac.Estimator.current estimator with
            | Some { Mbac.Estimator.mu_hat; var_hat } when mu_hat > 0.0 ->
                Mbac.Criterion.admissible ~capacity ~mu:mu_hat
                  ~sigma:(sqrt var_hat) ~alpha
            | Some _ | None -> Mbac.Observation.count obs + 1)
          ~reset:(fun () -> Mbac.Estimator.reset estimator)
          ()
      in
      let cfg = Common.sim_config ~profile ~p ~t_m in
      let tag =
        Printf.sprintf "starwars-%s-%g"
          (if memoryless then "nomem" else "mem")
          t_h
      in
      let r =
        Mbac_sim.Continuous_load.run (Common.rng_for tag) cfg ~controller
          ~make_source
      in
      { t_h; inv_t_h_tilde = 1.0 /. t_h_tilde; t_m;
        sim = r.Mbac_sim.Continuous_load.p_f;
        sim_kind = r.Mbac_sim.Continuous_load.estimate_kind;
        utilization = r.Mbac_sim.Continuous_load.utilization })
    (t_hs ~profile)

let print_rows fmt rows =
  Common.table fmt
    ~header:[ "T_h"; "1/T~_h"; "T_m"; "sim p_f"; "est"; "util" ]
    ~rows:
      (List.map
         (fun r ->
           [ Common.fnum3 r.t_h; Common.fnum r.inv_t_h_tilde;
             Common.fnum3 r.t_m; Common.fnum r.sim;
             (match r.sim_kind with `Direct -> "direct" | `Gaussian_fit -> "fit");
             Printf.sprintf "%.3f" r.utilization ])
         rows)

let run_fig11 ~profile fmt =
  Common.section fmt "fig11"
    "LRD video (Starwars-like), memoryless estimation (T_m = 0)";
  print_rows fmt (compute ~profile ~memoryless:true);
  Format.fprintf fmt
    "Paper: with memoryless estimation the target p_ce = 1e-3 is missed \
     by 1-2 orders of magnitude once T~_h is large.@."

let run_fig12 ~profile fmt =
  Common.section fmt "fig12"
    "LRD video (Starwars-like), memory window T_m = T~_h";
  print_rows fmt (compute ~profile ~memoryless:false);
  Format.fprintf fmt
    "Paper: with T_m = T~_h the MBAC is robust — the strong long-term \
     fluctuations of the LRD traffic do not degrade performance.@."
