(** Figure 5: overflow probability vs estimator memory T_m — theory
    (eqns (37)/(38)) against continuous-load simulation.
    Paper setting: T_h = 1000, T_c = 1.0, p_ce = 1e-3 (n = 100 here). *)

type row = {
  t_m : float;
  theory_38 : float;
  theory_37 : float;
  sim : float;
  sim_point : float;  (* the paper's point-sampled estimator (§5.2) *)
  sim_kind : [ `Direct | `Gaussian_fit ];
  utilization : float;
}

let params =
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0 ~p_q:1e-3

let t_ms ~profile =
  match profile with
  | Common.Quick -> [ 0.0; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0 ]
  | Common.Full -> [ 0.0; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 ]

let compute ~profile =
  let p = params in
  let alpha = Mbac.Params.alpha_q p in
  Common.par_map
    (fun t_m ->
      let r =
        Common.run_mbac ~profile ~p ~t_m ~alpha_ce:alpha
          ~tag:(Printf.sprintf "fig5-%g" t_m)
      in
      { t_m;
        theory_38 = Mbac.Memory_formula.overflow_closed_form ~p ~t_m ~alpha_ce:alpha;
        theory_37 = Mbac.Memory_formula.overflow_cached ~p ~t_m ~alpha_ce:alpha;
        sim = r.Mbac_sim.Continuous_load.p_f;
        sim_point = r.Mbac_sim.Continuous_load.p_f_point;
        sim_kind = r.Mbac_sim.Continuous_load.estimate_kind;
        utilization = r.Mbac_sim.Continuous_load.utilization })
    (t_ms ~profile)

let run ~profile fmt =
  Common.section fmt "fig5" "p_f vs memory window T_m: theory and simulation";
  Format.fprintf fmt "%a (T~_h = %g)@." Mbac.Params.pp params
    (Mbac.Params.t_h_tilde params);
  let rows = compute ~profile in
  Common.table fmt
    ~header:
      [ "T_m"; "theory (38)"; "theory (37)"; "simulated"; "point-sampled";
        "est"; "util" ]
    ~rows:
      (List.map
         (fun r ->
           [ Common.fnum3 r.t_m; Common.fnum r.theory_38;
             Common.fnum r.theory_37; Common.fnum r.sim;
             Common.fnum r.sim_point;
             (match r.sim_kind with `Direct -> "direct" | `Gaussian_fit -> "fit");
             Printf.sprintf "%.3f" r.utilization ])
         rows);
  Format.fprintf fmt
    "Paper: theory is conservative w.r.t. simulation but the shape and the \
     knee (T_m beyond which more memory stops helping) match; p_f \
     approaches p_ce = 1e-3 for T_m ~ T~_h = %g.  The point-sampled \
     column is the paper's §5.2 estimator (one sample per batch period): \
     it agrees with the time-weighted estimate where samples are \
     plentiful and illustrates why small p_f needs the long runs / \
     Gaussian-fit fallback of the full profile.@."
    (Mbac.Params.t_h_tilde params)
