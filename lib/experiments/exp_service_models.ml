(** Link/service-model ablation (extension):

    - [`Renegotiation_blocking]: the RCBR service (§2, [10]) whose QoS is
      the renegotiation failure probability — the paper argues the
      bufferless overflow probability is exactly this quantity's model.
    - [`Buffered]: the §2 claim that bufferless performance conservatively
      bounds a buffered link. *)

type row = {
  model : string;
  p_f : float;
  reneg_fail : float;
  buffer_loss : float;
  utilization : float;
}

let params = Exp_fig5.params

let compute ~profile =
  let p = params in
  let capacity = Mbac.Params.capacity p in
  let t_m = Mbac.Window.recommended_t_m p in
  let controller () =
    Mbac.Controller.with_memory ~capacity ~p_ce:p.Mbac.Params.p_q ~t_m
  in
  let run_link name link =
    let cfg =
      { (Common.sim_config ~profile ~p ~t_m) with
        Mbac_sim.Continuous_load.link }
    in
    let r =
      Mbac_sim.Continuous_load.run
        (Common.rng_for ("service-" ^ name))
        cfg ~controller:(controller ()) ~make_source:(Common.rcbr_factory ~p)
    in
    { model = name;
      p_f = r.Mbac_sim.Continuous_load.p_f;
      reneg_fail = r.Mbac_sim.Continuous_load.reneg_failure_probability;
      buffer_loss = r.Mbac_sim.Continuous_load.buffer_loss_fraction;
      utilization = r.Mbac_sim.Continuous_load.utilization }
  in
  Common.par_map
    (fun (name, link) -> run_link name link)
    [ ("bufferless", `Bufferless);
      ("rcbr renegotiation", `Renegotiation_blocking);
      (* small buffers: fractions of (capacity x correlation time-scale) *)
      ("buffered (B = 0.5)", `Buffered 0.5);
      ("buffered (B = 5)", `Buffered 5.0) ]

let run ~profile fmt =
  Common.section fmt "service"
    "Service-model ablation: bufferless vs RCBR renegotiation vs buffered";
  Format.fprintf fmt "%a, T_m = T~_h@." Mbac.Params.pp params;
  let rows = compute ~profile in
  Common.table fmt
    ~header:[ "link model"; "overflow p_f"; "reneg failure"; "buffer loss";
              "util" ]
    ~rows:
      (List.map
         (fun r ->
           let show x = if Float.is_nan x then "-" else Common.fnum x in
           [ r.model; Common.fnum r.p_f; show r.reneg_fail;
             show r.buffer_loss; Printf.sprintf "%.3f" r.utilization ])
         rows);
  Format.fprintf fmt
    "Expected: the renegotiation-failure probability of the RCBR service \
     is of the order of the bufferless overflow probability (the quantity \
     the paper analyses), and buffered loss is strictly smaller than the \
     bufferless p_f — which is therefore a conservative design bound.@."
