type profile = Quick | Full

let src = Logs.Src.create "mbac.experiments" ~doc:"Experiment sweep progress"

module Log = (val Logs.src_log src : Logs.LOG)

let profile_of_string s =
  match String.lowercase_ascii s with
  | "quick" -> Quick
  | "full" -> Full
  | other -> invalid_arg ("Common.profile_of_string: " ^ other)

let seed = ref 20260706

let rng_for tag =
  (* Collision-resistant stream derivation: the full tag is hashed
     (FNV-1a over every byte) and mixed with the root seed.  The stream
     depends only on (seed, tag) — not on how many streams were derived
     before it or on which domain asks — so sweeps are reproducible
     cell-by-cell under any parallel schedule. *)
  Mbac_stats.Rng.derive ~seed:!seed ~tag

let jobs = ref (Mbac_sim.Parallel.default_jobs ())

(* Progress goes through Logs (stderr), never stdout: the result stream
   stays byte-identical whatever the verbosity, and --quiet silences
   sweeps entirely. *)
let par_map ?init f xs =
  let n = List.length xs in
  (* Log the width the pool will actually use — [run_tasks] clamps the
     request to the task count and the domain cap, so echoing [!jobs]
     here would overstate narrow sweeps. *)
  let width = Mbac_sim.Parallel.effective_jobs ~jobs:!jobs n in
  Log.info (fun m -> m "sweep: %d cell(s) on %d worker domain(s)" n width);
  let r =
    Mbac_telemetry.Profile.span "experiments.par_map" (fun () ->
        Mbac_sim.Parallel.map ~jobs:!jobs ?init f xs)
  in
  Log.info (fun m -> m "sweep: %d cell(s) done" n);
  r

let sim_config ~profile ~p ~t_m =
  let t_h_tilde = Mbac.Params.t_h_tilde p in
  let batch = 2.0 *. Float.max t_h_tilde (Float.max t_m p.Mbac.Params.t_c) in
  let base =
    Mbac_sim.Continuous_load.default_config
      ~capacity:(Mbac.Params.capacity p)
      ~holding_time_mean:p.Mbac.Params.t_h
      ~target_p_q:p.Mbac.Params.p_q
  in
  let max_events =
    match profile with Quick -> 4_000_000 | Full -> 400_000_000
  in
  { base with
    Mbac_sim.Continuous_load.warmup = 5.0 *. batch;
    batch_length = batch;
    min_batches = 16;
    check_every_events = 50_000;
    max_events }

let rcbr_factory ~p rng ~start =
  Mbac_traffic.Rcbr.create rng
    { Mbac_traffic.Rcbr.mu = p.Mbac.Params.mu;
      sigma = p.Mbac.Params.sigma;
      t_c = p.Mbac.Params.t_c }
    ~start

let ce_controller ~capacity ~t_m ~alpha_ce =
  let p_ce = Mbac_stats.Gaussian.q alpha_ce in
  (* Extremely small adjusted targets underflow Q; the criterion only needs
     alpha, so build the controller directly from the estimator.  The
     recursive build gives the controller a [copy] (needed by the
     rare-event splitting engine's clone trials). *)
  let rec build estimator =
    Mbac.Controller.make
      ~name:(Printf.sprintf "ce[t_m=%g,alpha=%.3g,p_ce=%.3g]" t_m alpha_ce p_ce)
      ~observe:(Mbac.Estimator.observe estimator)
      ~admissible:(fun obs ->
        match Mbac.Estimator.current estimator with
        | Some { Mbac.Estimator.mu_hat; var_hat } when mu_hat > 0.0 ->
            Mbac.Criterion.admissible ~capacity ~mu:mu_hat
              ~sigma:(sqrt var_hat) ~alpha:alpha_ce
        | Some _ | None -> Mbac.Observation.count obs + 1)
      ~reset:(fun () -> Mbac.Estimator.reset estimator)
      ~copy:(fun () -> build (Mbac.Estimator.copy estimator))
      ()
  in
  build (Mbac.Estimator.ewma ~t_m)

let run_mbac ~profile ~p ~t_m ~alpha_ce ~tag =
  let capacity = Mbac.Params.capacity p in
  let controller = ce_controller ~capacity ~t_m ~alpha_ce in
  let cfg = sim_config ~profile ~p ~t_m in
  (* Label this cell's time-series windows with the sweep tag (the
     controller name alone does not identify the cell). *)
  Mbac_telemetry.Timeseries.set_label tag;
  Mbac_telemetry.Profile.span "experiments.run_mbac" (fun () ->
      Mbac_sim.Continuous_load.run (rng_for tag) cfg ~controller
        ~make_source:(rcbr_factory ~p))

let run_mbac_rare ~profile ~p ~t_m ~alpha_ce ~tag =
  let capacity = Mbac.Params.capacity p in
  let controller = ce_controller ~capacity ~t_m ~alpha_ce in
  let cfg = sim_config ~profile ~p ~t_m in
  let trials, pilot_batches =
    match profile with Quick -> (1024, 100.0) | Full -> (8192, 1000.0)
  in
  let scfg =
    { (Mbac_sim.Splitting.default_config
         ~pilot_time:(pilot_batches *. cfg.Mbac_sim.Continuous_load.batch_length))
      with
      Mbac_sim.Splitting.trials_per_level = trials;
      seed_tag = tag }
  in
  Mbac_telemetry.Timeseries.set_label tag;
  (* Cells run sequentially; the engine parallelizes its own clone
     trials over the worker pool (results independent of [!jobs]). *)
  Mbac_telemetry.Profile.span "experiments.run_mbac_rare" (fun () ->
      Mbac_sim.Splitting.run ~jobs:!jobs ~seed:!seed scfg cfg ~controller
        ~make_source:(rcbr_factory ~p))

let csv_dir = ref None
let current_section = ref "untitled"
let tables_in_section = ref 0

let section fmt id title =
  current_section := id;
  tables_in_section := 0;
  Log.info (fun m -> m "section %s: %s" id title);
  Format.fprintf fmt "@.=== %s: %s ===@." id title

(* Quote CSV fields that need it (commas / quotes / spaces are fine to
   leave unquoted except commas and quotes). *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let dump_csv ~header ~rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      (try if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
       with Sys_error _ -> ());
      incr tables_in_section;
      let suffix =
        if !tables_in_section = 1 then ""
        else Printf.sprintf "-%d" !tables_in_section
      in
      let path = Filename.concat dir (!current_section ^ suffix ^ ".csv") in
      let oc = open_out path in
      let emit cells =
        output_string oc (String.concat "," (List.map csv_field cells));
        output_char oc '\n'
      in
      emit header;
      List.iter emit rows;
      close_out oc

let table fmt ~header ~rows =
  dump_csv ~header ~rows;
  let all = header :: rows in
  let n_cols = List.length header in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init n_cols width in
  let print_row row =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        Format.fprintf fmt "%s%s" (String.make (w - String.length cell + 2) ' ') cell)
      row;
    Format.fprintf fmt "@."
  in
  print_row header;
  Format.fprintf fmt "%s@."
    (String.make (List.fold_left ( + ) 0 widths + (2 * n_cols)) '-');
  List.iter print_row rows

let fnum x =
  if Float.is_nan x then "nan"
  else if x = 0.0 then "0"
  else Printf.sprintf "%.2e" x

let fnum3 x =
  if Float.is_nan x then "nan" else Printf.sprintf "%.3g" x
