(** Experiment registry: names, descriptions, and runners for every
    reproduced figure/result (the DESIGN.md experiment index). *)

type entry = {
  id : string;
  title : string;
  simulation : bool;  (** involves Monte-Carlo (vs analysis-only) *)
  run : profile:Common.profile -> Format.formatter -> unit;
}

val all : entry list
(** In presentation order: prop31, prop33, eqn21, fig5, fig6, fig7, fig9,
    fig10, fig11, fig12, regimes, util40, baselines, hetero, aggregate. *)

val find : string -> entry option

val run_entry : profile:Common.profile -> Format.formatter -> entry -> unit
(** Run one experiment with uniform observability: start/done progress
    on {!Common.src} and, when profiling is enabled, a wall-clock span
    named [experiment.<id>]. *)

val run_all : profile:Common.profile -> Format.formatter -> unit
val run_analysis_only : profile:Common.profile -> Format.formatter -> unit
(** Both drive every entry through {!run_entry}. *)
