(** Open-addressing int→int hash map for the per-link reservation
    tables.

    Keys are non-negative ints (packed [(route, seq)] flow keys); values
    are link-local slot indices.  Steady-state [add]/[find]/[remove] are
    allocation-free — the backing arrays only grow, by doubling, when
    the live population does.  The probe layout is a pure function of
    the operation sequence, so identical op sequences (which the
    sharding-invariance contract guarantees per link) produce identical
    tables. *)

type t

val create : unit -> t

val add : t -> key:int -> value:int -> unit
(** [key] must be absent (enforced only by the caller: the network
    engine never double-reserves a flow on a link). *)

val find : t -> key:int -> int
(** [-1] when absent. *)

val remove : t -> key:int -> unit
(** No-op when absent. *)

val length : t -> int
