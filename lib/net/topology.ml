type route = { links : int array; rate : float }
type t = { capacities : float array; routes : route array }

let make ~capacities ~routes =
  let nl = Array.length capacities in
  if nl = 0 then invalid_arg "Topology.make: no links";
  if Array.length routes = 0 then invalid_arg "Topology.make: no routes";
  Array.iter
    (fun c ->
      if not (c > 0.0) then invalid_arg "Topology.make: capacity <= 0")
    capacities;
  let seen = Array.make nl (-1) in
  Array.iteri
    (fun r { links; rate } ->
      if Array.length links = 0 then invalid_arg "Topology.make: empty route";
      if not (rate > 0.0) then invalid_arg "Topology.make: route rate <= 0";
      Array.iter
        (fun l ->
          if l < 0 || l >= nl then
            invalid_arg "Topology.make: route references unknown link";
          if seen.(l) = r then
            invalid_arg "Topology.make: route visits a link twice";
          seen.(l) <- r)
        links)
    routes;
  { capacities; routes }

let num_links t = Array.length t.capacities
let num_routes t = Array.length t.routes

let max_hops t =
  Array.fold_left (fun m r -> max m (Array.length r.links)) 0 t.routes

(* ---------- generators ---------- *)

let line ~links ~capacity ~rate =
  if links < 1 then invalid_arg "Topology.line: links < 1";
  let half = rate /. 2.0 in
  let local =
    Array.init links (fun i -> { links = [| i |]; rate = half })
  in
  let transit = { links = Array.init links (fun i -> i); rate = half } in
  (* A 1-link line needs no separate transit route: keep the offered
     rate per link equal to [rate] without a duplicate route. *)
  let routes =
    if links = 1 then [| { links = [| 0 |]; rate } |]
    else Array.append local [| transit |]
  in
  make ~capacities:(Array.make links capacity) ~routes

let star ~leaves ~capacity ~rate =
  if leaves < 2 then invalid_arg "Topology.star: leaves < 2";
  let pair_rate = rate /. float_of_int (leaves - 1) in
  let routes = ref [] in
  for i = leaves - 1 downto 0 do
    for j = leaves - 1 downto i + 1 do
      routes := { links = [| i; j |]; rate = pair_rate } :: !routes
    done
  done;
  make ~capacities:(Array.make leaves capacity) ~routes:(Array.of_list !routes)

let core_edge ~edges ~cores ~capacity ~core_scale ~rate =
  if edges < 2 then invalid_arg "Topology.core_edge: edges < 2";
  if cores < 1 then invalid_arg "Topology.core_edge: cores < 1";
  if not (core_scale > 0.0) then
    invalid_arg "Topology.core_edge: core_scale <= 0";
  let capacities =
    Array.init (edges + cores) (fun i ->
        if i < edges then capacity else core_scale *. capacity)
  in
  let pair_rate = rate /. float_of_int (edges - 1) in
  let routes = ref [] in
  for i = edges - 1 downto 0 do
    for j = edges - 1 downto i + 1 do
      let core = edges + ((i + j) mod cores) in
      routes := { links = [| i; core; j |]; rate = pair_rate } :: !routes
    done
  done;
  make ~capacities ~routes:(Array.of_list !routes)

(* ---------- spec strings ---------- *)

let of_spec ~rate ~capacity spec =
  let fail () =
    Error
      (Printf.sprintf
         "bad topology spec %S (expected line:N, star:N or core-edge:ExC)"
         spec)
  in
  match String.index_opt spec ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub spec 0 i in
      let arg = String.sub spec (i + 1) (String.length spec - i - 1) in
      match kind with
      | "line" -> (
          match int_of_string_opt arg with
          | Some n when n >= 1 -> Ok (line ~links:n ~capacity ~rate)
          | Some _ | None -> fail ())
      | "star" -> (
          match int_of_string_opt arg with
          | Some n when n >= 2 -> Ok (star ~leaves:n ~capacity ~rate)
          | Some _ | None -> fail ())
      | "core-edge" -> (
          match String.index_opt arg 'x' with
          | None -> fail ()
          | Some j -> (
              let e = String.sub arg 0 j in
              let c = String.sub arg (j + 1) (String.length arg - j - 1) in
              match (int_of_string_opt e, int_of_string_opt c) with
              | Some e, Some c when e >= 2 && c >= 1 ->
                  Ok
                    (core_edge ~edges:e ~cores:c ~capacity ~core_scale:2.0
                       ~rate)
              | _ -> fail ()))
      | _ -> fail ())

(* ---------- config files ---------- *)

let parse text =
  let caps = ref [] and ncaps = ref 0 in
  let routes = ref [] in
  let err line msg = Error (Printf.sprintf "line %d: %s" line msg) in
  let lines = String.split_on_char '\n' text in
  let rec go lineno = function
    | [] -> (
        let capacities = Array.of_list (List.rev !caps) in
        let routes = Array.of_list (List.rev !routes) in
        if Array.length capacities = 0 then Error "no links defined"
        else if Array.length routes = 0 then Error "no routes defined"
        else
          match make ~capacities ~routes with
          | t -> Ok t
          | exception Invalid_argument m -> Error m)
    | l :: rest -> (
        let l =
          match String.index_opt l '#' with
          | Some i -> String.sub l 0 i
          | None -> l
        in
        let toks =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' l)
        in
        match toks with
        | [] -> go (lineno + 1) rest
        | "link" :: [ c ] -> (
            match float_of_string_opt c with
            | Some c when c > 0.0 ->
                caps := c :: !caps;
                incr ncaps;
                go (lineno + 1) rest
            | Some _ | None -> err lineno "link needs a positive capacity")
        | "route" :: rate :: (_ :: _ as ids) -> (
            match float_of_string_opt rate with
            | Some rate when rate > 0.0 -> (
                let parsed =
                  List.fold_left
                    (fun acc id ->
                      match (acc, int_of_string_opt id) with
                      | Some acc, Some i -> Some (i :: acc)
                      | _ -> None)
                    (Some []) ids
                in
                match parsed with
                | Some rev ->
                    routes :=
                      { links = Array.of_list (List.rev rev); rate }
                      :: !routes;
                    go (lineno + 1) rest
                | None -> err lineno "route link ids must be integers")
            | Some _ | None -> err lineno "route needs a positive rate")
        | d :: _ -> err lineno (Printf.sprintf "unknown directive %S" d))
  in
  go 1 lines

let pp ppf t =
  Format.fprintf ppf "links %d routes %d@." (num_links t) (num_routes t);
  Array.iteri
    (fun i c -> Format.fprintf ppf "  link %d capacity %g@." i c)
    t.capacities;
  Array.iteri
    (fun i { links; rate } ->
      Format.fprintf ppf "  route %d rate %g via" i rate;
      Array.iter (fun l -> Format.fprintf ppf " %d" l) links;
      Format.fprintf ppf "@.")
    t.routes
