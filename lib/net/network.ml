module CQ = Mbac_sim.Calendar_queue
module Meas = Mbac_sim.Measurement
module Handle = Mbac_telemetry.Metrics.Handle

type config = {
  topology : Topology.t;
  shards : int;
  holding_time_mean : float;
  setup_delay : float;
  warmup : float;
  batch_length : float;
  target_p_q : float;
  max_time : float;
  max_events : int;
  max_flows_per_link : int;
}

let default_config ~topology ~holding_time_mean ~target_p_q =
  { topology;
    shards = 1;
    holding_time_mean;
    setup_delay = holding_time_mean /. 100.0;
    warmup = holding_time_mean;
    batch_length = holding_time_mean /. 5.0;
    target_p_q;
    max_time = 1e12;
    max_events = 200_000_000;
    max_flows_per_link = 10_000_000 }

type link_result = {
  link : int;
  capacity : float;
  p_f : float;
  estimate_kind : [ `Direct | `Gaussian_fit ];
  p_f_point : float;
  mean_load : float;
  std_load : float;
  utilization : float;
  reserved : int;
  link_blocked : int;
  released : int;
  updates : int;
  ovf_episodes : int;
  ovf_time : float;
}

type result = {
  flows_admitted : int;
  flows_blocked : int;
  flows_departed : int;
  blocking_probability : float;
  events : int;
  sim_time : float;
  windows : int;
  messages : int;
  links : link_result array;
}

let route_stream_tag i = Printf.sprintf "net-route-%d" i

(* ---------- wheel payload encoding ----------

   Same 2-bit tag and 24-bit slot as [Continuous_load], but the
   generation is truncated to 18 bits to make room for a 19-bit route
   id: stale depart/change events (leftovers of a freed flow slot) must
   be attributed to their ORIGINAL flow's ingress link — reading the
   slot's current occupant would attribute them to whatever flow reused
   the slot, which depends on the sharding.  18 generation bits are
   ample: a stale event only spans one holding time, during which any
   single slot is reused a handful of times, never 2^18. *)

let tag_arrive = 0 (* slot = local route index *)
let tag_depart = 1
let tag_change = 2
let tag_msg = 3 (* slot = arena index *)
let slot_bits = 24
let slot_mask = (1 lsl slot_bits) - 1
let gen_bits = 18
let gen_mask = (1 lsl gen_bits) - 1
let route_bits = 19
let route_mask = (1 lsl route_bits) - 1

let[@inline] encode ~tag ~slot ~gen ~route =
  tag
  lor (slot lsl 2)
  lor ((gen land gen_mask) lsl (slot_bits + 2))
  lor (route lsl (slot_bits + gen_bits + 2))

let[@inline] p_tag p = p land 3
let[@inline] p_slot p = (p lsr 2) land slot_mask
let[@inline] p_gen p = (p lsr (slot_bits + 2)) land gen_mask
let[@inline] p_route p = (p lsr (slot_bits + gen_bits + 2)) land route_mask

(* message kinds (arena / exchange payload) *)
let k_setup = 0
let k_confirm = 1
let k_reject = 2
let k_release = 3
let k_update = 4
let k_selfrel = 5

let[@inline] flow_key ~route ~seq = (route lsl 32) lor seq

(* ---------- telemetry ---------- *)

let m_events = Handle.counter "net_events_total"
let m_admitted = Handle.counter "net_flows_admitted_total"
let m_blocked = Handle.counter "net_flows_blocked_total"
let m_departed = Handle.counter "net_flows_departed_total"
let m_link_blocked = Handle.counter "net_link_blocked_total"
let m_messages = Handle.counter "net_messages_total"
let m_windows = Handle.counter "net_exchange_windows_total"
let m_ovf_episodes = Handle.counter "net_overflow_episodes_total"
let m_ovf_time = Handle.sum "net_overflow_time"
let m_time = Handle.sum "net_time_simulated"
let g_links = Handle.gauge "net_links"
let g_shards = Handle.gauge "net_shards"

(* ---------- per-link state ---------- *)

type link_hot = {
  mutable last_t : float;
  mutable sum_rate : float;
  mutable sum_sq : float;
  mutable ovf_start : float; (* nan when not in an episode *)
  mutable ovf_excess : float;
  mutable ovf_time : float;
}

type link_state = {
  l_id : int;
  l_capacity : float;
  l_ctrl : Mbac.Controller.t;
  l_meas : Meas.t;
  l_tab : Int_table.t;
  mutable l_granted : Float.Array.t;
  mutable l_key : int array; (* slot -> flow key, -1 when free *)
  mutable l_free : int array;
  mutable l_free_top : int;
  mutable l_limit : int;
  l_hot : link_hot;
  mutable l_n : int;
  mutable l_reserved : int;
  mutable l_blocked : int;
  mutable l_released : int;
  mutable l_updates : int;
  mutable l_ovf_episodes : int;
  mutable l_events : int;
}

type shard = {
  sh_id : int;
  wheel : CQ.t;
  links : link_state array;
  (* ingress routes of this shard *)
  sr_route : int array; (* local index -> global route id *)
  sr_rng : Mbac_stats.Rng.t array;
  sr_arrival_mean : float array;
  sr_seq : int array; (* per-route admitted-at-ingress counter *)
  (* ingress flow table (SoA, slot-indexed, free stack) *)
  mutable f_route : int array;
  mutable f_seq : int array;
  mutable f_gen : int array;
  mutable f_estab : int array;
  mutable f_sources : Mbac_traffic.Source.t option array;
  mutable f_free : int array;
  mutable f_free_top : int;
  mutable f_limit : int;
  (* arena of pending message events (wheel payloads are ints) *)
  mutable a_kind : int array;
  mutable a_link : int array;
  mutable a_hop : int array;
  mutable a_route : int array;
  mutable a_seq : int array;
  mutable a_islot : int array;
  mutable a_igen : int array;
  mutable a_rate : Float.Array.t;
  mutable a_tend : Float.Array.t;
  mutable a_free : int array;
  mutable a_free_top : int;
  mutable a_limit : int;
  mutable sh_events : int;
  mutable sh_admitted : int;
  mutable sh_blocked : int;
  mutable sh_departed : int;
}

type engine = {
  cfg : config;
  topo : Topology.t;
  d : float; (* setup delay = lookahead = window length *)
  owner : int array; (* link id -> shard id *)
  local_ix : int array; (* link id -> index into owner's [links] *)
  shards : shard array;
  ex : Exchange.t;
  make_source : Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t;
  mutable windows : int;
}

(* ---------- link slot table ---------- *)

let grow_link_table l =
  let cap = Array.length l.l_key in
  let ncap = if cap = 0 then 1024 else 2 * cap in
  let granted = Float.Array.create ncap in
  Float.Array.blit l.l_granted 0 granted 0 cap;
  let key = Array.make ncap (-1) in
  Array.blit l.l_key 0 key 0 cap;
  l.l_granted <- granted;
  l.l_key <- key

let link_alloc_slot l =
  if l.l_free_top > 0 then begin
    l.l_free_top <- l.l_free_top - 1;
    l.l_free.(l.l_free_top)
  end
  else begin
    if l.l_limit = Array.length l.l_key then grow_link_table l;
    let slot = l.l_limit in
    l.l_limit <- slot + 1;
    slot
  end

let link_free_slot l slot =
  l.l_key.(slot) <- -1;
  if l.l_free_top = Array.length l.l_free then begin
    let ncap = max 1024 (2 * Array.length l.l_free) in
    let free = Array.make ncap 0 in
    Array.blit l.l_free 0 free 0 l.l_free_top;
    l.l_free <- free
  end;
  l.l_free.(l.l_free_top) <- slot;
  l.l_free_top <- l.l_free_top + 1

let[@inline] link_obs l ~now =
  Mbac.Observation.make ~now ~n:l.l_n ~sum_rate:l.l_hot.sum_rate
    ~sum_sq:l.l_hot.sum_sq

(* Same arithmetic, same slot-scan order as [Continuous_load.resync_sums]
   — and triggered by the link's own event count, which is invariant
   under resharding, so the (harmlessly different) post-resync bits land
   at the same virtual instant for every shard count. *)
let resync_link l =
  let sum = ref 0.0 and sq = ref 0.0 in
  for slot = 0 to l.l_limit - 1 do
    if Array.unsafe_get l.l_key slot >= 0 then begin
      let g = Float.Array.unsafe_get l.l_granted slot in
      sum := !sum +. g;
      sq := !sq +. (g *. g)
    end
  done;
  l.l_hot.sum_rate <- !sum;
  l.l_hot.sum_sq <- !sq

(* Reserve one flow of [rate] on the link: the float updates are the
   exact expressions of [Continuous_load.admit_one]. *)
let reserve l ~key ~rate =
  let slot = link_alloc_slot l in
  Float.Array.set l.l_granted slot rate;
  l.l_key.(slot) <- key;
  Int_table.add l.l_tab ~key ~value:slot;
  l.l_n <- l.l_n + 1;
  l.l_hot.sum_rate <- l.l_hot.sum_rate +. rate;
  l.l_hot.sum_sq <- l.l_hot.sum_sq +. (rate *. rate);
  l.l_reserved <- l.l_reserved + 1

(* Release a reservation, notifying the controller like
   [Continuous_load.handle_depart] (observe + on_depart, zero-residue
   reset when the link empties). *)
let release l ~now ~slot =
  let key = l.l_key.(slot) in
  let g = Float.Array.get l.l_granted slot in
  Int_table.remove l.l_tab ~key;
  link_free_slot l slot;
  l.l_n <- l.l_n - 1;
  l.l_hot.sum_rate <- l.l_hot.sum_rate -. g;
  l.l_hot.sum_sq <- l.l_hot.sum_sq -. (g *. g);
  if l.l_n = 0 then begin
    l.l_hot.sum_rate <- 0.0;
    l.l_hot.sum_sq <- 0.0
  end;
  l.l_released <- l.l_released + 1;
  let obs = link_obs l ~now in
  Mbac.Controller.observe l.l_ctrl obs;
  Mbac.Controller.on_depart l.l_ctrl obs

(* Apply a renegotiated rate: the float updates are the exact
   expressions of [Continuous_load.handle_change]. *)
let apply_update l ~now ~slot ~desired =
  let old = Float.Array.get l.l_granted slot in
  l.l_updates <- l.l_updates + 1;
  Float.Array.set l.l_granted slot desired;
  l.l_hot.sum_rate <- l.l_hot.sum_rate +. desired -. old;
  l.l_hot.sum_sq <-
    l.l_hot.sum_sq +. (desired *. desired) -. (old *. old);
  let obs = link_obs l ~now in
  Mbac.Controller.observe l.l_ctrl obs

(* ---------- overflow + measurement segments ---------- *)

let track_overflow l ~t0 ~t1 =
  let over = l.l_hot.sum_rate > l.l_capacity in
  let in_episode = not (Float.is_nan l.l_hot.ovf_start) in
  if over && not in_episode then begin
    l.l_hot.ovf_start <- t0;
    l.l_hot.ovf_excess <- 0.0;
    l.l_ovf_episodes <- l.l_ovf_episodes + 1
  end
  else if (not over) && in_episode then begin
    l.l_hot.ovf_time <- l.l_hot.ovf_time +. (t0 -. l.l_hot.ovf_start);
    l.l_hot.ovf_start <- nan;
    l.l_hot.ovf_excess <- 0.0
  end;
  if over then
    l.l_hot.ovf_excess <-
      l.l_hot.ovf_excess +. ((l.l_hot.sum_rate -. l.l_capacity) *. (t1 -. t0))

let[@inline] record_segment l ~t1 =
  let t0 = l.l_hot.last_t in
  Meas.record l.l_meas ~t0 ~t1 ~load:l.l_hot.sum_rate;
  if t1 > t0 then track_overflow l ~t0 ~t1;
  l.l_hot.last_t <- t1

(* ---------- flow table ---------- *)

let grow_shard_flow_table sh =
  let cap = Array.length sh.f_sources in
  let ncap = if cap = 0 then 1024 else 2 * cap in
  let grow_int a = Array.append a (Array.make (ncap - cap) 0) in
  sh.f_route <- grow_int sh.f_route;
  sh.f_seq <- grow_int sh.f_seq;
  sh.f_gen <- grow_int sh.f_gen;
  sh.f_estab <- grow_int sh.f_estab;
  let sources = Array.make ncap None in
  Array.blit sh.f_sources 0 sources 0 cap;
  sh.f_sources <- sources

let flow_alloc sh =
  if sh.f_free_top > 0 then begin
    sh.f_free_top <- sh.f_free_top - 1;
    sh.f_free.(sh.f_free_top)
  end
  else begin
    if sh.f_limit = Array.length sh.f_sources then grow_shard_flow_table sh;
    if sh.f_limit > slot_mask then
      invalid_arg "Network: more concurrent ingress flows than slot bits";
    let slot = sh.f_limit in
    sh.f_limit <- slot + 1;
    slot
  end

let flow_free sh slot =
  sh.f_sources.(slot) <- None;
  sh.f_gen.(slot) <- sh.f_gen.(slot) + 1;
  if sh.f_free_top = Array.length sh.f_free then begin
    let ncap = max 1024 (2 * Array.length sh.f_free) in
    let free = Array.make ncap 0 in
    Array.blit sh.f_free 0 free 0 sh.f_free_top;
    sh.f_free <- free
  end;
  sh.f_free.(sh.f_free_top) <- slot;
  sh.f_free_top <- sh.f_free_top + 1

(* ---------- message arena ---------- *)

let grow_arena sh =
  let cap = Array.length sh.a_kind in
  let ncap = if cap = 0 then 256 else 2 * cap in
  let grow_int a = Array.append a (Array.make (ncap - cap) 0) in
  sh.a_kind <- grow_int sh.a_kind;
  sh.a_link <- grow_int sh.a_link;
  sh.a_hop <- grow_int sh.a_hop;
  sh.a_route <- grow_int sh.a_route;
  sh.a_seq <- grow_int sh.a_seq;
  sh.a_islot <- grow_int sh.a_islot;
  sh.a_igen <- grow_int sh.a_igen;
  let rate = Float.Array.create ncap in
  Float.Array.blit sh.a_rate 0 rate 0 cap;
  sh.a_rate <- rate;
  let tend = Float.Array.create ncap in
  Float.Array.blit sh.a_tend 0 tend 0 cap;
  sh.a_tend <- tend

let arena_alloc sh =
  if sh.a_free_top > 0 then begin
    sh.a_free_top <- sh.a_free_top - 1;
    sh.a_free.(sh.a_free_top)
  end
  else begin
    if sh.a_limit = Array.length sh.a_kind then grow_arena sh;
    if sh.a_limit > slot_mask then
      invalid_arg "Network: more pending messages than slot bits";
    let idx = sh.a_limit in
    sh.a_limit <- idx + 1;
    idx
  end

let arena_free sh idx =
  if sh.a_free_top = Array.length sh.a_free then begin
    let ncap = max 256 (2 * Array.length sh.a_free) in
    let free = Array.make ncap 0 in
    Array.blit sh.a_free 0 free 0 sh.a_free_top;
    sh.a_free <- free
  end;
  sh.a_free.(sh.a_free_top) <- idx;
  sh.a_free_top <- sh.a_free_top + 1

(* Queue a message as a wheel event on [sh] (delivery already decided). *)
let push_local sh ~time ~kind ~link ~hop ~route ~seq ~islot ~igen ~rate
    ~t_end =
  let idx = arena_alloc sh in
  sh.a_kind.(idx) <- kind;
  sh.a_link.(idx) <- link;
  sh.a_hop.(idx) <- hop;
  sh.a_route.(idx) <- route;
  sh.a_seq.(idx) <- seq;
  sh.a_islot.(idx) <- islot;
  sh.a_igen.(idx) <- igen;
  Float.Array.set sh.a_rate idx rate;
  Float.Array.set sh.a_tend idx t_end;
  CQ.push sh.wheel ~time (encode ~tag:tag_msg ~slot:idx ~gen:0 ~route:0)

(* Route a message to the shard owning [link]: straight into our own
   wheel when we own it (delivery times always land in a later window,
   so this never perturbs the current drain), through the exchange
   otherwise. *)
let send_msg eng sh ~time ~kind ~link ~hop ~route ~seq ~islot ~igen ~rate
    ~t_end =
  let dst = eng.owner.(link) in
  if dst = sh.sh_id then
    push_local sh ~time ~kind ~link ~hop ~route ~seq ~islot ~igen ~rate
      ~t_end
  else
    Exchange.send eng.ex ~src:sh.sh_id ~dst ~time ~kind ~link ~hop ~route
      ~seq ~islot ~igen ~rate ~t_end

let[@inline] link_of eng sh link_id = sh.links.(eng.local_ix.(link_id))

(* ---------- event handlers ---------- *)

(* Ingress arrival on [route]: bit-for-bit the Poisson arrival path of
   [Continuous_load.handle_arrival] on the ingress link (same draw
   order: source, holding, next inter-arrival), plus the setup walk for
   multi-hop routes. *)
let handle_arrival eng sh ~te ~lr l =
  let route = sh.sr_route.(lr) in
  let rng = sh.sr_rng.(lr) in
  let links = eng.topo.routes.(route).Topology.links in
  let obs = link_obs l ~now:te in
  Mbac.Controller.observe l.l_ctrl obs;
  let m = Mbac.Controller.admissible l.l_ctrl obs in
  if l.l_n < m && l.l_n < eng.cfg.max_flows_per_link then begin
    let source = eng.make_source rng ~start:te in
    let rate = Mbac_traffic.Source.rate source in
    let fslot = flow_alloc sh in
    let gen = sh.f_gen.(fslot) in
    let seq = sh.sr_seq.(lr) in
    sh.sr_seq.(lr) <- seq + 1;
    let key = flow_key ~route ~seq in
    reserve l ~key ~rate;
    sh.f_route.(fslot) <- route;
    sh.f_seq.(fslot) <- seq;
    sh.f_sources.(fslot) <- Some source;
    let holding =
      Mbac_stats.Sample.exponential rng ~mean:eng.cfg.holding_time_mean
    in
    let t_end = te +. holding in
    CQ.push sh.wheel ~time:t_end
      (encode ~tag:tag_depart ~slot:fslot ~gen ~route);
    let hops = Array.length links in
    if hops = 1 then begin
      CQ.push sh.wheel
        ~time:(Mbac_traffic.Source.next_change source)
        (encode ~tag:tag_change ~slot:fslot ~gen ~route);
      sh.f_estab.(fslot) <- 1;
      sh.sh_admitted <- sh.sh_admitted + 1
    end
    else begin
      sh.f_estab.(fslot) <- 0;
      send_msg eng sh ~time:(te +. eng.d) ~kind:k_setup ~link:links.(1)
        ~hop:1 ~route ~seq ~islot:fslot ~igen:sh.f_gen.(fslot) ~rate ~t_end
    end;
    let obs' = Mbac.Observation.admit obs ~rate in
    Mbac.Controller.observe l.l_ctrl obs';
    Mbac.Controller.on_admit l.l_ctrl obs'
  end
  else begin
    l.l_blocked <- l.l_blocked + 1;
    sh.sh_blocked <- sh.sh_blocked + 1
  end;
  CQ.push sh.wheel
    ~time:
      (te +. Mbac_stats.Sample.exponential rng ~mean:sh.sr_arrival_mean.(lr))
    (encode ~tag:tag_arrive ~slot:lr ~gen:0 ~route)

let handle_depart eng sh ~te ~fslot ~gen l =
  match sh.f_sources.(fslot) with
  | Some _ when sh.f_gen.(fslot) land gen_mask = gen ->
      let route = sh.f_route.(fslot) in
      let key = flow_key ~route ~seq:sh.f_seq.(fslot) in
      let slot = Int_table.find l.l_tab ~key in
      release l ~now:te ~slot;
      flow_free sh fslot;
      sh.sh_departed <- sh.sh_departed + 1;
      ignore eng
  | Some _ | None -> () (* stale: flow rejected downstream and freed *)

let handle_change eng sh ~te ~fslot ~gen l =
  match sh.f_sources.(fslot) with
  | Some source when sh.f_gen.(fslot) land gen_mask = gen ->
      Mbac_traffic.Source.fire source ~now:te;
      let desired = Mbac_traffic.Source.rate source in
      let route = sh.f_route.(fslot) in
      let seq = sh.f_seq.(fslot) in
      let key = flow_key ~route ~seq in
      let slot = Int_table.find l.l_tab ~key in
      let old = Float.Array.get l.l_granted slot in
      l.l_updates <- l.l_updates + 1;
      Float.Array.set l.l_granted slot desired;
      l.l_hot.sum_rate <- l.l_hot.sum_rate +. desired -. old;
      l.l_hot.sum_sq <-
        l.l_hot.sum_sq +. (desired *. desired) -. (old *. old);
      CQ.push sh.wheel
        ~time:(Mbac_traffic.Source.next_change source)
        (encode ~tag:tag_change ~slot:fslot ~gen ~route);
      let obs = link_obs l ~now:te in
      Mbac.Controller.observe l.l_ctrl obs;
      let links = eng.topo.routes.(route).Topology.links in
      for h = 1 to Array.length links - 1 do
        send_msg eng sh
          ~time:(te +. (float_of_int h *. eng.d))
          ~kind:k_update ~link:links.(h) ~hop:h ~route ~seq ~islot:0
          ~igen:0 ~rate:desired ~t_end:0.0
      done
  | Some _ | None -> () (* stale event of a departed flow *)

let handle_msg eng sh ~te ~idx l =
  let kind = sh.a_kind.(idx) in
  let hop = sh.a_hop.(idx) in
  let route = sh.a_route.(idx) in
  let seq = sh.a_seq.(idx) in
  let islot = sh.a_islot.(idx) in
  let igen = sh.a_igen.(idx) in
  let rate = Float.Array.get sh.a_rate idx in
  let t_end = Float.Array.get sh.a_tend idx in
  arena_free sh idx;
  let links = eng.topo.routes.(route).Topology.links in
  if kind = k_setup then begin
    let obs = link_obs l ~now:te in
    Mbac.Controller.observe l.l_ctrl obs;
    let m = Mbac.Controller.admissible l.l_ctrl obs in
    if l.l_n < m && l.l_n < eng.cfg.max_flows_per_link then begin
      let key = flow_key ~route ~seq in
      reserve l ~key ~rate;
      let obs' = Mbac.Observation.admit obs ~rate in
      Mbac.Controller.observe l.l_ctrl obs';
      Mbac.Controller.on_admit l.l_ctrl obs';
      (* the link releases itself at the flow's own end time, shifted by
         the same per-hop delay its setup took: no departure messages *)
      push_local sh
        ~time:(t_end +. (float_of_int hop *. eng.d))
        ~kind:k_selfrel ~link:l.l_id ~hop ~route ~seq ~islot:0 ~igen:0
        ~rate:0.0 ~t_end:0.0;
      if hop = Array.length links - 1 then
        send_msg eng sh ~time:(te +. eng.d) ~kind:k_confirm ~link:links.(0)
          ~hop:0 ~route ~seq ~islot ~igen ~rate:0.0 ~t_end:0.0
      else
        send_msg eng sh ~time:(te +. eng.d) ~kind:k_setup
          ~link:links.(hop + 1) ~hop:(hop + 1) ~route ~seq ~islot ~igen
          ~rate ~t_end
    end
    else begin
      l.l_blocked <- l.l_blocked + 1;
      send_msg eng sh ~time:(te +. eng.d) ~kind:k_reject ~link:links.(0)
        ~hop ~route ~seq ~islot ~igen ~rate:0.0 ~t_end:0.0
    end
  end
  else if kind = k_confirm then begin
    match sh.f_sources.(islot) with
    | Some source when sh.f_gen.(islot) = igen ->
        sh.f_estab.(islot) <- 1;
        sh.sh_admitted <- sh.sh_admitted + 1;
        (* catch up on renegotiation epochs missed during the walk *)
        Mbac_traffic.Source.fire_until source ~upto:te;
        let desired = Mbac_traffic.Source.rate source in
        let key = flow_key ~route ~seq in
        let slot = Int_table.find l.l_tab ~key in
        let old = Float.Array.get l.l_granted slot in
        if desired <> old then begin
          apply_update l ~now:te ~slot ~desired;
          for h = 1 to Array.length links - 1 do
            send_msg eng sh
              ~time:(te +. (float_of_int h *. eng.d))
              ~kind:k_update ~link:links.(h) ~hop:h ~route ~seq ~islot:0
              ~igen:0 ~rate:desired ~t_end:0.0
          done
        end;
        CQ.push sh.wheel
          ~time:(Mbac_traffic.Source.next_change source)
          (encode ~tag:tag_change ~slot:islot ~gen:(igen land gen_mask)
             ~route)
    | Some _ | None -> () (* departed before the confirm arrived *)
  end
  else if kind = k_reject then begin
    match sh.f_sources.(islot) with
    | Some _ when sh.f_gen.(islot) = igen ->
        sh.sh_blocked <- sh.sh_blocked + 1;
        let key = flow_key ~route ~seq in
        let slot = Int_table.find l.l_tab ~key in
        release l ~now:te ~slot;
        flow_free sh islot; (* invalidates the pending depart event *)
        for h = 1 to hop - 1 do
          send_msg eng sh ~time:(te +. eng.d) ~kind:k_release
            ~link:links.(h) ~hop:h ~route ~seq ~islot:0 ~igen:0 ~rate:0.0
            ~t_end:0.0
        done
    | Some _ | None -> () (* departed before the reject arrived *)
  end
  else if kind = k_release || kind = k_selfrel then begin
    let key = flow_key ~route ~seq in
    let slot = Int_table.find l.l_tab ~key in
    if slot >= 0 then release l ~now:te ~slot
    (* absent: already released by the other of (release, self-release) *)
  end
  else begin
    (* k_update *)
    let key = flow_key ~route ~seq in
    let slot = Int_table.find l.l_tab ~key in
    if slot >= 0 then apply_update l ~now:te ~slot ~desired:rate
    (* absent: flow already released here; the late update is dropped *)
  end

(* ---------- shard drain ---------- *)

let advance eng sh ~w_end =
  let wheel = sh.wheel in
  while (not (CQ.is_empty wheel)) && CQ.min_time wheel < w_end do
    let te = CQ.min_time wheel in
    let payload = CQ.min_payload wheel in
    CQ.drop_min wheel;
    let tag = p_tag payload in
    let l =
      if tag = tag_msg then link_of eng sh sh.a_link.(p_slot payload)
      else link_of eng sh eng.topo.routes.(p_route payload).Topology.links.(0)
    in
    record_segment l ~t1:te;
    if tag = tag_arrive then handle_arrival eng sh ~te ~lr:(p_slot payload) l
    else if tag = tag_depart then
      handle_depart eng sh ~te ~fslot:(p_slot payload) ~gen:(p_gen payload) l
    else if tag = tag_change then
      handle_change eng sh ~te ~fslot:(p_slot payload) ~gen:(p_gen payload) l
    else handle_msg eng sh ~te ~idx:(p_slot payload) l;
    sh.sh_events <- sh.sh_events + 1;
    l.l_events <- l.l_events + 1;
    if l.l_events mod 4_000_000 = 0 then resync_link l
  done

let deliver_all eng =
  let ex = eng.ex in
  for dst = 0 to Array.length eng.shards - 1 do
    let n = Exchange.deliver ex ~dst in
    let sh = eng.shards.(dst) in
    for i = 0 to n - 1 do
      push_local sh ~time:(Exchange.in_time ex i)
        ~kind:(Exchange.in_kind ex i) ~link:(Exchange.in_link ex i)
        ~hop:(Exchange.in_hop ex i) ~route:(Exchange.in_route ex i)
        ~seq:(Exchange.in_seq ex i) ~islot:(Exchange.in_islot ex i)
        ~igen:(Exchange.in_igen ex i) ~rate:(Exchange.in_rate ex i)
        ~t_end:(Exchange.in_tend ex i)
    done
  done

let total_events eng =
  Array.fold_left (fun acc sh -> acc + sh.sh_events) 0 eng.shards

let global_min_time eng =
  Array.fold_left
    (fun acc sh ->
      if CQ.is_empty sh.wheel then acc else Float.min acc (CQ.min_time sh.wheel))
    Float.infinity eng.shards

(* Window-boundary bookkeeping shared by all drivers: count the window,
   check the stop conditions, and fast-forward over empty windows
   (snapping to the absolute [k * d] grid so the boundary sequence — and
   with it every stop decision — is a pure function of the global event
   set, not of the sharding). *)
let after_window eng ~w_start =
  eng.windows <- eng.windows + 1;
  let cfg = eng.cfg in
  let w_start = w_start +. eng.d in
  if total_events eng >= cfg.max_events || w_start >= cfg.max_time then None
  else begin
    let t_next = global_min_time eng in
    if t_next = Float.infinity then None
    else if t_next >= w_start +. eng.d then
      Some
        (Float.max w_start
           (float_of_int (int_of_float (t_next /. eng.d)) *. eng.d))
    else Some w_start
  end

(* ---------- drivers ---------- *)

(* Serial, and the fallback pool path for 1 < width < shards: a
   [Parallel.run_tasks] barrier per window (domains are respawned per
   window — correct at any width, but the spawn cost makes it the
   driver of last resort). *)
let run_windowed eng ~width ~jobs =
  let shard_count = Array.length eng.shards in
  let w_start = ref 0.0 in
  let running = ref true in
  while !running do
    let w_end = !w_start +. eng.d in
    if width <= 1 then
      for i = 0 to shard_count - 1 do
        advance eng eng.shards.(i) ~w_end
      done
    else
      (* [~count_tasks:false]: the pool invocation count here depends
         on the window count and driver choice, so counting tasks would
         make the metric snapshot jobs-dependent. *)
      ignore
        (Mbac_sim.Parallel.run_tasks ?jobs ~count_tasks:false
           (List.init shard_count (fun i () ->
                advance eng eng.shards.(i) ~w_end)));
    deliver_all eng;
    match after_window eng ~w_start:!w_start with
    | Some w -> w_start := w
    | None -> running := false
  done

(* One pool invocation for the whole run: [shards] tasks, one per
   shard, claimed with [~chunk:1] so each of the [width = shards]
   runners (the submitting domain plus width-1 spawned workers) holds
   exactly one task — required, because the tasks synchronize through a
   spin barrier per window and a runner blocked inside one task must
   never have a second task queued behind it.  Task 0 is the leader: at
   each barrier it drains the exchange into every shard's wheel and
   publishes the next window (or the stop), which the others pick up
   through the epoch counter.  All cross-task plain-field reads are
   ordered by the [arrived]/[epoch] atomics. *)
type barrier_ctl = {
  arrived : int Atomic.t;
  epoch : int Atomic.t;
  mutable c_w_end : float;
  mutable c_stop : bool;
}

let run_barrier eng ~jobs =
  let shard_count = Array.length eng.shards in
  let ctl =
    { arrived = Atomic.make 0;
      epoch = Atomic.make 0;
      c_w_end = eng.d;
      c_stop = false }
  in
  let failures = Array.make shard_count None in
  let w_start = ref 0.0 in
  let tasks =
    List.init shard_count (fun i () ->
        let sh = eng.shards.(i) in
        let my_epoch = ref 0 in
        let continue = ref true in
        while !continue do
          (if failures.(i) = None then
             try advance eng sh ~w_end:ctl.c_w_end
             with e -> failures.(i) <- Some e);
          if i = 0 then begin
            while Atomic.get ctl.arrived < shard_count - 1 do
              Domain.cpu_relax ()
            done;
            Atomic.set ctl.arrived 0;
            let failed =
              Array.exists (fun f -> f <> None) failures
            in
            (if failed then ctl.c_stop <- true
             else begin
               deliver_all eng;
               match after_window eng ~w_start:!w_start with
               | Some w ->
                   w_start := w;
                   ctl.c_w_end <- w +. eng.d
               | None -> ctl.c_stop <- true
             end);
            Atomic.incr ctl.epoch
          end
          else begin
            Atomic.incr ctl.arrived;
            while Atomic.get ctl.epoch <= !my_epoch do
              Domain.cpu_relax ()
            done
          end;
          incr my_epoch;
          if ctl.c_stop then continue := false
        done;
        match failures.(i) with Some e -> raise e | None -> ())
  in
  ignore
    (Mbac_sim.Parallel.run_tasks ?jobs ~chunk:1 ~count_tasks:false tasks)

(* ---------- engine construction ---------- *)

let build ~seed cfg ~make_controller ~make_source =
  let topo = cfg.topology in
  let nl = Topology.num_links topo in
  let nr = Topology.num_routes topo in
  if cfg.shards < 1 || cfg.shards > min nl 256 then
    invalid_arg "Network.run: shards outside 1..min(links, 256)";
  if nr > route_mask then invalid_arg "Network.run: too many routes";
  if not (cfg.setup_delay > 0.0) then
    invalid_arg "Network.run: setup_delay <= 0";
  if not (cfg.holding_time_mean > 0.0) then
    invalid_arg "Network.run: holding_time_mean <= 0";
  let owner = Array.init nl (fun i -> i * cfg.shards / nl) in
  let local_ix = Array.make nl 0 in
  let shards =
    Array.init cfg.shards (fun si ->
        let link_ids = ref [] in
        for i = nl - 1 downto 0 do
          if owner.(i) = si then link_ids := i :: !link_ids
        done;
        let link_ids = Array.of_list !link_ids in
        Array.iteri (fun ix id -> local_ix.(id) <- ix) link_ids;
        let links =
          Array.map
            (fun id ->
              let capacity = topo.Topology.capacities.(id) in
              let ctrl = make_controller ~link:id ~capacity in
              Mbac.Controller.reset ctrl;
              { l_id = id;
                l_capacity = capacity;
                l_ctrl = ctrl;
                l_meas =
                  Meas.create ~sample_spacing:cfg.batch_length
                    ~capacity ~warmup:cfg.warmup
                    ~batch_length:cfg.batch_length ();
                l_tab = Int_table.create ();
                l_granted = Float.Array.create 0;
                l_key = [||];
                l_free = [||];
                l_free_top = 0;
                l_limit = 0;
                l_hot =
                  { last_t = 0.0; sum_rate = 0.0; sum_sq = 0.0;
                    ovf_start = nan; ovf_excess = 0.0; ovf_time = 0.0 };
                l_n = 0;
                l_reserved = 0;
                l_blocked = 0;
                l_released = 0;
                l_updates = 0;
                l_ovf_episodes = 0;
                l_events = 0 })
            link_ids
        in
        let route_ids = ref [] in
        for r = nr - 1 downto 0 do
          if owner.(topo.Topology.routes.(r).Topology.links.(0)) = si then
            route_ids := r :: !route_ids
        done;
        let sr_route = Array.of_list !route_ids in
        { sh_id = si;
          wheel = CQ.create ();
          links;
          sr_route;
          sr_rng =
            Array.map
              (fun r ->
                Mbac_stats.Rng.derive ~seed ~tag:(route_stream_tag r))
              sr_route;
          sr_arrival_mean =
            Array.map
              (fun r -> 1.0 /. topo.Topology.routes.(r).Topology.rate)
              sr_route;
          sr_seq = Array.make (Array.length sr_route) 0;
          f_route = [||]; f_seq = [||]; f_gen = [||]; f_estab = [||];
          f_sources = [||]; f_free = [||]; f_free_top = 0; f_limit = 0;
          a_kind = [||]; a_link = [||]; a_hop = [||]; a_route = [||];
          a_seq = [||]; a_islot = [||]; a_igen = [||];
          a_rate = Float.Array.create 0; a_tend = Float.Array.create 0;
          a_free = [||]; a_free_top = 0; a_limit = 0;
          sh_events = 0; sh_admitted = 0; sh_blocked = 0;
          sh_departed = 0 })
  in
  let eng =
    { cfg; topo; d = cfg.setup_delay; owner; local_ix; shards;
      ex = Exchange.create ~shards:cfg.shards; make_source; windows = 0 }
  in
  (* Initial conditions mirror [Continuous_load.start]: each controller
     sees the empty observation, then each ingress route draws its first
     inter-arrival gap from its own stream. *)
  Array.iter
    (fun sh ->
      Array.iter
        (fun l ->
          Mbac.Controller.observe l.l_ctrl (link_obs l ~now:0.0))
        sh.links;
      Array.iteri
        (fun lr r ->
          CQ.push sh.wheel
            ~time:
              (Mbac_stats.Sample.exponential sh.sr_rng.(lr)
                 ~mean:sh.sr_arrival_mean.(lr))
            (encode ~tag:tag_arrive ~slot:lr ~gen:0 ~route:r))
        sh.sr_route)
    shards;
  eng

(* ---------- results ---------- *)

let collect eng =
  let cfg = eng.cfg in
  let sim_time =
    Array.fold_left
      (fun acc sh ->
        Array.fold_left
          (fun acc l -> Float.max acc l.l_hot.last_t)
          acc sh.links)
      0.0 eng.shards
  in
  let links = Array.make (Topology.num_links eng.topo) None in
  Array.iter
    (fun sh ->
      Array.iter
        (fun l ->
          (* close an overflow episode left open at run end *)
          if not (Float.is_nan l.l_hot.ovf_start) then
            l.l_hot.ovf_time <-
              l.l_hot.ovf_time +. (l.l_hot.last_t -. l.l_hot.ovf_start);
          let p_f, estimate_kind =
            Meas.final_estimate l.l_meas ~target:cfg.target_p_q
          in
          let mean_load = Meas.load_mean l.l_meas in
          links.(l.l_id) <-
            Some
              { link = l.l_id;
                capacity = l.l_capacity;
                p_f;
                estimate_kind;
                p_f_point = Meas.point_fraction l.l_meas;
                mean_load;
                std_load = Meas.load_std l.l_meas;
                utilization = mean_load /. l.l_capacity;
                reserved = l.l_reserved;
                link_blocked = l.l_blocked;
                released = l.l_released;
                updates = l.l_updates;
                ovf_episodes = l.l_ovf_episodes;
                ovf_time = l.l_hot.ovf_time })
        sh.links)
    eng.shards;
  let links = Array.map Option.get links in
  let admitted = Array.fold_left (fun a sh -> a + sh.sh_admitted) 0 eng.shards in
  let blocked = Array.fold_left (fun a sh -> a + sh.sh_blocked) 0 eng.shards in
  let departed =
    Array.fold_left (fun a sh -> a + sh.sh_departed) 0 eng.shards
  in
  let events = total_events eng in
  let messages = Exchange.delivered_total eng.ex in
  (* fold run totals into the (submitting domain's) telemetry shard *)
  Handle.inc m_events ~by:events;
  Handle.inc m_admitted ~by:admitted;
  Handle.inc m_blocked ~by:blocked;
  Handle.inc m_departed ~by:departed;
  Handle.inc m_link_blocked
    ~by:(Array.fold_left (fun a l -> a + l.link_blocked) 0 links);
  Handle.inc m_messages ~by:messages;
  Handle.inc m_windows ~by:eng.windows;
  Handle.inc m_ovf_episodes
    ~by:(Array.fold_left (fun a l -> a + l.ovf_episodes) 0 links);
  Handle.add m_ovf_time
    (Array.fold_left (fun a (l : link_result) -> a +. l.ovf_time) 0.0 links);
  Handle.add m_time sim_time;
  Handle.set_gauge g_links (float_of_int (Array.length links));
  Handle.set_gauge g_shards (float_of_int cfg.shards);
  { flows_admitted = admitted;
    flows_blocked = blocked;
    flows_departed = departed;
    blocking_probability =
      (let offered = admitted + blocked in
       if offered = 0 then nan
       else float_of_int blocked /. float_of_int offered);
    events;
    sim_time;
    windows = eng.windows;
    messages;
    links }

let run ?jobs ~seed cfg ~make_controller ~make_source =
  let eng = build ~seed cfg ~make_controller ~make_source in
  let width = Mbac_sim.Parallel.effective_jobs ?jobs cfg.shards in
  if width >= cfg.shards && cfg.shards > 1 then run_barrier eng ~jobs
  else run_windowed eng ~width ~jobs;
  collect eng

(* ---------- printing ---------- *)

let fmt_f v = if Float.is_nan v then "nan" else Printf.sprintf "%.6g" v

let pp_result ppf r =
  Format.fprintf ppf
    "network: admitted %d blocked %d departed %d blocking %s@."
    r.flows_admitted r.flows_blocked r.flows_departed
    (fmt_f r.blocking_probability);
  Format.fprintf ppf "events %d sim_time %s@." r.events (fmt_f r.sim_time);
  Array.iter
    (fun l ->
      Format.fprintf ppf
        "link %d: capacity %s p_f %s (%s) util %s load %s+-%s reserved %d \
         blocked %d released %d updates %d ovf %d@."
        l.link (fmt_f l.capacity) (fmt_f l.p_f)
        (match l.estimate_kind with
        | `Direct -> "direct"
        | `Gaussian_fit -> "gaussian-fit")
        (fmt_f l.utilization) (fmt_f l.mean_load) (fmt_f l.std_load)
        l.reserved l.link_blocked l.released l.updates l.ovf_episodes)
    r.links
