(** Conservative cross-shard message transport.

    Shards exchange flow-setup traffic in structure-of-arrays outboxes:
    one outbox per (source shard, destination shard) pair, written only
    by its source shard while the window runs, drained only at the
    window barrier by the single delivering domain.  Steady-state
    {!send} and {!deliver} are allocation-free (arrays grow by doubling
    and are then reused; [bench/alloc_probe] enforces ≈0 words per
    exchanged message).

    {2 Determinism}

    {!deliver} merges every outbox destined for a shard into that
    shard's inbox sorted by [(time, src_shard, seq)], where [seq] is
    the source shard's send order.  The merged order is therefore a
    pure function of the messages themselves — never of domain
    scheduling — which is what makes network runs byte-identical across
    [--jobs] and shard counts. *)

type t

val create : shards:int -> t
(** [shards] in [1..256]. *)

val send :
  t ->
  src:int ->
  dst:int ->
  time:float ->
  kind:int ->
  link:int ->
  hop:int ->
  route:int ->
  seq:int ->
  islot:int ->
  igen:int ->
  rate:float ->
  t_end:float ->
  unit
(** Append a message to the [(src, dst)] outbox.  [time] is the
    delivery (virtual) time; the remaining fields are protocol payload
    the transport does not interpret.  Only shard [src]'s domain may
    call this while a window is running. *)

val deliver : t -> dst:int -> int
(** Merge-sort every outbox destined for [dst] into its inbox and empty
    them; returns the message count.  The inbox is then read with the
    accessors below, indexed [0 .. count-1] in [(time, src, seq)]
    order.  Must only be called between windows, after the barrier. *)

val in_time : t -> int -> float
val in_kind : t -> int -> int
val in_link : t -> int -> int
val in_hop : t -> int -> int
val in_route : t -> int -> int
val in_seq : t -> int -> int
val in_islot : t -> int -> int
val in_igen : t -> int -> int
val in_rate : t -> int -> float
val in_tend : t -> int -> float

val delivered_total : t -> int
(** Messages delivered over the exchange's lifetime (counted in
    {!deliver}, so reading it is barrier-safe). *)
