(** Network topologies for the multi-link simulator.

    A topology is a set of unidirectional links (each with a capacity)
    and a set of routes.  A route is the ordered list of links a flow
    of that class traverses, plus the Poisson arrival rate of new flows
    on the route.  Links are identified by dense integer ids; a route
    must not visit the same link twice.

    Topologies are immutable; {!Network} partitions the links into
    shards at run construction. *)

type route = {
  links : int array;  (** on-route link ids, ingress first *)
  rate : float;       (** Poisson flow-arrival rate on this route *)
}

type t = {
  capacities : float array;  (** capacity of link [i] *)
  routes : route array;
}

val make : capacities:float array -> routes:route array -> t
(** Validates: at least one link and one route, positive capacities and
    rates, in-range link ids, no repeated link within a route.
    @raise Invalid_argument otherwise. *)

val num_links : t -> int
val num_routes : t -> int

val max_hops : t -> int
(** Longest route length, in links. *)

(** {2 Generators}

    [rate] is the total offered flow-arrival rate {e per link}: each
    generator splits it across the routes crossing a link so that every
    link sees an aggregate offered arrival rate of [rate] (core links
    of {!core_edge} see the same per-link rate as edges by
    construction). *)

val line : links:int -> capacity:float -> rate:float -> t
(** A chain of [links] links: one single-link route per link (carrying
    half the offered rate) plus one end-to-end route over the whole
    chain (the other half). *)

val star : leaves:int -> capacity:float -> rate:float -> t
(** [leaves >= 2] links meeting at a hub: one 2-hop route per unordered
    leaf pair, each with rate [rate / (leaves - 1)]. *)

val core_edge : edges:int -> cores:int -> capacity:float -> core_scale:float -> rate:float -> t
(** Fat-tree-ish: [edges] edge links (ids [0..edges-1], capacity
    [capacity]) and [cores] core links (ids [edges..], capacity
    [core_scale *. capacity]).  One 3-hop route per unordered edge pair
    [(i, j)]: edge [i] → core [(i + j) mod cores] → edge [j]. *)

val of_spec : rate:float -> capacity:float -> string -> (t, string) result
(** Parse a generator spec: ["line:N"], ["star:N"], or
    ["core-edge:ExC"] (e.g. ["core-edge:4x2"], core capacity fixed at
    [2 *. capacity]). *)

val parse : string -> (t, string) result
(** Parse a topology config: one directive per line, [#] comments.
    [link CAPACITY] appends a link (ids in file order from 0);
    [route RATE LINK...] appends a route. *)

val pp : Format.formatter -> t -> unit
(** Deterministic one-line-per-element summary (used by the CLI). *)
