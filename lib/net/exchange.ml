(* One outbox per (src, dst) shard pair.  Float fields live in
   [Float.Array]s so stores never box; int fields are plain arrays.
   Boxes only grow (by doubling) and are reset to length 0 at each
   delivery, so the steady state allocates nothing. *)

type box = {
  mutable b_len : int;
  mutable b_time : Float.Array.t;
  mutable b_rate : Float.Array.t;
  mutable b_tend : Float.Array.t;
  mutable b_kind : int array;
  mutable b_link : int array;
  mutable b_hop : int array;
  mutable b_route : int array;
  mutable b_seq : int array;
  mutable b_islot : int array;
  mutable b_igen : int array;
}

type t = {
  shards : int;
  boxes : box array; (* src * shards + dst *)
  (* reusable merge state, touched only by the delivering domain *)
  mutable perm : int array;    (* packed (src lsl 32) lor idx *)
  mutable scratch : int array;
  (* inbox: merged messages in (time, src, seq) order *)
  mutable i_len : int;
  mutable i_time : Float.Array.t;
  mutable i_rate : Float.Array.t;
  mutable i_tend : Float.Array.t;
  mutable i_kind : int array;
  mutable i_link : int array;
  mutable i_hop : int array;
  mutable i_route : int array;
  mutable i_seq : int array;
  mutable i_islot : int array;
  mutable i_igen : int array;
  mutable delivered : int;
}

let make_box cap =
  { b_len = 0;
    b_time = Float.Array.create cap;
    b_rate = Float.Array.create cap;
    b_tend = Float.Array.create cap;
    b_kind = Array.make cap 0;
    b_link = Array.make cap 0;
    b_hop = Array.make cap 0;
    b_route = Array.make cap 0;
    b_seq = Array.make cap 0;
    b_islot = Array.make cap 0;
    b_igen = Array.make cap 0 }

let create ~shards =
  if shards < 1 || shards > 256 then
    invalid_arg "Exchange.create: shards outside 1..256";
  { shards;
    boxes = Array.init (shards * shards) (fun _ -> make_box 16);
    perm = Array.make 16 0;
    scratch = Array.make 16 0;
    i_len = 0;
    i_time = Float.Array.create 16;
    i_rate = Float.Array.create 16;
    i_tend = Float.Array.create 16;
    i_kind = Array.make 16 0;
    i_link = Array.make 16 0;
    i_hop = Array.make 16 0;
    i_route = Array.make 16 0;
    i_seq = Array.make 16 0;
    i_islot = Array.make 16 0;
    i_igen = Array.make 16 0;
    delivered = 0 }

let grow_floats old len =
  let n = Float.Array.create (2 * len) in
  Float.Array.blit old 0 n 0 len;
  n

let grow_ints old len =
  let n = Array.make (2 * len) 0 in
  Array.blit old 0 n 0 len;
  n

let grow_box b =
  let len = Array.length b.b_kind in
  b.b_time <- grow_floats b.b_time len;
  b.b_rate <- grow_floats b.b_rate len;
  b.b_tend <- grow_floats b.b_tend len;
  b.b_kind <- grow_ints b.b_kind len;
  b.b_link <- grow_ints b.b_link len;
  b.b_hop <- grow_ints b.b_hop len;
  b.b_route <- grow_ints b.b_route len;
  b.b_seq <- grow_ints b.b_seq len;
  b.b_islot <- grow_ints b.b_islot len;
  b.b_igen <- grow_ints b.b_igen len

let send t ~src ~dst ~time ~kind ~link ~hop ~route ~seq ~islot ~igen ~rate
    ~t_end =
  let b = t.boxes.((src * t.shards) + dst) in
  let i = b.b_len in
  if i = Array.length b.b_kind then grow_box b;
  Float.Array.set b.b_time i time;
  Float.Array.set b.b_rate i rate;
  Float.Array.set b.b_tend i t_end;
  b.b_kind.(i) <- kind;
  b.b_link.(i) <- link;
  b.b_hop.(i) <- hop;
  b.b_route.(i) <- route;
  b.b_seq.(i) <- seq;
  b.b_islot.(i) <- islot;
  b.b_igen.(i) <- igen;
  b.b_len <- i + 1

(* A permutation entry packs (src shard, index within the (src, dst)
   outbox) into one int with src in the high bits, so when two delivery
   times are equal the plain int order of the entries IS the
   (src_shard, seq) tie-break. *)
let[@inline] pack ~src ~idx = (src lsl 32) lor idx
let[@inline] unpack_src p = p lsr 32
let[@inline] unpack_idx p = p land 0xFFFFFFFF

let ensure_int_capacity arr m =
  let len = Array.length arr in
  if len >= m then arr
  else begin
    let n = ref (2 * len) in
    while !n < m do
      n := 2 * !n
    done;
    Array.make !n 0
  end

let grow_inbox t m =
  let len = Array.length t.i_kind in
  if len < m then begin
    let n = ref (2 * len) in
    while !n < m do
      n := 2 * !n
    done;
    let n = !n in
    t.i_time <- Float.Array.create n;
    t.i_rate <- Float.Array.create n;
    t.i_tend <- Float.Array.create n;
    t.i_kind <- Array.make n 0;
    t.i_link <- Array.make n 0;
    t.i_hop <- Array.make n 0;
    t.i_route <- Array.make n 0;
    t.i_seq <- Array.make n 0;
    t.i_islot <- Array.make n 0;
    t.i_igen <- Array.make n 0
  end

let deliver t ~dst =
  let shards = t.shards in
  (* gather *)
  let m = ref 0 in
  for src = 0 to shards - 1 do
    m := !m + t.boxes.((src * shards) + dst).b_len
  done;
  let m = !m in
  t.perm <- ensure_int_capacity t.perm m;
  t.scratch <- ensure_int_capacity t.scratch m;
  grow_inbox t m;
  let k = ref 0 in
  for src = 0 to shards - 1 do
    let b = t.boxes.((src * shards) + dst) in
    for idx = 0 to b.b_len - 1 do
      t.perm.(!k) <- pack ~src ~idx;
      incr k
    done
  done;
  (* bottom-up merge sort of perm[0..m-1] by (time, packed entry) *)
  let time_of p =
    let b = t.boxes.((unpack_src p * shards) + dst) in
    Float.Array.get b.b_time (unpack_idx p)
  in
  let a = ref t.perm and b = ref t.scratch in
  let width = ref 1 in
  while !width < m do
    let sa = !a and sb = !b in
    let i = ref 0 in
    while !i < m do
      let mid = min m (!i + !width) in
      let hi = min m (!i + (2 * !width)) in
      let p = ref !i and q = ref mid and o = ref !i in
      while !p < mid && !q < hi do
        let ep = sa.(!p) and eq = sa.(!q) in
        let tp = time_of ep and tq = time_of eq in
        if tq < tp || (tq = tp && eq < ep) then begin
          sb.(!o) <- eq;
          incr q
        end
        else begin
          sb.(!o) <- ep;
          incr p
        end;
        incr o
      done;
      while !p < mid do
        sb.(!o) <- sa.(!p);
        incr p;
        incr o
      done;
      while !q < hi do
        sb.(!o) <- sa.(!q);
        incr q;
        incr o
      done;
      i := hi
    done;
    let tmp = !a in
    a := !b;
    b := tmp;
    width := 2 * !width
  done;
  let sorted = !a in
  (* scatter into the inbox, then reset the outboxes *)
  for i = 0 to m - 1 do
    let p = sorted.(i) in
    let bx = t.boxes.((unpack_src p * shards) + dst) in
    let idx = unpack_idx p in
    Float.Array.set t.i_time i (Float.Array.get bx.b_time idx);
    Float.Array.set t.i_rate i (Float.Array.get bx.b_rate idx);
    Float.Array.set t.i_tend i (Float.Array.get bx.b_tend idx);
    t.i_kind.(i) <- bx.b_kind.(idx);
    t.i_link.(i) <- bx.b_link.(idx);
    t.i_hop.(i) <- bx.b_hop.(idx);
    t.i_route.(i) <- bx.b_route.(idx);
    t.i_seq.(i) <- bx.b_seq.(idx);
    t.i_islot.(i) <- bx.b_islot.(idx);
    t.i_igen.(i) <- bx.b_igen.(idx)
  done;
  for src = 0 to shards - 1 do
    t.boxes.((src * shards) + dst).b_len <- 0
  done;
  t.i_len <- m;
  t.delivered <- t.delivered + m;
  m

let[@inline] in_time t i = Float.Array.get t.i_time i
let[@inline] in_kind t i = t.i_kind.(i)
let[@inline] in_link t i = t.i_link.(i)
let[@inline] in_hop t i = t.i_hop.(i)
let[@inline] in_route t i = t.i_route.(i)
let[@inline] in_seq t i = t.i_seq.(i)
let[@inline] in_islot t i = t.i_islot.(i)
let[@inline] in_igen t i = t.i_igen.(i)
let[@inline] in_rate t i = Float.Array.get t.i_rate i
let[@inline] in_tend t i = Float.Array.get t.i_tend i
let delivered_total t = t.delivered
