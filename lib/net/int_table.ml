(* Linear probing with tombstones.  [keys.(i)] is [empty] (-1),
   [tombstone] (-2), or a non-negative key.  The table rehashes when
   live + tombstone occupancy passes 3/4, sizing to keep the live load
   factor at or below 1/2 — tombstone buildup from churn therefore
   triggers a same-size rehash rather than unbounded probe growth. *)

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int;
  mutable live : int;
  mutable used : int; (* live + tombstones *)
}

let empty = -1
let tombstone = -2
let initial = 16

let create () =
  { keys = Array.make initial empty;
    vals = Array.make initial 0;
    mask = initial - 1;
    live = 0;
    used = 0 }

(* SplitMix64-style finalizer over the positive-int key (odd 61-bit
   multipliers, since the canonical 64-bit constants do not fit OCaml's
   63-bit int): adjacent packed (route, seq) keys would otherwise
   cluster in a power-of-two table. *)
let[@inline] hash k =
  let h = k * 0x1E3779B97F4A7C15 in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1F58476D1CE4E5B9 in
  h lxor (h lsr 32)

let rec add t ~key ~value =
  if 4 * (t.used + 1) > 3 * (t.mask + 1) then grow t;
  let mask = t.mask in
  let i = ref (hash key land mask) in
  while t.keys.(!i) >= 0 do
    i := (!i + 1) land mask
  done;
  if t.keys.(!i) = empty then t.used <- t.used + 1;
  t.keys.(!i) <- key;
  t.vals.(!i) <- value;
  t.live <- t.live + 1

and grow t =
  let okeys = t.keys and ovals = t.vals in
  let size = ref (2 * initial) in
  while !size < 4 * (t.live + 1) do
    size := !size * 2
  done;
  t.keys <- Array.make !size empty;
  t.vals <- Array.make !size 0;
  t.mask <- !size - 1;
  t.live <- 0;
  t.used <- 0;
  Array.iteri
    (fun i k -> if k >= 0 then add t ~key:k ~value:ovals.(i))
    okeys

let[@inline] find t ~key =
  let mask = t.mask in
  let i = ref (hash key land mask) in
  let res = ref (-1) in
  let continue = ref true in
  while !continue do
    let k = t.keys.(!i) in
    if k = key then begin
      res := t.vals.(!i);
      continue := false
    end
    else if k = empty then continue := false
    else i := (!i + 1) land mask
  done;
  !res

let remove t ~key =
  let mask = t.mask in
  let i = ref (hash key land mask) in
  let continue = ref true in
  while !continue do
    let k = t.keys.(!i) in
    if k = key then begin
      t.keys.(!i) <- tombstone;
      t.live <- t.live - 1;
      continue := false
    end
    else if k = empty then continue := false
    else i := (!i + 1) land mask
  done

let length t = t.live
