(** Sharded multi-link network simulator.

    Links are partitioned into contiguous shards; each shard owns its
    links' calendar wheel, controllers, measurements and flow tables.
    Flows traverse every link on their route: admission is end-to-end
    (a reject at any hop blocks the flow, attributed to the rejecting
    link), negotiated through a hop-by-hop setup walk with per-hop
    delay [setup_delay].  Cross-shard traffic moves through the
    conservative {!Exchange} in windows of exactly one [setup_delay]
    lookahead, with a barrier per window.

    {2 Determinism contract}

    Output is byte-identical for every [jobs] value and every shard
    count (see NETWORK.md for the mechanics: per-route RNG streams
    drawn only at the ingress event, all inter-shard messages sorted by
    [(time, src_shard, seq)], per-link event counters driving the float
    resyncs).  A 1-link network reproduces
    {!Mbac_sim.Continuous_load}'s Poisson loop draw-for-draw when
    driven from the same stream ({!route_stream_tag}). *)

type config = {
  topology : Topology.t;
  shards : int;  (** 1 .. min(links, 256) *)
  holding_time_mean : float;
  setup_delay : float;
      (** per-hop setup/notification delay; also the exchange lookahead
          and window length *)
  warmup : float;
  batch_length : float;
  target_p_q : float;
  max_time : float;
  max_events : int;  (** stop at the first window boundary at or past it *)
  max_flows_per_link : int;
}

val default_config :
  topology:Topology.t ->
  holding_time_mean:float ->
  target_p_q:float ->
  config
(** [shards = 1], [setup_delay = holding_time_mean /. 100.], warmup and
    batch length as {!Mbac_sim.Continuous_load.default_config} (one
    holding time, a fifth of one). *)

type link_result = {
  link : int;
  capacity : float;
  p_f : float;
  estimate_kind : [ `Direct | `Gaussian_fit ];
  p_f_point : float;
  mean_load : float;
  std_load : float;
  utilization : float;
  reserved : int;    (** hop admissions granted on this link *)
  link_blocked : int;(** rejections attributed to this link *)
  released : int;
  updates : int;     (** renegotiation rate changes applied *)
  ovf_episodes : int;
  ovf_time : float;
}

type result = {
  flows_admitted : int;  (** established end-to-end *)
  flows_blocked : int;
  flows_departed : int;
  blocking_probability : float;
  events : int;
  sim_time : float;
  windows : int;   (** barrier rounds (shard-count dependent) *)
  messages : int;  (** cross-shard messages (shard-count dependent) *)
  links : link_result array;
}

val route_stream_tag : int -> string
(** Derivation tag of route [i]'s RNG stream
    ([Rng.derive ~seed ~tag:(route_stream_tag i)]); exposed so the
    equivalence suite can drive [Continuous_load] from route 0's
    stream. *)

val run :
  ?jobs:int ->
  seed:int ->
  config ->
  make_controller:(link:int -> capacity:float -> Mbac.Controller.t) ->
  make_source:(Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t) ->
  result
(** Runs the network to [max_events]/[max_time].  [make_controller] is
    called once per link at build time, in link order;
    [make_source] once per admitted flow, at its ingress, from its
    route's stream.
    @raise Invalid_argument on an invalid config. *)

val pp_result : Format.formatter -> result -> unit
(** Shard-count-invariant summary: network totals and the per-link
    table, without [windows]/[messages] (print those separately if
    wanted — they legitimately depend on the sharding). *)
