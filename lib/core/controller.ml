type t = {
  name : string;
  observe : Observation.t -> unit;
  admissible : Observation.t -> int;
  on_admit : Observation.t -> unit;
  on_depart : Observation.t -> unit;
  reset : unit -> unit;
  copy : unit -> t;
}

let name t = t.name
let observe t obs = t.observe obs
let admissible t obs = t.admissible obs
let on_admit t obs = t.on_admit obs
let on_depart t obs = t.on_depart obs
let reset t = t.reset ()
let copy t = t.copy ()

let nop (_ : Observation.t) = ()

(* Every scheme is built through [make], so wrapping [admissible] here
   gives uniform decision telemetry for all of them: counters are always
   on (cheap — pre-resolved handles, no string hashing per decision),
   the per-decision trace event only renders when tracing is enabled.
   m̂/σ̂ are the cross-sectional (eqn (23)) estimates — the only
   measured quantities every controller shares. *)
let m_decisions = Mbac_telemetry.Metrics.Handle.counter "mbac_decisions_total"
let m_admit = Mbac_telemetry.Metrics.Handle.counter "mbac_admit_total"
let m_reject = Mbac_telemetry.Metrics.Handle.counter "mbac_reject_total"

let instrument ~name admissible obs =
  let m = admissible obs in
  let n = Observation.count obs in
  let admit = n < m in
  Mbac_telemetry.Metrics.Handle.inc m_decisions;
  Mbac_telemetry.Metrics.Handle.inc (if admit then m_admit else m_reject);
  if Mbac_telemetry.Trace.enabled () then
    Mbac_telemetry.Trace.emit ~sampled:true ~t:obs.Observation.now
      ~kind:"decision"
      [ ("controller", Mbac_telemetry.Trace.Str name);
        ("n", Mbac_telemetry.Trace.Int n);
        ("admissible", Mbac_telemetry.Trace.Int m);
        ("admit", Mbac_telemetry.Trace.Bool admit);
        ("mu_hat", Mbac_telemetry.Trace.Float (Observation.cross_mean obs));
        ("sigma_hat",
         Mbac_telemetry.Trace.Float (sqrt (Observation.cross_variance obs))) ];
  m

let make ?(on_admit = nop) ?(on_depart = nop) ?(reset = fun () -> ()) ?copy
    ~name ~observe ~admissible () =
  let copy =
    match copy with
    | Some f -> f
    | None ->
        fun () ->
          invalid_arg
            (Printf.sprintf
               "Controller.copy: controller %S was built without ~copy" name)
  in
  { name; observe; admissible = instrument ~name admissible;
    on_admit; on_depart; reset; copy }

let check_p_ce p_ce =
  if not (p_ce > 0.0 && p_ce <= 0.5) then
    invalid_arg "Controller: requires 0 < p_ce <= 0.5"

(* Controllers hide their mutable state in closures (estimators, refs),
   so each scheme provides ~copy by re-invoking its own constructor on a
   deep copy of that state — copies of copies then work for free. *)

let rec perfect p =
  let m = Criterion.m_star p in
  make ~name:"perfect" ~observe:nop ~admissible:(fun _ -> m)
    ~copy:(fun () -> perfect p) ()

let rec certainty_equivalent ~capacity ~p_ce estimator =
  check_p_ce p_ce;
  let alpha = Mbac_stats.Gaussian.q_inv p_ce in
  let admissible obs =
    match Estimator.current estimator with
    | Some { Estimator.mu_hat; var_hat } when mu_hat > 0.0 ->
        Criterion.admissible ~capacity ~mu:mu_hat ~sigma:(sqrt var_hat) ~alpha
    | Some _ | None ->
        (* Cautious bootstrap: admit one flow at a time until the
           estimator produces a usable estimate. *)
        Observation.count obs + 1
  in
  make
    ~name:(Printf.sprintf "ce[%s,p_ce=%.2g]" (Estimator.name estimator) p_ce)
    ~observe:(Estimator.observe estimator)
    ~admissible
    ~reset:(fun () -> Estimator.reset estimator)
    ~copy:(fun () ->
      certainty_equivalent ~capacity ~p_ce (Estimator.copy estimator))
    ()

let memoryless ~capacity ~p_ce =
  certainty_equivalent ~capacity ~p_ce (Estimator.memoryless ())

let with_memory ~capacity ~p_ce ~t_m =
  certainty_equivalent ~capacity ~p_ce (Estimator.ewma ~t_m)

let robust p =
  let t_m = Window.recommended_t_m p in
  let alpha_ce = Inversion.adjusted_alpha_ce ~t_m p in
  (* Guard the degenerate deep-repair case where no adjustment is needed:
     alpha_ce = 0 would mean p_ce = 0.5; never run below the QoS target. *)
  let alpha_ce = Float.max alpha_ce (Params.alpha_q p) in
  let capacity = Params.capacity p in
  let rec build estimator =
    let admissible obs =
      match Estimator.current estimator with
      | Some { Estimator.mu_hat; var_hat } when mu_hat > 0.0 ->
          Criterion.admissible ~capacity ~mu:mu_hat ~sigma:(sqrt var_hat)
            ~alpha:alpha_ce
      | Some _ | None -> Observation.count obs + 1
    in
    make
      ~name:(Printf.sprintf "robust[T_m=%.3g,alpha_ce=%.3g]" t_m alpha_ce)
      ~observe:(Estimator.observe estimator)
      ~admissible
      ~reset:(fun () -> Estimator.reset estimator)
      ~copy:(fun () -> build (Estimator.copy estimator))
      ()
  in
  build (Estimator.ewma ~t_m)

let rec peak_rate ~capacity ~peak =
  let m = Criterion.peak_rate_count ~capacity ~peak in
  make ~name:"peak-rate" ~observe:nop ~admissible:(fun _ -> m)
    ~copy:(fun () -> peak_rate ~capacity ~peak) ()

(* Windowed maximum via rotating sub-blocks: the window is divided into
   [n_blocks] sub-intervals; we keep the max of each and report the max
   over all blocks (Jamin's measurement window T / sampling window S). *)
module Windowed_max = struct
  type state = {
    block_len : float;
    maxima : float array;
    mutable head : int;          (* index of the current block *)
    mutable block_end : float;   (* end time of the current block *)
    mutable started : bool;
  }

  let create ~window ~n_blocks =
    { block_len = window /. float_of_int n_blocks;
      maxima = Array.make n_blocks neg_infinity;
      head = 0; block_end = 0.0; started = false }

  let add s ~now x =
    if not s.started then begin
      s.started <- true;
      s.block_end <- now +. s.block_len
    end;
    while now >= s.block_end do
      s.head <- (s.head + 1) mod Array.length s.maxima;
      s.maxima.(s.head) <- neg_infinity;
      s.block_end <- s.block_end +. s.block_len
    done;
    if x > s.maxima.(s.head) then s.maxima.(s.head) <- x

  let current s = Array.fold_left Float.max neg_infinity s.maxima

  let copy s =
    { block_len = s.block_len; maxima = Array.copy s.maxima; head = s.head;
      block_end = s.block_end; started = s.started }

  let reset s =
    Array.fill s.maxima 0 (Array.length s.maxima) neg_infinity;
    s.head <- 0;
    s.started <- false
end

let measured_sum ~capacity ~utilization_target ~window ~peak =
  if not (utilization_target > 0.0 && utilization_target <= 1.0) then
    invalid_arg "Controller.measured_sum: utilization_target outside (0,1]";
  if window <= 0.0 then invalid_arg "Controller.measured_sum: window <= 0";
  if peak <= 0.0 then invalid_arg "Controller.measured_sum: peak <= 0";
  let rec build wm =
    let observe obs =
      Windowed_max.add wm ~now:obs.Observation.now obs.Observation.sum_rate
    in
    let admissible obs =
      let max_load = Windowed_max.current wm in
      if max_load = neg_infinity then Observation.count obs + 1
      else begin
        let headroom = (utilization_target *. capacity) -. max_load in
        if headroom < peak then Observation.count obs
        else Observation.count obs + int_of_float (headroom /. peak)
      end
    in
    make
      ~name:
        (Printf.sprintf "measured-sum[u=%.2f,T=%g]" utilization_target window)
      ~observe ~admissible
      ~reset:(fun () -> Windowed_max.reset wm)
      ~copy:(fun () -> build (Windowed_max.copy wm))
      ()
  in
  build (Windowed_max.create ~window ~n_blocks:8)

let rec hoeffding ~capacity ~p_ce ~peak estimator =
  check_p_ce p_ce;
  if peak <= 0.0 then invalid_arg "Controller.hoeffding: peak <= 0";
  (* M mu + b sqrt M <= c with b = peak sqrt(ln(1/p)/2): same quadratic as
     the Gaussian criterion with (sigma alpha) |-> b. *)
  let bound = peak *. sqrt (log (1.0 /. p_ce) /. 2.0) in
  let admissible obs =
    match Estimator.current estimator with
    | Some { Estimator.mu_hat; _ } when mu_hat > 0.0 ->
        Criterion.admissible ~capacity ~mu:mu_hat ~sigma:bound ~alpha:1.0
    | Some _ | None -> Observation.count obs + 1
  in
  make
    ~name:(Printf.sprintf "hoeffding[p=%.2g]" p_ce)
    ~observe:(Estimator.observe estimator)
    ~admissible
    ~reset:(fun () -> Estimator.reset estimator)
    ~copy:(fun () -> hoeffding ~capacity ~p_ce ~peak (Estimator.copy estimator))
    ()

let rec chernoff ~capacity ~p_ce estimator =
  check_p_ce p_ce;
  let alpha = Effective_bandwidth.gaussian_alpha_of_p p_ce in
  let admissible obs =
    match Estimator.current estimator with
    | Some { Estimator.mu_hat; var_hat } when mu_hat > 0.0 ->
        Criterion.admissible ~capacity ~mu:mu_hat ~sigma:(sqrt var_hat) ~alpha
    | Some _ | None -> Observation.count obs + 1
  in
  make
    ~name:(Printf.sprintf "chernoff[p=%.2g]" p_ce)
    ~observe:(Estimator.observe estimator)
    ~admissible
    ~reset:(fun () -> Estimator.reset estimator)
    ~copy:(fun () -> chernoff ~capacity ~p_ce (Estimator.copy estimator))
    ()

let gkk ~capacity ~p_ce ~prior_mu ~prior_var ~prior_weight =
  check_p_ce p_ce;
  if not (prior_weight >= 0.0 && prior_weight <= 1.0) then
    invalid_arg "Controller.gkk: prior_weight outside [0,1]";
  let alpha = Mbac_stats.Gaussian.q_inv p_ce in
  (* "One out, one in": after the criterion rejects (system judged full),
     no further admissions until a departure frees a slot.  This damps
     the admission rate when the system hovers at the boundary. *)
  let rec build ~blocked0 estimator =
    let blocked = ref blocked0 in
    let admissible obs =
      if !blocked then Observation.count obs
      else begin
        let m =
          match Estimator.current estimator with
          | Some { Estimator.mu_hat; var_hat } ->
              let mu =
                (prior_weight *. prior_mu) +. ((1.0 -. prior_weight) *. mu_hat)
              in
              let var =
                (prior_weight *. prior_var)
                +. ((1.0 -. prior_weight) *. var_hat)
              in
              if mu <= 0.0 then Observation.count obs + 1
              else Criterion.admissible ~capacity ~mu ~sigma:(sqrt var) ~alpha
          | None -> Observation.count obs + 1
        in
        if m <= Observation.count obs then blocked := true;
        m
      end
    in
    make
      ~name:(Printf.sprintf "gkk[w=%.2f]" prior_weight)
      ~observe:(Estimator.observe estimator)
      ~admissible
      ~on_depart:(fun _ -> blocked := false)
      ~reset:(fun () ->
        blocked := false;
        Estimator.reset estimator)
      ~copy:(fun () -> build ~blocked0:!blocked (Estimator.copy estimator))
      ()
  in
  build ~blocked0:false (Estimator.memoryless ())
