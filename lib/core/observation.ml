(* All-float record: with [n] stored as a float the record has a flat
   unboxed layout, so building one costs 5 minor words and reading any
   field never chases a box — this constructor runs once per simulation
   event.  [n] is always integral and far below 2^53, so the stored
   value is exact and every comparison/derived statistic is bit-for-bit
   what the int representation gave. *)
type t = { now : float; n : float; sum_rate : float; sum_sq : float }

let[@inline] make ~now ~n ~sum_rate ~sum_sq =
  if n < 0 then invalid_arg "Observation.make: negative flow count";
  if n = 0 && (sum_rate <> 0.0 || sum_sq <> 0.0) then
    invalid_arg "Observation.make: nonzero sums with zero flows";
  { now; n = float_of_int n; sum_rate; sum_sq }

(* The admit fast path: the simulator has just added one flow of rate
   [rate] to the aggregates this observation was built from, with exactly
   these expressions, so the result is bit-for-bit [make] over the
   updated state — without re-reading the state or re-validating.  [n]
   stays integral, so the float increment is exact. *)
let[@inline] admit t ~rate =
  { now = t.now;
    n = t.n +. 1.0;
    sum_rate = t.sum_rate +. rate;
    sum_sq = t.sum_sq +. (rate *. rate) }

let[@inline] count t = int_of_float t.n

let[@inline] cross_mean t = if t.n = 0.0 then nan else t.sum_rate /. t.n

let[@inline] cross_variance t =
  if t.n < 2.0 then 0.0
  else begin
    let nf = t.n in
    let mean = t.sum_rate /. nf in
    let v = (t.sum_sq -. (nf *. mean *. mean)) /. (nf -. 1.0) in
    Float.max 0.0 v
  end
