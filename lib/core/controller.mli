(** Admission controllers.

    A controller is driven by the simulator (or a live system) through
    three entry points: [observe] on every state change, [admissible] when
    an admission decision is needed (the controller answers with the
    {e total} number of flows it would currently allow), and
    [on_admit]/[on_depart] notifications.  Controllers are deliberately
    decoupled from traffic generation: they only ever see
    {!Observation.t} cross-sections. *)

type t

val name : t -> string
val observe : t -> Observation.t -> unit

val admissible : t -> Observation.t -> int
(** Maximum number of flows the controller would allow in the system at
    this instant.  The caller admits while [n < admissible]. *)

val on_admit : t -> Observation.t -> unit
(** Called just after a flow is admitted (the observation reflects the
    post-admission state). *)

val on_depart : t -> Observation.t -> unit
val reset : t -> unit

val copy : t -> t
(** Independent deep copy of the controller and its accumulated state
    (estimator memory, windowed maxima, back-off flags); original and
    copy evolve separately from the split point.  Used by the
    simulator's snapshot/restore (rare-event splitting).  All schemes
    below support it.
    @raise Invalid_argument for a custom {!make} controller built
    without [~copy]. *)

val make :
  ?on_admit:(Observation.t -> unit) ->
  ?on_depart:(Observation.t -> unit) ->
  ?reset:(unit -> unit) ->
  ?copy:(unit -> t) ->
  name:string ->
  observe:(Observation.t -> unit) ->
  admissible:(Observation.t -> int) ->
  unit ->
  t
(** Escape hatch for building custom schemes.  Every controller built
    here (including all the schemes below) is uniformly instrumented:
    each [admissible] call counts into the [mbac_decisions_total] /
    [mbac_admit_total] / [mbac_reject_total] telemetry counters and,
    when tracing is on, emits a ["decision"] trace event carrying the
    controller name, the admissible count, and the cross-sectional
    m̂/σ̂ (see OBSERVABILITY.md). *)

(** {1 The paper's schemes} *)

val perfect : Params.t -> t
(** Omniscient admission control: always allows exactly m* (eqn (4)).
    The yardstick every measurement-based scheme is compared against. *)

val certainty_equivalent : capacity:float -> p_ce:float -> Estimator.t -> t
(** The generic certainty-equivalent MBAC: plug any estimator into the
    Gaussian criterion (eqn (6)) run at target [p_ce].  While the
    estimator has no estimate yet the controller admits one flow at a
    time (cautious bootstrap).
    @raise Invalid_argument if [p_ce] is outside (0, 0.5]. *)

val memoryless : capacity:float -> p_ce:float -> t
(** [certainty_equivalent] with the memoryless estimator — the scheme
    whose penalty Prop 3.3 and eqn (33) quantify. *)

val with_memory : capacity:float -> p_ce:float -> t_m:float -> t
(** [certainty_equivalent] with the exponential filter of memory [t_m]. *)

val robust : Params.t -> t
(** The paper's recommended design (§5.3): memory window T_m = T~_h and
    the adjusted target p_ce from inverting eqn (38) — delivers ~p_q
    across a wide range of unknown correlation time-scales. *)

(** {1 Baselines from related work (§6)} *)

val peak_rate : capacity:float -> peak:float -> t
(** Lossless peak-rate allocation — no measurement, no multiplexing gain. *)

val measured_sum :
  capacity:float -> utilization_target:float -> window:float -> peak:float ->
  t
(** Jamin et al. '95, simplified to the bufferless setting: admit a new
    flow iff (max aggregate load over the last [window]) + [peak]
    <= [utilization_target *. capacity].  The windowed maximum uses
    rotating sub-blocks, as in the original algorithm's
    measurement/sampling windows.
    @raise Invalid_argument if [utilization_target] outside (0,1] or
    [window <= 0] or [peak <= 0]. *)

val hoeffding :
  capacity:float -> p_ce:float -> peak:float -> Estimator.t -> t
(** Hoeffding-bound acceptance region: admit while
    M mu_hat + peak sqrt(M ln(1/p_ce) / 2) <= capacity — a conservative
    distribution-free criterion (cf. Floyd's admission-control note),
    using only the measured mean and the declared peak. *)

val chernoff :
  capacity:float -> p_ce:float -> Estimator.t -> t
(** Chernoff/effective-bandwidth acceptance (Hui [14]) with a Gaussian
    MGF built from the measured mean and variance: the paper's criterion
    run at alpha = sqrt(2 ln(1/p_ce)) — uniformly more conservative than
    the Q^{-1}(p_ce) criterion, exact in exponential order in the
    large-deviations regime. *)

val gkk :
  capacity:float -> p_ce:float -> prior_mu:float -> prior_var:float ->
  prior_weight:float -> t
(** A Gibbens–Kelly–Key-style scheme: memoryless estimates smoothed
    toward a fixed prior (weight in [0,1]) plus the "one-out, one-in"
    back-off — after every admission, further admissions are blocked
    until a departure.
    @raise Invalid_argument if [prior_weight] outside [0,1]. *)
