let pi = 4.0 *. atan 1.0
let max_gaussian_arg = 38.0

let sigma_m_sq ~t_c ~t_m ~gamma t =
  ((2.0 *. t_c) +. t_m) /. (t_c +. t_m)
  -. (2.0 *. t_c /. (t_c +. t_m) *. exp (-.gamma *. t))

let residual_term ~t_c ~t_m ~alpha_ce =
  (* lim of the fluctuation-only overflow: Q(alpha sqrt(1 + T_c/T_m)).
     With no memory the estimator fluctuates with the traffic itself and
     the term degenerates to Q(inf) = 0 (all the probability lives in the
     hitting term). *)
  if t_m = 0.0 then 0.0
  else begin
    let z = alpha_ce *. sqrt (1.0 +. (t_c /. t_m)) in
    if z > max_gaussian_arg then 0.0 else Mbac_stats.Gaussian.q z
  end

let overflow ~p ~t_m ~alpha_ce =
  if t_m < 0.0 then invalid_arg "Memory_formula.overflow: requires t_m >= 0";
  let t_c = p.Params.t_c in
  let gamma = Params.gamma p in
  let prefactor = gamma *. t_c /. (t_c +. t_m) in
  let integrand t =
    let s2 = sigma_m_sq ~t_c ~t_m ~gamma t in
    if s2 <= 0.0 then 0.0
    else begin
      let s = sqrt s2 in
      let z = (alpha_ce +. t) /. s in
      if z > max_gaussian_arg then 0.0
      else (alpha_ce +. t) /. (s2 *. s) *. Mbac_stats.Gaussian.phi z
    end
  in
  let hitting =
    (* abs_tol 0: p_f spans hundreds of decades, and the default
       absolute floor would stop the refinement long before the
       requested relative accuracy at small probabilities.  The t = u^2
       substitution flattens the t^{-1/2} boundary layer the integrand
       develops near t = 0 when sigma_m^2(0) = T_m/(T_c+T_m) is small
       (memoryless or T_m << T_c), which otherwise defeats the
       quadrature's error estimate at small alpha. *)
    Mbac_telemetry.Profile.span "memory_formula.overflow" (fun () ->
        prefactor
        *. Mbac_numerics.Integrate.semi_infinite ~rel_tol:1e-9 ~abs_tol:0.0
             (fun u -> 2.0 *. u *. integrand (u *. u))
             ~lo:0.0)
  in
  hitting +. residual_term ~t_c ~t_m ~alpha_ce

let overflow_closed_form ~p ~t_m ~alpha_ce =
  if t_m < 0.0 then
    invalid_arg "Memory_formula.overflow_closed_form: requires t_m >= 0";
  let t_c = p.Params.t_c in
  let gamma = Params.gamma p in
  let a = t_c +. t_m and b = (2.0 *. t_c) +. t_m in
  let exponent = -.(a /. (2.0 *. b)) *. alpha_ce *. alpha_ce in
  let hitting =
    gamma *. t_c /. sqrt (a *. b) /. sqrt (2.0 *. pi) *. exp exponent
  in
  hitting +. residual_term ~t_c ~t_m ~alpha_ce

let overflow_memoryless ~p ~alpha_ce = overflow ~p ~t_m:0.0 ~alpha_ce

let overflow_memoryless_closed_form ~p ~alpha_ce =
  Params.gamma p /. (2.0 *. sqrt pi) *. exp (-0.25 *. alpha_ce *. alpha_ce)

let overflow_memoryless_in_flow_params ~p ~alpha_ce =
  let open Params in
  t_h_tilde p /. (2.0 *. p.t_c)
  *. (p.sigma *. alpha_ce /. p.mu)
  *. Mbac_stats.Gaussian.q (alpha_ce /. sqrt 2.0)

let estimator_error_variance ~t_c ~t_m = t_c /. (t_c +. t_m)

(* ---------- Memoized evaluation of eqn (37) ---------- *)

(* [overflow] reads its parameters only through T_c and gamma, so
   (t_c, gamma, t_m, alpha_ce) keys the exact value.  The cache is
   domain-local: the parallel replication engine runs analysis closures
   on worker domains, and a shared Hashtbl would race. *)
let cache_key ~p ~t_m ~alpha_ce =
  (p.Params.t_c, Params.gamma p, t_m, alpha_ce)

let cache_max_entries = 4096

let point_cache : (float * float * float * float, float) Hashtbl.t Domain.DLS.key
    =
  Domain.DLS.new_key (fun () -> Hashtbl.create 256)

let overflow_cached ~p ~t_m ~alpha_ce =
  let tbl = Domain.DLS.get point_cache in
  let key = cache_key ~p ~t_m ~alpha_ce in
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = overflow ~p ~t_m ~alpha_ce in
      (* Sweeps revisit a bounded grid; a runaway keyspace means the
         caller is scanning, not sweeping, so start over rather than
         grow without bound. *)
      if Hashtbl.length tbl >= cache_max_entries then Hashtbl.reset tbl;
      Hashtbl.add tbl key v;
      v

module Tabulated = struct
  type t = {
    p : Params.t;
    t_m : float;
    alpha_hi : float; (* upper edge of the fitted domain *)
    table : Mbac_numerics.Cheb.t; (* interpolates log p_f in alpha *)
  }

  let alpha_max = 37.0 (* Q(37) is at the edge of the IEEE double range *)

  (* p_f is analytic in alpha only away from 0: in the memoryless /
     T_m << T_c corner the integrand's t^{-1/2} boundary layer gives
     p_f an alpha -> 0 cusp that no polynomial degree resolves.  Every
     controller quantile of interest satisfies alpha >= 0.5 (alpha = 0.5
     already means p = Q(0.5) = 0.31); below the fitted edge the
     evaluator falls back to the exact integral. *)
  let alpha_min = 0.5

  (* Only fit where p_f is comfortably above the IEEE underflow range:
     clamping underflowed node values would put a kink in log p_f and
     destroy the interpolant's geometric convergence everywhere. *)
  let underflow_guard = 1e-280

  let create ?(nodes = 128) ~p ~t_m () =
    if t_m < 0.0 then
      invalid_arg "Memory_formula.Tabulated.create: requires t_m >= 0";
    let pf alpha_ce = overflow ~p ~t_m ~alpha_ce in
    (* p_f is monotone decreasing in alpha; bisect for the edge beyond
       which it leaves the representable range.  A handful of extra
       integrals at build time, none at evaluation time. *)
    let alpha_hi =
      if pf alpha_max >= underflow_guard then alpha_max
      else if pf (2.0 *. alpha_min) < underflow_guard then 2.0 *. alpha_min
        (* degenerate parameters *)
      else begin
        let lo = ref (2.0 *. alpha_min) and hi = ref alpha_max in
        while !hi -. !lo > 1e-3 do
          let mid = 0.5 *. (!lo +. !hi) in
          if pf mid >= underflow_guard then lo := mid else hi := mid
        done;
        !lo
      end
    in
    (* p_f spans hundreds of decades even inside the fitted domain, so
       the table interpolates log p_f — smooth and slowly varying — and
       exponentiates on evaluation, which is what makes a *relative*
       accuracy guarantee attainable. *)
    let table =
      Mbac_numerics.Cheb.fit ~lo:alpha_min ~hi:alpha_hi ~nodes (fun alpha_ce ->
          log (Float.max Float.min_float (pf alpha_ce)))
    in
    { p; t_m; alpha_hi; table }

  let exact t ~alpha_ce = overflow ~p:t.p ~t_m:t.t_m ~alpha_ce

  let overflow t ~alpha_ce =
    if alpha_ce >= alpha_min && alpha_ce <= t.alpha_hi then
      exp (Mbac_numerics.Cheb.eval t.table alpha_ce)
    else exact t ~alpha_ce (* outside the fitted domain: fall back *)
end
