let pi = 4.0 *. atan 1.0
let max_gaussian_arg = 38.0

let sigma_m_sq ~t_c ~t_m ~gamma t =
  ((2.0 *. t_c) +. t_m) /. (t_c +. t_m)
  -. (2.0 *. t_c /. (t_c +. t_m) *. exp (-.gamma *. t))

let residual_term ~t_c ~t_m ~alpha_ce =
  (* lim of the fluctuation-only overflow: Q(alpha sqrt(1 + T_c/T_m)).
     With no memory the estimator fluctuates with the traffic itself and
     the term degenerates to Q(inf) = 0 (all the probability lives in the
     hitting term). *)
  if t_m = 0.0 then 0.0
  else begin
    let z = alpha_ce *. sqrt (1.0 +. (t_c /. t_m)) in
    if z > max_gaussian_arg then 0.0 else Mbac_stats.Gaussian.q z
  end

let overflow ~p ~t_m ~alpha_ce =
  if t_m < 0.0 then invalid_arg "Memory_formula.overflow: requires t_m >= 0";
  let t_c = p.Params.t_c in
  let gamma = Params.gamma p in
  let prefactor = gamma *. t_c /. (t_c +. t_m) in
  let integrand t =
    let s2 = sigma_m_sq ~t_c ~t_m ~gamma t in
    if s2 <= 0.0 then 0.0
    else begin
      let s = sqrt s2 in
      let z = (alpha_ce +. t) /. s in
      if z > max_gaussian_arg then 0.0
      else (alpha_ce +. t) /. (s2 *. s) *. Mbac_stats.Gaussian.phi z
    end
  in
  let hitting =
    Mbac_telemetry.Profile.span "memory_formula.overflow" (fun () ->
        prefactor
        *. Mbac_numerics.Integrate.semi_infinite ~rel_tol:1e-9 integrand
             ~lo:0.0)
  in
  hitting +. residual_term ~t_c ~t_m ~alpha_ce

let overflow_closed_form ~p ~t_m ~alpha_ce =
  if t_m < 0.0 then
    invalid_arg "Memory_formula.overflow_closed_form: requires t_m >= 0";
  let t_c = p.Params.t_c in
  let gamma = Params.gamma p in
  let a = t_c +. t_m and b = (2.0 *. t_c) +. t_m in
  let exponent = -.(a /. (2.0 *. b)) *. alpha_ce *. alpha_ce in
  let hitting =
    gamma *. t_c /. sqrt (a *. b) /. sqrt (2.0 *. pi) *. exp exponent
  in
  hitting +. residual_term ~t_c ~t_m ~alpha_ce

let overflow_memoryless ~p ~alpha_ce = overflow ~p ~t_m:0.0 ~alpha_ce

let overflow_memoryless_closed_form ~p ~alpha_ce =
  Params.gamma p /. (2.0 *. sqrt pi) *. exp (-0.25 *. alpha_ce *. alpha_ce)

let overflow_memoryless_in_flow_params ~p ~alpha_ce =
  let open Params in
  t_h_tilde p /. (2.0 *. p.t_c)
  *. (p.sigma *. alpha_ce /. p.mu)
  *. Mbac_stats.Gaussian.q (alpha_ce /. sqrt 2.0)

let estimator_error_variance ~t_c ~t_m = t_c /. (t_c +. t_m)
