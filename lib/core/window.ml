let recommended_t_m p = Params.t_h_tilde p

let robustness_profile p ~t_m ~t_cs =
  Array.map
    (fun t_c ->
      let p' = Params.make ~n:p.Params.n ~mu:p.Params.mu ~sigma:p.Params.sigma
          ~t_h:p.Params.t_h ~t_c ~p_q:p.Params.p_q
      in
      (* Cached exact values: [is_robust] / [worst_case_overflow] /
         direct profile calls over the same grid share the integrals. *)
      let pf =
        Memory_formula.overflow_cached ~p:p' ~t_m
          ~alpha_ce:(Params.alpha_q p')
      in
      (t_c, pf))
    t_cs

let worst_case_overflow p ~t_m ~t_cs =
  Array.fold_left
    (fun acc (_, pf) -> Float.max acc pf)
    0.0
    (robustness_profile p ~t_m ~t_cs)

let is_robust ?(tolerance_factor = 10.0) p ~t_m ~t_cs =
  worst_case_overflow p ~t_m ~t_cs <= tolerance_factor *. p.Params.p_q
