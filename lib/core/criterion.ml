(* Inlined: one call per admission decision (per simulation event); the
   four float arguments would otherwise box at the call boundary. *)
let[@inline] admissible_real ~capacity ~mu ~sigma ~alpha =
  if mu <= 0.0 then invalid_arg "Criterion.admissible_real: requires mu > 0";
  if sigma < 0.0 then invalid_arg "Criterion.admissible_real: requires sigma >= 0";
  if capacity <= 0.0 then 0.0
  else if sigma = 0.0 then capacity /. mu
  else begin
    (* M mu + alpha sigma sqrt M - c = 0; positive root in sqrt M. *)
    let sa = sigma *. alpha in
    let root = (sqrt ((sa *. sa) +. (4.0 *. capacity *. mu)) -. sa) /. (2.0 *. mu) in
    if root <= 0.0 then 0.0 else root *. root
  end

let[@inline] admissible ~capacity ~mu ~sigma ~alpha =
  let m = admissible_real ~capacity ~mu ~sigma ~alpha in
  if m <= 0.0 then 0 else int_of_float m

let overflow_probability ~capacity ~mu ~sigma ~m =
  if m <= 0.0 then 0.0
  else
    Mbac_stats.Gaussian.overflow_probability ~capacity ~mean:(m *. mu)
      ~std:(sigma *. sqrt m)

let m_star_real p =
  admissible_real ~capacity:(Params.capacity p) ~mu:p.Params.mu
    ~sigma:p.Params.sigma ~alpha:(Params.alpha_q p)

let m_star p =
  let m = m_star_real p in
  if m <= 0.0 then 0 else int_of_float m

let m_star_approx p =
  let open Params in
  p.n -. (p.sigma *. alpha_q p /. p.mu *. sqrt p.n)

let peak_rate_count ~capacity ~peak =
  if peak <= 0.0 then invalid_arg "Criterion.peak_rate_count: requires peak > 0";
  if capacity <= 0.0 then 0 else int_of_float (capacity /. peak)
