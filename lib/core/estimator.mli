(** Traffic-parameter estimators (§3 eqn (7), §4.1 eqn (23), §4.3).

    An estimator consumes the stream of {!Observation.t} cross-sections
    produced by the system (one per state-change event) and maintains an
    estimate of the per-flow mean and variance.  The controllers plug an
    estimator into the certainty-equivalent admission criterion. *)

type estimate = {
  mutable mu_hat : float;   (** estimated per-flow mean bandwidth *)
  mutable var_hat : float;  (** estimated per-flow bandwidth variance (>= 0) *)
}
(** The fields are mutable because {!current} refreshes and returns one
    cached record per estimator rather than allocating (admission
    decisions sit on the simulator's per-event path).  Read the fields
    immediately: they are valid until the next [observe] or [current]
    call on the same estimator. *)

type t

val name : t -> string
val observe : t -> Observation.t -> unit
val current : t -> estimate option
(** [None] until enough data has been seen (e.g. no observation yet, or
    fewer than 2 flows ever observed).  The returned record is reused
    across calls; see {!type:estimate}.

    {b Confinement:} the cached record makes [current] single-domain by
    construction — a reader in another domain can observe a torn update
    (one field refreshed, the other stale), since the two field stores
    are independent.  The same goes for every {!Controller}'s closed-over
    state.  Code that publishes estimates across domains (the serving
    engine's measurement thread) must confine [observe]/[current] to one
    domain and hand other domains {!snapshot_estimate} values instead. *)

type snapshot = { mu : float; var : float }
(** An immutable copy of the estimate: safe to publish to other domains
    (e.g. through an [Atomic.t]) and to hold across later [observe]
    calls. *)

val snapshot_estimate : t -> snapshot option
(** Like {!current}, but allocates a fresh immutable {!snapshot} that
    never changes after it is returned.  Use on any path where the
    estimate outlives the next [observe]/[current] call or crosses a
    domain boundary. *)

val reset : t -> unit

val copy : t -> t
(** Independent deep copy of the estimator and its accumulated state;
    the original and the copy evolve separately from the split point.
    Used by the simulator's snapshot/restore (rare-event splitting). *)

val memoryless : unit -> t
(** The paper's memoryless estimator (eqns (7)/(23)): the estimate is the
    cross-sectional mean/variance of the {e latest} observation. *)

val ewma : t_m:float -> t
(** First-order auto-regressive (exponentially weighted) filter with
    impulse response h(t) = (1/T_m) exp(-t/T_m) (§4.3), applied to the
    cross-sectional mean and variance signals.  The input signal is
    piecewise constant between observations, so the filter is advanced
    {e exactly}: est <- x_prev + (est - x_prev) exp(-dt/T_m).
    [t_m = 0.] degenerates to {!memoryless}.
    @raise Invalid_argument if [t_m < 0]. *)

val sliding_window : t_w:float -> t
(** Time-weighted average of the cross-sectional signals over the window
    [now - t_w, now] (a rectangular impulse response, the "measurement
    window" of Jamin et al. discussed in §6).
    @raise Invalid_argument if [t_w <= 0]. *)

val aggregate_only : t_m:float -> t
(** Estimator that may use only the {e aggregate} rate, not per-flow
    rates (the practical constraint discussed in §7).  The mean is the
    filtered aggregate divided by the flow count; the per-flow variance
    is inferred from the temporal fluctuation of the aggregate:
    Var_time(S) ~ n sigma^2 for independent homogeneous flows. *)
