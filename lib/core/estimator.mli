(** Traffic-parameter estimators (§3 eqn (7), §4.1 eqn (23), §4.3).

    An estimator consumes the stream of {!Observation.t} cross-sections
    produced by the system (one per state-change event) and maintains an
    estimate of the per-flow mean and variance.  The controllers plug an
    estimator into the certainty-equivalent admission criterion. *)

type estimate = {
  mutable mu_hat : float;   (** estimated per-flow mean bandwidth *)
  mutable var_hat : float;  (** estimated per-flow bandwidth variance (>= 0) *)
}
(** The fields are mutable because {!current} refreshes and returns one
    cached record per estimator rather than allocating (admission
    decisions sit on the simulator's per-event path).  Read the fields
    immediately: they are valid until the next [observe] or [current]
    call on the same estimator. *)

type t

val name : t -> string
val observe : t -> Observation.t -> unit
val current : t -> estimate option
(** [None] until enough data has been seen (e.g. no observation yet, or
    fewer than 2 flows ever observed).  The returned record is reused
    across calls; see {!type:estimate}. *)

val reset : t -> unit

val copy : t -> t
(** Independent deep copy of the estimator and its accumulated state;
    the original and the copy evolve separately from the split point.
    Used by the simulator's snapshot/restore (rare-event splitting). *)

val memoryless : unit -> t
(** The paper's memoryless estimator (eqns (7)/(23)): the estimate is the
    cross-sectional mean/variance of the {e latest} observation. *)

val ewma : t_m:float -> t
(** First-order auto-regressive (exponentially weighted) filter with
    impulse response h(t) = (1/T_m) exp(-t/T_m) (§4.3), applied to the
    cross-sectional mean and variance signals.  The input signal is
    piecewise constant between observations, so the filter is advanced
    {e exactly}: est <- x_prev + (est - x_prev) exp(-dt/T_m).
    [t_m = 0.] degenerates to {!memoryless}.
    @raise Invalid_argument if [t_m < 0]. *)

val sliding_window : t_w:float -> t
(** Time-weighted average of the cross-sectional signals over the window
    [now - t_w, now] (a rectangular impulse response, the "measurement
    window" of Jamin et al. discussed in §6).
    @raise Invalid_argument if [t_w <= 0]. *)

val aggregate_only : t_m:float -> t
(** Estimator that may use only the {e aggregate} rate, not per-flow
    rates (the practical constraint discussed in §7).  The mean is the
    filtered aggregate divided by the flow count; the per-flow variance
    is inferred from the temporal fluctuation of the aggregate:
    Var_time(S) ~ n sigma^2 for independent homogeneous flows. *)
