(** Steady-state overflow probability of the continuous-load MBAC with an
    exponentially-weighted estimator of memory [t_m] — the paper's central
    quantitative results (§4.1–4.3, eqns (32)–(39)).

    Everything is expressed for the OU traffic model
    rho(t) = exp(-|t|/T_c); set [t_m = 0.] for the memoryless scheme
    (eqns (32)/(33) are the [t_m = 0] specialisations of (37)/(38)).

    [alpha_ce] is the Gaussian quantile the controller actually runs at —
    Q^{-1}(p_ce).  Plain certainty equivalence uses
    [alpha_ce = Q^{-1}(p_q)]; the robust scheme runs at the inverted
    (larger) value from {!Inversion}. *)

val sigma_m_sq : t_c:float -> t_m:float -> gamma:float -> float -> float
(** sigma_m^2(t) = (2T_c + T_m)/(T_c + T_m)
                   - (2T_c/(T_c + T_m)) exp(-gamma t)
    — the incremental variance E[(Z_{-t/beta} - Y_0)^2] of the filtered
    estimation error against the instantaneous fluctuation (§4.3). *)

val overflow : p:Params.t -> t_m:float -> alpha_ce:float -> float
(** Eqn (37): numerical integration of the hitting term plus the residual
    bandwidth-fluctuation term Q(alpha_ce sqrt(1 + T_c/T_m)).
    @raise Invalid_argument if [t_m < 0]. *)

val overflow_closed_form : p:Params.t -> t_m:float -> alpha_ce:float -> float
(** Eqn (38): the separation-of-time-scales (gamma >> 1) closed form
      gamma T_c / sqrt((T_c+T_m)(2T_c+T_m)) . (1/sqrt(2 pi))
        exp(-(T_c+T_m) alpha^2 / (2 (2T_c+T_m)))
      + Q(alpha sqrt(1 + T_c/T_m)). *)

val overflow_memoryless : p:Params.t -> alpha_ce:float -> float
(** Eqn (32): [overflow ~t_m:0.]. *)

val overflow_memoryless_closed_form : p:Params.t -> alpha_ce:float -> float
(** Eqn (33): gamma/(2 sqrt pi) exp(-alpha^2/4). *)

val overflow_memoryless_in_flow_params : p:Params.t -> alpha_ce:float -> float
(** Eqn (34): (T~_h / (2 T_c)) (sigma alpha / mu) Q(alpha / sqrt 2) —
    the same quantity rewritten with Q(x) ~ phi(x)/x, kept separately so
    the test suite can confirm the paper's algebra. *)

val estimator_error_variance : t_c:float -> t_m:float -> float
(** E[Z_t^2] = T_c / (T_c + T_m): the variance of the filtered
    mean-bandwidth estimate (§4.3) — decreasing in memory. *)

val overflow_cached : p:Params.t -> t_m:float -> alpha_ce:float -> float
(** Exactly {!overflow} — same adaptive integration, bit-identical
    results — memoized on (T_c, gamma, T_m, alpha_ce) in a bounded
    domain-local cache.  Use it from sweeps and robustness profiles that
    revisit the same parameter grid; repeated points cost a hash lookup
    instead of an adaptive integral. *)

(** Chebyshev-tabulated eqn (37) for many-alpha workloads (inversion
    scans, robustness sweeps over the controller quantile).  [create]
    pays [nodes] adaptive integrations once; evaluations then cost a
    Clenshaw recurrence — orders of magnitude faster — while staying
    within 1e-6 relative error of {!overflow} across the fitted alpha
    domain (the table interpolates log p_f, so the guarantee is relative
    even hundreds of decades down).  The fitted domain is
    [0.5, alpha_hi] with [alpha_hi <= 37] chosen at build time so p_f
    stays clear of IEEE underflow; outside it — sub-0.5 quantiles, or
    parameters whose p_f underflows early — evaluation silently falls
    back to the exact integral, and {!Tabulated.exact} is the explicit
    escape hatch for callers that always want the integral. *)
module Tabulated : sig
  type t

  val create : ?nodes:int -> p:Params.t -> t_m:float -> unit -> t
  (** Fit the table for fixed [p] and [t_m].  [nodes] defaults to 128.
      @raise Invalid_argument if [t_m < 0]. *)

  val overflow : t -> alpha_ce:float -> float
  (** Tabulated eqn (37).  Outside the fitted alpha domain it falls back
      to the exact integral. *)

  val exact : t -> alpha_ce:float -> float
  (** The adaptive integral {!Memory_formula.overflow} at the table's
      [p] and [t_m] — the precision escape hatch. *)
end
