type estimate = { mutable mu_hat : float; mutable var_hat : float }

type t = {
  name : string;
  observe : Observation.t -> unit;
  current : unit -> estimate option;
  reset : unit -> unit;
  copy : unit -> t;
}

let name t = t.name
let observe t obs = t.observe obs
let current t = t.current ()
let reset t = t.reset ()
let copy t = t.copy ()

type snapshot = { mu : float; var : float }

(* The cached [estimate] record returned by [current] is refreshed in
   place, so it must never escape the observing domain; this reads it
   immediately (per the [current] contract) into a fresh immutable
   record that is safe to publish anywhere. *)
let snapshot_estimate t =
  match t.current () with
  | Some e -> Some { mu = e.mu_hat; var = e.var_hat }
  | None -> None

(* Estimator state hides inside the closures, so each constructor below
   is written as a recursive [build] over its (copied) hidden state:
   [copy] duplicates the state and rebuilds the closures around the
   duplicate.  Copies of copies work for free. *)

let rec rename name e =
  { e with name; copy = (fun () -> rename name (e.copy ())) }

(* Each estimator returns the same physical [Some estimate] from
   [current], refreshed in place — a decision per simulation event must
   not allocate.  Callers read the fields immediately (all do); the
   values are valid until the next [observe]/[current] on the same
   estimator. *)
let cache () =
  let est = { mu_hat = 0.0; var_hat = 0.0 } in
  (est, Some est)

let memoryless () =
  (* The latest cross-section, reduced at observe time to the two
     numbers [current] needs, stored unboxed. *)
  let rec build ~mu0 ~var0 ~have0 =
    let est, some_est = cache () in
    est.mu_hat <- mu0;
    est.var_hat <- var0;
    let have = ref have0 in
    {
      name = "memoryless";
      observe =
        (fun obs ->
          if obs.Observation.n >= 1.0 then begin
            est.mu_hat <- Observation.cross_mean obs;
            est.var_hat <- Observation.cross_variance obs;
            have := true
          end);
      current = (fun () -> if !have then some_est else None);
      reset = (fun () -> have := false);
      copy =
        (fun () -> build ~mu0:est.mu_hat ~var0:est.var_hat ~have0:!have);
    }
  in
  build ~mu0:0.0 ~var0:0.0 ~have0:false

(* Exact advance of the first-order filter over a piecewise-constant input:
   while the input holds value [x], est(t + dt) = x + (est(t) - x) e^{-dt/Tm}.
   All-float record: the per-event stores stay unboxed. *)
type ewma_state = {
  mutable last_time : float;
  mutable in_mu : float;  (* input signal value held since last_time *)
  mutable in_var : float;
  mutable est_mu : float;
  mutable est_var : float;
}

let ewma ~t_m =
  if t_m < 0.0 then invalid_arg "Estimator.ewma: requires t_m >= 0";
  if t_m = 0.0 then rename "ewma(0)" (memoryless ())
  else begin
    let rec build s initialized0 =
    let initialized = ref initialized0 in
    let est, some_est = cache () in
    let observe obs =
      if obs.Observation.n >= 1.0 then begin
        let x = Observation.cross_mean obs in
        let v = Observation.cross_variance obs in
        if not !initialized then begin
          initialized := true;
          s.est_mu <- x;
          s.est_var <- v
        end
        else begin
          let dt = obs.Observation.now -. s.last_time in
          if dt > 0.0 then begin
            let decay = exp (-.dt /. t_m) in
            s.est_mu <- s.in_mu +. ((s.est_mu -. s.in_mu) *. decay);
            s.est_var <- s.in_var +. ((s.est_var -. s.in_var) *. decay)
          end
        end;
        s.last_time <- obs.Observation.now;
        s.in_mu <- x;
        s.in_var <- v
      end
    in
    let current () =
      if !initialized then begin
        est.mu_hat <- s.est_mu;
        est.var_hat <- Float.max 0.0 s.est_var;
        some_est
      end
      else None
    in
    let reset () = initialized := false in
    let copy () =
      build
        { last_time = s.last_time; in_mu = s.in_mu; in_var = s.in_var;
          est_mu = s.est_mu; est_var = s.est_var }
        !initialized
    in
    { name = Printf.sprintf "ewma(T_m=%g)" t_m; observe; current; reset;
      copy }
    in
    build
      { last_time = 0.0; in_mu = 0.0; in_var = 0.0; est_mu = 0.0;
        est_var = 0.0 }
      false
  end

(* Sliding time window: a ring buffer of constant-signal segments plus
   running integrals; old segments are evicted as the window slides.
   Partial trimming mutates the head segment's start in place, so each
   observe is O(1) amortized (every segment is pushed once, fully
   evicted at most once, and only the head is ever trimmed).  Segments
   are stored as a structure of unboxed float arrays. *)
type window_state = {
  mutable have_input : bool;
  mutable head : int;          (* ring index of the oldest segment *)
  mutable len : int;
  mutable t0s : Float.Array.t; (* rings, capacity = length t0s *)
  mutable t1s : Float.Array.t;
  mutable xs : Float.Array.t;
  mutable vs : Float.Array.t;
  sums : window_sums;
}

and window_sums = {
  mutable last_time : float;
  mutable in_mu : float;
  mutable in_var : float;
  mutable int_mu : float;  (* integral of x over the stored segments *)
  mutable int_var : float;
  mutable covered : float; (* total stored duration *)
}

let window_grow s =
  let cap = Float.Array.length s.t0s in
  let ncap = if cap = 0 then 64 else 2 * cap in
  let copy src =
    let dst = Float.Array.create ncap in
    for k = 0 to s.len - 1 do
      Float.Array.unsafe_set dst k
        (Float.Array.unsafe_get src ((s.head + k) mod cap))
    done;
    dst
  in
  s.t0s <- copy s.t0s;
  s.t1s <- copy s.t1s;
  s.xs <- copy s.xs;
  s.vs <- copy s.vs;
  s.head <- 0

let floatarray_dup a =
  let n = Float.Array.length a in
  let b = Float.Array.create n in
  Float.Array.blit a 0 b 0 n;
  b

let window_dup s =
  { have_input = s.have_input; head = s.head; len = s.len;
    t0s = floatarray_dup s.t0s; t1s = floatarray_dup s.t1s;
    xs = floatarray_dup s.xs; vs = floatarray_dup s.vs;
    sums =
      { last_time = s.sums.last_time; in_mu = s.sums.in_mu;
        in_var = s.sums.in_var; int_mu = s.sums.int_mu;
        int_var = s.sums.int_var; covered = s.sums.covered } }

let sliding_window ~t_w =
  if t_w <= 0.0 then invalid_arg "Estimator.sliding_window: requires t_w > 0";
  let rec build s =
  let evict ~now =
    let cutoff = now -. t_w in
    let continue = ref true in
    while !continue && s.len > 0 do
      let cap = Float.Array.length s.t0s in
      let h = s.head in
      let t0 = Float.Array.unsafe_get s.t0s h in
      let t1 = Float.Array.unsafe_get s.t1s h in
      if t1 <= cutoff then begin
        let d = t1 -. t0 in
        s.sums.int_mu <- s.sums.int_mu -. (d *. Float.Array.unsafe_get s.xs h);
        s.sums.int_var <- s.sums.int_var -. (d *. Float.Array.unsafe_get s.vs h);
        s.sums.covered <- s.sums.covered -. d;
        s.head <- (h + 1) mod cap;
        s.len <- s.len - 1
      end
      else if t0 < cutoff then begin
        (* trim the head segment in place to start at the cutoff *)
        let trimmed = cutoff -. t0 in
        s.sums.int_mu <-
          s.sums.int_mu -. (trimmed *. Float.Array.unsafe_get s.xs h);
        s.sums.int_var <-
          s.sums.int_var -. (trimmed *. Float.Array.unsafe_get s.vs h);
        s.sums.covered <- s.sums.covered -. trimmed;
        Float.Array.unsafe_set s.t0s h cutoff;
        continue := false
      end
      else continue := false
    done
  in
  let est, some_est = cache () in
  let observe obs =
    if obs.Observation.n >= 1.0 then begin
      let now = obs.Observation.now in
      if s.have_input && now > s.sums.last_time then begin
        if s.len = Float.Array.length s.t0s then window_grow s;
        let cap = Float.Array.length s.t0s in
        let tail = (s.head + s.len) mod cap in
        Float.Array.unsafe_set s.t0s tail s.sums.last_time;
        Float.Array.unsafe_set s.t1s tail now;
        Float.Array.unsafe_set s.xs tail s.sums.in_mu;
        Float.Array.unsafe_set s.vs tail s.sums.in_var;
        s.len <- s.len + 1;
        let d = now -. s.sums.last_time in
        s.sums.int_mu <- s.sums.int_mu +. (d *. s.sums.in_mu);
        s.sums.int_var <- s.sums.int_var +. (d *. s.sums.in_var);
        s.sums.covered <- s.sums.covered +. d
      end;
      evict ~now;
      s.have_input <- true;
      s.sums.last_time <- now;
      s.sums.in_mu <- Observation.cross_mean obs;
      s.sums.in_var <- Observation.cross_variance obs
    end
  in
  let current () =
    if not s.have_input then None
    else if s.sums.covered <= 0.0 then begin
      est.mu_hat <- s.sums.in_mu;
      est.var_hat <- Float.max 0.0 s.sums.in_var;
      some_est
    end
    else begin
      est.mu_hat <- s.sums.int_mu /. s.sums.covered;
      est.var_hat <- Float.max 0.0 (s.sums.int_var /. s.sums.covered);
      some_est
    end
  in
  let reset () =
    s.have_input <- false;
    s.head <- 0;
    s.len <- 0;
    s.sums.int_mu <- 0.0;
    s.sums.int_var <- 0.0;
    s.sums.covered <- 0.0
  in
  { name = Printf.sprintf "window(T_w=%g)" t_w; observe; current; reset;
    copy = (fun () -> build (window_dup s)) }
  in
  build
    { have_input = false; head = 0; len = 0;
      t0s = Float.Array.create 0; t1s = Float.Array.create 0;
      xs = Float.Array.create 0; vs = Float.Array.create 0;
      sums =
        { last_time = 0.0; in_mu = 0.0; in_var = 0.0;
          int_mu = 0.0; int_var = 0.0; covered = 0.0 } }

(* Aggregate-only estimation (§7): the controller sees the aggregate rate
   and the flow count but not per-flow rates.  The per-flow mean follows
   directly; the per-flow variance is recovered from the *temporal*
   fluctuation of the per-flow average x = S/n, since for n independent
   homogeneous flows Var_time(x) = sigma^2 / n. *)
type aggregate_state = {
  mutable t_last : float;
  mutable in_x : float;
  mutable m1 : float; (* filtered x *)
  mutable m2 : float; (* filtered x^2 *)
  mutable last_n : float;
}

let aggregate_only ~t_m =
  if t_m <= 0.0 then invalid_arg "Estimator.aggregate_only: requires t_m > 0";
  let rec build s init0 =
  let init = ref init0 in
  let est, some_est = cache () in
  let observe obs =
    if obs.Observation.n >= 1.0 then begin
      let x = Observation.cross_mean obs in
      if not !init then begin
        init := true;
        s.m1 <- x;
        s.m2 <- x *. x
      end
      else begin
        let dt = obs.Observation.now -. s.t_last in
        if dt > 0.0 then begin
          let decay = exp (-.dt /. t_m) in
          s.m1 <- s.in_x +. ((s.m1 -. s.in_x) *. decay);
          s.m2 <- (s.in_x *. s.in_x) +. ((s.m2 -. (s.in_x *. s.in_x)) *. decay)
        end
      end;
      s.t_last <- obs.Observation.now;
      s.in_x <- x;
      s.last_n <- obs.Observation.n
    end
  in
  let current () =
    if not !init then None
    else begin
      let var_of_x = Float.max 0.0 (s.m2 -. (s.m1 *. s.m1)) in
      est.mu_hat <- s.m1;
      est.var_hat <- s.last_n *. var_of_x;
      some_est
    end
  in
  let reset () = init := false in
  let copy () =
    build
      { t_last = s.t_last; in_x = s.in_x; m1 = s.m1; m2 = s.m2;
        last_n = s.last_n }
      !init
  in
  { name = Printf.sprintf "aggregate(T_m=%g)" t_m; observe; current; reset;
    copy }
  in
  build { t_last = 0.0; in_x = 0.0; m1 = 0.0; m2 = 0.0; last_n = 0.0 } false
