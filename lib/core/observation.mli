(** What an admission controller is allowed to see: a cross-section of the
    flows in the system at one instant.  Per-flow rates enter only through
    their sum and sum of squares, which is exactly what the paper's
    estimators (eqns (7)/(23)) need. *)

type t = {
  now : float;      (** current time *)
  n : float;        (** number of flows currently in the system (always an
                        exact integer; stored as a float so the record has
                        a flat unboxed layout — see [count]) *)
  sum_rate : float; (** aggregate bandwidth, sum of per-flow rates *)
  sum_sq : float;   (** sum of squared per-flow rates *)
}

val make : now:float -> n:int -> sum_rate:float -> sum_sq:float -> t
(** @raise Invalid_argument on negative [n] or inconsistent sums. *)

val admit : t -> rate:float -> t
(** [admit t ~rate] is the observation after admitting one more flow of
    rate [rate]: [n + 1], [sum_rate +. rate], [sum_sq +. rate²].
    Bit-for-bit identical to rebuilding with {!make} from state updated
    with the same expressions — the simulator's admit path uses it to
    skip the second full observation pass per admission. *)

val count : t -> int
(** [n] as the int it always is. *)

val cross_mean : t -> float
(** The memoryless mean estimate mu_hat(t) = sum_rate / n (eqn (23));
    [nan] when [n = 0]. *)

val cross_variance : t -> float
(** The memoryless unbiased variance estimate
    sigma_hat^2(t) = (sum_sq - n mu_hat^2) / (n - 1) (eqn (23)),
    clipped at 0 against roundoff; [0.] when [n < 2]. *)
