type t = Step | Linear | Power of float | Threshold of float

(* Evaluated once per event segment past warm-up; inlined so the float
   argument and result stay unboxed. *)
let[@inline] eval u f =
  let f = Float.max 0.0 (Float.min 1.0 f) in
  match u with
  | Step -> if f >= 1.0 then 1.0 else 0.0
  | Linear -> f
  | Power theta ->
      if theta <= 0.0 then invalid_arg "Utility.eval: Power requires theta > 0"
      else f ** theta
  | Threshold thr ->
      if thr <= 0.0 || thr > 1.0 then
        invalid_arg "Utility.eval: Threshold requires 0 < threshold <= 1"
      else if f >= thr then 1.0
      else f /. thr

let[@inline] delivered_fraction ~capacity ~load =
  if load <= 0.0 then 1.0 else Float.min 1.0 (capacity /. load)

let name = function
  | Step -> "step"
  | Linear -> "linear"
  | Power theta -> Printf.sprintf "power(%g)" theta
  | Threshold thr -> Printf.sprintf "threshold(%g)" thr
