open Mbac_sim
open Test_util

let test_ordering () =
  let h = Event_heap.create () in
  List.iter (fun t -> Event_heap.push h ~time:t (int_of_float t))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_fifo_ties () =
  let h = Event_heap.create () in
  List.iter (fun v -> Event_heap.push h ~time:1.0 v) [ 10; 20; 30 ];
  let v1 = Option.get (Event_heap.pop h) in
  let v2 = Option.get (Event_heap.pop h) in
  let v3 = Option.get (Event_heap.pop h) in
  Alcotest.(check (list int)) "insertion order on ties" [ 10; 20; 30 ]
    [ snd v1; snd v2; snd v3 ]

let test_empty () =
  let h = Event_heap.create () in
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Event_heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Event_heap.peek_time h = None)

let test_peek () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:2.0 'b';
  Event_heap.push h ~time:1.0 'a';
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Event_heap.peek_time h);
  Alcotest.(check int) "size" 2 (Event_heap.size h)

let test_clear () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:1.0 ();
  Event_heap.clear h;
  Alcotest.(check bool) "cleared" true (Event_heap.is_empty h)

let test_heap_property =
  qcheck ~count:200 "pop yields non-decreasing times"
    QCheck.(list_of_size Gen.(int_range 0 300) (float_range 0.0 1e6))
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun t -> Event_heap.push h ~time:t ()) times;
      let rec check last =
        match Event_heap.pop h with
        | None -> true
        | Some (t, ()) -> t >= last && check t
      in
      check neg_infinity)

let test_interleaved =
  qcheck ~count:100 "interleaved push/pop matches a sorted-list model"
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 0.0 100.0))
    (fun times ->
      let h = Event_heap.create () in
      let model = ref [] in
      let ok = ref true in
      List.iteri
        (fun i t ->
          Event_heap.push h ~time:t i;
          model := List.merge compare !model [ t ];
          if i mod 3 = 0 then
            match (Event_heap.pop h, !model) with
            | Some (pt, _), m0 :: rest ->
                if pt <> m0 then ok := false else model := rest
            | _, _ -> ok := false)
        times;
      (* drain and compare the remainder *)
      List.iter
        (fun expected ->
          match Event_heap.pop h with
          | Some (pt, _) when pt = expected -> ()
          | _ -> ok := false)
        !model;
      !ok && Event_heap.is_empty h)

let test_fifo_duplicate_times =
  (* With heavy timestamp duplication, pops must come back stably sorted
     by (time, insertion index) — exactly List.stable_sort on time. *)
  qcheck ~count:300 "duplicate timestamps drain in FIFO order"
    QCheck.(list_of_size Gen.(int_range 0 300) (int_range 0 4))
    (fun raw ->
      let times = List.map (fun k -> float_of_int k *. 0.5) raw in
      let h = Event_heap.create () in
      List.iteri (fun i t -> Event_heap.push h ~time:t (i, t)) times;
      let expected =
        List.stable_sort
          (fun (_, t1) (_, t2) -> compare t1 t2)
          (List.mapi (fun i t -> (i, t)) times)
      in
      let rec drain acc =
        match Event_heap.pop h with
        | Some (_, payload) -> drain (payload :: acc)
        | None -> List.rev acc
      in
      drain [] = expected)

(* Regression: [pop] used to leave the popped entry reachable through
   the slack slots of the backing array, pinning dead payloads for the
   heap's lifetime. *)
let test_pop_releases_payload () =
  let h = Event_heap.create () in
  let w = Weak.create 3 in
  (* Build payloads in a helper so no local survives into the GC check. *)
  let fill () =
    for i = 0 to 2 do
      let payload = ref (1000 + i) in
      Weak.set w i (Some payload);
      Event_heap.push h ~time:(float_of_int i) payload
    done
  in
  fill ();
  for _ = 0 to 2 do
    ignore (Event_heap.pop h)
  done;
  Gc.full_major ();
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "payload %d collectable after pop" i)
      false (Weak.check w i)
  done;
  (* the heap stays usable afterwards *)
  Event_heap.push h ~time:9.0 (ref 0);
  Alcotest.(check int) "still works" 1 (Event_heap.size h)

let test_clear_releases_payload () =
  let h = Event_heap.create () in
  let w = Weak.create 1 in
  let fill () =
    let payload = ref 42 in
    Weak.set w 0 (Some payload);
    Event_heap.push h ~time:1.0 payload
  in
  fill ();
  Event_heap.clear h;
  Gc.full_major ();
  Alcotest.(check bool) "payload collectable after clear" false
    (Weak.check w 0)

let test_nan_rejected () =
  let h = Event_heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_heap.push: NaN time")
    (fun () -> Event_heap.push h ~time:nan ())

let suite =
  [ ( "event_heap",
      [ test "ordering" test_ordering;
        test "FIFO tie-breaking" test_fifo_ties;
        test "empty heap" test_empty;
        test "peek and size" test_peek;
        test "clear" test_clear;
        test_heap_property;
        test_interleaved;
        test_fifo_duplicate_times;
        test "pop releases payloads" test_pop_releases_payload;
        test "clear releases payloads" test_clear_releases_payload;
        test "NaN rejected" test_nan_rejected ] ) ]
