open Mbac_sim
open Test_util

let test_ordering () =
  let h = Event_heap.create () in
  List.iter (fun t -> Event_heap.push h ~time:t (int_of_float t))
    [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let order = ref [] in
  let rec drain () =
    match Event_heap.pop h with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_fifo_ties () =
  let h = Event_heap.create () in
  List.iter (fun v -> Event_heap.push h ~time:1.0 v) [ 10; 20; 30 ];
  let v1 = Option.get (Event_heap.pop h) in
  let v2 = Option.get (Event_heap.pop h) in
  let v3 = Option.get (Event_heap.pop h) in
  Alcotest.(check (list int)) "insertion order on ties" [ 10; 20; 30 ]
    [ snd v1; snd v2; snd v3 ]

let test_empty () =
  let h = Event_heap.create () in
  Alcotest.(check bool) "empty" true (Event_heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Event_heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Event_heap.peek_time h = None);
  Alcotest.check_raises "min_time on empty"
    (Invalid_argument "Event_heap.min_time: empty heap") (fun () ->
      ignore (Event_heap.min_time h));
  Alcotest.check_raises "drop_min on empty"
    (Invalid_argument "Event_heap.drop_min: empty heap") (fun () ->
      Event_heap.drop_min h)

let test_peek () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:2.0 1;
  Event_heap.push h ~time:1.0 0;
  Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Event_heap.peek_time h);
  Alcotest.(check (float 0.0)) "min_time" 1.0 (Event_heap.min_time h);
  Alcotest.(check int) "min_payload" 0 (Event_heap.min_payload h);
  Alcotest.(check int) "size" 2 (Event_heap.size h)

let test_clear () =
  let h = Event_heap.create () in
  Event_heap.push h ~time:1.0 0;
  Event_heap.clear h;
  Alcotest.(check bool) "cleared" true (Event_heap.is_empty h)

let test_accessors_match_pop () =
  (* min_time/min_payload/drop_min are the zero-allocation spelling of
     pop; they must expose the same element. *)
  let h = Event_heap.create () in
  List.iteri (fun i t -> Event_heap.push h ~time:t (100 + i))
    [ 3.0; 1.0; 2.0; 1.0 ];
  let rec drain acc =
    if Event_heap.is_empty h then List.rev acc
    else begin
      let t = Event_heap.min_time h in
      let p = Event_heap.min_payload h in
      Event_heap.drop_min h;
      drain ((t, p) :: acc)
    end
  in
  Alcotest.(check (list (pair (float 0.0) int)))
    "drain via accessors"
    [ (1.0, 101); (1.0, 103); (2.0, 102); (3.0, 100) ]
    (drain [])

let test_heap_property =
  qcheck ~count:200 "pop yields non-decreasing times"
    QCheck.(list_of_size Gen.(int_range 0 300) (float_range 0.0 1e6))
    (fun times ->
      let h = Event_heap.create () in
      List.iter (fun t -> Event_heap.push h ~time:t 0) times;
      let rec check last =
        match Event_heap.pop h with
        | None -> true
        | Some (t, _) -> t >= last && check t
      in
      check neg_infinity)

(* Differential model: a sorted association list ordered by
   (time, insertion sequence) — the specification of the heap. *)
module Model = struct
  type t = (float * int * int) list ref
  (* (time, seq, payload), sorted; seq increases with insertion order *)

  let create () : t * int ref = (ref [], ref 0)

  let push (m, seq) ~time payload =
    let entry = (time, !seq, payload) in
    incr seq;
    (* stable insertion: an equal-time entry goes after existing ones,
       which is exactly the FIFO tie-break *)
    let rec insert = function
      | [] -> [ entry ]
      | ((t, _, _) as hd) :: tl ->
          if time < t then entry :: hd :: tl else hd :: insert tl
    in
    m := insert !m

  let pop (m, _) =
    match !m with
    | [] -> None
    | (t, _, p) :: tl ->
        m := tl;
        Some (t, p)

  let clear (m, _) = m := []
  let size (m, _) = List.length !m
end

let test_differential =
  (* Random interleaving of push/pop/clear against the sorted-list
     model, with heavily duplicated timestamps so FIFO tie-breaking is
     exercised on every run. *)
  qcheck ~count:300 "random ops match sorted-list model (incl. FIFO, clear)"
    QCheck.(
      list_of_size
        Gen.(int_range 0 400)
        (pair (int_range 0 20) (int_range 0 7)))
    (fun ops ->
      let h = Event_heap.create () in
      let m = Model.create () in
      let ok = ref true in
      List.iteri
        (fun i (k, op) ->
          match op with
          | 0 | 1 | 2 | 3 ->
              (* push with few distinct times -> many ties *)
              let t = float_of_int k *. 0.25 in
              Event_heap.push h ~time:t i;
              Model.push m ~time:t i
          | 4 | 5 ->
              let got = Event_heap.pop h in
              let want = Model.pop m in
              if got <> want then ok := false
          | 6 ->
              if Event_heap.size h <> Model.size m then ok := false
          | _ ->
              if k = 0 then begin
                (* rare full reset *)
                Event_heap.clear h;
                Model.clear m
              end)
        ops;
      (* drain both completely *)
      let rec drain () =
        let got = Event_heap.pop h in
        let want = Model.pop m in
        if got <> want then ok := false;
        if got <> None && want <> None then drain ()
      in
      drain ();
      !ok && Event_heap.is_empty h)

let test_fifo_duplicate_times =
  (* With heavy timestamp duplication, pops must come back stably sorted
     by (time, insertion index) — exactly List.stable_sort on time. *)
  qcheck ~count:300 "duplicate timestamps drain in FIFO order"
    QCheck.(list_of_size Gen.(int_range 0 300) (int_range 0 4))
    (fun raw ->
      let times = List.map (fun k -> float_of_int k *. 0.5) raw in
      let h = Event_heap.create () in
      List.iteri (fun i t -> Event_heap.push h ~time:t i) times;
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i t -> (t, i)) times)
      in
      let rec drain acc =
        match Event_heap.pop h with
        | Some (t, payload) -> drain ((t, payload) :: acc)
        | None -> List.rev acc
      in
      drain [] = expected)

let test_push_pop_interleaved_growth () =
  (* Push enough to force several capacity doublings, interleaved with
     pops, and verify total order at the end. *)
  let h = Event_heap.create () in
  let rng = Mbac_stats.Rng.create ~seed:42 in
  let popped = ref [] in
  for i = 0 to 9_999 do
    Event_heap.push h ~time:(Mbac_stats.Rng.float rng) i;
    if i mod 3 = 0 && not (Event_heap.is_empty h) then begin
      popped := Event_heap.min_time h :: !popped;
      Event_heap.drop_min h
    end
  done;
  while not (Event_heap.is_empty h) do
    popped := Event_heap.min_time h :: !popped;
    Event_heap.drop_min h
  done;
  Alcotest.(check int) "count" 10_000 (List.length !popped)

let test_nan_rejected () =
  let h = Event_heap.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_heap.push: NaN time")
    (fun () -> Event_heap.push h ~time:nan 0)

let suite =
  [ ( "event_heap",
      [ test "ordering" test_ordering;
        test "FIFO tie-breaking" test_fifo_ties;
        test "empty heap" test_empty;
        test "peek and size" test_peek;
        test "clear" test_clear;
        test "zero-alloc accessors match pop" test_accessors_match_pop;
        test_heap_property;
        test_differential;
        test_fifo_duplicate_times;
        test "growth under interleaved push/pop" test_push_pop_interleaved_growth;
        test "NaN rejected" test_nan_rejected ] ) ]
