open Test_util

let obs ~now ~rates =
  let n = Array.length rates in
  let sum = Array.fold_left ( +. ) 0.0 rates in
  let sq = Array.fold_left (fun a r -> a +. (r *. r)) 0.0 rates in
  Mbac.Observation.make ~now ~n ~sum_rate:sum ~sum_sq:sq

let test_memoryless_tracks_last () =
  let e = Mbac.Estimator.memoryless () in
  Alcotest.(check bool) "no estimate initially" true
    (Mbac.Estimator.current e = None);
  Mbac.Estimator.observe e (obs ~now:0.0 ~rates:[| 1.0; 3.0 |]);
  (match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; var_hat } ->
      check_close ~tol:1e-12 "mean" 2.0 mu_hat;
      check_close ~tol:1e-12 "var" 2.0 var_hat
  | None -> Alcotest.fail "expected estimate");
  (* next observation fully replaces the previous one *)
  Mbac.Estimator.observe e (obs ~now:1.0 ~rates:[| 10.0; 10.0 |]);
  (match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; var_hat } ->
      check_close ~tol:1e-12 "mean replaced" 10.0 mu_hat;
      check_close_abs ~tol:1e-12 "var replaced" 0.0 var_hat
  | None -> Alcotest.fail "expected estimate")

let test_ewma_decay_exact () =
  (* Signal holds value a on [0, dt), then we observe value b at dt:
     filtered estimate at dt is a + (est0 - a) e^{-dt/Tm} with est0 = a,
     i.e. still a; then holding b for another dt pulls it toward b. *)
  let t_m = 2.0 in
  let e = Mbac.Estimator.ewma ~t_m in
  Mbac.Estimator.observe e (obs ~now:0.0 ~rates:[| 4.0; 4.0 |]);
  Mbac.Estimator.observe e (obs ~now:1.0 ~rates:[| 8.0; 8.0 |]);
  (* estimate still 4.0: input was 4.0 on [0,1) *)
  (match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; _ } ->
      check_close ~tol:1e-12 "after first segment" 4.0 mu_hat
  | None -> Alcotest.fail "no estimate");
  Mbac.Estimator.observe e (obs ~now:3.0 ~rates:[| 8.0; 8.0 |]);
  (* input 8.0 held on [1,3): est = 8 + (4 - 8) e^{-2/2} *)
  (match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; _ } ->
      check_close ~tol:1e-12 "exact exponential decay"
        (8.0 +. ((4.0 -. 8.0) *. exp (-1.0)))
        mu_hat
  | None -> Alcotest.fail "no estimate")

let test_ewma_fixed_point =
  qcheck ~count:100 "constant input is a fixed point of the filter"
    QCheck.(pair (float_range 0.1 100.0) (float_range 0.1 10.0))
    (fun (t_m, x) ->
      let e = Mbac.Estimator.ewma ~t_m in
      for i = 0 to 50 do
        Mbac.Estimator.observe e
          (obs ~now:(float_of_int i *. 0.3) ~rates:[| x; x |])
      done;
      match Mbac.Estimator.current e with
      | Some { Mbac.Estimator.mu_hat; _ } -> abs_float (mu_hat -. x) <= 1e-9
      | None -> false)

let test_ewma_zero_is_memoryless () =
  let e = Mbac.Estimator.ewma ~t_m:0.0 in
  Mbac.Estimator.observe e (obs ~now:0.0 ~rates:[| 1.0; 1.0 |]);
  Mbac.Estimator.observe e (obs ~now:5.0 ~rates:[| 9.0; 9.0 |]);
  match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; _ } ->
      check_close ~tol:1e-12 "jumps instantly" 9.0 mu_hat
  | None -> Alcotest.fail "no estimate"

let test_ewma_variance_reduction () =
  (* Feed a noisy cross-section; the filtered mean should fluctuate much
     less than the memoryless one (the §4.3 point). *)
  let rng = Mbac_stats.Rng.create ~seed:1000 in
  let em = Mbac.Estimator.memoryless () in
  let ew = Mbac.Estimator.ewma ~t_m:50.0 in
  let acc_m = Mbac_stats.Welford.create () in
  let acc_w = Mbac_stats.Welford.create () in
  for i = 0 to 5000 do
    let rates =
      Array.init 20 (fun _ ->
          Mbac_stats.Sample.gaussian rng ~mu:1.0 ~sigma:0.3)
    in
    let o = obs ~now:(float_of_int i) ~rates in
    Mbac.Estimator.observe em o;
    Mbac.Estimator.observe ew o;
    if i > 500 then begin
      (match Mbac.Estimator.current em with
      | Some { Mbac.Estimator.mu_hat; _ } -> Mbac_stats.Welford.add acc_m mu_hat
      | None -> ());
      match Mbac.Estimator.current ew with
      | Some { Mbac.Estimator.mu_hat; _ } -> Mbac_stats.Welford.add acc_w mu_hat
      | None -> ()
    end
  done;
  let var_m = Mbac_stats.Welford.variance acc_m in
  let var_w = Mbac_stats.Welford.variance acc_w in
  Alcotest.(check bool) "memory reduces estimator variance" true
    (var_w < var_m /. 10.0);
  (* both unbiased *)
  check_close ~tol:0.02 "memoryless unbiased" 1.0 (Mbac_stats.Welford.mean acc_m);
  check_close ~tol:0.02 "filtered unbiased" 1.0 (Mbac_stats.Welford.mean acc_w)

let test_sliding_window_average () =
  let e = Mbac.Estimator.sliding_window ~t_w:10.0 in
  (* value 2 on [0,5), value 6 on [5,10): window average at 10 = 4 *)
  Mbac.Estimator.observe e (obs ~now:0.0 ~rates:[| 2.0; 2.0 |]);
  Mbac.Estimator.observe e (obs ~now:5.0 ~rates:[| 6.0; 6.0 |]);
  Mbac.Estimator.observe e (obs ~now:10.0 ~rates:[| 0.0; 0.0 |]);
  (match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; _ } ->
      check_close ~tol:1e-12 "window average" 4.0 mu_hat
  | None -> Alcotest.fail "no estimate");
  (* push the window fully past the old samples: 0 on [10, 25) *)
  Mbac.Estimator.observe e (obs ~now:25.0 ~rates:[| 0.0; 0.0 |]);
  match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; _ } ->
      check_close_abs ~tol:1e-9 "old samples evicted" 0.0 mu_hat
  | None -> Alcotest.fail "no estimate"

let test_sliding_window_partial_eviction () =
  let e = Mbac.Estimator.sliding_window ~t_w:4.0 in
  Mbac.Estimator.observe e (obs ~now:0.0 ~rates:[| 10.0; 10.0 |]);
  Mbac.Estimator.observe e (obs ~now:2.0 ~rates:[| 0.0; 0.0 |]);
  Mbac.Estimator.observe e (obs ~now:5.0 ~rates:[| 0.0; 0.0 |]);
  (* window [1,5): 10 on [1,2) (trimmed), 0 on [2,5) -> mean 2.5 *)
  match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; _ } ->
      check_close ~tol:1e-9 "trimmed head segment" 2.5 mu_hat
  | None -> Alcotest.fail "no estimate"

let test_aggregate_only_recovers_variance () =
  (* n iid flows resampled independently each step: Var_time(S/n) =
     sigma^2/n, so var_hat = n Var(S/n) ~ sigma^2. *)
  let rng = Mbac_stats.Rng.create ~seed:1001 in
  let e = Mbac.Estimator.aggregate_only ~t_m:200.0 in
  let n = 50 in
  for i = 0 to 20_000 do
    let rates =
      Array.init n (fun _ -> Mbac_stats.Sample.gaussian rng ~mu:2.0 ~sigma:0.5)
    in
    Mbac.Estimator.observe e (obs ~now:(float_of_int i) ~rates)
  done;
  match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; var_hat } ->
      check_close ~tol:0.05 "aggregate mean" 2.0 mu_hat;
      check_close ~tol:0.3 "recovered per-flow variance" 0.25 var_hat
  | None -> Alcotest.fail "no estimate"

let test_reset () =
  List.iter
    (fun e ->
      Mbac.Estimator.observe e (obs ~now:0.0 ~rates:[| 1.0; 2.0 |]);
      Alcotest.(check bool) "has estimate" true (Mbac.Estimator.current e <> None);
      Mbac.Estimator.reset e;
      Alcotest.(check bool)
        (Mbac.Estimator.name e ^ " reset clears")
        true
        (Mbac.Estimator.current e = None))
    [ Mbac.Estimator.memoryless (); Mbac.Estimator.ewma ~t_m:5.0;
      Mbac.Estimator.sliding_window ~t_w:5.0;
      Mbac.Estimator.aggregate_only ~t_m:5.0 ]

let test_empty_observations_ignored () =
  let e = Mbac.Estimator.ewma ~t_m:5.0 in
  Mbac.Estimator.observe e (obs ~now:0.0 ~rates:[| 3.0; 3.0 |]);
  Mbac.Estimator.observe e (obs ~now:1.0 ~rates:[||]);
  match Mbac.Estimator.current e with
  | Some { Mbac.Estimator.mu_hat; _ } ->
      check_close ~tol:1e-12 "empty cross-section ignored" 3.0 mu_hat
  | None -> Alcotest.fail "estimate lost"

let test_snapshot_estimate_immutable () =
  (* Unlike [current]'s cached record, a snapshot must keep its values
     across later observations — that is the whole point of publishing
     snapshots to the serving fast path. *)
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (Mbac.Estimator.name e ^ ": no snapshot before data")
        true
        (Mbac.Estimator.snapshot_estimate e = None);
      Mbac.Estimator.observe e (obs ~now:0.0 ~rates:[| 1.0; 3.0 |]);
      let snap =
        match Mbac.Estimator.snapshot_estimate e with
        | Some s -> s
        | None -> Alcotest.fail "expected a snapshot"
      in
      let cached =
        match Mbac.Estimator.current e with
        | Some c -> c
        | None -> Alcotest.fail "expected an estimate"
      in
      check_close ~tol:1e-12 "snapshot mu matches current" cached.Mbac.Estimator.mu_hat
        snap.Mbac.Estimator.mu;
      check_close ~tol:1e-12 "snapshot var matches current" cached.Mbac.Estimator.var_hat
        snap.Mbac.Estimator.var;
      Mbac.Estimator.observe e (obs ~now:50.0 ~rates:[| 9.0; 11.0 |]);
      Mbac.Estimator.observe e (obs ~now:100.0 ~rates:[| 9.0; 11.0 |]);
      (* the cached record moved with the data; the snapshot did not *)
      (match Mbac.Estimator.current e with
      | Some { Mbac.Estimator.mu_hat; _ } ->
          Alcotest.(check bool)
            (Mbac.Estimator.name e ^ ": cached estimate moved")
            true
            (abs_float (mu_hat -. snap.Mbac.Estimator.mu) > 1e-6)
      | None -> Alcotest.fail "estimate lost");
      check_close ~tol:1e-12 "snapshot mu unchanged" 2.0 snap.Mbac.Estimator.mu;
      check_close ~tol:1e-12 "snapshot var unchanged" 2.0 snap.Mbac.Estimator.var)
    [ Mbac.Estimator.memoryless (); Mbac.Estimator.ewma ~t_m:5.0;
      Mbac.Estimator.sliding_window ~t_w:5.0 ]

let test_invalid () =
  Alcotest.check_raises "ewma negative"
    (Invalid_argument "Estimator.ewma: requires t_m >= 0") (fun () ->
      ignore (Mbac.Estimator.ewma ~t_m:(-1.0)));
  Alcotest.check_raises "window nonpositive"
    (Invalid_argument "Estimator.sliding_window: requires t_w > 0") (fun () ->
      ignore (Mbac.Estimator.sliding_window ~t_w:0.0))

let suite =
  [ ( "estimator",
      [ test "memoryless tracks last" test_memoryless_tracks_last;
        test "ewma exact decay" test_ewma_decay_exact;
        test_ewma_fixed_point;
        test "ewma(0) = memoryless" test_ewma_zero_is_memoryless;
        slow_test "memory reduces estimator variance" test_ewma_variance_reduction;
        test "sliding window average" test_sliding_window_average;
        test "sliding window partial eviction" test_sliding_window_partial_eviction;
        slow_test "aggregate-only variance recovery" test_aggregate_only_recovers_variance;
        test "reset" test_reset;
        test "empty observations" test_empty_observations_ignored;
        test "snapshot_estimate is immutable" test_snapshot_estimate_immutable;
        test "invalid" test_invalid ] ) ]
