open Mbac_sim
open Test_util

(* The whole suite is written against the [Event_queue.S] seam and run
   twice — once per implementation — so the binary heap and the
   calendar queue are held to the identical contract.  (This file
   replaces the old [test_event_heap.ml], which named [Event_heap]
   directly and so never covered [Calendar_queue].) *)

module Make (Q : Event_queue.S) = struct
  (* Error-message prefixes differ per implementation; the contract is
     only that the operation raises [Invalid_argument]. *)
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label

  let test_ordering () =
    let h = Q.create () in
    List.iter
      (fun t -> Q.push h ~time:t (int_of_float t))
      [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
    let order = ref [] in
    let rec drain () =
      match Q.pop h with
      | Some (_, v) ->
          order := v :: !order;
          drain ()
      | None -> ()
    in
    drain ();
    Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

  let test_fifo_ties () =
    let h = Q.create () in
    List.iter (fun v -> Q.push h ~time:1.0 v) [ 10; 20; 30 ];
    let v1 = Option.get (Q.pop h) in
    let v2 = Option.get (Q.pop h) in
    let v3 = Option.get (Q.pop h) in
    Alcotest.(check (list int)) "insertion order on ties" [ 10; 20; 30 ]
      [ snd v1; snd v2; snd v3 ]

  let test_empty () =
    let h = Q.create () in
    Alcotest.(check bool) "empty" true (Q.is_empty h);
    Alcotest.(check bool) "pop none" true (Q.pop h = None);
    Alcotest.(check bool) "peek none" true (Q.peek_time h = None);
    expect_invalid "min_time on empty" (fun () -> ignore (Q.min_time h));
    expect_invalid "min_payload on empty" (fun () -> ignore (Q.min_payload h));
    expect_invalid "drop_min on empty" (fun () -> Q.drop_min h)

  let test_peek () =
    let h = Q.create () in
    Q.push h ~time:2.0 1;
    Q.push h ~time:1.0 0;
    Alcotest.(check (option (float 0.0))) "peek" (Some 1.0) (Q.peek_time h);
    Alcotest.(check (float 0.0)) "min_time" 1.0 (Q.min_time h);
    Alcotest.(check int) "min_payload" 0 (Q.min_payload h);
    Alcotest.(check int) "size" 2 (Q.size h)

  let test_clear () =
    let h = Q.create () in
    Q.push h ~time:1.0 0;
    Q.clear h;
    Alcotest.(check bool) "cleared" true (Q.is_empty h);
    (* the structure must stay usable, with FIFO intact, after clear *)
    Q.push h ~time:3.0 7;
    Q.push h ~time:3.0 8;
    Alcotest.(check bool) "pop after clear" true (Q.pop h = Some (3.0, 7));
    Alcotest.(check bool) "fifo after clear" true (Q.pop h = Some (3.0, 8))

  let test_accessors_match_pop () =
    (* min_time/min_payload/drop_min are the zero-allocation spelling of
       pop; they must expose the same element. *)
    let h = Q.create () in
    List.iteri (fun i t -> Q.push h ~time:t (100 + i)) [ 3.0; 1.0; 2.0; 1.0 ];
    let rec drain acc =
      if Q.is_empty h then List.rev acc
      else begin
        let t = Q.min_time h in
        let p = Q.min_payload h in
        Q.drop_min h;
        drain ((t, p) :: acc)
      end
    in
    Alcotest.(check (list (pair (float 0.0) int)))
      "drain via accessors"
      [ (1.0, 101); (1.0, 103); (2.0, 102); (3.0, 100) ]
      (drain [])

  let test_drain_min () =
    let h = Q.create () in
    List.iteri (fun i t -> Q.push h ~time:t i) [ 2.0; 1.0; 2.0; 1.0; 3.0 ];
    let batch = ref [] in
    Q.drain_min h ~f:(fun p -> batch := p :: !batch);
    Alcotest.(check (list int)) "first batch, FIFO" [ 1; 3 ] (List.rev !batch);
    Alcotest.(check int) "rest pending" 3 (Q.size h);
    batch := [];
    Q.drain_min h ~f:(fun p -> batch := p :: !batch);
    Alcotest.(check (list int)) "second batch" [ 0; 2 ] (List.rev !batch);
    (* pushes at the draining timestamp are swept into the same batch *)
    Q.clear h;
    Q.push h ~time:5.0 0;
    Q.push h ~time:6.0 99;
    batch := [];
    Q.drain_min h ~f:(fun p ->
        if p = 0 then Q.push h ~time:5.0 1;
        batch := p :: !batch);
    Alcotest.(check (list int)) "same-time respawn drained" [ 0; 1 ]
      (List.rev !batch);
    Alcotest.(check (option (float 0.0))) "later event untouched" (Some 6.0)
      (Q.peek_time h);
    Q.clear h;
    Q.drain_min h ~f:(fun _ -> Alcotest.fail "drain_min on empty called f")

  let test_copy_independent () =
    let h = Q.create () in
    List.iteri (fun i t -> Q.push h ~time:t i) [ 4.0; 1.0; 1.0; 9.0 ];
    ignore (Q.pop h);
    let c = Q.copy h in
    (* divergent mutation: ties pushed post-copy must break against the
       preserved sequence counter identically on both sides *)
    Q.push h ~time:1.0 100;
    Q.push c ~time:1.0 100;
    let drain q =
      let rec go acc =
        match Q.pop q with Some e -> go (e :: acc) | None -> List.rev acc
      in
      go []
    in
    let a = drain h and b = drain c in
    Alcotest.(check (list (pair (float 0.0) int))) "copy pops identically" a b

  let test_heap_property =
    qcheck ~count:200 "pop yields non-decreasing times"
      QCheck.(list_of_size Gen.(int_range 0 300) (float_range 0.0 1e6))
      (fun times ->
        let h = Q.create () in
        List.iter (fun t -> Q.push h ~time:t 0) times;
        let rec check last =
          match Q.pop h with
          | None -> true
          | Some (t, _) -> t >= last && check t
        in
        check neg_infinity)

  (* Differential model: a sorted association list ordered by
     (time, insertion sequence) — the specification of the queue. *)
  module Model = struct
    type t = (float * int * int) list ref
    (* (time, seq, payload), sorted; seq increases with insertion order *)

    let create () : t * int ref = (ref [], ref 0)

    let push (m, seq) ~time payload =
      let entry = (time, !seq, payload) in
      incr seq;
      (* stable insertion: an equal-time entry goes after existing ones,
         which is exactly the FIFO tie-break *)
      let rec insert = function
        | [] -> [ entry ]
        | ((t, _, _) as hd) :: tl ->
            if time < t then entry :: hd :: tl else hd :: insert tl
      in
      m := insert !m

    let pop (m, _) =
      match !m with
      | [] -> None
      | (t, _, p) :: tl ->
          m := tl;
          Some (t, p)

    let clear (m, _) = m := []
    let size (m, _) = List.length !m
  end

  let test_differential =
    (* Random interleaving of push/pop/clear against the sorted-list
       model, with heavily duplicated timestamps so FIFO tie-breaking is
       exercised on every run. *)
    qcheck ~count:300 "random ops match sorted-list model (incl. FIFO, clear)"
      QCheck.(
        list_of_size Gen.(int_range 0 400) (pair (int_range 0 20) (int_range 0 7)))
      (fun ops ->
        let h = Q.create () in
        let m = Model.create () in
        let ok = ref true in
        List.iteri
          (fun i (k, op) ->
            match op with
            | 0 | 1 | 2 | 3 ->
                (* push with few distinct times -> many ties *)
                let t = float_of_int k *. 0.25 in
                Q.push h ~time:t i;
                Model.push m ~time:t i
            | 4 | 5 ->
                let got = Q.pop h in
                let want = Model.pop m in
                if got <> want then ok := false
            | 6 -> if Q.size h <> Model.size m then ok := false
            | _ ->
                if k = 0 then begin
                  (* rare full reset *)
                  Q.clear h;
                  Model.clear m
                end)
          ops;
        (* drain both completely *)
        let rec drain () =
          let got = Q.pop h in
          let want = Model.pop m in
          if got <> want then ok := false;
          if got <> None && want <> None then drain ()
        in
        drain ();
        !ok && Q.is_empty h)

  let test_fifo_duplicate_times =
    (* With heavy timestamp duplication, pops must come back stably
       sorted by (time, insertion index) — exactly List.stable_sort. *)
    qcheck ~count:300 "duplicate timestamps drain in FIFO order"
      QCheck.(list_of_size Gen.(int_range 0 300) (int_range 0 4))
      (fun raw ->
        let times = List.map (fun k -> float_of_int k *. 0.5) raw in
        let h = Q.create () in
        List.iteri (fun i t -> Q.push h ~time:t i) times;
        let expected =
          List.stable_sort
            (fun (t1, _) (t2, _) -> compare t1 t2)
            (List.mapi (fun i t -> (t, i)) times)
        in
        let rec drain acc =
          match Q.pop h with
          | Some (t, payload) -> drain ((t, payload) :: acc)
          | None -> List.rev acc
        in
        drain [] = expected)

  let test_push_pop_interleaved_growth () =
    (* Push enough to force several capacity doublings, interleaved with
       pops, and verify total order at the end. *)
    let h = Q.create () in
    let rng = Mbac_stats.Rng.create ~seed:42 in
    let popped = ref [] in
    for i = 0 to 9_999 do
      Q.push h ~time:(Mbac_stats.Rng.float rng) i;
      if i mod 3 = 0 && not (Q.is_empty h) then begin
        popped := Q.min_time h :: !popped;
        Q.drop_min h
      end
    done;
    let last = ref neg_infinity in
    while not (Q.is_empty h) do
      let t = Q.min_time h in
      Alcotest.(check bool) "non-decreasing tail" true (t >= !last);
      last := t;
      popped := t :: !popped;
      Q.drop_min h
    done;
    Alcotest.(check int) "count" 10_000 (List.length !popped)

  let test_nan_rejected () =
    let h = Q.create () in
    expect_invalid "nan" (fun () -> Q.push h ~time:nan 0)

  let suite name =
    [ ( name,
        [ test "ordering" test_ordering;
          test "FIFO tie-breaking" test_fifo_ties;
          test "empty queue" test_empty;
          test "peek and size" test_peek;
          test "clear" test_clear;
          test "zero-alloc accessors match pop" test_accessors_match_pop;
          test "drain_min batches by timestamp" test_drain_min;
          test "copy is independent and FIFO-preserving" test_copy_independent;
          test_heap_property;
          test_differential;
          test_fifo_duplicate_times;
          test "growth under interleaved push/pop"
            test_push_pop_interleaved_growth;
          test "NaN rejected" test_nan_rejected ] ) ]
end

module Heap_suite = Make (Event_queue.Heap)
module Calendar_suite = Make (Event_queue.Calendar)

(* Cross-implementation differential: the calendar queue must produce
   byte-for-byte the pop sequence of the binary heap on schedules with
   timestamp collisions and far-future outliers — the two regimes where
   a calendar queue can go wrong (tie order inside a bucket chain,
   overflow-chain migration racing the live window). *)

module H = Event_queue.Heap
module C = Event_queue.Calendar

let run_both_compare ops =
  let h = H.create () and c = C.create () in
  let ok = ref true in
  let check_opt got want = if got <> want then ok := false in
  List.iteri
    (fun i (op, k, far) ->
      match op with
      | 0 | 1 | 2 | 3 | 4 ->
          (* clustered timestamps, with occasional far-future outliers
             that land on the heap leaves / the calendar overflow chain *)
          let t = float_of_int k *. 0.125 in
          let t = if far then (t +. 1.0) *. 1e7 else t in
          H.push h ~time:t i;
          C.push c ~time:t i
      | 5 | 6 -> check_opt (C.pop c) (H.pop h)
      | 7 ->
          let a = ref [] and b = ref [] in
          H.drain_min h ~f:(fun p -> a := p :: !a);
          C.drain_min c ~f:(fun p -> b := p :: !b);
          if !a <> !b then ok := false
      | 8 ->
          check_opt (C.peek_time c) (H.peek_time h);
          if C.size c <> H.size h then ok := false
      | _ ->
          (* drain deep copies in full; originals continue untouched *)
          let hc = H.copy h and cc = C.copy c in
          let rec go () =
            let got = C.pop cc and want = H.pop hc in
            check_opt got want;
            if got <> None || want <> None then go ()
          in
          go ())
    ops;
  let rec drain () =
    let got = C.pop c and want = H.pop h in
    check_opt got want;
    if got <> None || want <> None then drain ()
  in
  drain ();
  !ok

let test_cross_impl =
  qcheck ~count:300
    "calendar pops = heap pops (collisions, outliers, copies)"
    QCheck.(
      list_of_size
        Gen.(int_range 0 400)
        (triple (int_range 0 9) (int_range 0 24) bool))
    run_both_compare

let test_resize_invariance =
  (* Regime-shifting inter-event gaps force the calendar's bucket width
     to recalibrate (and the wheel to grow/shrink) mid-run; none of it
     may reorder pops relative to the width-oblivious heap. *)
  qcheck ~count:60 "bucket-width resizes never reorder"
    QCheck.(
      list_of_size
        Gen.(int_range 1 6)
        (triple (int_range 0 6) (int_range 1 120) (int_range 0 3)))
    (fun phases ->
      let h = H.create () and c = C.create () in
      let ok = ref true in
      let now = ref 0.0 in
      let payload = ref 0 in
      List.iter
        (fun (scale_exp, count, pop_every) ->
          (* each phase lives on a different timescale: 10^-3 .. 10^3 *)
          let scale = 10.0 ** float_of_int (scale_exp - 3) in
          for j = 1 to count do
            now := !now +. (scale *. float_of_int (1 + (j mod 5)));
            incr payload;
            H.push h ~time:!now !payload;
            C.push c ~time:!now !payload;
            if pop_every > 0 && j mod pop_every = 0 then
              if C.pop c <> H.pop h then ok := false
          done)
        phases;
      let rec drain () =
        let got = C.pop c and want = H.pop h in
        if got <> want then ok := false;
        if got <> None || want <> None then drain ()
      in
      drain ();
      !ok)

let test_recalibration_long_run () =
  (* Hold-model churn long enough to cross several 4096-pop
     recalibration boundaries, through three gap regimes. *)
  let h = H.create () and c = C.create () in
  let rng = Mbac_stats.Rng.create ~seed:7 in
  for i = 0 to 1_999 do
    let t = Mbac_stats.Rng.float rng *. 100.0 in
    H.push h ~time:t i;
    C.push c ~time:t i
  done;
  let mismatches = ref 0 in
  let regime = [| 1e-2; 10.0; 1e-2 |] in
  Array.iter
    (fun scale ->
      for i = 0 to 9_999 do
        let th = H.min_time h and tc = C.min_time c in
        if th <> tc || H.min_payload h <> C.min_payload c then incr mismatches;
        H.drop_min h;
        C.drop_min c;
        let t = th +. (Mbac_stats.Rng.float rng *. scale *. 2000.0) in
        H.push h ~time:t i;
        C.push c ~time:t i
      done)
    regime;
  Alcotest.(check int) "lockstep across regimes" 0 !mismatches;
  let rec drain () =
    let got = C.pop c and want = H.pop h in
    if got <> want then incr mismatches;
    if got <> None || want <> None then drain ()
  in
  drain ();
  Alcotest.(check int) "identical final drain" 0 !mismatches

let suite =
  Heap_suite.suite "event_queue (heap)"
  @ Calendar_suite.suite "event_queue (calendar)"
  @ [ ( "event_queue (differential)",
        [ test_cross_impl;
          test_resize_invariance;
          slow_test "recalibration across gap regimes" test_recalibration_long_run
        ] ) ]
