(* The log-bucketed quantile histogram: bucket geometry, out-of-range
   accounting, the documented quantile error bound, and the merge
   algebra the sharded-telemetry contract relies on. *)

open Mbac_telemetry
open Test_util

module Q = Quantile_histogram

(* ---------- geometry and out-of-range accounting ---------- *)

let test_bucket_edges () =
  (* lo = 1, 3 decades, 10 buckets/decade: log_10 lo = 0 exactly, so
     the index arithmetic has no representation slack. *)
  let h = Q.create ~lo:1.0 ~decades:3 ~buckets_per_decade:10 () in
  Alcotest.(check int) "buckets = decades * bpd" 30 (Q.buckets h);
  check_close "hi = lo * 10^decades" 1000.0 (Q.hi h);
  Alcotest.(check int) "x < lo -> underflow" (-1) (Q.bucket_index h 0.5);
  Alcotest.(check int) "x = lo -> bucket 0" 0 (Q.bucket_index h 1.0);
  Alcotest.(check int) "first bucket interior" 0 (Q.bucket_index h 1.05);
  Alcotest.(check int) "last bucket of decade 0" 9 (Q.bucket_index h 9.9);
  Alcotest.(check int) "decade 1 interior" 15 (Q.bucket_index h 35.0);
  Alcotest.(check int) "x = hi -> overflow" 30 (Q.bucket_index h 1000.0);
  Alcotest.(check int) "far above hi -> overflow" 30 (Q.bucket_index h 1e9);
  (* bucket bounds bracket their members *)
  let i = Q.bucket_index h 35.0 in
  Alcotest.(check bool) "lower <= x < lower * g" true
    (Q.bucket_lower h i <= 35.0 && 35.0 < Q.bucket_lower h (i + 1));
  Alcotest.(check bool) "mid inside the bucket" true
    (Q.bucket_lower h i < Q.bucket_mid h i
    && Q.bucket_mid h i < Q.bucket_lower h (i + 1))

let test_observe_counts () =
  let h = Q.create ~lo:1.0 ~decades:2 ~buckets_per_decade:5 () in
  List.iter (Q.observe h) [ 0.0; -3.0; 0.5; 2.0; 50.0; 100.0; 1e6; nan; infinity ];
  (* zero and negatives are finite values below lo: underflow, never
     dropped silently *)
  Alcotest.(check int) "underflow counts 0, negatives, small" 3 (Q.underflow h);
  Alcotest.(check int) "overflow counts x >= hi" 2 (Q.overflow h);
  Alcotest.(check int) "count includes non-finite" 9 (Q.count h);
  check_close "sum over finite values" (0.0 -. 3.0 +. 0.5 +. 2.0 +. 50.0
                                        +. 100.0 +. 1e6)
    (Q.sum h);
  Alcotest.(check int) "in-range mass" 2
    (Array.fold_left ( + ) 0 (Q.counts h))

let test_create_validation () =
  List.iteri
    (fun i f ->
      match f () with
      | (_ : Q.t) -> Alcotest.failf "bad geometry %d accepted" i
      | exception Invalid_argument _ -> ())
    [ (fun () -> Q.create ~lo:0.0 ());
      (fun () -> Q.create ~lo:(-1.0) ());
      (fun () -> Q.create ~lo:nan ());
      (fun () -> Q.create ~decades:0 ());
      (fun () -> Q.create ~buckets_per_decade:0 ());
      (fun () -> Q.create ~decades:1_000_000 ()) ]

(* ---------- quantile readout ---------- *)

let test_quantile_basics () =
  let h = Q.create () in
  Alcotest.(check bool) "empty -> nan" true (Float.is_nan (Q.quantile h 0.5));
  for v = 1 to 100 do
    Q.observe h (float_of_int v)
  done;
  (* decade boundaries (1, 10, 100) sit exactly on bucket edges, where
     the midpoint error attains the bound; allow rounding slack *)
  let bound = Q.max_rel_error h +. 1e-9 in
  List.iter
    (fun (q, exact) ->
      let est = Q.quantile h q in
      let err = abs_float ((est -. exact) /. exact) in
      if err > bound then
        Alcotest.failf "q=%g: estimate %g vs exact %g (rel err %g > %g)" q est
          exact err bound)
    (* exact empirical quantile at rank ceil(q*n) over 1..100 *)
    [ (0.0, 1.0); (0.5, 50.0); (0.9, 90.0); (0.99, 99.0); (1.0, 100.0) ];
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantile_histogram.quantile: q outside [0, 1]")
    (fun () -> ignore (Q.quantile h 1.5))

let test_quantile_clamps_out_of_range () =
  let h = Q.create ~lo:1.0 ~decades:2 ~buckets_per_decade:5 () in
  List.iter (Q.observe h) [ -1.0; 0.0; 0.5 ];
  check_close "all-underflow median clamps to lo" 1.0 (Q.quantile h 0.5);
  let g = Q.create ~lo:1.0 ~decades:2 ~buckets_per_decade:5 () in
  List.iter (Q.observe g) [ 100.0; 1e7 ];
  check_close "all-overflow median clamps to hi" 100.0 (Q.quantile g 0.5)

let test_max_rel_error_constant () =
  check_close "documented bound at the default geometry"
    ((10.0 ** (1.0 /. 40.0)) -. 1.0)
    (Q.max_rel_error_of ~buckets_per_decade:20);
  let h = Q.create () in
  check_close "instance accessor agrees"
    (Q.max_rel_error_of ~buckets_per_decade:(Q.buckets_per_decade h))
    (Q.max_rel_error h)

(* The headline property: for in-range observations the bucket-midpoint
   quantile is within max_rel_error of the exact empirical quantile
   (rank ceil(q*n)), across eight orders of magnitude. *)
let test_quantile_error_qcheck =
  qcheck ~count:300 "quantile within the documented relative-error bound"
    QCheck.(list_of_size Gen.(1 -- 60) (float_range (-8.0) 8.0))
    (fun exponents ->
      let values = List.map (fun u -> 10.0 ** u) exponents in
      let h = Q.create () in
      List.iter (Q.observe h) values;
      let sorted = Array.of_list values in
      Array.sort compare sorted;
      let n = Array.length sorted in
      let bound = Q.max_rel_error h +. 1e-12 in
      List.for_all
        (fun q ->
          let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
          let exact = sorted.(rank - 1) in
          abs_float ((Q.quantile h q -. exact) /. exact) <= bound)
        [ 0.1; 0.5; 0.9; 0.99; 0.999 ])

(* ---------- merge algebra ---------- *)

let test_merge_shape_mismatch () =
  let a = Q.create ~lo:1.0 ~decades:2 ~buckets_per_decade:5 () in
  let b = Q.create ~lo:1.0 ~decades:3 ~buckets_per_decade:5 () in
  Alcotest.check_raises "shape mismatch refused"
    (Invalid_argument "Quantile_histogram.merge_into: shape mismatch")
    (fun () -> Q.merge_into ~into:a b)

(* Values are powers of two, so every partial sum is exact and the
   float [sum] field cannot break associativity by rounding. *)
let hist_of ks =
  let h = Q.create () in
  List.iter (fun k -> Q.observe h (2.0 ** float_of_int k)) ks;
  h

let merged a b =
  let m = Q.copy a in
  Q.merge_into ~into:m b;
  m

let test_merge_assoc_comm_qcheck =
  qcheck ~count:200 "merge is associative and commutative"
    QCheck.(triple (small_list (-8 -- 8)) (small_list (-8 -- 8))
              (small_list (-8 -- 8)))
    (fun (ka, kb, kc) ->
      let a = hist_of ka and b = hist_of kb and c = hist_of kc in
      Q.equal (merged (merged a b) c) (merged a (merged b c))
      && Q.equal (merged a b) (merged b a))

let test_merge_matches_pooled_observations () =
  let a = hist_of [ -3; 0; 5 ] and b = hist_of [ 0; 2; 8; 8 ] in
  let pooled = hist_of [ -3; 0; 5; 0; 2; 8; 8 ] in
  Alcotest.(check bool) "merge = observing the union" true
    (Q.equal (merged a b) pooled)

let suite =
  [ ( "quantile_histogram",
      [ test "bucket edges" test_bucket_edges;
        test "observe counts" test_observe_counts;
        test "create validation" test_create_validation;
        test "quantile basics" test_quantile_basics;
        test "quantile clamps out-of-range" test_quantile_clamps_out_of_range;
        test "max_rel_error constant" test_max_rel_error_constant;
        test_quantile_error_qcheck;
        test "merge shape mismatch" test_merge_shape_mismatch;
        test_merge_assoc_comm_qcheck;
        test "merge = pooled observations" test_merge_matches_pooled_observations
      ] ) ]
