(* The rare-event machinery: simulator snapshot/restore semantics and
   the multilevel-splitting estimator's agreement with naive MC and with
   closed-form tails. *)
open Test_util

(* A fixed-population system with a known Gaussian tail: the peak-rate
   controller pins the admitted count at floor(capacity/peak) = 20 RCBR
   flows, so the stationary load is a sum of 20 i.i.d. (truncated)
   Gaussian rates — P(load > c) = Q((c - 20 mu)/(sigma sqrt 20)) up to
   CLT/truncation error.  c is placed ~2.33 sd out: p_f ~ 1e-2, cheap
   for both estimators. *)
let mu = 1.0
let sigma = 0.3
let flows = 20
let capacity = 23.13
let peak = 1.15

let sim_cfg =
  { (Mbac_sim.Continuous_load.default_config ~capacity
       ~holding_time_mean:50.0 ~target_p_q:1e-2)
    with
    Mbac_sim.Continuous_load.warmup = 20.0;
    batch_length = 20.0;
    check_every_events = max_int }

let controller () = Mbac.Controller.peak_rate ~capacity ~peak

let make_source rng ~start =
  Mbac_traffic.Rcbr.create rng
    { Mbac_traffic.Rcbr.mu; sigma; t_c = 1.0 }
    ~start

let split_cfg =
  { (Mbac_sim.Splitting.default_config ~pilot_time:500.0) with
    Mbac_sim.Splitting.levels = 3;
    trials_per_level = 512;
    calibration_time = 50.0 }

(* ---------- snapshot / restore ---------- *)

let trajectory sim n =
  List.init n (fun _ ->
      Mbac_sim.Continuous_load.step sim;
      ( Mbac_sim.Continuous_load.now sim,
        Mbac_sim.Continuous_load.load sim,
        Mbac_sim.Continuous_load.flows sim ))

let test_restore_replays_parent () =
  let rng = Mbac_stats.Rng.create ~seed:501 in
  let sim =
    Mbac_sim.Continuous_load.start rng sim_cfg ~controller:(controller ())
      ~make_source
  in
  for _ = 1 to 1000 do
    Mbac_sim.Continuous_load.step sim
  done;
  let snap = Mbac_sim.Continuous_load.snapshot sim in
  let parent = trajectory sim 500 in
  (* default restore replays the parent's stream from the snapshot *)
  let clone = Mbac_sim.Continuous_load.restore snap in
  let replay = trajectory clone 500 in
  if parent <> replay then
    Alcotest.fail "restored clone diverged from parent trajectory"

let test_restores_are_independent () =
  let rng = Mbac_stats.Rng.create ~seed:502 in
  let sim =
    Mbac_sim.Continuous_load.start rng sim_cfg ~controller:(controller ())
      ~make_source
  in
  for _ = 1 to 1000 do
    Mbac_sim.Continuous_load.step sim
  done;
  let snap = Mbac_sim.Continuous_load.snapshot sim in
  let a = Mbac_sim.Continuous_load.restore snap in
  let b = Mbac_sim.Continuous_load.restore snap in
  (* running one clone must not perturb the other: same snapshot, same
     replayed stream, so their trajectories match whether or not the
     other ran first *)
  let ta = trajectory a 300 in
  let tb = trajectory b 300 in
  if ta <> tb then Alcotest.fail "sibling clones interfered";
  (* a replacement rng leaves the restored state itself untouched *)
  let c =
    Mbac_sim.Continuous_load.restore
      ~rng:(Mbac_stats.Rng.create ~seed:777)
      snap
  in
  check_close ~tol:0.0 "clone starts at snapshot load"
    (Mbac_sim.Continuous_load.load sim)
    (Mbac_sim.Continuous_load.load c)

let test_snapshot_unaffected_by_parent () =
  let rng = Mbac_stats.Rng.create ~seed:503 in
  let sim =
    Mbac_sim.Continuous_load.start rng sim_cfg ~controller:(controller ())
      ~make_source
  in
  for _ = 1 to 500 do
    Mbac_sim.Continuous_load.step sim
  done;
  let snap = Mbac_sim.Continuous_load.snapshot sim in
  let before = trajectory (Mbac_sim.Continuous_load.restore snap) 200 in
  (* keep running the parent, then restore again: identical replay *)
  for _ = 1 to 2000 do
    Mbac_sim.Continuous_load.step sim
  done;
  let after = trajectory (Mbac_sim.Continuous_load.restore snap) 200 in
  if before <> after then
    Alcotest.fail "snapshot mutated by the live sim (aliasing)"

(* ---------- estimator agreement ---------- *)

let naive_run ~seed ~max_events =
  let cfg = { sim_cfg with Mbac_sim.Continuous_load.max_events } in
  Mbac_sim.Continuous_load.run
    (Mbac_stats.Rng.create ~seed)
    cfg ~controller:(controller ()) ~make_source

let splitting_run ~seed =
  Mbac_sim.Splitting.run ~seed split_cfg sim_cfg ~controller:(controller ())
    ~make_source

let test_splitting_jobs_invariant () =
  let a = Mbac_sim.Splitting.run ~jobs:1 ~seed:9 split_cfg sim_cfg
      ~controller:(controller ()) ~make_source
  in
  let b = Mbac_sim.Splitting.run ~jobs:4 ~seed:9 split_cfg sim_cfg
      ~controller:(controller ()) ~make_source
  in
  check_close ~tol:0.0 "p_f identical across jobs" a.Mbac_sim.Splitting.p_f
    b.Mbac_sim.Splitting.p_f;
  check_close ~tol:0.0 "ci identical across jobs"
    a.Mbac_sim.Splitting.ci_rel b.Mbac_sim.Splitting.ci_rel;
  Alcotest.(check int) "events identical across jobs"
    a.Mbac_sim.Splitting.total_events b.Mbac_sim.Splitting.total_events

(* Unbiasedness: on a calibrated p_f ~ 1e-2 system, the splitting
   estimate and a naive long run must agree within overlapping 95% CIs
   (widened 2x so sampling noise cannot flake the suite). *)
let test_splitting_vs_naive_qcheck =
  qcheck ~count:4 "splitting agrees with naive MC (overlapping CIs)"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let n = naive_run ~seed ~max_events:400_000 in
      let s = splitting_run ~seed:(seed + 10_000) in
      let np = n.Mbac_sim.Continuous_load.p_f in
      let nhw =
        let r = n.Mbac_sim.Continuous_load.ci_rel in
        if Float.is_nan r then 0.5 else r
      in
      let sp = s.Mbac_sim.Splitting.p_f in
      let shw = s.Mbac_sim.Splitting.ci_rel in
      if sp <= 0.0 || np <= 0.0 then
        QCheck.Test.fail_reportf "degenerate estimate: naive %g splitting %g"
          np sp
      else begin
        let n_lo = np *. (1.0 -. (2.0 *. nhw))
        and n_hi = np *. (1.0 +. (2.0 *. nhw)) in
        let s_lo = sp *. (1.0 -. (2.0 *. shw))
        and s_hi = sp *. (1.0 +. (2.0 *. shw)) in
        if s_lo > n_hi || n_lo > s_hi then
          QCheck.Test.fail_reportf
            "CIs disjoint: naive %.4g [%.4g, %.4g], splitting %.4g [%.4g, \
             %.4g]"
            np n_lo n_hi sp s_lo s_hi
        else true
      end)

(* Exact-answer check: the fixed-population load is a sum of 20 i.i.d.
   rates, so P(load > c) = Q((c - 20 mu)/(sigma sqrt 20)) up to
   CLT/truncation error (a few percent here).  The splitting estimate
   must land within that error plus its own CI. *)
let test_splitting_gaussian_exact () =
  let s = splitting_run ~seed:4242 in
  let exact =
    Mbac_stats.Gaussian.q
      ((capacity -. (float_of_int flows *. mu))
       /. (sigma *. sqrt (float_of_int flows)))
  in
  let p = s.Mbac_sim.Splitting.p_f in
  Alcotest.(check bool)
    (Printf.sprintf "splitting %.4g vs Gaussian tail %.4g" p exact)
    true
    (p > exact /. 1.8 && p < exact *. 1.8)

(* Gaussian-regime MBAC point: with memory T_m = T~_h the eqn (37)
   theory sits in its large-memory (Gaussian) regime and is a
   conservative upper bound on the simulated p_f (paper §5.2/Fig 5); the
   splitting estimate must respect that ordering without collapsing. *)
let test_splitting_vs_eqn37 () =
  let p =
    Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0
      ~p_q:1e-3
  in
  let t_m = Mbac.Params.t_h_tilde p in
  let alpha = Mbac.Params.alpha_q p in
  let theory = Mbac.Memory_formula.overflow_cached ~p ~t_m ~alpha_ce:alpha in
  let cfg =
    { (Mbac_sim.Continuous_load.default_config
         ~capacity:(Mbac.Params.capacity p)
         ~holding_time_mean:1000.0 ~target_p_q:1e-3)
      with
      Mbac_sim.Continuous_load.warmup = 400.0;
      batch_length = 200.0 }
  in
  let scfg =
    { (Mbac_sim.Splitting.default_config ~pilot_time:4000.0) with
      Mbac_sim.Splitting.levels = 4;
      trials_per_level = 512 }
  in
  let controller =
    Mbac.Controller.with_memory ~capacity:(Mbac.Params.capacity p)
      ~p_ce:1e-3 ~t_m
  in
  let r =
    Mbac_sim.Splitting.run ~seed:77 scfg cfg ~controller
      ~make_source:(fun rng ~start ->
        Mbac_traffic.Rcbr.create rng
          { Mbac_traffic.Rcbr.mu = 1.0; sigma = 0.3; t_c = 1.0 }
          ~start)
  in
  let pf = r.Mbac_sim.Splitting.p_f in
  Alcotest.(check bool)
    (Printf.sprintf "splitting %.4g vs theory %.4g (conservative bound)" pf
       theory)
    true
    (pf <= theory *. 1.5 && pf >= theory /. 50.0)

let suite =
  [ ( "splitting",
      [ test "restore replays parent" test_restore_replays_parent;
        test "sibling clones independent" test_restores_are_independent;
        test "snapshot survives parent" test_snapshot_unaffected_by_parent;
        test "jobs-invariant results" test_splitting_jobs_invariant;
        test_splitting_vs_naive_qcheck;
        test "Gaussian tail exact answer" test_splitting_gaussian_exact;
        slow_test "eqn (37) Gaussian-regime point" test_splitting_vs_eqn37
      ] ) ]
