(* The serving wire protocol: encode/decode identity for every message
   type (floats compared by bits, so NaN payloads count), and the
   typed-error paths — every truncated prefix asks for more bytes, bad
   tags and bad lengths are structural errors, and nothing raises. *)

open Test_util
module P = Mbac_serve.Protocol

(* ---------- generators ---------- *)

let gen_f64 =
  (* wire floats are raw binary64: exercise magnitudes, signed zeros,
     infinities, and NaN *)
  QCheck.Gen.oneof
    [ QCheck.Gen.float;
      QCheck.Gen.oneofl [ 0.0; -0.0; infinity; neg_infinity; nan; 1e-308 ] ]

let gen_u16 = QCheck.Gen.int_range 0 0xFFFF
let gen_u32 = QCheck.Gen.int_range 0 0xFFFFFFFF
let gen_i64 = QCheck.Gen.oneof [ QCheck.Gen.nat; QCheck.Gen.int_range 0 max_int ]

let gen_request =
  let open QCheck.Gen in
  oneof
    [ map (fun capacity -> P.Initialize { capacity }) gen_f64;
      map3
        (fun criterion load now -> P.Decide { criterion; load; now })
        gen_u16 gen_f64 gen_f64;
      map2 (fun load now -> P.Add { load; now }) gen_f64 gen_f64;
      map2 (fun load now -> P.Subtract { load; now }) gen_f64 gen_f64;
      map2
        (fun criterion admit -> P.Log_decision { criterion; admit })
        gen_u16 bool;
      return P.Stats;
      return P.Shutdown ]

let gen_response =
  let open QCheck.Gen in
  oneof
    [ return P.Ok_reply;
      map3
        (fun admit admissible flows -> P.Decision { admit; admissible; flows })
        bool gen_u32 gen_u32;
      (fun st ->
        let flows = gen_u32 st in
        let admitted_load = gen_f64 st in
        let capacity = gen_f64 st in
        let requests = gen_i64 st in
        let decisions = gen_i64 st in
        let admits = gen_i64 st in
        let updates = gen_i64 st in
        P.Stats_reply
          { flows; admitted_load; capacity; requests; decisions; admits;
            updates });
      map2
        (fun code message -> P.Error_reply { code; message })
        (int_range 0 0xFF)
        (string_size (int_range 0 300)) ]

(* floats compare by representation: the codec must move bits, not
   values (NaN = NaN here, 0.0 <> -0.0) *)
let f_eq a b = Int64.bits_of_float a = Int64.bits_of_float b

let request_eq (a : P.request) (b : P.request) =
  match (a, b) with
  | P.Initialize { capacity = c1 }, P.Initialize { capacity = c2 } ->
      f_eq c1 c2
  | ( P.Decide { criterion = i1; load = l1; now = n1 },
      P.Decide { criterion = i2; load = l2; now = n2 } ) ->
      i1 = i2 && f_eq l1 l2 && f_eq n1 n2
  | P.Add { load = l1; now = n1 }, P.Add { load = l2; now = n2 }
  | P.Subtract { load = l1; now = n1 }, P.Subtract { load = l2; now = n2 } ->
      f_eq l1 l2 && f_eq n1 n2
  | ( P.Log_decision { criterion = i1; admit = a1 },
      P.Log_decision { criterion = i2; admit = a2 } ) ->
      i1 = i2 && a1 = a2
  | P.Stats, P.Stats | P.Shutdown, P.Shutdown -> true
  | _ -> false

let response_eq (a : P.response) (b : P.response) =
  match (a, b) with
  | P.Ok_reply, P.Ok_reply -> true
  | ( P.Decision { admit = a1; admissible = m1; flows = f1 },
      P.Decision { admit = a2; admissible = m2; flows = f2 } ) ->
      a1 = a2 && m1 = m2 && f1 = f2
  | P.Stats_reply s1, P.Stats_reply s2 ->
      s1.flows = s2.flows
      && f_eq s1.admitted_load s2.admitted_load
      && f_eq s1.capacity s2.capacity
      && s1.requests = s2.requests && s1.decisions = s2.decisions
      && s1.admits = s2.admits && s1.updates = s2.updates
  | ( P.Error_reply { code = c1; message = m1 },
      P.Error_reply { code = c2; message = m2 } ) ->
      c1 = c2 && m1 = m2
  | _ -> false

let encode_to_bytes encode msg =
  let buf = Buffer.create 64 in
  encode buf msg;
  Buffer.to_bytes buf

(* ---------- round trips ---------- *)

let roundtrip_request =
  qcheck ~count:500 "request round trip" (QCheck.make gen_request) (fun req ->
      let bytes = encode_to_bytes P.encode_request req in
      match P.decode_request bytes ~pos:0 ~avail:(Bytes.length bytes) with
      | Ok (req', consumed) ->
          request_eq req req' && consumed = Bytes.length bytes
      | Error _ -> false)

let roundtrip_response =
  qcheck ~count:500 "response round trip" (QCheck.make gen_response)
    (fun resp ->
      let bytes = encode_to_bytes P.encode_response resp in
      match P.decode_response bytes ~pos:0 ~avail:(Bytes.length bytes) with
      | Ok (resp', consumed) ->
          response_eq resp resp' && consumed = Bytes.length bytes
      | Error _ -> false)

let roundtrip_offset =
  (* decoding must honor pos/avail, not assume the frame starts the
     buffer: embed the frame between junk bytes *)
  qcheck ~count:200 "request round trip at an offset" (QCheck.make gen_request)
    (fun req ->
      let frame = encode_to_bytes P.encode_request req in
      let n = Bytes.length frame in
      let padded = Bytes.make (n + 7) '\xAA' in
      Bytes.blit frame 0 padded 3 n;
      match P.decode_request padded ~pos:3 ~avail:n with
      | Ok (req', consumed) -> request_eq req req' && consumed = n
      | Error _ -> false)

(* ---------- truncation ---------- *)

let truncated_prefixes =
  qcheck ~count:100 "every strict prefix is Truncated, never an exception"
    (QCheck.make gen_request) (fun req ->
      let bytes = encode_to_bytes P.encode_request req in
      let n = Bytes.length bytes in
      let ok = ref true in
      for avail = 0 to n - 1 do
        match P.decode_request bytes ~pos:0 ~avail with
        | Error (P.Truncated { expected; got }) ->
            if not (got = avail && expected > avail && expected <= n) then
              ok := false
        | Ok _ | Error _ -> ok := false
      done;
      !ok)

(* ---------- structural errors ---------- *)

let frame_of_payload payload =
  let buf = Buffer.create 32 in
  Buffer.add_int32_le buf (Int32.of_int (String.length payload));
  Buffer.add_string buf payload;
  Buffer.to_bytes buf

let decode bytes = P.decode_request bytes ~pos:0 ~avail:(Bytes.length bytes)

let test_bad_tag () =
  (match decode (frame_of_payload "\x7f") with
  | Error (P.Bad_tag 0x7f) -> ()
  | _ -> Alcotest.fail "unknown tag must decode as Bad_tag");
  (* response tags are not request tags and vice versa *)
  match decode (frame_of_payload "\x81") with
  | Error (P.Bad_tag 0x81) -> ()
  | _ -> Alcotest.fail "response tag in a request stream is Bad_tag"

let test_bad_lengths () =
  (* Stats carries no body: extra bytes are a structural error *)
  (match decode (frame_of_payload "\x06\x00") with
  | Error (P.Bad_frame _) -> ()
  | _ -> Alcotest.fail "oversized Stats payload must be Bad_frame");
  (* Decide body short by one byte, with the frame itself complete *)
  (match decode (frame_of_payload ("\x02" ^ String.make 17 '\x00')) with
  | Error (P.Bad_frame _) -> ()
  | _ -> Alcotest.fail "undersized Decide payload must be Bad_frame");
  (* zero-length payload *)
  (match decode (frame_of_payload "") with
  | Error (P.Bad_frame _) -> ()
  | _ -> Alcotest.fail "empty payload must be Bad_frame");
  (* declared length beyond the cap, with plenty of bytes available *)
  let big = Bytes.make 64 '\x00' in
  Bytes.set_int32_le big 0 (Int32.of_int (P.max_frame_payload + 1));
  match decode big with
  | Error (P.Bad_frame _) -> ()
  | _ -> Alcotest.fail "payload length above max_frame_payload is Bad_frame"

let test_error_reply_message_length () =
  (* Error_reply whose embedded string length disagrees with the payload *)
  let buf = Buffer.create 32 in
  P.encode_response buf (P.Error_reply { code = 7; message = "boom" });
  let bytes = Buffer.to_bytes buf in
  (* corrupt the u16 message length (offset 4 prefix + 1 tag + 1 code) *)
  Bytes.set_uint16_le bytes 6 9999;
  match P.decode_response bytes ~pos:0 ~avail:(Bytes.length bytes) with
  | Error (P.Bad_frame _) -> ()
  | _ -> Alcotest.fail "mismatched Error_reply string length is Bad_frame"

let suite =
  [ ( "serve_protocol",
      [ roundtrip_request;
        roundtrip_response;
        roundtrip_offset;
        truncated_prefixes;
        test "bad tags are typed errors" test_bad_tag;
        test "bad lengths are typed errors" test_bad_lengths;
        test "error-reply string length is validated"
          test_error_reply_message_length ] ) ]
