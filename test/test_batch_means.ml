open Mbac_stats
open Test_util

let test_batch_formation () =
  let bm = Batch_means.create ~batch_length:10.0 in
  (* 25 units of weight -> 2 complete batches. *)
  Batch_means.add bm ~weight:25.0 1.0;
  Alcotest.(check int) "batches" 2 (Batch_means.completed_batches bm);
  check_close ~tol:1e-12 "mean" 1.0 (Batch_means.mean bm)

let test_split_observation () =
  let bm = Batch_means.create ~batch_length:10.0 in
  Batch_means.add bm ~weight:5.0 0.0;
  Batch_means.add bm ~weight:10.0 1.0;
  (* First batch: 5 units of 0.0 + 5 units of 1.0 -> mean 0.5. *)
  Alcotest.(check int) "one batch closed" 1 (Batch_means.completed_batches bm);
  let means = Batch_means.batch_means bm in
  check_close ~tol:1e-12 "split batch mean" 0.5 means.(0)

let test_ci_iid_gaussian () =
  (* Batches of iid N(5, 2^2) observations: the CI should cover the truth
     and the half-width should match the analytic t interval. *)
  let rng = Rng.create ~seed:300 in
  let bm = Batch_means.create ~batch_length:1.0 in
  let n = 400 in
  for _ = 1 to n do
    Batch_means.add bm ~weight:1.0 (Sample.gaussian rng ~mu:5.0 ~sigma:2.0)
  done;
  Alcotest.(check int) "n batches" n (Batch_means.completed_batches bm);
  let mean = Batch_means.mean bm in
  let hw = Batch_means.half_width bm ~confidence:0.95 in
  Alcotest.(check bool) "covers truth" true (abs_float (mean -. 5.0) <= 2.0 *. hw);
  (* Expected half width ~ 1.96 * 2 / sqrt(400) ~ 0.196 *)
  check_close ~tol:0.25 "half width magnitude" 0.196 hw

let test_relative_half_width () =
  let bm = Batch_means.create ~batch_length:1.0 in
  Batch_means.add bm ~weight:1.0 10.0;
  Alcotest.(check bool) "infinite with one batch" true
    (Batch_means.relative_half_width bm ~confidence:0.95 = infinity);
  Batch_means.add bm ~weight:1.0 10.0;
  Batch_means.add bm ~weight:1.0 10.0;
  (* identical batches: zero width *)
  check_close_abs ~tol:1e-12 "zero width for constant data" 0.0
    (Batch_means.relative_half_width bm ~confidence:0.95)

let test_no_batches () =
  let bm = Batch_means.create ~batch_length:5.0 in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Batch_means.mean bm));
  Alcotest.(check bool) "hw inf" true
    (Batch_means.half_width bm ~confidence:0.95 = infinity)

let test_weight_conservation =
  qcheck ~count:200 "weight is conserved across batch boundaries"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0.0 7.0))
    (fun weights ->
      let bm = Batch_means.create ~batch_length:3.0 in
      List.iter (fun w -> Batch_means.add bm ~weight:w 1.0) weights;
      let total = List.fold_left ( +. ) 0.0 weights in
      let expected_batches = int_of_float (total /. 3.0) in
      abs (Batch_means.completed_batches bm - expected_batches) <= 1)

let test_exact_fill () =
  (* weight = room exactly: the batch closes with no spill and the next
     observation starts a fresh batch. *)
  let bm = Batch_means.create ~batch_length:10.0 in
  Batch_means.add bm ~weight:4.0 2.0;
  Batch_means.add bm ~weight:6.0 5.0;
  Alcotest.(check int) "exactly one batch" 1 (Batch_means.completed_batches bm);
  check_close ~tol:1e-12 "exact-fill mean" 3.8 (Batch_means.batch_means bm).(0);
  (* a whole batch in one exact-length observation *)
  Batch_means.add bm ~weight:10.0 1.0;
  Alcotest.(check int) "second batch closed" 2 (Batch_means.completed_batches bm);
  check_close ~tol:1e-12 "second mean" 1.0 (Batch_means.batch_means bm).(1)

let test_spill_constant_value =
  (* Whatever the split of weights across observations, a constant value
     must give every closed batch exactly that mean — weight spilling
     may never mix phantom mass in. *)
  qcheck ~count:300 "spilling preserves a constant value"
    QCheck.(
      pair (float_range 0.5 4.0)
        (list_of_size Gen.(int_range 1 40) (float_range 0.0 25.0)))
    (fun (x, weights) ->
      let bm = Batch_means.create ~batch_length:3.0 in
      List.iter (fun w -> Batch_means.add bm ~weight:w x) weights;
      Array.for_all
        (fun m -> abs_float (m -. x) <= 1e-9 *. abs_float x)
        (Batch_means.batch_means bm))

let test_single_weight_spans_batches =
  (* One observation spanning k whole batches closes exactly k and
     leaves the remainder open (integer weights keep the float
     arithmetic exact). *)
  qcheck ~count:200 "one observation spanning multiple batches"
    QCheck.(int_range 1 50)
    (fun k ->
      let bm = Batch_means.create ~batch_length:1.0 in
      Batch_means.add bm ~weight:(float_of_int k) 2.5;
      Batch_means.completed_batches bm = k
      && Array.for_all (fun m -> m = 2.5) (Batch_means.batch_means bm))

let test_spill_weighted_mean =
  (* Total weighted mass is conserved: closed batches recover the
     weighted mean of what went in once the totals line up exactly.
     Integer weights on a unit batch keep everything representable. *)
  qcheck ~count:300 "weighted mass is preserved across boundaries"
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_range 0 7) (float_range (-5.0) 5.0)))
    (fun obs ->
      let bm = Batch_means.create ~batch_length:1.0 in
      List.iter
        (fun (w, x) -> Batch_means.add bm ~weight:(float_of_int w) x)
        obs;
      let total_w =
        float_of_int (List.fold_left (fun a (w, _) -> a + w) 0 obs)
      in
      let total_mass =
        List.fold_left (fun a (w, x) -> a +. (float_of_int w *. x)) 0.0 obs
      in
      (* every unit of weight landed in some closed batch *)
      Batch_means.completed_batches bm = int_of_float total_w
      &&
      let batch_mass =
        Array.fold_left ( +. ) 0.0 (Batch_means.batch_means bm)
      in
      abs_float (batch_mass -. total_mass) <= 1e-9 *. (1.0 +. abs_float total_mass))

let test_invalid () =
  Alcotest.check_raises "batch length 0"
    (Invalid_argument "Batch_means.create: requires batch_length > 0") (fun () ->
      ignore (Batch_means.create ~batch_length:0.0))

let suite =
  [ ( "batch_means",
      [ test "batch formation" test_batch_formation;
        test "observation splitting" test_split_observation;
        test "iid gaussian CI" test_ci_iid_gaussian;
        test "relative half width" test_relative_half_width;
        test "empty" test_no_batches;
        test_weight_conservation;
        test "exact fill (weight = room)" test_exact_fill;
        test_spill_constant_value;
        test_single_weight_spans_batches;
        test_spill_weighted_mean;
        test "invalid" test_invalid ] ) ]
