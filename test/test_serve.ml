(* The serving engine: fixed-point accounting, bootstrap and published
   estimates, initialize semantics, wire-input validation through
   [handle], decision-log determinism across transports, and a
   multi-domain accounting smoke test. *)

open Test_util
module E = Mbac_serve.Engine
module P = Mbac_serve.Protocol

let config ?(capacity = 100.0) ?(measure_every = 0) () =
  { E.capacity;
    criteria =
      [ E.Gaussian { cname = "ce:0.01"; p_ce = 0.01 };
        E.Hoeffding { cname = "hoeffding:0.01:2.0"; p_ce = 0.01; peak = 2.0 } ];
    estimator = Mbac.Estimator.memoryless ();
    measure_every }

(* ---------- fixed-point accounting ---------- *)

let test_accounting_roundtrip () =
  let e = E.create (config ()) in
  (* loads that are not multiples of 2^-20: add then subtract must
     cancel exactly because both paths quantize identically *)
  let loads = [ 0.1; 0.3; 1.7; 2.9999999; 0.123456789 ] in
  List.iter (fun load -> E.add e ~load ~now:0.0) loads;
  let s = E.stats e in
  Alcotest.(check int) "flows" (List.length loads) s.E.flows;
  check_close ~tol:1e-5 "admitted load"
    (List.fold_left ( +. ) 0.0 loads)
    s.E.admitted_load;
  List.iter (fun load -> E.subtract e ~load ~now:1.0) loads;
  let s = E.stats e in
  Alcotest.(check int) "flows back to zero" 0 s.E.flows;
  check_close_abs "load back to exactly zero" 0.0 s.E.admitted_load

(* ---------- bootstrap and published estimates ---------- *)

let test_bootstrap_one_at_a_time () =
  let e = E.create (config ()) in
  (* no measurement yet: M = flows + 1, so each decide sees headroom of
     exactly one flow *)
  let d = E.decide e ~criterion:0 ~load:1.0 in
  Alcotest.(check bool) "first flow admitted" true d.E.admit;
  Alcotest.(check int) "bootstrap M = n+1" 1 d.E.admissible;
  E.add e ~load:1.0 ~now:0.0;
  let d = E.decide e ~criterion:0 ~load:1.0 in
  Alcotest.(check bool) "second flow admitted" true d.E.admit;
  Alcotest.(check int) "bootstrap M tracks n" 2 d.E.admissible

let test_bootstrap_capacity_backstop () =
  let e = E.create (config ~capacity:10.0 ()) in
  let d = E.decide e ~criterion:0 ~load:11.0 in
  Alcotest.(check bool) "bootstrap still checks capacity headroom" false
    d.E.admit

let test_published_estimate_drives_decide () =
  let e = E.create (config ~capacity:100.0 ()) in
  for _ = 1 to 50 do
    E.add e ~load:1.0 ~now:0.0
  done;
  E.run_measurement e ~now:0.0;
  (* memoryless estimator over 50 identical unit flows: mu = 1, sigma = 0
     for the Gaussian criterion -> M = floor(capacity / mu) = 100 *)
  let d = E.decide e ~criterion:0 ~load:1.0 in
  Alcotest.(check bool) "admitted under published estimate" true d.E.admit;
  Alcotest.(check int) "M = capacity / mu for sigma = 0" 100 d.E.admissible;
  Alcotest.(check int) "flows reported" 50 d.E.flows;
  (* the Hoeffding criterion at the same state is strictly tighter *)
  let dh = E.decide e ~criterion:1 ~load:1.0 in
  Alcotest.(check bool) "hoeffding M below gaussian M" true
    (dh.E.admissible < d.E.admissible)

let test_measure_every_cadence () =
  let e = E.create (config ~measure_every:4 ()) in
  for i = 1 to 12 do
    E.add e ~load:1.0 ~now:(float_of_int i)
  done;
  let s = E.stats e in
  Alcotest.(check int) "one pass per 4 accounting calls" 3 s.E.updates

let test_initialize_resets () =
  let e = E.create (config ~capacity:100.0 ()) in
  for _ = 1 to 10 do
    E.add e ~load:1.0 ~now:0.0
  done;
  E.run_measurement e ~now:0.0;
  E.initialize e ~capacity:5.0;
  let s = E.stats e in
  Alcotest.(check int) "flows cleared" 0 s.E.flows;
  check_close_abs "load cleared" 0.0 s.E.admitted_load;
  check_close "capacity retargeted" 5.0 s.E.capacity;
  (* estimator history must be gone too: back to bootstrap one-at-a-time *)
  let d = E.decide e ~criterion:0 ~load:1.0 in
  Alcotest.(check int) "back to bootstrap M = n+1" 1 d.E.admissible;
  let d = E.decide e ~criterion:0 ~load:6.0 in
  Alcotest.(check bool) "new capacity enforced" false d.E.admit

(* ---------- wire-input validation ---------- *)

let test_handle_validation () =
  let e = E.create (config ()) in
  let err code = function
    | P.Error_reply { code = c; _ } -> c = code
    | _ -> false
  in
  Alcotest.(check bool) "bad capacity -> code 1" true
    (err 1 (E.handle e (P.Initialize { capacity = nan })));
  Alcotest.(check bool) "criterion out of range -> code 2" true
    (err 2 (E.handle e (P.Decide { criterion = 2; load = 1.0; now = 0.0 })));
  Alcotest.(check bool) "negative load -> code 3" true
    (err 3 (E.handle e (P.Add { load = -1.0; now = 0.0 })));
  Alcotest.(check bool) "infinite load -> code 3" true
    (err 3 (E.handle e (P.Decide { criterion = 0; load = infinity; now = 0.0 })));
  Alcotest.(check bool) "oversized load -> code 3" true
    (err 3 (E.handle e (P.Subtract { load = 1e7; now = 0.0 })));
  match E.handle e P.Stats with
  | P.Stats_reply { requests; _ } ->
      Alcotest.(check int) "every request counted, including rejected" 6
        requests
  | _ -> Alcotest.fail "Stats must answer Stats_reply"

(* ---------- decision-log determinism ---------- *)

let run_loadgen () =
  let log = Buffer.create 1024 in
  let engine = E.create ~decision_log:log (config ~measure_every:16 ()) in
  let client = Mbac_serve.Client.inproc engine in
  let summary =
    Mbac_serve.Loadgen.run client
      { Mbac_serve.Loadgen.seed = 42; requests = 500; arrival_mean = 1.0;
        hold_mean = 50.0; load_mean = 1.0; load_std = 0.3; n_criteria = 2 }
  in
  Mbac_serve.Client.close client;
  (summary, Buffer.contents log)

let test_loadgen_replay_identical () =
  let s1, log1 = run_loadgen () in
  let s2, log2 = run_loadgen () in
  Alcotest.(check string) "decision logs byte-identical" log1 log2;
  Alcotest.(check int) "same admit count" s1.Mbac_serve.Loadgen.admitted
    s2.Mbac_serve.Loadgen.admitted;
  Alcotest.(check int) "one log line per decide" 500
    (List.length
       (String.split_on_char '\n' log1 |> List.filter (fun l -> l <> "")))

(* ---------- cross-domain accounting smoke ---------- *)

let test_parallel_accounting () =
  let e = E.create (config ~capacity:1e5 ()) in
  let per_domain = 2_000 in
  let workers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              E.add e ~load:1.5 ~now:(float_of_int i)
            done;
            for i = 1 to per_domain / 2 do
              E.subtract e ~load:1.5 ~now:(float_of_int i)
            done))
  in
  Array.iter Domain.join workers;
  let s = E.stats e in
  Alcotest.(check int) "flow count survives contention" (4 * per_domain / 2)
    s.E.flows;
  check_close ~tol:1e-9 "admitted load survives contention"
    (1.5 *. float_of_int (4 * per_domain / 2))
    s.E.admitted_load

let suite =
  [ ( "serve_engine",
      [ test "add/subtract cancel exactly in fixed point"
          test_accounting_roundtrip;
        test "bootstrap admits one flow at a time" test_bootstrap_one_at_a_time;
        test "bootstrap respects capacity headroom"
          test_bootstrap_capacity_backstop;
        test "published estimate drives decide"
          test_published_estimate_drives_decide;
        test "measure_every cadence" test_measure_every_cadence;
        test "initialize resets counters, estimator, capacity"
          test_initialize_resets;
        test "handle validates wire input as typed replies"
          test_handle_validation;
        test "loadgen replay is byte-identical" test_loadgen_replay_identical;
        test "parallel accounting is lock-free and exact"
          test_parallel_accounting ] ) ]
