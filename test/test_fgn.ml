open Mbac_numerics
open Test_util

let test_autocovariance_formula () =
  (* H = 0.5 is white noise: gamma(0)=1, gamma(k)=0 for k>0. *)
  check_close ~tol:1e-12 "H=.5 lag0" 1.0 (Fgn.fgn_autocovariance ~hurst:0.5 0);
  check_close_abs ~tol:1e-12 "H=.5 lag1" 0.0 (Fgn.fgn_autocovariance ~hurst:0.5 1);
  check_close_abs ~tol:1e-12 "H=.5 lag5" 0.0 (Fgn.fgn_autocovariance ~hurst:0.5 5);
  (* H > 0.5: positive correlations decaying polynomially. *)
  let g1 = Fgn.fgn_autocovariance ~hurst:0.8 1 in
  let g10 = Fgn.fgn_autocovariance ~hurst:0.8 10 in
  Alcotest.(check bool) "positive dependence" true (g1 > 0.0 && g10 > 0.0 && g1 > g10);
  (* known value: H=0.8, lag 1: (2^1.6 - 2)/2 *)
  check_close ~tol:1e-12 "H=.8 lag1" (((2.0 ** 1.6) -. 2.0) /. 2.0) g1

let test_moments () =
  let rng = Mbac_stats.Rng.create ~seed:700 in
  let xs = Fgn.generate rng ~hurst:0.8 ~n:65536 in
  let mean = Mbac_stats.Descriptive.mean xs in
  let var = Mbac_stats.Descriptive.variance xs in
  (* LRD series have slowly-converging sample means; loose tolerances. *)
  check_close_abs ~tol:0.15 "fgn mean" 0.0 mean;
  check_close ~tol:0.15 "fgn variance" 1.0 var

let test_empirical_acf () =
  (* Average the empirical ACF over several independent paths to beat the
     LRD sampling noise, then compare with the theoretical fGn ACF. *)
  let rng = Mbac_stats.Rng.create ~seed:701 in
  let paths = 12 and n = 16384 in
  let lags = [ 1; 2; 5; 10 ] in
  let sums = Array.make (List.length lags) 0.0 in
  for _ = 1 to paths do
    let xs = Fgn.generate rng ~hurst:0.75 ~n in
    List.iteri
      (fun i k -> sums.(i) <- sums.(i) +. Mbac_stats.Descriptive.autocorrelation xs k)
      lags
  done;
  List.iteri
    (fun i k ->
      let emp = sums.(i) /. float_of_int paths in
      let thy = Fgn.fgn_autocovariance ~hurst:0.75 k in
      if abs_float (emp -. thy) > 0.05 then
        Alcotest.failf "fgn acf lag %d: empirical %.4f vs theory %.4f" k emp thy)
    lags

let test_h05_is_iid () =
  let rng = Mbac_stats.Rng.create ~seed:702 in
  let xs = Fgn.generate rng ~hurst:0.5 ~n:50_000 in
  for k = 1 to 3 do
    let r = Mbac_stats.Descriptive.autocorrelation xs k in
    if abs_float r > 0.03 then Alcotest.failf "H=0.5 lag %d acf %.4f" k r
  done

let test_fbm_scaling () =
  (* Var(B_H(n)) ~ n^{2H}: regression of log-variance of the path at
     different horizons should have slope ~ 2H. *)
  let rng = Mbac_stats.Rng.create ~seed:703 in
  let hurst = 0.8 in
  let reps = 400 and n = 1024 in
  let horizon_a = 64 and horizon_b = 1024 in
  let acc_a = Mbac_stats.Welford.create () and acc_b = Mbac_stats.Welford.create () in
  for _ = 1 to reps do
    let path = Fgn.fbm_of_fgn (Fgn.generate rng ~hurst ~n) in
    Mbac_stats.Welford.add acc_a path.(horizon_a - 1);
    Mbac_stats.Welford.add acc_b path.(horizon_b - 1)
  done;
  let slope =
    log (Mbac_stats.Welford.variance acc_b /. Mbac_stats.Welford.variance acc_a)
    /. log (float_of_int horizon_b /. float_of_int horizon_a)
  in
  check_close ~tol:0.15 "fbm variance exponent" (2.0 *. hurst) slope

let test_determinism () =
  let a = Fgn.generate (Mbac_stats.Rng.create ~seed:9) ~hurst:0.7 ~n:128 in
  let b = Fgn.generate (Mbac_stats.Rng.create ~seed:9) ~hurst:0.7 ~n:128 in
  Alcotest.(check bool) "same seed, same path" true (a = b)

let test_invalid () =
  let rng = Mbac_stats.Rng.create ~seed:1 in
  Alcotest.check_raises "bad hurst"
    (Invalid_argument "Fgn.generate: requires 0 < hurst < 1") (fun () ->
      ignore (Fgn.generate rng ~hurst:1.0 ~n:16))

let test_plan_bit_identical () =
  (* planned and planless paths must agree bit-for-bit from the same RNG
     state, including the white-noise sentinel and plan/scratch reuse *)
  List.iter
    (fun (hurst, n) ->
      let direct = Fgn.generate (Mbac_stats.Rng.create ~seed:33) ~hurst ~n in
      let p = Fgn.plan ~hurst ~n in
      let planned = Fgn.generate_with p (Mbac_stats.Rng.create ~seed:33) in
      if direct <> planned then
        Alcotest.failf "plan path differs (hurst=%g n=%d)" hurst n;
      (* second use of the same plan reuses scratch — still identical *)
      let again = Fgn.generate_with p (Mbac_stats.Rng.create ~seed:33) in
      if direct <> again then
        Alcotest.failf "plan reuse differs (hurst=%g n=%d)" hurst n;
      let cached =
        Fgn.generate_with (Fgn.cached_plan ~hurst ~n)
          (Mbac_stats.Rng.create ~seed:33)
      in
      if direct <> cached then
        Alcotest.failf "cached plan differs (hurst=%g n=%d)" hurst n)
    [ (0.85, 1024); (0.85, 100); (0.6, 257); (0.5, 512) ]

let suite =
  [ ( "fgn",
      [ test "autocovariance formula" test_autocovariance_formula;
        test "sample moments" test_moments;
        slow_test "empirical acf matches theory" test_empirical_acf;
        test "H=0.5 is white" test_h05_is_iid;
        slow_test "fbm self-similarity exponent" test_fbm_scaling;
        test "determinism" test_determinism;
        test "invalid" test_invalid;
        test "plan bit-identical to planless" test_plan_bit_identical ] ) ]
