(* The paper's analysis formulas: Impulsive, Finite_holding, Hitting,
   Memory_formula, Inversion, Regimes, Window, Utilization. *)
open Test_util

let mk ?(n = 100.0) ?(t_h = 1000.0) ?(t_c = 1.0) ?(p_q = 1e-3) () =
  Mbac.Params.make ~n ~mu:1.0 ~sigma:0.3 ~t_h ~t_c ~p_q

let test_prop33_universal () =
  (* Q(alpha_q/sqrt 2) depends only on p_q: the paper's headline number *)
  let p = mk ~p_q:1e-5 () in
  check_close ~tol:0.02 "p_q=1e-5 -> ~1.3e-3" 1.3e-3
    (Mbac.Impulsive.overflow_probability p);
  (* independence from traffic parameters *)
  let p2 =
    Mbac.Params.make ~n:5000.0 ~mu:7.0 ~sigma:2.0 ~t_h:50.0 ~t_c:9.0 ~p_q:1e-5
  in
  check_close ~tol:1e-12 "universal"
    (Mbac.Impulsive.overflow_probability p)
    (Mbac.Impulsive.overflow_probability p2)

let test_eqn15_adjustment () =
  let p = mk () in
  let p_ce = Mbac.Impulsive.adjusted_p_ce p in
  (* running at Q(sqrt2 alpha) as target makes Q(alpha_ce/sqrt2) = p_q *)
  let alpha_ce = Mbac_stats.Gaussian.q_inv p_ce in
  check_close ~tol:1e-9 "inverse relation" p.Mbac.Params.p_q
    (Mbac_stats.Gaussian.q (alpha_ce /. sqrt 2.0));
  (* the closed approximation ~ sqrt(pi) alpha_q p_q^2 *)
  let approx = Mbac.Impulsive.adjusted_p_ce_approx p in
  Alcotest.(check bool) "approx within 25%" true
    (p_ce /. approx > 0.8 && p_ce /. approx < 1.25);
  (* p_q^2 scaling: halving log p_q roughly squares p_ce *)
  let p8 = Mbac.Params.with_p_q p 1e-6 in
  let ratio =
    Mbac.Impulsive.adjusted_p_ce p8 /. Mbac.Impulsive.adjusted_p_ce_approx p8
  in
  Alcotest.(check bool) "approx tightens as p_q shrinks" true
    (ratio > 0.9 && ratio < 1.2)

let test_impulsive_moments () =
  let p = mk () in
  check_close ~tol:1e-9 "mean" (100.0 -. (0.3 *. Mbac.Params.alpha_q p *. 10.0))
    (Mbac.Impulsive.admitted_mean_approx p);
  check_close ~tol:1e-12 "std" 3.0 (Mbac.Impulsive.admitted_std_approx p)

let test_sensitivities () =
  let p = mk () in
  let s_mu = Mbac.Impulsive.sensitivity_mu p in
  let s_sigma = Mbac.Impulsive.sensitivity_sigma p in
  Alcotest.(check bool) "both negative" true (s_mu < 0.0 && s_sigma < 0.0);
  (* |s_mu| grows like sqrt m* (~ sqrt n), |s_sigma| does not *)
  let p4 = mk ~n:400.0 () in
  let expected_ratio =
    sqrt (Mbac.Criterion.m_star_real p4 /. Mbac.Criterion.m_star_real p)
  in
  check_close ~tol:1e-9 "s_mu scales as sqrt m*" expected_ratio
    (Mbac.Impulsive.sensitivity_mu p4 /. s_mu);
  check_close ~tol:1e-9 "s_sigma size-free" 1.0
    (Mbac.Impulsive.sensitivity_sigma p4 /. s_sigma)

let test_sensitivity_prediction () =
  let p = mk ~n:400.0 ~p_q:1e-2 () in
  (* small deviations: first-order prediction tracks the exact map *)
  List.iter
    (fun (d_mu, d_sigma) ->
      let predicted = Mbac.Impulsive.predicted_p_f_shift p ~d_mu ~d_sigma in
      let actual = Mbac.Impulsive.actual_p_f_given_error p ~d_mu ~d_sigma in
      let err = abs_float (predicted -. actual) in
      if err > 0.35 *. p.Mbac.Params.p_q then
        Alcotest.failf "sensitivity (%g,%g): predicted %.4g actual %.4g"
          d_mu d_sigma predicted actual)
    [ (1e-4, 0.0); (-1e-4, 0.0); (0.0, 1e-3); (0.0, -1e-3); (5e-5, 5e-4) ];
  (* zero deviation recovers the target exactly *)
  check_close ~tol:1e-9 "no error -> p_q" p.Mbac.Params.p_q
    (Mbac.Impulsive.actual_p_f_given_error p ~d_mu:0.0 ~d_sigma:0.0)

let test_sensitivity_asymmetry () =
  (* under-estimation hurts more than over-estimation helps (§5.1) *)
  let p = mk ~p_q:1e-3 () in
  let d = 0.02 in
  let worse = Mbac.Impulsive.actual_p_f_given_error p ~d_mu:(-.d) ~d_sigma:0.0 in
  let better = Mbac.Impulsive.actual_p_f_given_error p ~d_mu:d ~d_sigma:0.0 in
  Alcotest.(check bool) "asymmetry" true
    (worse -. p.Mbac.Params.p_q > p.Mbac.Params.p_q -. better)

let test_finite_holding_shape () =
  let p = mk ~t_h:100.0 ~p_q:1e-2 () in
  let f = Mbac.Finite_holding.overflow_probability_at_ou p in
  Alcotest.(check (float 0.0)) "t=0" 0.0 (f 0.0);
  let peak_t = Mbac.Finite_holding.peak_time_ou p in
  let peak = Mbac.Finite_holding.peak_overflow_ou p in
  Alcotest.(check bool) "rises to a peak" true (f (peak_t /. 4.0) < peak);
  Alcotest.(check bool) "decays after the peak" true (f (6.0 *. peak_t) < peak);
  (* the peak never exceeds the infinite-holding-time limit Q(alpha/sqrt2) *)
  Alcotest.(check bool) "bounded by impulsive limit" true
    (peak <= Mbac.Impulsive.overflow_probability p +. 1e-12)

let test_finite_holding_departure_drift () =
  (* with longer holding times the hump persists longer and is higher *)
  let p_short = mk ~t_h:50.0 ~p_q:1e-2 () in
  let p_long = mk ~t_h:5000.0 ~p_q:1e-2 () in
  let t = 5.0 in
  Alcotest.(check bool) "departures repair faster for short T_h" true
    (Mbac.Finite_holding.overflow_probability_at_ou p_short t
     < Mbac.Finite_holding.overflow_probability_at_ou p_long t)

let test_hitting_brownian_sanity () =
  (* For an OU-style incremental variance the hitting probability must
     decrease in alpha and increase as the drift beta decreases. *)
  let rho t = exp (-.t) in
  let hp alpha beta =
    Mbac.Hitting.probability_stationary ~alpha ~beta ~rho ~rho_slope0:1.0
  in
  Alcotest.(check bool) "decreasing in alpha" true (hp 4.0 1.0 < hp 2.0 1.0);
  Alcotest.(check bool) "increasing as drift shrinks" true
    (hp 3.0 0.1 > hp 3.0 1.0);
  Alcotest.(check bool) "positive" true (hp 3.0 1.0 > 0.0)

let test_hitting_vs_monte_carlo () =
  (* Validate the Braker approximation (eqn 30) directly: simulate the
     discretised OU process Y and estimate
     P(sup_t (Y_{-t} - Y_0 - beta t) > alpha) by Monte Carlo. *)
  let rng = Mbac_stats.Rng.create ~seed:4242 in
  let beta = 0.2 and alpha = 2.0 in
  let dt = 0.02 in
  let a = exp (-.dt) (* t_c = 1 *) in
  let s_noise = sqrt (1.0 -. (a *. a)) in
  let horizon_steps = int_of_float (3.0 *. (alpha /. beta) /. dt) in
  let reps = 20_000 in
  let hits = ref 0 in
  for _ = 1 to reps do
    (* stationary start *)
    let y0 = Mbac_stats.Sample.gaussian rng ~mu:0.0 ~sigma:1.0 in
    let y = ref y0 in
    (try
       for k = 1 to horizon_steps do
         y := (a *. !y) +. Mbac_stats.Sample.gaussian rng ~mu:0.0 ~sigma:s_noise;
         let t = float_of_int k *. dt in
         if !y -. y0 -. (beta *. t) > alpha then begin
           incr hits;
           raise Exit
         end
       done
     with Exit -> ())
  done;
  let mc = float_of_int !hits /. float_of_int reps in
  let approx =
    Mbac.Hitting.probability_stationary ~alpha ~beta
      ~rho:(fun t -> exp (-.t))
      ~rho_slope0:1.0
  in
  (* The approximation is asymptotic in alpha; at alpha = 2 expect
     agreement within a factor ~2, with the approximation conservative. *)
  Alcotest.(check bool)
    (Printf.sprintf "Braker %.4g vs Monte Carlo %.4g" approx mc)
    true
    (approx > 0.7 *. mc && approx < 4.0 *. mc)

let test_memoryless_formula_consistency () =
  (* eqn (32) as Hitting.probability_stationary must equal
     Memory_formula.overflow at t_m = 0 *)
  let p = mk () in
  let alpha = Mbac.Params.alpha_q p in
  let direct = Mbac.Memory_formula.overflow_memoryless ~p ~alpha_ce:alpha in
  let via_hitting =
    Mbac.Hitting.probability_stationary ~alpha ~beta:(Mbac.Params.beta p)
      ~rho:(fun t -> exp (-.t /. p.Mbac.Params.t_c))
      ~rho_slope0:(1.0 /. p.Mbac.Params.t_c)
  in
  check_close ~tol:1e-6 "two routes agree" via_hitting direct

let test_closed_form_vs_integral () =
  (* under separation of time-scales (gamma >> 1), eqn (38) ~ eqn (37) *)
  let p = mk ~t_h:10_000.0 () in
  (* gamma = 300 *)
  List.iter
    (fun t_m ->
      let alpha = Mbac.Params.alpha_q p in
      let general = Mbac.Memory_formula.overflow ~p ~t_m ~alpha_ce:alpha in
      let closed =
        Mbac.Memory_formula.overflow_closed_form ~p ~t_m ~alpha_ce:alpha
      in
      if abs_float (general -. closed) > 0.03 *. closed then
        Alcotest.failf "t_m=%g: (37)=%g vs (38)=%g" t_m general closed)
    [ 0.0; 1.0; 10.0; 100.0 ]

let test_eqn33_34_algebra () =
  (* the paper's rewriting of (33) into flow parameters via Q ~ phi/x *)
  let p = mk ~t_h:10_000.0 () in
  let alpha = Mbac.Params.alpha_q p in
  let a = Mbac.Memory_formula.overflow_memoryless_closed_form ~p ~alpha_ce:alpha in
  let b = Mbac.Memory_formula.overflow_memoryless_in_flow_params ~p ~alpha_ce:alpha in
  Alcotest.(check bool) "within the Q~phi/x error" true
    (a /. b > 0.8 && a /. b < 1.3)

let test_memory_monotone =
  qcheck ~count:100 "overflow decreasing in memory"
    QCheck.(pair (float_range 0.0 200.0) (float_range 1.0 200.0))
    (fun (t_m, dt) ->
      let p = mk () in
      let alpha = Mbac.Params.alpha_q p in
      let a = Mbac.Memory_formula.overflow_closed_form ~p ~t_m ~alpha_ce:alpha in
      let b =
        Mbac.Memory_formula.overflow_closed_form ~p ~t_m:(t_m +. dt)
          ~alpha_ce:alpha
      in
      b <= a +. 1e-12)

let test_memory_limits () =
  let p = mk () in
  let alpha = Mbac.Params.alpha_q p in
  (* T_m -> infinity: only the residual fluctuation term remains,
     approaching Q(alpha) = p_q *)
  let pf_inf =
    Mbac.Memory_formula.overflow_closed_form ~p ~t_m:1e7 ~alpha_ce:alpha
  in
  check_close ~tol:0.01 "infinite memory -> p_q" p.Mbac.Params.p_q pf_inf;
  (* estimator error variance: 1 at t_m=0, -> 0 with memory *)
  check_close ~tol:1e-12 "error variance memoryless" 1.0
    (Mbac.Memory_formula.estimator_error_variance ~t_c:1.0 ~t_m:0.0);
  check_close ~tol:1e-3 "error variance vanishes" 0.001
    (Mbac.Memory_formula.estimator_error_variance ~t_c:1.0 ~t_m:999.0)

let test_sigma_m_sq () =
  (* t -> 0: sigma_m^2 -> Tm/(Tc+Tm) (filtered error vs current value);
     t -> inf: -> (2Tc+Tm)/(Tc+Tm). *)
  let t_c = 1.0 and t_m = 3.0 and gamma = 10.0 in
  check_close ~tol:1e-9 "limit at 0" 0.75
    (Mbac.Memory_formula.sigma_m_sq ~t_c ~t_m ~gamma 0.0);
  check_close ~tol:1e-6 "limit at infinity" 1.25
    (Mbac.Memory_formula.sigma_m_sq ~t_c ~t_m ~gamma 1e6);
  (* t_m = 0 reduces to the memoryless incremental variance 2(1 - e^-gt) *)
  check_close ~tol:1e-9 "t_m=0 memoryless" (2.0 *. (1.0 -. exp (-10.0)))
    (Mbac.Memory_formula.sigma_m_sq ~t_c ~t_m:0.0 ~gamma 1.0)

let test_inversion_roundtrip =
  qcheck ~count:60 "inversion achieves the target"
    QCheck.(float_range 0.5 300.0)
    (fun t_m ->
      let p = mk () in
      let achieved = Mbac.Inversion.achieved_overflow ~t_m p in
      abs_float (achieved -. p.Mbac.Params.p_q) <= 1e-6 *. p.Mbac.Params.p_q)

let test_inversion_general_formula () =
  let p = mk () in
  let a =
    Mbac.Inversion.achieved_overflow ~formula:Mbac.Inversion.General ~t_m:10.0 p
  in
  check_close ~tol:1e-5 "general formula roundtrip" p.Mbac.Params.p_q a

let test_inversion_monotone () =
  let p = mk () in
  let alphas =
    List.map (fun t_m -> Mbac.Inversion.adjusted_alpha_ce ~t_m p)
      [ 0.5; 5.0; 50.0; 500.0 ]
  in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b && decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "more memory needs less adjustment" true
    (decreasing alphas);
  (* large memory: alpha_ce -> alpha_q *)
  let a_inf = Mbac.Inversion.adjusted_alpha_ce ~t_m:1e6 p in
  check_close ~tol:0.01 "relaxes to alpha_q" (Mbac.Params.alpha_q p) a_inf

let test_regimes () =
  (* masking: general formula ~ masking closed form for T_c << T~_h *)
  let p_mask = mk ~t_c:0.01 () in
  let t_m = Mbac.Window.recommended_t_m p_mask in
  let general =
    Mbac.Memory_formula.overflow ~p:p_mask ~t_m
      ~alpha_ce:(Mbac.Params.alpha_q p_mask)
  in
  let masking = Mbac.Regimes.masking_overflow p_mask in
  Alcotest.(check bool) "masking form within 20%" true
    (general /. masking > 0.8 && general /. masking < 1.25);
  Alcotest.(check bool) "classified masking" true
    (Mbac.Regimes.regime p_mask ~t_m = `Masking);
  (* repair: both forms collapse below p_q for T_c >> T~_h *)
  let p_rep = mk ~t_c:1000.0 () in
  let general_rep =
    Mbac.Memory_formula.overflow ~p:p_rep
      ~t_m:(Mbac.Window.recommended_t_m p_rep)
      ~alpha_ce:(Mbac.Params.alpha_q p_rep)
  in
  Alcotest.(check bool) "repair regime far below target" true
    (general_rep < 1e-10 && Mbac.Regimes.repair_overflow p_rep < 1e-10);
  Alcotest.(check bool) "derived repair form tracks general" true
    (let r = Mbac.Regimes.repair_overflow p_rep /. general_rep in
     r > 0.1 && r < 100.0);
  Alcotest.(check bool) "classified repair" true
    (Mbac.Regimes.regime p_rep ~t_m = `Repair)

let test_window_rule () =
  let p = mk () in
  check_close ~tol:1e-12 "T_m = T~_h" 100.0 (Mbac.Window.recommended_t_m p);
  let t_cs = [| 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 |] in
  (* the recommended window is robust; a tiny window is not *)
  Alcotest.(check bool) "recommended robust" true
    (Mbac.Window.is_robust p ~t_m:(Mbac.Window.recommended_t_m p) ~t_cs);
  Alcotest.(check bool) "tiny window not robust" false
    (Mbac.Window.is_robust p ~t_m:0.5 ~t_cs);
  (* profile is per-t_c consistent with the formula *)
  let profile = Mbac.Window.robustness_profile p ~t_m:100.0 ~t_cs in
  Array.iter
    (fun (t_c, pf) ->
      let p' = mk ~t_c () in
      check_close ~tol:1e-9 "profile consistency"
        (Mbac.Memory_formula.overflow ~p:p' ~t_m:100.0
           ~alpha_ce:(Mbac.Params.alpha_q p'))
        pf)
    profile

let test_tabulated_eqn37 =
  (* Differential property: the Chebyshev table must stay within 1e-6
     relative error of the adaptive integral everywhere in the fitted
     alpha domain, across the parameter ranges the analyses sweep. *)
  (* each case pays a 128-integral table build, so the count is modest *)
  qcheck ~count:25 "tabulated eqn (37) within 1e-6 of adaptive"
    QCheck.(
      triple
        (float_range 0.05 500.0) (* t_c *)
        (float_range 0.0 500.0) (* t_m *)
        (float_range 0.0 12.0) (* alpha_ce *))
    (fun (t_c, t_m, alpha_ce) ->
      let p = mk ~t_c () in
      let tab = Mbac.Memory_formula.Tabulated.create ~p ~t_m () in
      let approx = Mbac.Memory_formula.Tabulated.overflow tab ~alpha_ce in
      let exact = Mbac.Memory_formula.Tabulated.exact tab ~alpha_ce in
      exact > 0.0 && abs_float (approx -. exact) <= 1e-6 *. exact)

let test_overflow_cached () =
  let p = mk () in
  let alpha = Mbac.Params.alpha_q p in
  (* the point cache is bit-identical to the integral, first hit and
     repeat hit alike *)
  List.iter
    (fun t_m ->
      let direct = Mbac.Memory_formula.overflow ~p ~t_m ~alpha_ce:alpha in
      let cached =
        Mbac.Memory_formula.overflow_cached ~p ~t_m ~alpha_ce:alpha
      in
      let again =
        Mbac.Memory_formula.overflow_cached ~p ~t_m ~alpha_ce:alpha
      in
      Alcotest.(check (float 0.0)) "cached = exact" direct cached;
      Alcotest.(check (float 0.0)) "cache hit stable" direct again)
    [ 0.0; 1.0; 10.0; 100.0 ];
  (* out-of-domain evaluation falls back to the exact integral *)
  let tab = Mbac.Memory_formula.Tabulated.create ~p ~t_m:10.0 () in
  Alcotest.(check (float 0.0))
    "fallback above fitted domain"
    (Mbac.Memory_formula.overflow ~p ~t_m:10.0 ~alpha_ce:40.0)
    (Mbac.Memory_formula.Tabulated.overflow tab ~alpha_ce:40.0)

let test_utilization () =
  let p = mk () in
  let alpha_q = Mbac.Params.alpha_q p in
  check_close ~tol:1e-12 "perfect"
    (Mbac.Criterion.m_star_real p *. p.Mbac.Params.mu)
    (Mbac.Utilization.perfect p);
  (* eqn (40): gap formula *)
  check_close ~tol:1e-12 "gap" (0.3 *. 10.0 *. 1.0)
    (Mbac.Utilization.difference p ~alpha_ce:(alpha_q +. 1.0) ~alpha_ce':alpha_q);
  (* impulsive-load eqn (15) loss: (sqrt 2 - 1) sigma alpha sqrt n *)
  check_close ~tol:1e-9 "sqrt2 loss"
    ((sqrt 2.0 -. 1.0) *. 0.3 *. alpha_q *. 10.0)
    (Mbac.Impulsive.utilization_loss p);
  Alcotest.(check bool) "robustness cost positive and modest" true
    (let c = Mbac.Utilization.robustness_cost p ~t_m:100.0 in
     c > 0.0 && c < 3.0)

let suite =
  [ ( "analysis",
      [ test "Prop 3.3 universal penalty" test_prop33_universal;
        test "eqn (15) adjustment" test_eqn15_adjustment;
        test "impulsive moments" test_impulsive_moments;
        test "sensitivities s_mu, s_sigma" test_sensitivities;
        test "sensitivity first-order prediction" test_sensitivity_prediction;
        test "under/over-estimation asymmetry" test_sensitivity_asymmetry;
        test "finite holding hump" test_finite_holding_shape;
        test "departure drift" test_finite_holding_departure_drift;
        test "hitting probability sanity" test_hitting_brownian_sanity;
        slow_test "Braker approximation vs Monte Carlo" test_hitting_vs_monte_carlo;
        test "eqn (32) two derivations" test_memoryless_formula_consistency;
        test "eqn (38) vs (37) at gamma >> 1" test_closed_form_vs_integral;
        test "eqn (33)/(34) algebra" test_eqn33_34_algebra;
        test_memory_monotone;
        test "memory limits" test_memory_limits;
        test "sigma_m^2 limits" test_sigma_m_sq;
        test_inversion_roundtrip;
        test "inversion of the general formula" test_inversion_general_formula;
        test "inversion monotone in memory" test_inversion_monotone;
        test "regimes" test_regimes;
        test "window rule" test_window_rule;
        test_tabulated_eqn37;
        test "eqn (37) point cache" test_overflow_cached;
        test "utilization accounting" test_utilization ] ) ]
