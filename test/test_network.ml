(* The sharded network simulator: topology validation, the int table
   and exchange underneath it, the draw-for-draw equivalence of a
   1-link network with [Continuous_load], and shard-count invariance. *)

open Test_util
module Topo = Mbac_net.Topology
module Net = Mbac_net.Network

(* The invariance properties must exercise real multi-domain schedules
   even on a 1-core runner. *)
let () = Unix.putenv "MBAC_DOMAIN_CAP" "8"

(* ---------- topology ---------- *)

let test_generators () =
  let line = Topo.line ~links:4 ~capacity:10.0 ~rate:1.0 in
  Alcotest.(check int) "line links" 4 (Topo.num_links line);
  (* 4 local routes + 1 end-to-end transit *)
  Alcotest.(check int) "line routes" 5 (Topo.num_routes line);
  Alcotest.(check int) "line hops" 4 (Topo.max_hops line);
  let star = Topo.star ~leaves:5 ~capacity:10.0 ~rate:1.0 in
  Alcotest.(check int) "star links" 5 (Topo.num_links star);
  Alcotest.(check int) "star routes" 10 (Topo.num_routes star);
  Alcotest.(check int) "star hops" 2 (Topo.max_hops star);
  let ce = Topo.core_edge ~edges:4 ~cores:2 ~capacity:10.0 ~core_scale:2.0
      ~rate:1.0 in
  Alcotest.(check int) "core-edge links" 6 (Topo.num_links ce);
  (* one 3-hop route per unordered edge pair *)
  Alcotest.(check int) "core-edge routes" 6 (Topo.num_routes ce);
  Alcotest.(check (float 1e-9)) "core capacity" 20.0
    ce.Topo.capacities.(5);
  (* every link of every topology carries at least one route *)
  List.iter
    (fun t ->
      let touched = Array.make (Topo.num_links t) false in
      Array.iter
        (fun r ->
          Array.iter (fun l -> touched.(l) <- true) r.Topo.links)
        t.Topo.routes;
      Alcotest.(check bool) "all links routed" true
        (Array.for_all Fun.id touched))
    [ line; star; ce ]

let test_spec_and_parse () =
  (match Topo.of_spec ~rate:1.0 ~capacity:10.0 "star:4" with
  | Ok t -> Alcotest.(check int) "spec star" 4 (Topo.num_links t)
  | Error e -> Alcotest.fail e);
  (match Topo.of_spec ~rate:1.0 ~capacity:10.0 "ring:9" with
  | Ok _ -> Alcotest.fail "bad spec accepted"
  | Error _ -> ());
  let text = "# two links, one transit route\nlink 10\nlink 20\nroute 0.5 0 1\nroute 1 1\n" in
  (match Topo.parse text with
  | Ok t ->
      Alcotest.(check int) "parsed links" 2 (Topo.num_links t);
      Alcotest.(check int) "parsed routes" 2 (Topo.num_routes t);
      Alcotest.(check (float 0.0)) "parsed rate" 0.5
        t.Topo.routes.(0).Topo.rate
  | Error e -> Alcotest.fail e);
  (match Topo.parse "link 10\nroute 1 0 0\n" with
  | Ok _ -> Alcotest.fail "repeated link in route accepted"
  | Error _ -> ());
  (match Topo.parse "link 10\nroute 1 3\n" with
  | Ok _ -> Alcotest.fail "out-of-range link accepted"
  | Error _ -> ())

(* ---------- int table ---------- *)

let test_int_table_model =
  (* differential test against Hashtbl over add/remove/find churn *)
  qcheck ~count:200 "int table matches Hashtbl model"
    QCheck.(list (pair (int_range 0 200) bool))
    (fun ops ->
      let t = Mbac_net.Int_table.create () in
      let h = Hashtbl.create 16 in
      let next = ref 0 in
      List.iter
        (fun (key, add) ->
          if add then begin
            if not (Hashtbl.mem h key) then begin
              Mbac_net.Int_table.add t ~key ~value:!next;
              Hashtbl.replace h key !next;
              incr next
            end
          end
          else begin
            Mbac_net.Int_table.remove t ~key;
            Hashtbl.remove h key
          end)
        ops;
      Hashtbl.fold
        (fun key v acc ->
          acc && Mbac_net.Int_table.find t ~key = v)
        h
        (Mbac_net.Int_table.length t = Hashtbl.length h
        && List.for_all
             (fun (key, _) ->
               Hashtbl.mem h key || Mbac_net.Int_table.find t ~key = -1)
             ops))

(* ---------- exchange ---------- *)

let test_exchange_order =
  qcheck ~count:200 "deliver sorts by (time, src, send order)"
    QCheck.(list_of_size Gen.(int_range 0 60)
              (pair (int_range 0 3) (int_range 0 7)))
    (fun sends ->
      let ex = Mbac_net.Exchange.create ~shards:4 in
      let expected =
        List.mapi
          (fun i (src, t10) ->
            let time = float_of_int t10 /. 10.0 in
            Mbac_net.Exchange.send ex ~src ~dst:1 ~time ~kind:0 ~link:0
              ~hop:0 ~route:0 ~seq:i ~islot:0 ~igen:0 ~rate:0.0 ~t_end:0.0;
            (time, src, i))
          sends
      in
      let expected =
        List.stable_sort
          (fun (t1, s1, _) (t2, s2, _) ->
            match compare t1 t2 with 0 -> compare s1 s2 | c -> c)
          expected
      in
      let n = Mbac_net.Exchange.deliver ex ~dst:1 in
      n = List.length sends
      && List.for_all2
           (fun (time, _, seq) i ->
             Mbac_net.Exchange.in_time ex i = time
             && Mbac_net.Exchange.in_seq ex i = seq)
           expected
           (List.init n Fun.id))

(* ---------- network runs ---------- *)

let t_h = 100.0
let p_q = 1e-2

let make_source rng ~start =
  Mbac_traffic.Rcbr.create rng
    { Mbac_traffic.Rcbr.mu = 1.0; sigma = 0.3; t_c = 1.0 }
    ~start

let make_controller ~link:_ ~capacity =
  Mbac.Controller.robust
    (Mbac.Params.make ~n:capacity ~mu:1.0 ~sigma:0.3 ~t_h ~t_c:1.0 ~p_q)

let net_cfg ~topology ~shards ~max_events =
  { (Net.default_config ~topology ~holding_time_mean:t_h ~target_p_q:p_q)
    with
    Net.shards;
    max_events }

let run_net ?jobs ~seed ~shards ~max_events topology =
  Net.run ?jobs ~seed (net_cfg ~topology ~shards ~max_events)
    ~make_controller ~make_source

let bits = Int64.bits_of_float

let test_single_link_equivalence =
  (* A 1-link network driven from route 0's stream is the
     [Continuous_load] Poisson loop draw-for-draw: with the event caps
     aligned, every count and every measured float matches bitwise. *)
  qcheck ~count:5 "1-link network == Continuous_load (bitwise)"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let capacity = 30.0 in
      let rate = 0.9 *. capacity /. t_h in
      let topology = Topo.line ~links:1 ~capacity ~rate in
      let net = run_net ~seed ~shards:1 ~max_events:60_000 topology in
      let cl_cfg =
        { (Mbac_sim.Continuous_load.default_config ~capacity
             ~holding_time_mean:t_h ~target_p_q:p_q)
          with
          Mbac_sim.Continuous_load.arrival = `Poisson rate;
          warmup = t_h;
          batch_length = t_h /. 5.0;
          check_every_events = max_int;
          max_events = net.Net.events }
      in
      let cl =
        Mbac_sim.Continuous_load.run
          (Mbac_stats.Rng.derive ~seed ~tag:(Net.route_stream_tag 0))
          cl_cfg
          ~controller:(make_controller ~link:0 ~capacity)
          ~make_source
      in
      let open Mbac_sim.Continuous_load in
      let l = net.Net.links.(0) in
      net.Net.flows_admitted = cl.admitted
      && net.Net.flows_blocked = cl.blocked
      && net.Net.flows_departed = cl.departed
      && net.Net.events = cl.events
      && l.Net.updates = cl.reneg_attempts
      && bits l.Net.p_f = bits cl.p_f
      && bits l.Net.p_f_point = bits cl.p_f_point
      && bits l.Net.mean_load = bits cl.mean_load
      && bits l.Net.std_load = bits cl.std_load
      && bits net.Net.sim_time = bits cl.sim_time)

let render r = Format.asprintf "%a" Net.pp_result r

let test_shard_invariance =
  (* The tentpole's determinism contract: byte-identical output for any
     shard count and any --jobs, on every generator shape. *)
  qcheck ~count:6 "resharding never changes a byte"
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, shape) ->
      let capacity = 30.0 in
      let rate = 0.9 *. capacity /. t_h in
      let topology, shards =
        match shape with
        | 0 -> (Topo.line ~links:4 ~capacity ~rate, 4)
        | 1 -> (Topo.star ~leaves:5 ~capacity ~rate, 3)
        | _ ->
            ( Topo.core_edge ~edges:4 ~cores:2 ~capacity ~core_scale:2.0
                ~rate,
              2 )
      in
      (* [jobs:1] keeps the property cheap on a 1-core runner; the
         domain-parallel drivers are pinned against the same serial
         reference by [test_parallel_drivers] and the network cram *)
      let reference =
        render (run_net ~jobs:1 ~seed ~shards:1 ~max_events:40_000 topology)
      in
      let sharded =
        render (run_net ~jobs:1 ~seed ~shards ~max_events:40_000 topology)
      in
      String.equal reference sharded)

let test_parallel_drivers () =
  (* One run through each driver — serial, whole-run spin barrier
     (width = shards), and the per-window pool fallback (width <
     shards) — must render identically. *)
  let capacity = 30.0 in
  let rate = 0.9 *. capacity /. t_h in
  let topology = Topo.line ~links:4 ~capacity ~rate in
  let reference =
    render (run_net ~jobs:1 ~seed:21 ~shards:4 ~max_events:20_000 topology)
  in
  Alcotest.(check string) "barrier driver (jobs = shards)" reference
    (render (run_net ~jobs:4 ~seed:21 ~shards:4 ~max_events:20_000 topology));
  Alcotest.(check string) "window-pool driver (jobs < shards)" reference
    (render (run_net ~jobs:2 ~seed:21 ~shards:4 ~max_events:20_000 topology))

let test_conservation () =
  let capacity = 30.0 in
  let rate = 0.9 *. capacity /. t_h in
  let topology = Topo.star ~leaves:4 ~capacity ~rate in
  let r = run_net ~jobs:1 ~seed:5 ~shards:2 ~max_events:80_000 topology in
  Alcotest.(check bool) "admitted >= departed" true
    (r.Net.flows_admitted >= r.Net.flows_departed);
  (* every route crosses two links: each end-to-end admission reserves
     once per hop, and every reservation is eventually released or is
     still held at the end of the run *)
  let reserved =
    Array.fold_left (fun a l -> a + l.Net.reserved) 0 r.Net.links
  in
  let released =
    Array.fold_left (fun a l -> a + l.Net.released) 0 r.Net.links
  in
  Alcotest.(check bool) "reservations released <= reserved" true
    (released <= reserved);
  Alcotest.(check bool) "some flows admitted" true (r.Net.flows_admitted > 0);
  Alcotest.(check bool) "utilization sane" true
    (Array.for_all
       (fun l -> l.Net.utilization > 0.0 && l.Net.utilization < 1.0)
       r.Net.links)

let test_reject_blocks_end_to_end () =
  (* A tight transit link must block flows even when the ingress has
     room: end-to-end admission, blame attributed to the tight hop. *)
  let topology =
    match
      Topo.parse "link 30\nlink 5\nroute 0.27 0 1\nroute 0.05 1\n"
    with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  let r = run_net ~jobs:1 ~seed:11 ~shards:2 ~max_events:60_000 topology in
  Alcotest.(check bool) "tight link attributed blocks" true
    (r.Net.links.(1).Net.link_blocked > 0);
  Alcotest.(check bool) "network blocks flows" true (r.Net.flows_blocked > 0)

let suite =
  [ ( "network",
      [ Alcotest.test_case "topology generators" `Quick test_generators;
        Alcotest.test_case "spec + config parsing" `Quick test_spec_and_parse;
        test_int_table_model;
        test_exchange_order;
        test_single_link_equivalence;
        test_shard_invariance;
        Alcotest.test_case "parallel drivers" `Quick test_parallel_drivers;
        Alcotest.test_case "conservation" `Quick test_conservation;
        Alcotest.test_case "end-to-end rejection" `Quick
          test_reject_blocks_end_to_end ] ) ]
