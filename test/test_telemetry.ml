(* The telemetry layer: histogram bucket edges, snapshot merge algebra,
   sharded-counter determinism under the parallel engine. *)

open Mbac_telemetry
open Test_util

(* ---------- Histogram bucket edges ---------- *)

let test_bucket_edges () =
  (* 4 buckets of width 0.25 over [0, 1). *)
  let h = Metric.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  let idx = Metric.Histogram.bucket_index h in
  Alcotest.(check int) "below lo -> underflow" (-1) (idx (-0.001));
  Alcotest.(check int) "x = lo -> bucket 0" 0 (idx 0.0);
  Alcotest.(check int) "interior -> its bucket" 1 (idx 0.3);
  Alcotest.(check int) "interior edge -> bucket above" 2 (idx 0.5);
  Alcotest.(check int) "last in-range value" 3 (idx 0.999);
  Alcotest.(check int) "x = hi -> overflow" 4 (idx 1.0);
  Alcotest.(check int) "far above hi -> overflow" 4 (idx 42.0)

let test_observe_counts () =
  let h = Metric.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  List.iter (Metric.Histogram.observe h)
    [ -1.0; 0.0; 3.0; 5.0; 9.999; 10.0; 100.0; nan; infinity ];
  Alcotest.(check int) "underflow" 1 (Metric.Histogram.underflow h);
  (* +inf is non-finite, so it counts toward [count] only, like nan *)
  Alcotest.(check int) "overflow (x = hi and above)" 2
    (Metric.Histogram.overflow h);
  Alcotest.(check (array int)) "bucket counts"
    [| 1; 1; 1; 0; 1 |]
    (Metric.Histogram.counts h);
  (* nan contributes to count but to no bucket and not the sum *)
  Alcotest.(check int) "count includes non-finite" 9
    (Metric.Histogram.count h);
  check_close "sum over finite values" 126.999 (Metric.Histogram.sum h)

let test_histogram_merge_shape_mismatch () =
  let a = Metric.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  let b = Metric.Histogram.create ~lo:0.0 ~hi:2.0 ~bins:4 in
  Alcotest.check_raises "shape mismatch refused"
    (Invalid_argument "Metric.Histogram.merge_into: shape mismatch")
    (fun () -> Metric.Histogram.merge_into ~into:a b)

(* ---------- Snapshot merge algebra ---------- *)

let hist_of observations =
  let h = Metric.Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  List.iter (Metric.Histogram.observe h) observations;
  Snapshot.Histogram
    { Snapshot.lo = Metric.Histogram.lo h;
      hi = Metric.Histogram.hi h;
      counts = Metric.Histogram.counts h;
      underflow = Metric.Histogram.underflow h;
      overflow = Metric.Histogram.overflow h;
      sum = Metric.Histogram.sum h;
      count = Metric.Histogram.count h }

let snap_a =
  Snapshot.of_list
    [ ("c", Snapshot.Counter 3); ("s", Snapshot.Sum 1.5);
      ("g", Snapshot.Gauge 10.0); ("h", hist_of [ 0.1; 0.6 ]) ]

let snap_b =
  Snapshot.of_list
    [ ("c", Snapshot.Counter 4); ("s", Snapshot.Sum 0.25);
      ("g", Snapshot.Gauge 20.0); ("h", hist_of [ 0.6; 2.0 ]);
      ("only_b", Snapshot.Counter 1) ]

let snap_c =
  Snapshot.of_list
    [ ("c", Snapshot.Counter 5); ("g", Snapshot.Gauge 30.0);
      ("h", hist_of [ -1.0 ]) ]

let test_merge_values () =
  let m = Snapshot.merge snap_a snap_b in
  Alcotest.(check bool) "counter adds" true
    (Snapshot.find m "c" = Some (Snapshot.Counter 7));
  Alcotest.(check bool) "sum adds" true
    (Snapshot.find m "s" = Some (Snapshot.Sum 1.75));
  Alcotest.(check bool) "gauge takes right operand" true
    (Snapshot.find m "g" = Some (Snapshot.Gauge 20.0));
  Alcotest.(check bool) "union keeps singletons" true
    (Snapshot.find m "only_b" = Some (Snapshot.Counter 1));
  match Snapshot.find m "h" with
  | Some (Snapshot.Histogram h) ->
      Alcotest.(check (array int)) "histogram buckets add"
        [| 1; 0; 2; 0 |] h.Snapshot.counts;
      Alcotest.(check int) "histogram overflow adds" 1 h.Snapshot.overflow;
      Alcotest.(check int) "histogram count adds" 4 h.Snapshot.count
  | _ -> Alcotest.fail "merged histogram missing"

let test_merge_associative () =
  let left = Snapshot.merge (Snapshot.merge snap_a snap_b) snap_c in
  let right = Snapshot.merge snap_a (Snapshot.merge snap_b snap_c) in
  Alcotest.(check bool) "(a+b)+c = a+(b+c), all kinds" true
    (Snapshot.equal left right)

let test_merge_commutative_except_gauge () =
  (* Counters, sums, and histograms commute; gauges deliberately do not
     (right operand wins), so compare with the gauge dropped. *)
  let drop_gauge s =
    Snapshot.of_list
      (List.filter
         (fun (_, v) -> match v with Snapshot.Gauge _ -> false | _ -> true)
         (Snapshot.bindings s))
  in
  let ab = Snapshot.merge snap_a snap_b and ba = Snapshot.merge snap_b snap_a in
  Alcotest.(check bool) "a+b = b+a modulo gauges" true
    (Snapshot.equal (drop_gauge ab) (drop_gauge ba));
  Alcotest.(check bool) "gauge is order-sensitive" true
    (Snapshot.find ab "g" <> Snapshot.find ba "g")

let test_merge_empty_identity () =
  Alcotest.(check bool) "empty is a left identity" true
    (Snapshot.equal snap_b (Snapshot.merge Snapshot.empty snap_b));
  Alcotest.(check bool) "empty is a right identity" true
    (Snapshot.equal snap_b (Snapshot.merge snap_b Snapshot.empty))

let test_json_deterministic () =
  let j = Snapshot.to_json snap_a in
  Alcotest.(check string) "rendering is stable" j (Snapshot.to_json snap_a);
  (* names appear in sorted order *)
  let pos name =
    match String.index_opt j '{' with
    | None -> -1
    | Some _ ->
        let needle = "\"" ^ name ^ "\"" in
        let rec find i =
          if i + String.length needle > String.length j then -1
          else if String.sub j i (String.length needle) = needle then i
          else find (i + 1)
        in
        find 0
  in
  Alcotest.(check bool) "keys sorted by name" true
    (pos "c" < pos "g" && pos "g" < pos "h" && pos "h" < pos "s")

(* ---------- Sharded counters under the parallel engine ---------- *)

let counter_value snapshot name =
  match Snapshot.find snapshot name with
  | Some (Snapshot.Counter n) -> n
  | _ -> 0

let test_sharded_counters_qcheck =
  (* Whatever the per-task increments and the pool width, the merged
     counter equals the serial total. *)
  qcheck ~count:30 "merged sharded counters = serial total"
    QCheck.(pair (list_of_size Gen.(1 -- 20) (0 -- 50)) (1 -- 6))
    (fun (increments, jobs) ->
      Shard.reset_current ();
      ignore
        (Mbac_sim.Parallel.run_tasks ~jobs
           (List.map
              (fun by () -> Metrics.inc ~by "qcheck_sharded_total")
              increments));
      let merged = counter_value (Snapshot.current ()) "qcheck_sharded_total" in
      Shard.reset_current ();
      merged = List.fold_left ( + ) 0 increments)

let test_jobs_invariant_snapshot () =
  (* Full-snapshot determinism: metrics recorded by parallel tasks
     (counters, sums, gauges, histograms) aggregate identically for any
     pool width, including the gauge's submission-order winner. *)
  let run jobs =
    Shard.reset_current ();
    ignore
      (Mbac_sim.Parallel.run_tasks ~jobs
         (List.init 12 (fun i () ->
              Metrics.inc ~by:(i + 1) "snap_counter";
              Metrics.add "snap_sum" (0.5 *. float_of_int i);
              Metrics.set_gauge "snap_gauge" (float_of_int i);
              Metrics.observe "snap_hist" ~lo:0.0 ~hi:12.0 ~bins:6
                (float_of_int i))));
    let s = Snapshot.current () in
    Shard.reset_current ();
    s
  in
  let reference = run 1 in
  Alcotest.(check bool) "gauge winner is the last submitted task" true
    (Snapshot.find reference "snap_gauge" = Some (Snapshot.Gauge 11.0));
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d snapshot equals jobs=1" jobs)
        true
        (Snapshot.equal reference (run jobs));
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d JSON byte-identical" jobs)
        (Snapshot.to_json reference)
        (Snapshot.to_json (run jobs)))
    [ 2; 4 ]

let suite =
  [ ( "telemetry",
      [ test "histogram bucket edges" test_bucket_edges;
        test "histogram observe counts" test_observe_counts;
        test "histogram shape mismatch" test_histogram_merge_shape_mismatch;
        test "snapshot merge values" test_merge_values;
        test "snapshot merge associative" test_merge_associative;
        test "snapshot merge commutative" test_merge_commutative_except_gauge;
        test "snapshot merge identity" test_merge_empty_identity;
        test "snapshot JSON deterministic" test_json_deterministic;
        test_sharded_counters_qcheck;
        test "jobs-invariant snapshot" test_jobs_invariant_snapshot ] ) ]
