open Mbac_stats
open Test_util

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independent () =
  let a = Rng.create ~seed:7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Rng.bits64 a);
  (* advancing a does not advance b *)
  let xa2 = Rng.bits64 a and xb2 = Rng.bits64 b in
  Alcotest.(check bool) "copies then diverge in position" true (xa2 <> xb2 || xa2 = xb2);
  ignore (xa2, xb2)

let test_split_independence () =
  let a = Rng.create ~seed:11 in
  let b = Rng.split a in
  (* crude independence check: correlation of uniform streams is small *)
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. ((Rng.float a -. 0.5) *. (Rng.float b -. 0.5))
  done;
  let corr = !sum /. float_of_int n /. (1.0 /. 12.0) in
  Alcotest.(check bool) "streams uncorrelated" true (abs_float corr < 0.05)

let test_float_range =
  qcheck ~count:1000 "float in [0,1)" QCheck.unit (fun () ->
      let rng = Rng.create ~seed:(Random.int 1_000_000) in
      let x = Rng.float rng in
      x >= 0.0 && x < 1.0)

let test_float_uniformity () =
  let rng = Rng.create ~seed:123 in
  let n = 100_000 in
  let acc = Welford.create () in
  for _ = 1 to n do
    Welford.add acc (Rng.float rng)
  done;
  (* mean 0.5 +- ~4 sigma/sqrt(n), variance 1/12 *)
  check_close_abs ~tol:0.005 "uniform mean" 0.5 (Welford.mean acc);
  check_close ~tol:0.05 "uniform variance" (1.0 /. 12.0) (Welford.variance acc)

let test_int_bounds =
  qcheck ~count:1000 "int in range" QCheck.(int_range 1 1000) (fun n ->
      let rng = Rng.create ~seed:n in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let test_int_uniform () =
  let rng = Rng.create ~seed:9 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let p = float_of_int c /. float_of_int n in
      if abs_float (p -. 0.1) > 0.01 then
        Alcotest.failf "bucket %d has probability %.4f" i p)
    counts

let test_int_invalid () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: requires n > 0")
    (fun () -> ignore (Rng.int rng 0))

let test_derive_deterministic () =
  let a = Rng.derive ~seed:7 ~tag:"cell" in
  let b = Rng.derive ~seed:7 ~tag:"cell" in
  Alcotest.(check int64) "same (seed, tag) same stream" (Rng.bits64 a)
    (Rng.bits64 b);
  let c = Rng.derive ~seed:8 ~tag:"cell" in
  Alcotest.(check bool) "seed matters" true (Rng.bits64 b <> Rng.bits64 c);
  let d = Rng.derive ~seed:7 ~tag:"cell2" in
  Alcotest.(check bool) "tag matters" true
    (Rng.bits64 (Rng.derive ~seed:7 ~tag:"cell") <> Rng.bits64 d)

let test_derive_full_input () =
  (* Every byte of the tag must count, even past any hashing prefix
     limit: tags sharing a long prefix and differing only at the end
     must give different streams. *)
  let prefix = String.make 4096 'x' in
  let a = Rng.derive ~seed:1 ~tag:(prefix ^ "-a") in
  let b = Rng.derive ~seed:1 ~tag:(prefix ^ "-b") in
  Alcotest.(check bool) "suffix-only difference separates streams" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_derive_no_birthday_collisions () =
  (* 200k tags in a 30-bit hash (the old Hashtbl.hash derivation) gave
     ~20 colliding streams; the 64-bit derivation must give none. *)
  let seen = Hashtbl.create 500_000 in
  for i = 0 to 199_999 do
    let tag = Printf.sprintf "fig10-%g-%g"
        (float_of_int i /. 7.0) (float_of_int i /. 3.0) in
    let rng = Rng.derive ~seed:20260706 ~tag in
    let fingerprint = (Rng.bits64 rng, Rng.bits64 rng) in
    match Hashtbl.find_opt seen fingerprint with
    | Some other -> Alcotest.failf "streams collide: %S vs %S" tag other
    | None -> Hashtbl.add seen fingerprint tag
  done

(* Reference implementation of xoshiro256++ / SplitMix64 in plain
   [int64], as the module was originally written.  The production
   generator stores 32-bit hi/lo halves in native ints to keep the hot
   path allocation-free; this differential check pins its output to the
   canonical int64 formulation bit for bit. *)
module Ref_rng = struct
  type t = {
    mutable s0 : int64;
    mutable s1 : int64;
    mutable s2 : int64;
    mutable s3 : int64;
  }

  let splitmix64 state =
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let create ~seed =
    let state = ref (Int64.of_int seed) in
    let s0 = splitmix64 state in
    let s1 = splitmix64 state in
    let s2 = splitmix64 state in
    let s3 = splitmix64 state in
    { s0; s1; s2; s3 }

  let rotl x k =
    Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let bits64 t =
    let open Int64 in
    let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
    let tmp = shift_left t.s1 17 in
    t.s2 <- logxor t.s2 t.s0;
    t.s3 <- logxor t.s3 t.s1;
    t.s1 <- logxor t.s1 t.s2;
    t.s0 <- logxor t.s0 t.s3;
    t.s2 <- logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result

  let float t =
    let x = Int64.shift_right_logical (bits64 t) 11 in
    Int64.to_float x *. 0x1.0p-53
end

let test_matches_int64_reference =
  qcheck ~count:200 "hi/lo halves match int64 reference"
    QCheck.(int_bound 0x3FFFFFFF)
    (fun seed ->
      let a = Rng.create ~seed and r = Ref_rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 500 do
        if Rng.bits64 a <> Ref_rng.bits64 r then ok := false
      done;
      (* interleave the float path too: it must consume exactly one step
         and produce the same 53-bit mantissa *)
      for _ = 1 to 500 do
        if Rng.float a <> Ref_rng.float r then ok := false
      done;
      Rng.bits64 a = Ref_rng.bits64 r && !ok)

let suite =
  [ ( "rng",
      [ test "determinism" test_determinism;
        test "seed sensitivity" test_seed_sensitivity;
        test "copy" test_copy_independent;
        test "split independence" test_split_independence;
        test_float_range;
        test "float uniformity" test_float_uniformity;
        test_int_bounds;
        test "int uniformity" test_int_uniform;
        test "int invalid" test_int_invalid;
        test_matches_int64_reference;
        test "derive determinism" test_derive_deterministic;
        test "derive reads the whole tag" test_derive_full_input;
        test "derive collision resistance" test_derive_no_birthday_collisions ] ) ]
