(* The experiments library: registry wiring and the cheap (analysis-only)
   experiment computations. *)
open Test_util

let test_registry_complete () =
  let expected =
    [ "prop31"; "prop33"; "eqn21"; "fig5"; "fig6"; "fig7"; "fig9"; "fig10";
      "fig11"; "fig12"; "regimes"; "util40"; "baselines"; "hetero";
      "aggregate"; "arrival"; "service"; "nonstat"; "deeptail"; "utility" ]
  in
  List.iter
    (fun id ->
      match Mbac_experiments.Registry.find id with
      | Some e -> Alcotest.(check string) "id matches" id e.Mbac_experiments.Registry.id
      | None -> Alcotest.failf "experiment %s missing from registry" id)
    expected;
  Alcotest.(check int) "registry size" (List.length expected)
    (List.length Mbac_experiments.Registry.all)

let test_registry_find_unknown () =
  Alcotest.(check bool) "unknown id" true
    (Mbac_experiments.Registry.find "nope" = None)

let test_fig6_curves_monotone () =
  let curves = Mbac_experiments.Exp_fig6.compute () in
  Alcotest.(check int) "four curves" 4 (List.length curves);
  List.iter
    (fun c ->
      let values = List.map snd c.Mbac_experiments.Exp_fig6.points in
      (* log10 p_ce increases (toward -3) with memory *)
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && nondecreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "monotone in T_m" true (nondecreasing values);
      (* all between log10(p_q) = -3 and something small *)
      List.iter
        (fun v ->
          Alcotest.(check bool) "below p_q" true (v <= -3.0 +. 1e-6))
        values)
    curves

let test_fig9_grid_shape () =
  let g = Mbac_experiments.Exp_fig9.compute () in
  let open Mbac_experiments.Exp_fig9 in
  Alcotest.(check int) "rows" (List.length g.t_cs) (Array.length g.p_f);
  (* In the masking regime (t_c <= T~_h) memory monotonically helps.  In
     the repair regime more memory can raise p_f slightly (the residual
     Q(alpha sqrt(1 + T_c/T_m)) term grows), but everything there is far
     below target anyway — so monotonicity is only asserted on the
     masking rows. *)
  List.iteri
    (fun i t_c ->
      if t_c <= 10.0 then
        let row = g.p_f.(i) in
        for j = 1 to Array.length row - 1 do
          if row.(j) > row.(j - 1) +. 1e-12 && row.(j) > 1e-4 then
            Alcotest.failf "masking row t_c=%g not non-increasing" t_c
        done)
    g.t_cs;
  (* memoryless corner violates the target; full-memory corner meets it *)
  let p_q = 1e-3 in
  Alcotest.(check bool) "violation at small memory, short T_c" true
    (g.p_f.(1).(0) > 10.0 *. p_q);
  let last_col = Array.map (fun row -> row.(Array.length row - 1)) g.p_f in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "T_m ~ 3 T~_h meets target everywhere" true
        (v <= 2.0 *. p_q))
    last_col

let test_regimes_rows () =
  let rows = Mbac_experiments.Exp_regimes.compute () in
  Alcotest.(check bool) "has both regimes" true
    (List.exists (fun r -> r.Mbac_experiments.Exp_regimes.regime = "masking") rows
    && List.exists (fun r -> r.Mbac_experiments.Exp_regimes.regime = "repair") rows);
  (* in the masking rows the masking form approximates the general one *)
  List.iter
    (fun r ->
      let open Mbac_experiments.Exp_regimes in
      if r.regime = "masking" && r.t_c <= 1.0 then begin
        let ratio = r.general /. r.masking in
        if ratio < 0.7 || ratio > 1.4 then
          Alcotest.failf "masking mismatch at t_c=%g: %g" r.t_c ratio
      end)
    rows

let test_common_table_formatting () =
  let buf = Buffer.create 128 in
  let fmt = Format.formatter_of_buffer buf in
  Mbac_experiments.Common.table fmt ~header:[ "a"; "bb" ]
    ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ];
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "contains all cells" true
    (List.for_all
       (fun cell ->
         (* substring check *)
         let rec contains i =
           i + String.length cell <= String.length s
           && (String.sub s i (String.length cell) = cell || contains (i + 1))
         in
         contains 0)
       [ "a"; "bb"; "1"; "2"; "333"; "4" ])

let test_common_rng_deterministic () =
  let a = Mbac_experiments.Common.rng_for "tag" in
  let b = Mbac_experiments.Common.rng_for "tag" in
  Alcotest.(check int64) "same tag same stream" (Mbac_stats.Rng.bits64 a)
    (Mbac_stats.Rng.bits64 b);
  let c = Mbac_experiments.Common.rng_for "other" in
  Alcotest.(check bool) "different tags differ" true
    (Mbac_stats.Rng.bits64 c <> Mbac_stats.Rng.bits64 b)

(* Regression: the old [Hashtbl.hash (tag, !seed)] derivation folded
   tags to 30 bits (and bounds the portion of a structured input it
   reads), so distinct experiment tags could silently share one RNG
   stream.  Long tags with a common prefix — the shape every sweep
   generates — must yield pairwise-distinct streams. *)
let test_rng_for_long_tags_distinct () =
  let prefix = String.make 300 'p' in
  let streams =
    List.init 64 (fun i ->
        let rng =
          Mbac_experiments.Common.rng_for
            (Printf.sprintf "%s-cell-%d" prefix i)
        in
        (Mbac_stats.Rng.bits64 rng, Mbac_stats.Rng.bits64 rng))
  in
  let distinct = List.sort_uniq compare streams in
  Alcotest.(check int) "all long tags give distinct streams"
    (List.length streams) (List.length distinct)

let test_profile_parsing () =
  Alcotest.(check bool) "quick" true
    (Mbac_experiments.Common.profile_of_string "Quick" = Mbac_experiments.Common.Quick);
  Alcotest.(check bool) "full" true
    (Mbac_experiments.Common.profile_of_string "FULL" = Mbac_experiments.Common.Full);
  Alcotest.check_raises "bad"
    (Invalid_argument "Common.profile_of_string: nope") (fun () ->
      ignore (Mbac_experiments.Common.profile_of_string "nope"))

let suite =
  [ ( "experiments",
      [ test "registry completeness" test_registry_complete;
        test "registry unknown" test_registry_find_unknown;
        test "fig6 curves monotone" test_fig6_curves_monotone;
        test "fig9 grid shape" test_fig9_grid_shape;
        test "regimes table" test_regimes_rows;
        test "table formatting" test_common_table_formatting;
        test "deterministic experiment rngs" test_common_rng_deterministic;
        test "long tags get distinct streams" test_rng_for_long_tags_distinct;
        test "profile parsing" test_profile_parsing ] ) ]
