(* The deterministic multicore replication engine: submission-order
   results, jobs-invariance, exception propagation. *)

open Mbac_sim
open Test_util

(* The pool clamps its width to the core count by default; raise the cap
   so these tests exercise real multi-domain schedules (and the width
   assertions below hold) even on a 1-core CI runner.  Must happen
   before any [domain_cap] call. *)
let () = Unix.putenv "MBAC_DOMAIN_CAP" "8"

let test_ordering () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun x -> x * x) xs)
    (Parallel.map ~jobs:4 (fun x -> x * x) xs)

let test_empty_and_small () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Parallel.map ~jobs:4 Fun.id [ 7 ]);
  (* more workers than tasks *)
  Alcotest.(check (list int)) "jobs > tasks" [ 1; 2 ]
    (Parallel.map ~jobs:16 Fun.id [ 1; 2 ])

let test_jobs_invariance () =
  (* Each task derives its stream up front from (seed, tag): any pool
     width must produce bit-identical outputs. *)
  let sweep jobs =
    Parallel.map ~jobs
      (fun i ->
        let rng =
          Mbac_stats.Rng.derive ~seed:99 ~tag:(Printf.sprintf "cell-%d" i)
        in
        let acc = ref 0L in
        for _ = 1 to 1000 do
          acc := Int64.add !acc (Mbac_stats.Rng.bits64 rng)
        done;
        !acc)
      (List.init 32 Fun.id)
  in
  let reference = sweep 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int64))
        (Printf.sprintf "jobs=%d matches jobs=1" jobs)
        reference (sweep jobs))
    [ 2; 3; 8 ]

let test_exception_propagation () =
  Alcotest.check_raises "first failure re-raised" (Failure "task-3") (fun () ->
      ignore
        (Parallel.map ~jobs:2
           (fun i -> if i >= 3 then failwith (Printf.sprintf "task-%d" i))
           (List.init 8 Fun.id)));
  (* the serial path propagates too *)
  Alcotest.check_raises "serial failure" (Failure "task-0") (fun () ->
      ignore (Parallel.map ~jobs:1 (fun _ -> failwith "task-0") [ 0 ]))

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Parallel.run_tasks: jobs < 1") (fun () ->
      ignore (Parallel.run_tasks ~jobs:0 [ (fun () -> ()) ]))

let test_actually_parallel () =
  (* Workers really do run in other domains: with 4 workers and 4 tasks
     each observing its own domain, at least one task must land off the
     submitting domain when domains are available — but on a 1-core box
     the pool may legitimately be narrower, so just check the pool
     computes the right thing under contention. *)
  let n = 64 in
  let results =
    Parallel.map ~jobs:4
      (fun i ->
        (* a little work so tasks overlap *)
        let rng = Mbac_stats.Rng.create ~seed:i in
        let s = ref 0.0 in
        for _ = 1 to 10_000 do
          s := !s +. Mbac_stats.Rng.float rng
        done;
        (i, Float.round !s)
      )
      (List.init n Fun.id)
  in
  Alcotest.(check int) "all tasks ran" n (List.length results);
  List.iteri
    (fun i (j, _) -> Alcotest.(check int) "order preserved" i j)
    results

let test_effective_jobs () =
  Alcotest.(check int) "clamped to task count" 3
    (Parallel.effective_jobs ~jobs:16 3);
  Alcotest.(check int) "clamped to cap"
    (Parallel.domain_cap ())
    (Parallel.effective_jobs ~jobs:1000 1000);
  Alcotest.(check int) "zero tasks" 0 (Parallel.effective_jobs ~jobs:4 0);
  Alcotest.(check int) "explicit width kept" 2
    (Parallel.effective_jobs ~jobs:2 100);
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Parallel.run_tasks: jobs < 1") (fun () ->
      ignore (Parallel.effective_jobs ~jobs:0 4));
  Alcotest.(check bool) "default within cap" true
    (Parallel.default_jobs () <= Parallel.domain_cap ())

let counter_value name =
  match
    Mbac_telemetry.Shard.find_metric (Mbac_telemetry.Shard.current ()) name
  with
  | Some (Mbac_telemetry.Metric.Counter r) -> !r
  | Some _ -> Alcotest.fail (name ^ ": not a counter")
  | None -> 0

(* First-failure cancellation on the serial path: tasks submitted after
   the first failure never start. *)
let test_cancellation_serial () =
  let started = Atomic.make 0 in
  (try
     ignore
       (Parallel.map ~jobs:1
          (fun i ->
            Atomic.incr started;
            if i = 2 then failwith "boom")
          (List.init 10 Fun.id));
     Alcotest.fail "expected failure"
   with Failure msg when msg = "boom" -> ());
  Alcotest.(check int) "tasks after the failure skipped" 3
    (Atomic.get started)

(* The re-raised exception is the submission-order-first failure at
   every pool width and chunk size, even though later tasks may fail
   first on the wall clock and unclaimed tasks are skipped. *)
let test_first_failure_deterministic =
  qcheck ~count:60 "first submission-order failure re-raised at any width"
    QCheck.(
      triple (int_range 1 40)
        (pair (int_range 1 8) (int_range 1 8))
        (int_range 0 1000))
    (fun (n, (jobs, chunk), salt) ->
      (* every task whose hash bit is set fails; expected = lowest such *)
      let fails i = (Hashtbl.hash (salt, i) land 3) = 0 in
      let expected =
        List.find_opt fails (List.init n Fun.id)
      in
      let run () =
        ignore
          (Parallel.map ~jobs ~chunk
             (fun i -> if fails i then failwith (string_of_int i) else i)
             (List.init n Fun.id))
      in
      match expected with
      | None ->
          run ();
          true
      | Some f -> (
          try
            run ();
            false
          with Failure msg -> int_of_string msg = f))

(* Partial telemetry from executed tasks — including the failing one —
   is merged; skipped tasks contribute nothing and are counted. *)
let test_partial_telemetry_on_failure () =
  Mbac_telemetry.Shard.reset_current ();
  (try
     ignore
       (Parallel.map ~jobs:1
          (fun i ->
            Mbac_telemetry.Metrics.inc "test_cancel_probe_total";
            if i = 4 then failwith "stop")
          (List.init 12 Fun.id));
     Alcotest.fail "expected failure"
   with Failure msg when msg = "stop" -> ());
  Alcotest.(check int) "executed tasks' metrics merged" 5
    (counter_value "test_cancel_probe_total");
  Alcotest.(check int) "executed tasks counted" 5
    (counter_value "parallel_tasks_total");
  Alcotest.(check int) "skipped tasks counted" 7
    (counter_value "parallel_tasks_skipped_total");
  Mbac_telemetry.Shard.reset_current ()

(* Results (and, on success, merged telemetry) are invariant in both the
   pool width and the chunk size. *)
let test_chunk_invariance =
  qcheck ~count:40 "chunked submission is jobs- and chunk-invariant"
    QCheck.(pair (int_range 0 50) (pair (int_range 1 6) (int_range 1 9)))
    (fun (n, (jobs, chunk)) ->
      let cells = List.init n Fun.id in
      let f i =
        let rng =
          Mbac_stats.Rng.derive ~seed:5 ~tag:(Printf.sprintf "chunk-%d" i)
        in
        Mbac_stats.Rng.bits64 rng
      in
      let reference = List.map f cells in
      reference = Parallel.map ~jobs ~chunk f cells)

(* [init] runs in every domain that executes tasks, before any of its
   tasks: each task checks the domain-local seed its init planted. *)
let dls_probe : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let test_init_preseeds_domains () =
  let init_runs = Atomic.make 0 in
  let init () =
    Atomic.incr init_runs;
    Domain.DLS.get dls_probe := true
  in
  let seen =
    Parallel.map ~jobs:4 ~init
      (fun _ -> !(Domain.DLS.get dls_probe))
      (List.init 32 Fun.id)
  in
  Alcotest.(check bool) "every task saw its domain pre-seeded" true
    (List.for_all Fun.id seen);
  let runs = Atomic.get init_runs in
  Alcotest.(check bool) "init ran in each executing domain (1..width)" true
    (runs >= 1 && runs <= Parallel.effective_jobs ~jobs:4 32);
  (* the submitting domain was seeded too: clean up for other tests *)
  Domain.DLS.get dls_probe := false

let suite =
  [ ( "parallel",
      [ test "submission order" test_ordering;
        test "edge sizes" test_empty_and_small;
        test "jobs invariance" test_jobs_invariance;
        test "exception propagation" test_exception_propagation;
        test "invalid jobs" test_invalid_jobs;
        test "contention" test_actually_parallel;
        test "effective width" test_effective_jobs;
        test "serial cancellation" test_cancellation_serial;
        test_first_failure_deterministic;
        test "partial telemetry on failure" test_partial_telemetry_on_failure;
        test_chunk_invariance;
        test "per-domain init preseed" test_init_preseeds_domains ] ) ]
