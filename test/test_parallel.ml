(* The deterministic multicore replication engine: submission-order
   results, jobs-invariance, exception propagation. *)

open Mbac_sim
open Test_util

let test_ordering () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun x -> x * x) xs)
    (Parallel.map ~jobs:4 (fun x -> x * x) xs)

let test_empty_and_small () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Parallel.map ~jobs:4 Fun.id [ 7 ]);
  (* more workers than tasks *)
  Alcotest.(check (list int)) "jobs > tasks" [ 1; 2 ]
    (Parallel.map ~jobs:16 Fun.id [ 1; 2 ])

let test_jobs_invariance () =
  (* Each task derives its stream up front from (seed, tag): any pool
     width must produce bit-identical outputs. *)
  let sweep jobs =
    Parallel.map ~jobs
      (fun i ->
        let rng =
          Mbac_stats.Rng.derive ~seed:99 ~tag:(Printf.sprintf "cell-%d" i)
        in
        let acc = ref 0L in
        for _ = 1 to 1000 do
          acc := Int64.add !acc (Mbac_stats.Rng.bits64 rng)
        done;
        !acc)
      (List.init 32 Fun.id)
  in
  let reference = sweep 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list int64))
        (Printf.sprintf "jobs=%d matches jobs=1" jobs)
        reference (sweep jobs))
    [ 2; 3; 8 ]

let test_exception_propagation () =
  Alcotest.check_raises "first failure re-raised" (Failure "task-3") (fun () ->
      ignore
        (Parallel.map ~jobs:2
           (fun i -> if i >= 3 then failwith (Printf.sprintf "task-%d" i))
           (List.init 8 Fun.id)));
  (* the serial path propagates too *)
  Alcotest.check_raises "serial failure" (Failure "task-0") (fun () ->
      ignore (Parallel.map ~jobs:1 (fun _ -> failwith "task-0") [ 0 ]))

let test_invalid_jobs () =
  Alcotest.check_raises "jobs=0 rejected"
    (Invalid_argument "Parallel.run_tasks: jobs < 1") (fun () ->
      ignore (Parallel.run_tasks ~jobs:0 [ (fun () -> ()) ]))

let test_actually_parallel () =
  (* Workers really do run in other domains: with 4 workers and 4 tasks
     each observing its own domain, at least one task must land off the
     submitting domain when domains are available — but on a 1-core box
     the pool may legitimately be narrower, so just check the pool
     computes the right thing under contention. *)
  let n = 64 in
  let results =
    Parallel.map ~jobs:4
      (fun i ->
        (* a little work so tasks overlap *)
        let rng = Mbac_stats.Rng.create ~seed:i in
        let s = ref 0.0 in
        for _ = 1 to 10_000 do
          s := !s +. Mbac_stats.Rng.float rng
        done;
        (i, Float.round !s)
      )
      (List.init n Fun.id)
  in
  Alcotest.(check int) "all tasks ran" n (List.length results);
  List.iteri
    (fun i (j, _) -> Alcotest.(check int) "order preserved" i j)
    results

let suite =
  [ ( "parallel",
      [ test "submission order" test_ordering;
        test "edge sizes" test_empty_and_small;
        test "jobs invariance" test_jobs_invariance;
        test "exception propagation" test_exception_propagation;
        test "invalid jobs" test_invalid_jobs;
        test "contention" test_actually_parallel ] ) ]
