(* Metric-catalogue drift test: OBSERVABILITY.md's "Metric catalogue"
   tables are the documented contract for every metric name and kind.
   This test provokes every instrumented code path with tiny smoke runs,
   snapshots the registry, and asserts the two sets match exactly — a
   new metric without a catalogue row, a catalogue row whose metric is
   gone, or a kind change all fail with a diff. *)

open Mbac_telemetry
open Test_util

(* ---------- the documented side: parse the catalogue tables ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Rows look like
     | `name` | counter | meaning |
     | `a` / `b` | sum | meaning |
   with kinds like "histogram [0, 20), 40 bins" — only the leading kind
   word(s) are significant. *)
let parse_catalogue md =
  let lines = String.split_on_char '\n' md in
  let in_section = ref false in
  let rows = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line >= 3 && String.sub line 0 3 = "## " then
        in_section := line = "## Metric catalogue"
      else if !in_section && String.length line >= 3
              && String.sub line 0 3 = "| `" then begin
        match String.split_on_char '|' line with
        | _ :: names_cell :: kind_cell :: _ ->
            let kind = String.trim kind_cell in
            let names =
              String.split_on_char '/' names_cell
              |> List.map String.trim
              |> List.filter_map (fun token ->
                     let n = String.length token in
                     if n >= 2 && token.[0] = '`' && token.[n - 1] = '`' then
                       Some (String.sub token 1 (n - 2))
                     else None)
            in
            List.iter (fun name -> rows := (name, kind) :: !rows) names
        | _ -> ()
      end)
    lines;
  List.rev !rows

(* ---------- the live side: provoke every instrumented path ---------- *)

let make_source rng ~start =
  Mbac_traffic.Rcbr.create rng
    { Mbac_traffic.Rcbr.mu = 1.0; sigma = 0.3; t_c = 1.0 }
    ~start

(* A deliberately overloaded link (peak-rate controller pins ~4 flows of
   mean rate 1 against capacity 5), so overflow episodes — and with a
   tiny buffer, buffer-loss episodes — occur within a few hundred
   events. *)
let overloaded_cfg ~link =
  { (Mbac_sim.Continuous_load.default_config ~capacity:5.0
       ~holding_time_mean:10.0 ~target_p_q:0.1)
    with
    Mbac_sim.Continuous_load.link;
    warmup = 2.0;
    batch_length = 4.0;
    min_batches = 4;
    check_every_events = max_int;
    max_time = 200.0;
    max_events = 20_000 }

let run_continuous ~link ~seed =
  let rng = Mbac_stats.Rng.create ~seed in
  ignore
    (Mbac_sim.Continuous_load.run rng (overloaded_cfg ~link)
       ~controller:(Mbac.Controller.peak_rate ~capacity:5.0 ~peak:1.15)
       ~make_source)

let run_impulsive ~seed =
  let rng = Mbac_stats.Rng.create ~seed in
  ignore
    (Mbac_sim.Impulsive_driver.m0_samples rng ~replications:3 ~n_offered:20
       ~capacity:15.0 ~alpha_ce:1.0 ~make_source);
  ignore
    (Mbac_sim.Impulsive_driver.steady_state_overflow rng ~replications:2
       ~n_offered:20 ~capacity:15.0 ~alpha_ce:1.0 ~decorrelate_time:1.0
       ~samples_per_replication:4 ~sample_spacing:0.5 ~make_source)

let run_parallel_paths () =
  (* a skipped task needs a failing sibling; the pool re-raises the
     failure after the join, where the counters are recorded *)
  match
    Mbac_sim.Parallel.run_tasks ~jobs:1
      [ (fun () -> failwith "catalogue-smoke"); (fun () -> ()) ]
  with
  | _ -> Alcotest.fail "failing task did not propagate"
  | exception Failure _ -> ()

(* The splitting smoke reuses test_splitting's known-quick system: 20
   peak-rate-pinned RCBR flows, capacity ~2.33 sd out. *)
let splitting_sim_cfg =
  { (Mbac_sim.Continuous_load.default_config ~capacity:23.13
       ~holding_time_mean:50.0 ~target_p_q:1e-2)
    with
    Mbac_sim.Continuous_load.warmup = 20.0;
    batch_length = 20.0;
    check_every_events = max_int }

let run_splitting ~seed =
  let controller () = Mbac.Controller.peak_rate ~capacity:23.13 ~peak:1.15 in
  let cfg =
    { (Mbac_sim.Splitting.default_config ~pilot_time:300.0) with
      Mbac_sim.Splitting.levels = 2;
      trials_per_level = 64;
      calibration_time = 30.0 }
  in
  ignore
    (Mbac_sim.Splitting.run ~seed cfg splitting_sim_cfg
       ~controller:(controller ()) ~make_source);
  (* a second run whose clone trials are cut off immediately, to
     register the truncation counter *)
  let truncating =
    { cfg with Mbac_sim.Splitting.max_trial_events = 1; trials_per_level = 8 }
  in
  ignore
    (Mbac_sim.Splitting.run ~seed:(seed + 1) truncating splitting_sim_cfg
       ~controller:(controller ()) ~make_source)

(* A tiny two-shard network run: registers every net_* total, including
   the exchange counters (the transit route crosses both shards). *)
let run_network ~seed =
  let topology =
    Mbac_net.Topology.line ~links:2 ~capacity:5.0 ~rate:0.4
  in
  let cfg =
    { (Mbac_net.Network.default_config ~topology ~holding_time_mean:10.0
         ~target_p_q:0.1)
      with
      Mbac_net.Network.shards = 2;
      warmup = 2.0;
      batch_length = 4.0;
      max_events = 20_000 }
  in
  ignore
    (Mbac_net.Network.run ~jobs:1 ~seed cfg
       ~make_controller:(fun ~link:_ ~capacity ->
         Mbac.Controller.peak_rate ~capacity ~peak:1.15)
       ~make_source)

(* One tiny in-process serving session touching every serve_* metric:
   connect, a decide that admits and one that rejects (admit/reject
   counters plus the latency histogram), accounting with measure_every=1
   (measurement updates and the flow/load gauges). *)
let run_serve_paths () =
  let engine =
    Mbac_serve.Engine.create
      { Mbac_serve.Engine.capacity = 10.0;
        criteria = [ Mbac_serve.Engine.Gaussian { cname = "ce"; p_ce = 0.01 } ];
        estimator = Mbac.Estimator.memoryless ();
        measure_every = 1 }
  in
  let client = Mbac_serve.Client.inproc engine in
  let rpc req = ignore (Mbac_serve.Client.rpc client req) in
  rpc (Mbac_serve.Protocol.Decide { criterion = 0; load = 1.0; now = 0.0 });
  rpc (Mbac_serve.Protocol.Add { load = 1.0; now = 0.0 });
  rpc (Mbac_serve.Protocol.Decide { criterion = 0; load = 100.0; now = 1.0 });
  rpc (Mbac_serve.Protocol.Log_decision { criterion = 0; admit = false });
  rpc (Mbac_serve.Protocol.Subtract { load = 1.0; now = 2.0 });
  rpc Mbac_serve.Protocol.Stats;
  Mbac_serve.Client.close client

let registered_metrics () =
  Shard.reset_current ();
  (* window gauges only exist on --series-out runs *)
  Timeseries.set_enabled true;
  Timeseries.set_interval 50.0;
  Fun.protect
    ~finally:(fun () ->
      Timeseries.set_enabled false;
      Timeseries.set_interval 100.0;
      Shard.reset_current ())
    (fun () ->
      run_continuous ~link:`Bufferless ~seed:42;
      run_continuous ~link:(`Buffered 0.2) ~seed:43;
      run_impulsive ~seed:44;
      run_parallel_paths ();
      run_splitting ~seed:45;
      run_serve_paths ();
      run_network ~seed:46;
      List.map
        (fun (name, value) ->
          let kind =
            match value with
            | Snapshot.Counter _ -> "counter"
            | Snapshot.Sum _ -> "sum"
            | Snapshot.Gauge _ -> "gauge"
            | Snapshot.Histogram _ -> "histogram"
            | Snapshot.Qhistogram _ -> "quantile histogram"
          in
          (name, kind))
        (Snapshot.bindings (Snapshot.current ())))

(* ---------- the comparison ---------- *)

let kind_matches ~documented ~actual =
  (* the catalogue may append shape detail ("histogram [0, 20), 40
     bins"); require the documented kind to start with the actual kind
     word and not merely contain it *)
  String.length documented >= String.length actual
  && String.sub documented 0 (String.length actual) = actual
  && (String.length documented = String.length actual
     || documented.[String.length actual] = ' ')

let test_catalogue_matches_registry () =
  let documented = parse_catalogue (read_file "../OBSERVABILITY.md") in
  Alcotest.(check bool) "catalogue tables parsed" true
    (List.length documented > 20);
  let actual = registered_metrics () in
  let diff = Buffer.create 256 in
  List.iter
    (fun (name, kind) ->
      match List.assoc_opt name documented with
      | None ->
          Buffer.add_string diff
            (Printf.sprintf
               "  metric %S (%s) is registered but has no catalogue row\n"
               name kind)
      | Some doc_kind ->
          if not (kind_matches ~documented:doc_kind ~actual:kind) then
            Buffer.add_string diff
              (Printf.sprintf
                 "  metric %S: catalogue says %S, registry says %S\n" name
                 doc_kind kind))
    actual;
  List.iter
    (fun (name, kind) ->
      if not (List.mem_assoc name actual) then
        Buffer.add_string diff
          (Printf.sprintf
             "  catalogue row %S (%s) matches no registered metric\n" name
             kind))
    documented;
  if Buffer.length diff > 0 then
    Alcotest.failf
      "OBSERVABILITY.md metric catalogue is out of sync with the registry:\n%s"
      (Buffer.contents diff)

let suite =
  [ ( "catalogue",
      [ slow_test "OBSERVABILITY.md catalogue matches the registry"
          test_catalogue_matches_registry ] ) ]
