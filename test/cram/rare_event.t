Rare-event splitting determinism gate: the multilevel-splitting engine
derives every clone trial's stream from (seed, level, trial index) and
fans trials out in jobs-independent chunks, so its output — estimate,
per-level statistics, event counts — must be byte-identical for every
worker count.

Pin the domain cap so --jobs 4 spawns real worker domains even on a
narrow runner (the pool otherwise clamps to the core count):

  $ export MBAC_DOMAIN_CAP=4

  $ mbac_sim --rare-event --seed 7 -n 30 --t-h 50 --rare-trials 128 --rare-levels 3 --rare-pilot-time 300 --jobs 1 | tee rare.golden
  system: { n=30; mu=1; sigma=0.3; T_h=50; T_c=1; p_q=0.001 | c=30 alpha_q=3.09 T~_h=9.129 gamma=2.739 }
  controller: robust[T_m=9.13,alpha_ce=3.29], source: rcbr, rare-event splitting: levels=3 base=0.25 trials=128 pilot=300
  splitting: p_f = 0.0003257 (95% rel CI half-width 0.68)
  mean load 24.62, base 25.96, levels 3, excursion rate 0.13 (39 excursions)
  mean overflow time 0.1173 over 128 top trials
  level 1: threshold 28.65 p = 0.1953 (25/128, pool 39, events 1755)
  level 2: threshold 30 p = 0.1094 (14/128, pool 25, events 2962)
  pilot: 10765 events, direct p_f 3.177e-05
  total events 19036, truncated trials 0
  theory (eqn 37 at this T_m): 0.001504

  $ mbac_sim --rare-event --seed 7 -n 30 --t-h 50 --rare-trials 128 --rare-levels 3 --rare-pilot-time 300 --jobs 4 > rare.jobs4
  $ cmp rare.golden rare.jobs4 && echo byte-identical
  byte-identical

The splitting telemetry (trial counters, level-crossing counters) is
sharded per domain and merged in submission order, so metric snapshots
are jobs-invariant too:

  $ mbac_sim --rare-event --seed 7 -n 30 --t-h 50 --rare-trials 128 --rare-levels 3 --rare-pilot-time 300 --jobs 1 --metrics-out m1.json > /dev/null
  $ mbac_sim --rare-event --seed 7 -n 30 --t-h 50 --rare-trials 128 --rare-levels 3 --rare-pilot-time 300 --jobs 4 --metrics-out m4.json > /dev/null
  $ cmp m1.json m4.json && echo metrics-identical
  metrics-identical

The splitting counters actually fire:

  $ grep -c "splitting_trials_total" m1.json
  1
