The serving engine's determinism contract: a fixed-seed, single-threaded
loadgen replay produces a byte-identical decision log and summary on
every run and on every transport (the in-process client speaks the same
wire frames as a socket peer).  Wall-clock latency metrics are exempt —
they never touch the decision log or stdout.

  $ mbac_loadgen --inproc --seed 42 --requests 2000 --capacity 50 \
  >   --criteria ce:0.01,hoeffding:0.01:2.0 --estimator ewma:100 \
  >   --measure-every 16 --decision-log d1.jsonl > run1.out
  $ mbac_loadgen --inproc --seed 42 --requests 2000 --capacity 50 \
  >   --criteria ce:0.01,hoeffding:0.01:2.0 --estimator ewma:100 \
  >   --measure-every 16 --decision-log d2.jsonl > run2.out
  $ cmp d1.jsonl d2.jsonl && echo log-identical
  log-identical
  $ cmp run1.out run2.out && echo stdout-identical
  stdout-identical
  $ cat run1.out
  requests sent      5663
  decide requests    2000
  admitted           850
  rejected           1150
  departures         812
  flows in system    38
  admitted load      36.411696
  capacity           50.000000

The same workload through a Unix-socket daemon: the daemon owns the
decision log, and it must match the in-process log byte for byte.

  $ mbac_serve --socket mbac.sock --capacity 50 \
  >   --criteria ce:0.01,hoeffding:0.01:2.0 --estimator ewma:100 \
  >   --measure-every 16 --decision-log dsock.jsonl &
  $ mbac_loadgen --socket mbac.sock --seed 42 --requests 2000 \
  >   --criteria ce:0.01,hoeffding:0.01:2.0 --shutdown > sock.out
  $ wait
  $ cmp d1.jsonl dsock.jsonl && echo socket-log-identical
  socket-log-identical
  $ cmp run1.out sock.out && echo socket-stdout-identical
  socket-stdout-identical

The log is JSONL with a dense server-assigned sequence number:

  $ head -2 d1.jsonl
  {"seq":0,"criterion":"hoeffding:0.01:2.0","admit":true,"flows":0}
  {"seq":1,"criterion":"hoeffding:0.01:2.0","admit":true,"flows":1}
  $ wc -l < d1.jsonl
  2000

mbac_report summarizes the decision log per criterion (deterministic,
so the numbers are part of this test):

  $ mbac_report --serve-log d1.jsonl
  == Serve decision log d1.jsonl: 2000 decisions, 2 criteria ==
    flows in system: min 0 max 46
    ce:0.01: decisions 968  admits 826  admit rate 0.8533  mean flows 39.8
    hoeffding:0.01:2.0: decisions 1032  admits 24  admit rate 0.0233  mean flows 39.7

A corrupted log is rejected, not glossed over:

  $ sed 's/"seq":1,/"seq":9,/' d1.jsonl > corrupt.jsonl
  $ mbac_report --serve-log corrupt.jsonl 2>&1 | head -1
  mbac_report: corrupt.jsonl:2: seq 9 out of order (expected 1)

Latency and throughput metrics ride the standard telemetry surface;
their values are wall-clock (nondeterministic), so only the schema is
checked here, via mbac_report's validating parser:

  $ mbac_loadgen --inproc --seed 42 --requests 500 --capacity 50 \
  >   --criteria ce:0.01 --metrics-out m.json --trace-out t.jsonl > /dev/null
  $ mbac_report --metrics m.json > /dev/null && echo metrics-schema-ok
  metrics-schema-ok
  $ grep -c '"serve_decision_latency_seconds"' m.json
  1
  $ grep -o '"kind":"serve_conn","peer":"inproc","requests":[0-9]*' t.jsonl
  "kind":"serve_conn","peer":"inproc","requests":1501

Transport misconfiguration is a usage error:

  $ mbac_loadgen --seed 42 2>&1 | head -1
  mbac_loadgen: pick a transport: --socket PATH or --inproc

bench --serve --toy exercises the serving gate end to end (numbers are
wall-clock; only the recorded shape is checked):

  $ mbac_bench --serve --toy --json BENCH.json > /dev/null
  $ grep -c '"serve":{"toy":true,"decide_requests":200000' BENCH.json
  1
  $ grep -c '"serve_decisions_per_sec":' BENCH.json
  1
