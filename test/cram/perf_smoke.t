Perf-smoke gate: hot-path refactors must not change a single byte of
simulation output.  Tiny fixed-seed runs whose golden output is
committed below, re-checked at --jobs 1 and --jobs 4 (the determinism
contract says pool width never changes results).

Pin the domain cap so --jobs 4 spawns real worker domains even on a
narrow runner (the pool otherwise clamps to the core count):

  $ export MBAC_DOMAIN_CAP=4

A continuous-load replication pair:

  $ mbac_sim --seed 7 --reps 2 --t-h 50 --max-events 50000 --jobs 1 | tee sim.golden
  system: { n=100; mu=1; sigma=0.3; T_h=50; T_c=1; p_q=0.001 | c=100 alpha_q=3.09 T~_h=5 gamma=1.5 }
  controller: robust[T_m=5,alpha_ce=3.31], source: rcbr, replications: 2
  --- replication 0 ---
  p_f=0.0003281 (fit, ci_rel=nan) util=0.903 mean_flows=90.2 load=90.30±2.85 adm=475 dep=386 t=214 ev=20000
  --- replication 1 ---
  p_f=5.764e-05 (fit, ci_rel=nan) util=0.901 mean_flows=90.4 load=90.11±2.56 adm=478 dep=388 t=212 ev=20000
  across 2 replications (batch means, 95% CI): p_f = 0.0001929 +- 0.0017, utilization = 0.902 +- 0.012
  theory (eqn 37 at this T_m): 0.001061

  $ mbac_sim --seed 7 --reps 2 --t-h 50 --max-events 50000 --jobs 4 > sim.jobs4
  $ cmp sim.golden sim.jobs4 && echo byte-identical
  byte-identical

An impulsive-load experiment (exercises the burst driver):

  $ experiments --run prop31 --seed 7 --jobs 1 | tee exp.golden
  
  === prop31: Fluctuation of the admitted count M_0 (impulsive load) ===
      n  E[(M0-n)/sqrt n] theory     sim  Std theory    sim
  ---------------------------------------------------------
    100                   -0.927  -0.935         0.3  0.283
    400                   -0.927  -0.944         0.3  0.287
  Paper: M_0 ~ n - (sigma/mu)(Y_0 + alpha_q) sqrt n; the standardized mean and std should match the theory columns.

  $ experiments --run prop31 --seed 7 --jobs 4 > exp.jobs4
  $ cmp exp.golden exp.jobs4 && echo byte-identical
  byte-identical

The rare-event gate at toy sizes (fixed seeds, so the estimates and
event counts are part of the golden; the 20x ratio gate itself only
applies to the full-size release run):

  $ mbac_bench --rare --toy
  
  === Rare-event gate (multilevel splitting vs naive MC) [toy] ===
    naive MC:      p_f = 0.0004502  ci_rel = 0.432    (400000 events)
    splitting:     p_f = 0.0006388  ci_rel = 0.448    (37135 events, 256 trials/level)
    theory (eqn 37): 0.001504;  events ratio (naive at ci_rel = 0.5 / splitting): x10.8
  
  bench: wrote BENCH.json
  bench: done.


