Telemetry determinism: metric snapshots and event traces are aggregated
from per-task shards merged in submission order, so --metrics-out and
--trace-out are byte-identical for every --jobs value (the acceptance
pair is jobs 1 vs jobs 4).

Pin the domain cap so --jobs 4 spawns real worker domains even on a
narrow runner (the pool otherwise clamps to the core count):

  $ export MBAC_DOMAIN_CAP=4

  $ experiments --run prop31 --seed 11 --jobs 1 \
  >   --metrics-out m1.json --trace-out t1.jsonl > run1.out
  $ experiments --run prop31 --seed 11 --jobs 4 \
  >   --metrics-out m4.json --trace-out t4.jsonl > run4.out
  $ cmp run1.out run4.out && echo stdout-identical
  stdout-identical
  $ cmp m1.json m4.json && echo metrics-identical
  metrics-identical
  $ cmp t1.jsonl t4.jsonl && echo trace-identical
  trace-identical

The snapshot is a JSON object; the trace is JSONL with the virtual time
and event kind leading every record:

  $ head -c 1 m1.json
  {
  $ head -1 t1.jsonl | cut -c 1-6
  {"t":0

A Prometheus rendering rides along with every metric snapshot:

  $ grep -c '^# TYPE' m1.json.prom > /dev/null && echo has-prometheus-types
  has-prometheus-types

--profile writes timings to stderr only: stdout, metrics, and trace
files are unchanged.

  $ experiments --run prop31 --seed 11 --jobs 4 --profile \
  >   --metrics-out mp.json --trace-out tp.jsonl > runp.out 2> profile.err
  $ cmp run1.out runp.out && echo stdout-identical
  stdout-identical
  $ cmp m1.json mp.json && echo metrics-identical
  metrics-identical
  $ cmp t1.jsonl tp.jsonl && echo trace-identical
  trace-identical
  $ grep -c '^profile: parallel.task' profile.err
  1

The same contract holds for parallel replications in mbac_sim:

  $ mbac_sim --reps 3 --t-h 50 --max-events 300000 --jobs 1 \
  >   --metrics-out sm1.json --trace-out st1.jsonl --trace-sample 500 > sim1.out
  $ mbac_sim --reps 3 --t-h 50 --max-events 300000 --jobs 4 \
  >   --metrics-out sm4.json --trace-out st4.jsonl --trace-sample 500 > sim4.out
  $ cmp sm1.json sm4.json && echo metrics-identical
  metrics-identical
  $ cmp st1.jsonl st4.jsonl && echo trace-identical
  trace-identical

The recorded formats self-check: mbac_report re-parses every line and
exits non-zero on any schema error.

  $ mbac_report --trace t1.jsonl --metrics m1.json > /dev/null && echo schemas-ok
  schemas-ok
  $ mbac_report --trace st1.jsonl > /dev/null && echo sim-schema-ok
  sim-schema-ok

Invalid sampling intervals are rejected:

  $ experiments --run prop31 --trace-sample 0
  experiments: --trace-sample must be >= 1
  Usage: experiments [OPTION]…
  Try 'experiments --help' for more information.
  [124]
