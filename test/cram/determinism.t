The determinism contract: every simulation stream is derived up front
from (--seed, task tag), never from the execution schedule, so the
worker-pool width must not change a single byte of output.

The pool clamps its width to the core count by default (oversubscribing
OCaml 5 domains is a net loss), so pin the cap up front: these checks
must spawn real multi-domain schedules even on a 1-core runner.

  $ export MBAC_DOMAIN_CAP=4

A simulation experiment, serial vs two worker domains:

  $ experiments --run prop31 --seed 11 --jobs 1 > jobs1.out
  $ experiments --run prop31 --seed 11 --jobs 2 > jobs2.out
  $ cmp jobs1.out jobs2.out && echo byte-identical
  byte-identical

Parallel replications of a single continuous-load run:

  $ mbac_sim --reps 3 --t-h 50 --max-events 300000 --jobs 1 > reps1.out
  $ mbac_sim --reps 3 --t-h 50 --max-events 300000 --jobs 2 > reps2.out
  $ cmp reps1.out reps2.out && echo byte-identical
  byte-identical

A different --jobs value must never silently change the seed-derived
results either — same seed, same numbers, whatever the pool width:

  $ experiments --run prop31 --seed 11 --jobs 3 > jobs3.out
  $ cmp jobs1.out jobs3.out && echo byte-identical
  byte-identical

Invalid pool widths are rejected:

  $ experiments --run prop31 --jobs 0
  experiments: --jobs must be >= 1
  Usage: experiments [OPTION]…
  Try 'experiments --help' for more information.
  [124]
  $ mbac_sim --jobs 0
  mbac_sim: --jobs must be >= 1
  Usage: mbac_sim [OPTION]…
  Try 'mbac_sim --help' for more information.
  [124]
