The sharded network simulator's determinism contract: byte-identical
output for every --shards and --jobs combination.  The golden run below
is the serial single-shard reference; every resharded / reparallelized
run must reproduce it exactly (only the banner's shard count differs,
so it is normalized away before comparing).

Pin the domain cap so the sharded runs spawn real worker domains even
on a narrow runner:

  $ export MBAC_DOMAIN_CAP=4

The serial single-shard reference on a 4-leaf star:

  $ mbac_sim network --topology star:4 -n 30 --t-h 100 --max-events 120000 --seed 9 --jobs 1 | tee net.golden
  network: 4 links, 6 routes, 1 shards, controller robust[T_m=18.3,alpha_ce=3.29], source rcbr
  network: admitted 631 blocked 173 departed 608 blocking 0.215174
  events 120027 sim_time 1450
  link 0: capacity 30 p_f 0.000418842 (gaussian-fit) util 0.704513 load 21.1354+-2.65405 reserved 355 blocked 42 released 339 updates 29128 ovf 0
  link 1: capacity 30 p_f 2.11461e-05 (direct) util 0.709667 load 21.29+-2.9925 reserved 364 blocked 51 released 339 updates 29410 ovf 1
  link 2: capacity 30 p_f 0.000312681 (gaussian-fit) util 0.715328 load 21.4598+-2.49685 reserved 336 blocked 29 released 317 updates 29477 ovf 0
  link 3: capacity 30 p_f 0.00627934 (gaussian-fit) util 0.667042 load 20.0112+-4.00183 reserved 320 blocked 52 released 301 updates 28386 ovf 1

  $ sed 's/, [0-9]* shards,/, K shards,/' net.golden > net.ref

Two shards, whole-run barrier driver (jobs = shards):

  $ mbac_sim network --topology star:4 -n 30 --t-h 100 --max-events 120000 --seed 9 --shards 2 --jobs 2 | sed 's/, [0-9]* shards,/, K shards,/' > net.s2
  $ cmp net.ref net.s2 && echo byte-identical
  byte-identical

Four shards at full width, and the same four shards squeezed through a
two-domain pool (the per-window fallback driver):

  $ mbac_sim network --topology star:4 -n 30 --t-h 100 --max-events 120000 --seed 9 --shards 4 --jobs 4 | sed 's/, [0-9]* shards,/, K shards,/' > net.s4
  $ cmp net.ref net.s4 && echo byte-identical
  byte-identical

  $ mbac_sim network --topology star:4 -n 30 --t-h 100 --max-events 120000 --seed 9 --shards 4 --jobs 2 | sed 's/, [0-9]* shards,/, K shards,/' > net.s4j2
  $ cmp net.ref net.s4j2 && echo byte-identical
  byte-identical

An explicit topology file behaves like the generators (a tight transit
link blocks end-to-end and takes the blame):

  $ cat > tight.topo <<'EOF'
  > # ingress link, tight transit link
  > link 30
  > link 6
  > route 0.27 0 1
  > route 0.06 1
  > EOF
  $ mbac_sim network --topology-file tight.topo --t-h 100 --max-events 60000 --seed 11 --jobs 1
  network: 2 links, 2 routes, 1 shards, controller robust[T_m=10,alpha_ce=3.29], source rcbr
  network: admitted 286 blocked 2220 departed 311 blocking 0.885874
  events 60003 sim_time 7606.96
  link 0: capacity 30 p_f 4.88861e-89 (gaussian-fit) util 0.120223 load 3.60668+-1.32156 reserved 2088 blocked 0 released 2085 updates 23504 ovf 0
  link 1: capacity 6 p_f 0.00104316 (direct) util 0.600028 load 3.60017+-0.803036 reserved 288 blocked 2247 released 284 updates 27374 ovf 50
