The experiments CLI lists every registered experiment:

  $ experiments --list
  Available experiments:
    prop31     M_0 fluctuation under impulsive load
    prop33     certainty-equivalence penalty Q(alpha/sqrt 2)
    eqn21      transient overflow with finite holding times
    fig5       p_f vs memory window: theory and simulation
    fig6       adjusted target p_ce by inversion of eqn (38) [analysis]
    fig7       simulated p_f at the adjusted target
    fig9       p_f over T_m/T~_h x T_c (analysis grid) [analysis]
    fig10      simulated p_f over the Fig 9 grid
    fig11      LRD video, memoryless estimation
    fig12      LRD video, T_m = T~_h
    regimes    masking/repair regime closed forms [analysis]
    util40     utilization cost of conservatism (eqn 40)
    baselines  scheme comparison (extension)
    hetero     heterogeneous flows (§5.4 extension)
    aggregate  aggregate-only measurement (§7 extension)
    arrival    finite Poisson arrivals vs continuous load
    service    bufferless vs RCBR renegotiation vs buffered
    nonstat    non-stationary traffic vs estimator memory
    deeptail   deep-tail splitting sweeps (p_q = 1e-5)
    utility    utility-based QoS metrics (§7 extension)

Unknown experiments are rejected:

  $ experiments --run not-an-experiment
  experiments: unknown experiment "not-an-experiment"
  Usage: experiments [OPTION]…
  Try 'experiments --help' for more information.
  [124]

Analysis-only experiments run instantly and deterministically; fig6's
first row is the small-memory corner of the inversion:

  $ experiments --run fig6 | head -5
  
  === fig6: Adjusted target p_ce by inversion of eqn (38), p_q = 1e-3 ===
      T_m  n=100,T_h=1000  n=100,T_h=10000  n=1000,T_h=1000  n=1000,T_h=10000
  ---------------------------------------------------------------------------
      0.1           -8.62           -10.57            -7.63             -9.60


Trace generation produces well-formed CSV with the requested size:

  $ tracegen --frames 16 --seed 3 | head -3
  time,rate
  0.000000,1.15375032
  0.041667,0.655492611
  $ tracegen --frames 256 --renegotiate 24 -o trace.csv
  wrote trace.csv: 256 samples, mean 1.8695, std 0.3225, 10 renegotiations
