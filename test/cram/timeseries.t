Flight-recorder determinism: the windowed time series is keyed to
virtual time (burst index for the impulsive driver, simulated seconds
for the continuous-load simulator) and accumulated in per-task shards
merged in submission order — so --series-out is byte-identical for
every --jobs value, exactly like --trace-out and --metrics-out.

Pin the domain cap so --jobs 4 spawns real worker domains even on a
narrow runner:

  $ export MBAC_DOMAIN_CAP=4

  $ experiments --run prop31 --seed 11 --jobs 1 --series-interval 50 \
  >   --series-out s1.jsonl --trace-out t1.jsonl --metrics-out m1.json > run1.out
  $ experiments --run prop31 --seed 11 --jobs 4 --series-interval 50 \
  >   --series-out s4.jsonl --trace-out t4.jsonl --metrics-out m4.json > run4.out
  $ cmp run1.out run4.out && echo stdout-identical
  stdout-identical
  $ cmp s1.jsonl s4.jsonl && echo series-identical
  series-identical
  $ cmp t1.jsonl t4.jsonl && echo trace-identical
  trace-identical
  $ cmp m1.json m4.json && echo metrics-identical
  metrics-identical

The series is JSONL; every window line leads with the virtual-time
window end and the kind (prop31 sweeps two burst sizes for 2000
replications each: 40 windows of 50 bursts per cell):

  $ head -1 s1.jsonl | cut -c 1-22
  {"t":50,"kind":"window
  $ wc -l < s1.jsonl
  80

The offline analyzer summarizes the recorded trace and series, and
validates the schemas as it reads (its output is deterministic because
its inputs are):

  $ mbac_report --trace t1.jsonl --series s1.jsonl --metrics m1.json
  == Trace t1.jsonl: 4000 events ==
    burst                4000
  == Burst admissions ==
    n_offered=200: bursts 2000  mean m_0 90.64  mean admitted fraction 0.4532
    n_offered=800: bursts 2000  mean m_0 381.3  mean admitted fraction 0.4767
  == Series s1.jsonl: 80 windows ==
    impulsive-m0[n=200]: runs 1  windows 40  admitted/window 4532 +- 20
    impulsive-m0[n=800]: runs 1  windows 40  admitted/window 1.907e+04 +- 39
  == Metrics m1.json: 5 metrics ==

The same contract holds for the continuous-load simulator, whose
windows live on the simulated-time grid; the analyzer segments the
trace by run_start/run_end and derives estimator drift, overflow
inter-arrival/duration quantiles, and the windowed overflow
probability:

  $ mbac_sim --reps 3 --t-h 50 --max-events 300000 --seed 5 --jobs 1 \
  >   --series-out cs1.jsonl --series-interval 500 \
  >   --trace-out ct1.jsonl --trace-sample 500 > sim1.out
  $ mbac_sim --reps 3 --t-h 50 --max-events 300000 --seed 5 --jobs 4 \
  >   --series-out cs4.jsonl --series-interval 500 \
  >   --trace-out ct4.jsonl --trace-sample 500 > sim4.out
  $ cmp cs1.jsonl cs4.jsonl && echo series-identical
  series-identical
  $ cmp ct1.jsonl ct4.jsonl && echo trace-identical
  trace-identical

  $ mbac_report --trace ct1.jsonl --series cs1.jsonl
  == Trace ct1.jsonl: 2932 events ==
    decision             1836
    estimator             946
    overflow_end           72
    overflow_start         72
    run_end                 3
    run_start               3
  == Controller robust[T_m=5,alpha_ce=3.31] ==
    runs: 3  p_f: 0.0003727 +- 0.00017  utilization: 0.9019 +- 0.00013
    decisions: 1836  admit rate: 0.0158
    estimator: 946 samples  mu_hat 1.044 -> 1.039 (drift -0.00531)  mean 1.001 +- 0.031  sigma_hat mean 0.2993
    overflow episodes: 72
      inter-arrival: p50 0.2136  p90 518.8  p99 1329
      duration:      p50 0.01714  p90 0.1965  p99 10.14
  == Series cs1.jsonl: 21 windows ==
    robust[T_m=5,alpha_ce=3.31]: runs 3  windows 21  admitted/window 833.9 +- 2e+02  windowed p_f mean 0.001333 max 0.02031

--profile-out writes the span table as JSON without touching stdout:

  $ experiments --run prop31 --seed 11 --jobs 4 --profile-out prof.json \
  >   > runp.out 2> /dev/null
  $ cmp run1.out runp.out && echo stdout-identical
  stdout-identical
  $ head -c 1 prof.json
  {
  $ grep -c '"experiments.par_map"' prof.json
  1

The analyzer is also the schema self-check: malformed input exits
non-zero with a pointer to the offending line.

  $ echo 'not json' > bad.jsonl
  $ mbac_report --trace bad.jsonl
  mbac_report: bad.jsonl:1: offset 0: invalid literal (expected null)
  Usage: mbac_report [OPTION]…
  Try 'mbac_report --help' for more information.
  [124]
  $ echo '{"kind":"window"}' > noT.jsonl
  $ mbac_report --series noT.jsonl
  mbac_report: noT.jsonl:1: missing or mistyped "t" (number)
  Usage: mbac_report [OPTION]…
  Try 'mbac_report --help' for more information.
  [124]

Invalid window lengths are rejected up front:

  $ experiments --run prop31 --series-out x.jsonl --series-interval 0
  experiments: --series-interval must be finite and > 0
  Usage: experiments [OPTION]…
  Try 'experiments --help' for more information.
  [124]
