let () =
  Alcotest.run "mbac"
    (Test_special.suite @ Test_gaussian.suite @ Test_rng.suite
   @ Test_sample.suite @ Test_welford.suite @ Test_descriptive.suite
   @ Test_batch_means.suite @ Test_distributions.suite @ Test_histogram.suite
   @ Test_integrate.suite @ Test_roots.suite @ Test_fft.suite
   @ Test_fgn.suite @ Test_interp.suite @ Test_linalg.suite
   @ Test_sources.suite @ Test_trace.suite @ Test_event_queue.suite
   @ Test_parallel.suite
   @ Test_measurement.suite @ Test_core_basics.suite @ Test_estimator.suite
   @ Test_analysis.suite @ Test_controller.suite @ Test_sim_integration.suite
   @ Test_splitting.suite
   @ Test_impulsive_driver.suite @ Test_experiments.suite
   @ Test_ks_hurst.suite @ Test_extensions.suite
   @ Test_effective_bandwidth.suite @ Test_telemetry.suite
   @ Test_quantile_histogram.suite @ Test_timeseries.suite
   @ Test_serve_protocol.suite @ Test_serve.suite
   @ Test_network.suite @ Test_catalogue.suite)
