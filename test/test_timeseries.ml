(* The flight-recorder time series: window delta semantics, labels and
   run/window indices, and the jobs-invariance contract (windows
   recorded by parallel tasks concatenate in submission order, so the
   series is byte-identical for every pool width). *)

open Mbac_telemetry
open Test_util

module J = Json_parse

(* Enable the recorder around [f], with a fresh shard before and after
   so no series state leaks between tests (or into other suites). *)
let with_series ?(interval = 100.0) f =
  Shard.reset_current ();
  Timeseries.set_enabled true;
  Timeseries.set_interval interval;
  Fun.protect
    ~finally:(fun () ->
      Timeseries.set_enabled false;
      Timeseries.set_interval 100.0;
      Shard.reset_current ())
    f

let parse_lines s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun l ->
         match J.parse l with
         | Ok v -> v
         | Error e -> Alcotest.failf "unparseable series line %S: %s" l e)

let field name conv v =
  match Option.bind (J.member name v) conv with
  | Some x -> x
  | None -> Alcotest.failf "missing or mistyped field %S" name

let int_f name v = field name J.to_int v
let str_f name v = field name J.to_string v
let obj_f name v = field name J.to_obj v

let num_entry obj name =
  match List.assoc_opt name obj with
  | Some e -> J.to_float e
  | None -> None

let test_window_deltas () =
  with_series (fun () ->
      Timeseries.start_run ~label:"r";
      Metrics.inc ~by:3 "tsu_c";
      Metrics.add "tsu_s" 1.5;
      Metrics.set_gauge "tsu_g" 2.0;
      Metrics.observe_q "tsu_q" 4.0;
      Timeseries.emit_window ~t:10.0;
      Metrics.inc ~by:2 "tsu_c";
      Metrics.set_gauge "tsu_g" 7.0;
      Timeseries.emit_window ~t:20.0;
      match parse_lines (Timeseries.contents ()) with
      | [ w0; w1 ] ->
          Alcotest.(check string) "kind" "window" (str_f "kind" w0);
          Alcotest.(check string) "label" "r" (str_f "label" w0);
          Alcotest.(check int) "run" 0 (int_f "run" w0);
          Alcotest.(check int) "first window index" 0 (int_f "window" w0);
          Alcotest.(check int) "t is the window end" 10 (int_f "t" w0);
          Alcotest.(check (option int)) "counter delta" (Some 3)
            (Option.bind (num_entry (obj_f "counters" w0) "tsu_c")
               (fun x -> Some (int_of_float x)));
          check_close "sum delta" 1.5
            (Option.get (num_entry (obj_f "sums" w0) "tsu_s"));
          check_close "gauge current value" 2.0
            (Option.get (num_entry (obj_f "gauges" w0) "tsu_g"));
          (match List.assoc_opt "tsu_q" (obj_f "histograms" w0) with
          | Some h ->
              Alcotest.(check string) "histogram delta kind"
                "quantile_histogram" (str_f "kind" h);
              Alcotest.(check int) "histogram count delta" 1 (int_f "count" h)
          | None -> Alcotest.fail "first window misses the histogram delta");
          (* second window: only what changed since the boundary *)
          Alcotest.(check int) "window index advances" 1 (int_f "window" w1);
          Alcotest.(check (option int)) "counter delta, not total" (Some 2)
            (Option.bind (num_entry (obj_f "counters" w1) "tsu_c")
               (fun x -> Some (int_of_float x)));
          Alcotest.(check bool) "zero-delta sum omitted" true
            (num_entry (obj_f "sums" w1) "tsu_s" = None);
          check_close "gauge tracks the current value" 7.0
            (Option.get (num_entry (obj_f "gauges" w1) "tsu_g"));
          Alcotest.(check bool) "unchanged histogram omitted" true
            (List.assoc_opt "tsu_q" (obj_f "histograms" w1) = None)
      | lines -> Alcotest.failf "expected 2 window lines, got %d"
                   (List.length lines))

let test_label_override_and_runs () =
  with_series (fun () ->
      Timeseries.set_label "cell-tag";
      Timeseries.start_run ~label:"controller-name";
      Timeseries.emit_window ~t:5.0;
      Timeseries.start_run ~label:"controller-name";
      Timeseries.emit_window ~t:5.0;
      match parse_lines (Timeseries.contents ()) with
      | [ w0; w1 ] ->
          Alcotest.(check string) "override replaces the run label"
            "cell-tag" (str_f "label" w0);
          Alcotest.(check int) "second run bumps the run index" 1
            (int_f "run" w1);
          Alcotest.(check int) "window index resets per run" 0
            (int_f "window" w1)
      | lines -> Alcotest.failf "expected 2 window lines, got %d"
                   (List.length lines))

let test_empty_window_still_renders () =
  with_series (fun () ->
      (* no start_run, no activity: an implicit run 0 and an empty
         window line documenting that nothing happened *)
      Timeseries.emit_window ~t:1.0;
      match parse_lines (Timeseries.contents ()) with
      | [ w ] ->
          Alcotest.(check int) "implicit run 0" 0 (int_f "run" w);
          Alcotest.(check bool) "no deltas" true
            (obj_f "counters" w = [] && obj_f "sums" w = []
            && obj_f "histograms" w = [])
      | lines -> Alcotest.failf "expected 1 window line, got %d"
                   (List.length lines))

let test_disabled_is_inert () =
  Shard.reset_current ();
  Timeseries.start_run ~label:"ignored";
  Metrics.inc "tsu_off_c";
  Timeseries.emit_window ~t:1.0;
  Alcotest.(check string) "nothing recorded when disabled" ""
    (Timeseries.contents ());
  Shard.reset_current ()

let test_interval_validation () =
  List.iter
    (fun bad ->
      match Timeseries.set_interval bad with
      | () -> Alcotest.failf "interval %g accepted" bad
      | exception Invalid_argument _ -> ())
    [ 0.0; -1.0; nan; infinity ]

(* The determinism contract: whatever the pool width, per-task windows
   concatenate in submission order, so the recorded series is
   byte-identical to the serial one. *)
let test_jobs_invariant_series_qcheck =
  qcheck ~count:30 "series byte-identical for every pool width"
    QCheck.(pair (1 -- 10) (1 -- 6))
    (fun (n_tasks, jobs) ->
      let tasks =
        List.init n_tasks (fun i () ->
            Timeseries.start_run ~label:(Printf.sprintf "task%d" i);
            Metrics.inc ~by:(i + 1) "tsu_par_c";
            Metrics.observe_q "tsu_par_q" (float_of_int (i + 1));
            Timeseries.emit_window ~t:(float_of_int (i + 1));
            Metrics.inc ~by:1 "tsu_par_c";
            Timeseries.emit_window ~t:(float_of_int (i + 2)))
      in
      let run jobs =
        with_series (fun () ->
            ignore (Mbac_sim.Parallel.run_tasks ~jobs tasks);
            Timeseries.contents ())
      in
      String.equal (run 1) (run jobs))

let suite =
  [ ( "timeseries",
      [ test "window deltas" test_window_deltas;
        test "label override and run indices" test_label_override_and_runs;
        test "empty window still renders" test_empty_window_still_renders;
        test "disabled recorder is inert" test_disabled_is_inert;
        test "interval validation" test_interval_validation;
        test_jobs_invariant_series_qcheck ] ) ]
