(* Video gateway: the workload that motivates the paper's introduction.

   VBR-compressed video is exactly the traffic users cannot specify a
   priori: long-range-dependent, scene-driven, with slow time-scale
   variation that leaky buckets can't describe.  This example builds a
   gateway multiplexing "Starwars-like" LRD video flows (synthetic trace,
   RCBR-renegotiated) onto one link, and compares a naive memoryless
   MBAC against the paper's memory-window design.

   Run with: dune exec examples/video_gateway.exe *)

let () =
  (* 1. Synthesise the video library: a long LRD trace (Hurst 0.85,
     skewed marginal, scene shifts) renegotiated into piecewise-CBR once
     per second at the 95th percentile — the RCBR service model. *)
  let trng = Mbac_stats.Rng.create ~seed:7 in
  let raw =
    Mbac_traffic.Mpeg_synth.generate trng
      (Mbac_traffic.Mpeg_synth.default_params ~mean_rate:1.5)
      ~frames:131072
  in
  let trace =
    Mbac_traffic.Renegotiate.segments ~segment_len:24 ~percentile:0.95 raw
  in
  Format.printf
    "video trace: %d samples (%.0f time units), mean %.3f Mb/s, std %.3f, \
     %d renegotiations, acf(24 frames) = %.3f@."
    (Mbac_traffic.Trace.length trace)
    (Mbac_traffic.Trace.duration trace)
    (Mbac_traffic.Trace.mean trace)
    (sqrt (Mbac_traffic.Trace.variance trace))
    (Mbac_traffic.Renegotiate.renegotiation_count trace)
    (Mbac_traffic.Trace.autocorrelation trace ~max_lag:24).(24);

  (* 2. Gateway: capacity for ~80 average movies; mean session 20 min
     (1200 time units); QoS: rate renegotiations fail < 0.1% of time. *)
  let mu = Mbac_traffic.Trace.mean trace in
  let sigma = sqrt (Mbac_traffic.Trace.variance trace) in
  let n = 80.0 in
  let p = Mbac.Params.make ~n ~mu ~sigma ~t_h:1200.0 ~t_c:1.0 ~p_q:1e-3 in
  let capacity = Mbac.Params.capacity p in
  let t_h_tilde = Mbac.Params.t_h_tilde p in
  Format.printf "gateway: capacity %.1f Mb/s (~%g flows), T~_h = %.1f@."
    capacity n t_h_tilde;

  (* 3. Flows play the trace from independent random offsets. *)
  let make_source rng ~start =
    Mbac_traffic.Trace_source.create rng trace ~start
  in

  (* 4. Compare memoryless vs memory-window MBAC on this LRD traffic. *)
  let simulate name t_m =
    let controller =
      Mbac.Controller.with_memory ~capacity ~p_ce:p.Mbac.Params.p_q ~t_m
    in
    let batch = 2.0 *. Float.max t_h_tilde (Float.max t_m 1.0) in
    let cfg =
      { (Mbac_sim.Continuous_load.default_config ~capacity
           ~holding_time_mean:p.Mbac.Params.t_h ~target_p_q:p.Mbac.Params.p_q)
        with
        Mbac_sim.Continuous_load.warmup = 5.0 *. batch;
        batch_length = batch;
        max_events = 3_000_000 }
    in
    let r =
      Mbac_sim.Continuous_load.run
        (Mbac_stats.Rng.create ~seed:21)
        cfg ~controller ~make_source
    in
    Format.printf "%-28s p_f = %.2e, utilization = %.1f%%, %.0f flows@." name
      r.Mbac_sim.Continuous_load.p_f
      (100.0 *. r.Mbac_sim.Continuous_load.utilization)
      r.Mbac_sim.Continuous_load.mean_flows
  in
  simulate "memoryless MBAC:" 0.0;
  simulate "memory window (T_m=T~_h):" t_h_tilde;
  Format.printf
    "Even on long-range-dependent video, the T_m = T~_h window keeps the \
     renegotiation-failure rate at the target (paper, Figs 11-12).@."
