(* Quickstart: admission control on one bufferless link.

   We build the paper's canonical system — a link holding ~100 average
   flows, RCBR traffic, exponential holding times — attach the robust
   MBAC (memory window T_m = T~_h, adjusted certainty-equivalent target),
   offer it infinite load, and check the delivered QoS against the
   target.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the system: capacity for n = 100 mean-rate units, flows
     with sigma/mu = 0.3, mean holding time 1000, traffic correlation
     time-scale 1, and a QoS target of 1e-3. *)
  let p =
    Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0
      ~p_q:1e-3
  in
  Format.printf "system: %a@." Mbac.Params.pp p;

  (* 2. Build the paper's robust controller.  It bundles the T_m = T~_h
     memory window with the adjusted target from inverting eqn (38). *)
  let controller = Mbac.Controller.robust p in
  Format.printf "controller: %s@." (Mbac.Controller.name controller);

  (* 3. Traffic: the paper's RCBR sources (piecewise-constant rates,
     exponential renegotiation intervals, Gaussian marginal). *)
  let make_source rng ~start =
    Mbac_traffic.Rcbr.create rng
      (Mbac_traffic.Rcbr.default_params ~mu:p.Mbac.Params.mu)
      ~start
  in

  (* 4. Simulate under continuous (infinite) offered load. *)
  let batch = 2.0 *. Mbac.Params.t_h_tilde p in
  let cfg =
    { (Mbac_sim.Continuous_load.default_config
         ~capacity:(Mbac.Params.capacity p)
         ~holding_time_mean:p.Mbac.Params.t_h ~target_p_q:p.Mbac.Params.p_q)
      with
      Mbac_sim.Continuous_load.warmup = 5.0 *. batch;
      batch_length = batch;
      max_events = 4_000_000 }
  in
  let rng = Mbac_stats.Rng.create ~seed:1 in
  let r = Mbac_sim.Continuous_load.run rng cfg ~controller ~make_source in

  (* 5. Report. *)
  Format.printf "result: %a@." Mbac_sim.Continuous_load.pp_result r;
  Format.printf "target p_q = %.1e, delivered p_f = %.2e -> %s@."
    p.Mbac.Params.p_q r.Mbac_sim.Continuous_load.p_f
    (if r.Mbac_sim.Continuous_load.p_f <= 3.0 *. p.Mbac.Params.p_q then
       "QoS satisfied"
     else "QoS violated");
  Format.printf
    "utilization %.1f%% (perfect-knowledge bound: %.1f%%)@."
    (100.0 *. r.Mbac_sim.Continuous_load.utilization)
    (100.0 *. Mbac.Utilization.perfect p /. Mbac.Params.capacity p)
