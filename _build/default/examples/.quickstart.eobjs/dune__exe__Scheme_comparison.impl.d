examples/scheme_comparison.ml: Float Format List Mbac Mbac_sim Mbac_stats Mbac_traffic
