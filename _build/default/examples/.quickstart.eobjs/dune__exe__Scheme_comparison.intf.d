examples/scheme_comparison.mli:
