examples/video_gateway.ml: Array Float Format Mbac Mbac_sim Mbac_stats Mbac_traffic
