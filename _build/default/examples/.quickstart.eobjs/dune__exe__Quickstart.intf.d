examples/quickstart.mli:
