examples/capacity_planning.ml: Format List Mbac
