examples/quickstart.ml: Format Mbac Mbac_sim Mbac_stats Mbac_traffic
