(* Capacity planning with the analysis formulas — no simulation.

   A network operator wants to know, before deployment:
   (a) how many flows a link can carry at a given QoS,
   (b) how aggressively the MBAC target must be adjusted for a given
       estimator memory (eqn 38 inverted), and
   (c) what that robustness costs in carried bandwidth (eqn 40).

   Run with: dune exec examples/capacity_planning.exe *)

let () =
  let mu = 1.0 and sigma = 0.3 in
  Format.printf
    "Link sizing at p_q = 1e-3 (mu = %g, sigma = %g, T_h = 1000, T_c = 1):@.@."
    mu sigma;

  (* (a) admissible flows and statistical multiplexing gain vs system size *)
  Format.printf "%8s %10s %12s %12s %10s@." "n" "m*" "peak-alloc"
    "mux gain" "util";
  List.iter
    (fun n ->
      let p = Mbac.Params.make ~n ~mu ~sigma ~t_h:1000.0 ~t_c:1.0 ~p_q:1e-3 in
      let m_star = Mbac.Criterion.m_star p in
      let peak_alloc =
        Mbac.Criterion.peak_rate_count ~capacity:(Mbac.Params.capacity p)
          ~peak:(mu +. (3.0 *. sigma))
      in
      Format.printf "%8.0f %10d %12d %12.2f %9.1f%%@." n m_star peak_alloc
        (float_of_int m_star /. float_of_int peak_alloc)
        (100.0 *. Mbac.Utilization.perfect p /. Mbac.Params.capacity p))
    [ 25.0; 100.0; 400.0; 1600.0 ];

  (* (b) the adjusted target across memory choices for one design point *)
  let p = Mbac.Params.make ~n:100.0 ~mu ~sigma ~t_h:1000.0 ~t_c:1.0 ~p_q:1e-3 in
  let t_h_tilde = Mbac.Params.t_h_tilde p in
  Format.printf
    "@.Adjusted CE target vs memory (n = 100, T~_h = %g, eqn 38 inverted):@."
    t_h_tilde;
  Format.printf "%10s %12s %14s %16s@." "T_m" "alpha_ce" "log10 p_ce"
    "bandwidth cost";
  List.iter
    (fun t_m ->
      let alpha_ce = Mbac.Inversion.adjusted_alpha_ce ~t_m p in
      Format.printf "%10g %12.3f %14.2f %16.3f@." t_m alpha_ce
        (Mbac.Inversion.adjusted_log_p_ce ~t_m p /. log 10.0)
        (Mbac.Utilization.robustness_cost p ~t_m))
    [ 1.0; 10.0; t_h_tilde; 10.0 *. t_h_tilde ];

  (* (c) the paper's recommended design point *)
  let t_m = Mbac.Window.recommended_t_m p in
  Format.printf
    "@.Recommended design: T_m = T~_h = %g, p_ce = %.3e; predicted p_f \
     across unknown T_c in [0.01, 1000]: worst case %.2e (target %.0e).@."
    t_m
    (Mbac.Inversion.adjusted_p_ce ~t_m p)
    (Mbac.Window.worst_case_overflow p ~t_m
       ~t_cs:[| 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 |])
    p.Mbac.Params.p_q;
  Format.printf
    "Robust across two decades of traffic correlation: %b@."
    (Mbac.Window.is_robust p ~t_m
       ~t_cs:[| 0.01; 0.1; 1.0; 10.0; 100.0; 1000.0 |])
