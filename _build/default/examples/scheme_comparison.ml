(* Scheme comparison: run every admission-control scheme in the library
   on one workload and print the QoS-vs-utilization frontier.

   Run with: dune exec examples/scheme_comparison.exe *)

let () =
  let p =
    Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0
      ~p_q:1e-2
  in
  let capacity = Mbac.Params.capacity p in
  let p_ce = p.Mbac.Params.p_q in
  let t_h_tilde = Mbac.Params.t_h_tilde p in
  let peak = p.Mbac.Params.mu +. (3.0 *. p.Mbac.Params.sigma) in
  let make_source rng ~start =
    Mbac_traffic.Rcbr.create rng
      (Mbac_traffic.Rcbr.default_params ~mu:p.Mbac.Params.mu)
      ~start
  in
  let schemes =
    [ (Mbac.Controller.perfect p, 0.0);
      (Mbac.Controller.memoryless ~capacity ~p_ce, 0.0);
      (Mbac.Controller.with_memory ~capacity ~p_ce ~t_m:t_h_tilde, t_h_tilde);
      (Mbac.Controller.robust p, t_h_tilde);
      ( Mbac.Controller.measured_sum ~capacity ~utilization_target:0.9
          ~window:t_h_tilde ~peak,
        t_h_tilde );
      ( Mbac.Controller.hoeffding ~capacity ~p_ce ~peak
          (Mbac.Estimator.ewma ~t_m:t_h_tilde),
        t_h_tilde );
      ( Mbac.Controller.gkk ~capacity ~p_ce ~prior_mu:p.Mbac.Params.mu
          ~prior_var:(p.Mbac.Params.sigma ** 2.0) ~prior_weight:0.5,
        0.0 );
      (Mbac.Controller.peak_rate ~capacity ~peak, 0.0) ]
  in
  Format.printf "workload: %a@.@." Mbac.Params.pp p;
  Format.printf "%-34s %12s %8s %10s@." "scheme" "p_f" "meets?" "util";
  List.iter
    (fun (controller, t_m) ->
      let batch = 2.0 *. Float.max t_h_tilde (Float.max t_m 1.0) in
      let cfg =
        { (Mbac_sim.Continuous_load.default_config ~capacity
             ~holding_time_mean:p.Mbac.Params.t_h
             ~target_p_q:p.Mbac.Params.p_q)
          with
          Mbac_sim.Continuous_load.warmup = 5.0 *. batch;
          batch_length = batch;
          max_events = 2_000_000 }
      in
      let r =
        Mbac_sim.Continuous_load.run
          (Mbac_stats.Rng.create ~seed:5)
          cfg ~controller ~make_source
      in
      Format.printf "%-34s %12.3e %8s %9.1f%%@."
        (Mbac.Controller.name controller)
        r.Mbac_sim.Continuous_load.p_f
        (if r.Mbac_sim.Continuous_load.p_f <= 2.0 *. p.Mbac.Params.p_q then
           "yes"
         else "NO")
        (100.0 *. r.Mbac_sim.Continuous_load.utilization))
    schemes;
  Format.printf
    "@.The frontier: schemes either miss the QoS (memoryless CE) or pay \
     utilization for safety (Hoeffding, peak-rate); the paper's robust \
     MBAC meets the target near the perfect-knowledge utilization.@."
