(** Special functions needed by the MBAC analysis: error functions, log-gamma,
    and regularized incomplete beta/gamma functions.

    All functions operate on IEEE doubles.  Accuracy targets (verified by the
    test suite against high-precision reference values): [erf]/[erfc] better
    than 1e-13 relative over the ranges exercised by the admission-control
    formulas; incomplete beta/gamma better than 1e-10. *)

val erf : float -> float
(** [erf x] is the error function (2/sqrt pi) int_0^x exp(-t^2) dt. *)

val erfc : float -> float
(** [erfc x = 1 - erf x], computed without cancellation for large [x]
    (usable down to [erfc 26] ~ 1e-296). *)

val log_erfc : float -> float
(** [log_erfc x = log (erfc x)], accurate even when [erfc x] underflows
    (valid for [x] up to ~1e4). *)

val lgamma : float -> float
(** [lgamma x] is log (Gamma x) for [x > 0] (Lanczos approximation). *)

val ibeta : a:float -> b:float -> float -> float
(** [ibeta ~a ~b x] is the regularized incomplete beta function I_x(a,b)
    for [0 <= x <= 1], [a, b > 0]. *)

val igamma_p : a:float -> float -> float
(** [igamma_p ~a x] is the regularized lower incomplete gamma P(a,x)
    for [x >= 0], [a > 0]. *)

val igamma_q : a:float -> float -> float
(** [igamma_q ~a x = 1 - igamma_p ~a x], the upper tail. *)
