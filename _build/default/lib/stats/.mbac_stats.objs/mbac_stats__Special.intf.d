lib/stats/special.mli:
