lib/stats/descriptive.mli:
