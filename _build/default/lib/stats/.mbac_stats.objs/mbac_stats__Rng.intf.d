lib/stats/rng.mli:
