lib/stats/histogram.mli:
