lib/stats/batch_means.ml: Array Descriptive Distributions Float List
