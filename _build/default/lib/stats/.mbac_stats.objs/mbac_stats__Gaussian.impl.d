lib/stats/gaussian.ml: Array Special
