lib/stats/gaussian.mli:
