lib/stats/distributions.ml: Gaussian Special
