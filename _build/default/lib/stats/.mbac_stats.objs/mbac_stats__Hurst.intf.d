lib/stats/hurst.mli:
