lib/stats/welford.ml:
