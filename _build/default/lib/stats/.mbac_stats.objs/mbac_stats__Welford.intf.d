lib/stats/welford.mli:
