lib/stats/distributions.mli:
