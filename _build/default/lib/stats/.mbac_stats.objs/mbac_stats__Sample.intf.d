lib/stats/sample.mli: Rng
