type t = {
  batch_length : float;
  mutable current_weight : float;
  mutable current_sum : float; (* weighted sum within the open batch *)
  mutable batches : float list; (* completed batch means, newest first *)
  mutable n_batches : int;
}

let create ~batch_length =
  if batch_length <= 0.0 then
    invalid_arg "Batch_means.create: requires batch_length > 0";
  { batch_length; current_weight = 0.0; current_sum = 0.0; batches = []; n_batches = 0 }

let close_batch t =
  t.batches <- (t.current_sum /. t.current_weight) :: t.batches;
  t.n_batches <- t.n_batches + 1;
  t.current_weight <- 0.0;
  t.current_sum <- 0.0

let rec add t ~weight x =
  if weight < 0.0 then invalid_arg "Batch_means.add: negative weight";
  if weight > 0.0 then begin
    let room = t.batch_length -. t.current_weight in
    if weight < room then begin
      t.current_weight <- t.current_weight +. weight;
      t.current_sum <- t.current_sum +. (weight *. x)
    end
    else begin
      (* Fill the batch exactly, close it, and spill the rest over. *)
      t.current_weight <- t.batch_length;
      t.current_sum <- t.current_sum +. (room *. x);
      close_batch t;
      let rest = weight -. room in
      if rest > 0.0 then add t ~weight:rest x
    end
  end

let completed_batches t = t.n_batches

let batch_means t = Array.of_list (List.rev t.batches)

let mean t =
  if t.n_batches = 0 then nan
  else List.fold_left ( +. ) 0.0 t.batches /. float_of_int t.n_batches

let half_width t ~confidence =
  if t.n_batches < 2 then infinity
  else begin
    let means = batch_means t in
    let s = Descriptive.std means in
    let df = float_of_int (t.n_batches - 1) in
    let tc =
      Distributions.Student_t.quantile ~df (1.0 -. ((1.0 -. confidence) /. 2.0))
    in
    tc *. s /. sqrt (float_of_int t.n_batches)
  end

let relative_half_width t ~confidence =
  let m = mean t in
  if Float.is_nan m || m = 0.0 then infinity
  else
    let hw = half_width t ~confidence in
    hw /. abs_float m
