let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty input")

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    ss /. float_of_int (n - 1)
  end

let std xs = sqrt (variance xs)

let min xs =
  check_nonempty "min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let quantile xs p =
  check_nonempty "quantile" xs;
  if p < 0.0 || p > 1.0 then invalid_arg "Descriptive.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let h = p *. float_of_int (n - 1) in
    let i = int_of_float (floor h) in
    let i = Stdlib.min i (n - 2) in
    let frac = h -. float_of_int i in
    sorted.(i) +. (frac *. (sorted.(i + 1) -. sorted.(i)))
  end

let median xs = quantile xs 0.5

let central_moment xs k =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) ** float_of_int k)) 0.0 xs
  /. float_of_int (Array.length xs)

let skewness xs =
  if Array.length xs < 3 then 0.0
  else begin
    let m2 = central_moment xs 2 in
    if m2 <= 0.0 then 0.0 else central_moment xs 3 /. (m2 ** 1.5)
  end

let kurtosis_excess xs =
  if Array.length xs < 4 then 0.0
  else begin
    let m2 = central_moment xs 2 in
    if m2 <= 0.0 then 0.0 else (central_moment xs 4 /. (m2 *. m2)) -. 3.0
  end

let autocovariance xs k =
  let n = Array.length xs in
  if k < 0 || k >= n then invalid_arg "Descriptive.autocovariance: bad lag";
  let m = mean xs in
  let acc = ref 0.0 in
  for i = 0 to n - 1 - k do
    acc := !acc +. ((xs.(i) -. m) *. (xs.(i + k) -. m))
  done;
  !acc /. float_of_int n

let autocorrelation xs k =
  let c0 = autocovariance xs 0 in
  if c0 <= 0.0 then 0.0 else autocovariance xs k /. c0

let acf xs ~max_lag =
  let n = Array.length xs in
  let max_lag = Stdlib.min max_lag (n - 1) in
  Array.init (max_lag + 1) (fun k -> autocorrelation xs k)
