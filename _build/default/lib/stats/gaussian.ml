let pi = 4.0 *. atan 1.0
let sqrt2 = sqrt 2.0
let inv_sqrt_2pi = 1.0 /. sqrt (2.0 *. pi)

let phi x = inv_sqrt_2pi *. exp (-0.5 *. x *. x)
let cdf x = 0.5 *. Special.erfc (-.x /. sqrt2)
let q x = 0.5 *. Special.erfc (x /. sqrt2)
let log_q x = log 0.5 +. Special.log_erfc (x /. sqrt2)
let q_tail_approx x = phi x /. x

(* Acklam's rational approximation to the inverse normal cdf (abs error
   ~1.15e-9), then Halley refinement steps using the accurate [q]. *)
let acklam_norminv p =
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let tail_value u =
    let num =
      ((((((c.(0) *. u) +. c.(1)) *. u) +. c.(2)) *. u +. c.(3)) *. u +. c.(4))
      *. u +. c.(5)
    in
    let den =
      ((((d.(0) *. u) +. d.(1)) *. u +. d.(2)) *. u +. d.(3)) *. u +. 1.0
    in
    num /. den
  in
  let p_low = 0.02425 in
  let p_high = 1.0 -. p_low in
  if p < p_low then tail_value (sqrt (-2.0 *. log p))
  else if p <= p_high then begin
    let u = p -. 0.5 in
    let r = u *. u in
    let num =
      ((((((a.(0) *. r) +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r +. a.(5))
      *. u
    in
    let den =
      (((((b.(0) *. r) +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
      *. r +. 1.0
    in
    num /. den
  end
  else -.tail_value (sqrt (-2.0 *. log (1.0 -. p)))

let rec q_inv p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Gaussian.q_inv: requires 0 < p < 1";
  if p > 0.5 then
    (* Reflect into the accurate tail: 1 - p is exact for p in [0.5, 1]
       (Sterbenz), while q(x) - p would cancel catastrophically. *)
    -.q_inv (1.0 -. p)
  else begin
    (* q x = p  <=>  norminv(p) = -x. *)
    let x0 = -.acklam_norminv p in
    (* Halley step on f(x) = q(x) - p, with f' = -phi and f'' = x phi:
       u = (q x - p)/(-phi x);  x <- x - u / (1 + u*x/2). *)
    let refine x =
      let e = q x -. p in
      if e = 0.0 then x
      else
        let u = e /. -.phi x in
        x -. (u /. (1.0 +. (u *. x /. 2.0)))
    in
    refine (refine x0)
  end

let cdf_mean_sigma ~mu ~sigma x =
  if sigma <= 0.0 then invalid_arg "Gaussian.cdf_mean_sigma: requires sigma > 0";
  cdf ((x -. mu) /. sigma)

let overflow_probability ~capacity ~mean ~std =
  if std < 0.0 then invalid_arg "Gaussian.overflow_probability: std < 0"
  else if std = 0.0 then if mean > capacity then 1.0 else 0.0
  else q ((capacity -. mean) /. std)
