(** The standard Gaussian distribution in the paper's notation:
    density [phi], upper-tail probability [q] (the paper's Q-function,
    eqn (2)), and its inverse [q_inv] (the paper's alpha_q = Q^{-1}(p_q)). *)

val phi : float -> float
(** [phi x] is the N(0,1) density (1/sqrt(2 pi)) exp(-x^2/2) (eqn (1)). *)

val cdf : float -> float
(** [cdf x] is Pr(N(0,1) <= x). *)

val q : float -> float
(** [q x] is the complementary cdf Pr(N(0,1) > x) (eqn (2)).  Accurate in
    the far tail: usable down to [q 37] ~ 1e-300. *)

val log_q : float -> float
(** [log_q x = log (q x)], accurate even when [q x] underflows. *)

val q_inv : float -> float
(** [q_inv p] is the unique [x] with [q x = p], for [0 < p < 1].
    The paper's alpha_q.  Accurate to ~1e-13 relative via an Acklam
    initialisation refined by a Halley step.
    @raise Invalid_argument if [p] is outside (0,1). *)

val q_tail_approx : float -> float
(** [q_tail_approx x = phi x /. x], the classical tail approximation
    Q(x) ~ phi(x)/x used repeatedly in the paper's closed forms. *)

val cdf_mean_sigma : mu:float -> sigma:float -> float -> float
(** [cdf_mean_sigma ~mu ~sigma x] is Pr(N(mu, sigma^2) <= x). *)

val overflow_probability : capacity:float -> mean:float -> std:float -> float
(** [overflow_probability ~capacity ~mean ~std] is
    Pr(N(mean, std^2) > capacity) = Q((capacity - mean)/std) — the
    Gaussian-approximation overflow probability used throughout the paper.
    Returns [1.0] when [std = 0] and [mean > capacity], [0.0] when
    [std = 0] and [mean <= capacity]. *)
