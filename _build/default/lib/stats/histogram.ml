type t = {
  lo : float;
  hi : float;
  bins : int;
  width : float;
  counts : int array;
  mutable total : int;
  mutable under : int;
  mutable over : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: requires hi > lo";
  if bins <= 0 then invalid_arg "Histogram.create: requires bins > 0";
  { lo; hi; bins; width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0; total = 0; under = 0; over = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.under <- t.under + 1
  else if x >= t.hi then t.over <- t.over + 1
  else begin
    let i = int_of_float ((x -. t.lo) /. t.width) in
    let i = min i (t.bins - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let count t = t.total
let underflow t = t.under
let overflow t = t.over
let counts t = Array.copy t.counts

let bin_edges t =
  Array.init (t.bins + 1) (fun i -> t.lo +. (float_of_int i *. t.width))

let density t =
  if t.total = 0 then Array.make t.bins 0.0
  else
    Array.map
      (fun c -> float_of_int c /. (float_of_int t.total *. t.width))
      t.counts

let cdf_at t x =
  if t.total = 0 then 0.0
  else if x < t.lo then 0.0
  else begin
    let below = ref t.under in
    let full_bins = int_of_float ((x -. t.lo) /. t.width) in
    let full_bins = min full_bins t.bins in
    for i = 0 to full_bins - 1 do
      below := !below + t.counts.(i)
    done;
    let frac =
      if full_bins >= t.bins then 0.0
      else begin
        let bin_start = t.lo +. (float_of_int full_bins *. t.width) in
        (x -. bin_start) /. t.width *. float_of_int t.counts.(full_bins)
      end
    in
    (float_of_int !below +. frac) /. float_of_int t.total
  end
