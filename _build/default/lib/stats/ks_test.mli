(** One-sample Kolmogorov–Smirnov goodness-of-fit test.

    Used by the test-suite and diagnostics to check the functional-CLT
    assumption B.6 empirically: the scaled aggregate of many independent
    flows should be approximately Gaussian. *)

val statistic : cdf:(float -> float) -> float array -> float
(** [statistic ~cdf xs] is the KS statistic
    D_n = sup_x |F_n(x) - cdf(x)| of the sample against a continuous
    reference CDF.  @raise Invalid_argument on an empty sample. *)

val p_value : n:int -> float -> float
(** [p_value ~n d] is the asymptotic (Kolmogorov distribution) p-value of
    statistic [d] for sample size [n]:
    P(D > d) ~ 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 n d^2),
    with the Stephens finite-n correction
    d_eff = d (sqrt n + 0.12 + 0.11/sqrt n). *)

val test : cdf:(float -> float) -> alpha:float -> float array -> bool
(** [test ~cdf ~alpha xs] is [true] when the sample is {e consistent}
    with the reference distribution at level [alpha] (i.e. p >= alpha —
    failing to reject). *)
