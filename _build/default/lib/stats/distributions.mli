(** CDFs and quantiles for the distributions used by the test harness and
    the confidence-interval machinery. *)

module Student_t : sig
  val cdf : df:float -> float -> float
  (** @raise Invalid_argument if [df <= 0]. *)

  val quantile : df:float -> float -> float
  (** [quantile ~df p] for [0 < p < 1]; two-sided critical values come from
      [quantile ~df (1 -. alpha /. 2.)]. *)
end

module Chi_square : sig
  val cdf : df:float -> float -> float
  val quantile : df:float -> float -> float
end

module Exponential : sig
  val cdf : mean:float -> float -> float
  val quantile : mean:float -> float -> float
end

module Lognormal : sig
  val cdf : mu_log:float -> sigma_log:float -> float -> float
  val mean : mu_log:float -> sigma_log:float -> float
  val variance : mu_log:float -> sigma_log:float -> float
end
