(* least-squares slope of ys against xs *)
let slope xs ys =
  let n = float_of_int (Array.length xs) in
  let sx = Array.fold_left ( +. ) 0.0 xs /. n in
  let sy = Array.fold_left ( +. ) 0.0 ys /. n in
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i x ->
      num := !num +. ((x -. sx) *. (ys.(i) -. sy));
      den := !den +. ((x -. sx) *. (x -. sx)))
    xs;
  !num /. !den

let log_block_sizes ~min_block ~max_block ~n_scales =
  let lo = log (float_of_int min_block) and hi = log (float_of_int max_block) in
  let sizes =
    Array.init n_scales (fun i ->
        let t = float_of_int i /. float_of_int (n_scales - 1) in
        int_of_float (exp (lo +. (t *. (hi -. lo)))))
  in
  (* dedupe while preserving order *)
  let seen = Hashtbl.create 16 in
  Array.of_list
    (List.filter
       (fun m ->
         if Hashtbl.mem seen m then false
         else begin
           Hashtbl.add seen m ();
           true
         end)
       (Array.to_list sizes))

let block_means xs m =
  let k = Array.length xs / m in
  Array.init k (fun i ->
      let acc = ref 0.0 in
      for j = i * m to ((i + 1) * m) - 1 do
        acc := !acc +. xs.(j)
      done;
      !acc /. float_of_int m)

let aggregated_variance ?(min_block = 4) ?(n_scales = 12) xs =
  let n = Array.length xs in
  if n < 8 * min_block then
    invalid_arg "Hurst.aggregated_variance: series too short";
  let max_block = n / 8 in
  let blocks = log_block_sizes ~min_block ~max_block ~n_scales in
  let log_m = Array.map (fun m -> log (float_of_int m)) blocks in
  let log_v =
    Array.map
      (fun m -> log (Descriptive.variance (block_means xs m) +. 1e-300))
      blocks
  in
  let s = slope log_m log_v in
  (* Var(X^(m)) ~ m^{2H-2} *)
  (s +. 2.0) /. 2.0

let rs_statistic xs =
  (* R/S of one block: range of the mean-adjusted cumulative sum over the
     sample standard deviation *)
  let n = Array.length xs in
  let mean = Descriptive.mean xs in
  let cum = ref 0.0 and lo = ref 0.0 and hi = ref 0.0 in
  Array.iter
    (fun x ->
      cum := !cum +. (x -. mean);
      if !cum < !lo then lo := !cum;
      if !cum > !hi then hi := !cum)
    xs;
  let s =
    sqrt
      (Array.fold_left (fun a x -> a +. ((x -. mean) *. (x -. mean))) 0.0 xs
      /. float_of_int n)
  in
  if s <= 0.0 then nan else (!hi -. !lo) /. s

let rescaled_range ?(min_block = 8) ?(n_scales = 10) xs =
  let n = Array.length xs in
  if n < 8 * min_block then invalid_arg "Hurst.rescaled_range: series too short";
  let max_block = n / 4 in
  let blocks = log_block_sizes ~min_block ~max_block ~n_scales in
  let points =
    Array.to_list blocks
    |> List.filter_map (fun m ->
           (* average R/S over the disjoint blocks of size m *)
           let k = n / m in
           let acc = ref 0.0 and cnt = ref 0 in
           for i = 0 to k - 1 do
             let rs = rs_statistic (Array.sub xs (i * m) m) in
             if not (Float.is_nan rs) then begin
               acc := !acc +. rs;
               incr cnt
             end
           done;
           if !cnt = 0 then None
           else Some (log (float_of_int m), log (!acc /. float_of_int !cnt)))
  in
  let xs' = Array.of_list (List.map fst points) in
  let ys' = Array.of_list (List.map snd points) in
  slope xs' ys'
