let pi = 4.0 *. atan 1.0
let two_over_sqrt_pi = 2.0 /. sqrt pi

(* Maclaurin series for erf, used on |x| <= 2 where it converges quickly
   (at x = 2 about 30 terms reach double precision) without cancellation. *)
let erf_series x =
  let x2 = x *. x in
  let rec loop n term acc =
    (* term = (-1)^n x^(2n+1) / (n! (2n+1)) *)
    if abs_float term < 1e-18 *. abs_float acc || n > 200 then acc
    else
      let n' = n + 1 in
      let term' =
        term *. (-.x2) /. float_of_int n'
        *. (float_of_int (2 * n' - 1) /. float_of_int (2 * n' + 1))
      in
      loop n' term' (acc +. term')
  in
  two_over_sqrt_pi *. loop 0 x x

(* Continued fraction for the scaled complementary error function:
   erfc(x) = exp(-x^2)/(x sqrt pi) * 1/(1 + u/(1 + 2u/(1 + 3u/(1 + ...))))
   with u = 1/(2 x^2), evaluated by the modified Lentz algorithm.
   Used for x >= 2 where it converges fast. *)
let erfc_cf_scaled x =
  let tiny = 1e-300 in
  let u = 1.0 /. (2.0 *. x *. x) in
  (* F = b0 + a1/(b1 + a2/(b2 + ...)) with b0 = 0, a1 = 1, b_j = 1, and
     a_j = (j-1) u for j >= 2, evaluated by modified Lentz. *)
  let f = ref tiny and c = ref tiny and d = ref 0.0 in
  let continue = ref true in
  let j = ref 1 in
  while !continue && !j < 300 do
    let aj = if !j = 1 then 1.0 else float_of_int (!j - 1) *. u in
    d := 1.0 +. (aj *. !d);
    if abs_float !d < tiny then d := tiny;
    c := 1.0 +. (aj /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !c *. !d in
    f := !f *. delta;
    if abs_float (delta -. 1.0) < 1e-16 && !j > 2 then continue := false;
    incr j
  done;
  !f /. (x *. sqrt pi)

let erfc x =
  if x >= 2.0 then exp (-.(x *. x)) *. erfc_cf_scaled x
  else if x <= -2.0 then 2.0 -. (exp (-.(x *. x)) *. erfc_cf_scaled (-.x))
  else 1.0 -. erf_series x

let erf x =
  if x >= 2.0 then 1.0 -. erfc x
  else if x <= -2.0 then -1.0 +. erfc (-.x)
  else erf_series x

let log_erfc x =
  if x < 2.0 then log (erfc x)
  else (-.(x *. x)) +. log (erfc_cf_scaled x)

(* Lanczos approximation, g = 7, 9 coefficients. *)
let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec lgamma x =
  if x <= 0.0 then invalid_arg "Special.lgamma: requires x > 0"
  else if x < 0.5 then
    (* Reflection formula keeps the Lanczos sum in its accurate range. *)
    log (pi /. sin (pi *. x)) -. lgamma (1.0 -. x)
  else
    let x = x -. 1.0 in
    let a = ref lanczos_coefficients.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Continued fraction for the incomplete beta function (Lentz). *)
let betacf a b x =
  let tiny = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if abs_float !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let converged = ref false in
  while (not !converged) && !m <= 300 do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if abs_float !d < tiny then d := tiny;
    c := 1.0 +. (aa /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if abs_float (delta -. 1.0) < 1e-15 then converged := true;
    incr m
  done;
  !h

let ibeta ~a ~b x =
  if a <= 0.0 || b <= 0.0 then invalid_arg "Special.ibeta: requires a, b > 0";
  if x < 0.0 || x > 1.0 then invalid_arg "Special.ibeta: requires 0 <= x <= 1";
  if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else
    let front =
      exp
        ((lgamma (a +. b) -. lgamma a -. lgamma b)
        +. (a *. log x)
        +. (b *. log (1.0 -. x)))
    in
    (* Use the continued fraction on the side where it converges fast. *)
    if x < (a +. 1.0) /. (a +. b +. 2.0) then front *. betacf a b x /. a
    else 1.0 -. (front *. betacf b a (1.0 -. x) /. b)

(* Incomplete gamma: series expansion for x < a+1, continued fraction else. *)
let igamma_series a x =
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let term = ref !sum in
  let n = ref 0 in
  let converged = ref false in
  while (not !converged) && !n < 500 do
    ap := !ap +. 1.0;
    term := !term *. x /. !ap;
    sum := !sum +. !term;
    if abs_float !term < abs_float !sum *. 1e-16 then converged := true;
    incr n
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. lgamma a)

let igamma_cf a x =
  let tiny = 1e-300 in
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. tiny) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let converged = ref false in
  while (not !converged) && !i <= 500 do
    let fi = float_of_int !i in
    let an = -.fi *. (fi -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if abs_float !d < tiny then d := tiny;
    c := !b +. (an /. !c);
    if abs_float !c < tiny then c := tiny;
    d := 1.0 /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if abs_float (delta -. 1.0) < 1e-15 then converged := true;
    incr i
  done;
  !h *. exp ((-.x) +. (a *. log x) -. lgamma a)

let igamma_p ~a x =
  if a <= 0.0 then invalid_arg "Special.igamma_p: requires a > 0";
  if x < 0.0 then invalid_arg "Special.igamma_p: requires x >= 0";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then igamma_series a x
  else 1.0 -. igamma_cf a x

let igamma_q ~a x =
  if a <= 0.0 then invalid_arg "Special.igamma_q: requires a > 0";
  if x < 0.0 then invalid_arg "Special.igamma_q: requires x >= 0";
  if x = 0.0 then 1.0
  else if x < a +. 1.0 then 1.0 -. igamma_series a x
  else igamma_cf a x
