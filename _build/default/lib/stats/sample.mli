(** Random-variate samplers.  Each sampler draws from an explicit {!Rng.t}
    so simulations stay deterministic and replicable. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi).  @raise Invalid_argument if [hi < lo]. *)

val bernoulli : Rng.t -> p:float -> bool
(** [true] with probability [p]. *)

val exponential : Rng.t -> mean:float -> float
(** Exponential with the given mean (the paper's holding times and RCBR
    renegotiation intervals).  @raise Invalid_argument if [mean <= 0]. *)

val gaussian : Rng.t -> mu:float -> sigma:float -> float
(** N(mu, sigma^2) via the Marsaglia polar method.
    @raise Invalid_argument if [sigma < 0]. *)

val gaussian_truncated_nonneg : Rng.t -> mu:float -> sigma:float -> float
(** N(mu, sigma^2) conditioned on being >= 0, by rejection.  This is the
    marginal used for RCBR rates (the paper's Gaussian marginal with
    sigma/mu = 0.3 has negligible negative mass; we truncate for physical
    sanity).  @raise Invalid_argument if [mu < 0] (acceptance would vanish). *)

val lognormal : Rng.t -> mu_log:float -> sigma_log:float -> float
(** exp(N(mu_log, sigma_log^2)). *)

val lognormal_of_moments : Rng.t -> mean:float -> std:float -> float
(** Lognormal parameterised by its {e linear-space} mean and standard
    deviation (used for video frame-size marginals). *)

val pareto : Rng.t -> shape:float -> scale:float -> float
(** Pareto with tail index [shape] and minimum [scale].
    @raise Invalid_argument if [shape <= 0 || scale <= 0]. *)

val categorical : Rng.t -> weights:float array -> int
(** Index drawn proportionally to non-negative [weights].
    @raise Invalid_argument on empty or all-zero weights. *)
