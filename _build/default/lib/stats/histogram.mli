(** Fixed-bin histograms for diagnostics and distribution checks. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** @raise Invalid_argument if [hi <= lo] or [bins <= 0]. *)

val add : t -> float -> unit
(** Values outside [lo, hi) are counted in the under/overflow tallies. *)

val count : t -> int
(** Total observations, including out-of-range ones. *)

val underflow : t -> int
val overflow : t -> int

val counts : t -> int array
val bin_edges : t -> float array
(** [bins + 1] edges. *)

val density : t -> float array
(** Normalised so the histogram integrates to the in-range probability
    mass; empty histogram yields all zeros. *)

val cdf_at : t -> float -> float
(** Empirical CDF evaluated at a point (in-range linear in bins;
    counts underflow mass below [lo]). *)
