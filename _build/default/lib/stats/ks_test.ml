let statistic ~cdf xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Ks_test.statistic: empty sample";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let nf = float_of_int n in
  let d = ref 0.0 in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      (* empirical CDF jumps at each order statistic: compare both sides *)
      let lo = float_of_int i /. nf in
      let hi = float_of_int (i + 1) /. nf in
      d := Float.max !d (Float.max (abs_float (f -. lo)) (abs_float (hi -. f))))
    sorted;
  !d

let p_value ~n d =
  if d <= 0.0 then 1.0
  else begin
    let nf = float_of_int n in
    let d_eff = d *. (sqrt nf +. 0.12 +. (0.11 /. sqrt nf)) in
    let x = d_eff *. d_eff in
    (* alternating series; terms decay like exp(-2 k^2 x) *)
    let rec sum k acc =
      if k > 100 then acc
      else begin
        let term =
          (if k mod 2 = 1 then 2.0 else -2.0)
          *. exp (-2.0 *. float_of_int (k * k) *. x)
        in
        if abs_float term < 1e-12 then acc +. term
        else sum (k + 1) (acc +. term)
      end
    in
    Float.max 0.0 (Float.min 1.0 (sum 1 0.0))
  end

let test ~cdf ~alpha xs =
  let d = statistic ~cdf xs in
  p_value ~n:(Array.length xs) d >= alpha
