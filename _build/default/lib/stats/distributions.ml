(* Generic monotone-CDF inversion by bisection; good enough for test and
   CI usage where we need ~1e-10 accuracy, not speed. *)
let invert_cdf ?(lo = -1e8) ?(hi = 1e8) cdf p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Distributions.invert_cdf: requires 0 < p < 1";
  let rec widen lo hi n =
    if n > 200 then (lo, hi)
    else if cdf lo > p then widen (lo *. 2.0) hi (n + 1)
    else if cdf hi < p then widen lo (hi *. 2.0) (n + 1)
    else (lo, hi)
  in
  let lo, hi = widen lo hi 0 in
  let rec bisect lo hi n =
    if n > 200 || hi -. lo < 1e-12 *. (1.0 +. abs_float lo) then
      0.5 *. (lo +. hi)
    else
      let mid = 0.5 *. (lo +. hi) in
      if cdf mid < p then bisect mid hi (n + 1) else bisect lo mid (n + 1)
  in
  bisect lo hi 0

module Student_t = struct
  let cdf ~df t =
    if df <= 0.0 then invalid_arg "Student_t.cdf: requires df > 0";
    if t = 0.0 then 0.5
    else
      let x = df /. (df +. (t *. t)) in
      let tail = 0.5 *. Special.ibeta ~a:(df /. 2.0) ~b:0.5 x in
      if t > 0.0 then 1.0 -. tail else tail

  let quantile ~df p =
    if df <= 0.0 then invalid_arg "Student_t.quantile: requires df > 0";
    invert_cdf (cdf ~df) p
end

module Chi_square = struct
  let cdf ~df x =
    if df <= 0.0 then invalid_arg "Chi_square.cdf: requires df > 0";
    if x <= 0.0 then 0.0 else Special.igamma_p ~a:(df /. 2.0) (x /. 2.0)

  let quantile ~df p =
    if df <= 0.0 then invalid_arg "Chi_square.quantile: requires df > 0";
    invert_cdf ~lo:0.0 ~hi:(df *. 10.0 +. 100.0) (cdf ~df) p
end

module Exponential = struct
  let cdf ~mean x =
    if mean <= 0.0 then invalid_arg "Exponential.cdf: requires mean > 0";
    if x <= 0.0 then 0.0 else 1.0 -. exp (-.x /. mean)

  let quantile ~mean p =
    if mean <= 0.0 then invalid_arg "Exponential.quantile: requires mean > 0";
    if not (p >= 0.0 && p < 1.0) then
      invalid_arg "Exponential.quantile: requires 0 <= p < 1";
    -.mean *. log (1.0 -. p)
end

module Lognormal = struct
  let cdf ~mu_log ~sigma_log x =
    if x <= 0.0 then 0.0
    else Gaussian.cdf ((log x -. mu_log) /. sigma_log)

  let mean ~mu_log ~sigma_log = exp (mu_log +. (0.5 *. sigma_log *. sigma_log))

  let variance ~mu_log ~sigma_log =
    let s2 = sigma_log *. sigma_log in
    (exp s2 -. 1.0) *. exp ((2.0 *. mu_log) +. s2)
end
