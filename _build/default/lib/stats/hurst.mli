(** Hurst-parameter estimation for long-range-dependence diagnostics —
    the statistics used to characterise traces like the Starwars MPEG
    video in the paper's Figs 11–12 (Garrett–Willinger, Beran et al.). *)

val aggregated_variance : ?min_block:int -> ?n_scales:int -> float array -> float
(** The variance–time estimator: for block sizes m on a log grid, compute
    the variance of the m-aggregated (block-mean) series; regress
    log Var(X^{(m)}) on log m — the slope is 2H - 2.
    Defaults: [min_block = 4], [n_scales = 12].
    @raise Invalid_argument if the series is shorter than ~8 min_block. *)

val rescaled_range : ?min_block:int -> ?n_scales:int -> float array -> float
(** The classical R/S estimator: E[R/S](m) ~ C m^H; the slope of
    log(R/S) against log m estimates H. *)
