(** Descriptive statistics over float arrays. *)

val mean : float array -> float
(** @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased sample variance; [0.] for arrays of length < 2. *)

val std : float array -> float
val min : float array -> float
val max : float array -> float

val quantile : float array -> float -> float
(** [quantile xs p] for [0 <= p <= 1], linear interpolation between order
    statistics (type-7).  Does not mutate the input.
    @raise Invalid_argument on empty input or p outside [0,1]. *)

val median : float array -> float

val skewness : float array -> float
(** Sample skewness (g1); [0.] when undefined. *)

val kurtosis_excess : float array -> float
(** Excess kurtosis (g2); [0.] when undefined. *)

val autocovariance : float array -> int -> float
(** [autocovariance xs k] is the biased (1/n) lag-[k] autocovariance.
    @raise Invalid_argument if [k < 0 || k >= length]. *)

val autocorrelation : float array -> int -> float
(** Lag-[k] autocorrelation; [0.] when the variance vanishes. *)

val acf : float array -> max_lag:int -> float array
(** First [max_lag+1] autocorrelations (index 0 is 1.0). *)
