type t = { now : float; n : int; sum_rate : float; sum_sq : float }

let make ~now ~n ~sum_rate ~sum_sq =
  if n < 0 then invalid_arg "Observation.make: negative flow count";
  if n = 0 && (sum_rate <> 0.0 || sum_sq <> 0.0) then
    invalid_arg "Observation.make: nonzero sums with zero flows";
  { now; n; sum_rate; sum_sq }

let cross_mean t = if t.n = 0 then nan else t.sum_rate /. float_of_int t.n

let cross_variance t =
  if t.n < 2 then 0.0
  else begin
    let nf = float_of_int t.n in
    let mean = t.sum_rate /. nf in
    let v = (t.sum_sq -. (nf *. mean *. mean)) /. (nf -. 1.0) in
    Float.max 0.0 v
  end
