type formula = General | Closed_form

let alpha_max = 37.0 (* Q(37) is at the edge of the IEEE double range *)

let eval formula ~p ~t_m ~alpha_ce =
  match formula with
  | General -> Memory_formula.overflow ~p ~t_m ~alpha_ce
  | Closed_form -> Memory_formula.overflow_closed_form ~p ~t_m ~alpha_ce

let adjusted_alpha_ce ?(formula = Closed_form) ~t_m p =
  let target = p.Params.p_q in
  let f alpha = eval formula ~p ~t_m ~alpha_ce:alpha in
  if f 0.0 <= target then 0.0
  else if f alpha_max >= target then alpha_max
  else begin
    (* Monotone decreasing; invert in log space (p_f spans many decades). *)
    let g alpha =
      let v = f alpha in
      if v <= 0.0 then -.1e9 else log v
    in
    Mbac_numerics.Roots.brent ~tol:1e-10
      (fun alpha -> g alpha -. log target)
      ~lo:0.0 ~hi:alpha_max
  end

let adjusted_p_ce ?formula ~t_m p =
  Mbac_stats.Gaussian.q (adjusted_alpha_ce ?formula ~t_m p)

let adjusted_log_p_ce ?formula ~t_m p =
  Mbac_stats.Gaussian.log_q (adjusted_alpha_ce ?formula ~t_m p)

let achieved_overflow ?(formula = Closed_form) ~t_m p =
  eval formula ~p ~t_m ~alpha_ce:(adjusted_alpha_ce ~formula ~t_m p)
