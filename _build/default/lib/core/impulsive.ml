let sqrt_pi = sqrt (4.0 *. atan 1.0)

let admitted_mean_approx p =
  let open Params in
  p.n -. (p.sigma /. p.mu *. alpha_q p *. sqrt p.n)

let admitted_std_approx p =
  let open Params in
  p.sigma /. p.mu *. sqrt p.n

let overflow_probability p =
  Mbac_stats.Gaussian.q (Params.alpha_q p /. sqrt 2.0)

let adjusted_p_ce p = Mbac_stats.Gaussian.q (sqrt 2.0 *. Params.alpha_q p)

(* Q(sqrt2 alpha) expanded with Q(x) ~ phi(x)/x gives
   p_ce ~ sqrt(pi) alpha_q p_q^2.  (The memo prints the prefactor as
   alpha_q / (2 sqrt pi), which drops a factor of 2 pi relative to this
   expansion; the exact eqn (15) value is what the controllers use, the
   approximation exists only to exhibit the p_q^2 scaling.) *)
let adjusted_p_ce_approx p =
  let open Params in
  sqrt_pi *. alpha_q p *. p.p_q *. p.p_q

let utilization_loss p =
  let open Params in
  (sqrt 2.0 -. 1.0) *. p.sigma *. alpha_q p *. sqrt p.n

let sensitivity_mu p =
  let open Params in
  let alpha = alpha_q p in
  -.(Mbac_stats.Gaussian.phi alpha *. p.mu /. p.sigma)
  *. sqrt (Criterion.m_star_real p)

let sensitivity_sigma p =
  let open Params in
  let alpha = alpha_q p in
  -.(alpha *. Mbac_stats.Gaussian.phi alpha /. p.sigma)

let predicted_p_f_shift p ~d_mu ~d_sigma =
  p.Params.p_q +. (sensitivity_mu p *. d_mu) +. (sensitivity_sigma p *. d_sigma)

let actual_p_f_given_error p ~d_mu ~d_sigma =
  let open Params in
  let capacity = capacity p in
  let mu_hat = p.mu +. d_mu and sigma_hat = p.sigma +. d_sigma in
  if mu_hat <= 0.0 || sigma_hat < 0.0 then
    invalid_arg "Impulsive.actual_p_f_given_error: deviated estimates invalid";
  let m =
    Criterion.admissible_real ~capacity ~mu:mu_hat ~sigma:sigma_hat
      ~alpha:(alpha_q p)
  in
  Criterion.overflow_probability ~capacity ~mu:p.mu ~sigma:p.sigma ~m
