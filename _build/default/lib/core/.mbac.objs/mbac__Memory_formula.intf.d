lib/core/memory_formula.mli: Params
