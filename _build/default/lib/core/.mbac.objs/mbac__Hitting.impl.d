lib/core/hitting.ml: Mbac_numerics Mbac_stats
