lib/core/estimator.ml: Float Observation Option Printf Queue
