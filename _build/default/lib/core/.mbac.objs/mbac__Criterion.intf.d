lib/core/criterion.mli: Params
