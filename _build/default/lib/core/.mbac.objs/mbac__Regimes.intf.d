lib/core/regimes.mli: Params
