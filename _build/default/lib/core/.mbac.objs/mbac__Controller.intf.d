lib/core/controller.mli: Estimator Observation Params
