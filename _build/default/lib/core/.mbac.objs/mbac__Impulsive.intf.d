lib/core/impulsive.mli: Params
