lib/core/hitting.mli:
