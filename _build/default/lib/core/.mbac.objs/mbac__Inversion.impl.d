lib/core/inversion.ml: Mbac_numerics Mbac_stats Memory_formula Params
