lib/core/effective_bandwidth.ml: Float
