lib/core/memory_formula.ml: Mbac_numerics Mbac_stats Params
