lib/core/observation.mli:
