lib/core/estimator.mli: Observation
