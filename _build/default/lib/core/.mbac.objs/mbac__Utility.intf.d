lib/core/utility.mli:
