lib/core/window.ml: Array Float Memory_formula Params
