lib/core/utilization.ml: Criterion Inversion Params
