lib/core/utilization.mli: Params
