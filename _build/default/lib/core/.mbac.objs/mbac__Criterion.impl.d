lib/core/criterion.ml: Mbac_stats Params
