lib/core/controller.ml: Array Criterion Effective_bandwidth Estimator Float Inversion Mbac_stats Observation Params Printf Window
