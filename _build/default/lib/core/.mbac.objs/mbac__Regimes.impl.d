lib/core/regimes.ml: Mbac_stats Params
