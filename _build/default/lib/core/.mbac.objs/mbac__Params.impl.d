lib/core/params.ml: Format Mbac_stats
