lib/core/finite_holding.mli: Params
