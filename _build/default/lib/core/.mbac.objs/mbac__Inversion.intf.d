lib/core/inversion.mli: Params
