lib/core/utility.ml: Float Printf
