lib/core/finite_holding.ml: Float Mbac_stats Params
