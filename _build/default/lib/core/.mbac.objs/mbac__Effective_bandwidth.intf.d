lib/core/effective_bandwidth.mli:
