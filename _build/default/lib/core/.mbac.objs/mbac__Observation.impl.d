lib/core/observation.ml: Float
