lib/core/impulsive.ml: Criterion Mbac_stats Params
