lib/core/window.mli: Params
