let masking_overflow p =
  let open Params in
  ((p.sigma *. alpha_q p /. p.mu) +. 1.0) *. p.p_q

let repair_overflow p =
  let open Params in
  let ratio = t_h_tilde p /. p.t_c in
  let z = alpha_q p *. sqrt (1.0 /. ratio) in
  if z > 38.0 then 0.0
  else p.sigma /. p.mu *. sqrt ratio *. Mbac_stats.Gaussian.phi z

let repair_overflow_paper p =
  let open Params in
  let r = p.t_c /. t_h_tilde p in
  let expo = -.(r *. r) *. alpha_q p *. alpha_q p in
  if expo < -700.0 then 0.0
  else 1.0 /. sqrt (8.0 *. atan 1.0) *. r *. (p.sigma /. p.mu) *. exp expo

let regime p ~t_m =
  ignore t_m;
  let ratio = p.Params.t_c /. Params.t_h_tilde p in
  if ratio <= 0.25 then `Masking
  else if ratio >= 4.0 then `Repair
  else `Transition
