(** Inverting the overflow formula to obtain the adjusted
    certainty-equivalent target (§5.2, Figure 6).

    Given the system parameters, the estimator memory [t_m] and the QoS
    target [p_q], find the [p_ce] at which the controller must run so
    that the {e actual} overflow probability equals [p_q].  The overflow
    formula is strictly decreasing in alpha_ce, so this is a 1-D monotone
    inversion (done in log-probability space for stability: the adjusted
    p_ce can be astronomically small for short memories — Fig 6 shows
    values below 1e-10 already at moderate T_m). *)

type formula = General | Closed_form
(** Invert eqn (37) (numerical integral) or eqn (38) (closed form). *)

val adjusted_alpha_ce : ?formula:formula -> t_m:float -> Params.t -> float
(** The alpha_ce = Q^{-1}(p_ce) solving overflow(alpha_ce) = p_q,
    clamped to [0, 37] (at 37 the implied p_ce underflows IEEE range —
    in that regime the scheme cannot meet the target at all and the
    caller should enlarge [t_m]).  Default formula: [Closed_form]
    (what the paper inverts for Figs 6–7). *)

val adjusted_p_ce : ?formula:formula -> t_m:float -> Params.t -> float
(** Q(adjusted_alpha_ce); may underflow to 0.0 — use
    {!adjusted_log_p_ce} when you need the magnitude. *)

val adjusted_log_p_ce : ?formula:formula -> t_m:float -> Params.t -> float
(** Natural log of the adjusted p_ce, computed without underflow. *)

val achieved_overflow : ?formula:formula -> t_m:float -> Params.t -> float
(** Round-trip check: the overflow formula evaluated at the adjusted
    alpha_ce (should be ~ p_q whenever no clamping occurred). *)
