type log_mgf = float -> float

let gaussian_log_mgf ~mu ~sigma theta =
  (theta *. mu) +. (0.5 *. theta *. theta *. sigma *. sigma)

let onoff_log_mgf ~peak ~p_on theta =
  log (1.0 -. p_on +. (p_on *. exp (theta *. peak)))

(* sup_theta (theta c - m Lambda(theta)) by golden-section search on a
   bracket grown until the objective turns over (it is concave in theta
   for any valid log-MGF). *)
let chernoff_exponent ~log_mgf ~m ~capacity =
  if m <= 0.0 then invalid_arg "Effective_bandwidth: requires m > 0";
  if capacity <= 0.0 then invalid_arg "Effective_bandwidth: requires capacity > 0";
  let objective theta = (theta *. capacity) -. (m *. log_mgf theta) in
  (* grow the upper bracket until the objective decreases *)
  let rec grow hi k =
    if k > 200 then hi
    else if objective hi > objective (hi /. 2.0) then grow (hi *. 2.0) (k + 1)
    else hi
  in
  let hi = grow 1.0 0 in
  let golden = (sqrt 5.0 -. 1.0) /. 2.0 in
  let rec search a b k =
    if k = 0 then 0.5 *. (a +. b)
    else begin
      let x1 = b -. (golden *. (b -. a)) in
      let x2 = a +. (golden *. (b -. a)) in
      if objective x1 > objective x2 then search a x2 (k - 1)
      else search x1 b (k - 1)
    end
  in
  let theta_star = search 0.0 hi 100 in
  Float.max 0.0 (objective theta_star)

let chernoff_overflow_bound ~log_mgf ~m ~capacity =
  exp (-.chernoff_exponent ~log_mgf ~m ~capacity)

let admissible ~log_mgf ~capacity ~p_target =
  if not (p_target > 0.0 && p_target < 1.0) then
    invalid_arg "Effective_bandwidth.admissible: requires 0 < p_target < 1";
  let ok m =
    m = 0
    || chernoff_overflow_bound ~log_mgf ~m:(float_of_int m) ~capacity
       <= p_target
  in
  if not (ok 1) then 0
  else begin
    (* exponential then binary search for the boundary *)
    let rec grow hi = if ok hi then grow (2 * hi) else hi in
    let hi = grow 1 in
    let rec bisect lo hi =
      (* invariant: ok lo, not (ok hi) *)
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if ok mid then bisect mid hi else bisect lo mid
      end
    in
    bisect 1 hi
  end

let gaussian_alpha_of_p p =
  if not (p > 0.0 && p < 1.0) then
    invalid_arg "Effective_bandwidth.gaussian_alpha_of_p: requires 0 < p < 1";
  sqrt (2.0 *. log (1.0 /. p))
