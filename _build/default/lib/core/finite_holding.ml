let overflow_probability_at p ~rho t =
  if t < 0.0 then invalid_arg "Finite_holding: requires t >= 0";
  let open Params in
  let r = rho t in
  let denom_sq = 2.0 *. (1.0 -. r) in
  if denom_sq <= 0.0 then 0.0
  else begin
    let drift = p.mu /. p.sigma *. (t /. t_h_tilde p) in
    Mbac_stats.Gaussian.q ((drift +. alpha_q p) /. sqrt denom_sq)
  end

let overflow_probability_at_ou p t =
  overflow_probability_at p ~rho:(fun s -> exp (-.s /. p.Params.t_c)) t

let peak_time_ou p =
  (* Unimodal in t: golden-section search over a generous bracket.  The
     hump lives between 0 and a few critical time-scales. *)
  let f t = overflow_probability_at_ou p t in
  let lo = 0.0 and hi = 10.0 *. Float.max (Params.t_h_tilde p) p.Params.t_c in
  let phi_golden = (sqrt 5.0 -. 1.0) /. 2.0 in
  let rec go a b k =
    if k = 0 then 0.5 *. (a +. b)
    else begin
      let x1 = b -. (phi_golden *. (b -. a)) in
      let x2 = a +. (phi_golden *. (b -. a)) in
      if f x1 < f x2 then go x1 b (k - 1) else go a x2 (k - 1)
    end
  in
  go lo hi 80

let peak_overflow_ou p = overflow_probability_at_ou p (peak_time_ou p)
