(** Braker's approximation for the hitting probability of a Gaussian
    process on a moving boundary (§4.2, eqn (30)):

    Pr( sup_{t>=0} (X_t - beta t) > alpha )
      ~ 1/2 int_0^inf v (alpha + beta t) / s(t)^3 phi((alpha + beta t)/s(t)) dt

    where s^2(t) = E[(X_t - X_0)^2] is the incremental variance of the
    process and v = d s^2 / dt at 0+.  Valid as alpha -> infinity. *)

val probability :
  alpha:float ->
  beta:float ->
  incr_variance:(float -> float) ->
  v_plus0:float ->
  float
(** General form.  [incr_variance t] must be s^2(t) >= 0 with s^2(0) = 0;
    [v_plus0] its right derivative at 0.  The integrand is evaluated in a
    numerically safe way (0 when the Gaussian argument exceeds ~38 or
    when s(t) vanishes).
    @raise Invalid_argument if [beta <= 0] or [v_plus0 < 0]. *)

val probability_stationary :
  alpha:float -> beta:float -> rho:(float -> float) -> rho_slope0:float ->
  float
(** Specialisation to X_t = Y_{-t} - Y_0 for a stationary unit-variance
    process Y with autocorrelation [rho]: s^2(t) = 2 (1 - rho t) and
    v = -2 rho'(0+) = [2 *. rho_slope0] with [rho_slope0 = -rho'(0+)]. *)
