(** Impulsive load with finite (exponential) holding times (§3.2).

    After the burst admission at time 0, flows depart at rate 1/T_h; the
    overflow probability at time t combines the admission error (Y_0),
    the bandwidth fluctuation (Y_t, correlated with Y_0 through rho), and
    the departures-driven drift. *)

val overflow_probability_at :
  Params.t -> rho:(float -> float) -> float -> float
(** Eqn (21):
    p_f(t) = Q( ((mu/sigma) (t/T~_h) + alpha_q) / sqrt(2 (1 - rho t)) ).
    Returns 0 at [t = 0] (the admission instant satisfies the criterion
    exactly, and rho(0) = 1 makes the argument infinite). *)

val overflow_probability_at_ou : Params.t -> float -> float
(** {!overflow_probability_at} specialised to the exponential
    autocorrelation rho(t) = exp(-t/T_c) (eqn (31)). *)

val peak_time_ou : Params.t -> float
(** The time at which eqn (21) peaks for the OU autocorrelation, located
    numerically.  The overflow hazard is maximal a little after the
    admission burst: early times are protected by correlation, late times
    by departures. *)

val peak_overflow_ou : Params.t -> float
(** p_f at {!peak_time_ou}. *)
