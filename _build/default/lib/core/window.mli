(** Memory-window selection (§5.3): the paper's engineering rule is to set
    the estimator memory to the critical time-scale, T_m = T~_h, which
    makes the MBAC robust across the whole range of (unknown) traffic
    correlation time-scales — masking fast traffic, repairing slow
    traffic. *)

val recommended_t_m : Params.t -> float
(** T_m = T~_h = T_h / sqrt n. *)

val robustness_profile :
  Params.t -> t_m:float -> t_cs:float array -> (float * float) array
(** For each candidate correlation time-scale, the predicted overflow
    probability (eqn (37)) when the controller runs memory [t_m] at the
    {e unadjusted} target p_q.  [(t_c, p_f)] pairs.  A robust choice keeps
    p_f within a small factor of p_q everywhere (Figure 9's message). *)

val worst_case_overflow :
  Params.t -> t_m:float -> t_cs:float array -> float
(** max over the profile. *)

val is_robust :
  ?tolerance_factor:float -> Params.t -> t_m:float -> t_cs:float array -> bool
(** Whether the worst-case overflow stays below
    [tolerance_factor *. p_q] (default factor 10 — "within an order of
    magnitude", the paper's robustness yardstick in Figs 9–12). *)
