type t = {
  n : float;
  mu : float;
  sigma : float;
  t_h : float;
  t_c : float;
  p_q : float;
}

let make ~n ~mu ~sigma ~t_h ~t_c ~p_q =
  if n <= 0.0 then invalid_arg "Params.make: requires n > 0";
  if mu <= 0.0 then invalid_arg "Params.make: requires mu > 0";
  if sigma < 0.0 then invalid_arg "Params.make: requires sigma >= 0";
  if t_h <= 0.0 then invalid_arg "Params.make: requires t_h > 0";
  if t_c <= 0.0 then invalid_arg "Params.make: requires t_c > 0";
  if not (p_q > 0.0 && p_q <= 0.5) then
    invalid_arg "Params.make: requires 0 < p_q <= 0.5";
  { n; mu; sigma; t_h; t_c; p_q }

let capacity t = t.n *. t.mu
let alpha_q t = Mbac_stats.Gaussian.q_inv t.p_q
let t_h_tilde t = t.t_h /. sqrt t.n

let beta t =
  if t.sigma = 0.0 then infinity else t.mu /. (t.sigma *. t_h_tilde t)

let gamma t = t_h_tilde t /. t.t_c *. (t.sigma /. t.mu)

let with_p_q t p_q =
  if not (p_q > 0.0 && p_q <= 0.5) then
    invalid_arg "Params.with_p_q: requires 0 < p_q <= 0.5";
  { t with p_q }

let pp fmt t =
  Format.fprintf fmt
    "{ n=%g; mu=%g; sigma=%g; T_h=%g; T_c=%g; p_q=%.3g | c=%g alpha_q=%.4g \
     T~_h=%.4g gamma=%.4g }"
    t.n t.mu t.sigma t.t_h t.t_c t.p_q (capacity t) (alpha_q t) (t_h_tilde t)
    (gamma t)
