(** The Gaussian admission criterion.

    The number of admissible flows M is the largest value satisfying
    Q((c - M mu)/(sigma sqrt M)) <= p, i.e. solving eqn (4) (perfect
    knowledge) or eqn (6) (certainty equivalence with estimates).  The
    positive root of the underlying quadratic gives the closed form of
    eqn (42). *)

val admissible_real : capacity:float -> mu:float -> sigma:float -> alpha:float -> float
(** The real-valued solution
    M = ((sqrt(sigma^2 alpha^2 + 4 c mu) - sigma alpha) / (2 mu))^2 of
    eqn (42), where [alpha = Q^{-1}(p)].  [sigma = 0] gives [c / mu].
    Returns [0.] when [capacity <= 0].
    @raise Invalid_argument if [mu <= 0] or [sigma < 0]. *)

val admissible : capacity:float -> mu:float -> sigma:float -> alpha:float -> int
(** Integer part of {!admissible_real} (never negative). *)

val overflow_probability : capacity:float -> mu:float -> sigma:float -> m:float -> float
(** p_f(mu, sigma, m) = Q((c - m mu)/(sigma sqrt m)) — the §3.1 map from a
    flow count to an overflow probability under the Gaussian
    approximation. *)

val m_star_real : Params.t -> float
(** Real-valued m* under perfect knowledge (eqn (4) solved exactly). *)

val m_star : Params.t -> int
(** floor of {!m_star_real}: the perfect-knowledge admissible count. *)

val m_star_approx : Params.t -> float
(** The heavy-traffic expansion m* ~ n - (sigma alpha_q / mu) sqrt n
    (eqn (5)). *)

val peak_rate_count : capacity:float -> peak:float -> int
(** Flows admitted under lossless peak-rate allocation.
    @raise Invalid_argument if [peak <= 0]. *)
