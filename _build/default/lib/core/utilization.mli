(** Utilization accounting: what robustness costs in carried bandwidth
    (§3.1, §4.3 eqn (40)). *)

val perfect : Params.t -> float
(** Average carried bandwidth under perfect knowledge: m* mu
    ~ c - sigma alpha_q sqrt n. *)

val certainty_equivalent : Params.t -> alpha_ce:float -> float
(** Average carried bandwidth when the MBAC runs at target alpha_ce:
    ~ c - sigma alpha_ce sqrt n (from eqn (10) with the adjusted target;
    the supremum term of eqn (36) is target-independent and excluded, as
    in the paper's eqn (40) reasoning). *)

val difference : Params.t -> alpha_ce:float -> alpha_ce':float -> float
(** Eqn (40): the utilization gap between running at p_ce and p_ce',
    sigma sqrt n (alpha_ce - alpha_ce'). *)

val fraction : Params.t -> bandwidth:float -> float
(** Carried bandwidth as a fraction of capacity. *)

val robustness_cost : Params.t -> t_m:float -> float
(** Bandwidth given up by the robust scheme (inverted p_ce at memory
    [t_m]) relative to plain certainty equivalence at p_q. *)
