(** System parameters of the paper's model and the derived quantities that
    appear throughout the analysis (§2–§4). *)

type t = {
  n : float;      (** normalized capacity (system size), n = c / mu *)
  mu : float;     (** per-flow mean bandwidth *)
  sigma : float;  (** per-flow bandwidth standard deviation *)
  t_h : float;    (** mean flow holding time T_h *)
  t_c : float;    (** traffic correlation time-scale T_c (eqn (31)) *)
  p_q : float;    (** target (QoS) overflow probability *)
}

val make :
  n:float -> mu:float -> sigma:float -> t_h:float -> t_c:float -> p_q:float ->
  t
(** @raise Invalid_argument on non-positive [n], [mu], [t_h], [t_c],
    negative [sigma], or [p_q] outside (0, 0.5]. *)

val capacity : t -> float
(** Link capacity c = n mu. *)

val alpha_q : t -> float
(** alpha_q = Q^{-1}(p_q). *)

val t_h_tilde : t -> float
(** The critical time-scale T~_h = T_h / sqrt n (§3.2). *)

val beta : t -> float
(** beta = mu / (sigma T~_h) (eqn (28)); [infinity] when sigma = 0. *)

val gamma : t -> float
(** gamma = 1 / (beta T_c) = (T~_h / T_c)(sigma / mu) — the flow/burst
    time-scale separation (§4.2). *)

val with_p_q : t -> float -> t
(** Same system, different target overflow probability (used when running
    the controller at an adjusted certainty-equivalent target p_ce). *)

val pp : Format.formatter -> t -> unit
