(** The two operating regimes of an MBAC with memory window
    T_m = T~_h (§5.3, Figure 8). *)

val masking_overflow : Params.t -> float
(** The masking regime (T_c << T~_h = T_m): eqn (41),
    p_f ~ ((sigma alpha_q / mu) + 1) p_q.  The memory window smooths the
    traffic fluctuations; the detailed correlation structure is
    irrelevant. *)

val repair_overflow : Params.t -> float
(** The repair regime (T_c >> T~_h): estimator fluctuations are slower
    than the critical time-scale, so departures repair admission errors
    before they can cause overflow.  Derived by substituting
    sigma_m^2 ~ T_m/(T_c + T_m) into eqn (37) with T_m = T~_h:
    p_f ~ (sigma/mu) sqrt(T~_h/T_c) phi(alpha_q sqrt(T_c/T~_h)). *)

val repair_overflow_paper : Params.t -> float
(** The closed form exactly as printed in the paper (§5.3):
    p_f ~ (1/sqrt(2 pi)) (T_c/T~_h) (sigma/mu)
          exp(-(T_c/T~_h)^2 alpha_q^2).
    Kept verbatim for comparison; both forms vanish extremely fast in the
    repair regime. *)

val regime : Params.t -> t_m:float -> [ `Masking | `Repair | `Transition ]
(** Coarse classification by the ratio T_c / T~_h (masking below 1/4,
    repair above 4). *)
