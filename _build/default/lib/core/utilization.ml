let perfect p = Criterion.m_star_real p *. p.Params.mu

let certainty_equivalent p ~alpha_ce =
  let open Params in
  capacity p -. (p.sigma *. alpha_ce *. sqrt p.n)

let difference p ~alpha_ce ~alpha_ce' =
  let open Params in
  p.sigma *. sqrt p.n *. (alpha_ce -. alpha_ce')

let fraction p ~bandwidth = bandwidth /. Params.capacity p

let robustness_cost p ~t_m =
  let alpha_q = Params.alpha_q p in
  let alpha_ce = Inversion.adjusted_alpha_ce ~t_m p in
  difference p ~alpha_ce ~alpha_ce':alpha_q
