(** Utility-based QoS (§7 future work, after Shenker): instead of the
    binary overflow indicator, score each instant by a utility of the
    {e delivered bandwidth fraction} — during overload a flow receives
    min(1, c/S) of its demand (proportional sharing), and an adaptive
    application derives partial value from partial bandwidth. *)

type t =
  | Step
      (** 1 if the full demand is met, 0 otherwise — reproduces the
          paper's overflow metric: E[u] = 1 - p_f. *)
  | Linear
      (** u(f) = f: throughput-proportional (fully elastic). *)
  | Power of float
      (** u(f) = f^theta, theta > 0: concave for theta < 1 (adaptive
          applications that degrade gracefully). *)
  | Threshold of float
      (** u(f) = 1 if f >= threshold else f / threshold: tolerates small
          degradation, linear below. *)

val eval : t -> float -> float
(** [eval u f] for a delivered fraction [f] clamped into [0, 1].
    All utilities map [0,1] -> [0,1] with u(1) = 1.
    @raise Invalid_argument for non-positive [Power]/[Threshold]
    parameters. *)

val delivered_fraction : capacity:float -> load:float -> float
(** min(1, capacity/load); 1 when the load is 0. *)

val name : t -> string
