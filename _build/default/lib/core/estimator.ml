type estimate = { mu_hat : float; var_hat : float }

type t = {
  name : string;
  observe : Observation.t -> unit;
  current : unit -> estimate option;
  reset : unit -> unit;
}

let name t = t.name
let observe t obs = t.observe obs
let current t = t.current ()
let reset t = t.reset ()

let memoryless () =
  let last = ref None in
  {
    name = "memoryless";
    observe =
      (fun obs -> if obs.Observation.n >= 1 then last := Some obs);
    current =
      (fun () ->
        Option.map
          (fun obs ->
            { mu_hat = Observation.cross_mean obs;
              var_hat = Observation.cross_variance obs })
          !last);
    reset = (fun () -> last := None);
  }

(* Exact advance of the first-order filter over a piecewise-constant input:
   while the input holds value [x], est(t + dt) = x + (est(t) - x) e^{-dt/Tm}. *)
type ewma_state = {
  mutable initialized : bool;
  mutable last_time : float;
  mutable in_mu : float;  (* input signal value held since last_time *)
  mutable in_var : float;
  mutable est_mu : float;
  mutable est_var : float;
}

let ewma ~t_m =
  if t_m < 0.0 then invalid_arg "Estimator.ewma: requires t_m >= 0";
  if t_m = 0.0 then { (memoryless ()) with name = "ewma(0)" }
  else begin
    let s =
      { initialized = false; last_time = 0.0; in_mu = 0.0; in_var = 0.0;
        est_mu = 0.0; est_var = 0.0 }
    in
    let observe obs =
      if obs.Observation.n >= 1 then begin
        let x = Observation.cross_mean obs in
        let v = Observation.cross_variance obs in
        if not s.initialized then begin
          s.initialized <- true;
          s.est_mu <- x;
          s.est_var <- v
        end
        else begin
          let dt = obs.Observation.now -. s.last_time in
          if dt > 0.0 then begin
            let decay = exp (-.dt /. t_m) in
            s.est_mu <- s.in_mu +. ((s.est_mu -. s.in_mu) *. decay);
            s.est_var <- s.in_var +. ((s.est_var -. s.in_var) *. decay)
          end
        end;
        s.last_time <- obs.Observation.now;
        s.in_mu <- x;
        s.in_var <- v
      end
    in
    let current () =
      if s.initialized then
        Some { mu_hat = s.est_mu; var_hat = Float.max 0.0 s.est_var }
      else None
    in
    let reset () = s.initialized <- false in
    { name = Printf.sprintf "ewma(T_m=%g)" t_m; observe; current; reset }
  end

(* Sliding time window: a FIFO of constant-signal segments plus running
   integrals; old segments are evicted (with partial trimming) as the
   window slides. *)
type segment = { t0 : float; t1 : float; x : float; v : float }

type window_state = {
  mutable have_input : bool;
  mutable last_time : float;
  mutable in_mu : float;
  mutable in_var : float;
  segs : segment Queue.t;
  mutable int_mu : float;  (* integral of x over the stored segments *)
  mutable int_var : float;
  mutable covered : float; (* total stored duration *)
}

let sliding_window ~t_w =
  if t_w <= 0.0 then invalid_arg "Estimator.sliding_window: requires t_w > 0";
  let s =
    { have_input = false; last_time = 0.0; in_mu = 0.0; in_var = 0.0;
      segs = Queue.create (); int_mu = 0.0; int_var = 0.0; covered = 0.0 }
  in
  let evict ~now =
    let cutoff = now -. t_w in
    let continue = ref true in
    while !continue && not (Queue.is_empty s.segs) do
      let seg = Queue.peek s.segs in
      if seg.t1 <= cutoff then begin
        ignore (Queue.pop s.segs);
        let d = seg.t1 -. seg.t0 in
        s.int_mu <- s.int_mu -. (d *. seg.x);
        s.int_var <- s.int_var -. (d *. seg.v);
        s.covered <- s.covered -. d
      end
      else if seg.t0 < cutoff then begin
        (* trim the head segment to start at the cutoff *)
        ignore (Queue.pop s.segs);
        let trimmed = cutoff -. seg.t0 in
        s.int_mu <- s.int_mu -. (trimmed *. seg.x);
        s.int_var <- s.int_var -. (trimmed *. seg.v);
        s.covered <- s.covered -. trimmed;
        (* push back the rest at the queue front: rebuild the queue *)
        let rest = { seg with t0 = cutoff } in
        let tmp = Queue.create () in
        Queue.push rest tmp;
        Queue.transfer s.segs tmp;
        Queue.transfer tmp s.segs;
        continue := false
      end
      else continue := false
    done
  in
  let observe obs =
    if obs.Observation.n >= 1 then begin
      let now = obs.Observation.now in
      if s.have_input && now > s.last_time then begin
        let seg = { t0 = s.last_time; t1 = now; x = s.in_mu; v = s.in_var } in
        Queue.push seg s.segs;
        let d = now -. s.last_time in
        s.int_mu <- s.int_mu +. (d *. seg.x);
        s.int_var <- s.int_var +. (d *. seg.v);
        s.covered <- s.covered +. d
      end;
      evict ~now;
      s.have_input <- true;
      s.last_time <- now;
      s.in_mu <- Observation.cross_mean obs;
      s.in_var <- Observation.cross_variance obs
    end
  in
  let current () =
    if not s.have_input then None
    else if s.covered <= 0.0 then
      Some { mu_hat = s.in_mu; var_hat = Float.max 0.0 s.in_var }
    else
      Some
        { mu_hat = s.int_mu /. s.covered;
          var_hat = Float.max 0.0 (s.int_var /. s.covered) }
  in
  let reset () =
    s.have_input <- false;
    Queue.clear s.segs;
    s.int_mu <- 0.0;
    s.int_var <- 0.0;
    s.covered <- 0.0
  in
  { name = Printf.sprintf "window(T_w=%g)" t_w; observe; current; reset }

(* Aggregate-only estimation (§7): the controller sees the aggregate rate
   and the flow count but not per-flow rates.  The per-flow mean follows
   directly; the per-flow variance is recovered from the *temporal*
   fluctuation of the per-flow average x = S/n, since for n independent
   homogeneous flows Var_time(x) = sigma^2 / n. *)
type aggregate_state = {
  mutable init : bool;
  mutable t_last : float;
  mutable in_x : float;
  mutable m1 : float; (* filtered x *)
  mutable m2 : float; (* filtered x^2 *)
  mutable last_n : int;
}

let aggregate_only ~t_m =
  if t_m <= 0.0 then invalid_arg "Estimator.aggregate_only: requires t_m > 0";
  let s = { init = false; t_last = 0.0; in_x = 0.0; m1 = 0.0; m2 = 0.0; last_n = 0 } in
  let observe obs =
    if obs.Observation.n >= 1 then begin
      let x = Observation.cross_mean obs in
      if not s.init then begin
        s.init <- true;
        s.m1 <- x;
        s.m2 <- x *. x
      end
      else begin
        let dt = obs.Observation.now -. s.t_last in
        if dt > 0.0 then begin
          let decay = exp (-.dt /. t_m) in
          s.m1 <- s.in_x +. ((s.m1 -. s.in_x) *. decay);
          s.m2 <- (s.in_x *. s.in_x) +. ((s.m2 -. (s.in_x *. s.in_x)) *. decay)
        end
      end;
      s.t_last <- obs.Observation.now;
      s.in_x <- x;
      s.last_n <- obs.Observation.n
    end
  in
  let current () =
    if not s.init then None
    else
      let var_of_x = Float.max 0.0 (s.m2 -. (s.m1 *. s.m1)) in
      Some
        { mu_hat = s.m1;
          var_hat = float_of_int s.last_n *. var_of_x }
  in
  let reset () = s.init <- false in
  { name = Printf.sprintf "aggregate(T_m=%g)" t_m; observe; current; reset }
