(** Effective bandwidths and Chernoff-bound admission (Hui [14]; the
    large-deviations regime the paper contrasts its heavy-traffic
    analysis against in §3.1).

    For i.i.d. flows with per-flow log-MGF Lambda(theta) =
    log E[e^{theta X}], the Chernoff bound on bufferless overflow is
    P(S_m > c) <= exp(-(sup_theta (theta c - m Lambda(theta)))),
    giving an acceptance region that is exact in exponential order as
    the system grows with fixed utilization — complementary to the
    paper's heavy-traffic (Gaussian) regime. *)

type log_mgf = float -> float
(** theta -> log E[e^{theta X}] of one flow's stationary bandwidth. *)

val gaussian_log_mgf : mu:float -> sigma:float -> log_mgf
(** theta mu + theta^2 sigma^2 / 2. *)

val onoff_log_mgf : peak:float -> p_on:float -> log_mgf
(** log(1 - p + p e^{theta peak}). *)

val chernoff_exponent : log_mgf:log_mgf -> m:float -> capacity:float -> float
(** sup_{theta >= 0} (theta c - m Lambda(theta)), located numerically
    (0 when the mean load already exceeds capacity).
    @raise Invalid_argument if [m <= 0] or [capacity <= 0]. *)

val chernoff_overflow_bound :
  log_mgf:log_mgf -> m:float -> capacity:float -> float
(** exp(-chernoff_exponent): upper bound on P(S_m > c). *)

val admissible :
  log_mgf:log_mgf -> capacity:float -> p_target:float -> int
(** Largest integer [m] whose Chernoff bound meets [p_target]
    (binary search; the bound is monotone in m). *)

val gaussian_alpha_of_p : float -> float
(** For the Gaussian log-MGF the Chernoff criterion reduces to the
    paper's criterion with alpha replaced by sqrt(2 ln(1/p)) — always
    larger than Q^{-1}(p), i.e. Chernoff is uniformly more conservative.
    This returns that sqrt(2 ln(1/p)). *)
