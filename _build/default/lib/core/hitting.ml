let max_gaussian_arg = 38.0 (* phi underflows just past here *)

let probability ~alpha ~beta ~incr_variance ~v_plus0 =
  if beta <= 0.0 then invalid_arg "Hitting.probability: requires beta > 0";
  if v_plus0 < 0.0 then invalid_arg "Hitting.probability: requires v_plus0 >= 0";
  let integrand t =
    let s2 = incr_variance t in
    if s2 <= 0.0 then 0.0
    else begin
      let s = sqrt s2 in
      let z = (alpha +. (beta *. t)) /. s in
      if z > max_gaussian_arg then 0.0
      else v_plus0 *. (alpha +. (beta *. t)) /. (s2 *. s) *. Mbac_stats.Gaussian.phi z
    end
  in
  0.5 *. Mbac_numerics.Integrate.semi_infinite ~rel_tol:1e-9 integrand ~lo:0.0

let probability_stationary ~alpha ~beta ~rho ~rho_slope0 =
  probability ~alpha ~beta
    ~incr_variance:(fun t -> 2.0 *. (1.0 -. rho t))
    ~v_plus0:(2.0 *. rho_slope0)
