(** Impulsive-load analysis with infinite holding time (§3.1).

    A burst of flows arrives at time 0; the certainty-equivalent MBAC
    admits M_0 of them based on the initial rates; nobody ever leaves. *)

val admitted_mean_approx : Params.t -> float
(** E[M_0] ~ n - (sigma/mu) alpha_q sqrt n (from eqn (11): E[Y_0] = 0). *)

val admitted_std_approx : Params.t -> float
(** Std[M_0] ~ (sigma/mu) sqrt n (eqn (11): the Y_0 fluctuation). *)

val overflow_probability : Params.t -> float
(** The certainty-equivalence penalty, Prop 3.3:
    p_f -> Q(alpha_q / sqrt 2) as n -> infinity.  Independent of every
    traffic parameter except p_q. *)

val adjusted_p_ce : Params.t -> float
(** The corrected target of eqn (15): run the CE criterion at
    p_ce = Q(sqrt 2 alpha_q) to actually deliver p_q. *)

val adjusted_p_ce_approx : Params.t -> float
(** Closed-form approximation p_ce ~ sqrt(pi) alpha_q p_q^2, exhibiting
    the paper's point that the adjusted target is roughly the {e square}
    of the QoS target.  (Derived from eqn (15) with Q(x) ~ phi(x)/x; the
    memo's printed prefactor alpha_q/(2 sqrt pi) drops a factor 2 pi.) *)

val utilization_loss : Params.t -> float
(** Bandwidth sacrificed by running at the adjusted target instead of the
    perfect-knowledge allocation: (sqrt 2 - 1) sigma alpha_q sqrt n
    (§3.1). *)

val sensitivity_mu : Params.t -> float
(** s_mu = - phi(alpha_q) (mu / sigma) sqrt m*: sensitivity of p_f to an
    error in the measured mean — grows like sqrt n (§3.1). *)

val sensitivity_sigma : Params.t -> float
(** s_sigma = - alpha_q phi(alpha_q) / sigma: independent of system size
    (§3.1). *)

val predicted_p_f_shift : Params.t -> d_mu:float -> d_sigma:float -> float
(** First-order §3.1 prediction of the overflow probability when the
    measured parameters deviate by (d_mu, d_sigma) from the truth:
    p_q + s_mu d_mu + s_sigma d_sigma.  Over-estimation (positive
    deviations) lowers p_f, under-estimation raises it — the asymmetry
    discussed after Prop 3.3 appears at second order. *)

val actual_p_f_given_error : Params.t -> d_mu:float -> d_sigma:float -> float
(** Exact counterpart of {!predicted_p_f_shift}: admit
    m(mu_hat, sigma_hat) flows per the certainty-equivalent criterion at
    the deviated estimates, then evaluate the true Gaussian overflow
    probability of that population. *)
