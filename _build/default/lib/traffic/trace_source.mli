(** Play a {!Trace.t} back as a fluid {!Source.t}.

    Each flow starts at an independent uniformly-random offset into the
    trace and loops cyclically — the standard way to build many
    statistically identical flows from one trace (used for the paper's
    Starwars experiments, Figs 11–12). *)

val create :
  Mbac_stats.Rng.t -> Trace.t -> start:float -> Source.t
(** Playback at the trace's native sample spacing.  The source's nominal
    mean/variance are the trace's time-average statistics. *)

val create_at_offset : Trace.t -> offset:float -> start:float -> Source.t
(** Deterministic variant for tests: playback beginning at a given trace
    offset. *)
