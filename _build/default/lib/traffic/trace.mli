(** Rate traces: uniformly sampled bandwidth processes, e.g. per-frame
    sizes of an encoded video expressed as rates.  Traces feed
    {!Trace_source} (playback as a fluid source) and the RCBR
    renegotiation transform ({!Renegotiate}). *)

type t = {
  dt : float;           (** sample spacing (time units per sample) *)
  rates : float array;  (** rate during [i*dt, (i+1)*dt) *)
}

val create : dt:float -> float array -> t
(** @raise Invalid_argument if [dt <= 0], the trace is empty, or any rate
    is negative. *)

val duration : t -> float
val length : t -> int
val mean : t -> float
val variance : t -> float
(** Population variance over samples (samples are equally weighted in
    time, so this is the time-average variance). *)

val rate_at : t -> float -> float
(** Rate at a given time offset; wraps around cyclically (traces are
    looped, as is standard when driving long simulations from a finite
    trace). *)

val autocorrelation : t -> max_lag:int -> float array
(** Sample autocorrelation of the rate sequence (FFT-based). *)

val scale_to_mean : t -> mean:float -> t
(** Linearly rescale rates so the trace mean equals [mean]. *)

val to_csv : t -> string
(** Two-column CSV: time, rate (header included). *)

val of_csv : string -> t
(** Parse the format produced by {!to_csv}.
    @raise Failure on malformed input. *)
