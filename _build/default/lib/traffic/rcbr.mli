(** The paper's simulation source (§5.2): Renegotiated CBR traffic.

    The rate is constant over intervals whose lengths are i.i.d.
    exponential with mean [t_c]; at each interval boundary a fresh rate is
    drawn from a Gaussian marginal with the given [mu] and [sigma]
    (truncated at 0 — with the paper's sigma/mu = 0.3 the truncated mass
    is ~4e-4).  Because the renewal epochs form a Poisson process, the
    rate autocorrelation is exactly rho(t) = exp(-|t|/t_c) (eqn (31)),
    i.e. the aggregate limit is the Ornstein–Uhlenbeck process the paper
    analyses. *)

type params = {
  mu : float;      (** marginal mean rate *)
  sigma : float;   (** marginal standard deviation *)
  t_c : float;     (** mean renegotiation interval = correlation time-scale *)
}

val default_params : mu:float -> params
(** The paper's setting: [sigma = 0.3 *. mu], [t_c = 1.0]. *)

val create : Mbac_stats.Rng.t -> params -> start:float -> Source.t
(** A fresh source at time [start], with the initial rate drawn from the
    stationary marginal and the first renegotiation scheduled
    exponentially after [start].
    @raise Invalid_argument if [mu < 0], [sigma < 0] or [t_c <= 0]. *)

val autocorrelation : params -> float -> float
(** [autocorrelation p t = exp (-. |t| /. p.t_c)]. *)
