type t = {
  mean : float;
  variance : float;
  mutable rate : float;
  mutable next_change : float;
  step : now:float -> float * float;
  mutable peak_hint : float;
}

let create ~mean ~variance ~rate0 ~next_change0 ~step =
  if variance < 0.0 then invalid_arg "Source.create: negative variance";
  { mean; variance; rate = rate0; next_change = next_change0; step;
    peak_hint = mean +. (3.0 *. sqrt variance) }

let rate t = t.rate
let next_change t = t.next_change

let fire t ~now =
  assert (now >= t.next_change -. 1e-9);
  let rate, next = t.step ~now in
  assert (next > now);
  t.rate <- rate;
  t.next_change <- next

let mean t = t.mean
let variance t = t.variance
let peak_hint t = t.peak_hint
let set_peak_hint t p = t.peak_hint <- p
