(** K-state Markov-modulated fluid sources.

    The source emits at rate [rates.(i)] while a continuous-time Markov
    chain with generator [generator] sits in state [i].  This is the
    classical model for which the paper's functional CLT assumption B.6
    is known to hold (§4, appendix B). *)

type params = {
  generator : float array array; (** CTMC generator: rows sum to 0 *)
  rates : float array;           (** per-state emission rate *)
}

val validate : params -> unit
(** @raise Invalid_argument on malformed generators (non-square, negative
    off-diagonals, rows not summing to ~0) or mismatched [rates]. *)

val stationary : params -> float array
(** Stationary distribution of the modulating chain. *)

val mean : params -> float
(** Stationary mean rate. *)

val variance : params -> float
(** Stationary rate variance. *)

val create : Mbac_stats.Rng.t -> params -> start:float -> Source.t
(** A source started in a state drawn from the stationary distribution. *)
