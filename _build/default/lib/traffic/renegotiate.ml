let segments ~segment_len ~percentile trace =
  if segment_len <= 0 then
    invalid_arg "Renegotiate.segments: requires segment_len > 0";
  if percentile < 0.0 || percentile > 1.0 then
    invalid_arg "Renegotiate.segments: percentile outside [0,1]";
  let rates = trace.Trace.rates in
  let n = Array.length rates in
  let out = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let stop = min n (!i + segment_len) in
    let seg = Array.sub rates !i (stop - !i) in
    let level = Mbac_stats.Descriptive.quantile seg percentile in
    for j = !i to stop - 1 do
      out.(j) <- level
    done;
    i := stop
  done;
  Trace.create ~dt:trace.Trace.dt out

let renegotiation_count trace =
  let rates = trace.Trace.rates in
  let count = ref 0 in
  for i = 1 to Array.length rates - 1 do
    if rates.(i) <> rates.(i - 1) then incr count
  done;
  !count
