(** Statistics of superposed sources. *)

val total_rate : Source.t list -> float
val mean : Source.t list -> float
(** Sum of nominal means. *)

val variance : Source.t list -> float
(** Sum of nominal variances (sources are independent). *)

val sample_path :
  Mbac_stats.Rng.t ->
  (Mbac_stats.Rng.t -> start:float -> Source.t) ->
  n_sources:int ->
  horizon:float ->
  dt:float ->
  float array
(** [sample_path rng make ~n_sources ~horizon ~dt] superposes [n_sources]
    fresh sources and records the aggregate rate every [dt] up to
    [horizon] (used by tests and examples to verify aggregate Gaussianity
    and autocorrelation).  Sources advance by firing their own change
    events; the returned array has [floor(horizon/dt) + 1] samples. *)
