type params = { mu : float; sigma : float; t_c : float }

let default_params ~mu = { mu; sigma = 0.3 *. mu; t_c = 1.0 }

let validate { mu; sigma; t_c } =
  if mu < 0.0 then invalid_arg "Rcbr.create: requires mu >= 0";
  if sigma < 0.0 then invalid_arg "Rcbr.create: requires sigma >= 0";
  if t_c <= 0.0 then invalid_arg "Rcbr.create: requires t_c > 0"

let create rng p ~start =
  validate p;
  let draw_rate () =
    Mbac_stats.Sample.gaussian_truncated_nonneg rng ~mu:p.mu ~sigma:p.sigma
  in
  let draw_interval () = Mbac_stats.Sample.exponential rng ~mean:p.t_c in
  let step ~now = (draw_rate (), now +. draw_interval ()) in
  Source.create ~mean:p.mu ~variance:(p.sigma *. p.sigma)
    ~rate0:(draw_rate ())
    ~next_change0:(start +. draw_interval ())
    ~step

let autocorrelation p t = exp (-.abs_float t /. p.t_c)
