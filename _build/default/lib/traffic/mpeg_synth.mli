(** Synthetic "Starwars-like" VBR video traffic.

    The paper's Figures 11–12 use the MPEG-1 Starwars trace
    (Garrett–Willinger), which exhibits long-range dependence with Hurst
    parameter ~0.8–0.9 and a right-skewed marginal.  That trace is not
    redistributable, so this module synthesises a statistically similar
    rate process (the substitution is documented in DESIGN.md §3):

    - a fractional Gaussian noise base (circulant embedding, exact ACF)
      supplies the long-range dependence;
    - a scene process (exponential scene lengths, lognormal scene levels)
      supplies the slow time-scale level shifts typical of film content;
    - a lognormal transform of the fGn supplies the skewed marginal;
    - mean and coefficient of variation are then matched exactly by an
      affine rescale.

    What matters for the experiments is (a) correlation well beyond any
    estimator memory window and (b) a non-Gaussian marginal; both are
    reproduced. *)

type params = {
  mean_rate : float;        (** target mean rate *)
  cv : float;               (** coefficient of variation (std/mean) *)
  hurst : float;            (** Hurst parameter of the fGn base *)
  frame_dt : float;         (** sample spacing of the output trace *)
  scene_mean_frames : float;(** mean scene length, in samples *)
  scene_cv : float;         (** scene level variability (lognormal cv) *)
  scene_weight : float;     (** in [0,1]: share of variance from scenes *)
}

val default_params : mean_rate:float -> params
(** cv = 0.55, hurst = 0.85, frame_dt chosen so 24 samples per time unit,
    mean scene 240 frames, scene_cv = 0.35, scene_weight = 0.4 — matching
    published statistics of the Starwars MPEG-1 trace. *)

val generate : Mbac_stats.Rng.t -> params -> frames:int -> Trace.t
(** Generate a trace of [frames] samples.
    @raise Invalid_argument on nonsensical parameters. *)
