(** Two-state on/off fluid source: peak rate while on, silent while off,
    exponential sojourn times.  A convenience specialisation of
    {!Markov_fluid} (implemented directly for speed and clarity). *)

type params = {
  peak : float;      (** emission rate while on *)
  mean_on : float;   (** mean on-period duration *)
  mean_off : float;  (** mean off-period duration *)
}

val mean : params -> float
(** peak * mean_on / (mean_on + mean_off). *)

val variance : params -> float
(** peak^2 * p * (1 - p) with p the on-probability. *)

val autocorrelation : params -> float -> float
(** exp(-|t| (1/mean_on + 1/mean_off)): the on/off chain relaxes at the
    sum of the transition rates. *)

val create : Mbac_stats.Rng.t -> params -> start:float -> Source.t
(** @raise Invalid_argument unless all three parameters are positive. *)
