(** RCBR renegotiation: turn a raw VBR trace into a piecewise-CBR trace.

    The paper's video experiments use "a piecewise CBR version of the
    MPEG-1 encoded Starwars movie" [10]: the source renegotiates a
    constant rate from the network at segment boundaries, with the rate
    chosen to cover the upcoming segment.  We reproduce that with
    fixed-length segments and a per-segment percentile (the percentile
    plays the role of the edge buffer: 1.0 = lossless peak provisioning,
    lower values absorb the excess in the edge buffer). *)

val segments :
  segment_len:int -> percentile:float -> Trace.t -> Trace.t
(** [segments ~segment_len ~percentile trace] replaces each consecutive
    block of [segment_len] samples by its [percentile] order statistic
    (the final partial block uses whatever samples remain).
    @raise Invalid_argument if [segment_len <= 0] or [percentile] is
    outside [0,1]. *)

val renegotiation_count : Trace.t -> int
(** Number of rate changes in a trace (adjacent unequal samples) — the
    renegotiation-frequency metric of the RCBR service model. *)
