type t = { dt : float; rates : float array }

let create ~dt rates =
  if dt <= 0.0 then invalid_arg "Trace.create: requires dt > 0";
  if Array.length rates = 0 then invalid_arg "Trace.create: empty trace";
  Array.iter
    (fun r -> if r < 0.0 then invalid_arg "Trace.create: negative rate")
    rates;
  { dt; rates = Array.copy rates }

let duration t = t.dt *. float_of_int (Array.length t.rates)
let length t = Array.length t.rates
let mean t = Mbac_stats.Descriptive.mean t.rates

let variance t =
  let m = mean t in
  let acc = ref 0.0 in
  Array.iter (fun r -> acc := !acc +. ((r -. m) *. (r -. m))) t.rates;
  !acc /. float_of_int (Array.length t.rates)

let rate_at t time =
  let n = Array.length t.rates in
  let i = int_of_float (floor (time /. t.dt)) in
  let i = ((i mod n) + n) mod n in
  t.rates.(i)

let autocorrelation t ~max_lag =
  Mbac_numerics.Fft.autocorrelation_fft t.rates ~max_lag

let scale_to_mean t ~mean:target =
  let m = mean t in
  if m <= 0.0 then invalid_arg "Trace.scale_to_mean: zero-mean trace";
  { t with rates = Array.map (fun r -> r *. target /. m) t.rates }

let to_csv t =
  let buf = Buffer.create (16 * Array.length t.rates) in
  Buffer.add_string buf "time,rate\n";
  Array.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf "%.6f,%.9g\n" (float_of_int i *. t.dt) r))
    t.rates;
  Buffer.contents buf

let of_csv s =
  let lines = String.split_on_char '\n' s in
  let parse_line line =
    match String.split_on_char ',' (String.trim line) with
    | [ time; rate ] -> (
        try Some (float_of_string time, float_of_string rate)
        with _ -> failwith ("Trace.of_csv: bad line: " ^ line))
    | [ "" ] | [] -> None
    | _ -> failwith ("Trace.of_csv: bad line: " ^ line)
  in
  let rows =
    List.filter_map parse_line
      (match lines with
      | header :: rest when String.length header >= 4
                            && String.sub header 0 4 = "time" -> rest
      | all -> all)
  in
  match rows with
  | [] | [ _ ] -> failwith "Trace.of_csv: need at least two samples"
  | (t0, _) :: (t1, _) :: _ ->
      let dt = t1 -. t0 in
      if dt <= 0.0 then failwith "Trace.of_csv: non-increasing timestamps";
      create ~dt (Array.of_list (List.map snd rows))
