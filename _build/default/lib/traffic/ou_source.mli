(** Discretised Ornstein–Uhlenbeck rate process.

    The rate is sampled on a fixed grid of period [dt] from the exact OU
    transition kernel, so the {e sampled} process has autocorrelation
    exactly exp(-|t|/t_c) at grid multiples; between samples the rate is
    held constant (fluid model).  Rates are clipped at 0.  Useful as an
    alternative source whose aggregate matches the paper's limiting
    process even for a single flow. *)

type params = {
  mu : float;
  sigma : float;
  t_c : float;  (** correlation time-scale *)
  dt : float;   (** sampling period; should be << t_c *)
}

val default_params : mu:float -> params
(** sigma = 0.3 mu, t_c = 1.0, dt = t_c / 10. *)

val create : Mbac_stats.Rng.t -> params -> start:float -> Source.t
(** @raise Invalid_argument unless [sigma >= 0], [t_c > 0], [dt > 0]. *)
