(** On/off source with Pareto (heavy-tailed) on-periods.

    The superposition of many such sources converges to fractional
    Brownian motion (Taqqu–Willinger–Sherman): with on-period tail index
    1 < shape < 2 the aggregate is long-range dependent with
    H = (3 - shape) / 2.  A renewal-level alternative to the fGn trace
    machinery for exercising the MBAC under LRD traffic. *)

type params = {
  peak : float;       (** rate while on *)
  mean_on : float;    (** mean on-period (Pareto with this mean) *)
  mean_off : float;   (** mean off-period (exponential) *)
  shape : float;      (** Pareto tail index of the on-period, in (1, 2] *)
}

val implied_hurst : params -> float
(** (3 - shape)/2. *)

val mean : params -> float
val variance : params -> float

val create : Mbac_stats.Rng.t -> params -> start:float -> Source.t
(** @raise Invalid_argument unless all durations/rates are positive and
    [1 < shape <= 2]. *)
