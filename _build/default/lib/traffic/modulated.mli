(** Non-stationary traffic: wrap any source with a piecewise-constant
    modulation schedule that scales its emitted rate over time.

    The paper's stationarity assumption holds only "within the memory
    time-scale" (§2); this wrapper lets the experiments inject level
    shifts and test how estimator memory trades adaptation speed against
    smoothing. *)

type schedule = (float * float) array
(** [(t_i, factor_i)]: from time [t_i] (inclusive) the source's rate is
    multiplied by [factor_i].  Must be sorted by time with the first
    entry at or before the source's start; factors must be positive. *)

val validate_schedule : schedule -> unit
(** @raise Invalid_argument on unsorted times or non-positive factors. *)

val factor_at : schedule -> float -> float
(** The multiplier in force at a given time. *)

val create : start:float -> schedule -> Source.t -> Source.t
(** [create ~start schedule inner] emits [factor(t) * rate(inner)] for a
    flow whose clock begins at [start] (must match the inner source's
    start).  Rate-change epochs are the union of the inner source's
    epochs and the schedule's switch times after [start].  The declared
    nominal mean/variance are the inner source's scaled by the factor in
    force at [start] (the schedule is a perturbation, not part of the
    stationary description). *)
