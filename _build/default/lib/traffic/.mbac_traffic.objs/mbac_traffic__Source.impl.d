lib/traffic/source.ml:
