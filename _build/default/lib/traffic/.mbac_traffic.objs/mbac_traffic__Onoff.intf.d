lib/traffic/onoff.mli: Mbac_stats Source
