lib/traffic/renegotiate.mli: Trace
