lib/traffic/trace_source.ml: Array Float Mbac_stats Source Trace
