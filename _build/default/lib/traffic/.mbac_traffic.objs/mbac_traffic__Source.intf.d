lib/traffic/source.mli:
