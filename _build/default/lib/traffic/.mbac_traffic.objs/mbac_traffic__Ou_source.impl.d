lib/traffic/ou_source.ml: Float Mbac_stats Source
