lib/traffic/onoff.ml: Mbac_stats Source
