lib/traffic/trace.mli:
