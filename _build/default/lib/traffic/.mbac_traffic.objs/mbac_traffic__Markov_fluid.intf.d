lib/traffic/markov_fluid.mli: Mbac_stats Source
