lib/traffic/rcbr.mli: Mbac_stats Source
