lib/traffic/modulated.mli: Source
