lib/traffic/mpeg_synth.ml: Array Float Mbac_numerics Mbac_stats Trace
