lib/traffic/modulated.ml: Array Float Source
