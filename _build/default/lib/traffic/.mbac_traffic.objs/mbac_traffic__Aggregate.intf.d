lib/traffic/aggregate.mli: Mbac_stats Source
