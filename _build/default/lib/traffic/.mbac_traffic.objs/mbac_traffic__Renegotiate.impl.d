lib/traffic/renegotiate.ml: Array Mbac_stats Trace
