lib/traffic/pareto_onoff.mli: Mbac_stats Source
