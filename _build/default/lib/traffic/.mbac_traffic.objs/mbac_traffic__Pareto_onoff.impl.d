lib/traffic/pareto_onoff.ml: Mbac_stats Source
