lib/traffic/ou_source.mli: Mbac_stats Source
