lib/traffic/aggregate.ml: Array List Mbac_stats Source
