lib/traffic/rcbr.ml: Mbac_stats Source
