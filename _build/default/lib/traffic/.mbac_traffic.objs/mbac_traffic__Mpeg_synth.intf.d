lib/traffic/mpeg_synth.mli: Mbac_stats Trace
