lib/traffic/markov_fluid.ml: Array Mbac_numerics Mbac_stats Source
