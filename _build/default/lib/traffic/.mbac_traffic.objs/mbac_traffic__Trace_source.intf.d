lib/traffic/trace_source.mli: Mbac_stats Source Trace
