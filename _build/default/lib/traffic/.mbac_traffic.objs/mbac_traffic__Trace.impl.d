lib/traffic/trace.ml: Array Buffer List Mbac_numerics Mbac_stats Printf String
