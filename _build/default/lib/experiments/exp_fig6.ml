(** Figure 6: the adjusted certainty-equivalent target p_ce obtained by
    inverting eqn (38), for n in {100, 1000}, T_h in {1e3, 1e4},
    p_q = 1e-3, as a function of the memory window T_m.  Analysis only. *)

type curve = { n : float; t_h : float; points : (float * float) list }
(* points: (t_m, log10 p_ce) *)

let t_ms =
  [ 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0; 3000.0 ]

let compute () =
  List.map
    (fun (n, t_h) ->
      let p = Mbac.Params.make ~n ~mu:1.0 ~sigma:0.3 ~t_h ~t_c:1.0 ~p_q:1e-3 in
      let points =
        List.map
          (fun t_m ->
            (t_m, Mbac.Inversion.adjusted_log_p_ce ~t_m p /. log 10.0))
          t_ms
      in
      { n; t_h; points })
    [ (100.0, 1e3); (100.0, 1e4); (1000.0, 1e3); (1000.0, 1e4) ]

let run ~profile fmt =
  ignore profile;
  Common.section fmt "fig6"
    "Adjusted target p_ce by inversion of eqn (38), p_q = 1e-3";
  let curves = compute () in
  let header =
    "T_m"
    :: List.map
         (fun c -> Printf.sprintf "n=%g,T_h=%g" c.n c.t_h)
         curves
  in
  let rows =
    List.map
      (fun t_m ->
        Common.fnum3 t_m
        :: List.map
             (fun c ->
               let lp = List.assoc t_m c.points in
               Printf.sprintf "%.2f" lp)
             curves)
      t_ms
  in
  Common.table fmt ~header ~rows;
  Format.fprintf fmt
    "Cells are log10(p_ce).  Paper: for small T_m the adjusted target is \
     tiny (< 1e-10); it relaxes toward p_q as T_m grows, sooner for \
     larger systems / shorter holding times (smaller T~_h).@."
