lib/experiments/exp_fig7.ml: Common Exp_fig5 Float Format List Mbac Mbac_sim Mbac_stats Printf
