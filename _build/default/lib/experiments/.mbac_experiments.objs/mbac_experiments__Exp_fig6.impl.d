lib/experiments/exp_fig6.ml: Common Format List Mbac Printf
