lib/experiments/exp_regimes.ml: Common Format List Mbac
