lib/experiments/exp_prop31.ml: Array Common Format List Mbac Mbac_sim Mbac_stats Printf
