lib/experiments/exp_util40.ml: Common Exp_fig5 Format List Mbac Mbac_sim Printf
