lib/experiments/exp_prop33.ml: Array Common Format List Mbac Mbac_sim Mbac_stats Mbac_traffic Printf
