lib/experiments/exp_fig10.ml: Array Common Exp_fig9 Format List Mbac Mbac_sim Printf
