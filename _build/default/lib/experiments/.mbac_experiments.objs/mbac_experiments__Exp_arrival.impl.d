lib/experiments/exp_arrival.ml: Common Exp_fig5 Float Format List Mbac Mbac_sim Printf
