lib/experiments/exp_nonstat.ml: Array Common Format List Mbac Mbac_sim Mbac_traffic Printf
