lib/experiments/common.mli: Format Mbac Mbac_sim Mbac_stats Mbac_traffic
