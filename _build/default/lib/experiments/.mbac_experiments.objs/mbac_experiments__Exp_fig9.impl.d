lib/experiments/exp_fig9.ml: Array Common Format List Mbac
