lib/experiments/exp_utility.ml: Common Exp_fig5 Format List Mbac Mbac_sim Printf
