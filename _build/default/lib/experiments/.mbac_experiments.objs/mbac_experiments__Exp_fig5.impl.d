lib/experiments/exp_fig5.ml: Common Format List Mbac Mbac_sim Printf
