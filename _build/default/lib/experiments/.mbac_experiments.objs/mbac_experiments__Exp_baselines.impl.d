lib/experiments/exp_baselines.ml: Common Exp_fig5 Format List Mbac Mbac_sim Printf
