lib/experiments/exp_hetero.ml: Common Format List Mbac Mbac_sim Mbac_stats Mbac_traffic Printf
