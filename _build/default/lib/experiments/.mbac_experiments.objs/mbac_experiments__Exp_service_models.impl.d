lib/experiments/exp_service_models.ml: Common Exp_fig5 Float Format List Mbac Mbac_sim Printf
