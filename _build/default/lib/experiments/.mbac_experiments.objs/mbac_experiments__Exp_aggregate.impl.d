lib/experiments/exp_aggregate.ml: Common Exp_fig5 Format List Mbac Mbac_sim Printf
