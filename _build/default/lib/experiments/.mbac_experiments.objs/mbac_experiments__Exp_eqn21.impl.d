lib/experiments/exp_eqn21.ml: Array Common Format List Mbac Mbac_sim
