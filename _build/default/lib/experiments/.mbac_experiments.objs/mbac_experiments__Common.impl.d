lib/experiments/common.ml: Filename Float Format Hashtbl List Mbac Mbac_sim Mbac_stats Mbac_traffic Printf String Sys
