lib/experiments/exp_starwars.ml: Common Format List Mbac Mbac_sim Mbac_stats Mbac_traffic Printf
