(** §3.2 / eqn (21): finite holding time after an impulsive load — the
    overflow probability p_f(t) rises from 0 (correlation protects early
    times), peaks, and decays (departures repair the admission error). *)

type point = { t : float; theory : float; sim : float }

let params =
  (* T~_h = 10, alpha_q ~ 2.33: a measurable hump for Monte Carlo. *)
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:100.0 ~t_c:1.0 ~p_q:1e-2

let times = [| 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 3.0; 4.0; 6.0; 8.0; 12.0 |]

let compute ~profile =
  let reps =
    match profile with Common.Quick -> 4_000 | Common.Full -> 40_000
  in
  let p = params in
  let sim =
    Mbac_sim.Impulsive_driver.overflow_vs_time (Common.rng_for "eqn21")
      ~replications:reps
      ~n_offered:(2 * int_of_float p.Mbac.Params.n)
      ~capacity:(Mbac.Params.capacity p)
      ~alpha_ce:(Mbac.Params.alpha_q p)
      ~holding_time_mean:p.Mbac.Params.t_h ~times
      ~make_source:(Common.rcbr_factory ~p)
  in
  Array.to_list
    (Array.mapi
       (fun i t ->
         { t;
           theory = Mbac.Finite_holding.overflow_probability_at_ou p t;
           sim = sim.(i) })
       times)

let run ~profile fmt =
  Common.section fmt "eqn21"
    "Transient overflow probability with finite holding times";
  Format.fprintf fmt "%a, T~_h = %g@." Mbac.Params.pp params
    (Mbac.Params.t_h_tilde params);
  let rows = compute ~profile in
  Common.table fmt
    ~header:[ "t"; "theory eqn(21)"; "simulated" ]
    ~rows:
      (List.map
         (fun r -> [ Common.fnum3 r.t; Common.fnum r.theory; Common.fnum r.sim ])
         rows);
  let peak_t = Mbac.Finite_holding.peak_time_ou params in
  Format.fprintf fmt
    "Theory peak at t = %.2f with p_f = %s; early times are protected by \
     correlation, late times by departures.@."
    peak_t
    (Common.fnum (Mbac.Finite_holding.peak_overflow_ou params))
