let pi = 4.0 *. atan 1.0

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  if n < 1 then invalid_arg "Fft.next_power_of_two: requires n >= 1";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Iterative in-place Cooley-Tukey with bit-reversal permutation.
   [sign] = -1.0 for the forward transform, +1.0 for the inverse. *)
let transform ~sign re im =
  let n = Array.length re in
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  if not (is_power_of_two n) then invalid_arg "Fft: length must be a power of 2";
  (* bit reversal *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in re.(i) <- re.(!j); re.(!j) <- tr;
      let ti = im.(i) in im.(i) <- im.(!j); im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* butterflies *)
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2.0 *. pi /. float_of_int !len in
    let wr = cos ang and wi = sin ang in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = 0 to (!len / 2) - 1 do
        let a = !i + k and b = !i + k + (!len / 2) in
        let xr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
        let xi = (re.(b) *. !ci) +. (im.(b) *. !cr) in
        re.(b) <- re.(a) -. xr;
        im.(b) <- im.(a) -. xi;
        re.(a) <- re.(a) +. xr;
        im.(a) <- im.(a) +. xi;
        let cr' = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := cr'
      done;
      i := !i + !len
    done;
    len := !len * 2
  done

let fft ~re ~im = transform ~sign:(-1.0) re im

let ifft ~re ~im =
  transform ~sign:1.0 re im;
  let n = float_of_int (Array.length re) in
  for i = 0 to Array.length re - 1 do
    re.(i) <- re.(i) /. n;
    im.(i) <- im.(i) /. n
  done

let autocorrelation_fft xs ~max_lag =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Fft.autocorrelation_fft: empty input";
  let max_lag = min max_lag (n - 1) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let m = next_power_of_two (2 * n) in
  let re = Array.make m 0.0 and im = Array.make m 0.0 in
  for i = 0 to n - 1 do
    re.(i) <- xs.(i) -. mean
  done;
  fft ~re ~im;
  (* power spectrum *)
  for i = 0 to m - 1 do
    re.(i) <- (re.(i) *. re.(i)) +. (im.(i) *. im.(i));
    im.(i) <- 0.0
  done;
  ifft ~re ~im;
  let c0 = re.(0) in
  if c0 <= 0.0 then Array.make (max_lag + 1) 0.0
  else Array.init (max_lag + 1) (fun k -> re.(k) /. c0)
