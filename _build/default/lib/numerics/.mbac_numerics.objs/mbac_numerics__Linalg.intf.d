lib/numerics/linalg.mli:
