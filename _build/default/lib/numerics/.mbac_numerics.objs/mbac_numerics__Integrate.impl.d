lib/numerics/integrate.ml: Array Float
