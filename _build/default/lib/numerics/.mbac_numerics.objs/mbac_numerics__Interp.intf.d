lib/numerics/interp.mli:
