lib/numerics/fft.ml: Array
