lib/numerics/integrate.mli:
