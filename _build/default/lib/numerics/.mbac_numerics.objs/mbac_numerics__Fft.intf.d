lib/numerics/fft.mli:
