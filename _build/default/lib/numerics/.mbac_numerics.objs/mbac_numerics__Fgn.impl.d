lib/numerics/fgn.ml: Array Fft Mbac_stats
