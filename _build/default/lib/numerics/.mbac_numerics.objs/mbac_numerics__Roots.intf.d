lib/numerics/roots.mli:
