lib/numerics/fgn.mli: Mbac_stats
