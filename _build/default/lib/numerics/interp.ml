type t = { xs : float array; ys : float array }

let of_points points =
  if Array.length points < 2 then
    invalid_arg "Interp.of_points: requires >= 2 points";
  let points = Array.copy points in
  Array.sort (fun (x1, _) (x2, _) -> compare x1 x2) points;
  let xs = Array.map fst points and ys = Array.map snd points in
  for i = 1 to Array.length xs - 1 do
    if xs.(i) = xs.(i - 1) then
      invalid_arg "Interp.of_points: duplicate x values"
  done;
  { xs; ys }

let of_samples ~x0 ~dx ys =
  if dx <= 0.0 then invalid_arg "Interp.of_samples: requires dx > 0";
  if Array.length ys < 2 then
    invalid_arg "Interp.of_samples: requires >= 2 samples";
  let xs = Array.init (Array.length ys) (fun i -> x0 +. (float_of_int i *. dx)) in
  { xs; ys = Array.copy ys }

let eval t x =
  let n = Array.length t.xs in
  if x <= t.xs.(0) then t.ys.(0)
  else if x >= t.xs.(n - 1) then t.ys.(n - 1)
  else begin
    (* binary search for the segment containing x *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    let x0 = t.xs.(!lo) and x1 = t.xs.(!hi) in
    let y0 = t.ys.(!lo) and y1 = t.ys.(!hi) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

let map_y f t = { xs = Array.copy t.xs; ys = Array.map f t.ys }
