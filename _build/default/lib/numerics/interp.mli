(** Tabulated functions with linear interpolation (used for trace-driven
    sources and for caching expensive analysis curves). *)

type t

val of_points : (float * float) array -> t
(** Build from (x, y) points.  The points are sorted by x.
    @raise Invalid_argument on < 2 points or duplicate x values. *)

val of_samples : x0:float -> dx:float -> float array -> t
(** Uniformly spaced samples starting at [x0] with step [dx > 0]. *)

val eval : t -> float -> float
(** Linear interpolation; clamps to the end values outside the domain. *)

val domain : t -> float * float
val map_y : (float -> float) -> t -> t
