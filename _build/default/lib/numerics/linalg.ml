let solve a b =
  let n = Array.length a in
  if n = 0 || Array.length b <> n then
    invalid_arg "Linalg.solve: dimension mismatch";
  Array.iter (fun row ->
      if Array.length row <> n then invalid_arg "Linalg.solve: non-square matrix")
    a;
  (* augmented working copy *)
  let m = Array.init n (fun i -> Array.append (Array.copy a.(i)) [| b.(i) |]) in
  for col = 0 to n - 1 do
    (* partial pivoting *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if abs_float m.(r).(col) > abs_float m.(!pivot).(col) then pivot := r
    done;
    if abs_float m.(!pivot).(col) < 1e-13 then
      failwith "Linalg.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp
    end;
    for r = col + 1 to n - 1 do
      let factor = m.(r).(col) /. m.(col).(col) in
      for c = col to n do
        m.(r).(c) <- m.(r).(c) -. (factor *. m.(col).(c))
      done
    done
  done;
  (* back substitution *)
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref m.(i).(n) in
    for j = i + 1 to n - 1 do
      s := !s -. (m.(i).(j) *. x.(j))
    done;
    x.(i) <- !s /. m.(i).(i)
  done;
  x

let mat_vec a x =
  Array.map
    (fun row ->
      let acc = ref 0.0 in
      Array.iteri (fun j v -> acc := !acc +. (v *. x.(j))) row;
      !acc)
    a

let stationary_distribution q =
  let n = Array.length q in
  if n = 0 then invalid_arg "Linalg.stationary_distribution: empty generator";
  (* Solve pi Q = 0 with sum(pi) = 1: transpose Q, replace the last
     equation by the normalisation constraint. *)
  let a =
    Array.init n (fun i ->
        Array.init n (fun j -> if i = n - 1 then 1.0 else q.(j).(i)))
  in
  let b = Array.init n (fun i -> if i = n - 1 then 1.0 else 0.0) in
  solve a b
