(** Small dense linear algebra (Gaussian elimination), enough to compute
    stationary distributions of the Markov-modulated fluid sources. *)

val solve : float array array -> float array -> float array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  [a] and [b] are not modified.
    @raise Invalid_argument on dimension mismatch.
    @raise Failure if the matrix is (numerically) singular. *)

val mat_vec : float array array -> float array -> float array

val stationary_distribution : float array array -> float array
(** [stationary_distribution q] is the probability vector [pi] with
    [pi Q = 0] and [sum pi = 1], for a CTMC generator matrix [q]
    (rows sum to 0, off-diagonals >= 0).
    @raise Failure if the chain is reducible (singular system). *)
