(** Radix-2 complex FFT, used by the circulant-embedding fractional
    Gaussian noise generator and for fast autocorrelation estimates. *)

val is_power_of_two : int -> bool

val next_power_of_two : int -> int
(** Smallest power of two >= the argument (argument must be >= 1). *)

val fft : re:float array -> im:float array -> unit
(** In-place forward DFT of the complex sequence (re, im).
    @raise Invalid_argument unless both arrays share a power-of-two length. *)

val ifft : re:float array -> im:float array -> unit
(** In-place inverse DFT (includes the 1/n normalisation). *)

val autocorrelation_fft : float array -> max_lag:int -> float array
(** Biased sample autocorrelation of a real series up to [max_lag],
    computed in O(n log n) via zero-padded FFT.  [result.(0) = 1.0]
    (all-zero result if the series variance vanishes). *)
