let bisect ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let flo = f lo and fhi = f hi in
  if flo = 0.0 then lo
  else if fhi = 0.0 then hi
  else if flo *. fhi > 0.0 then
    invalid_arg "Roots.bisect: interval does not bracket a root"
  else begin
    let rec go lo hi flo n =
      let mid = 0.5 *. (lo +. hi) in
      if n >= max_iter || hi -. lo <= tol *. (1.0 +. abs_float mid) then mid
      else begin
        let fmid = f mid in
        if fmid = 0.0 then mid
        else if flo *. fmid < 0.0 then go lo mid flo (n + 1)
        else go mid hi fmid (n + 1)
      end
    in
    go lo hi flo 0
  end

let brent ?(tol = 1e-12) ?(max_iter = 200) f ~lo ~hi =
  let a = ref lo and b = ref hi in
  let fa = ref (f !a) and fb = ref (f !b) in
  if !fa = 0.0 then !a
  else if !fb = 0.0 then !b
  else if !fa *. !fb > 0.0 then
    invalid_arg "Roots.brent: interval does not bracket a root"
  else begin
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref nan in
    (try
       for _ = 1 to max_iter do
         if abs_float !fc < abs_float !fb then begin
           a := !b; b := !c; c := !a;
           fa := !fb; fb := !fc; fc := !fa
         end;
         let tol1 = (2.0 *. epsilon_float *. abs_float !b) +. (0.5 *. tol) in
         let xm = 0.5 *. (!c -. !b) in
         if abs_float xm <= tol1 || !fb = 0.0 then begin
           result := !b;
           raise Exit
         end;
         if abs_float !e >= tol1 && abs_float !fa > abs_float !fb then begin
           let s = !fb /. !fa in
           let p, q =
             if !a = !c then
               (* secant *)
               (2.0 *. xm *. s, 1.0 -. s)
             else begin
               (* inverse quadratic interpolation *)
               let q = !fa /. !fc and r = !fb /. !fc in
               ( s *. ((2.0 *. xm *. q *. (q -. r))
                       -. ((!b -. !a) *. (r -. 1.0))),
                 (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0) )
             end
           in
           let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
           if
             2.0 *. p
             < Float.min
                 ((3.0 *. xm *. q) -. abs_float (tol1 *. q))
                 (abs_float (!e *. q))
           then begin
             e := !d;
             d := p /. q
           end
           else begin
             d := xm;
             e := xm
           end
         end
         else begin
           d := xm;
           e := xm
         end;
         a := !b;
         fa := !fb;
         b := !b +. (if abs_float !d > tol1 then !d
                     else if xm > 0.0 then tol1 else -.tol1);
         fb := f !b;
         if !fb *. !fc > 0.0 then begin
           c := !a;
           fc := !fa;
           d := !b -. !a;
           e := !d
         end
       done;
       result := !b
     with Exit -> ());
    !result
  end

let newton_safe ?(tol = 1e-12) ?(max_iter = 100) ~f ~df ~lo ~hi x0 =
  let lo = ref lo and hi = ref hi in
  let x = ref (Float.max !lo (Float.min !hi x0)) in
  let fx = ref (f !x) in
  let n = ref 0 in
  while abs_float !fx > 0.0 && !n < max_iter
        && !hi -. !lo > tol *. (1.0 +. abs_float !x) do
    (* Maintain the bracket using the sign of f at x. *)
    let flo = f !lo in
    if flo *. !fx <= 0.0 then hi := !x else lo := !x;
    let d = df !x in
    let x' = if d = 0.0 then 0.5 *. (!lo +. !hi) else !x -. (!fx /. d) in
    let x' =
      if x' <= !lo || x' >= !hi then 0.5 *. (!lo +. !hi) else x'
    in
    x := x';
    fx := f !x;
    incr n
  done;
  !x

let invert_increasing ?(tol = 1e-12) f ~lo ~hi y =
  if y <= f lo then lo
  else if y >= f hi then hi
  else brent ~tol (fun x -> f x -. y) ~lo ~hi

let invert_decreasing ?(tol = 1e-12) f ~lo ~hi y =
  if y >= f lo then lo
  else if y <= f hi then hi
  else brent ~tol (fun x -> f x -. y) ~lo ~hi
