(** Scalar root finding and monotone-function inversion, used to solve the
    certainty-equivalent admission criterion and to invert the paper's
    overflow formula (38) for the adjusted target p_ce. *)

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  float
(** Root of [f] on a bracketing interval ([f lo] and [f hi] of opposite
    signs, either may be zero).  Default [tol = 1e-12] (on the interval
    width, relative to magnitude), [max_iter = 200].
    @raise Invalid_argument if the interval does not bracket a root. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> lo:float -> hi:float ->
  float
(** Brent's method: inverse-quadratic/secant steps with a bisection
    safety net.  Same bracketing contract as {!bisect}. *)

val newton_safe :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> df:(float -> float) ->
  lo:float -> hi:float -> float -> float
(** Newton iteration started at the last argument, falling back to
    bisection whenever a step leaves the bracket [lo, hi]. *)

val invert_increasing :
  ?tol:float -> (float -> float) -> lo:float -> hi:float -> float -> float
(** [invert_increasing f ~lo ~hi y] solves [f x = y] for an [f] that is
    non-decreasing on [lo, hi].  Clamps to the endpoints when [y] is
    outside [f lo, f hi]. *)

val invert_decreasing :
  ?tol:float -> (float -> float) -> lo:float -> hi:float -> float -> float
(** Mirror of {!invert_increasing} for non-increasing [f]. *)
