let fgn_autocovariance ~hurst k =
  let h2 = 2.0 *. hurst in
  let kf = float_of_int (abs k) in
  0.5 *. (((kf +. 1.0) ** h2) -. (2.0 *. (kf ** h2)) +. (abs_float (kf -. 1.0) ** h2))

let generate rng ~hurst ~n =
  if not (hurst > 0.0 && hurst < 1.0) then
    invalid_arg "Fgn.generate: requires 0 < hurst < 1";
  if n <= 0 then invalid_arg "Fgn.generate: requires n > 0";
  if hurst = 0.5 then
    Array.init n (fun _ -> Mbac_stats.Sample.gaussian rng ~mu:0.0 ~sigma:1.0)
  else begin
    (* Circulant embedding of the (n x n) Toeplitz covariance into a
       (2m)-circulant, m >= n a power of two so the FFT applies. *)
    let m = Fft.next_power_of_two n in
    let size = 2 * m in
    (* First row of the circulant: c_0..c_m, then mirrored. *)
    let row =
      Array.init size (fun i ->
          let k = if i <= m then i else size - i in
          fgn_autocovariance ~hurst k)
    in
    let re = Array.copy row and im = Array.make size 0.0 in
    Fft.fft ~re ~im;
    (* Eigenvalues of the circulant = DFT of the first row; real and (for
       fGn) non-negative.  Clip roundoff negatives. *)
    let lambda = Array.map (fun x -> if x < 0.0 then 0.0 else x) re in
    (* Build the complex Gaussian vector with the right covariance. *)
    let wr = Array.make size 0.0 and wi = Array.make size 0.0 in
    let g () = Mbac_stats.Sample.gaussian rng ~mu:0.0 ~sigma:1.0 in
    let scale = 1.0 /. sqrt (float_of_int size) in
    wr.(0) <- sqrt lambda.(0) *. g () *. scale;
    wi.(0) <- 0.0;
    wr.(m) <- sqrt lambda.(m) *. g () *. scale;
    wi.(m) <- 0.0;
    for k = 1 to m - 1 do
      let s = sqrt (lambda.(k) /. 2.0) *. scale in
      let a = g () and b = g () in
      wr.(k) <- s *. a;
      wi.(k) <- s *. b;
      wr.(size - k) <- s *. a;
      wi.(size - k) <- -.s *. b
    done;
    Fft.fft ~re:wr ~im:wi;
    Array.sub wr 0 n
  end

let fbm_of_fgn increments =
  let n = Array.length increments in
  let path = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. increments.(i);
    path.(i) <- !acc
  done;
  path
