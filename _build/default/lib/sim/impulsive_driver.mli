(** Monte-Carlo drivers for the impulsive-load models of §3: a burst of
    flows demands admission at time 0; the certainty-equivalent MBAC
    admits M_0 of them based on their initial rates. *)

type admission = {
  m_0 : int;          (** number of flows admitted *)
  mu_hat : float;     (** mean estimated from the offered burst *)
  sigma_hat : float;  (** std estimated from the offered burst *)
}

val admit_burst :
  Mbac_stats.Rng.t ->
  n_offered:int ->
  capacity:float ->
  alpha_ce:float ->
  make_source:(Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t) ->
  admission * Mbac_traffic.Source.t array
(** Create [n_offered] sources, estimate (mu, sigma) from their time-0
    rates with the eqn (7) estimators, and admit the first M_0 of them
    per the certainty-equivalent criterion at [alpha_ce] (flows are
    i.i.d., so which ones are admitted does not matter).  Returns the
    admission record and the admitted sources. *)

val m0_samples :
  Mbac_stats.Rng.t ->
  replications:int ->
  n_offered:int ->
  capacity:float ->
  alpha_ce:float ->
  make_source:(Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t) ->
  float array
(** Replicated M_0 draws (for checking Prop 3.1's Gaussian limit). *)

val steady_state_overflow :
  Mbac_stats.Rng.t ->
  replications:int ->
  n_offered:int ->
  capacity:float ->
  alpha_ce:float ->
  decorrelate_time:float ->
  samples_per_replication:int ->
  sample_spacing:float ->
  make_source:(Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t) ->
  float * float
(** Infinite-holding-time steady state (Prop 3.3): admit a burst, let the
    sources decorrelate from the admission instant for
    [decorrelate_time], then sample the overflow indicator at
    [samples_per_replication] points spaced [sample_spacing] apart.
    Returns (p_f estimate, standard error across replications). *)

val overflow_vs_time :
  Mbac_stats.Rng.t ->
  replications:int ->
  n_offered:int ->
  capacity:float ->
  alpha_ce:float ->
  holding_time_mean:float ->
  times:float array ->
  make_source:(Mbac_stats.Rng.t -> start:float -> Mbac_traffic.Source.t) ->
  float array
(** Finite-holding-time transient (§3.2, eqn (21)): admit a burst at 0,
    let flows depart (exponential holding times), and estimate the
    overflow probability at each requested time across replications. *)
