lib/sim/fluid_buffer.ml: Float
