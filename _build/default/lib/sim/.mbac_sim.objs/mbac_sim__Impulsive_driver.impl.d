lib/sim/impulsive_driver.ml: Array Float Mbac Mbac_stats Mbac_traffic
