lib/sim/measurement.ml: Float Mbac_stats
