lib/sim/impulsive_driver.mli: Mbac_stats Mbac_traffic
