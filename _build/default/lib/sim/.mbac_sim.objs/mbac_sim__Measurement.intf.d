lib/sim/measurement.mli:
