lib/sim/continuous_load.ml: Event_heap Float Fluid_buffer Format Hashtbl Mbac Mbac_stats Mbac_traffic Measurement
