lib/sim/continuous_load.mli: Format Mbac Mbac_stats Mbac_traffic
