lib/sim/fluid_buffer.mli:
