(* Generate synthetic LRD / MPEG-like traces to CSV:
     tracegen --frames 65536 --hurst 0.85 --mean 1.0 -o trace.csv
     tracegen --renegotiate 24 --percentile 0.95 -o rcbr.csv *)

open Cmdliner

let generate frames hurst mean cv seed renegotiate percentile output =
  if frames <= 0 then Error "frames must be positive"
  else begin
    let rng = Mbac_stats.Rng.create ~seed in
    let params =
      { (Mbac_traffic.Mpeg_synth.default_params ~mean_rate:mean) with
        Mbac_traffic.Mpeg_synth.hurst; cv }
    in
    let trace = Mbac_traffic.Mpeg_synth.generate rng params ~frames in
    let trace =
      match renegotiate with
      | None -> trace
      | Some segment_len ->
          Mbac_traffic.Renegotiate.segments ~segment_len ~percentile trace
    in
    let csv = Mbac_traffic.Trace.to_csv trace in
    (match output with
    | None -> print_string csv
    | Some path ->
        let oc = open_out path in
        output_string oc csv;
        close_out oc;
        Printf.printf
          "wrote %s: %d samples, mean %.4f, std %.4f, %d renegotiations\n" path
          (Mbac_traffic.Trace.length trace)
          (Mbac_traffic.Trace.mean trace)
          (sqrt (Mbac_traffic.Trace.variance trace))
          (Mbac_traffic.Renegotiate.renegotiation_count trace));
    Ok ()
  end

let cmd =
  let term =
    Term.(
      const generate
      $ Arg.(value & opt int 65536 & info [ "frames" ] ~docv:"N"
               ~doc:"Number of samples to generate.")
      $ Arg.(value & opt float 0.85 & info [ "hurst" ] ~docv:"H"
               ~doc:"Hurst parameter of the fGn base (0 < H < 1).")
      $ Arg.(value & opt float 1.0 & info [ "mean" ] ~docv:"X"
               ~doc:"Target mean rate.")
      $ Arg.(value & opt float 0.55 & info [ "cv" ] ~docv:"X"
               ~doc:"Coefficient of variation (std/mean).")
      $ Arg.(value & opt int 7 & info [ "seed" ] ~docv:"N" ~doc:"RNG seed.")
      $ Arg.(value & opt (some int) None
             & info [ "renegotiate" ] ~docv:"LEN"
                 ~doc:"Also apply RCBR renegotiation with segments of LEN \
                       samples.")
      $ Arg.(value & opt float 0.95 & info [ "percentile" ] ~docv:"P"
               ~doc:"Per-segment percentile for renegotiation.")
      $ Arg.(value & opt (some string) None
             & info [ "output"; "o" ] ~docv:"FILE"
                 ~doc:"Output file (default: stdout)."))
  in
  Cmd.v
    (Cmd.info "tracegen" ~doc:"Generate synthetic LRD video-like rate traces")
    Term.(term_result' ~usage:true term)

let () = exit (Cmd.eval cmd)
