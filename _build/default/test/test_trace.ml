open Mbac_traffic
open Test_util

let mk rates = Trace.create ~dt:0.5 rates

let test_basic_stats () =
  let t = mk [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close ~tol:1e-12 "duration" 2.0 (Trace.duration t);
  Alcotest.(check int) "length" 4 (Trace.length t);
  check_close ~tol:1e-12 "mean" 2.5 (Trace.mean t);
  check_close ~tol:1e-12 "variance" 1.25 (Trace.variance t)

let test_rate_at_and_wrap () =
  let t = mk [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close ~tol:1e-12 "sample 0" 1.0 (Trace.rate_at t 0.0);
  check_close ~tol:1e-12 "sample 1" 2.0 (Trace.rate_at t 0.5);
  check_close ~tol:1e-12 "within sample" 2.0 (Trace.rate_at t 0.7);
  check_close ~tol:1e-12 "wrap" 1.0 (Trace.rate_at t 2.0);
  check_close ~tol:1e-12 "wrap further" 3.0 (Trace.rate_at t 5.3)

let test_scale_to_mean () =
  let t = mk [| 1.0; 3.0 |] in
  let t' = Trace.scale_to_mean t ~mean:10.0 in
  check_close ~tol:1e-12 "scaled mean" 10.0 (Trace.mean t');
  check_close ~tol:1e-12 "shape preserved" 5.0 t'.Trace.rates.(0)

let test_csv_roundtrip () =
  let t = mk [| 1.25; 0.0; 3.5; 2.0 |] in
  let t' = Trace.of_csv (Trace.to_csv t) in
  check_close ~tol:1e-9 "dt" t.Trace.dt t'.Trace.dt;
  Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
  Array.iteri
    (fun i r -> check_close_abs ~tol:1e-9 "rate" r t'.Trace.rates.(i))
    t.Trace.rates

let test_trace_source_playback () =
  let t = mk [| 1.0; 2.0; 3.0 |] in
  let src = Trace_source.create_at_offset t ~offset:0.0 ~start:0.0 in
  check_close ~tol:1e-12 "initial" 1.0 (Source.rate src);
  check_close ~tol:1e-12 "first change" 0.5 (Source.next_change src);
  Source.fire src ~now:0.5;
  check_close ~tol:1e-12 "second sample" 2.0 (Source.rate src);
  Source.fire src ~now:(Source.next_change src);
  check_close ~tol:1e-12 "third sample" 3.0 (Source.rate src);
  Source.fire src ~now:(Source.next_change src);
  check_close ~tol:1e-12 "wrapped" 1.0 (Source.rate src)

let test_trace_source_offset () =
  let t = mk [| 1.0; 2.0; 3.0; 4.0 |] in
  (* offset 0.75 -> inside sample 1 (rate 2), 0.25 left in it *)
  let src = Trace_source.create_at_offset t ~offset:0.75 ~start:10.0 in
  check_close ~tol:1e-12 "rate at offset" 2.0 (Source.rate src);
  check_close ~tol:1e-12 "remaining time" 10.25 (Source.next_change src)

let test_trace_source_rle () =
  (* runs of equal rates cost a single event *)
  let t = mk [| 5.0; 5.0; 5.0; 7.0; 7.0; 1.0 |] in
  let src = Trace_source.create_at_offset t ~offset:0.0 ~start:0.0 in
  check_close ~tol:1e-12 "run end" 1.5 (Source.next_change src);
  Source.fire src ~now:1.5;
  check_close ~tol:1e-12 "next run rate" 7.0 (Source.rate src);
  check_close ~tol:1e-12 "next run end" 2.5 (Source.next_change src);
  Source.fire src ~now:2.5;
  check_close ~tol:1e-12 "third run rate" 1.0 (Source.rate src)

let test_trace_source_time_average () =
  (* playback time-average must equal the trace mean *)
  let rng = Mbac_stats.Rng.create ~seed:900 in
  let rates = Array.init 64 (fun _ -> Mbac_stats.Rng.float rng *. 10.0) in
  let t = mk rates in
  let src = Trace_source.create rng t ~start:0.0 in
  let acc = Mbac_stats.Welford.Weighted.create () in
  let now = ref 0.0 in
  (* integrate over many loops of the trace *)
  while !now < 50.0 *. Trace.duration t do
    let next = Source.next_change src in
    Mbac_stats.Welford.Weighted.add acc ~weight:(next -. !now) (Source.rate src);
    now := next;
    Source.fire src ~now:!now
  done;
  check_close ~tol:0.02 "time-average = trace mean" (Trace.mean t)
    (Mbac_stats.Welford.Weighted.mean acc)

let test_renegotiate_levels () =
  let t = mk [| 1.0; 5.0; 2.0; 8.0; 3.0; 4.0 |] in
  let r = Renegotiate.segments ~segment_len:3 ~percentile:1.0 t in
  (* max of [1;5;2] = 5, max of [8;3;4] = 8 *)
  Array.iteri
    (fun i expected -> check_close ~tol:1e-12 "segment level" expected r.Trace.rates.(i))
    [| 5.0; 5.0; 5.0; 8.0; 8.0; 8.0 |]

let test_renegotiate_median () =
  let t = mk [| 1.0; 5.0; 2.0; 8.0; 3.0; 4.0 |] in
  let r = Renegotiate.segments ~segment_len:3 ~percentile:0.5 t in
  check_close ~tol:1e-12 "median segment 1" 2.0 r.Trace.rates.(0);
  check_close ~tol:1e-12 "median segment 2" 4.0 r.Trace.rates.(3)

let test_renegotiate_reduces_changes =
  qcheck ~count:50 "renegotiation reduces rate changes"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Mbac_stats.Rng.create ~seed in
      let rates = Array.init 240 (fun _ -> Mbac_stats.Rng.float rng) in
      let t = mk rates in
      let r = Renegotiate.segments ~segment_len:24 ~percentile:0.9 t in
      Renegotiate.renegotiation_count r <= Renegotiate.renegotiation_count t
      && Renegotiate.renegotiation_count r <= 10)

let test_renegotiate_partial_tail () =
  let t = mk [| 1.0; 2.0; 9.0 |] in
  let r = Renegotiate.segments ~segment_len:2 ~percentile:1.0 t in
  check_close ~tol:1e-12 "tail level" 9.0 r.Trace.rates.(2)

let test_mpeg_synth_stats () =
  let rng = Mbac_stats.Rng.create ~seed:901 in
  let p = Mpeg_synth.default_params ~mean_rate:2.0 in
  let t = Mpeg_synth.generate rng p ~frames:16384 in
  Alcotest.(check int) "frames" 16384 (Trace.length t);
  check_close ~tol:0.02 "target mean" 2.0 (Trace.mean t);
  check_close ~tol:0.15 "target std" (0.55 *. 2.0) (sqrt (Trace.variance t));
  Array.iter
    (fun r -> if r < 0.0 then Alcotest.fail "negative rate")
    t.Trace.rates

let test_mpeg_synth_long_memory () =
  (* LRD: autocorrelation at long lags should stay clearly positive *)
  let rng = Mbac_stats.Rng.create ~seed:902 in
  let p = Mpeg_synth.default_params ~mean_rate:1.0 in
  let t = Mpeg_synth.generate rng p ~frames:32768 in
  let acf = Trace.autocorrelation t ~max_lag:2048 in
  Alcotest.(check bool) "acf(256) > 0.05" true (acf.(256) > 0.05);
  Alcotest.(check bool) "acf(1024) > 0.02" true (acf.(1024) > 0.02);
  Alcotest.(check bool) "acf(2048) > 0" true (acf.(2048) > 0.0)

let test_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Trace.create: empty trace")
    (fun () -> ignore (Trace.create ~dt:1.0 [||]));
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Trace.create: negative rate") (fun () ->
      ignore (Trace.create ~dt:1.0 [| 1.0; -1.0 |]))

let suite =
  [ ( "trace",
      [ test "basic stats" test_basic_stats;
        test "rate_at with wrap" test_rate_at_and_wrap;
        test "scale_to_mean" test_scale_to_mean;
        test "csv roundtrip" test_csv_roundtrip;
        test "playback" test_trace_source_playback;
        test "playback offset" test_trace_source_offset;
        test "run-length playback" test_trace_source_rle;
        test "playback time average" test_trace_source_time_average;
        test "renegotiate max" test_renegotiate_levels;
        test "renegotiate median" test_renegotiate_median;
        test_renegotiate_reduces_changes;
        test "renegotiate partial tail" test_renegotiate_partial_tail;
        test "mpeg synth stats" test_mpeg_synth_stats;
        slow_test "mpeg synth long memory" test_mpeg_synth_long_memory;
        test "invalid traces" test_invalid ] ) ]
