  $ experiments --list
  $ experiments --run not-an-experiment
  $ experiments --run fig6 | head -5
  $ tracegen --frames 16 --seed 3 | head -3
  $ tracegen --frames 256 --renegotiate 24 -o trace.csv
