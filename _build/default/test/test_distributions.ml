open Mbac_stats
open Test_util

let test_student_t_symmetry () =
  check_close ~tol:1e-12 "cdf 0" 0.5 (Distributions.Student_t.cdf ~df:5.0 0.0);
  List.iter
    (fun t ->
      let up = Distributions.Student_t.cdf ~df:5.0 t in
      let dn = Distributions.Student_t.cdf ~df:5.0 (-.t) in
      check_close ~tol:1e-10 "symmetry" 1.0 (up +. dn))
    [ 0.5; 1.0; 2.0; 5.0 ]

let test_student_t_table () =
  (* Classical two-sided 95% critical values. *)
  let cases = [ (1.0, 12.706204736); (2.0, 4.302652730); (5.0, 2.570581836);
                (10.0, 2.228138852); (30.0, 2.042272456) ] in
  List.iter
    (fun (df, expected) ->
      check_close ~tol:1e-6
        (Printf.sprintf "t crit df=%g" df)
        expected
        (Distributions.Student_t.quantile ~df 0.975))
    cases

let test_student_t_cauchy () =
  (* df = 1 is Cauchy: quantile(0.75) = tan(pi/4) = 1. *)
  check_close ~tol:1e-8 "cauchy q75" 1.0 (Distributions.Student_t.quantile ~df:1.0 0.75)

let test_student_t_converges_to_gaussian () =
  let q_t = Distributions.Student_t.quantile ~df:10_000.0 0.975 in
  let q_g = Gaussian.q_inv 0.025 in
  check_close ~tol:1e-3 "large df -> gaussian" q_g q_t

let test_student_t_roundtrip =
  qcheck ~count:100 "t quantile/cdf roundtrip"
    QCheck.(pair (float_range 1.0 50.0) (float_range 0.02 0.98))
    (fun (df, p) ->
      let x = Distributions.Student_t.quantile ~df p in
      abs_float (Distributions.Student_t.cdf ~df x -. p) <= 1e-7)

let test_chi_square () =
  (* df = 2 is exponential with mean 2. *)
  List.iter
    (fun x ->
      check_close ~tol:1e-10 "chi2 df=2 = exp(2)"
        (Distributions.Exponential.cdf ~mean:2.0 x)
        (Distributions.Chi_square.cdf ~df:2.0 x))
    [ 0.5; 1.0; 3.0; 10.0 ];
  (* Known critical value: chi2(0.95, df=10) = 18.307038... *)
  check_close ~tol:1e-5 "chi2 crit" 18.307038053275146
    (Distributions.Chi_square.quantile ~df:10.0 0.95)

let test_exponential () =
  check_close ~tol:1e-12 "exp cdf at mean" (1.0 -. exp (-1.0))
    (Distributions.Exponential.cdf ~mean:4.0 4.0);
  check_close ~tol:1e-12 "exp quantile" (4.0 *. log 2.0)
    (Distributions.Exponential.quantile ~mean:4.0 0.5)

let test_lognormal_moments () =
  let mu_log = 0.3 and sigma_log = 0.8 in
  let m = Distributions.Lognormal.mean ~mu_log ~sigma_log in
  let v = Distributions.Lognormal.variance ~mu_log ~sigma_log in
  (* cross-check against sampling *)
  let rng = Rng.create ~seed:400 in
  let acc = Welford.create () in
  for _ = 1 to 300_000 do
    Welford.add acc (Sample.lognormal rng ~mu_log ~sigma_log)
  done;
  check_close ~tol:0.01 "lognormal mean" m (Welford.mean acc);
  check_close ~tol:0.08 "lognormal variance" v (Welford.variance acc);
  (* median = exp(mu_log) *)
  check_close ~tol:1e-10 "lognormal median" 0.5
    (Distributions.Lognormal.cdf ~mu_log ~sigma_log (exp mu_log))

let suite =
  [ ( "distributions",
      [ test "student t symmetry" test_student_t_symmetry;
        test "student t critical values" test_student_t_table;
        test "student t df=1 is Cauchy" test_student_t_cauchy;
        test "student t -> gaussian" test_student_t_converges_to_gaussian;
        test_student_t_roundtrip;
        test "chi square" test_chi_square;
        test "exponential" test_exponential;
        test "lognormal moments" test_lognormal_moments ] ) ]
