(* Params, Observation, Criterion. *)
open Test_util

let mk ?(n = 100.0) ?(p_q = 1e-3) () =
  Mbac.Params.make ~n ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0 ~p_q

let test_params_derived () =
  let p = mk () in
  check_close ~tol:1e-12 "capacity" 100.0 (Mbac.Params.capacity p);
  check_close ~tol:1e-9 "alpha_q" 3.0902323061678132 (Mbac.Params.alpha_q p);
  check_close ~tol:1e-12 "t_h_tilde" 100.0 (Mbac.Params.t_h_tilde p);
  (* beta = mu/(sigma T~_h); gamma = 1/(beta T_c) *)
  check_close ~tol:1e-12 "beta" (1.0 /. 30.0) (Mbac.Params.beta p);
  check_close ~tol:1e-12 "gamma" 30.0 (Mbac.Params.gamma p);
  check_close ~tol:1e-12 "beta*gamma*t_c = 1" 1.0
    (Mbac.Params.beta p *. Mbac.Params.gamma p *. p.Mbac.Params.t_c)

let test_params_validation () =
  Alcotest.check_raises "p_q too big"
    (Invalid_argument "Params.make: requires 0 < p_q <= 0.5") (fun () ->
      ignore (mk ~p_q:0.7 ()));
  Alcotest.check_raises "n" (Invalid_argument "Params.make: requires n > 0")
    (fun () -> ignore (mk ~n:0.0 ()))

let test_with_p_q () =
  let p = mk () in
  let p' = Mbac.Params.with_p_q p 1e-4 in
  check_close ~tol:1e-12 "p_q changed" 1e-4 p'.Mbac.Params.p_q;
  check_close ~tol:1e-12 "rest same" p.Mbac.Params.n p'.Mbac.Params.n

let test_observation_cross_stats () =
  (* flows with rates 1, 2, 3: mean 2, unbiased variance 1 *)
  let obs = Mbac.Observation.make ~now:0.0 ~n:3 ~sum_rate:6.0 ~sum_sq:14.0 in
  check_close ~tol:1e-12 "cross mean" 2.0 (Mbac.Observation.cross_mean obs);
  check_close ~tol:1e-12 "cross variance" 1.0 (Mbac.Observation.cross_variance obs)

let test_observation_edges () =
  let obs0 = Mbac.Observation.make ~now:0.0 ~n:0 ~sum_rate:0.0 ~sum_sq:0.0 in
  Alcotest.(check bool) "n=0 mean nan" true
    (Float.is_nan (Mbac.Observation.cross_mean obs0));
  let obs1 = Mbac.Observation.make ~now:0.0 ~n:1 ~sum_rate:5.0 ~sum_sq:25.0 in
  check_close ~tol:1e-12 "n=1 mean" 5.0 (Mbac.Observation.cross_mean obs1);
  Alcotest.(check (float 0.0)) "n=1 variance 0" 0.0
    (Mbac.Observation.cross_variance obs1);
  Alcotest.check_raises "bad n=0 sums"
    (Invalid_argument "Observation.make: nonzero sums with zero flows")
    (fun () ->
      ignore (Mbac.Observation.make ~now:0.0 ~n:0 ~sum_rate:1.0 ~sum_sq:1.0))

let test_criterion_satisfies_target =
  (* The admissible count M must satisfy p_f(M) <= p and p_f(M+1) > p. *)
  qcheck ~count:300 "admissible is the largest count meeting the target"
    QCheck.(triple (float_range 50.0 500.0) (float_range 0.5 2.0)
              (float_range 0.05 0.6))
    (fun (capacity, mu, sigma_ratio) ->
      let sigma = sigma_ratio *. mu in
      let p_target = 1e-3 in
      let alpha = Mbac_stats.Gaussian.q_inv p_target in
      let m = Mbac.Criterion.admissible ~capacity ~mu ~sigma ~alpha in
      let pf k =
        Mbac.Criterion.overflow_probability ~capacity ~mu ~sigma
          ~m:(float_of_int k)
      in
      pf m <= p_target +. 1e-12 && pf (m + 1) > p_target -. 1e-12)

let test_criterion_closed_form_roundtrip =
  qcheck ~count:300 "criterion closed form solves eqn (6) exactly"
    QCheck.(pair (float_range 20.0 2000.0) (float_range 0.01 1.0))
    (fun (capacity, sigma) ->
      let mu = 1.0 in
      let alpha = 3.0 in
      let m = Mbac.Criterion.admissible_real ~capacity ~mu ~sigma ~alpha in
      (* plug back: Q((c - m mu)/(sigma sqrt m)) should equal Q(alpha) *)
      let z = (capacity -. (m *. mu)) /. (sigma *. sqrt m) in
      abs_float (z -. alpha) <= 1e-9)

let test_criterion_monotonicity =
  qcheck ~count:300 "admissible decreasing in sigma and alpha"
    QCheck.(pair (float_range 0.05 0.5) (float_range 0.1 4.0))
    (fun (sigma, alpha) ->
      let m1 =
        Mbac.Criterion.admissible_real ~capacity:100.0 ~mu:1.0 ~sigma ~alpha
      in
      let m2 =
        Mbac.Criterion.admissible_real ~capacity:100.0 ~mu:1.0
          ~sigma:(sigma +. 0.1) ~alpha
      in
      let m3 =
        Mbac.Criterion.admissible_real ~capacity:100.0 ~mu:1.0 ~sigma
          ~alpha:(alpha +. 0.5)
      in
      m2 <= m1 && m3 <= m1)

let test_criterion_edges () =
  check_close ~tol:1e-12 "sigma=0 -> c/mu" 50.0
    (Mbac.Criterion.admissible_real ~capacity:100.0 ~mu:2.0 ~sigma:0.0
       ~alpha:3.0);
  Alcotest.(check int) "no capacity" 0
    (Mbac.Criterion.admissible ~capacity:0.0 ~mu:1.0 ~sigma:0.3 ~alpha:3.0);
  Alcotest.check_raises "mu=0"
    (Invalid_argument "Criterion.admissible_real: requires mu > 0") (fun () ->
      ignore (Mbac.Criterion.admissible_real ~capacity:1.0 ~mu:0.0 ~sigma:0.1
                ~alpha:1.0))

let test_m_star () =
  let p = mk () in
  let m = Mbac.Criterion.m_star p in
  (* n=100, sigma/mu=.3, alpha=3.09: expansion gives ~ 100 - 9.27 = 90.7 *)
  Alcotest.(check int) "m_star" 91 m;
  check_close ~tol:0.01 "expansion close to exact" (Mbac.Criterion.m_star_real p)
    (Mbac.Criterion.m_star_approx p);
  (* m* < n always (safety margin) *)
  Alcotest.(check bool) "margin" true (float_of_int m < p.Mbac.Params.n)

let test_m_star_scaling =
  qcheck ~count:100 "eqn (5) expansion improves with n"
    QCheck.(float_range 100.0 10_000.0)
    (fun n ->
      let p = mk ~n () in
      let exact = Mbac.Criterion.m_star_real p in
      let approx = Mbac.Criterion.m_star_approx p in
      abs_float (exact -. approx) <= 3.0)

let test_peak_rate () =
  Alcotest.(check int) "peak alloc" 52
    (Mbac.Criterion.peak_rate_count ~capacity:100.0 ~peak:1.9)

let suite =
  [ ( "core_basics",
      [ test "params derived quantities" test_params_derived;
        test "params validation" test_params_validation;
        test "with_p_q" test_with_p_q;
        test "observation cross stats" test_observation_cross_stats;
        test "observation edge cases" test_observation_edges;
        test_criterion_satisfies_target;
        test_criterion_closed_form_roundtrip;
        test_criterion_monotonicity;
        test "criterion edge cases" test_criterion_edges;
        test "m_star" test_m_star;
        test_m_star_scaling;
        test "peak rate count" test_peak_rate ] ) ]
