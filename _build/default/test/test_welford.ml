open Mbac_stats
open Test_util

let float_array_gen = QCheck.(array_of_size Gen.(int_range 2 200) (float_range (-1e3) 1e3))

let test_matches_direct =
  qcheck ~count:300 "welford matches direct formulas" float_array_gen (fun xs ->
      let acc = Welford.create () in
      Array.iter (Welford.add acc) xs;
      let m = Descriptive.mean xs and v = Descriptive.variance xs in
      abs_float (Welford.mean acc -. m) <= 1e-9 *. (1.0 +. abs_float m)
      && abs_float (Welford.variance acc -. v) <= 1e-7 *. (1.0 +. abs_float v))

let test_merge =
  qcheck ~count:300 "merge = concatenation"
    QCheck.(pair float_array_gen float_array_gen)
    (fun (xs, ys) ->
      let a = Welford.create () and b = Welford.create () in
      Array.iter (Welford.add a) xs;
      Array.iter (Welford.add b) ys;
      let merged = Welford.merge a b in
      let all = Array.append xs ys in
      let direct = Welford.create () in
      Array.iter (Welford.add direct) all;
      Welford.count merged = Welford.count direct
      && abs_float (Welford.mean merged -. Welford.mean direct)
         <= 1e-9 *. (1.0 +. abs_float (Welford.mean direct))
      && abs_float (Welford.variance merged -. Welford.variance direct)
         <= 1e-6 *. (1.0 +. abs_float (Welford.variance direct)))

let test_empty () =
  let acc = Welford.create () in
  Alcotest.(check int) "count" 0 (Welford.count acc);
  Alcotest.(check (float 0.0)) "mean" 0.0 (Welford.mean acc);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Welford.variance acc)

let test_single () =
  let acc = Welford.create () in
  Welford.add acc 5.0;
  Alcotest.(check (float 0.0)) "mean" 5.0 (Welford.mean acc);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Welford.variance acc)

let test_numerical_stability () =
  (* Large offset: naive sum-of-squares would lose all precision. *)
  let acc = Welford.create () in
  let offset = 1e9 in
  List.iter (fun x -> Welford.add acc (offset +. x)) [ 1.0; 2.0; 3.0; 4.0 ];
  check_close ~tol:1e-6 "mean with offset" (offset +. 2.5) (Welford.mean acc);
  check_close ~tol:1e-6 "variance with offset" (5.0 /. 3.0) (Welford.variance acc)

let test_weighted_matches_unweighted =
  qcheck ~count:300 "unit weights reduce to population variance" float_array_gen
    (fun xs ->
      let w = Welford.Weighted.create () in
      Array.iter (Welford.Weighted.add w ~weight:1.0) xs;
      let direct = Welford.create () in
      Array.iter (Welford.add direct) xs;
      abs_float (Welford.Weighted.mean w -. Welford.mean direct)
      <= 1e-9 *. (1.0 +. abs_float (Welford.mean direct))
      && abs_float
           (Welford.Weighted.variance w -. Welford.variance_population direct)
         <= 1e-6 *. (1.0 +. Welford.variance_population direct))

let test_weighted_scaling () =
  (* Doubling every weight must not change mean or variance. *)
  let xs = [| 1.0; 5.0; 2.0; 8.0 |] in
  let w1 = Welford.Weighted.create () and w2 = Welford.Weighted.create () in
  Array.iteri (fun i x ->
      let wt = float_of_int (i + 1) in
      Welford.Weighted.add w1 ~weight:wt x;
      Welford.Weighted.add w2 ~weight:(2.0 *. wt) x) xs;
  check_close ~tol:1e-12 "scaled mean" (Welford.Weighted.mean w1) (Welford.Weighted.mean w2);
  check_close ~tol:1e-12 "scaled variance" (Welford.Weighted.variance w1)
    (Welford.Weighted.variance w2)

let test_weighted_zero_weight () =
  let w = Welford.Weighted.create () in
  Welford.Weighted.add w ~weight:0.0 99.0;
  Alcotest.(check (float 0.0)) "ignored" 0.0 (Welford.Weighted.total_weight w);
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Welford.Weighted.add: negative weight") (fun () ->
      Welford.Weighted.add w ~weight:(-1.0) 0.0)

let suite =
  [ ( "welford",
      [ test_matches_direct;
        test_merge;
        test "empty accumulator" test_empty;
        test "single observation" test_single;
        test "numerical stability" test_numerical_stability;
        test_weighted_matches_unweighted;
        test "weighted scale invariance" test_weighted_scaling;
        test "weighted edge cases" test_weighted_zero_weight ] ) ]
