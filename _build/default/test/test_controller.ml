open Test_util

let capacity = 100.0

let obs ?(now = 0.0) rates =
  let n = Array.length rates in
  let sum = Array.fold_left ( +. ) 0.0 rates in
  let sq = Array.fold_left (fun a r -> a +. (r *. r)) 0.0 rates in
  Mbac.Observation.make ~now ~n ~sum_rate:sum ~sum_sq:sq

let steady_rates n = Array.make n 1.0

let mk_params () =
  Mbac.Params.make ~n:100.0 ~mu:1.0 ~sigma:0.3 ~t_h:1000.0 ~t_c:1.0 ~p_q:1e-3

let test_perfect () =
  let p = mk_params () in
  let c = Mbac.Controller.perfect p in
  let m = Mbac.Criterion.m_star p in
  Alcotest.(check int) "always m*" m
    (Mbac.Controller.admissible c (obs (steady_rates 5)));
  Alcotest.(check int) "state independent" m
    (Mbac.Controller.admissible c (obs (steady_rates 200)))

let test_ce_uses_estimates () =
  let estimator = Mbac.Estimator.memoryless () in
  let c = Mbac.Controller.certainty_equivalent ~capacity ~p_ce:1e-3 estimator in
  (* no estimate yet: cautious bootstrap n+1 *)
  Alcotest.(check int) "bootstrap" 1
    (Mbac.Controller.admissible c (obs [||]));
  (* feed a cross-section: rates with mean 1, sample std ~0.3 *)
  let rates = [| 0.7; 1.0; 1.3; 1.0; 0.7; 1.3; 1.0; 1.0 |] in
  Mbac.Controller.observe c (obs rates);
  let m = Mbac.Controller.admissible c (obs rates) in
  let mu = Mbac_stats.Descriptive.mean rates in
  let sigma = Mbac_stats.Descriptive.std rates in
  let expected =
    Mbac.Criterion.admissible ~capacity ~mu ~sigma
      ~alpha:(Mbac_stats.Gaussian.q_inv 1e-3)
  in
  Alcotest.(check int) "matches criterion on estimates" expected m

let test_ce_never_negative =
  qcheck ~count:200 "admissible count is never negative"
    QCheck.(array_of_size Gen.(int_range 0 20) (float_range 0.0 50.0))
    (fun rates ->
      let c =
        Mbac.Controller.certainty_equivalent ~capacity ~p_ce:1e-3
          (Mbac.Estimator.memoryless ())
      in
      let o = obs rates in
      Mbac.Controller.observe c o;
      Mbac.Controller.admissible c o >= 0)

let test_ce_invalid_p () =
  Alcotest.check_raises "p_ce > 0.5"
    (Invalid_argument "Controller: requires 0 < p_ce <= 0.5") (fun () ->
      ignore (Mbac.Controller.memoryless ~capacity ~p_ce:0.9))

let test_robust_more_conservative () =
  let p = mk_params () in
  let robust = Mbac.Controller.robust p in
  let plain =
    Mbac.Controller.with_memory ~capacity ~p_ce:1e-3
      ~t_m:(Mbac.Window.recommended_t_m p)
  in
  (* identical observations; the robust one must admit no more flows *)
  let rates =
    Array.init 90 (fun i -> 1.0 +. (0.3 *. sin (float_of_int i)))
  in
  let o = obs rates in
  Mbac.Controller.observe robust o;
  Mbac.Controller.observe plain o;
  Alcotest.(check bool) "robust <= plain" true
    (Mbac.Controller.admissible robust o <= Mbac.Controller.admissible plain o)

let test_peak_rate () =
  let c = Mbac.Controller.peak_rate ~capacity ~peak:1.9 in
  Alcotest.(check int) "floor(c/peak)" 52
    (Mbac.Controller.admissible c (obs (steady_rates 10)))

let test_measured_sum_blocks_on_peak_load () =
  let c =
    Mbac.Controller.measured_sum ~capacity ~utilization_target:0.9 ~window:10.0
      ~peak:2.0
  in
  (* observe a high-load period: max load 88, headroom = 90 - 88 = 2 -> 1 more *)
  Mbac.Controller.observe c (obs ~now:0.0 (Array.make 88 1.0));
  let m = Mbac.Controller.admissible c (obs ~now:1.0 (Array.make 88 1.0)) in
  Alcotest.(check int) "one admission left" 89 m;
  (* load at the target: no admissions *)
  Mbac.Controller.observe c (obs ~now:2.0 (Array.make 90 1.0));
  Alcotest.(check int) "full" 90
    (Mbac.Controller.admissible c (obs ~now:2.5 (Array.make 90 1.0)))

let test_measured_sum_window_forgets () =
  let c =
    Mbac.Controller.measured_sum ~capacity ~utilization_target:0.9 ~window:8.0
      ~peak:2.0
  in
  Mbac.Controller.observe c (obs ~now:0.0 (Array.make 90 1.0));
  (* long quiet period: the high maximum ages out of the window *)
  Mbac.Controller.observe c (obs ~now:20.0 (Array.make 10 1.0));
  let m = Mbac.Controller.admissible c (obs ~now:20.0 (Array.make 10 1.0)) in
  (* headroom = 90 - 10 = 80 -> 40 extra flows *)
  Alcotest.(check int) "peak aged out" 50 m

let test_hoeffding_conservative () =
  let est = Mbac.Estimator.memoryless () in
  let c = Mbac.Controller.hoeffding ~capacity ~p_ce:1e-3 ~peak:1.9 est in
  let rates = Array.make 50 1.0 in
  Mbac.Controller.observe c (obs rates);
  let m_hoeffding = Mbac.Controller.admissible c (obs rates) in
  (* compare with the Gaussian criterion using the true sigma: Hoeffding
     must be (much) more conservative than the CE criterion, but better
     than peak-rate allocation *)
  let m_ce =
    Mbac.Criterion.admissible ~capacity ~mu:1.0 ~sigma:0.3
      ~alpha:(Mbac_stats.Gaussian.q_inv 1e-3)
  in
  Alcotest.(check bool) "hoeffding <= gaussian ce" true (m_hoeffding <= m_ce);
  Alcotest.(check bool) "hoeffding >= peak-rate" true
    (m_hoeffding >= Mbac.Criterion.peak_rate_count ~capacity ~peak:1.9)

let test_gkk_blocks_until_departure () =
  let c =
    Mbac.Controller.gkk ~capacity ~p_ce:1e-3 ~prior_mu:1.0 ~prior_var:0.09
      ~prior_weight:0.5
  in
  let rates = Array.make 99 1.0 in
  let o = obs rates in
  Mbac.Controller.observe c o;
  (* system near the criterion boundary: m <= n triggers the block *)
  let m1 = Mbac.Controller.admissible c o in
  if m1 <= 99 then begin
    (* blocked now; even a rosier observation cannot admit *)
    let small = obs (Array.make 10 1.0) in
    Mbac.Controller.observe c small;
    Alcotest.(check int) "blocked returns n" 10
      (Mbac.Controller.admissible c small);
    (* a departure unblocks *)
    Mbac.Controller.on_depart c small;
    Alcotest.(check bool) "unblocked" true
      (Mbac.Controller.admissible c small > 10)
  end

let test_gkk_prior_blending () =
  (* with prior weight 1.0 the estimates are ignored entirely *)
  let c =
    Mbac.Controller.gkk ~capacity ~p_ce:1e-3 ~prior_mu:1.0 ~prior_var:0.09
      ~prior_weight:1.0
  in
  let crazy = obs [| 10.0; 12.0; 14.0 |] in
  Mbac.Controller.observe c crazy;
  let expected =
    Mbac.Criterion.admissible ~capacity ~mu:1.0 ~sigma:0.3
      ~alpha:(Mbac_stats.Gaussian.q_inv 1e-3)
  in
  Alcotest.(check int) "pure prior" expected (Mbac.Controller.admissible c crazy)

let test_reset_restores_bootstrap () =
  let c = Mbac.Controller.memoryless ~capacity ~p_ce:1e-3 in
  let o = obs [| 1.0; 1.2; 0.8 |] in
  Mbac.Controller.observe c o;
  Alcotest.(check bool) "estimates in effect" true
    (Mbac.Controller.admissible c o > 4);
  Mbac.Controller.reset c;
  Alcotest.(check int) "bootstrap after reset" 4
    (Mbac.Controller.admissible c (obs [| 1.0; 1.0; 1.0 |]))

let suite =
  [ ( "controller",
      [ test "perfect knowledge" test_perfect;
        test "certainty equivalent uses estimates" test_ce_uses_estimates;
        test_ce_never_negative;
        test "p_ce validation" test_ce_invalid_p;
        test "robust is more conservative" test_robust_more_conservative;
        test "peak rate" test_peak_rate;
        test "measured sum blocks at peak" test_measured_sum_blocks_on_peak_load;
        test "measured sum window forgets" test_measured_sum_window_forgets;
        test "hoeffding conservative" test_hoeffding_conservative;
        test "gkk one-out-one-in" test_gkk_blocks_until_departure;
        test "gkk prior blending" test_gkk_prior_blending;
        test "reset" test_reset_restores_bootstrap ] ) ]
