(* Pareto on/off sources, modulated (non-stationary) sources, the utility
   module, the fluid buffer, and the extended simulator modes. *)
open Test_util

(* ---------- Pareto on/off ---------- *)

let test_pareto_onoff_moments () =
  let p =
    { Mbac_traffic.Pareto_onoff.peak = 2.0; mean_on = 1.0; mean_off = 1.0;
      shape = 1.5 }
  in
  check_close ~tol:1e-12 "implied hurst" 0.75
    (Mbac_traffic.Pareto_onoff.implied_hurst p);
  check_close ~tol:1e-12 "mean" 1.0 (Mbac_traffic.Pareto_onoff.mean p);
  check_close ~tol:1e-12 "variance" 1.0 (Mbac_traffic.Pareto_onoff.variance p);
  (* empirical check of the stationary mean (heavy tails converge slowly;
     loose tolerance) *)
  let rng = Mbac_stats.Rng.create ~seed:1300 in
  let src = Mbac_traffic.Pareto_onoff.create rng p ~start:0.0 in
  let acc = Mbac_stats.Welford.Weighted.create () in
  let now = ref 0.0 in
  while !now < 200_000.0 do
    let next = Mbac_traffic.Source.next_change src in
    Mbac_stats.Welford.Weighted.add acc ~weight:(next -. !now)
      (Mbac_traffic.Source.rate src);
    now := next;
    Mbac_traffic.Source.fire src ~now:!now
  done;
  check_close ~tol:0.1 "empirical mean" 1.0 (Mbac_stats.Welford.Weighted.mean acc)

let test_pareto_onoff_aggregate_lrd () =
  (* superposition of many heavy-tailed on/off sources is LRD *)
  let rng = Mbac_stats.Rng.create ~seed:1301 in
  let p =
    { Mbac_traffic.Pareto_onoff.peak = 1.0; mean_on = 1.0; mean_off = 1.0;
      shape = 1.4 }
  in
  let path =
    Mbac_traffic.Aggregate.sample_path rng
      (fun rng ~start -> Mbac_traffic.Pareto_onoff.create rng p ~start)
      ~n_sources:50 ~horizon:16384.0 ~dt:1.0
  in
  let h = Mbac_stats.Hurst.aggregated_variance path in
  (* implied H = 0.8; estimation noise and truncation bias allowed *)
  Alcotest.(check bool)
    (Printf.sprintf "aggregate H=%.3f > 0.6" h)
    true (h > 0.6)

let test_pareto_onoff_validation () =
  Alcotest.check_raises "shape out of range"
    (Invalid_argument "Pareto_onoff: requires 1 < shape <= 2") (fun () ->
      ignore
        (Mbac_traffic.Pareto_onoff.create
           (Mbac_stats.Rng.create ~seed:1)
           { Mbac_traffic.Pareto_onoff.peak = 1.0; mean_on = 1.0;
             mean_off = 1.0; shape = 2.5 }
           ~start:0.0))

(* ---------- Modulated sources ---------- *)

let test_modulated_factor_lookup () =
  let s = [| (0.0, 1.0); (10.0, 2.0); (20.0, 0.5) |] in
  Mbac_traffic.Modulated.validate_schedule s;
  check_close ~tol:1e-12 "before" 1.0 (Mbac_traffic.Modulated.factor_at s (-5.0));
  check_close ~tol:1e-12 "first" 1.0 (Mbac_traffic.Modulated.factor_at s 5.0);
  check_close ~tol:1e-12 "at switch" 2.0 (Mbac_traffic.Modulated.factor_at s 10.0);
  check_close ~tol:1e-12 "mid" 2.0 (Mbac_traffic.Modulated.factor_at s 15.0);
  check_close ~tol:1e-12 "last" 0.5 (Mbac_traffic.Modulated.factor_at s 100.0)

let test_modulated_scales_rates () =
  (* constant inner source via a constant trace *)
  let trace = Mbac_traffic.Trace.create ~dt:1.0 [| 3.0; 3.0 |] in
  let inner = Mbac_traffic.Trace_source.create_at_offset trace ~offset:0.0 ~start:0.0 in
  let sched = [| (0.0, 1.0); (5.0, 2.0) |] in
  let src = Mbac_traffic.Modulated.create ~start:0.0 sched inner in
  check_close ~tol:1e-12 "initial" 3.0 (Mbac_traffic.Source.rate src);
  (* next change is the schedule switch (inner is constant with period 2,
     but rate stays equal, so either way rate must become 6 at t >= 5) *)
  let rec advance_to t =
    if Mbac_traffic.Source.next_change src <= t then begin
      Mbac_traffic.Source.fire src
        ~now:(Mbac_traffic.Source.next_change src);
      advance_to t
    end
  in
  advance_to 4.9;
  check_close ~tol:1e-12 "still unscaled" 3.0 (Mbac_traffic.Source.rate src);
  advance_to 5.0;
  check_close ~tol:1e-12 "scaled after switch" 6.0 (Mbac_traffic.Source.rate src)

let test_modulated_late_start () =
  (* a flow starting at t=100 must not be handed switch epochs in the past *)
  let trace = Mbac_traffic.Trace.create ~dt:1.0 [| 1.0; 1.0 |] in
  let inner =
    Mbac_traffic.Trace_source.create_at_offset trace ~offset:0.0 ~start:100.0
  in
  let sched = [| (0.0, 1.0); (50.0, 2.0); (150.0, 3.0) |] in
  let src = Mbac_traffic.Modulated.create ~start:100.0 sched inner in
  Alcotest.(check bool) "next change in the future" true
    (Mbac_traffic.Source.next_change src > 100.0);
  check_close ~tol:1e-12 "factor at start" 2.0 (Mbac_traffic.Source.rate src)

let test_modulated_validation () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Modulated: schedule times must be increasing")
    (fun () ->
      Mbac_traffic.Modulated.validate_schedule [| (1.0, 1.0); (0.5, 2.0) |])

(* ---------- Utility ---------- *)

let test_utility_values () =
  let open Mbac.Utility in
  check_close ~tol:1e-12 "step full" 1.0 (eval Step 1.0);
  Alcotest.(check (float 0.0)) "step partial" 0.0 (eval Step 0.999);
  check_close ~tol:1e-12 "linear" 0.7 (eval Linear 0.7);
  check_close ~tol:1e-12 "power sqrt" (sqrt 0.81) (eval (Power 0.5) 0.81);
  check_close ~tol:1e-12 "threshold above" 1.0 (eval (Threshold 0.9) 0.95);
  check_close ~tol:1e-12 "threshold below" (0.45 /. 0.9)
    (eval (Threshold 0.9) 0.45);
  (* clamping *)
  check_close ~tol:1e-12 "clamp high" 1.0 (eval Linear 1.5);
  Alcotest.(check (float 0.0)) "clamp low" 0.0 (eval Linear (-0.5))

let test_utility_ordering =
  qcheck ~count:200 "concave utilities dominate linear on [0,1]"
    QCheck.(float_range 0.0 1.0)
    (fun f ->
      let open Mbac.Utility in
      eval (Power 0.5) f >= eval Linear f -. 1e-12
      && eval Linear f >= eval Step f -. 1e-12)

let test_delivered_fraction () =
  check_close ~tol:1e-12 "under capacity" 1.0
    (Mbac.Utility.delivered_fraction ~capacity:10.0 ~load:5.0);
  check_close ~tol:1e-12 "over capacity" 0.5
    (Mbac.Utility.delivered_fraction ~capacity:10.0 ~load:20.0);
  check_close ~tol:1e-12 "zero load" 1.0
    (Mbac.Utility.delivered_fraction ~capacity:10.0 ~load:0.0)

(* ---------- Fluid buffer ---------- *)

let test_buffer_fill_and_loss () =
  let b = Mbac_sim.Fluid_buffer.create ~capacity:10.0 ~size:5.0 in
  (* load 12 for 2 time units: fills at rate 2, hits 4 — no loss *)
  Mbac_sim.Fluid_buffer.feed b ~duration:2.0 ~load:12.0;
  check_close ~tol:1e-12 "level" 4.0 (Mbac_sim.Fluid_buffer.level b);
  Alcotest.(check (float 0.0)) "no loss yet" 0.0 (Mbac_sim.Fluid_buffer.loss_time b);
  (* 2 more units: fills remaining 1 in 0.5, then loses for 1.5 *)
  Mbac_sim.Fluid_buffer.feed b ~duration:2.0 ~load:12.0;
  check_close ~tol:1e-12 "full" 5.0 (Mbac_sim.Fluid_buffer.level b);
  check_close ~tol:1e-12 "loss time" 1.5 (Mbac_sim.Fluid_buffer.loss_time b);
  check_close ~tol:1e-12 "lost volume" 3.0 (Mbac_sim.Fluid_buffer.lost_volume b);
  (* drain below empty clamps at 0 *)
  Mbac_sim.Fluid_buffer.feed b ~duration:10.0 ~load:0.0;
  Alcotest.(check (float 0.0)) "drained" 0.0 (Mbac_sim.Fluid_buffer.level b);
  check_close ~tol:1e-12 "loss fraction" (1.5 /. 14.0)
    (Mbac_sim.Fluid_buffer.loss_time_fraction b)

let test_buffer_never_loses_below_capacity =
  qcheck ~count:200 "no loss while load <= capacity"
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0.0 10.0))
    (fun loads ->
      let b = Mbac_sim.Fluid_buffer.create ~capacity:10.0 ~size:1.0 in
      List.iter (fun load -> Mbac_sim.Fluid_buffer.feed b ~duration:1.0 ~load) loads;
      Mbac_sim.Fluid_buffer.loss_time b = 0.0)

let test_buffer_conservation =
  qcheck ~count:200 "volume conservation: offered = delivered + lost + stored"
    QCheck.(list_of_size Gen.(int_range 1 60) (float_range 0.0 25.0))
    (fun loads ->
      let capacity = 10.0 in
      let b = Mbac_sim.Fluid_buffer.create ~capacity ~size:3.0 in
      (* track delivered = min over each unit segment: capacity when busy...
         easier: delivered = offered - lost - level *)
      List.iter (fun load -> Mbac_sim.Fluid_buffer.feed b ~duration:1.0 ~load) loads;
      let offered = Mbac_sim.Fluid_buffer.offered_volume b in
      let lost = Mbac_sim.Fluid_buffer.lost_volume b in
      let stored = Mbac_sim.Fluid_buffer.level b in
      let delivered = offered -. lost -. stored in
      (* delivered cannot exceed capacity x time and must be non-negative *)
      delivered >= -1e-9
      && delivered
         <= (capacity *. Mbac_sim.Fluid_buffer.total_time b) +. 1e-9)

(* ---------- Extended simulator modes ---------- *)

let sim_params =
  Mbac.Params.make ~n:50.0 ~mu:1.0 ~sigma:0.3 ~t_h:200.0 ~t_c:1.0 ~p_q:1e-2

let base_cfg () =
  let t_h_tilde = Mbac.Params.t_h_tilde sim_params in
  { (Mbac_sim.Continuous_load.default_config ~capacity:50.0
       ~holding_time_mean:200.0 ~target_p_q:1e-2)
    with
    Mbac_sim.Continuous_load.warmup = 5.0 *. t_h_tilde;
    batch_length = 2.0 *. t_h_tilde;
    max_events = 400_000 }

let make_source rng ~start =
  Mbac_traffic.Rcbr.create rng
    { Mbac_traffic.Rcbr.mu = 1.0; sigma = 0.3; t_c = 1.0 }
    ~start

let controller () =
  Mbac.Controller.with_memory ~capacity:50.0 ~p_ce:1e-2
    ~t_m:(Mbac.Params.t_h_tilde sim_params)

let test_poisson_light_load_no_blocking () =
  let cfg =
    { (base_cfg ()) with Mbac_sim.Continuous_load.arrival = `Poisson 0.05 }
  in
  (* offered load = 0.05 * 200 = 10 flows << capacity *)
  let r =
    Mbac_sim.Continuous_load.run (Mbac_stats.Rng.create ~seed:42) cfg
      ~controller:(controller ()) ~make_source
  in
  let open Mbac_sim.Continuous_load in
  Alcotest.(check bool) "little blocking" true (r.blocking_probability < 0.02);
  Alcotest.(check bool) "population ~ 10" true
    (r.mean_flows > 6.0 && r.mean_flows < 14.0);
  Alcotest.(check bool) "blocking counted" true (r.blocked >= 0)

let test_poisson_overload_blocks () =
  let cfg =
    { (base_cfg ()) with Mbac_sim.Continuous_load.arrival = `Poisson 2.0 }
  in
  (* offered 400 flows on a ~45-flow link: most arrivals blocked *)
  let r =
    Mbac_sim.Continuous_load.run (Mbac_stats.Rng.create ~seed:43) cfg
      ~controller:(controller ()) ~make_source
  in
  let open Mbac_sim.Continuous_load in
  Alcotest.(check bool) "heavy blocking" true (r.blocking_probability > 0.5);
  (* conservation: admitted + blocked = arrivals seen *)
  Alcotest.(check bool) "accounting" true (r.admitted + r.blocked > 0)

let test_poisson_below_continuous_load () =
  let run_arrival arrival seed =
    let cfg = { (base_cfg ()) with Mbac_sim.Continuous_load.arrival } in
    (Mbac_sim.Continuous_load.run (Mbac_stats.Rng.create ~seed) cfg
       ~controller:(controller ()) ~make_source)
      .Mbac_sim.Continuous_load.p_f
  in
  let p_light = run_arrival (`Poisson 0.05) 7 in
  let p_inf = run_arrival `Infinite 7 in
  Alcotest.(check bool) "light load has (much) smaller p_f" true
    (p_light <= p_inf +. 1e-9)

let test_reneg_blocking_counts () =
  let cfg =
    { (base_cfg ()) with
      Mbac_sim.Continuous_load.link = `Renegotiation_blocking }
  in
  let r =
    Mbac_sim.Continuous_load.run (Mbac_stats.Rng.create ~seed:44) cfg
      ~controller:(controller ()) ~make_source
  in
  let open Mbac_sim.Continuous_load in
  Alcotest.(check bool) "attempts counted" true (r.reneg_attempts > 1000);
  Alcotest.(check bool) "failures are a small fraction" true
    (r.reneg_failure_probability < 0.2);
  Alcotest.(check bool) "failures >= 0" true (r.reneg_failures >= 0)

let test_buffered_less_than_bufferless () =
  let run_link link seed =
    let cfg = { (base_cfg ()) with Mbac_sim.Continuous_load.link } in
    Mbac_sim.Continuous_load.run (Mbac_stats.Rng.create ~seed) cfg
      ~controller:(controller ()) ~make_source
  in
  let r_buf = run_link (`Buffered 5.0) 45 in
  let open Mbac_sim.Continuous_load in
  (* buffered loss-time fraction <= bufferless overflow fraction, which is
     measured in the same run (overflow is defined on the same load) *)
  Alcotest.(check bool) "loss <= overflow" true
    (r_buf.buffer_loss_fraction <= r_buf.p_f +. 1e-9)

let test_mean_utility_matches_pf () =
  (* with the Step utility, E[u] = 1 - p_f (time-weighted, same warmup) *)
  let r =
    Mbac_sim.Continuous_load.run (Mbac_stats.Rng.create ~seed:46) (base_cfg ())
      ~controller:(Mbac.Controller.memoryless ~capacity:50.0 ~p_ce:1e-2)
      ~make_source
  in
  let open Mbac_sim.Continuous_load in
  (* p_f reported may be the converged-batch estimate; compare loosely *)
  Alcotest.(check bool)
    (Printf.sprintf "1 - E[u] = %.4g vs p_f = %.4g" (1.0 -. r.mean_utility) r.p_f)
    true
    (abs_float (1.0 -. r.mean_utility -. r.p_f) < 0.5 *. r.p_f +. 1e-3)

let test_linear_utility_bounds () =
  let cfg =
    { (base_cfg ()) with Mbac_sim.Continuous_load.utility = Mbac.Utility.Linear }
  in
  let r =
    Mbac_sim.Continuous_load.run (Mbac_stats.Rng.create ~seed:47) cfg
      ~controller:(Mbac.Controller.memoryless ~capacity:50.0 ~p_ce:1e-2)
      ~make_source
  in
  let open Mbac_sim.Continuous_load in
  Alcotest.(check bool) "utility in [1 - p_f, 1]" true
    (r.mean_utility >= 1.0 -. r.p_f -. 1e-9 && r.mean_utility <= 1.0 +. 1e-12)

let suite =
  [ ( "extensions",
      [ slow_test "pareto on/off moments" test_pareto_onoff_moments;
        slow_test "pareto on/off aggregate is LRD" test_pareto_onoff_aggregate_lrd;
        test "pareto on/off validation" test_pareto_onoff_validation;
        test "modulated factor lookup" test_modulated_factor_lookup;
        test "modulated scaling" test_modulated_scales_rates;
        test "modulated late start" test_modulated_late_start;
        test "modulated validation" test_modulated_validation;
        test "utility values" test_utility_values;
        test_utility_ordering;
        test "delivered fraction" test_delivered_fraction;
        test "buffer fill and loss" test_buffer_fill_and_loss;
        test_buffer_never_loses_below_capacity;
        test_buffer_conservation;
        slow_test "poisson light load" test_poisson_light_load_no_blocking;
        slow_test "poisson overload blocks" test_poisson_overload_blocks;
        slow_test "finite < continuous load" test_poisson_below_continuous_load;
        slow_test "renegotiation accounting" test_reneg_blocking_counts;
        slow_test "buffered loss <= bufferless overflow" test_buffered_less_than_bufferless;
        slow_test "step utility = 1 - p_f" test_mean_utility_matches_pf;
        slow_test "linear utility bounds" test_linear_utility_bounds ] ) ]
