test/test_gaussian.ml: Alcotest Gaussian List Mbac_stats Printf QCheck Test_util
