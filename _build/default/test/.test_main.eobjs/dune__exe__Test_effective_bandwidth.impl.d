test/test_effective_bandwidth.ml: Alcotest Array List Mbac Mbac_stats Test_util
