test/test_integrate.ml: Alcotest Integrate Mbac_numerics Mbac_stats QCheck Test_util
