test/test_histogram.ml: Alcotest Array Gaussian Histogram List Mbac_stats Rng Sample Test_util
