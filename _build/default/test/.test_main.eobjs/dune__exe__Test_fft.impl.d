test/test_fft.ml: Alcotest Array Fft Gen Mbac_numerics Mbac_stats Printf QCheck Test_util
