test/test_special.ml: Alcotest Float List Mbac_stats Printf QCheck Special Test_util
