test/test_interp.ml: Alcotest Array Interp Mbac_numerics QCheck Test_util
