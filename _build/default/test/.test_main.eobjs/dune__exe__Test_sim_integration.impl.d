test/test_sim_integration.ml: Alcotest Mbac Mbac_sim Mbac_stats Mbac_traffic Printf QCheck Test_util
