test/test_sources.ml: Aggregate Alcotest Array Float List Markov_fluid Mbac_stats Mbac_traffic Onoff Ou_source QCheck Rcbr Source Test_util
