test/test_util.ml: Alcotest QCheck QCheck_alcotest
