test/test_analysis.ml: Alcotest Array List Mbac Mbac_stats Printf QCheck Test_util
