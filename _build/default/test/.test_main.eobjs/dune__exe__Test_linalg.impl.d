test/test_linalg.ml: Alcotest Array Gen Linalg Mbac_numerics QCheck Test_util
