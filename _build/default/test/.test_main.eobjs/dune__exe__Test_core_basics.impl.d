test/test_core_basics.ml: Alcotest Float Mbac Mbac_stats QCheck Test_util
