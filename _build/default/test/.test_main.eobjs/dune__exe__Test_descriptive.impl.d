test/test_descriptive.ml: Alcotest Array Descriptive Float Gen List Mbac_stats QCheck Rng Sample Test_util
