test/test_estimator.ml: Alcotest Array List Mbac Mbac_stats QCheck Test_util
