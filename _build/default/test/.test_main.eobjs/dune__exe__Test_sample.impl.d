test/test_sample.ml: Alcotest Array Gaussian Mbac_stats QCheck Rng Sample Test_util Welford
