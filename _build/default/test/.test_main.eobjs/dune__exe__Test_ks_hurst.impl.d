test/test_ks_hurst.ml: Alcotest Array Float Gaussian Hurst Ks_test List Mbac_numerics Mbac_stats Mbac_traffic Printf QCheck Rng Sample Test_util
