test/test_roots.ml: Alcotest List Mbac_numerics Mbac_stats QCheck Roots Test_util
