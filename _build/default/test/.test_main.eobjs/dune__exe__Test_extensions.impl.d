test/test_extensions.ml: Alcotest Gen List Mbac Mbac_sim Mbac_stats Mbac_traffic Printf QCheck Test_util
