test/test_batch_means.ml: Alcotest Array Batch_means Float Gen List Mbac_stats QCheck Rng Sample Test_util
