test/test_experiments.ml: Alcotest Array Buffer Format List Mbac_experiments Mbac_stats String Test_util
