test/test_trace.ml: Alcotest Array Mbac_stats Mbac_traffic Mpeg_synth QCheck Renegotiate Source Test_util Trace Trace_source
