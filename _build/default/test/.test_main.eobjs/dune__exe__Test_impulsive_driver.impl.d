test/test_impulsive_driver.ml: Alcotest Array Float Mbac Mbac_sim Mbac_stats Mbac_traffic Printf Test_util
