test/test_fgn.ml: Alcotest Array Fgn List Mbac_numerics Mbac_stats Test_util
