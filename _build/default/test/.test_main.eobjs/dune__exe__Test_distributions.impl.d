test/test_distributions.ml: Distributions Gaussian List Mbac_stats Printf QCheck Rng Sample Test_util Welford
