test/test_measurement.ml: Alcotest Float Mbac_sim Mbac_stats Measurement Test_util
