test/test_controller.ml: Alcotest Array Gen Mbac Mbac_stats QCheck Test_util
