test/test_welford.ml: Alcotest Array Descriptive Gen List Mbac_stats QCheck Test_util Welford
