test/test_rng.ml: Alcotest Array Mbac_stats QCheck Random Rng Test_util Welford
