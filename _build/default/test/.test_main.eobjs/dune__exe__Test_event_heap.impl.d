test/test_event_heap.ml: Alcotest Event_heap Gen List Mbac_sim Option QCheck Test_util
