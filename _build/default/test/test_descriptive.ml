open Mbac_stats
open Test_util

let test_basic () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_close ~tol:1e-12 "mean" 5.0 (Descriptive.mean xs);
  (* population variance is 4; unbiased = 4 * 8/7 *)
  check_close ~tol:1e-12 "variance" (32.0 /. 7.0) (Descriptive.variance xs);
  Alcotest.(check (float 1e-12)) "min" 2.0 (Descriptive.min xs);
  Alcotest.(check (float 1e-12)) "max" 9.0 (Descriptive.max xs)

let test_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_close ~tol:1e-12 "median" 3.0 (Descriptive.median xs);
  check_close ~tol:1e-12 "q0" 1.0 (Descriptive.quantile xs 0.0);
  check_close ~tol:1e-12 "q1" 5.0 (Descriptive.quantile xs 1.0);
  check_close ~tol:1e-12 "q25" 2.0 (Descriptive.quantile xs 0.25);
  (* interpolation *)
  check_close ~tol:1e-12 "q0.1" 1.4 (Descriptive.quantile xs 0.1)

let test_quantile_does_not_mutate () =
  let xs = [| 3.0; 1.0; 2.0 |] in
  ignore (Descriptive.median xs);
  Alcotest.(check (array (float 0.0))) "unchanged" [| 3.0; 1.0; 2.0 |] xs

let test_quantile_monotone =
  qcheck ~count:200 "quantile monotone in p"
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
              (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Descriptive.quantile xs lo <= Descriptive.quantile xs hi +. 1e-12)

let test_skew_kurtosis () =
  (* Symmetric data: zero skew.  Uniform-like data: negative excess kurtosis. *)
  let sym = [| -2.0; -1.0; 0.0; 1.0; 2.0 |] in
  check_close_abs ~tol:1e-12 "symmetric skew" 0.0 (Descriptive.skewness sym);
  let rng = Rng.create ~seed:200 in
  let gauss = Array.init 100_000 (fun _ -> Sample.gaussian rng ~mu:0.0 ~sigma:1.0) in
  check_close_abs ~tol:0.05 "gaussian skew ~ 0" 0.0 (Descriptive.skewness gauss);
  check_close_abs ~tol:0.1 "gaussian excess kurtosis ~ 0" 0.0
    (Descriptive.kurtosis_excess gauss)

let test_autocorrelation_iid () =
  let rng = Rng.create ~seed:201 in
  let xs = Array.init 50_000 (fun _ -> Sample.gaussian rng ~mu:0.0 ~sigma:1.0) in
  check_close ~tol:1e-12 "lag 0" 1.0 (Descriptive.autocorrelation xs 0);
  (* iid: lag-k correlations are ~ N(0, 1/n) *)
  for k = 1 to 5 do
    let r = Descriptive.autocorrelation xs k in
    if abs_float r > 0.03 then Alcotest.failf "lag %d correlation %.4f too big" k r
  done

let test_autocorrelation_ar1 () =
  (* AR(1) with coefficient a has acf(k) = a^k. *)
  let rng = Rng.create ~seed:202 in
  let a = 0.7 in
  let n = 200_000 in
  let xs = Array.make n 0.0 in
  for i = 1 to n - 1 do
    xs.(i) <- (a *. xs.(i - 1)) +. Sample.gaussian rng ~mu:0.0 ~sigma:1.0
  done;
  List.iter
    (fun k ->
      let expected = a ** float_of_int k in
      let got = Descriptive.autocorrelation xs k in
      if abs_float (got -. expected) > 0.02 then
        Alcotest.failf "AR(1) acf lag %d: %.4f vs %.4f" k got expected)
    [ 1; 2; 3; 5 ]

let test_acf_shape () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  let acf = Descriptive.acf xs ~max_lag:10 in
  Alcotest.(check int) "acf clipped to n-1" 4 (Array.length acf);
  check_close ~tol:1e-12 "acf.(0)" 1.0 acf.(0)

let test_empty_raises () =
  Alcotest.check_raises "mean []" (Invalid_argument "Descriptive.mean: empty input")
    (fun () -> ignore (Descriptive.mean [||]))

let suite =
  [ ( "descriptive",
      [ test "basic statistics" test_basic;
        test "quantiles" test_quantile;
        test "quantile purity" test_quantile_does_not_mutate;
        test_quantile_monotone;
        test "skewness and kurtosis" test_skew_kurtosis;
        test "autocorrelation iid" test_autocorrelation_iid;
        test "autocorrelation AR(1)" test_autocorrelation_ar1;
        test "acf shape" test_acf_shape;
        test "empty input" test_empty_raises ] ) ]
