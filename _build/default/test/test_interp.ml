open Mbac_numerics
open Test_util

let test_eval () =
  let t = Interp.of_points [| (0.0, 0.0); (1.0, 10.0); (2.0, 0.0) |] in
  check_close ~tol:1e-12 "node" 10.0 (Interp.eval t 1.0);
  check_close ~tol:1e-12 "midpoint" 5.0 (Interp.eval t 0.5);
  check_close ~tol:1e-12 "second segment" 5.0 (Interp.eval t 1.5)

let test_clamping () =
  let t = Interp.of_points [| (0.0, 1.0); (1.0, 2.0) |] in
  check_close ~tol:1e-12 "below" 1.0 (Interp.eval t (-5.0));
  check_close ~tol:1e-12 "above" 2.0 (Interp.eval t 5.0)

let test_unsorted_input () =
  let t = Interp.of_points [| (2.0, 20.0); (0.0, 0.0); (1.0, 10.0) |] in
  check_close ~tol:1e-12 "sorted internally" 15.0 (Interp.eval t 1.5)

let test_of_samples () =
  let t = Interp.of_samples ~x0:10.0 ~dx:2.0 [| 0.0; 4.0; 8.0 |] in
  let lo, hi = Interp.domain t in
  check_close ~tol:1e-12 "domain lo" 10.0 lo;
  check_close ~tol:1e-12 "domain hi" 14.0 hi;
  check_close ~tol:1e-12 "linear" 2.0 (Interp.eval t 11.0)

let test_map_y () =
  let t = Interp.of_points [| (0.0, 1.0); (1.0, 2.0) |] in
  let t2 = Interp.map_y (fun y -> y *. 10.0) t in
  check_close ~tol:1e-12 "mapped" 15.0 (Interp.eval t2 0.5);
  check_close ~tol:1e-12 "original untouched" 1.5 (Interp.eval t 0.5)

let test_recovers_linear_function =
  qcheck ~count:200 "interpolation is exact on linear functions"
    QCheck.(triple (float_range (-5.0) 5.0) (float_range (-5.0) 5.0)
              (float_range 0.0 1.0))
    (fun (a, b, x) ->
      let t =
        Interp.of_points (Array.init 11 (fun i ->
            let xi = float_of_int i /. 10.0 in
            (xi, (a *. xi) +. b)))
      in
      abs_float (Interp.eval t x -. ((a *. x) +. b)) <= 1e-9)

let test_invalid () =
  Alcotest.check_raises "too few points"
    (Invalid_argument "Interp.of_points: requires >= 2 points") (fun () ->
      ignore (Interp.of_points [| (0.0, 0.0) |]));
  Alcotest.check_raises "duplicate x"
    (Invalid_argument "Interp.of_points: duplicate x values") (fun () ->
      ignore (Interp.of_points [| (0.0, 0.0); (0.0, 1.0); (1.0, 1.0) |]))

let suite =
  [ ( "interp",
      [ test "evaluation" test_eval;
        test "clamping" test_clamping;
        test "unsorted input" test_unsorted_input;
        test "of_samples" test_of_samples;
        test "map_y" test_map_y;
        test_recovers_linear_function;
        test "invalid" test_invalid ] ) ]
