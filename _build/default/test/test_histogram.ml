open Mbac_stats
open Test_util

let test_binning () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.9; -1.0; 10.0; 11.0 ];
  Alcotest.(check int) "total" 7 (Histogram.count h);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  let c = Histogram.counts h in
  Alcotest.(check int) "bin 0" 1 c.(0);
  Alcotest.(check int) "bin 1" 2 c.(1);
  Alcotest.(check int) "bin 9" 1 c.(9)

let test_edges () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:4 in
  let edges = Histogram.bin_edges h in
  Alcotest.(check int) "n edges" 5 (Array.length edges);
  check_close ~tol:1e-12 "edge 2" 0.5 edges.(2)

let test_density_normalised () =
  let h = Histogram.create ~lo:0.0 ~hi:2.0 ~bins:4 in
  List.iter (Histogram.add h) [ 0.1; 0.6; 1.1; 1.6 ];
  let d = Histogram.density h in
  let integral = Array.fold_left (fun acc x -> acc +. (x *. 0.5)) 0.0 d in
  check_close ~tol:1e-12 "density integrates to 1" 1.0 integral

let test_cdf () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:10 in
  for i = 0 to 9 do
    Histogram.add h (float_of_int i +. 0.5)
  done;
  check_close ~tol:1e-12 "cdf at 5" 0.5 (Histogram.cdf_at h 5.0);
  check_close ~tol:1e-12 "cdf at hi" 1.0 (Histogram.cdf_at h 10.0);
  Alcotest.(check (float 0.0)) "cdf below lo" 0.0 (Histogram.cdf_at h (-1.0))

let test_gaussian_shape () =
  (* Histogram CDF of a big Gaussian sample should match the true CDF. *)
  let rng = Rng.create ~seed:500 in
  let h = Histogram.create ~lo:(-5.0) ~hi:5.0 ~bins:200 in
  for _ = 1 to 200_000 do
    Histogram.add h (Sample.gaussian rng ~mu:0.0 ~sigma:1.0)
  done;
  List.iter
    (fun x ->
      let emp = Histogram.cdf_at h x in
      let thy = Gaussian.cdf x in
      if abs_float (emp -. thy) > 0.01 then
        Alcotest.failf "cdf mismatch at %g: %.4f vs %.4f" x emp thy)
    [ -2.0; -1.0; 0.0; 1.0; 2.0 ]

let test_counts_copy () =
  let h = Histogram.create ~lo:0.0 ~hi:1.0 ~bins:2 in
  Histogram.add h 0.25;
  let c = Histogram.counts h in
  c.(0) <- 99;
  Alcotest.(check int) "internal state protected" 1 (Histogram.counts h).(0)

let test_invalid () =
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Histogram.create: requires hi > lo") (fun () ->
      ignore (Histogram.create ~lo:1.0 ~hi:1.0 ~bins:4))

let suite =
  [ ( "histogram",
      [ test "binning" test_binning;
        test "edges" test_edges;
        test "density normalisation" test_density_normalised;
        test "cdf" test_cdf;
        test "matches gaussian" test_gaussian_shape;
        test "counts is a copy" test_counts_copy;
        test "invalid" test_invalid ] ) ]
